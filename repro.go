// Package repro is the public entry point of ClusterFBB, a from-scratch
// reproduction of "Physically Clustered Forward Body Biasing for Variability
// Compensation in Nanometer CMOS design" (Sathanur, Pullini, Benini,
// De Micheli, Macii — DATE 2009).
//
// The package wires the full flow together: benchmark generation (or a
// user-provided netlist), row-based placement, static timing analysis,
// clustering-problem construction, the single-voltage baseline, the
// two-pass heuristic, the exact ILP, and the layout implementation check.
// Experiment drivers regenerating every figure and table of the paper live
// in experiments.go; the runnable programs under cmd/ and examples/ are
// thin wrappers over this API.
package repro

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/cell"
	"repro/internal/core"
	"repro/internal/flow"
	"repro/internal/gen"
	"repro/internal/ilp"
	"repro/internal/layout"
	"repro/internal/netlist"
	"repro/internal/place"
	"repro/internal/sta"
)

// Config selects a design and the allocation parameters.
type Config struct {
	// Benchmark names one of the paper's Table 1 designs (see
	// Benchmarks); alternatively supply a Design directly.
	Benchmark string
	// Design is a custom netlist mapped to the default library; it takes
	// precedence over Benchmark.
	Design *netlist.Design

	// Beta is the slowdown coefficient to compensate (default 0.05).
	Beta float64
	// MaxClusters is C (default 3); MaxBiasPairs caps routed pairs
	// (default 2).
	MaxClusters  int
	MaxBiasPairs int

	// Solver names the registered core.Solver producing the Result's
	// primary allocation ("" = "heuristic"; see core.SolverNames). The
	// "ilp" and "race" solvers are configured with the ILP* budgets below;
	// selecting "ilp" makes the primary allocation exact, independently of
	// RunILP.
	Solver string

	// RunILP additionally runs the exact allocator under the ILP* budgets.
	RunILP bool
	// ILPNodeLimit bounds explored branch-and-bound nodes (0 = solver
	// default, 1<<20). Node budgets are deterministic: the same instance
	// and limit return bit-identical allocations at any ILPWorkers.
	ILPNodeLimit int
	// ILPWorkers sets the branch-and-bound tree parallelism (0 =
	// GOMAXPROCS); it changes wall clock only, never the result.
	ILPWorkers int
	// ILPTimeLimit additionally interrupts the exact solve on wall clock
	// (0 = none). Unlike the node budget, where the clock cuts the tree
	// is machine-dependent, so truncated results may vary run to run.
	ILPTimeLimit time.Duration

	// ForceRows overrides the placer's row count (0 = automatic).
	ForceRows int
	// SkipLayout disables the layout implementation check.
	SkipLayout bool
}

// Result carries everything the flow produced.
type Result struct {
	// Design/Rows/DcritPS/Constraints describe the instance.
	Design      netlist.Stats
	Rows        int
	DcritPS     float64
	Constraints int

	// Single, Heuristic and ILP are the allocations (ILP nil unless
	// requested and solved; Single/Heuristic always set). Heuristic holds
	// the solution of the configured Solver — the two-pass heuristic by
	// default, SolverName says which actually ran.
	Single     *core.Solution
	Heuristic  *core.Solution
	ILP        *core.Solution
	SolverName string
	// ILPStatus reports the branch-and-bound outcome ("" if not run),
	// ILPNodes the explored nodes.
	ILPStatus string
	ILPNodes  int
	// ILPResult carries the full branch-and-bound diagnostics (nodes,
	// bound, presolve reductions, branching rule, strong-branching LPs) of
	// the most recent exact solve — RunILP's, or the primary solver's when
	// it is "ilp" or "race". Nil when no exact solve ran.
	ILPResult *ilp.Result
	// RaceWinner names the portfolio member whose solution the "race"
	// solver returned ("" unless Solver is "race").
	RaceWinner string

	// HeuristicTime and ILPTime are wall-clock allocator runtimes.
	HeuristicTime time.Duration
	ILPTime       time.Duration

	// Layout is the implementation report for the heuristic solution.
	Layout *layout.Report

	// Problem, Placement and Timing expose the underlying objects for
	// further experiments.
	Problem   *core.Problem
	Placement *place.Placement
	Timing    *sta.Timing

	// inst is the materialized allocation instance behind Problem; it is
	// private to this Result (never re-materialized), so Problem and the
	// cloned solutions stay valid indefinitely.
	inst *core.Instance
}

// Benchmarks returns the names of the built-in Table 1 designs.
func Benchmarks() []string { return gen.Names() }

// buildBench generates a named benchmark design.
func buildBench(name string, lib *cell.Library) (*netlist.Design, error) {
	return gen.Build(name, lib)
}

// Library returns the shared characterized 45nm cell library.
func Library() *cell.Library { return cell.Default() }

// Run executes the full flow, computing every stage from scratch. Callers
// running many related points (experiment grids, sweeps) should share a
// flow.Engine via RunOn so the deterministic prefix is computed once.
func Run(cfg Config) (*Result, error) { return RunOn(nil, cfg) }

// RunOn executes the flow as composable stages: the deterministic prefix
// (generation, placement, nominal STA) is served from e's concurrency-safe
// cache and shared across every (Beta, MaxClusters) point on the same
// benchmark; problem construction, allocation and the layout check then run
// per call. A nil engine computes the prefix from scratch, matching Run.
// Custom designs (cfg.Design) have no cache key and always compute their
// own prefix. RunOn is safe for concurrent use with a shared engine.
func RunOn(e *flow.Engine, cfg Config) (*Result, error) {
	pfx, err := stagePrefix(e, cfg)
	if err != nil {
		return nil, err
	}
	return RunWith(pfx, cfg) // applies the Beta default
}

// RunWith executes the per-point stages — problem materialization,
// allocation, layout check — on an already computed prefix, skipping prefix
// resolution entirely. It is the entry point for callers that manage their
// own prefix cache (the fbbd service's hash-keyed LRU); RunOn is exactly
// stagePrefix followed by RunWith, so the two agree byte for byte on the
// same prefix and config. Safe for concurrent use: the prefix is only read.
func RunWith(pfx *flow.Prefix, cfg Config) (*Result, error) {
	if cfg.Beta == 0 {
		cfg.Beta = 0.05
	}
	res, err := stageProblem(pfx, cfg)
	if err != nil {
		return nil, err
	}
	if err := stageAllocate(res, cfg); err != nil {
		return nil, err
	}
	if err := stageLayout(res, cfg); err != nil {
		return nil, err
	}
	return res, nil
}

// stagePrefix resolves stages 1-3 (generate, place, STA), cached on the
// engine for named benchmarks.
func stagePrefix(e *flow.Engine, cfg Config) (*flow.Prefix, error) {
	lib := cell.Default()
	if cfg.Design != nil {
		return flow.PrefixFor(cfg.Design, lib, cfg.ForceRows)
	}
	if cfg.Benchmark == "" {
		return nil, errors.New("repro: no benchmark or design given")
	}
	if e != nil {
		return e.Prefix(cfg.Benchmark, cfg.ForceRows)
	}
	d, err := gen.Build(cfg.Benchmark, lib)
	if err != nil {
		return nil, err
	}
	return flow.PrefixFor(d, lib, cfg.ForceRows)
}

// stageProblem materializes the clustering instance for one (Beta,
// MaxClusters) point through the prefix's shared Allocator and seeds the
// Result. The Instance is private to the Result and never re-materialized,
// so the exposed Problem has the lifetime callers expect.
func stageProblem(pfx *flow.Prefix, cfg Config) (*Result, error) {
	inst, err := pfx.Allocator.At(core.Options{
		Beta:         cfg.Beta,
		MaxClusters:  cfg.MaxClusters,
		MaxBiasPairs: cfg.MaxBiasPairs,
	}, nil)
	if err != nil {
		return nil, err
	}
	return &Result{
		Design:      pfx.Design.Stats(),
		Rows:        pfx.Placement.NumRows,
		DcritPS:     pfx.Timing.DcritPS,
		Constraints: inst.Prob.NumConstraints(),
		Problem:     inst.Prob,
		Placement:   pfx.Placement,
		Timing:      pfx.Timing,
		inst:        inst,
	}, nil
}

// NamedSolver resolves a registered solver name to a core.Solver value
// ("" and "heuristic" resolve to nil, the built-in default), threading
// ilpOpts into an "ilp" or "race" selection. The zero options are the
// deterministic default: a node budget (ilp's 1<<20) instead of the
// historical 30s wall clock. NamedSolver is the single solver resolution
// path shared by the in-process drivers and the fbbd service, so the two
// cannot drift.
func NamedSolver(name string, ilpOpts core.ILPOptions) (core.Solver, error) {
	if name == "" || name == "heuristic" {
		return nil, nil
	}
	s, err := core.NewNamedSolver(name)
	if err != nil {
		return nil, err
	}
	switch sv := s.(type) {
	case *core.ILPSolver:
		sv.Opts = ilpOpts
	case *core.RaceSolver:
		sv.ILP = ilpOpts
	}
	return s, nil
}

// ilpOptions collects Config's exact-solve budgets (WarmStart unset).
func (cfg Config) ilpOptions() core.ILPOptions {
	return core.ILPOptions{
		NodeLimit: cfg.ILPNodeLimit,
		Workers:   cfg.ILPWorkers,
		TimeLimit: cfg.ILPTimeLimit,
	}
}

// resolveSolver maps Config.Solver to a core.Solver value ("" = the
// default heuristic), threading the ILP budgets into an "ilp" or "race"
// selection.
func resolveSolver(cfg Config) (core.Solver, string, error) {
	s, err := NamedSolver(cfg.Solver, cfg.ilpOptions())
	if err != nil {
		return nil, "", err
	}
	name := cfg.Solver
	if s == nil {
		name = "heuristic"
	}
	return s, name, nil
}

// stageAllocate runs the allocators: the single-voltage baseline, the
// configured solver (two-pass heuristic by default), and (when requested)
// the exact ILP.
func stageAllocate(res *Result, cfg Config) error {
	single, err := res.inst.SingleBB()
	if err != nil {
		return fmt.Errorf("repro: %s: %w", res.Design.Name, err)
	}
	res.Single = single.Clone()

	solver, name, err := resolveSolver(cfg)
	if err != nil {
		return err
	}
	res.SolverName = name
	start := time.Now()
	sol, err := res.inst.Solve(solver)
	if err != nil {
		return err
	}
	res.Heuristic = sol.Clone()
	res.HeuristicTime = time.Since(start)
	res.ILPResult = res.inst.ILPResult
	res.RaceWinner = res.inst.RaceWinner

	if cfg.RunILP {
		opts := cfg.ilpOptions()
		opts.WarmStart = res.Heuristic
		start = time.Now()
		sol, ires, err := res.Problem.SolveILP(opts)
		res.ILPTime = time.Since(start)
		if err != nil {
			return err
		}
		res.ILP = sol
		res.ILPResult = ires
	}
	if res.ILPResult != nil {
		res.ILPStatus = res.ILPResult.Status.String()
		res.ILPNodes = res.ILPResult.Nodes
	}
	return nil
}

// stageLayout runs the implementation check on the heuristic allocation.
func stageLayout(res *Result, cfg Config) error {
	if cfg.SkipLayout {
		return nil
	}
	var err error
	res.Layout, err = layout.Apply(res.Placement, res.Heuristic.Assign, layout.Options{})
	return err
}

// AllocSummary is the JSON-stable digest of one allocation. Leakages are in
// microwatts (the paper's Table 1 unit).
type AllocSummary struct {
	Method      string    `json:"method"`
	TotalLeakUW float64   `json:"totalLeakUW"`
	ExtraLeakUW float64   `json:"extraLeakUW"`
	SavingsPct  float64   `json:"savingsPct"`
	Clusters    int       `json:"clusters"`
	VbsLevels   []float64 `json:"vbsLevels"`
	Assign      []int     `json:"assign"`
	Proven      bool      `json:"proven,omitempty"`
}

// Summary is a deterministic, JSON-stable digest of a Result: everything the
// flow computed except wall-clock fields (runtimes, ILP node counts), so two
// runs of the same config — in-process or across a service boundary —
// marshal to identical bytes. It is the response body of fbbd's /v1/tune.
type Summary struct {
	Benchmark   string        `json:"benchmark"`
	Gates       int           `json:"gates"`
	DFFs        int           `json:"dffs"`
	Rows        int           `json:"rows"`
	DcritPS     float64       `json:"dcritPS"`
	Constraints int           `json:"constraints"`
	Solver      string        `json:"solver"`
	Single      AllocSummary  `json:"single"`
	Best        AllocSummary  `json:"best"`
	ILP         *AllocSummary `json:"ilp,omitempty"`
}

// summarizeAlloc digests one solution against the single-voltage baseline.
func (r *Result) summarizeAlloc(s *core.Solution) AllocSummary {
	return AllocSummary{
		Method:      s.Method,
		TotalLeakUW: s.TotalLeakNW / 1000,
		ExtraLeakUW: s.ExtraLeakNW / 1000,
		SavingsPct:  core.Savings(r.Single, s),
		Clusters:    s.Clusters,
		VbsLevels:   r.Problem.VbsOf(s),
		Assign:      s.Assign,
		Proven:      s.Proven,
	}
}

// Summarize digests the Result into its deterministic JSON form. The ILP
// entry is present only when RunILP produced a solution. Under the default
// node budgets every solver is fully deterministic; only a Config that sets
// ILPTimeLimit can make summaries differ run to run (wall-clock truncation
// cuts the tree at a machine-dependent point).
func (r *Result) Summarize() *Summary {
	s := &Summary{
		Benchmark:   r.Design.Name,
		Gates:       r.Design.Gates,
		DFFs:        r.Design.DFFs,
		Rows:        r.Rows,
		DcritPS:     r.DcritPS,
		Constraints: r.Constraints,
		Solver:      r.SolverName,
		Single:      r.summarizeAlloc(r.Single),
		Best:        r.summarizeAlloc(r.Heuristic),
	}
	if r.ILP != nil {
		ilp := r.summarizeAlloc(r.ILP)
		s.ILP = &ilp
	}
	return s
}

// SavingsPct returns the heuristic and ILP savings versus the single-voltage
// baseline (ILP savings is NaN-free: zero when the ILP was not run).
func (r *Result) SavingsPct() (heuristic, ilp float64) {
	heuristic = core.Savings(r.Single, r.Heuristic)
	if r.ILP != nil {
		ilp = core.Savings(r.Single, r.ILP)
	}
	return heuristic, ilp
}
