// Package repro is the public entry point of ClusterFBB, a from-scratch
// reproduction of "Physically Clustered Forward Body Biasing for Variability
// Compensation in Nanometer CMOS design" (Sathanur, Pullini, Benini,
// De Micheli, Macii — DATE 2009).
//
// The package wires the full flow together: benchmark generation (or a
// user-provided netlist), row-based placement, static timing analysis,
// clustering-problem construction, the single-voltage baseline, the
// two-pass heuristic, the exact ILP, and the layout implementation check.
// Experiment drivers regenerating every figure and table of the paper live
// in experiments.go; the runnable programs under cmd/ and examples/ are
// thin wrappers over this API.
package repro

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/cell"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/layout"
	"repro/internal/netlist"
	"repro/internal/place"
	"repro/internal/sta"
)

// Config selects a design and the allocation parameters.
type Config struct {
	// Benchmark names one of the paper's Table 1 designs (see
	// Benchmarks); alternatively supply a Design directly.
	Benchmark string
	// Design is a custom netlist mapped to the default library; it takes
	// precedence over Benchmark.
	Design *netlist.Design

	// Beta is the slowdown coefficient to compensate (default 0.05).
	Beta float64
	// MaxClusters is C (default 3); MaxBiasPairs caps routed pairs
	// (default 2).
	MaxClusters  int
	MaxBiasPairs int

	// RunILP additionally runs the exact allocator with ILPTimeLimit
	// (default 30s when RunILP is set).
	RunILP       bool
	ILPTimeLimit time.Duration

	// ForceRows overrides the placer's row count (0 = automatic).
	ForceRows int
	// SkipLayout disables the layout implementation check.
	SkipLayout bool
}

// Result carries everything the flow produced.
type Result struct {
	// Design/Rows/DcritPS/Constraints describe the instance.
	Design      netlist.Stats
	Rows        int
	DcritPS     float64
	Constraints int

	// Single, Heuristic and ILP are the allocations (ILP nil unless
	// requested and solved; Single/Heuristic always set).
	Single    *core.Solution
	Heuristic *core.Solution
	ILP       *core.Solution
	// ILPStatus reports the branch-and-bound outcome ("" if not run),
	// ILPNodes the explored nodes.
	ILPStatus string
	ILPNodes  int

	// HeuristicTime and ILPTime are wall-clock allocator runtimes.
	HeuristicTime time.Duration
	ILPTime       time.Duration

	// Layout is the implementation report for the heuristic solution.
	Layout *layout.Report

	// Problem, Placement and Timing expose the underlying objects for
	// further experiments.
	Problem   *core.Problem
	Placement *place.Placement
	Timing    *sta.Timing
}

// Benchmarks returns the names of the built-in Table 1 designs.
func Benchmarks() []string { return gen.Names() }

// buildBench generates a named benchmark design.
func buildBench(name string, lib *cell.Library) (*netlist.Design, error) {
	return gen.Build(name, lib)
}

// Library returns the shared characterized 45nm cell library.
func Library() *cell.Library { return cell.Default() }

// Run executes the full flow.
func Run(cfg Config) (*Result, error) {
	lib := cell.Default()
	d := cfg.Design
	if d == nil {
		if cfg.Benchmark == "" {
			return nil, errors.New("repro: no benchmark or design given")
		}
		var err error
		d, err = gen.Build(cfg.Benchmark, lib)
		if err != nil {
			return nil, err
		}
	}
	if cfg.Beta == 0 {
		cfg.Beta = 0.05
	}

	pl, err := place.Place(d, lib, place.Options{ForceRows: cfg.ForceRows})
	if err != nil {
		return nil, err
	}
	tm, err := sta.Analyze(pl, sta.Options{})
	if err != nil {
		return nil, err
	}
	prob, err := core.BuildProblem(pl, tm, core.Options{
		Beta:         cfg.Beta,
		MaxClusters:  cfg.MaxClusters,
		MaxBiasPairs: cfg.MaxBiasPairs,
	})
	if err != nil {
		return nil, err
	}

	res := &Result{
		Design:      d.Stats(),
		Rows:        pl.NumRows,
		DcritPS:     tm.DcritPS,
		Constraints: prob.NumConstraints(),
		Problem:     prob,
		Placement:   pl,
		Timing:      tm,
	}

	res.Single, err = prob.SingleBB()
	if err != nil {
		return nil, fmt.Errorf("repro: %s: %w", d.Name, err)
	}
	start := time.Now()
	res.Heuristic, err = prob.SolveHeuristic()
	if err != nil {
		return nil, err
	}
	res.HeuristicTime = time.Since(start)

	if cfg.RunILP {
		limit := cfg.ILPTimeLimit
		if limit <= 0 {
			limit = 30 * time.Second
		}
		start = time.Now()
		sol, ires, err := prob.SolveILP(core.ILPOptions{
			TimeLimit: limit,
			WarmStart: res.Heuristic,
		})
		res.ILPTime = time.Since(start)
		if err != nil {
			return nil, err
		}
		res.ILP = sol
		if ires != nil {
			res.ILPStatus = ires.Status.String()
			res.ILPNodes = ires.Nodes
		}
	}

	if !cfg.SkipLayout {
		res.Layout, err = layout.Apply(pl, res.Heuristic.Assign, layout.Options{})
		if err != nil {
			return nil, err
		}
	}
	return res, nil
}

// SavingsPct returns the heuristic and ILP savings versus the single-voltage
// baseline (ILP savings is NaN-free: zero when the ILP was not run).
func (r *Result) SavingsPct() (heuristic, ilp float64) {
	heuristic = core.Savings(r.Single, r.Heuristic)
	if r.ILP != nil {
		ilp = core.Savings(r.Single, r.ILP)
	}
	return heuristic, ilp
}
