package repro

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/flow"
)

// The experiment-driver tests pin the flow-engine refactor's contract: the
// parallel pool must reproduce the sequential drivers byte for byte, cell
// failures must annotate rows instead of sinking the table, and a shared
// engine must reuse — not recompute — the deterministic prefix. The ILP is
// disabled (ILPGateLimit: 1 skips designs above one gate) so the rows carry
// no wall-clock-dependent content.

// table1Fingerprint renders rows to a canonical byte string for equality.
func table1Fingerprint(rows []Table1Row) string {
	var b strings.Builder
	for _, r := range rows {
		fmt.Fprintf(&b, "%#v\n", r)
	}
	return b.String()
}

func testTable1Opts() Table1Options {
	return Table1Options{
		Benchmarks:   []string{"c1355"},
		Betas:        []float64{0.05, 0.10},
		ILPGateLimit: 1, // heuristic only: deterministic under contention
	}
}

func TestTable1ParallelMatchesSequential(t *testing.T) {
	opts := testTable1Opts()
	if !testing.Short() {
		opts.Benchmarks = []string{"c1355", "c3540"}
	}
	seq, err := NewRunner(1).Table1(opts)
	if err != nil {
		t.Fatal(err)
	}
	par, err := NewRunner(8).Table1(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(seq) != len(opts.Benchmarks)*len(opts.Betas) {
		t.Fatalf("got %d rows, want %d", len(seq), len(opts.Benchmarks)*len(opts.Betas))
	}
	if sf, pf := table1Fingerprint(seq), table1Fingerprint(par); sf != pf {
		t.Errorf("parallel rows differ from sequential:\nseq:\n%s\npar:\n%s", sf, pf)
	}
	for _, r := range seq {
		if r.Err != "" {
			t.Errorf("%s beta=%g%%: unexpected cell error: %s", r.Benchmark, r.BetaPct, r.Err)
		}
		if r.HeurSavC3 < r.HeurSavC2 {
			t.Errorf("%s beta=%g%%: C=3 saves less than C=2 (%g < %g)",
				r.Benchmark, r.BetaPct, r.HeurSavC3, r.HeurSavC2)
		}
	}
}

func TestTable1PartialRowsOnCellFailure(t *testing.T) {
	opts := testTable1Opts()
	opts.Benchmarks = []string{"c1355", "no-such-benchmark"}
	opts.Betas = []float64{0.05}
	rows, err := Table1(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d rows, want 2 (completed rows must survive a failing cell)", len(rows))
	}
	if rows[0].Err != "" || rows[0].Gates == 0 {
		t.Errorf("good cell broken: %+v", rows[0])
	}
	if rows[1].Err == "" {
		t.Error("failing cell not annotated")
	}
	if rows[1].Benchmark != "no-such-benchmark" {
		t.Errorf("failed row names %q", rows[1].Benchmark)
	}
}

func TestTable1SurfacesILPStatus(t *testing.T) {
	if testing.Short() {
		t.Skip("ILP cell in -short mode")
	}
	rows, err := Table1(Table1Options{
		Benchmarks: []string{"c1355"},
		Betas:      []float64{0.05},
	})
	if err != nil {
		t.Fatal(err)
	}
	r := rows[0]
	if r.Err != "" {
		t.Fatal(r.Err)
	}
	if !r.ILPValidC2 || !r.ILPValidC3 {
		t.Fatalf("ILP did not produce solutions: %+v", r)
	}
	if r.ILPStatusC2 == "" || r.ILPStatusC3 == "" {
		t.Errorf("ILP status not surfaced: C2=%q C3=%q", r.ILPStatusC2, r.ILPStatusC3)
	}
	if r.ILPNodesC2 <= 0 || r.ILPNodesC3 <= 0 {
		t.Errorf("ILP node counts not surfaced: C2=%d C3=%d", r.ILPNodesC2, r.ILPNodesC3)
	}
}

func TestClusterSweepParallelMatchesSequential(t *testing.T) {
	cTo := 6
	if testing.Short() {
		cTo = 4
	}
	seq, err := NewRunner(1).ClusterSweep("c1355", 0.05, 2, cTo, 0)
	if err != nil {
		t.Fatal(err)
	}
	par, err := NewRunner(8).ClusterSweep("c1355", 0.05, 2, cTo, 0)
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprintf("%#v", seq) != fmt.Sprintf("%#v", par) {
		t.Errorf("parallel sweep differs:\nseq: %#v\npar: %#v", seq, par)
	}
	for i, p := range seq {
		if p.C != 2+i {
			t.Fatalf("point %d has C=%d, want %d (ordering must be deterministic)", i, p.C, 2+i)
		}
	}
}

func TestRunOnSharesPrefixAcrossPoints(t *testing.T) {
	eng := flow.New()
	a, err := RunOn(eng, Config{Benchmark: "c1355", Beta: 0.05, SkipLayout: true})
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunOn(eng, Config{Benchmark: "c1355", Beta: 0.10, MaxClusters: 2, SkipLayout: true})
	if err != nil {
		t.Fatal(err)
	}
	if a.Placement != b.Placement || a.Timing != b.Timing {
		t.Error("engine recomputed the prefix for a second (beta, C) point")
	}
	if eng.PrefixCount() != 1 {
		t.Errorf("PrefixCount() = %d, want 1", eng.PrefixCount())
	}
	// The engine-served result must match the from-scratch path.
	plain, err := Run(Config{Benchmark: "c1355", Beta: 0.05, SkipLayout: true})
	if err != nil {
		t.Fatal(err)
	}
	ha, _ := a.SavingsPct()
	hp, _ := plain.SavingsPct()
	if ha != hp || a.Constraints != plain.Constraints || a.DcritPS != plain.DcritPS {
		t.Errorf("cached flow diverged: savings %g vs %g, constraints %d vs %d",
			ha, hp, a.Constraints, plain.Constraints)
	}
}

// TestTable1EngineSpeedup logs the wall-clock gain of the cached, parallel
// engine over the uncached sequential path on a small grid. It asserts only
// a sanity bound (parallel no slower than 1.5x the uncached time) because
// CI machines vary; the acceptance measurement over the full suite is
// recorded in README.md.
func TestTable1EngineSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("timing comparison in -short mode")
	}
	opts := testTable1Opts()

	start := time.Now()
	// Uncached sequential baseline: a fresh engine per cell, like the
	// pre-flow-engine drivers that called Run() for every (beta, C) point.
	for _, name := range opts.Benchmarks {
		for _, beta := range opts.Betas {
			o := opts
			o.Benchmarks, o.Betas = []string{name}, []float64{beta}
			if _, err := NewRunner(1).Table1(o); err != nil {
				t.Fatal(err)
			}
		}
	}
	uncached := time.Since(start)

	start = time.Now()
	if _, err := NewRunner(0).Table1(opts); err != nil {
		t.Fatal(err)
	}
	engine := time.Since(start)

	t.Logf("table1 %v x %v: uncached sequential %v, cached parallel %v (%.1fx)",
		opts.Benchmarks, opts.Betas, uncached, engine,
		float64(uncached)/float64(engine))
	if engine > uncached*3/2 {
		t.Errorf("flow engine slower than uncached path: %v vs %v", engine, uncached)
	}
}
