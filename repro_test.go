package repro

import (
	"math"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/netlist"
)

func TestRunEndToEnd(t *testing.T) {
	res, err := Run(Config{Benchmark: "c1355", Beta: 0.05, MaxClusters: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Design.Gates == 0 || res.Rows == 0 || res.DcritPS <= 0 {
		t.Fatalf("degenerate result: %+v", res.Design)
	}
	if res.Single == nil || res.Heuristic == nil {
		t.Fatal("missing allocations")
	}
	h, _ := res.SavingsPct()
	if h <= 0 || h >= 100 {
		t.Errorf("heuristic savings %.1f%% implausible", h)
	}
	if res.Layout == nil || !res.Layout.Feasible() {
		t.Error("layout check missing or infeasible")
	}
	if res.ILP != nil {
		t.Error("ILP ran without being requested")
	}
}

func TestRunWithILP(t *testing.T) {
	res, err := Run(Config{
		Benchmark: "c1355",
		Beta:      0.05,
		RunILP:    true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.ILP == nil {
		t.Fatalf("no ILP solution (status %s)", res.ILPStatus)
	}
	h, i := res.SavingsPct()
	if i < h-1e-6 {
		t.Errorf("ILP savings %.2f below heuristic %.2f", i, h)
	}
	if res.ILPNodes <= 0 {
		t.Error("no nodes reported")
	}
}

func TestRunValidation(t *testing.T) {
	if _, err := Run(Config{}); err == nil {
		t.Error("empty config accepted")
	}
	if _, err := Run(Config{Benchmark: "bogus"}); err == nil {
		t.Error("unknown benchmark accepted")
	}
	if _, err := Run(Config{Benchmark: "c1355", Beta: 0.5}); err == nil {
		t.Error("uncompensatable beta accepted")
	}
}

func TestRunCustomDesign(t *testing.T) {
	lib := Library()
	b := netlist.NewBuilder("custom", lib)
	a, x := b.PI("a"), b.PI("b")
	s := b.Nand(a, x)
	for i := 0; i < 200; i++ {
		s = b.Nand(s, x)
	}
	b.Output("y", s)
	d, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(Config{Design: d, Beta: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	if res.Design.Name != "custom" {
		t.Errorf("wrong design: %s", res.Design.Name)
	}
}

func TestFigure1Driver(t *testing.T) {
	pts, err := Figure1(0.05)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 20 {
		t.Fatalf("points = %d, want 20 (0..0.95 in 50mV)", len(pts))
	}
	var at05 int
	for i, p := range pts {
		if math.Abs(p.Vbs-0.5) < 1e-9 {
			at05 = i
		}
	}
	if math.Abs(pts[at05].Speedup-0.21) > 0.02 {
		t.Errorf("speedup at 0.5V = %.3f, want ~0.21", pts[at05].Speedup)
	}
	if math.Abs(pts[at05].LeakFactor-12.74) > 1.0 {
		t.Errorf("leakage at 0.5V = %.2f, want ~12.74", pts[at05].LeakFactor)
	}
}

func TestTable1SmallSlice(t *testing.T) {
	rows, err := Table1(Table1Options{
		Benchmarks: []string{"c1355"},
		Betas:      []float64{0.05, 0.10},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(rows))
	}
	for _, r := range rows {
		if r.SingleBBuW <= 0 {
			t.Error("single BB leakage missing")
		}
		if r.HeurSavC3 < r.HeurSavC2-1e-9 {
			t.Errorf("beta=%.0f%%: C=3 heuristic %.1f%% worse than C=2 %.1f%%",
				r.BetaPct, r.HeurSavC3, r.HeurSavC2)
		}
		if r.ILPValidC2 && r.ILPSavC2 < r.HeurSavC2-1e-6 {
			t.Error("ILP below heuristic at C=2")
		}
	}
	// Savings grow with beta (Table 1's trend).
	if rows[1].HeurSavC3 <= rows[0].HeurSavC3 {
		t.Errorf("savings did not grow with beta: %.1f -> %.1f",
			rows[0].HeurSavC3, rows[1].HeurSavC3)
	}
}

func TestClusterSweepMarginalGains(t *testing.T) {
	// The paper's in-text experiment: c5315 swept C=2..11 at beta=5%
	// gains only ~2.5% over C=2 (optimizer-quality sweep).
	pts, err := ClusterSweep("c5315", 0.05, 2, 11, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 10 {
		t.Fatalf("points = %d, want 10", len(pts))
	}
	first, last := pts[0].SavingsPct, pts[len(pts)-1].SavingsPct
	for i := 1; i < len(pts); i++ {
		if pts[i].SavingsPct < pts[i-1].SavingsPct-0.5 {
			t.Errorf("savings dropped at C=%d", pts[i].C)
		}
	}
	gain := last - first
	t.Logf("c5315 sweep: C=2 %.2f%% ... C=11 %.2f%% (marginal gain %.2f%%)", first, last, gain)
	if gain < 0 || gain > 8 {
		t.Errorf("marginal gain %.2f%% out of the paper's 'marginal' regime", gain)
	}
}

func TestMultiBlockFigure2(t *testing.T) {
	res, err := MultiBlock(
		[]string{"c1355", "c3540", "c5315", "c7552"},
		[]float64{0.05, 0.08, 0.05, 0.10},
	)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Blocks) != 4 {
		t.Fatalf("blocks = %d, want 4", len(res.Blocks))
	}
	for _, b := range res.Blocks {
		if len(b.Levels) == 0 || len(b.Levels) > 2 {
			t.Errorf("block %s needs %d pairs, want 1..2", b.Name, len(b.Levels))
		}
	}
	if res.Plan == nil || len(res.Plan.Lines) == 0 {
		t.Fatal("no distribution plan")
	}
	if res.GenAreaPct < 2 || res.GenAreaPct > 3 {
		t.Errorf("generator area %.1f%%, want the paper's 2-3%%", res.GenAreaPct)
	}
}

func TestStudyLayoutRenders(t *testing.T) {
	st, err := StudyLayout("c5315", 0.05, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(st.ASCII, "legend") {
		t.Error("ASCII missing legend")
	}
	if !strings.HasPrefix(st.SVG, "<svg") {
		t.Error("bad SVG")
	}
	if st.Report.AreaOverheadPct >= 6 {
		t.Errorf("area overhead %.2f%%", st.Report.AreaOverheadPct)
	}
}

func TestResolutionAblation(t *testing.T) {
	pts, err := ResolutionAblation(0.12)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 4 {
		t.Fatalf("points = %d", len(pts))
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].AvgLeakExcess < pts[i-1].AvgLeakExcess {
			t.Error("coarser resolution should lose more leakage")
		}
	}
}

func TestYieldDriver(t *testing.T) {
	st, err := Yield("c1355", 25, 7)
	if err != nil {
		t.Fatal(err)
	}
	before, after := st.YieldPct()
	if after < before {
		t.Errorf("yield dropped: %.0f -> %.0f", before, after)
	}
}

func TestRuntimeComparisonDriver(t *testing.T) {
	rows, err := RuntimeComparison([]string{"c1355"}, 0.05, 20*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0].ILPTime <= 0 || rows[0].HeuristicTime <= 0 {
		t.Fatalf("bad runtime rows: %+v", rows)
	}
	if rows[0].SpeedupX < 1 {
		t.Errorf("ILP faster than heuristic? %.1fx", rows[0].SpeedupX)
	}
}

func TestSolutionAccountingConsistent(t *testing.T) {
	res, err := Run(Config{Benchmark: "c3540", Beta: 0.10})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range []*core.Solution{res.Single, res.Heuristic} {
		if math.Abs(s.TotalLeakNW-s.ExtraLeakNW-
			(res.Single.TotalLeakNW-res.Single.ExtraLeakNW)) > 1e-6 {
			t.Errorf("%s: base leakage inconsistent", s.Method)
		}
	}
}

// TestRunSolverSelection drives the pluggable-solver seam end to end: each
// registered engine must produce a feasible allocation through Run, report
// which solver ran, and an unknown name must fail cleanly.
func TestRunSolverSelection(t *testing.T) {
	base, err := Run(Config{Benchmark: "c1355", Beta: 0.05, SkipLayout: true})
	if err != nil {
		t.Fatal(err)
	}
	if base.SolverName != "heuristic" {
		t.Errorf("default SolverName = %q, want heuristic", base.SolverName)
	}
	for _, name := range []string{"local", "ilp", "race"} {
		cfg := Config{Benchmark: "c1355", Beta: 0.05, Solver: name, SkipLayout: true}
		res, err := Run(cfg)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if res.SolverName != name {
			t.Errorf("%s: SolverName = %q", name, res.SolverName)
		}
		switch name {
		case "race":
			// The race returns its winning member's solution and names it.
			if res.RaceWinner == "" || res.Heuristic.Method != res.RaceWinner {
				t.Errorf("race: winner %q but method %q", res.RaceWinner, res.Heuristic.Method)
			}
			if res.ILPResult == nil {
				t.Error("race: no ILP diagnostics surfaced")
			}
		default:
			if res.Heuristic.Method != name {
				t.Errorf("%s: method %q", name, res.Heuristic.Method)
			}
		}
		if !res.Problem.CheckTiming(res.Heuristic.Assign) {
			t.Errorf("%s: allocation violates timing", name)
		}
		if res.Heuristic.ExtraLeakNW > base.Heuristic.ExtraLeakNW+1e-9 {
			t.Errorf("%s: leakage %f worse than the heuristic's %f",
				name, res.Heuristic.ExtraLeakNW, base.Heuristic.ExtraLeakNW)
		}
	}
	if _, err := Run(Config{Benchmark: "c1355", Beta: 0.05, Solver: "nope", SkipLayout: true}); err == nil {
		t.Error("unknown solver accepted")
	}
}
