package repro

import (
	"context"
	"fmt"
	"time"

	"repro/internal/bbgen"
	"repro/internal/core"
	"repro/internal/flow"
	"repro/internal/layout"
	"repro/internal/place"
	"repro/internal/spice"
	"repro/internal/sta"
	"repro/internal/tech"
	"repro/internal/variation"
)

// This file holds the experiment drivers that regenerate every figure and
// table of the paper. Each driver is used by both the benchmarks in
// bench_test.go and the command-line tools.
//
// The drivers run on a Runner: a shared flow.Engine memoizes the
// deterministic gen->place->STA prefix of every benchmark (computed once
// and reused across all (beta, C) points), and independent experiment cells
// fan out over a bounded worker pool with context cancellation and
// deterministic, input-ordered results. The package-level functions keep
// the original one-shot API on a private sequential Runner.

// Runner executes the experiment drivers on a shared, cached flow engine.
type Runner struct {
	eng      *flow.Engine
	parallel int
	ctx      context.Context
}

// NewRunner returns a Runner whose drivers run at most parallel experiment
// cells concurrently (0 = one per CPU, 1 = sequential). All drivers share
// one prefix cache, so a Runner reused across calls keeps amortizing the
// gen->place->STA work.
func NewRunner(parallel int) *Runner {
	return &Runner{eng: flow.New(), parallel: parallel}
}

// WithContext returns a shallow copy of the Runner (sharing its engine)
// whose drivers abort when ctx is cancelled.
func (r *Runner) WithContext(ctx context.Context) *Runner {
	c := *r
	c.ctx = ctx
	return &c
}

// Engine exposes the Runner's prefix cache, e.g. to pass to RunOn.
func (r *Runner) Engine() *flow.Engine { return r.eng }

func (r *Runner) context() context.Context {
	if r.ctx != nil {
		return r.ctx
	}
	return context.Background()
}

// Figure1 reproduces the paper's Figure 1: the simulated inverter speed-up
// and leakage increase across body bias voltages from 0 to Vdd.
func Figure1(stepV float64) ([]spice.SweepPoint, error) {
	if stepV <= 0 {
		stepV = 0.05
	}
	return spice.Figure1Sweep(tech.Default45nm(), stepV)
}

// Table1Options configure the Table 1 regeneration.
type Table1Options struct {
	// Benchmarks to run (default: all nine in paper order).
	Benchmarks []string
	// Betas to evaluate (default 5% and 10%).
	Betas []float64
	// ILPNodeLimit bounds each exact solve's branch-and-bound nodes
	// (default 50000). Node budgets make the ILP columns bit-reproducible
	// at any Runner parallelism and any ILPWorkers.
	ILPNodeLimit int
	// ILPWorkers sets each exact solve's tree parallelism (0 =
	// GOMAXPROCS); wall clock only, never the result.
	ILPWorkers int
	// ILPTimeLimit additionally interrupts each exact solve on wall clock
	// (0 = none); the paper likewise capped lp_solve's runtime. Where the
	// clock cuts the tree is machine-dependent, so setting it reintroduces
	// run-to-run variation in truncated cells.
	ILPTimeLimit time.Duration
	// ILPGateLimit skips the ILP on larger designs, reproducing the
	// paper's missing entries for Industrial2/3 (default 5000 gates).
	ILPGateLimit int
	// Solver names the registered allocation engine for the table's
	// non-ILP columns ("" = "heuristic"; e.g. "local" re-evaluates the
	// table with the portfolio solver). The exact columns always use the
	// ILP, warm-started from this solver's solution.
	Solver string
}

// Table1Row is one line of Table 1. The JSON tags are the wire form served
// by fbbd's /v1/table1.
type Table1Row struct {
	Benchmark  string  `json:"benchmark"`
	Gates      int     `json:"gates"`
	Rows       int     `json:"rows"`
	BetaPct    float64 `json:"betaPct"`
	SingleBBuW float64 `json:"singleBBuW"` // absolute leakage of the block-level baseline
	// ILP savings (percent) at C=2 and C=3; NaN-free: Valid is false for
	// skipped/failed solves (the paper's "-").
	ILPSavC2    float64 `json:"ilpSavC2"`
	ILPSavC3    float64 `json:"ilpSavC3"`
	ILPValidC2  bool    `json:"ilpValidC2"`
	ILPValidC3  bool    `json:"ilpValidC3"`
	ILPProvenC2 bool    `json:"ilpProvenC2"`
	ILPProvenC3 bool    `json:"ilpProvenC3"`
	// ILPStatusC2/C3 report the branch-and-bound outcome ("" when the ILP
	// was skipped) and ILPNodesC2/C3 the explored node counts.
	ILPStatusC2 string `json:"ilpStatusC2,omitempty"`
	ILPStatusC3 string `json:"ilpStatusC3,omitempty"`
	ILPNodesC2  int    `json:"ilpNodesC2,omitempty"`
	ILPNodesC3  int    `json:"ilpNodesC3,omitempty"`
	// Heuristic savings at C=2 and C=3.
	HeurSavC2   float64 `json:"heurSavC2"`
	HeurSavC3   float64 `json:"heurSavC3"`
	Constraints int     `json:"constraints"`
	// Err annotates a failed cell (""  = success). A failing cell no
	// longer discards the rest of the table: Table1 returns every row and
	// marks the broken ones here.
	Err string `json:"err,omitempty"`
}

// Table1 regenerates the paper's Table 1 on r's worker pool. The result
// always has one row per (benchmark, beta) in input order; rows whose cell
// failed carry the error in Err instead of aborting the whole table. The
// returned error is non-nil only when the run itself was cancelled.
//
// Every column is deterministic at any Runner parallelism: the ILP runs
// under a node budget (ILPNodeLimit), so its incumbent, Proven bits and
// node counts are bit-identical run to run regardless of core contention.
// Setting ILPTimeLimit opts back into wall-clock truncation, whose cells
// may vary between runs.
func (r *Runner) Table1(opts Table1Options) ([]Table1Row, error) {
	opts = opts.withDefaults()

	type cellKey struct {
		name string
		beta float64
	}
	var jobs []cellKey
	for _, name := range opts.Benchmarks {
		for _, beta := range opts.Betas {
			jobs = append(jobs, cellKey{name, beta})
		}
	}
	rows, errs := flow.MapAll(r.context(), r.parallel, len(jobs),
		func(_ context.Context, i int) (Table1Row, error) {
			return table1Cell(r.eng, jobs[i].name, jobs[i].beta, opts), nil
		})
	for _, err := range errs {
		if err != nil { // only cancellation: cell failures land in row.Err
			return rows, err
		}
	}
	return rows, nil
}

// Table1 regenerates the paper's Table 1 sequentially; see Runner.Table1.
func Table1(opts Table1Options) ([]Table1Row, error) {
	return NewRunner(1).Table1(opts)
}

// withCellDefaults fills the Table1Options fields a single cell reads.
// Table1CellOn applies it, so a cell computed directly on a prefix (the
// fbbd /v1/table1 path) sees exactly the per-cell defaults a full Table1
// run would.
func (o Table1Options) withCellDefaults() Table1Options {
	if o.ILPNodeLimit <= 0 {
		o.ILPNodeLimit = 50000
	}
	if o.ILPGateLimit <= 0 {
		o.ILPGateLimit = 5000
	}
	return o
}

// withDefaults additionally fills the grid-level fields (the benchmark and
// beta lists) that only Runner.Table1 iterates.
func (o Table1Options) withDefaults() Table1Options {
	if len(o.Benchmarks) == 0 {
		o.Benchmarks = Benchmarks()
	}
	if len(o.Betas) == 0 {
		o.Betas = []float64{0.05, 0.10}
	}
	return o.withCellDefaults()
}

// table1Cell computes one (benchmark, beta) row on a shared engine. Errors
// are annotated on the row rather than returned, so one broken cell cannot
// sink the completed ones.
func table1Cell(e *flow.Engine, name string, beta float64, opts Table1Options) Table1Row {
	pfx, err := e.Prefix(name, 0)
	if err != nil {
		return Table1Row{Benchmark: name, BetaPct: beta * 100, Err: err.Error()}
	}
	return Table1CellOn(pfx, name, beta, opts)
}

// Table1CellOn computes one (benchmark, beta) row of Table 1 on an already
// computed prefix — the per-cell half of Runner.Table1, exported so callers
// with their own prefix cache (fbbd) produce rows byte-identical to the
// in-process driver. Failures are annotated on the row, never returned.
func Table1CellOn(pfx *flow.Prefix, name string, beta float64, opts Table1Options) Table1Row {
	opts = opts.withCellDefaults()
	row := Table1Row{Benchmark: name, BetaPct: beta * 100}
	for _, c := range []int{2, 3} {
		res, err := RunWith(pfx, Config{
			Beta:        beta,
			MaxClusters: c,
			Solver:      opts.Solver,
			SkipLayout:  true,
		})
		if err != nil {
			row.Err = err.Error()
			return row
		}
		row.Gates = res.Design.Gates
		row.Rows = res.Rows
		row.Constraints = res.Constraints
		row.SingleBBuW = res.Single.TotalLeakNW / 1000
		heur := core.Savings(res.Single, res.Heuristic)
		if c == 2 {
			row.HeurSavC2 = heur
		} else {
			row.HeurSavC3 = heur
		}
		if res.Design.Gates <= opts.ILPGateLimit {
			sol, ires, err := res.Problem.SolveILP(core.ILPOptions{
				NodeLimit: opts.ILPNodeLimit,
				Workers:   opts.ILPWorkers,
				TimeLimit: opts.ILPTimeLimit,
				WarmStart: res.Heuristic,
			})
			if err != nil {
				row.Err = err.Error()
				return row
			}
			if sol != nil {
				sav := core.Savings(res.Single, sol)
				if c == 2 {
					row.ILPSavC2, row.ILPValidC2 = sav, true
					row.ILPProvenC2 = sol.Proven
				} else {
					row.ILPSavC3, row.ILPValidC3 = sav, true
					row.ILPProvenC3 = sol.Proven
				}
			}
			if ires != nil {
				if c == 2 {
					row.ILPStatusC2, row.ILPNodesC2 = ires.Status.String(), ires.Nodes
				} else {
					row.ILPStatusC3, row.ILPNodesC3 = ires.Status.String(), ires.Nodes
				}
			}
		}
	}
	return row
}

// SweepPoint is one point of the cluster-count sweep (the paper's in-text
// c5315 experiment, C = 2..11 at beta = 5%).
type SweepPoint struct {
	C            int
	SavingsPct   float64
	ClustersUsed int
}

// ClusterSweep sweeps the cluster cap. The routing pair limit is lifted to
// match C, as in the paper's what-if study (its conclusion — the marginal
// gain beyond C=3 is small — is what justifies the 2-pair layout). When
// ilpLimit is positive the sweep uses the exact allocator (warm-started by
// the heuristic) under that wall-clock budget, matching the paper's
// optimizer-quality sweep; otherwise it reports the heuristic, whose greedy
// split is noticeably weaker at C=2. The heuristic-only sweep is
// deterministic at any parallelism; the wall-clock-limited ILP may return
// different incumbents under core contention (Table1's node-budgeted path
// is the deterministic alternative).
func (r *Runner) ClusterSweep(name string, beta float64, cFrom, cTo int, ilpLimit time.Duration) ([]SweepPoint, error) {
	if cFrom < 1 || cTo < cFrom {
		return nil, fmt.Errorf("repro: bad sweep range [%d, %d]", cFrom, cTo)
	}
	return flow.Map(r.context(), r.parallel, cTo-cFrom+1,
		func(_ context.Context, i int) (SweepPoint, error) {
			c := cFrom + i
			res, err := RunOn(r.eng, Config{
				Benchmark:    name,
				Beta:         beta,
				MaxClusters:  c,
				MaxBiasPairs: c,
				SkipLayout:   true,
			})
			if err != nil {
				return SweepPoint{}, err
			}
			best := res.Heuristic
			if ilpLimit > 0 {
				sol, _, err := res.Problem.SolveILP(core.ILPOptions{
					TimeLimit: ilpLimit,
					WarmStart: res.Heuristic,
				})
				if err == nil && sol != nil {
					best = sol
				}
			}
			return SweepPoint{
				C:            c,
				SavingsPct:   core.Savings(res.Single, best),
				ClustersUsed: best.Clusters,
			}, nil
		})
}

// ClusterSweep sweeps the cluster cap sequentially; see Runner.ClusterSweep.
func ClusterSweep(name string, beta float64, cFrom, cTo int, ilpLimit time.Duration) ([]SweepPoint, error) {
	return NewRunner(1).ClusterSweep(name, beta, cFrom, cTo, ilpLimit)
}

// RuntimeRow compares allocator runtimes on one design (the paper reports
// ILP runtimes "comparable" on small designs and >1000x the heuristic's on
// large ones).
type RuntimeRow struct {
	Benchmark     string
	Constraints   int
	HeuristicTime time.Duration
	ILPTime       time.Duration
	SpeedupX      float64
	ILPStatus     string
}

// RuntimeComparison measures both allocators. The allocator wall-clock
// times are the measurement, so the cells always run one at a time
// regardless of the Runner's parallelism (CPU contention would inflate
// them); the pool still provides cancellation and the engine still shares
// the prefixes with the other drivers.
func (r *Runner) RuntimeComparison(names []string, beta float64, ilpLimit time.Duration) ([]RuntimeRow, error) {
	return flow.Map(r.context(), 1, len(names),
		func(_ context.Context, i int) (RuntimeRow, error) {
			res, err := RunOn(r.eng, Config{
				Benchmark:    names[i],
				Beta:         beta,
				RunILP:       true,
				ILPTimeLimit: ilpLimit,
				SkipLayout:   true,
			})
			if err != nil {
				return RuntimeRow{}, err
			}
			row := RuntimeRow{
				Benchmark:     names[i],
				Constraints:   res.Constraints,
				HeuristicTime: res.HeuristicTime,
				ILPTime:       res.ILPTime,
				ILPStatus:     res.ILPStatus,
			}
			if res.HeuristicTime > 0 {
				row.SpeedupX = float64(res.ILPTime) / float64(res.HeuristicTime)
			}
			return row, nil
		})
}

// RuntimeComparison measures both allocators; see Runner.RuntimeComparison.
func RuntimeComparison(names []string, beta float64, ilpLimit time.Duration) ([]RuntimeRow, error) {
	return NewRunner(1).RuntimeComparison(names, beta, ilpLimit)
}

// LayoutStudy bundles the physical-implementation artifacts of Figures 3
// and 6 for one design.
type LayoutStudy struct {
	Result *Result
	Report *layout.Report
	ASCII  string
	SVG    string
}

// StudyLayout runs the flow and renders the clustered layout.
func StudyLayout(name string, beta float64, c int) (*LayoutStudy, error) {
	res, err := Run(Config{Benchmark: name, Beta: beta, MaxClusters: c})
	if err != nil {
		return nil, err
	}
	return &LayoutStudy{
		Result: res,
		Report: res.Layout,
		ASCII:  layout.RenderASCII(res.Placement, res.Heuristic.Assign, res.Layout),
		SVG:    layout.RenderSVG(res.Placement, res.Heuristic.Assign, res.Layout),
	}, nil
}

// BlockTuning is one block of the Figure 2 scenario.
type BlockTuning struct {
	Name       string
	BetaPct    float64
	Levels     []int // non-NBB levels the block's clusters need
	SavingsPct float64
}

// MultiBlockResult is the Figure 2 reproduction: several blocks compensated
// from one central generator.
type MultiBlockResult struct {
	Blocks         []BlockTuning
	Plan           *bbgen.Plan
	DistinctLevels int
	GenAreaPct     float64
}

// MultiBlock tunes each named block for its own slowdown on r's worker
// pool and routes the union of bias demands through a central generator.
func (r *Runner) MultiBlock(names []string, betas []float64) (*MultiBlockResult, error) {
	if len(names) != len(betas) {
		return nil, fmt.Errorf("repro: %d blocks but %d betas", len(names), len(betas))
	}
	blocks, err := flow.Map(r.context(), r.parallel, len(names),
		func(_ context.Context, i int) (BlockTuning, error) {
			res, err := RunOn(r.eng, Config{Benchmark: names[i], Beta: betas[i], SkipLayout: true})
			if err != nil {
				return BlockTuning{}, err
			}
			var levels []int
			seen := map[int]struct{}{}
			for _, j := range res.Heuristic.Assign {
				if j == 0 {
					continue
				}
				if _, ok := seen[j]; !ok {
					seen[j] = struct{}{}
					levels = append(levels, j)
				}
			}
			return BlockTuning{
				Name:       names[i],
				BetaPct:    betas[i] * 100,
				Levels:     levels,
				SavingsPct: core.Savings(res.Single, res.Heuristic),
			}, nil
		})
	if err != nil {
		return nil, err
	}
	g := bbgen.New(tech.Default45nm())
	out := &MultiBlockResult{Blocks: blocks, GenAreaPct: g.AreaOverheadPct}
	reqs := make([]bbgen.BlockRequest, len(blocks))
	for i, b := range blocks {
		reqs[i] = bbgen.BlockRequest{Name: b.Name, Levels: b.Levels, Alarm: true}
	}
	plan, err := g.Distribute(reqs)
	if err != nil {
		return nil, err
	}
	out.Plan = plan
	out.DistinctLevels = plan.DistinctLevels
	return out, nil
}

// MultiBlock tunes the named blocks sequentially; see Runner.MultiBlock.
func MultiBlock(names []string, betas []float64) (*MultiBlockResult, error) {
	return NewRunner(1).MultiBlock(names, betas)
}

// Yield runs the Monte-Carlo post-silicon tuning study on a benchmark,
// tuning dies concurrently on r's worker pool over the cached placement.
// The prefix cache supplies the nominal timing, the reusable STA analyzer,
// and the reusable allocation engine; under them the per-die loop is the
// vectorized pipeline — buffer-reusing sampling, Dcrit-only light re-times,
// precomputed-table leakage and memoized allocations — so a die costs a
// handful of array passes, not a graph rebuild.
func (r *Runner) Yield(name string, dies int, seed int64) (*variation.YieldStats, error) {
	pfx, err := r.eng.Prefix(name, 0)
	if err != nil {
		return nil, err
	}
	return variation.YieldStudyOn(r.context(), pfx.Analyzer, pfx.Allocator, pfx.Timing,
		tech.Default45nm(), variation.Default(), dies, seed,
		variation.TuneOptions{GuardbandPct: 0.005, Workers: r.parallel, SolveCache: pfx.Solves})
}

// Yield runs the Monte-Carlo post-silicon tuning study with one tuning
// worker per CPU (its historic concurrency); see Runner.Yield.
func Yield(name string, dies int, seed int64) (*variation.YieldStats, error) {
	return NewRunner(0).Yield(name, dies, seed)
}

// ResolutionPoint is one row of the generator-resolution ablation.
type ResolutionPoint struct {
	StepMV        float64
	Levels        int
	AvgLeakExcess float64 // mean leakage-factor excess vs a continuous generator
}

// ResolutionAblation quantifies the paper's 50 mV resolution assumption
// against the 32 mV of [8] and coarser alternatives.
func ResolutionAblation(betaMax float64) ([]ResolutionPoint, error) {
	if betaMax <= 0 {
		betaMax = 0.12
	}
	p := tech.Default45nm()
	var pts []ResolutionPoint
	for _, step := range []float64{0.025, 0.032, 0.05, 0.1} {
		grid := tech.BiasGrid{StepV: step, MaxV: 0.5}
		loss, err := bbgen.ResolutionLoss(p, grid, betaMax, 400)
		if err != nil {
			return nil, err
		}
		pts = append(pts, ResolutionPoint{
			StepMV:        step * 1000,
			Levels:        grid.NumLevels(),
			AvgLeakExcess: loss,
		})
	}
	return pts, nil
}

// NominalTiming exposes STA on a named benchmark for examples.
func NominalTiming(name string) (*place.Placement, *sta.Timing, error) {
	d, err := buildBench(name, Library())
	if err != nil {
		return nil, nil, err
	}
	pfx, err := flow.PrefixFor(d, Library(), 0)
	if err != nil {
		return nil, nil, err
	}
	return pfx.Placement, pfx.Timing, nil
}
