package repro

import (
	"fmt"
	"time"

	"repro/internal/bbgen"
	"repro/internal/core"
	"repro/internal/layout"
	"repro/internal/place"
	"repro/internal/spice"
	"repro/internal/sta"
	"repro/internal/tech"
	"repro/internal/variation"
)

// This file holds the experiment drivers that regenerate every figure and
// table of the paper. Each driver is used by both the benchmarks in
// bench_test.go and the command-line tools.

// Figure1 reproduces the paper's Figure 1: the simulated inverter speed-up
// and leakage increase across body bias voltages from 0 to Vdd.
func Figure1(stepV float64) ([]spice.SweepPoint, error) {
	if stepV <= 0 {
		stepV = 0.05
	}
	return spice.Figure1Sweep(tech.Default45nm(), stepV)
}

// Table1Options configure the Table 1 regeneration.
type Table1Options struct {
	// Benchmarks to run (default: all nine in paper order).
	Benchmarks []string
	// Betas to evaluate (default 5% and 10%).
	Betas []float64
	// ILPTimeLimit bounds each exact solve; the paper likewise capped
	// lp_solve's runtime.
	ILPTimeLimit time.Duration
	// ILPGateLimit skips the ILP on larger designs, reproducing the
	// paper's missing entries for Industrial2/3 (default 5000 gates).
	ILPGateLimit int
}

// Table1Row is one line of Table 1.
type Table1Row struct {
	Benchmark  string
	Gates      int
	Rows       int
	BetaPct    float64
	SingleBBuW float64 // absolute leakage of the block-level baseline
	// ILP savings (percent) at C=2 and C=3; NaN-free: Valid is false for
	// skipped/failed solves (the paper's "-").
	ILPSavC2, ILPSavC3     float64
	ILPValidC2, ILPValidC3 bool
	ILPProvenC2            bool
	ILPProvenC3            bool
	// Heuristic savings at C=2 and C=3.
	HeurSavC2, HeurSavC3 float64
	Constraints          int
}

// Table1 regenerates the paper's Table 1.
func Table1(opts Table1Options) ([]Table1Row, error) {
	if len(opts.Benchmarks) == 0 {
		opts.Benchmarks = Benchmarks()
	}
	if len(opts.Betas) == 0 {
		opts.Betas = []float64{0.05, 0.10}
	}
	if opts.ILPTimeLimit <= 0 {
		opts.ILPTimeLimit = 20 * time.Second
	}
	if opts.ILPGateLimit <= 0 {
		opts.ILPGateLimit = 5000
	}

	var rows []Table1Row
	for _, name := range opts.Benchmarks {
		for _, beta := range opts.Betas {
			row, err := table1Cell(name, beta, opts)
			if err != nil {
				return nil, fmt.Errorf("repro: table1 %s beta=%g: %w", name, beta, err)
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

func table1Cell(name string, beta float64, opts Table1Options) (Table1Row, error) {
	row := Table1Row{Benchmark: name, BetaPct: beta * 100}
	for _, c := range []int{2, 3} {
		res, err := Run(Config{
			Benchmark:   name,
			Beta:        beta,
			MaxClusters: c,
			SkipLayout:  true,
		})
		if err != nil {
			return row, err
		}
		row.Gates = res.Design.Gates
		row.Rows = res.Rows
		row.Constraints = res.Constraints
		row.SingleBBuW = res.Single.TotalLeakNW / 1000
		heur := core.Savings(res.Single, res.Heuristic)
		if c == 2 {
			row.HeurSavC2 = heur
		} else {
			row.HeurSavC3 = heur
		}
		if res.Design.Gates <= opts.ILPGateLimit {
			sol, ires, err := res.Problem.SolveILP(core.ILPOptions{
				TimeLimit: opts.ILPTimeLimit,
				WarmStart: res.Heuristic,
			})
			if err != nil {
				return row, err
			}
			if sol != nil {
				sav := core.Savings(res.Single, sol)
				if c == 2 {
					row.ILPSavC2, row.ILPValidC2 = sav, true
					row.ILPProvenC2 = sol.Proven
				} else {
					row.ILPSavC3, row.ILPValidC3 = sav, true
					row.ILPProvenC3 = sol.Proven
				}
			}
			_ = ires
		}
	}
	return row, nil
}

// SweepPoint is one point of the cluster-count sweep (the paper's in-text
// c5315 experiment, C = 2..11 at beta = 5%).
type SweepPoint struct {
	C            int
	SavingsPct   float64
	ClustersUsed int
}

// ClusterSweep sweeps the cluster cap. The routing pair limit is lifted to
// match C, as in the paper's what-if study (its conclusion — the marginal
// gain beyond C=3 is small — is what justifies the 2-pair layout). When
// ilpLimit is positive the sweep uses the exact allocator (warm-started by
// the heuristic), matching the paper's optimizer-quality sweep; otherwise it
// reports the heuristic, whose greedy split is noticeably weaker at C=2.
func ClusterSweep(name string, beta float64, cFrom, cTo int, ilpLimit time.Duration) ([]SweepPoint, error) {
	if cFrom < 1 || cTo < cFrom {
		return nil, fmt.Errorf("repro: bad sweep range [%d, %d]", cFrom, cTo)
	}
	var pts []SweepPoint
	for c := cFrom; c <= cTo; c++ {
		res, err := Run(Config{
			Benchmark:    name,
			Beta:         beta,
			MaxClusters:  c,
			MaxBiasPairs: c,
			SkipLayout:   true,
		})
		if err != nil {
			return nil, err
		}
		best := res.Heuristic
		if ilpLimit > 0 {
			sol, _, err := res.Problem.SolveILP(core.ILPOptions{
				TimeLimit: ilpLimit,
				WarmStart: res.Heuristic,
			})
			if err == nil && sol != nil {
				best = sol
			}
		}
		pts = append(pts, SweepPoint{
			C:            c,
			SavingsPct:   core.Savings(res.Single, best),
			ClustersUsed: best.Clusters,
		})
	}
	return pts, nil
}

// RuntimeRow compares allocator runtimes on one design (the paper reports
// ILP runtimes "comparable" on small designs and >1000x the heuristic's on
// large ones).
type RuntimeRow struct {
	Benchmark     string
	Constraints   int
	HeuristicTime time.Duration
	ILPTime       time.Duration
	SpeedupX      float64
	ILPStatus     string
}

// RuntimeComparison measures both allocators.
func RuntimeComparison(names []string, beta float64, ilpLimit time.Duration) ([]RuntimeRow, error) {
	var rows []RuntimeRow
	for _, name := range names {
		res, err := Run(Config{
			Benchmark:    name,
			Beta:         beta,
			RunILP:       true,
			ILPTimeLimit: ilpLimit,
			SkipLayout:   true,
		})
		if err != nil {
			return nil, err
		}
		r := RuntimeRow{
			Benchmark:     name,
			Constraints:   res.Constraints,
			HeuristicTime: res.HeuristicTime,
			ILPTime:       res.ILPTime,
			ILPStatus:     res.ILPStatus,
		}
		if res.HeuristicTime > 0 {
			r.SpeedupX = float64(res.ILPTime) / float64(res.HeuristicTime)
		}
		rows = append(rows, r)
	}
	return rows, nil
}

// LayoutStudy bundles the physical-implementation artifacts of Figures 3
// and 6 for one design.
type LayoutStudy struct {
	Result *Result
	Report *layout.Report
	ASCII  string
	SVG    string
}

// StudyLayout runs the flow and renders the clustered layout.
func StudyLayout(name string, beta float64, c int) (*LayoutStudy, error) {
	res, err := Run(Config{Benchmark: name, Beta: beta, MaxClusters: c})
	if err != nil {
		return nil, err
	}
	return &LayoutStudy{
		Result: res,
		Report: res.Layout,
		ASCII:  layout.RenderASCII(res.Placement, res.Heuristic.Assign, res.Layout),
		SVG:    layout.RenderSVG(res.Placement, res.Heuristic.Assign, res.Layout),
	}, nil
}

// BlockTuning is one block of the Figure 2 scenario.
type BlockTuning struct {
	Name       string
	BetaPct    float64
	Levels     []int // non-NBB levels the block's clusters need
	SavingsPct float64
}

// MultiBlockResult is the Figure 2 reproduction: several blocks compensated
// from one central generator.
type MultiBlockResult struct {
	Blocks         []BlockTuning
	Plan           *bbgen.Plan
	DistinctLevels int
	GenAreaPct     float64
}

// MultiBlock tunes each named block for its own slowdown and routes the
// union of bias demands through a central generator.
func MultiBlock(names []string, betas []float64) (*MultiBlockResult, error) {
	if len(names) != len(betas) {
		return nil, fmt.Errorf("repro: %d blocks but %d betas", len(names), len(betas))
	}
	g := bbgen.New(tech.Default45nm())
	out := &MultiBlockResult{GenAreaPct: g.AreaOverheadPct}
	var reqs []bbgen.BlockRequest
	for i, name := range names {
		res, err := Run(Config{Benchmark: name, Beta: betas[i], SkipLayout: true})
		if err != nil {
			return nil, err
		}
		var levels []int
		seen := map[int]struct{}{}
		for _, j := range res.Heuristic.Assign {
			if j == 0 {
				continue
			}
			if _, ok := seen[j]; !ok {
				seen[j] = struct{}{}
				levels = append(levels, j)
			}
		}
		out.Blocks = append(out.Blocks, BlockTuning{
			Name:       name,
			BetaPct:    betas[i] * 100,
			Levels:     levels,
			SavingsPct: core.Savings(res.Single, res.Heuristic),
		})
		reqs = append(reqs, bbgen.BlockRequest{Name: name, Levels: levels, Alarm: true})
	}
	plan, err := g.Distribute(reqs)
	if err != nil {
		return nil, err
	}
	out.Plan = plan
	out.DistinctLevels = plan.DistinctLevels
	return out, nil
}

// Yield runs the Monte-Carlo post-silicon tuning study on a benchmark.
func Yield(name string, dies int, seed int64) (*variation.YieldStats, error) {
	lib := Library()
	d, err := buildBench(name, lib)
	if err != nil {
		return nil, err
	}
	pl, err := place.Place(d, lib, place.Options{})
	if err != nil {
		return nil, err
	}
	return variation.YieldStudy(pl, tech.Default45nm(), variation.Default(), dies, seed,
		variation.TuneOptions{GuardbandPct: 0.005})
}

// ResolutionPoint is one row of the generator-resolution ablation.
type ResolutionPoint struct {
	StepMV        float64
	Levels        int
	AvgLeakExcess float64 // mean leakage-factor excess vs a continuous generator
}

// ResolutionAblation quantifies the paper's 50 mV resolution assumption
// against the 32 mV of [8] and coarser alternatives.
func ResolutionAblation(betaMax float64) ([]ResolutionPoint, error) {
	if betaMax <= 0 {
		betaMax = 0.12
	}
	p := tech.Default45nm()
	var pts []ResolutionPoint
	for _, step := range []float64{0.025, 0.032, 0.05, 0.1} {
		grid := tech.BiasGrid{StepV: step, MaxV: 0.5}
		loss, err := bbgen.ResolutionLoss(p, grid, betaMax, 400)
		if err != nil {
			return nil, err
		}
		pts = append(pts, ResolutionPoint{
			StepMV:        step * 1000,
			Levels:        grid.NumLevels(),
			AvgLeakExcess: loss,
		})
	}
	return pts, nil
}

// NominalTiming exposes STA on a named benchmark for examples.
func NominalTiming(name string) (*place.Placement, *sta.Timing, error) {
	lib := Library()
	d, err := buildBench(name, lib)
	if err != nil {
		return nil, nil, err
	}
	pl, err := place.Place(d, lib, place.Options{})
	if err != nil {
		return nil, nil, err
	}
	tm, err := sta.Analyze(pl, sta.Options{})
	if err != nil {
		return nil, nil, err
	}
	return pl, tm, nil
}
