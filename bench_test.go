package repro

// One benchmark per artifact of the paper's evaluation. Each bench times the
// regenerating computation and prints the regenerated rows/series once, so
// that `go test -bench . -benchmem` doubles as the experiment log recorded
// in EXPERIMENTS.md.

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/cell"
	"repro/internal/core"
	"repro/internal/flow"
	"repro/internal/gen"
	"repro/internal/layout"
	"repro/internal/lp"
	"repro/internal/netlist"
	"repro/internal/place"
	"repro/internal/report"
	"repro/internal/sta"
	"repro/internal/tech"
	"repro/internal/variation"
)

var benchOnce flow.Once

func printOnce(key string, f func()) { benchOnce.Do(key, f) }

// BenchmarkFigure1BodyBiasSweep regenerates Figure 1: simulated inverter
// speed-up and leakage vs body bias.
func BenchmarkFigure1BodyBiasSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pts, err := Figure1(0.05)
		if err != nil {
			b.Fatal(err)
		}
		_ = pts
	}
	b.StopTimer()
	printOnce("fig1", func() {
		pts, _ := Figure1(0.05)
		t := report.New("\n[Figure 1] inverter vs body bias (45nm, simulated)",
			"vbs(V)", "speedup", "leakage(x)")
		for _, p := range pts {
			t.Add(fmt.Sprintf("%.2f", p.Vbs),
				fmt.Sprintf("%.1f%%", p.Speedup*100),
				fmt.Sprintf("%.2f", p.LeakFactor))
		}
		fmt.Print(t.String())
	})
}

// table1Bench runs one Table 1 benchmark's heuristic flow per iteration and
// prints the full row (with a budgeted ILP for designs the paper solved).
func table1Bench(b *testing.B, name string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		res, err := Run(Config{Benchmark: name, Beta: 0.05, SkipLayout: true})
		if err != nil {
			b.Fatal(err)
		}
		_ = res
	}
	b.StopTimer()
	printOnce("table1:"+name, func() {
		rows, err := Table1(Table1Options{
			Benchmarks: []string{name},
		})
		if err != nil {
			fmt.Println("table1:", err)
			return
		}
		t := report.New("\n[Table 1] "+name,
			"beta", "singleBB(uW)", "ILP C=2", "ILP C=3", "heur C=2", "heur C=3", "constr")
		cellOf := func(valid, proven bool, v float64) string {
			if !valid {
				return "-"
			}
			s := fmt.Sprintf("%.2f%%", v)
			if !proven {
				s += "*"
			}
			return s
		}
		for _, r := range rows {
			if r.Err != "" {
				fmt.Println("table1:", name, r.Err)
				continue
			}
			t.Add(fmt.Sprintf("%.0f%%", r.BetaPct),
				fmt.Sprintf("%.3f", r.SingleBBuW),
				cellOf(r.ILPValidC2, r.ILPProvenC2, r.ILPSavC2),
				cellOf(r.ILPValidC3, r.ILPProvenC3, r.ILPSavC3),
				fmt.Sprintf("%.2f%%", r.HeurSavC2),
				fmt.Sprintf("%.2f%%", r.HeurSavC3),
				fmt.Sprint(r.Constraints))
		}
		fmt.Print(t.String())
	})
}

func BenchmarkTable1C1355(b *testing.B)       { table1Bench(b, "c1355") }
func BenchmarkTable1C3540(b *testing.B)       { table1Bench(b, "c3540") }
func BenchmarkTable1C5315(b *testing.B)       { table1Bench(b, "c5315") }
func BenchmarkTable1C7552(b *testing.B)       { table1Bench(b, "c7552") }
func BenchmarkTable1Adder128(b *testing.B)    { table1Bench(b, "adder128") }
func BenchmarkTable1C6288(b *testing.B)       { table1Bench(b, "c6288") }
func BenchmarkTable1Industrial1(b *testing.B) { table1Bench(b, "industrial1") }
func BenchmarkTable1Industrial2(b *testing.B) { table1Bench(b, "industrial2") }
func BenchmarkTable1Industrial3(b *testing.B) { table1Bench(b, "industrial3") }

// BenchmarkClusterCountSweepC5315 regenerates the in-text experiment:
// C = 2..11 on c5315 at beta = 5% gains only ~2.5%.
func BenchmarkClusterCountSweepC5315(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := ClusterSweep("c5315", 0.05, 2, 11, 0); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	printOnce("sweep", func() {
		pts, err := ClusterSweep("c5315", 0.05, 2, 11, 5*time.Second)
		if err != nil {
			fmt.Println("sweep:", err)
			return
		}
		t := report.New("\n[in-text] c5315 cluster sweep, beta=5% (ILP-quality)", "C", "savings")
		for _, p := range pts {
			t.Add(fmt.Sprint(p.C), fmt.Sprintf("%.2f%%", p.SavingsPct))
		}
		fmt.Print(t.String())
		fmt.Printf("marginal gain C=2 -> C=11: %.2f%% (paper: 2.56%%)\n",
			pts[len(pts)-1].SavingsPct-pts[0].SavingsPct)
	})
}

// BenchmarkRuntimeHeuristic and BenchmarkRuntimeILP together regenerate the
// in-text runtime comparison (heuristic ~1000x faster on large designs).
func BenchmarkRuntimeHeuristic(b *testing.B) {
	res, err := Run(Config{Benchmark: "c6288", Beta: 0.05, SkipLayout: true})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := res.Problem.SolveHeuristic(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRuntimeILP(b *testing.B) {
	res, err := Run(Config{Benchmark: "c1355", Beta: 0.05, SkipLayout: true})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := res.Problem.SolveILP(core.ILPOptions{
			WarmStart: res.Heuristic,
		}); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	printOnce("runtime", func() {
		rows, err := RuntimeComparison([]string{"c1355", "c3540", "c5315"}, 0.05, 20*time.Second)
		if err != nil {
			fmt.Println("runtime:", err)
			return
		}
		t := report.New("\n[in-text] allocator runtimes",
			"benchmark", "constr", "heuristic", "ILP", "ILP/heur", "ILP status")
		for _, r := range rows {
			t.Add(r.Benchmark, fmt.Sprint(r.Constraints),
				r.HeuristicTime.Round(time.Microsecond).String(),
				r.ILPTime.Round(time.Millisecond).String(),
				fmt.Sprintf("%.0fx", r.SpeedupX), r.ILPStatus)
		}
		fmt.Print(t.String())
	})
}

// BenchmarkSolveILP times a complete proven-optimal exact solve on the
// Table 1 circuits the paper's lp_solve handled: presolve, pseudo-cost
// branching and the deterministic parallel tree, from a heuristic warm
// start. The sub-benchmarks ablate one engine stage each (most-fractional
// branching, no presolve, a single worker), so the bench log shows what
// every stage buys on real instances.
func BenchmarkSolveILP(b *testing.B) {
	for _, name := range []string{"c1355", "c3540", "c5315"} {
		res, err := Run(Config{Benchmark: name, Beta: 0.05, SkipLayout: true})
		if err != nil {
			b.Fatal(err)
		}
		for _, cfg := range []struct {
			label string
			opts  core.ILPOptions
		}{
			{"full", core.ILPOptions{}},
			{"mostfrac", core.ILPOptions{Branching: "mostfrac"}},
			{"nopresolve", core.ILPOptions{NoPresolve: true}},
			{"serial", core.ILPOptions{Workers: 1}},
		} {
			b.Run(name+"/"+cfg.label, func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					opts := cfg.opts
					opts.WarmStart = res.Heuristic
					sol, ir, err := res.Problem.SolveILP(opts)
					if err != nil {
						b.Fatal(err)
					}
					if sol == nil || !sol.Proven {
						b.Fatalf("not proven: %v", ir.Status)
					}
					b.ReportMetric(float64(ir.Nodes), "nodes")
				}
			})
		}
	}
}

// BenchmarkFigure3LayoutOverheads regenerates the layout-style analysis of
// Figure 3: contact-cell utilization increase and well-separation bounds.
func BenchmarkFigure3LayoutOverheads(b *testing.B) {
	res, err := Run(Config{Benchmark: "c5315", Beta: 0.05})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := layout.Apply(res.Placement, res.Heuristic.Assign, layout.Options{}); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	printOnce("fig3", func() {
		rep := res.Layout
		fmt.Printf("\n[Figure 3] c5315 layout: %d bias pairs, max row-util increase %.1f%% "+
			"(paper ~6%%), %d well boundaries, area overhead %.2f%% (paper <5%%)\n",
			len(rep.VbsLevels), rep.MaxUtilIncrease*100,
			rep.WellSepBoundaries, rep.AreaOverheadPct)
	})
}

// BenchmarkWellSeparationArea sweeps the Table 1 suite and reports the area
// overhead of well separation (the paper: always below 5%).
func BenchmarkWellSeparationArea(b *testing.B) {
	type fixture struct {
		pl     *place.Placement
		assign []int
	}
	var fixtures []fixture
	names := []string{"c1355", "c3540", "c5315", "c7552", "c6288"}
	for _, n := range names {
		res, err := Run(Config{Benchmark: n, Beta: 0.05})
		if err != nil {
			b.Fatal(err)
		}
		fixtures = append(fixtures, fixture{res.Placement, res.Heuristic.Assign})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, f := range fixtures {
			if _, err := layout.Apply(f.pl, f.assign, layout.Options{}); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.StopTimer()
	printOnce("wellsep", func() {
		t := report.New("\n[in-text] well-separation area overhead", "benchmark", "boundaries", "overhead")
		for i, f := range fixtures {
			rep, _ := layout.Apply(f.pl, f.assign, layout.Options{})
			t.Add(names[i], fmt.Sprint(rep.WellSepBoundaries), fmt.Sprintf("%.2f%%", rep.AreaOverheadPct))
		}
		fmt.Print(t.String())
	})
}

// BenchmarkFigure6PlacedRouted regenerates Figure 6: the placed-and-routed
// c5315 with two vbs pairs through the die centre (SVG render).
func BenchmarkFigure6PlacedRouted(b *testing.B) {
	res, err := Run(Config{Benchmark: "c5315", Beta: 0.05})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var svg string
	for i := 0; i < b.N; i++ {
		svg = layout.RenderSVG(res.Placement, res.Heuristic.Assign, res.Layout)
	}
	b.StopTimer()
	printOnce("fig6", func() {
		fmt.Printf("\n[Figure 6] c5315 placed+routed SVG: %d bytes, %d rows, %d rail tracks\n",
			len(svg), res.Placement.NumRows, res.Layout.BiasRailTracks)
	})
}

// BenchmarkFigure2MultiBlockTuning regenerates the Figure 2 scenario.
func BenchmarkFigure2MultiBlockTuning(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := MultiBlock(
			[]string{"c1355", "c3540", "c5315", "c7552"},
			[]float64{0.05, 0.08, 0.05, 0.10}); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	printOnce("fig2", func() {
		res, _ := MultiBlock(
			[]string{"c1355", "c3540", "c5315", "c7552"},
			[]float64{0.05, 0.08, 0.05, 0.10})
		fmt.Printf("\n[Figure 2] central generator: %d blocks, %d routed pairs, %d distinct voltages\n",
			len(res.Blocks), len(res.Plan.Lines), res.DistinctLevels)
	})
}

// BenchmarkYieldTuningStudy runs the Monte-Carlo post-silicon tuning study
// (the motivating system experiment).
func BenchmarkYieldTuningStudy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := Yield("c1355", 25, 7); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	printOnce("yield", func() {
		st, _ := Yield("c1355", 100, 7)
		before, after := st.YieldPct()
		fmt.Printf("\n[extension] yield study (100 dies, c1355): %.0f%% -> %.0f%%, "+
			"mean leak %.2f -> %.2f uW\n",
			before, after, st.MeanLeakBeforeNW/1000, st.MeanLeakAfterNW/1000)
	})
}

// BenchmarkGeneratorResolutionAblation quantifies the 50mV resolution
// assumption against 25/32/100mV generators.
func BenchmarkGeneratorResolutionAblation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := ResolutionAblation(0.12); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	printOnce("resolution", func() {
		pts, _ := ResolutionAblation(0.12)
		t := report.New("\n[ablation] generator resolution", "step(mV)", "levels", "avg leak excess(x)")
		for _, p := range pts {
			t.Add(fmt.Sprintf("%.0f", p.StepMV), fmt.Sprint(p.Levels), fmt.Sprintf("%.3f", p.AvgLeakExcess))
		}
		fmt.Print(t.String())
	})
}

// BenchmarkHeuristicRefineAblation measures the heuristic with and without
// its cleanup sweep (a design choice called out in DESIGN.md).
func BenchmarkHeuristicRefineAblation(b *testing.B) {
	res, err := Run(Config{Benchmark: "c1355", Beta: 0.05, SkipLayout: true})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := res.Problem.SolveHeuristicOpts(core.HeuristicOptions{SkipRefine: true}); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	printOnce("refine-ablation", func() {
		bare, _ := res.Problem.SolveHeuristicOpts(core.HeuristicOptions{SkipRefine: true})
		full, _ := res.Problem.SolveHeuristic()
		fmt.Printf("\n[ablation] c1355 heuristic refine sweep: off %.1f%% vs on %.1f%% savings\n",
			core.Savings(res.Single, bare), core.Savings(res.Single, full))
	})
}

// BenchmarkRBBLeakageRecovery exercises the reverse-body-bias extension:
// fast dies give leakage back (section 1-2 of the paper, after [8]).
func BenchmarkRBBLeakageRecovery(b *testing.B) {
	lib := cell.Default()
	d, err := gen.Build("c1355", lib)
	if err != nil {
		b.Fatal(err)
	}
	pl, err := place.Place(d, lib, place.Options{})
	if err != nil {
		b.Fatal(err)
	}
	proc := tech.Default45nm()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := variation.RecoveryStudy(pl, proc, variation.Default(), 10, 33,
			variation.RBBOptions{}); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	printOnce("rbb", func() {
		st, _ := variation.RecoveryStudy(pl, proc, variation.Default(), 60, 33, variation.RBBOptions{})
		fmt.Printf("\n[extension] RBB recovery (60 dies, c1355): %d fast dies reverse-biased, "+
			"mean die saving %.1f%%, fleet leakage %.0f -> %.0f nW\n",
			st.Recovered, st.MeanSavedPct, st.MeanLeakBeforeNW, st.MeanLeakAfterNW)
	})
}

// --- component micro-benchmarks -----------------------------------------

func BenchmarkComponentPlacement(b *testing.B) {
	lib := cell.Default()
	d, err := gen.Build("c6288", lib)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := place.Place(d, lib, place.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkComponentSTA(b *testing.B) {
	lib := cell.Default()
	d, err := gen.Build("c6288", lib)
	if err != nil {
		b.Fatal(err)
	}
	pl, err := place.Place(d, lib, place.Options{})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sta.Analyze(pl, sta.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkComponentCheckTiming(b *testing.B) {
	res, err := Run(Config{Benchmark: "c6288", Beta: 0.05, SkipLayout: true})
	if err != nil {
		b.Fatal(err)
	}
	assign := res.Heuristic.Assign
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res.Problem.CheckTiming(assign)
	}
}

// BenchmarkComponentAllocatorSolveAt tracks the batched allocation engine
// on the paper's in-text design: one shared core.Allocator, one reused
// Instance, a full materialize + heuristic solve per iteration (the unit of
// work every tuning-loop escalation and every experiment grid cell pays).
func BenchmarkComponentAllocatorSolveAt(b *testing.B) {
	pfx, err := flow.New().Prefix("c5315", 0)
	if err != nil {
		b.Fatal(err)
	}
	opts := core.Options{Beta: 0.05, MaxClusters: 3}
	_, inst, err := pfx.Allocator.SolveAt(opts, nil, nil) // warm the buffers
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := pfx.Allocator.SolveAt(opts, nil, inst); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkComponentLogicSim(b *testing.B) {
	lib := cell.Default()
	d, err := gen.Build("c6288", lib)
	if err != nil {
		b.Fatal(err)
	}
	sim, err := netlist.NewSimulator(d)
	if err != nil {
		b.Fatal(err)
	}
	sim.SetUintInputs("a", 16, 12345)
	sim.SetUintInputs("b", 16, 54321)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim.Eval()
	}
}

func BenchmarkComponentLPSolve(b *testing.B) {
	res, err := Run(Config{Benchmark: "c1355", Beta: 0.05, SkipLayout: true})
	if err != nil {
		b.Fatal(err)
	}
	model, _ := res.Problem.BuildILP()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := lp.Solve(&model.Problem); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkComponentVariationSample(b *testing.B) {
	lib := cell.Default()
	d, err := gen.Build("industrial1", lib)
	if err != nil {
		b.Fatal(err)
	}
	pl, err := place.Place(d, lib, place.Options{})
	if err != nil {
		b.Fatal(err)
	}
	proc := tech.Default45nm()
	m := variation.Default()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Sample(pl, proc, int64(i))
	}
}
