// Command charlib reproduces the paper's Figure 1: the delay speed-up and
// leakage increase of a 45nm inverter across forward body bias voltages,
// obtained from the transient and DC solvers of the spice package.
//
// Usage:
//
//	charlib [-step 0.05] [-csv]
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"

	"repro"
	"repro/internal/report"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "charlib:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("charlib", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		step = fs.Float64("step", 0.05, "sweep step in volts")
		csv  = fs.Bool("csv", false, "emit CSV instead of a table")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil // -h/-help: usage already printed, a clean exit
		}
		return err
	}

	pts, err := repro.Figure1(*step)
	if err != nil {
		return err
	}

	t := report.New(
		"Figure 1 — inverter delay and leakage vs body bias (45nm, simulated)",
		"vbsn(V)", "vbsp(V)", "speedup", "leakage(x)")
	for _, p := range pts {
		t.Add(
			fmt.Sprintf("%.2f", p.Vbs),
			fmt.Sprintf("%.2f", p.VbsP),
			fmt.Sprintf("%5.1f%%", p.Speedup*100),
			fmt.Sprintf("%8.2f", p.LeakFactor),
		)
	}
	if *csv {
		fmt.Fprint(stdout, t.CSV())
		return nil
	}
	fmt.Fprint(stdout, t.String())
	fmt.Fprintln(stdout, "\nnote: beyond 0.5V the forward source-body junction dominates leakage,")
	fmt.Fprintln(stdout, "which is why the allocation grid stops there (11 levels at 50mV).")
	return nil
}
