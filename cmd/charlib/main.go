// Command charlib reproduces the paper's Figure 1: the delay speed-up and
// leakage increase of a 45nm inverter across forward body bias voltages,
// obtained from the transient and DC solvers of the spice package.
//
// Usage:
//
//	charlib [-step 0.05] [-csv]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro"
	"repro/internal/report"
)

func main() {
	var (
		step = flag.Float64("step", 0.05, "sweep step in volts")
		csv  = flag.Bool("csv", false, "emit CSV instead of a table")
	)
	flag.Parse()

	pts, err := repro.Figure1(*step)
	if err != nil {
		fmt.Fprintln(os.Stderr, "charlib:", err)
		os.Exit(1)
	}

	t := report.New(
		"Figure 1 — inverter delay and leakage vs body bias (45nm, simulated)",
		"vbsn(V)", "vbsp(V)", "speedup", "leakage(x)")
	for _, p := range pts {
		t.Add(
			fmt.Sprintf("%.2f", p.Vbs),
			fmt.Sprintf("%.2f", p.VbsP),
			fmt.Sprintf("%5.1f%%", p.Speedup*100),
			fmt.Sprintf("%8.2f", p.LeakFactor),
		)
	}
	if *csv {
		fmt.Print(t.CSV())
		return
	}
	fmt.Print(t.String())
	fmt.Println("\nnote: beyond 0.5V the forward source-body junction dominates leakage,")
	fmt.Println("which is why the allocation grid stops there (11 levels at 50mV).")
}
