package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestCharlibTable(t *testing.T) {
	var out, errb bytes.Buffer
	if err := run(nil, &out, &errb); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "Figure 1") || !strings.Contains(s, "0.50") {
		t.Errorf("sweep table incomplete:\n%s", s)
	}
}

func TestCharlibCSV(t *testing.T) {
	var out, errb bytes.Buffer
	if err := run([]string{"-step", "0.1", "-csv"}, &out, &errb); err != nil {
		t.Fatal(err)
	}
	lines := strings.Count(strings.TrimSpace(out.String()), "\n")
	if lines < 5 {
		t.Errorf("CSV sweep too short:\n%s", out.String())
	}
}
