package main

import (
	"bytes"
	"context"
	"io"
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/serve"
)

func loadAgainst(t *testing.T, opts serve.Options, extra ...string) (string, error) {
	t.Helper()
	ts := httptest.NewServer(serve.New(opts).Handler())
	t.Cleanup(ts.Close)
	var out, errb bytes.Buffer
	args := append([]string{
		"-addr", ts.URL,
		"-duration", "300ms",
		"-qps", "120",
		"-bench", "c1355",
		"-dies", "4",
		"-seed", "7",
	}, extra...)
	err := run(context.Background(), args, &out, &errb)
	return out.String(), err
}

func TestLoadMixedTraffic(t *testing.T) {
	out, err := loadAgainst(t, serve.Options{})
	if err != nil {
		t.Fatalf("run: %v\n%s", err, out)
	}
	for _, want := range []string{"endpoint", "tune", "p50", "p99", "req/s dispatched", "req/s completed"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}

// TestReportSeparatesDenominators: the headline must report the dispatched
// and completed counts (and rates) as distinct numbers — a run that drops or
// sheds half its traffic must not present the dispatched count beside a
// completed-samples rate, where shedding reads as slowness.
func TestReportSeparatesDenominators(t *testing.T) {
	samples := []sample{
		{endpoint: "tune", latency: 10 * time.Millisecond},
		{endpoint: "tune", latency: 20 * time.Millisecond, shed: true},
	}
	var out bytes.Buffer
	printReport(&out, samples, 2*time.Second, 10, 3, 0, false)
	head := out.String()
	for _, want := range []string{
		"10 dispatched", "2 completed",
		"5.0 req/s dispatched", "1.0 req/s completed",
		"3 client drops",
	} {
		if !strings.Contains(head, want) {
			t.Errorf("headline missing %q:\n%s", want, head)
		}
	}
}

// TestLoadShedIsNotFailure: a deliberately saturated server sheds with 503;
// the load generator must report those as shed, not as errors, and exit 0.
func TestLoadShedIsNotFailure(t *testing.T) {
	out, err := loadAgainst(t, serve.Options{Workers: 1, Queue: -1},
		"-mix", "yield=1,tune=4", "-dies", "400", "-qps", "200", "-concurrency", "16")
	if err != nil {
		t.Fatalf("shed traffic failed the run: %v\n%s", err, out)
	}
}

// TestLoadRetryShedStormStaysWithinBudget: against a deliberately
// saturated server, -retry N must (a) actually retry shed requests, (b)
// report the amplification in the headline, and (c) keep attempts-per-
// request within the -retry budget — a retrying load generator must never
// multiply a shed storm beyond its configured bound.
func TestLoadRetryShedStormStaysWithinBudget(t *testing.T) {
	// One worker, no queue, and a prefix build that outlasts the whole run:
	// the first request holds the only slot, every later one is shed — a
	// guaranteed storm regardless of machine speed.
	out, err := loadAgainst(t, serve.Options{
		Workers: 1, Queue: -1, RetryAfterSec: 1,
		OnPrefixBuild: func(string) { time.Sleep(400 * time.Millisecond) },
	}, "-mix", "tune=1", "-qps", "200", "-concurrency", "16", "-retry", "2")
	if err != nil {
		t.Fatalf("shed storm with -retry failed the run: %v\n%s", err, out)
	}
	m := regexp.MustCompile(`(\d+) retries \((\d+\.\d+)x attempts/req\)`).FindStringSubmatch(out)
	if m == nil {
		t.Fatalf("headline missing retry amplification:\n%s", out)
	}
	retries, _ := strconv.Atoi(m[1])
	amp, _ := strconv.ParseFloat(m[2], 64)
	if retries == 0 {
		t.Errorf("shed storm under -retry 2 recorded no retries:\n%s", out)
	}
	if amp > 2.0 {
		t.Errorf("amplification %.2fx exceeds the -retry 2 budget:\n%s", amp, out)
	}
}

func TestLoadTransportErrorsFailTheRun(t *testing.T) {
	var out, errb bytes.Buffer
	err := run(context.Background(), []string{
		"-addr", "http://127.0.0.1:1", // nothing listens here
		"-duration", "100ms", "-qps", "50",
	}, &out, &errb)
	if err == nil {
		t.Fatal("unreachable server did not fail the run")
	}
}

func TestParseMix(t *testing.T) {
	m, err := parseMix("tune=6,die=2,yield=1,table1=1")
	if err != nil {
		t.Fatal(err)
	}
	if m.total != 10 || len(m.names) != 4 {
		t.Fatalf("mix %+v", m)
	}
	if _, err := parseMix("zap=1"); err == nil {
		t.Error("unknown endpoint accepted")
	}
	if _, err := parseMix("tune"); err == nil {
		t.Error("weightless entry accepted")
	}
	if _, err := parseMix("tune=0"); err == nil {
		t.Error("all-zero mix accepted")
	}
	if _, err := parseMix("tune=x"); err == nil {
		t.Error("non-numeric weight accepted")
	}
}

func TestPercentile(t *testing.T) {
	lats := []time.Duration{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	if p := percentile(lats, 0.50); p != 5 {
		t.Errorf("p50 = %d, want 5", p)
	}
	if p := percentile(lats, 0.90); p != 9 {
		t.Errorf("p90 = %d, want 9", p)
	}
	if p := percentile(lats, 0.99); p != 10 {
		t.Errorf("p99 = %d, want 10", p)
	}
	if p := percentile(nil, 0.5); p != 0 {
		t.Errorf("empty percentile = %d", p)
	}
}

// TestParseBenchesRejectsEmptyEntries is the regression test for the
// trailing-comma bug: "-bench c1355," used to rotate an empty benchmark
// name into every Nth request, producing a 400 storm that read as server
// errors. Empty entries must be a parse-time error naming the cause.
func TestParseBenchesRejectsEmptyEntries(t *testing.T) {
	for _, bad := range []string{"c1355,", ",c1355", "c1355,,c3540", "", " , "} {
		if _, err := parseBenches(bad); err == nil {
			t.Errorf("-bench %q accepted", bad)
		} else if !strings.Contains(err.Error(), "-bench") {
			t.Errorf("-bench %q: error %q does not name the flag", bad, err)
		}
	}
	got, err := parseBenches(" c1355 , c3540 ")
	if err != nil || len(got) != 2 || got[0] != "c1355" || got[1] != "c3540" {
		t.Errorf("valid list parsed as %v, %v", got, err)
	}
	// Same contract for the -addr target list.
	for _, bad := range []string{"http://a,", ",", ""} {
		if _, err := parseTargets(bad); err == nil {
			t.Errorf("-addr %q accepted", bad)
		}
	}
	// And end to end: the run must die at flag parsing, not mid-traffic.
	if err := run(context.Background(), []string{"-bench", "c1355,"}, io.Discard, io.Discard); err == nil {
		t.Error("run accepted a trailing-comma -bench")
	}
}

// TestLoadCancelledRunIsNotFailure is the regression test for the pacer
// cancellation bugs: (1) after its inter-arrival sleep the pacer used to
// dispatch one more request on an already-cancelled context, and (2)
// requests killed mid-flight by the cancellation were classified as server
// errors — together a clean Ctrl-C exited 1 blaming the server. A
// cancelled run whose only casualties are cancellation fallout must exit
// clean, reporting those samples as drops, not errors.
func TestLoadCancelledRunIsNotFailure(t *testing.T) {
	gate := make(chan struct{})
	// Every build parks on the gate: at cancel time all in-flight requests
	// are guaranteed to die by cancellation, never by completing.
	ts := httptest.NewServer(serve.New(serve.Options{
		Workers:       2,
		Queue:         64,
		OnPrefixBuild: func(string) { <-gate },
	}).Handler())
	t.Cleanup(ts.Close)
	// Registered after ts.Close so it runs first (cleanups are LIFO):
	// ts.Close waits for in-flight handlers, which are parked on the gate.
	t.Cleanup(func() { close(gate) })

	ctx, cancel := context.WithTimeout(context.Background(), 300*time.Millisecond)
	defer cancel()
	var out, errb bytes.Buffer
	err := run(ctx, []string{
		"-addr", ts.URL,
		"-duration", "1h", // only the context ends this run
		"-qps", "100",
		"-mix", "tune=1",
		"-bench", "c1355",
	}, &out, &errb)
	if err != nil {
		t.Fatalf("cancelled run exited dirty: %v\nstderr: %s\nreport:\n%s", err, errb.String(), out.String())
	}
	if s := out.String(); !strings.Contains(s, "client drops") {
		t.Errorf("report missing drop accounting:\n%s", s)
	}
}

// TestLoadMultiTargetList: -addr with a comma list drives every target and
// reports a per-replica row for each.
func TestLoadMultiTargetList(t *testing.T) {
	var urls []string
	for i := 0; i < 2; i++ {
		ts := httptest.NewServer(serve.New(serve.Options{}).Handler())
		t.Cleanup(ts.Close)
		urls = append(urls, ts.URL)
	}
	var out, errb bytes.Buffer
	err := run(context.Background(), []string{
		"-addr", strings.Join(urls, ","),
		"-duration", "300ms", "-qps", "80",
		"-mix", "tune=3,die=1", "-bench", "c1355", "-seed", "3",
	}, &out, &errb)
	if err != nil {
		t.Fatalf("multi-target run: %v\n%s", err, out.String())
	}
	s := out.String()
	for _, u := range urls {
		if !strings.Contains(s, u) {
			t.Errorf("per-replica report missing target %s:\n%s", u, s)
		}
	}
	for _, col := range []string{"prefixBuilds", "shed%", "cacheHits"} {
		if !strings.Contains(s, col) {
			t.Errorf("per-replica report missing column %q:\n%s", col, s)
		}
	}
}

// TestLoadRouterCluster is the acceptance smoke: fbbload pointed at a
// 2-replica routed cluster discovers the replicas behind the router,
// completes a mixed run, and reports per-replica shed rates and prefix
// builds. Consistent hashing shows up as locality: each benchmark's
// prefix is built on exactly one replica, once.
func TestLoadRouterCluster(t *testing.T) {
	var urls []string
	for i := 0; i < 2; i++ {
		ts := httptest.NewServer(serve.New(serve.Options{}).Handler())
		t.Cleanup(ts.Close)
		urls = append(urls, ts.URL)
	}
	rt, err := serve.NewRouter(serve.RouterOptions{Replicas: urls})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Close)
	front := httptest.NewServer(rt.Handler())
	t.Cleanup(front.Close)

	var out, errb bytes.Buffer
	err = run(context.Background(), []string{
		"-addr", front.URL,
		"-duration", "400ms", "-qps", "80",
		"-mix", "tune=4,die=2,table1=1",
		"-bench", "c1355,c3540", "-seed", "5",
	}, &out, &errb)
	if err != nil {
		t.Fatalf("routed run: %v\nstderr: %s\nreport:\n%s", err, errb.String(), out.String())
	}
	s := out.String()
	if !strings.Contains(s, "routed; router shed") {
		t.Errorf("report does not identify the router:\n%s", s)
	}
	for _, u := range urls {
		if !strings.Contains(s, u) {
			t.Errorf("report missing discovered replica %s:\n%s", u, s)
		}
	}
	// Locality, read the way an operator would — from each replica's
	// /v1/stats: two distinct designs were replayed hard, and across the
	// cluster each was built exactly once.
	var totalBuilds int64
	for _, u := range urls {
		st, err := serve.NewClient(u).Stats(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		totalBuilds += st.Cache.Builds
	}
	if totalBuilds != 2 {
		t.Errorf("cluster built %d prefixes for 2 designs; routing is not key-stable", totalBuilds)
	}
}

func TestBadFlags(t *testing.T) {
	for _, args := range [][]string{
		{"-qps", "0"},
		{"-concurrency", "0"},
		{"-mix", "bogus=1"},
		{"-no-such-flag"},
	} {
		if err := run(context.Background(), args, io.Discard, io.Discard); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
	if err := run(context.Background(), []string{"-h"}, io.Discard, io.Discard); err != nil {
		t.Errorf("-h: %v", err)
	}
}
