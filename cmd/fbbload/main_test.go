package main

import (
	"bytes"
	"context"
	"io"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/serve"
)

func loadAgainst(t *testing.T, opts serve.Options, extra ...string) (string, error) {
	t.Helper()
	ts := httptest.NewServer(serve.New(opts).Handler())
	t.Cleanup(ts.Close)
	var out, errb bytes.Buffer
	args := append([]string{
		"-addr", ts.URL,
		"-duration", "300ms",
		"-qps", "120",
		"-bench", "c1355",
		"-dies", "4",
		"-seed", "7",
	}, extra...)
	err := run(context.Background(), args, &out, &errb)
	return out.String(), err
}

func TestLoadMixedTraffic(t *testing.T) {
	out, err := loadAgainst(t, serve.Options{})
	if err != nil {
		t.Fatalf("run: %v\n%s", err, out)
	}
	for _, want := range []string{"endpoint", "tune", "p50", "p99", "req/s dispatched", "req/s completed"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}

// TestReportSeparatesDenominators: the headline must report the dispatched
// and completed counts (and rates) as distinct numbers — a run that drops or
// sheds half its traffic must not present the dispatched count beside a
// completed-samples rate, where shedding reads as slowness.
func TestReportSeparatesDenominators(t *testing.T) {
	samples := []sample{
		{endpoint: "tune", latency: 10 * time.Millisecond},
		{endpoint: "tune", latency: 20 * time.Millisecond, shed: true},
	}
	var out bytes.Buffer
	printReport(&out, samples, 2*time.Second, 10, 3)
	head := out.String()
	for _, want := range []string{
		"10 dispatched", "2 completed",
		"5.0 req/s dispatched", "1.0 req/s completed",
		"3 client drops",
	} {
		if !strings.Contains(head, want) {
			t.Errorf("headline missing %q:\n%s", want, head)
		}
	}
}

// TestLoadShedIsNotFailure: a deliberately saturated server sheds with 503;
// the load generator must report those as shed, not as errors, and exit 0.
func TestLoadShedIsNotFailure(t *testing.T) {
	out, err := loadAgainst(t, serve.Options{Workers: 1, Queue: -1},
		"-mix", "yield=1,tune=4", "-dies", "400", "-qps", "200", "-concurrency", "16")
	if err != nil {
		t.Fatalf("shed traffic failed the run: %v\n%s", err, out)
	}
}

func TestLoadTransportErrorsFailTheRun(t *testing.T) {
	var out, errb bytes.Buffer
	err := run(context.Background(), []string{
		"-addr", "http://127.0.0.1:1", // nothing listens here
		"-duration", "100ms", "-qps", "50",
	}, &out, &errb)
	if err == nil {
		t.Fatal("unreachable server did not fail the run")
	}
}

func TestParseMix(t *testing.T) {
	m, err := parseMix("tune=6,die=2,yield=1,table1=1")
	if err != nil {
		t.Fatal(err)
	}
	if m.total != 10 || len(m.names) != 4 {
		t.Fatalf("mix %+v", m)
	}
	if _, err := parseMix("zap=1"); err == nil {
		t.Error("unknown endpoint accepted")
	}
	if _, err := parseMix("tune"); err == nil {
		t.Error("weightless entry accepted")
	}
	if _, err := parseMix("tune=0"); err == nil {
		t.Error("all-zero mix accepted")
	}
	if _, err := parseMix("tune=x"); err == nil {
		t.Error("non-numeric weight accepted")
	}
}

func TestPercentile(t *testing.T) {
	lats := []time.Duration{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	if p := percentile(lats, 0.50); p != 5 {
		t.Errorf("p50 = %d, want 5", p)
	}
	if p := percentile(lats, 0.90); p != 9 {
		t.Errorf("p90 = %d, want 9", p)
	}
	if p := percentile(lats, 0.99); p != 10 {
		t.Errorf("p99 = %d, want 10", p)
	}
	if p := percentile(nil, 0.5); p != 0 {
		t.Errorf("empty percentile = %d", p)
	}
}

func TestBadFlags(t *testing.T) {
	for _, args := range [][]string{
		{"-qps", "0"},
		{"-concurrency", "0"},
		{"-mix", "bogus=1"},
		{"-no-such-flag"},
	} {
		if err := run(context.Background(), args, io.Discard, io.Discard); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
	if err := run(context.Background(), []string{"-h"}, io.Discard, io.Discard); err != nil {
		t.Errorf("-h: %v", err)
	}
}
