// Command fbbload replays mixed-endpoint traffic against a running fbbd —
// or a whole fbbd cluster — at a target QPS and reports per-endpoint
// latency percentiles — the measurement half of the service's "heavy
// concurrent traffic" contract, and the quickest way to watch the
// coalesced prefix cache and the 503 backpressure behave under load.
//
// Traffic is an open-loop Poisson-less pacer: one request is dispatched
// every 1/qps regardless of completions (up to -concurrency in flight;
// beyond that arrivals are counted as client drops rather than silently
// back-pressuring the schedule). The endpoint of each request is drawn from
// -mix, benchmarks rotate through -bench, and every request is seeded from
// -seed and its index, so a replay is deterministic end to end.
//
// Multi-target mode: -addr also accepts a comma-separated list of fbbd
// base URLs (requests rotate across them) or a single fbbrouter URL (the
// router places each request; fbbload discovers the replicas behind it).
// Either way the run ends with a per-replica report — shed rate, prefix
// builds (cache locality) and cache hit/miss deltas read from each
// replica's /v1/stats — showing where every design's prefix actually
// lives.
//
// Usage:
//
//	fbbload -addr http://127.0.0.1:8080[,http://127.0.0.1:8081...]
//	        [-duration 10s] [-qps 50]
//	        [-mix tune=6,die=2,yield=1,table1=1] [-bench c1355,c3540]
//	        [-beta 0.05] [-c 3] [-solver heuristic] [-dies 100]
//	        [-concurrency 64] [-seed 1] [-retry 0]
//
// With -retry N > 0 every request runs under the client's RetryPolicy: up
// to N attempts with capped, seeded-jitter backoff, honoring the server's
// Retry-After as a floor instead of hammering a saturated cluster. The
// headline then reports the retry count and the attempts-per-request
// amplification, which stays ≤ N by construction.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/report"
	"repro/internal/serve"
)

func main() {
	if err := run(context.Background(), os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "fbbload:", err)
		os.Exit(1)
	}
}

// endpoint names accepted in -mix.
var endpoints = []string{"tune", "die", "yield", "table1"}

type sample struct {
	endpoint string
	latency  time.Duration
	shed     bool // 503: deliberate backpressure, not a failure
	// canceled: the run's context ended while the request was in flight —
	// a shutdown artifact counted as a drop, never a server failure.
	canceled bool
	err      error
}

func run(ctx context.Context, args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("fbbload", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr        = fs.String("addr", "http://127.0.0.1:8080", "fbbd base URL, comma-separated list of them, or an fbbrouter URL")
		duration    = fs.Duration("duration", 10*time.Second, "load duration")
		qps         = fs.Float64("qps", 50, "target request rate")
		concurrency = fs.Int("concurrency", 64, "max in-flight requests")
		mixSpec     = fs.String("mix", "tune=6,die=2,yield=1,table1=1", "endpoint weights (tune, die, yield, table1)")
		benchList   = fs.String("bench", "c1355,c3540", "benchmarks to rotate through")
		beta        = fs.Float64("beta", 0.05, "slowdown coefficient for tune requests")
		c           = fs.Int("c", 3, "max clusters")
		solver      = fs.String("solver", "heuristic", "allocation engine")
		dies        = fs.Int("dies", 100, "dies per yield request")
		seed        = fs.Int64("seed", 1, "replay seed")
		retry       = fs.Int("retry", 0, "max attempts per request (0 = no retries): retryable failures back off with seeded jitter, honoring the server's Retry-After")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil // -h/-help: usage already printed, a clean exit
		}
		return err
	}
	if *qps <= 0 {
		return fmt.Errorf("-qps must be positive")
	}
	if *concurrency < 1 {
		return fmt.Errorf("-concurrency must be >= 1")
	}
	mix, err := parseMix(*mixSpec)
	if err != nil {
		return err
	}
	benches, err := parseBenches(*benchList)
	if err != nil {
		return err
	}
	targets, err := parseTargets(*addr)
	if err != nil {
		return err
	}

	if *retry < 0 {
		return fmt.Errorf("-retry must be >= 0")
	}
	clients := make([]*serve.Client, len(targets))
	for i, tgt := range targets {
		clients[i] = serve.NewClient(tgt)
		if *retry > 0 {
			// Distinct seeds per target client decorrelate the backoff
			// jitter; the replay seed keeps the whole run deterministic.
			clients[i].Retry = &serve.RetryPolicy{MaxAttempts: *retry, Seed: *seed + int64(i)}
		}
	}

	// Cluster view: replicas to report on, and their stats before the run.
	// A single target that answers /v1/stats with a replicas array is a
	// router — the replicas behind it are what sheds and builds prefixes,
	// so the report reads their counters, not the router's alone.
	replicas, routerStats := discoverReplicas(ctx, clients)
	before := snapshotStats(ctx, replicas)

	rng := rand.New(rand.NewSource(*seed))

	var (
		mu          sync.Mutex
		samples     []sample
		clientDrops int
		wg          sync.WaitGroup
	)
	slots := make(chan struct{}, *concurrency)
	record := func(s sample) {
		mu.Lock()
		samples = append(samples, s)
		mu.Unlock()
	}

	interval := time.Duration(float64(time.Second) / *qps)
	start := time.Now()
	deadline := start.Add(*duration)
	dispatched := 0
	for i := 0; ; i++ {
		next := start.Add(time.Duration(i) * interval)
		now := time.Now()
		if next.After(deadline) || ctx.Err() != nil {
			break
		}
		if d := next.Sub(now); d > 0 {
			select {
			case <-time.After(d):
			case <-ctx.Done():
			}
			// Re-check after the sleep: the select falls through on
			// cancellation too, and dispatching on the dead context would
			// record a guaranteed-failed sample — a clean Ctrl-C would
			// exit 1 claiming a server error.
			if ctx.Err() != nil {
				break
			}
		}
		ep := mix.pick(rng)
		bench := benches[i%len(benches)]
		client := clients[i%len(clients)]
		reqSeed := *seed + int64(i)
		select {
		case slots <- struct{}{}:
		default:
			clientDrops++
			continue
		}
		dispatched++
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() { <-slots }()
			t0 := time.Now()
			err := issue(ctx, client, ep, bench, reqSeed, *beta, *c, *solver, *dies)
			s := sample{endpoint: ep, latency: time.Since(t0)}
			var apiErr *serve.APIError
			switch {
			// Shed means 503 specifically — deliberate backpressure.
			// IsRetryable() is wider (spurious 5xx are worth a retry) but a
			// surfaced 500 is a server failure and must fail the run.
			case errors.As(err, &apiErr) && apiErr.StatusCode == http.StatusServiceUnavailable:
				s.shed = true
			case err != nil && (errors.Is(err, context.Canceled) || ctx.Err() != nil):
				// The run was cancelled under this request: whatever state
				// it died in is shutdown fallout, not a server failure.
				s.canceled = true
			default:
				s.err = err
			}
			record(s)
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)

	var retries int64
	for _, cl := range clients {
		retries += cl.Retries()
	}
	printReport(stdout, samples, elapsed, dispatched, clientDrops, retries, *retry > 0)
	printReplicaReport(stdout, replicas, before, snapshotStats(ctx, replicas), routerStats)
	failed := 0
	for _, s := range samples {
		if s.err != nil {
			failed++
		}
	}
	if failed > 0 {
		for _, s := range samples {
			if s.err != nil {
				fmt.Fprintf(stderr, "fbbload: %s: %v\n", s.endpoint, s.err)
				break // one exemplar; the table has the counts
			}
		}
		return fmt.Errorf("%d request(s) failed", failed)
	}
	return nil
}

// parseBenches splits and validates the -bench list. Empty entries are
// rejected loudly: silently rotating an empty benchmark name into every
// Nth request produces a 400 storm that reads as server errors.
func parseBenches(list string) ([]string, error) {
	parts := strings.Split(list, ",")
	benches := make([]string, 0, len(parts))
	for _, b := range parts {
		b = strings.TrimSpace(b)
		if b == "" {
			return nil, fmt.Errorf("empty benchmark name in -bench %q (trailing comma?)", list)
		}
		benches = append(benches, b)
	}
	if len(benches) == 0 {
		return nil, fmt.Errorf("-bench must name at least one benchmark")
	}
	return benches, nil
}

// parseTargets splits and validates the -addr list.
func parseTargets(list string) ([]string, error) {
	parts := strings.Split(list, ",")
	targets := make([]string, 0, len(parts))
	for _, a := range parts {
		a = strings.TrimSpace(a)
		if a == "" {
			return nil, fmt.Errorf("empty address in -addr %q (trailing comma?)", list)
		}
		targets = append(targets, a)
	}
	if len(targets) == 0 {
		return nil, fmt.Errorf("-addr must name at least one target")
	}
	return targets, nil
}

// discoverReplicas decides which servers the per-replica report reads: the
// explicit -addr list, or — when the single target turns out to be a
// router — the replicas its /v1/stats advertises. routerStats is non-nil
// only in the router case.
func discoverReplicas(ctx context.Context, clients []*serve.Client) ([]*serve.Client, func(context.Context) *serve.ClusterStatsResponse) {
	if len(clients) != 1 {
		return clients, nil
	}
	cs, err := clients[0].ClusterStats(ctx)
	if err != nil || len(cs.Replicas) == 0 {
		return clients, nil // plain fbbd (or unreachable: the run will say so)
	}
	replicas := make([]*serve.Client, len(cs.Replicas))
	for i, r := range cs.Replicas {
		replicas[i] = serve.NewClient(r.Addr)
	}
	router := clients[0]
	return replicas, func(ctx context.Context) *serve.ClusterStatsResponse {
		cs, err := router.ClusterStats(ctx)
		if err != nil {
			return nil
		}
		return cs
	}
}

// snapshotStats reads each replica's /v1/stats (nil entries for replicas
// that did not answer).
func snapshotStats(ctx context.Context, replicas []*serve.Client) []*serve.StatsResponse {
	out := make([]*serve.StatsResponse, len(replicas))
	var wg sync.WaitGroup
	for i, c := range replicas {
		wg.Add(1)
		go func(i int, c *serve.Client) {
			defer wg.Done()
			st, err := c.Stats(ctx)
			if err == nil {
				out[i] = st
			}
		}(i, c)
	}
	wg.Wait()
	return out
}

// issue fires one request of the given kind.
func issue(ctx context.Context, client *serve.Client, ep, bench string, seed int64, beta float64, c int, solver string, dies int) error {
	switch ep {
	case "tune":
		_, err := client.Tune(ctx, serve.TuneRequest{
			DesignRef: serve.DesignRef{Benchmark: bench},
			Beta:      beta, MaxClusters: c, Solver: solver,
		})
		return err
	case "die":
		_, err := client.Tune(ctx, serve.TuneRequest{
			DesignRef:   serve.DesignRef{Benchmark: bench},
			MaxClusters: c, Solver: solver,
			Die: &serve.DieRequest{Seed: seed},
		})
		return err
	case "yield":
		_, err := client.Yield(ctx, serve.YieldRequest{
			DesignRef: serve.DesignRef{Benchmark: bench},
			Dies:      dies, Seed: seed, MaxClusters: c, Solver: solver,
		}, nil)
		return err
	case "table1":
		_, err := client.Table1(ctx, serve.Table1Request{
			Benchmarks: []string{bench},
			Betas:      []float64{beta},
			// Deterministic, budget-free cells: heuristic columns only.
			ILPGateLimit: 1,
			Solver:       solver,
		})
		return err
	}
	return fmt.Errorf("unknown endpoint %q", ep)
}

// weightedMix draws endpoints proportionally to their -mix weights.
type weightedMix struct {
	names   []string
	weights []int
	total   int
}

func parseMix(spec string) (*weightedMix, error) {
	m := &weightedMix{}
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, wstr, ok := strings.Cut(part, "=")
		if !ok {
			return nil, fmt.Errorf("bad -mix entry %q (want name=weight)", part)
		}
		known := false
		for _, ep := range endpoints {
			if name == ep {
				known = true
				break
			}
		}
		if !known {
			return nil, fmt.Errorf("unknown -mix endpoint %q (have %v)", name, endpoints)
		}
		w, err := strconv.Atoi(wstr)
		if err != nil || w < 0 {
			return nil, fmt.Errorf("bad -mix weight %q", wstr)
		}
		if w == 0 {
			continue
		}
		m.names = append(m.names, name)
		m.weights = append(m.weights, w)
		m.total += w
	}
	if m.total == 0 {
		return nil, fmt.Errorf("empty -mix %q", spec)
	}
	return m, nil
}

func (m *weightedMix) pick(rng *rand.Rand) string {
	n := rng.Intn(m.total)
	for i, w := range m.weights {
		if n < w {
			return m.names[i]
		}
		n -= w
	}
	return m.names[len(m.names)-1]
}

// printReport renders the per-endpoint latency table. retries and retryMode
// report the -retry amplification: how many extra attempts the retry layer
// issued on top of the dispatched requests.
func printReport(w io.Writer, samples []sample, elapsed time.Duration, dispatched, clientDrops int, retries int64, retryMode bool) {
	byEP := map[string][]sample{}
	canceled := 0
	for _, s := range samples {
		if s.canceled {
			// Shutdown fallout: counted beside the pacer's client drops,
			// kept out of the endpoint table so a clean Ctrl-C doesn't
			// read as a burst of server errors.
			canceled++
			continue
		}
		byEP[s.endpoint] = append(byEP[s.endpoint], s)
	}
	completed := len(samples) - canceled
	// Headline rates name their denominators: dispatched counts what the
	// pacer actually sent, completed counts samples that came back. Mixing
	// them (dispatched count beside a completed-samples rate) would let a
	// shedding or drop-heavy run read as a merely slow one.
	head := fmt.Sprintf("fbbload — %d dispatched, %d completed in %s (%.1f req/s dispatched, %.1f req/s completed, %d client drops)",
		dispatched, completed, elapsed.Round(time.Millisecond),
		float64(dispatched)/elapsed.Seconds(), float64(completed)/elapsed.Seconds(), clientDrops+canceled)
	if retryMode {
		// Amplification names the real cost of self-healing: total attempts
		// issued per request dispatched. Bounded by -retry per request, so
		// the fleet-wide attempt rate is at most -retry times -qps.
		amp := 1.0
		if dispatched > 0 {
			amp = 1 + float64(retries)/float64(dispatched)
		}
		head += fmt.Sprintf(", %d retries (%.2fx attempts/req)", retries, amp)
	}
	t := report.New(head,
		"endpoint", "count", "ok", "shed", "errors", "p50", "p90", "p99", "max")
	for _, ep := range endpoints {
		ss := byEP[ep]
		if len(ss) == 0 {
			continue
		}
		var ok, shed, errs int
		// Percentiles over successful requests only: a saturated server
		// sheds in microseconds, and folding those into the latency
		// columns would make an overloaded endpoint read as a fast one.
		lats := make([]time.Duration, 0, len(ss))
		for _, s := range ss {
			switch {
			case s.shed:
				shed++
			case s.err != nil:
				errs++
			default:
				ok++
				lats = append(lats, s.latency)
			}
		}
		sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
		lat := func(q float64) string {
			if len(lats) == 0 {
				return "-"
			}
			return fmtLat(percentile(lats, q))
		}
		t.Add(ep,
			fmt.Sprint(len(ss)), fmt.Sprint(ok), fmt.Sprint(shed), fmt.Sprint(errs),
			lat(0.50), lat(0.90), lat(0.99), lat(1))
	}
	fmt.Fprint(w, t.String())
}

// printReplicaReport renders the cluster view after a multi-target run:
// per replica, the shed rate and the prefix builds (cache locality) the
// run caused, from /v1/stats deltas. With one plain target the section is
// still printed — a one-row cluster — so the counters read the same way
// everywhere. routerStats, when non-nil, contributes the router's own
// routing counters to the title.
func printReplicaReport(w io.Writer, replicas []*serve.Client, before, after []*serve.StatsResponse, routerStats func(context.Context) *serve.ClusterStatsResponse) {
	if len(replicas) == 0 {
		return
	}
	title := "cluster — per-replica deltas over the run (shed% of arrivals; prefixBuilds = cache locality)"
	var cluster *serve.ClusterStatsResponse
	if routerStats != nil {
		if cluster = routerStats(context.Background()); cluster != nil {
			title = fmt.Sprintf("cluster — routed; router shed %d, per-replica deltas below (shed%% of arrivals; prefixBuilds = cache locality)",
				cluster.Router.Shed)
		}
	}
	t := report.New(title,
		"replica", "arrived", "shed", "shed%", "prefixBuilds", "cacheHits", "cacheMisses", "failedJoins")
	for i, c := range replicas {
		b, a := before[i], after[i]
		if b == nil || a == nil {
			t.Add(c.BaseURL, "-", "-", "-", "-", "-", "-", "-")
			continue
		}
		shed := a.Shed - b.Shed
		hits := a.Cache.Hits - b.Cache.Hits
		misses := a.Cache.Misses - b.Cache.Misses
		failedJoins := a.Cache.FailedJoins - b.Cache.FailedJoins
		// Cache.Builds, not the process-wide PrefixBuilds counter: the
		// former is per server, so the column stays honest even when
		// replicas share a process (tests, single-box clusters).
		builds := a.Cache.Builds - b.Cache.Builds
		// Arrivals at the replica = requests that reached admission: the
		// ones shed there plus the ones that went on to a cache lookup.
		arrived := shed + hits + misses + failedJoins
		shedPct := "-"
		if arrived > 0 {
			shedPct = fmt.Sprintf("%.1f%%", 100*float64(shed)/float64(arrived))
		}
		t.Add(c.BaseURL,
			fmt.Sprint(arrived), fmt.Sprint(shed), shedPct,
			fmt.Sprint(builds), fmt.Sprint(hits), fmt.Sprint(misses), fmt.Sprint(failedJoins))
	}
	fmt.Fprint(w, t.String())
}

// percentile returns the q-quantile of ascending lats (nearest-rank).
func percentile(lats []time.Duration, q float64) time.Duration {
	if len(lats) == 0 {
		return 0
	}
	i := int(q*float64(len(lats))+0.5) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(lats) {
		i = len(lats) - 1
	}
	return lats[i]
}

func fmtLat(d time.Duration) string {
	return d.Round(10 * time.Microsecond).String()
}
