package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden files")

// TestTable1Golden is the Table 1 regression net: the heuristic table for
// two small benchmarks is committed under testdata/ and compared byte for
// byte, so an STA or heuristic refactor cannot silently drift the paper's
// numbers. The ILP is skipped (-ilp-gates 1) to keep the bytes independent
// of wall-clock budgets; regenerate with `go test ./cmd/table1 -update`.
func TestTable1Golden(t *testing.T) {
	for _, bench := range []string{"c1355", "c3540"} {
		t.Run(bench, func(t *testing.T) {
			var out, errb bytes.Buffer
			err := run([]string{"-benchmarks", bench, "-ilp-gates", "1", "-parallel", "1"}, &out, &errb)
			if err != nil {
				t.Fatalf("run: %v (stderr: %s)", err, errb.String())
			}
			golden := filepath.Join("testdata", "table1_"+bench+".golden")
			if *update {
				if err := os.WriteFile(golden, out.Bytes(), 0o644); err != nil {
					t.Fatal(err)
				}
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("%v (run with -update to create it)", err)
			}
			if !bytes.Equal(out.Bytes(), want) {
				t.Errorf("output drifted from %s:\n--- got ---\n%s\n--- want ---\n%s",
					golden, out.String(), want)
			}
		})
	}
}

// TestTable1ILPGoldenParallelInvariant pins the determinism contract of the
// rebuilt exact engine: with the ILP columns on (node-budgeted, no wall
// clock), the table must be byte-identical at any -parallel, and those bytes
// are committed under testdata/ so an engine refactor cannot silently drift
// either the optima or the determinism. Regenerate with -update.
func TestTable1ILPGoldenParallelInvariant(t *testing.T) {
	outs := map[string][]byte{}
	for _, par := range []string{"1", "4"} {
		var out, errb bytes.Buffer
		err := run([]string{"-benchmarks", "c1355", "-betas", "0.05", "-solver", "ilp", "-parallel", par}, &out, &errb)
		if err != nil {
			t.Fatalf("-parallel %s: %v (stderr: %s)", par, err, errb.String())
		}
		outs[par] = out.Bytes()
	}
	if !bytes.Equal(outs["1"], outs["4"]) {
		t.Fatalf("table changed with -parallel:\n--- parallel 1 ---\n%s\n--- parallel 4 ---\n%s",
			outs["1"], outs["4"])
	}
	golden := filepath.Join("testdata", "table1_c1355_ilp.golden")
	if *update {
		if err := os.WriteFile(golden, outs["1"], 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to create it)", err)
	}
	if !bytes.Equal(outs["1"], want) {
		t.Errorf("output drifted from %s:\n--- got ---\n%s\n--- want ---\n%s",
			golden, outs["1"], want)
	}
}

func TestTable1CSV(t *testing.T) {
	var out, errb bytes.Buffer
	if err := run([]string{"-benchmarks", "c1355", "-betas", "0.05", "-ilp-gates", "1", "-csv"}, &out, &errb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "c1355") {
		t.Errorf("CSV output missing the benchmark row:\n%s", out.String())
	}
}

func TestTable1BadFlags(t *testing.T) {
	var out, errb bytes.Buffer
	if err := run([]string{"-betas", "zap"}, &out, &errb); err == nil {
		t.Error("bad -betas accepted")
	}
	if err := run([]string{"-no-such-flag"}, &out, &errb); err == nil {
		t.Error("unknown flag accepted")
	}
}

func TestTable1FailedCellAnnotated(t *testing.T) {
	var out, errb bytes.Buffer
	err := run([]string{"-benchmarks", "c1355,bogus", "-betas", "0.05", "-ilp-gates", "1"}, &out, &errb)
	if err == nil {
		t.Fatal("failing cell did not fail the run")
	}
	if !strings.Contains(out.String(), "c1355") {
		t.Error("completed rows discarded on partial failure")
	}
	if !strings.Contains(errb.String(), "bogus") {
		t.Error("failed cell not annotated on stderr")
	}
}
