// Command table1 regenerates the paper's Table 1: for each benchmark and
// slowdown coefficient, the single-voltage baseline leakage, the ILP and
// heuristic savings at C=2 and C=3, and the number of timing constraints.
//
// The ILP is skipped on designs above -ilp-gates (the paper likewise reports
// no ILP results for Industrial2/3, where lp_solve did not converge).
// -solver swaps the allocation engine behind the non-ILP columns (e.g.
// "local" re-evaluates the table with the local-search portfolio solver).
//
// Cells run on the flow engine: each benchmark's gen->place->STA prefix is
// computed once and shared across all (beta, C) points, and -parallel bounds
// how many cells run concurrently (0 = one per CPU, 1 = sequential). Every
// column is byte-identical at any -parallel: the ILP runs under a node
// budget (-ilp-nodes), which is deterministic regardless of core
// contention. Setting -ilp-timeout opts back into wall-clock truncation,
// whose cells may vary run to run. A failing cell is reported on stderr and
// the completed rows still print; the exit status is non-zero if any cell
// failed.
//
// Usage:
//
//	table1 [-benchmarks c1355,c3540] [-betas 0.05,0.10] [-solver heuristic]
//	       [-ilp-nodes 50000] [-ilp-timeout 0] [-ilp-gates 5000]
//	       [-parallel 0] [-csv]
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"repro"
	"repro/internal/core"
	"repro/internal/report"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "table1:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("table1", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		benchList  = fs.String("benchmarks", "", "comma-separated benchmark names (default: all)")
		betaList   = fs.String("betas", "0.05,0.10", "comma-separated slowdown coefficients")
		ilpNodes   = fs.Int("ilp-nodes", 0, "ILP node budget per instance (0 = default 50000; deterministic)")
		ilpTimeout = fs.Duration("ilp-timeout", 0, "additional ILP wall-clock budget (0 = none; nondeterministic truncation)")
		ilpGates   = fs.Int("ilp-gates", 5000, "skip the ILP above this gate count")
		solver     = fs.String("solver", "heuristic", "allocation engine for the non-ILP columns ("+strings.Join(core.SolverNames(), ", ")+")")
		parallel   = fs.Int("parallel", 0, "concurrent table cells (0 = one per CPU, 1 = sequential)")
		csv        = fs.Bool("csv", false, "emit CSV")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil // -h/-help: usage already printed, a clean exit
		}
		return err
	}

	opts := repro.Table1Options{
		ILPNodeLimit: *ilpNodes,
		ILPTimeLimit: *ilpTimeout,
		ILPGateLimit: *ilpGates,
		Solver:       *solver,
	}
	if *benchList != "" {
		opts.Benchmarks = strings.Split(*benchList, ",")
	}
	for _, s := range strings.Split(*betaList, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
		if err != nil {
			return fmt.Errorf("bad beta: %s", s)
		}
		opts.Betas = append(opts.Betas, v)
	}

	rows, err := repro.NewRunner(*parallel).Table1(opts)
	if err != nil {
		return err
	}

	t := report.New(
		"Table 1 — leakage savings of clustered FBB vs block-level single-voltage FBB",
		"benchmark", "gates", "rows", "beta", "singleBB(uW)",
		"ILP C=2", "ILP C=3", "heur C=2", "heur C=3", "constr")
	ilpCell := func(valid, proven bool, v float64) string {
		if !valid {
			return "-"
		}
		mark := ""
		if !proven {
			mark = "*"
		}
		return fmt.Sprintf("%.2f%%%s", v, mark)
	}
	for _, r := range rows {
		if r.Err != "" {
			continue // annotated on stderr below; the good rows still print
		}
		t.Add(
			r.Benchmark,
			fmt.Sprint(r.Gates),
			fmt.Sprint(r.Rows),
			fmt.Sprintf("%.0f%%", r.BetaPct),
			fmt.Sprintf("%.3f", r.SingleBBuW),
			ilpCell(r.ILPValidC2, r.ILPProvenC2, r.ILPSavC2),
			ilpCell(r.ILPValidC3, r.ILPProvenC3, r.ILPSavC3),
			fmt.Sprintf("%.2f%%", r.HeurSavC2),
			fmt.Sprintf("%.2f%%", r.HeurSavC3),
			fmt.Sprint(r.Constraints),
		)
	}
	failed := 0
	for _, r := range rows {
		if r.Err != "" {
			failed++
			fmt.Fprintf(stderr, "table1: %s beta=%g%%: %s\n", r.Benchmark, r.BetaPct, r.Err)
		}
	}
	if *csv {
		fmt.Fprint(stdout, t.CSV())
	} else {
		fmt.Fprint(stdout, t.String())
		fmt.Fprintln(stdout, "\n* incumbent at the search budget (optimality not proven); - not run (paper: did not converge)")
	}
	if failed > 0 {
		// Partial rows printed above, but the run is not clean.
		return fmt.Errorf("%d cell(s) failed", failed)
	}
	return nil
}
