// Command fbbd serves the clustered-FBB tuning flow over HTTP: /v1/tune
// (design-time allocation or post-silicon die tuning), /v1/yield (streamed
// NDJSON Monte-Carlo yield study) and /v1/table1 (the paper's Table 1 grid),
// plus /v1/stats, /v1/benchmarks and /healthz.
//
// The expensive gen/parse -> place -> STA -> allocator front of every
// request is cached in a netlist-hash-keyed LRU with singleflight
// coalescing, so concurrent traffic on the same designs builds each
// placement once. Admission is bounded: past -workers executing requests
// and -queue waiters, requests are shed with 503 and Retry-After. SIGINT or
// SIGTERM drains gracefully — new requests get 503 while in-flight ones
// (streams included) run to completion, bounded by -drain-timeout.
//
// Usage:
//
//	fbbd [-addr :8080] [-cache 8] [-workers 0] [-queue 0]
//	     [-max-dies 1000000] [-max-gates 100000] [-drain-timeout 30s]
//	     [-drain-notice 0s] [-retry-after 1]
//
// Behind fbbrouter, set -drain-notice to at least the router's
// -health-interval: on SIGTERM the daemon then keeps its listener (and
// /healthz, reporting draining:true) up that long before shutting down,
// so the router re-hashes this replica's keys gracefully.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/serve"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "fbbd:", err)
		os.Exit(1)
	}
}

// run starts the daemon and serves until ctx is cancelled, then drains.
// The listen address is printed to stdout ("fbbd: listening on ...") so
// callers binding port 0 — tests, scripts — can discover the real port.
func run(ctx context.Context, args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("fbbd", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr         = fs.String("addr", ":8080", "listen address")
		cacheSize    = fs.Int("cache", 8, "prefix-cache capacity (placements)")
		workers      = fs.Int("workers", 0, "concurrently executing requests (0 = one per CPU)")
		queue        = fs.Int("queue", 0, "queued requests before shedding 503s (0 = 2*workers, -1 = no queue)")
		maxDies      = fs.Int("max-dies", 1_000_000, "per-request die cap on /v1/yield")
		maxGates     = fs.Int("max-gates", 100_000, "largest accepted design")
		drainTimeout = fs.Duration("drain-timeout", 30*time.Second, "shutdown budget for in-flight requests")
		drainNotice  = fs.Duration("drain-notice", 0, "keep serving (503 + draining /healthz) this long before closing the listener, so a router can re-hash this replica's keys; set it >= the router's -health-interval")
		retryAfter   = fs.Int("retry-after", 1, "Retry-After seconds advertised on shed 503s (well-behaved clients back off at least this long)")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil // -h/-help: usage already printed, a clean exit
		}
		return err
	}

	s := serve.New(serve.Options{
		CacheSize:     *cacheSize,
		Workers:       *workers,
		Queue:         *queue,
		MaxDies:       *maxDies,
		MaxGates:      *maxGates,
		RetryAfterSec: *retryAfter,
	})
	httpSrv := &http.Server{
		Handler:           s.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "fbbd: listening on http://%s\n", ln.Addr())

	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	select {
	case err := <-serveErr:
		return err
	case <-ctx.Done():
	}

	// Drain: reject new work at the application layer first so clients
	// see a clean 503 + Retry-After instead of a refused connection race,
	// then let the HTTP server wait out the in-flight requests.
	fmt.Fprintln(stdout, "fbbd: draining")
	s.BeginDrain()
	// In cluster mode the listener must outlive the drain signal long
	// enough for the router's health poll to observe draining:true and
	// re-hash this replica's keys — closing it immediately would turn the
	// graceful handoff into connection-refused races. During the notice
	// window new requests get 503 + Retry-After and in-flight streams run
	// on undisturbed.
	if *drainNotice > 0 {
		time.Sleep(*drainNotice)
	}
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		httpSrv.Close()
		return fmt.Errorf("drain: %w", err)
	}
	if err := s.Drain(shutdownCtx); err != nil {
		return fmt.Errorf("drain: %w", err)
	}
	fmt.Fprintln(stdout, "fbbd: drained")
	return nil
}
