package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

var update = flag.Bool("update", false, "rewrite the golden files")

// startDaemon runs the real daemon — flag parsing, listener, drain — on an
// ephemeral port and returns its base URL. The cleanup cancels the signal
// context and asserts a clean drain, so every test also exercises the
// shutdown path.
func startDaemon(t *testing.T, extra ...string) string {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	pr, pw := io.Pipe()
	done := make(chan error, 1)
	args := append([]string{"-addr", "127.0.0.1:0"}, extra...)
	go func() { done <- run(ctx, args, pw, io.Discard) }()

	sc := bufio.NewScanner(pr)
	if !sc.Scan() {
		t.Fatalf("daemon produced no output: %v", sc.Err())
	}
	line := sc.Text()
	const prefix = "fbbd: listening on "
	if !strings.HasPrefix(line, prefix) {
		t.Fatalf("unexpected first line %q", line)
	}
	baseURL := strings.TrimPrefix(line, prefix)
	go io.Copy(io.Discard, pr) // keep the drain messages flowing

	t.Cleanup(func() {
		cancel()
		select {
		case err := <-done:
			if err != nil {
				t.Errorf("daemon exited with %v", err)
			}
		case <-time.After(10 * time.Second):
			t.Error("daemon did not drain within 10s")
		}
		pw.Close()
	})
	return baseURL
}

// goldenExchange performs one request and renders "HTTP <code>", the
// Retry-After header when present, a blank line, then the body — the
// committed wire-level contract of the fbbd API.
func goldenExchange(t *testing.T, baseURL, method, path, body string) string {
	t.Helper()
	req, err := http.NewRequest(method, baseURL+path, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if body != "" {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out bytes.Buffer
	fmt.Fprintf(&out, "HTTP %d\n", resp.StatusCode)
	if ra := resp.Header.Get("Retry-After"); ra != "" {
		fmt.Fprintf(&out, "Retry-After: %s\n", ra)
	}
	out.WriteString("\n")
	if _, err := out.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return out.String()
}

func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	golden := filepath.Join("testdata", name+".golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to create it)", err)
	}
	if got != string(want) {
		t.Errorf("exchange drifted from %s:\n--- got ---\n%s\n--- want ---\n%s", golden, got, want)
	}
}

// TestGoldenExchanges pins the JSON request/response contract of every
// endpoint — success bodies, validation error bodies for bad beta/C, and
// the NDJSON yield stream — byte for byte against testdata/. Regenerate
// with `go test ./cmd/fbbd -update`.
func TestGoldenExchanges(t *testing.T) {
	baseURL := startDaemon(t)
	cases := []struct {
		name, method, path, body string
	}{
		{"tune_c1355", "POST", "/v1/tune", `{"benchmark":"c1355"}`},
		{"tune_c1355_beta10_c2_local", "POST", "/v1/tune", `{"benchmark":"c1355","beta":0.1,"maxClusters":2,"solver":"local"}`},
		{"tune_die_seed7", "POST", "/v1/tune", `{"benchmark":"c1355","die":{"seed":7}}`},
		{"tune_bad_beta", "POST", "/v1/tune", `{"benchmark":"c1355","beta":2}`},
		{"tune_bad_clusters", "POST", "/v1/tune", `{"benchmark":"c1355","maxClusters":-2}`},
		{"tune_bad_solver", "POST", "/v1/tune", `{"benchmark":"c1355","solver":"zap"}`},
		{"tune_no_design", "POST", "/v1/tune", `{}`},
		{"tune_unknown_field", "POST", "/v1/tune", `{"benchmrk":"c1355"}`},
		{"yield_c1355_2dies", "POST", "/v1/yield", `{"benchmark":"c1355","dies":2,"seed":3}`},
		{"yield_bad_dies", "POST", "/v1/yield", `{"benchmark":"c1355","dies":-5}`},
		{"table1_c1355", "POST", "/v1/table1", `{"benchmarks":["c1355"],"betas":[0.05],"ilpGateLimit":1}`},
		{"table1_bad_beta", "POST", "/v1/table1", `{"betas":[7]}`},
		{"benchmarks", "GET", "/v1/benchmarks", ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			checkGolden(t, tc.name, goldenExchange(t, baseURL, tc.method, tc.path, tc.body))
		})
	}
}

// TestGoldenSaturation503 pins the backpressure contract: a single-worker,
// zero-queue daemon streaming one long yield sheds the next request with
// the exact 503 body and Retry-After header committed in testdata/.
func TestGoldenSaturation503(t *testing.T) {
	baseURL := startDaemon(t, "-workers", "1", "-queue", "-1")

	// Occupy the only worker with a long-running stream; reading the
	// first NDJSON line guarantees the handler is inside its slot.
	holdCtx, release := context.WithCancel(context.Background())
	defer release()
	body := `{"benchmark":"c1355","dies":1000000,"seed":1,"workers":1}`
	req, err := http.NewRequestWithContext(holdCtx, "POST", baseURL+"/v1/yield", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if _, err := bufio.NewReader(resp.Body).ReadBytes('\n'); err != nil {
		t.Fatalf("yield stream produced no line: %v", err)
	}

	checkGolden(t, "saturated_503",
		goldenExchange(t, baseURL, "POST", "/v1/tune", `{"benchmark":"c1355"}`))

	// Cancel the stream so the daemon's drain in cleanup is prompt.
	release()
}

// TestDrainNoticeKeepsHealthzUp: with -drain-notice set, shutdown keeps
// the listener answering for the notice window with /healthz reporting
// draining:true and new work shed as 503 — the window fbbrouter needs to
// observe the drain and re-hash this replica's keys before connections
// start being refused.
func TestDrainNoticeKeepsHealthzUp(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	pr, pw := io.Pipe()
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, []string{"-addr", "127.0.0.1:0", "-drain-notice", "1s"}, pw, io.Discard)
	}()
	sc := bufio.NewScanner(pr)
	if !sc.Scan() {
		t.Fatalf("daemon produced no output: %v", sc.Err())
	}
	baseURL := strings.TrimPrefix(sc.Text(), "fbbd: listening on ")
	go io.Copy(io.Discard, pr)
	defer pw.Close()

	healthz := func() (ok bool, draining bool) {
		resp, err := http.Get(baseURL + "/healthz")
		if err != nil {
			return false, false
		}
		defer resp.Body.Close()
		var hz struct {
			Draining bool `json:"draining"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&hz); err != nil {
			return false, false
		}
		return true, hz.Draining
	}
	if ok, draining := healthz(); !ok || draining {
		t.Fatalf("healthy daemon: ok=%v draining=%v", ok, draining)
	}

	cancel()
	// Within the notice window the listener must still answer, now
	// advertising the drain...
	deadline := time.Now().Add(5 * time.Second)
	for {
		ok, draining := healthz()
		if ok && draining {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("daemon never reported draining:true on a live listener")
		}
		time.Sleep(5 * time.Millisecond)
	}
	// ...and shed new work with a clean 503, not a refused connection.
	resp, err := http.Post(baseURL+"/v1/tune", "application/json", strings.NewReader(`{"benchmark":"c1355"}`))
	if err != nil {
		t.Fatalf("listener gone during the notice window: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining daemon answered %d, want 503", resp.StatusCode)
	}

	select {
	case err := <-done:
		if err != nil {
			t.Errorf("daemon exited with %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Error("daemon did not exit after the notice window")
	}
}

func TestRunBadFlags(t *testing.T) {
	if err := run(context.Background(), []string{"-no-such-flag"}, io.Discard, io.Discard); err == nil {
		t.Error("unknown flag accepted")
	}
	if err := run(context.Background(), []string{"-addr", "256.256.256.256:0"}, io.Discard, io.Discard); err == nil {
		t.Error("unlistenable address accepted")
	}
	if err := run(context.Background(), []string{"-h"}, io.Discard, io.Discard); err != nil {
		t.Errorf("-h: %v", err)
	}
}
