// Command fbbvet is the repo's multichecker: it runs the custom contract
// analyzers (lightflow, detrand, scratchbuf, workerstate — see
// internal/lint) over the given packages and then the stock `go vet` suite,
// so one command answers "does the tree satisfy every machine-checked
// invariant".
//
// Usage:
//
//	go run ./cmd/fbbvet ./...
//
// Exit status is 0 when the tree is clean, 1 when any analyzer or vet
// reports a finding, 2 on load/usage errors. Findings are printed as
// file:line:col: analyzer: message. A finding can be suppressed — narrowly
// and auditably — with a comment on the same line or the line above:
//
//	//lint:allow <analyzer> <reason>
//
// The reason is mandatory; a reasonless allow is itself a finding.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/exec"

	"repro/internal/lint"
	"repro/internal/lint/driver"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("fbbvet", flag.ContinueOnError)
	runVet := fs.Bool("vet", true, "also run the stock `go vet` suite over the same patterns")
	dir := fs.String("C", ".", "module directory to analyze from")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	pkgs, err := driver.Load(*dir, patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fbbvet:", err)
		return 2
	}
	findings, err := driver.Run(pkgs, lint.All())
	if err != nil {
		fmt.Fprintln(os.Stderr, "fbbvet:", err)
		return 2
	}
	for _, f := range findings {
		fmt.Println(f)
	}

	status := 0
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "fbbvet: %d finding(s)\n", len(findings))
		status = 1
	}
	if *runVet {
		cmd := exec.Command("go", append([]string{"vet"}, patterns...)...)
		cmd.Dir = *dir
		cmd.Stdout = os.Stdout
		cmd.Stderr = os.Stderr
		if err := cmd.Run(); err != nil {
			fmt.Fprintln(os.Stderr, "fbbvet: go vet:", err)
			if status == 0 {
				status = 1
			}
		}
	}
	return status
}
