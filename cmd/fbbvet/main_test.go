package main

import (
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/driver"
)

// TestTreeIsClean pins the acceptance contract: the repo's own code passes
// every fbbvet analyzer with zero findings (modulo the reasoned //lint:allow
// suppressions committed alongside the code they excuse).
func TestTreeIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module")
	}
	pkgs, err := driver.Load("../..", "./...")
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	findings, err := driver.Run(pkgs, lint.All())
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	for _, f := range findings {
		t.Errorf("unexpected finding: %s", f)
	}
}
