package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestFBBFlowSingleBench(t *testing.T) {
	var out, errb bytes.Buffer
	if err := run([]string{"-bench", "c1355", "-parallel", "1", "-timing"}, &out, &errb); err != nil {
		t.Fatalf("run: %v (stderr: %s)", err, errb.String())
	}
	s := out.String()
	for _, want := range []string{"c1355:", "single-BB", "heuristic", "layout:", "timing report"} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q:\n%s", want, s)
		}
	}
}

func TestFBBFlowWritesArtifacts(t *testing.T) {
	dir := t.TempDir()
	def := filepath.Join(dir, "out.def")
	v := filepath.Join(dir, "out.v")
	var out, errb bytes.Buffer
	if err := run([]string{"-bench", "c1355", "-parallel", "1", "-def", def, "-verilog", v}, &out, &errb); err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{def, v} {
		if st, err := os.Stat(p); err != nil || st.Size() == 0 {
			t.Errorf("artifact %s missing or empty (%v)", p, err)
		}
	}
}

func TestFBBFlowMultiBenchKeepsGoodReports(t *testing.T) {
	var out, errb bytes.Buffer
	err := run([]string{"-bench", "c1355,bogus", "-parallel", "1"}, &out, &errb)
	if err == nil {
		t.Fatal("failing benchmark did not fail the run")
	}
	if !strings.Contains(out.String(), "c1355:") {
		t.Error("completed report discarded on partial failure")
	}
	if !strings.Contains(errb.String(), "bogus") {
		t.Error("failure not annotated on stderr")
	}
}

func TestFBBFlowRejectsArtifactsWithMultipleBenches(t *testing.T) {
	var out, errb bytes.Buffer
	if err := run([]string{"-bench", "c1355,c3540", "-def", "x.def"}, &out, &errb); err == nil {
		t.Error("-def with multiple benches accepted")
	}
}
