// Command fbbflow runs the complete clustered-FBB flow on one or more
// benchmarks: generate, place, time, allocate (heuristic and optionally
// ILP), and check the layout implementation.
//
// -bench accepts a comma-separated list or "all"; with more than one
// benchmark the flows fan out over the flow engine's worker pool
// (-parallel bounds it; 0 = one per CPU) and the reports print in input
// order.
//
// -solver selects the allocation engine for the primary result row: the
// paper's two-pass heuristic (default), the exact ILP, or the local-search
// portfolio ("local") that trades a little runtime for better allocations.
//
// Usage:
//
//	fbbflow -bench c5315 -beta 0.05 -c 3 [-solver heuristic] [-ilp]
//	        [-ilp-nodes 0] [-ilp-workers 0] [-ilp-timeout 0] [-parallel 0]
//	        [-ascii]
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"repro"
	"repro/internal/core"
	"repro/internal/flow"
	"repro/internal/layout"
	"repro/internal/netlist"
	"repro/internal/report"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "fbbflow:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("fbbflow", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		bench      = fs.String("bench", "c5315", "comma-separated benchmark names, or \"all\" ("+strings.Join(repro.Benchmarks(), ", ")+")")
		beta       = fs.Float64("beta", 0.05, "slowdown coefficient to compensate")
		c          = fs.Int("c", 3, "maximum clusters (incl. no-body-bias)")
		solver     = fs.String("solver", "heuristic", "allocation engine ("+strings.Join(core.SolverNames(), ", ")+")")
		runILP     = fs.Bool("ilp", false, "also run the exact ILP allocator")
		ilpNodes   = fs.Int("ilp-nodes", 0, "ILP node budget (0 = solver default; deterministic)")
		ilpWorkers = fs.Int("ilp-workers", 0, "ILP tree-parallelism (0 = one per CPU; never changes the result)")
		ilpTimeout = fs.Duration("ilp-timeout", 0, "additional ILP wall-clock budget (0 = none; nondeterministic truncation)")
		parallel   = fs.Int("parallel", 0, "concurrent benchmark flows (0 = one per CPU, 1 = sequential)")
		ascii      = fs.Bool("ascii", false, "print the clustered layout (Figure 3 style)")
		timing     = fs.Bool("timing", false, "print a timing report (slack histogram, worst paths)")
		defOut     = fs.String("def", "", "write the placement to this DEF file (single benchmark only)")
		vOut       = fs.String("verilog", "", "write the mapped netlist to this Verilog file (single benchmark only)")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil // -h/-help: usage already printed, a clean exit
		}
		return err
	}

	benches := strings.Split(*bench, ",")
	if *bench == "all" {
		benches = repro.Benchmarks()
	}
	if len(benches) > 1 && (*defOut != "" || *vOut != "") {
		return fmt.Errorf("-def/-verilog need a single -bench")
	}

	runner := repro.NewRunner(*parallel)
	results, errs := flow.MapAll(context.Background(), *parallel, len(benches),
		func(_ context.Context, i int) (*repro.Result, error) {
			return repro.RunOn(runner.Engine(), repro.Config{
				Benchmark:    strings.TrimSpace(benches[i]),
				Beta:         *beta,
				MaxClusters:  *c,
				Solver:       *solver,
				RunILP:       *runILP,
				ILPNodeLimit: *ilpNodes,
				ILPWorkers:   *ilpWorkers,
				ILPTimeLimit: *ilpTimeout,
			})
		})

	// One broken benchmark must not discard the completed reports: print
	// every result in input order, annotate the failures, and fail the
	// run if anything failed.
	failed := 0
	for i, res := range results {
		if i > 0 {
			fmt.Fprintln(stdout)
		}
		if errs[i] != nil {
			failed++
			fmt.Fprintf(stderr, "fbbflow: %s: %v\n", strings.TrimSpace(benches[i]), errs[i])
			continue
		}
		printResult(stdout, res, *beta, *runILP, *ascii, *timing)
	}

	if res := results[0]; errs[0] == nil {
		if *defOut != "" {
			if err := writeArtifact(stdout, *defOut, func(f *os.File) error { return res.Placement.WriteDEF(f) }); err != nil {
				return err
			}
		}
		if *vOut != "" {
			if err := writeArtifact(stdout, *vOut, func(f *os.File) error {
				return netlist.WriteVerilog(f, res.Placement.Design)
			}); err != nil {
				return err
			}
		}
	}
	if failed > 0 {
		return fmt.Errorf("%d benchmark(s) failed", failed)
	}
	return nil
}

func printResult(w io.Writer, res *repro.Result, beta float64, runILP, ascii, timing bool) {
	fmt.Fprintf(w, "%s: %d gates (%d FF), %d rows, Dcrit %.0f ps, %d timing constraints at beta=%.0f%%\n",
		res.Design.Name, res.Design.Gates, res.Design.DFFs, res.Rows,
		res.DcritPS, res.Constraints, beta*100)

	t := report.New("", "allocator", "leakage(uW)", "overhead(uW)", "savings", "clusters", "vbs levels", "runtime")
	add := func(label string, s *core.Solution, rt time.Duration) {
		sav := core.Savings(res.Single, s)
		var vbs []string
		for _, v := range res.Problem.VbsOf(s) {
			vbs = append(vbs, fmt.Sprintf("%.2fV", v))
		}
		t.Add(label,
			fmt.Sprintf("%.3f", s.TotalLeakNW/1000),
			fmt.Sprintf("%.3f", s.ExtraLeakNW/1000),
			fmt.Sprintf("%.1f%%", sav),
			fmt.Sprint(s.Clusters),
			strings.Join(vbs, " "),
			rt.Round(time.Microsecond).String(),
		)
	}
	add("single-BB", res.Single, 0)
	add(res.SolverName, res.Heuristic, res.HeuristicTime)
	if res.ILP != nil {
		add("ILP("+res.ILPStatus+")", res.ILP, res.ILPTime)
	} else if runILP {
		t.Add("ILP", "-", "-", "-", "-", "-", res.ILPTime.Round(time.Millisecond).String())
	}
	fmt.Fprint(w, t.String())

	if ir := res.ILPResult; ir != nil {
		fmt.Fprintf(w, "ilp: %s after %d nodes (%s branching, %d strong LPs); presolve fixed %d vars, dropped %d rows, tightened %d bounds",
			ir.Status, ir.Nodes, ir.Branching, ir.StrongLPs,
			ir.PresolveFixedVars, ir.PresolveDroppedRows, ir.PresolveTightened)
		if g := ir.Gap(); g > 0 {
			fmt.Fprintf(w, "; gap %.2f%%", g*100)
		}
		if res.RaceWinner != "" {
			fmt.Fprintf(w, "; race winner: %s", res.RaceWinner)
		}
		fmt.Fprintln(w)
	}

	if res.Layout != nil {
		fmt.Fprintf(w, "layout: %d bias pair(s), max row-util increase %.1f%%, "+
			"%d well boundaries, area overhead %.2f%%\n",
			len(res.Layout.VbsLevels), res.Layout.MaxUtilIncrease*100,
			res.Layout.WellSepBoundaries, res.Layout.AreaOverheadPct)
	}
	if ascii && res.Layout != nil {
		fmt.Fprintln(w)
		fmt.Fprint(w, layout.RenderASCII(res.Placement, res.Heuristic.Assign, res.Layout))
	}
	if timing {
		fmt.Fprintln(w)
		fmt.Fprint(w, res.Timing.TextReport(5))
	}
}

func writeArtifact(w io.Writer, path string, write func(*os.File) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := write(f); err != nil {
		return err
	}
	fmt.Fprintln(w, "wrote", path)
	return nil
}
