// Command layoutviz renders the clustered-FBB layout of a benchmark: the
// abstract row view of the paper's Figure 3 (ASCII) or the placed-and-routed
// view of Figure 6 (SVG).
//
// Usage:
//
//	layoutviz -bench c5315 -beta 0.05 -c 3 -format svg -o c5315.svg
//	layoutviz -bench c5315 -format ascii
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"

	"repro"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "layoutviz:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("layoutviz", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		bench  = fs.String("bench", "c5315", "benchmark name")
		beta   = fs.Float64("beta", 0.05, "slowdown coefficient")
		c      = fs.Int("c", 3, "maximum clusters")
		format = fs.String("format", "ascii", "output format: ascii or svg")
		out    = fs.String("o", "", "output file (default stdout)")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil // -h/-help: usage already printed, a clean exit
		}
		return err
	}

	st, err := repro.StudyLayout(*bench, *beta, *c)
	if err != nil {
		return err
	}
	var payload string
	switch *format {
	case "ascii":
		payload = st.ASCII
	case "svg":
		payload = st.SVG
	default:
		return fmt.Errorf("unknown format %s", *format)
	}
	if *out == "" {
		fmt.Fprint(stdout, payload)
		return nil
	}
	if err := os.WriteFile(*out, []byte(payload), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(stdout, "wrote %s (%d bytes); area overhead %.2f%%, %d bias pair(s)\n",
		*out, len(payload), st.Report.AreaOverheadPct, len(st.Report.VbsLevels))
	return nil
}
