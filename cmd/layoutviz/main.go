// Command layoutviz renders the clustered-FBB layout of a benchmark: the
// abstract row view of the paper's Figure 3 (ASCII) or the placed-and-routed
// view of Figure 6 (SVG).
//
// Usage:
//
//	layoutviz -bench c5315 -beta 0.05 -c 3 -format svg -o c5315.svg
//	layoutviz -bench c5315 -format ascii
package main

import (
	"flag"
	"fmt"
	"os"

	"repro"
)

func main() {
	var (
		bench  = flag.String("bench", "c5315", "benchmark name")
		beta   = flag.Float64("beta", 0.05, "slowdown coefficient")
		c      = flag.Int("c", 3, "maximum clusters")
		format = flag.String("format", "ascii", "output format: ascii or svg")
		out    = flag.String("o", "", "output file (default stdout)")
	)
	flag.Parse()

	st, err := repro.StudyLayout(*bench, *beta, *c)
	if err != nil {
		fmt.Fprintln(os.Stderr, "layoutviz:", err)
		os.Exit(1)
	}
	var payload string
	switch *format {
	case "ascii":
		payload = st.ASCII
	case "svg":
		payload = st.SVG
	default:
		fmt.Fprintln(os.Stderr, "layoutviz: unknown format", *format)
		os.Exit(1)
	}
	if *out == "" {
		fmt.Print(payload)
		return
	}
	if err := os.WriteFile(*out, []byte(payload), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "layoutviz:", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s (%d bytes); area overhead %.2f%%, %d bias pair(s)\n",
		*out, len(payload), st.Report.AreaOverheadPct, len(st.Report.VbsLevels))
}
