package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestLayoutvizASCII(t *testing.T) {
	var out, errb bytes.Buffer
	if err := run([]string{"-bench", "c1355", "-format", "ascii"}, &out, &errb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "legend") {
		t.Errorf("ASCII render missing legend:\n%s", out.String())
	}
}

func TestLayoutvizSVGToFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "c1355.svg")
	var out, errb bytes.Buffer
	if err := run([]string{"-bench", "c1355", "-format", "svg", "-o", path}, &out, &errb); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "<svg") {
		t.Error("output file is not an SVG")
	}
	if !strings.Contains(out.String(), "wrote "+path) {
		t.Errorf("missing confirmation line:\n%s", out.String())
	}
}

func TestLayoutvizBadInputs(t *testing.T) {
	var out, errb bytes.Buffer
	if err := run([]string{"-bench", "c1355", "-format", "jpeg"}, &out, &errb); err == nil {
		t.Error("unknown format accepted")
	}
	if err := run([]string{"-bench", "bogus"}, &out, &errb); err == nil {
		t.Error("unknown benchmark accepted")
	}
}
