package main

import (
	"bufio"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/serve"
)

// startRouter runs the real router daemon — flag parsing, listener,
// shutdown — on an ephemeral port in front of the given replica URLs and
// returns its base URL. The cleanup cancels the signal context and asserts
// a clean exit.
func startRouter(t *testing.T, replicas []string, extra ...string) string {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	pr, pw := io.Pipe()
	done := make(chan error, 1)
	args := append([]string{
		"-addr", "127.0.0.1:0",
		"-replicas", strings.Join(replicas, ","),
	}, extra...)
	go func() { done <- run(ctx, args, pw, io.Discard) }()

	sc := bufio.NewScanner(pr)
	if !sc.Scan() {
		t.Fatalf("router produced no output: %v", sc.Err())
	}
	line := sc.Text()
	const prefix = "fbbrouter: listening on "
	if !strings.HasPrefix(line, prefix) {
		t.Fatalf("unexpected first line %q", line)
	}
	baseURL, _, _ := strings.Cut(strings.TrimPrefix(line, prefix), " ")
	go io.Copy(io.Discard, pr) // keep the drain messages flowing

	t.Cleanup(func() {
		cancel()
		select {
		case err := <-done:
			if err != nil {
				t.Errorf("router exited with %v", err)
			}
		case <-time.After(10 * time.Second):
			t.Error("router did not shut down within 10s")
		}
		pw.Close()
	})
	return baseURL
}

func newReplicas(t *testing.T, n int) []string {
	t.Helper()
	urls := make([]string, n)
	for i := range urls {
		ts := httptest.NewServer(serve.New(serve.Options{}).Handler())
		t.Cleanup(ts.Close)
		urls[i] = ts.URL
	}
	return urls
}

// TestRouterDaemonServesCluster: the daemon end to end — flags, listener,
// routed tune traffic, the cluster stats view, and graceful shutdown (in
// cleanup).
func TestRouterDaemonServesCluster(t *testing.T) {
	replicas := newReplicas(t, 2)
	baseURL := startRouter(t, replicas, "-health-interval", "50ms")
	c := serve.NewClient(baseURL)

	for _, bench := range []string{"c1355", "c3540"} {
		resp, err := c.Tune(context.Background(), serve.TuneRequest{
			DesignRef: serve.DesignRef{Benchmark: bench}, Beta: 0.05,
		})
		if err != nil {
			t.Fatalf("%s through the daemon: %v", bench, err)
		}
		if resp.Summary == nil || resp.Summary.Benchmark != bench {
			t.Fatalf("%s: response %+v", bench, resp)
		}
	}

	cs, err := c.ClusterStats(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(cs.Replicas) != 2 {
		t.Fatalf("cluster view: %+v", cs)
	}
	var forwarded int64
	for _, r := range cs.Replicas {
		forwarded += r.Forwarded
	}
	if forwarded != 2 {
		t.Errorf("forwarded %d requests, want 2", forwarded)
	}

	resp, err := http.Get(baseURL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var hz struct {
		Status  string `json:"status"`
		Healthy int    `json:"healthy"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&hz); err != nil || hz.Status != "ok" || hz.Healthy != 2 {
		t.Errorf("healthz %+v (%v)", hz, err)
	}
}

func TestRouterRunBadFlags(t *testing.T) {
	for _, args := range [][]string{
		{},                                 // -replicas required
		{"-replicas", " , "},               // blank entries only
		{"-replicas", "http://a,http://a"}, // duplicates
		{"-no-such-flag"},
		{"-replicas", "http://a", "-addr", "256.256.256.256:0"},
	} {
		if err := run(context.Background(), args, io.Discard, io.Discard); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
	if err := run(context.Background(), []string{"-h"}, io.Discard, io.Discard); err != nil {
		t.Errorf("-h: %v", err)
	}
}
