// Command fbbrouter is the stateless routing front door of an fbbd
// cluster: it consistent-hashes each request's design key so every
// design's expensive flow prefix is built on exactly one replica — the
// single-process coalescing guarantee extended cluster-wide.
//
// The router resolves the key without running the flow (it builds or
// parses only the netlist), watches each replica's /healthz so a draining
// or dead replica leaves the ring and its keys re-hash to the survivors,
// and fails hot or draining designs over through a bounded spill to the
// next replicas in ring order. 503s that survive the spill are forwarded
// verbatim, Retry-After intact. /v1/table1 is scattered per benchmark to
// each design's owner and gathered back in request order; GET /v1/stats
// returns the cluster view (router counters plus every replica's health
// and live stats).
//
// Usage:
//
//	fbbrouter -replicas http://10.0.0.1:8080,http://10.0.0.2:8080
//	          [-addr :8090] [-health-interval 500ms] [-spill 1]
//	          [-vnodes 64] [-forward-timeout 0s] [-breaker 3]
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/serve"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "fbbrouter:", err)
		os.Exit(1)
	}
}

// run starts the router and serves until ctx is cancelled. The listen
// address is printed to stdout ("fbbrouter: listening on ...") so callers
// binding port 0 — tests, scripts — can discover the real port.
func run(ctx context.Context, args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("fbbrouter", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr           = fs.String("addr", ":8090", "listen address")
		replicas       = fs.String("replicas", "", "comma-separated fbbd base URLs (required)")
		healthInterval = fs.Duration("health-interval", 500*time.Millisecond, "replica /healthz polling period")
		spill          = fs.Int("spill", 1, "failover bound: extra replicas tried after the owner sheds (0 = none)")
		vnodes         = fs.Int("vnodes", 64, "virtual nodes per replica on the hash ring")
		forwardTimeout = fs.Duration("forward-timeout", 0, "per-forward budget for a replica to start responding (0 = unbounded; response bodies stream without limit)")
		breaker        = fs.Int("breaker", 3, "consecutive forward failures that trip a replica out of the ring to immediate re-probe")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil // -h/-help: usage already printed, a clean exit
		}
		return err
	}
	var addrs []string
	for _, a := range strings.Split(*replicas, ",") {
		if a = strings.TrimSpace(a); a != "" {
			addrs = append(addrs, a)
		}
	}
	if len(addrs) == 0 {
		return fmt.Errorf("-replicas is required (comma-separated fbbd base URLs)")
	}
	// RouterOptions uses 0 as "default": the flag's explicit 0 maps to the
	// options' negative ("no spill").
	sp := *spill
	if sp <= 0 {
		sp = -1
	}

	rt, err := serve.NewRouter(serve.RouterOptions{
		Replicas:         addrs,
		HealthInterval:   *healthInterval,
		Spill:            sp,
		VirtualNodes:     *vnodes,
		ForwardTimeout:   *forwardTimeout,
		BreakerThreshold: *breaker,
	})
	if err != nil {
		return err
	}
	defer rt.Close()

	httpSrv := &http.Server{
		Handler:           rt.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "fbbrouter: listening on http://%s (%d replicas)\n", ln.Addr(), len(addrs))

	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	select {
	case err := <-serveErr:
		return err
	case <-ctx.Done():
	}

	// The router is stateless: shutting down is just finishing the
	// forwards already in flight. The replicas drain themselves.
	fmt.Fprintln(stdout, "fbbrouter: draining")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		httpSrv.Close()
		return fmt.Errorf("drain: %w", err)
	}
	fmt.Fprintln(stdout, "fbbrouter: drained")
	return nil
}
