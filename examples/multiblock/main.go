// Multiblock reproduces the paper's Figure 2 scenario: a four-block SoC
// served by one central body-bias generator. Each block senses its own
// slowdown (the Tc flags of the figure), is compensated independently with
// row-clustered FBB, and the generator distributes at most two (vbsn, vbsp)
// pairs per block. Run with:
//
//	go run ./examples/multiblock
package main

import (
	"fmt"
	"log"

	"repro"
	"repro/internal/report"
)

func main() {
	// Four blocks, each with its own sensed slowdown — e.g. from local
	// temperature or aging gradients across the die.
	blocks := []string{"c1355", "c3540", "c5315", "c7552"}
	betas := []float64{0.05, 0.08, 0.05, 0.10}

	res, err := repro.MultiBlock(blocks, betas)
	if err != nil {
		log.Fatal(err)
	}

	t := report.New("Figure 2 — central generator serving four blocks",
		"block", "sensed slowdown", "bias levels", "savings vs single-BB")
	for _, b := range res.Blocks {
		t.Add(b.Name,
			fmt.Sprintf("%.0f%%", b.BetaPct),
			fmt.Sprint(b.Levels),
			fmt.Sprintf("%.1f%%", b.SavingsPct))
	}
	fmt.Print(t.String())

	fmt.Printf("\ncentral generator: %d distinct voltages across %d routed pairs\n",
		res.DistinctLevels, len(res.Plan.Lines))
	for _, l := range res.Plan.Lines {
		fmt.Printf("  %-8s level %2d -> vbsn=%.2fV vbsp=%.2fV\n", l.Block, l.Level, l.VbsN, l.VbsP)
	}
	fmt.Printf("generator+buffers+routing area: %.1f%% of die (per Tschanz et al. [8])\n",
		res.GenAreaPct)
}
