// Multiblock reproduces the paper's Figure 2 scenario: a four-block SoC
// served by one central body-bias generator. Each block senses its own
// slowdown (the Tc flags of the figure), is compensated independently with
// row-clustered FBB, and the generator distributes at most two (vbsn, vbsp)
// pairs per block. Run with:
//
//	go run ./examples/multiblock [-blocks c1355,c3540,c5315,c7552] [-betas 0.05,0.08,0.05,0.10]
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"strconv"
	"strings"

	"repro"
	"repro/internal/report"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		log.Fatal(err)
	}
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("multiblock", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		blockList = fs.String("blocks", "c1355,c3540,c5315,c7552", "comma-separated block benchmarks")
		betaList  = fs.String("betas", "0.05,0.08,0.05,0.10", "comma-separated sensed slowdowns, one per block")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil // -h/-help: usage already printed, a clean exit
		}
		return err
	}

	blocks := strings.Split(*blockList, ",")
	var betas []float64
	for _, s := range strings.Split(*betaList, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
		if err != nil {
			return fmt.Errorf("bad beta: %s", s)
		}
		betas = append(betas, v)
	}

	res, err := repro.MultiBlock(blocks, betas)
	if err != nil {
		return err
	}

	t := report.New("Figure 2 — central generator serving the blocks",
		"block", "sensed slowdown", "bias levels", "savings vs single-BB")
	for _, b := range res.Blocks {
		t.Add(b.Name,
			fmt.Sprintf("%.0f%%", b.BetaPct),
			fmt.Sprint(b.Levels),
			fmt.Sprintf("%.1f%%", b.SavingsPct))
	}
	fmt.Fprint(stdout, t.String())

	fmt.Fprintf(stdout, "\ncentral generator: %d distinct voltages across %d routed pairs\n",
		res.DistinctLevels, len(res.Plan.Lines))
	for _, l := range res.Plan.Lines {
		fmt.Fprintf(stdout, "  %-8s level %2d -> vbsn=%.2fV vbsp=%.2fV\n", l.Block, l.Level, l.VbsN, l.VbsP)
	}
	fmt.Fprintf(stdout, "generator+buffers+routing area: %.1f%% of die (per Tschanz et al. [8])\n",
		res.GenAreaPct)
	return nil
}
