package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestMultiBlockExample(t *testing.T) {
	var out, errb bytes.Buffer
	if err := run([]string{"-blocks", "c1355,c3540", "-betas", "0.05,0.08"}, &out, &errb); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"c1355", "c3540", "central generator", "vbsn="} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q:\n%s", want, s)
		}
	}
}

func TestMultiBlockMismatchedBetas(t *testing.T) {
	var out, errb bytes.Buffer
	if err := run([]string{"-blocks", "c1355,c3540", "-betas", "0.05"}, &out, &errb); err == nil {
		t.Error("mismatched block/beta counts accepted")
	}
}
