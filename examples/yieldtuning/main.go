// Yieldtuning runs the system-level experiment that motivates the paper:
// a Monte-Carlo population of dies with die-to-die, spatially correlated
// within-die and random threshold variation is timed, sensed by on-die
// monitors, and the slow dies are pulled back to nominal speed with
// row-clustered FBB ("bring the slow dies back to within the range of
// acceptable specs"). Run with:
//
//	go run ./examples/yieldtuning [-bench c1355] [-dies 200] [-seed 1]
//	                              [-solver heuristic] [-parallel 0]
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"strings"

	"repro"
	"repro/internal/core"
	"repro/internal/place"
	"repro/internal/sta"
	"repro/internal/tech"
	"repro/internal/variation"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		log.Fatal(err)
	}
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("yieldtuning", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		bench    = fs.String("bench", "c1355", "benchmark name")
		dies     = fs.Int("dies", 200, "Monte-Carlo population size")
		seed     = fs.Int64("seed", 1, "sampling seed")
		solver   = fs.String("solver", "heuristic", "allocation engine ("+strings.Join(core.SolverNames(), ", ")+")")
		parallel = fs.Int("parallel", 0, "concurrent die tunings (0 = one per CPU, 1 = sequential)")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil // -h/-help: usage already printed, a clean exit
		}
		return err
	}
	if *dies <= 0 {
		return fmt.Errorf("yieldtuning: -dies must be positive")
	}

	pl, nom, err := repro.NominalTiming(*bench)
	if err != nil {
		return err
	}
	proc := tech.Default45nm()
	model := variation.Default()

	fmt.Fprintf(stdout, "%s: %d gates, nominal Dcrit %.0f ps\n", *bench, len(pl.Design.Gates), nom.DcritPS)
	fmt.Fprintf(stdout, "variation: sigma(d2d)=%.0fmV sigma(sys)=%.0fmV sigma(rnd)=%.0fmV\n\n",
		model.SigmaD2DmV, model.SigmaSysmV, model.SigmaRndmV)

	// Slowdown histogram before tuning.
	fmt.Fprintln(stdout, "die slowdown distribution (before tuning):")
	if err := histogram(stdout, pl, nom, proc, model, *dies, *seed); err != nil {
		return err
	}

	s, err := core.NewNamedSolver(*solver)
	if err != nil {
		return err
	}
	// An unbounded exact solve per escalation per die would run for ages;
	// a node budget keeps it bounded — and, unlike the historical
	// wall-clock cap, deterministic at any -parallel.
	switch sv := s.(type) {
	case *core.ILPSolver:
		sv.Opts.NodeLimit = 50000
	case *core.RaceSolver:
		sv.ILP.NodeLimit = 50000
	}
	st, err := variation.YieldStudy(context.Background(), pl, proc, model, *dies, *seed,
		variation.TuneOptions{GuardbandPct: 0.005, Solver: s, Workers: *parallel})
	if err != nil {
		return err
	}
	before, after := st.YieldPct()
	fmt.Fprintf(stdout, "\nparametric yield : %5.1f%%  ->  %5.1f%%  (%d dies)\n", before, after, st.Dies)
	fmt.Fprintf(stdout, "dies tuned       : %d (mean %.1f allocation iterations, %.1f clusters)\n",
		st.TunedDies, st.MeanTuneIters, st.MeanClustersPerTuned)
	fmt.Fprintf(stdout, "tuning failures  : %d (beyond the FBB compensation range)\n", st.FailedCompensations)
	fmt.Fprintf(stdout, "mean leakage     : %.2f uW -> %.2f uW (+%.1f%% spent on compensation)\n",
		st.MeanLeakBeforeNW/1000, st.MeanLeakAfterNW/1000,
		100*(st.MeanLeakAfterNW-st.MeanLeakBeforeNW)/st.MeanLeakBeforeNW)
	fmt.Fprintf(stdout, "worst die        : %+.1f%% slow\n", st.WorstBetaPct)
	return nil
}

// histogram re-times the same per-index die population the study samples
// (variation.DieSeed), re-using one analyzer, one sampler and one die
// buffer across all dies; only DcritPS is read, so the re-times take the
// Dcrit-only light path.
func histogram(w io.Writer, pl *place.Placement, nom *sta.Timing, proc *tech.Process,
	m variation.Model, dies int, seed int64) error {
	an, err := sta.NewAnalyzer(pl, sta.Options{})
	if err != nil {
		return err
	}
	rt := variation.NewRetimer(an)
	smp := variation.NewSampler(pl, proc, m)
	var die *variation.Die
	bins := make([]int, 9) // <-6, -6..-4, ..., 8..10, >10 (%)
	for i := 0; i < dies; i++ {
		die = smp.SampleInto(die, variation.DieSeed(seed, i))
		tm, err := rt.TimeLight(die)
		if err != nil {
			return err
		}
		beta := (tm.DcritPS/nom.DcritPS - 1) * 100
		bin := int((beta + 6) / 2)
		if bin < 0 {
			bin = 0
		}
		if bin >= len(bins) {
			bin = len(bins) - 1
		}
		bins[bin]++
	}
	labels := []string{"< -4%", "-4..-2", "-2..0", "0..2", "2..4", "4..6", "6..8", "8..10", "> 10%"}
	for i, n := range bins {
		fmt.Fprintf(w, "  %-7s %4d %s\n", labels[i], n, strings.Repeat("*", n*60/dies))
	}
	return nil
}
