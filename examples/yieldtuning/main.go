// Yieldtuning runs the system-level experiment that motivates the paper:
// a Monte-Carlo population of dies with die-to-die, spatially correlated
// within-die and random threshold variation is timed, sensed by on-die
// monitors, and the slow dies are pulled back to nominal speed with
// row-clustered FBB ("bring the slow dies back to within the range of
// acceptable specs"). Run with:
//
//	go run ./examples/yieldtuning [-bench c1355] [-dies 200] [-seed 1]
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"strings"

	"repro"
	"repro/internal/place"
	"repro/internal/sta"
	"repro/internal/tech"
	"repro/internal/variation"
)

func main() {
	var (
		bench = flag.String("bench", "c1355", "benchmark name")
		dies  = flag.Int("dies", 200, "Monte-Carlo population size")
		seed  = flag.Int64("seed", 1, "sampling seed")
	)
	flag.Parse()

	pl, nom, err := repro.NominalTiming(*bench)
	if err != nil {
		log.Fatal(err)
	}
	proc := tech.Default45nm()
	model := variation.Default()

	fmt.Printf("%s: %d gates, nominal Dcrit %.0f ps\n", *bench, len(pl.Design.Gates), nom.DcritPS)
	fmt.Printf("variation: sigma(d2d)=%.0fmV sigma(sys)=%.0fmV sigma(rnd)=%.0fmV\n\n",
		model.SigmaD2DmV, model.SigmaSysmV, model.SigmaRndmV)

	// Slowdown histogram before tuning.
	fmt.Println("die slowdown distribution (before tuning):")
	histogram(pl, nom, proc, model, *dies, *seed)

	st, err := variation.YieldStudy(context.Background(), pl, proc, model, *dies, *seed,
		variation.TuneOptions{GuardbandPct: 0.005})
	if err != nil {
		log.Fatal(err)
	}
	before, after := st.YieldPct()
	fmt.Printf("\nparametric yield : %5.1f%%  ->  %5.1f%%  (%d dies)\n", before, after, st.Dies)
	fmt.Printf("dies tuned       : %d (mean %.1f allocation iterations, %.1f clusters)\n",
		st.TunedDies, st.MeanTuneIters, st.MeanClustersPerTuned)
	fmt.Printf("tuning failures  : %d (beyond the FBB compensation range)\n", st.FailedCompensations)
	fmt.Printf("mean leakage     : %.2f uW -> %.2f uW (+%.1f%% spent on compensation)\n",
		st.MeanLeakBeforeNW/1000, st.MeanLeakAfterNW/1000,
		100*(st.MeanLeakAfterNW-st.MeanLeakBeforeNW)/st.MeanLeakBeforeNW)
	fmt.Printf("worst die        : %+.1f%% slow\n", st.WorstBetaPct)
}

func histogram(pl *place.Placement, nom *sta.Timing, proc *tech.Process,
	m variation.Model, dies int, seed int64) {
	bins := make([]int, 9) // <-6, -6..-4, ..., 8..10, >10 (%)
	for i := 0; i < dies; i++ {
		die := m.Sample(pl, proc, seed+int64(i)*7919)
		tm, err := die.Timing(pl)
		if err != nil {
			log.Fatal(err)
		}
		beta := (tm.DcritPS/nom.DcritPS - 1) * 100
		bin := int((beta + 6) / 2)
		if bin < 0 {
			bin = 0
		}
		if bin >= len(bins) {
			bin = len(bins) - 1
		}
		bins[bin]++
	}
	labels := []string{"< -4%", "-4..-2", "-2..0", "0..2", "2..4", "4..6", "6..8", "8..10", "> 10%"}
	for i, n := range bins {
		fmt.Printf("  %-7s %4d %s\n", labels[i], n, strings.Repeat("*", n*60/dies))
	}
}
