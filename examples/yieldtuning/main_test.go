package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestYieldTuningExample(t *testing.T) {
	var out, errb bytes.Buffer
	if err := run([]string{"-bench", "c1355", "-dies", "8", "-seed", "3"}, &out, &errb); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{
		"die slowdown distribution",
		"parametric yield",
		"mean leakage",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q:\n%s", want, s)
		}
	}
}

func TestYieldTuningBadDies(t *testing.T) {
	var out, errb bytes.Buffer
	if err := run([]string{"-bench", "c1355", "-dies", "0"}, &out, &errb); err == nil {
		t.Error("zero dies accepted")
	}
}
