// Agingcomp demonstrates dynamic compensation of time-dependent variation
// (the paper's section 3.1: "temperature and circuit aging induced timing
// failures ... are dynamic in nature" and need periodic re-tuning).
//
// A die ages under NBTI for ten years and heats from 300K to 370K; at each
// checkpoint the in-situ monitors re-sense the slowdown and the controller
// re-allocates clustered FBB. Run with:
//
//	go run ./examples/agingcomp [-bench c3540]
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"os"

	"repro"
	"repro/internal/core"
	"repro/internal/report"
	"repro/internal/sta"
	"repro/internal/tech"
	"repro/internal/variation"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		log.Fatal(err)
	}
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("agingcomp", flag.ContinueOnError)
	fs.SetOutput(stderr)
	bench := fs.String("bench", "c3540", "benchmark name")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil // -h/-help: usage already printed, a clean exit
		}
		return err
	}

	pl, nom, err := repro.NominalTiming(*bench)
	if err != nil {
		return err
	}
	proc := tech.Default45nm()
	model := variation.Default()

	// One reusable sampler, analyzer and allocation engine serve every
	// checkpoint's re-tuning — the batched form the periodic re-tuning
	// controller would run on-line. The aged die is re-derived into one
	// reused buffer per checkpoint instead of a fresh pair of slices.
	smp := variation.NewSampler(pl, proc, model)
	die := smp.SampleInto(nil, 11)
	var aged *variation.Die
	an, err := sta.NewAnalyzer(pl, sta.Options{})
	if err != nil {
		return err
	}
	al, err := core.NewAllocator(pl, nom)
	if err != nil {
		return err
	}
	tn := variation.NewTuner(variation.NewRetimer(an), al)

	fmt.Fprintf(stdout, "%s: nominal Dcrit %.0f ps; one die followed over 10 years\n\n",
		*bench, nom.DcritPS)

	t := report.New("dynamic compensation under aging and temperature",
		"year", "temp", "slowdown", "tuned?", "clusters", "Dcrit after", "leakage after")
	for _, cp := range []struct {
		years float64
		tempK float64
	}{
		{0, 300}, {1, 330}, {3, 345}, {5, 360}, {10, 370},
	} {
		aged = smp.AgedInto(aged, die, cp.years, 0.8)
		hotProc := proc.WithTemperature(cp.tempK)
		// Temperature also derates every gate uniformly.
		for g := range aged.DelayScale {
			aged.DelayScale[g] = hotProc.DelayFactorDVth(aged.DVthV[g])
		}
		r, err := variation.TuneOn(tn, nom, aged, hotProc, variation.TuneOptions{
			GuardbandPct: 0.005,
		})
		if err != nil {
			return err
		}
		tuned := "no (already met)"
		clusters := "-"
		if r.Solution != nil {
			tuned = "yes"
			clusters = fmt.Sprint(r.Solution.Clusters)
		}
		if !r.Met {
			tuned = "FAILED: " + r.Reason
		}
		t.Add(
			fmt.Sprintf("%.0f", cp.years),
			fmt.Sprintf("%.0fK", cp.tempK),
			fmt.Sprintf("%+.1f%%", r.BetaActual*100),
			tuned,
			clusters,
			fmt.Sprintf("%.0f ps", r.DcritAfterPS),
			fmt.Sprintf("%.2f uW", r.LeakAfterNW/1000),
		)
	}
	fmt.Fprint(stdout, t.String())
	fmt.Fprintln(stdout, "\nthe controller escalates the bias as the die degrades, trading leakage")
	fmt.Fprintln(stdout, "for timing exactly as the static process-variation flow does at time zero.")
	return nil
}
