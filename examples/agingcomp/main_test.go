package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestAgingCompExample(t *testing.T) {
	var out, errb bytes.Buffer
	if err := run([]string{"-bench", "c1355"}, &out, &errb); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "dynamic compensation under aging and temperature") {
		t.Errorf("missing table header:\n%s", s)
	}
	// Five checkpoints: year 0 through year 10.
	for _, year := range []string{"300K", "330K", "345K", "360K", "370K"} {
		if !strings.Contains(s, year) {
			t.Errorf("missing checkpoint %s:\n%s", year, s)
		}
	}
}
