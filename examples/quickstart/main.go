// Quickstart: the shortest path through the ClusterFBB API.
//
// A c5315-class design is generated, placed into standard-cell rows, timed,
// and compensated for a 5% process slowdown with at most three clusters
// (no-body-bias plus two forward-bias voltages), exactly the configuration
// the paper's layout supports. Run with:
//
//	go run ./examples/quickstart [-bench c5315]
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"strings"

	"repro"
	"repro/internal/core"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		log.Fatal(err)
	}
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("quickstart", flag.ContinueOnError)
	fs.SetOutput(stderr)
	bench := fs.String("bench", "c5315", "benchmark name (one of repro.Benchmarks())")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil // -h/-help: usage already printed, a clean exit
		}
		return err
	}

	res, err := repro.Run(repro.Config{
		Benchmark:   *bench,
		Beta:        0.05, // compensate a 5% slowdown
		MaxClusters: 3,    // NBB + two bias voltages
	})
	if err != nil {
		return err
	}

	fmt.Fprintf(stdout, "design    : %s (%d gates in %d rows)\n",
		res.Design.Name, res.Design.Gates, res.Rows)
	fmt.Fprintf(stdout, "timing    : Dcrit %.0f ps, %d violating-path constraints at beta=5%%\n",
		res.DcritPS, res.Constraints)

	fmt.Fprintf(stdout, "\nblock-level FBB (the prior art baseline):\n")
	fmt.Fprintf(stdout, "  every row at vbs=%.2fV -> %.3f uW total leakage\n",
		res.Problem.VbsOf(res.Single)[0], res.Single.TotalLeakNW/1000)

	fmt.Fprintf(stdout, "\nrow-clustered FBB (this paper):\n")
	var vbs []string
	for _, v := range res.Problem.VbsOf(res.Heuristic) {
		vbs = append(vbs, fmt.Sprintf("%.2fV", v))
	}
	fmt.Fprintf(stdout, "  %d clusters at vbs = %s\n", res.Heuristic.Clusters, strings.Join(vbs, ", "))
	fmt.Fprintf(stdout, "  %.3f uW total leakage -> %.1f%% savings in %v\n",
		res.Heuristic.TotalLeakNW/1000,
		core.Savings(res.Single, res.Heuristic),
		res.HeuristicTime)

	fmt.Fprintf(stdout, "\nphysical implementation:\n")
	fmt.Fprintf(stdout, "  %d bias pair(s) routed, max row-utilization increase %.1f%%,\n",
		len(res.Layout.VbsLevels), res.Layout.MaxUtilIncrease*100)
	fmt.Fprintf(stdout, "  %d well-separation boundaries, die-area overhead %.2f%%\n",
		res.Layout.WellSepBoundaries, res.Layout.AreaOverheadPct)
	return nil
}
