// Quickstart: the shortest path through the ClusterFBB API.
//
// A c5315-class design is generated, placed into standard-cell rows, timed,
// and compensated for a 5% process slowdown with at most three clusters
// (no-body-bias plus two forward-bias voltages), exactly the configuration
// the paper's layout supports. Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"strings"

	"repro"
	"repro/internal/core"
)

func main() {
	res, err := repro.Run(repro.Config{
		Benchmark:   "c5315", // one of repro.Benchmarks()
		Beta:        0.05,    // compensate a 5% slowdown
		MaxClusters: 3,       // NBB + two bias voltages
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("design    : %s (%d gates in %d rows)\n",
		res.Design.Name, res.Design.Gates, res.Rows)
	fmt.Printf("timing    : Dcrit %.0f ps, %d violating-path constraints at beta=5%%\n",
		res.DcritPS, res.Constraints)

	fmt.Printf("\nblock-level FBB (the prior art baseline):\n")
	fmt.Printf("  every row at vbs=%.2fV -> %.3f uW total leakage\n",
		res.Problem.VbsOf(res.Single)[0], res.Single.TotalLeakNW/1000)

	fmt.Printf("\nrow-clustered FBB (this paper):\n")
	var vbs []string
	for _, v := range res.Problem.VbsOf(res.Heuristic) {
		vbs = append(vbs, fmt.Sprintf("%.2fV", v))
	}
	fmt.Printf("  %d clusters at vbs = %s\n", res.Heuristic.Clusters, strings.Join(vbs, ", "))
	fmt.Printf("  %.3f uW total leakage -> %.1f%% savings in %v\n",
		res.Heuristic.TotalLeakNW/1000,
		core.Savings(res.Single, res.Heuristic),
		res.HeuristicTime)

	fmt.Printf("\nphysical implementation:\n")
	fmt.Printf("  %d bias pair(s) routed, max row-utilization increase %.1f%%,\n",
		len(res.Layout.VbsLevels), res.Layout.MaxUtilIncrease*100)
	fmt.Printf("  %d well-separation boundaries, die-area overhead %.2f%%\n",
		res.Layout.WellSepBoundaries, res.Layout.AreaOverheadPct)
}
