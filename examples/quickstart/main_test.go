package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestQuickstart(t *testing.T) {
	var out, errb bytes.Buffer
	if err := run([]string{"-bench", "c1355"}, &out, &errb); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{
		"design    : c1355",
		"block-level FBB",
		"row-clustered FBB",
		"physical implementation",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q:\n%s", want, s)
		}
	}
}

func TestQuickstartUnknownBench(t *testing.T) {
	var out, errb bytes.Buffer
	if err := run([]string{"-bench", "bogus"}, &out, &errb); err == nil {
		t.Error("unknown benchmark accepted")
	}
}
