// Clustersweep reproduces the paper's in-text experiment: sweeping the
// cluster budget C from 2 to 11 on the c5315-class design at beta = 5%.
//
// The paper observed a marginal savings increase of only 2.56% across the
// whole sweep, concluding that "one can implement a very low area overhead
// layout with few body bias voltages but still achieve optimal savings" —
// the justification for the two-bias-pair layout style. Run with:
//
//	go run ./examples/clustersweep [-heuristic]
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"
	"time"

	"repro"
)

func main() {
	heuristicOnly := flag.Bool("heuristic", false, "sweep with the greedy heuristic instead of the ILP")
	flag.Parse()

	limit := 10 * time.Second
	if *heuristicOnly {
		limit = 0
	}
	pts, err := repro.ClusterSweep("c5315", 0.05, 2, 11, limit)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("c5315, beta = 5%: leakage savings vs single-voltage FBB")
	fmt.Println()
	max := 0.0
	for _, p := range pts {
		if p.SavingsPct > max {
			max = p.SavingsPct
		}
	}
	for _, p := range pts {
		bar := strings.Repeat("#", int(p.SavingsPct/max*40+0.5))
		fmt.Printf("C=%2d  %6.2f%%  %s\n", p.C, p.SavingsPct, bar)
	}
	gain := pts[len(pts)-1].SavingsPct - pts[0].SavingsPct
	fmt.Printf("\nmarginal gain C=2 -> C=11: %.2f%% (paper: 2.56%%)\n", gain)
	fmt.Println("conclusion: two bias pairs (C=3) capture nearly all of the benefit,")
	fmt.Println("so the row layout never needs more than two routed vbs pairs.")
}
