// Clustersweep reproduces the paper's in-text experiment: sweeping the
// cluster budget C from 2 to 11 on the c5315-class design at beta = 5%.
//
// The paper observed a marginal savings increase of only 2.56% across the
// whole sweep, concluding that "one can implement a very low area overhead
// layout with few body bias voltages but still achieve optimal savings" —
// the justification for the two-bias-pair layout style. Run with:
//
//	go run ./examples/clustersweep [-bench c5315] [-from 2] [-to 11] [-heuristic]
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"strings"
	"time"

	"repro"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		log.Fatal(err)
	}
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("clustersweep", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		bench         = fs.String("bench", "c5315", "benchmark name")
		from          = fs.Int("from", 2, "first cluster budget C")
		to            = fs.Int("to", 11, "last cluster budget C")
		heuristicOnly = fs.Bool("heuristic", false, "sweep with the greedy heuristic instead of the ILP")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil // -h/-help: usage already printed, a clean exit
		}
		return err
	}

	limit := 10 * time.Second
	if *heuristicOnly {
		limit = 0
	}
	pts, err := repro.ClusterSweep(*bench, 0.05, *from, *to, limit)
	if err != nil {
		return err
	}

	fmt.Fprintf(stdout, "%s, beta = 5%%: leakage savings vs single-voltage FBB\n\n", *bench)
	max := 0.0
	for _, p := range pts {
		if p.SavingsPct > max {
			max = p.SavingsPct
		}
	}
	for _, p := range pts {
		bar := ""
		if max > 0 {
			bar = strings.Repeat("#", int(p.SavingsPct/max*40+0.5))
		}
		fmt.Fprintf(stdout, "C=%2d  %6.2f%%  %s\n", p.C, p.SavingsPct, bar)
	}
	gain := pts[len(pts)-1].SavingsPct - pts[0].SavingsPct
	fmt.Fprintf(stdout, "\nmarginal gain C=%d -> C=%d: %.2f%% (paper: 2.56%% over C=2..11)\n", *from, *to, gain)
	fmt.Fprintln(stdout, "conclusion: two bias pairs (C=3) capture nearly all of the benefit,")
	fmt.Fprintln(stdout, "so the row layout never needs more than two routed vbs pairs.")
	return nil
}
