package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestClusterSweepExample(t *testing.T) {
	var out, errb bytes.Buffer
	if err := run([]string{"-bench", "c1355", "-from", "2", "-to", "4", "-heuristic"}, &out, &errb); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"C= 2", "C= 3", "C= 4", "marginal gain"} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q:\n%s", want, s)
		}
	}
}

func TestClusterSweepBadRange(t *testing.T) {
	var out, errb bytes.Buffer
	if err := run([]string{"-bench", "c1355", "-from", "5", "-to", "2"}, &out, &errb); err == nil {
		t.Error("inverted sweep range accepted")
	}
}
