// Package analysis is a minimal, dependency-free subset of the
// golang.org/x/tools/go/analysis API: enough surface (Analyzer, Pass,
// Diagnostic) for the repo's contract checkers to be written in the standard
// go/analysis shape, so they can migrate to the real framework verbatim if
// the x/tools dependency ever becomes available. The container this repo
// builds in has no module proxy access, so the loader and runner
// (internal/lint/driver) are implemented on the standard library alone.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer describes one contract-checking pass and how to run it.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// "//lint:allow <name> <reason>" suppression comments. It must be a
	// valid Go identifier.
	Name string

	// Doc is the one-paragraph description: the invariant the pass proves
	// and what a finding means.
	Doc string

	// Run applies the pass to one package. Findings are delivered through
	// pass.Report; the returned value is unused by the runner but kept for
	// x/tools signature compatibility.
	Run func(pass *Pass) (any, error)
}

func (a *Analyzer) String() string { return a.Name }

// Pass is the interface between one Analyzer run and one type-checked
// package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Report delivers one finding. The driver owns suppression filtering
	// (//lint:allow) and aggregation.
	Report func(Diagnostic)
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Diagnostic is one positioned finding.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}
