// Package workerstate keeps mutable per-worker state out of the closures
// handed to the flow pool.
//
// flow.Map and flow.MapAll run one closure from many goroutines at once. A
// Retimer, Tuner, Sampler, LeakModel or allocation Instance holds scratch
// buffers that are overwritten by every call — sharing one across workers
// through a captured variable is a data race that happens to pass most
// runs, which is why the CI race job exists and why MapWith was built: its
// factory constructs one state per worker and threads it into the closure
// as a parameter. This pass makes the convention a compile-time rule:
//
//   - a function literal passed to flow.Map or flow.MapAll must not
//     reference worker-scoped mutable state (sta.Timing, core.Instance,
//     variation.{Retimer,Tuner,Sampler,LeakModel}) declared outside the
//     literal;
//   - a function literal passed to flow.MapWith as the per-item body may
//     capture an sta.Timing (the read-only nominal timing is the
//     established idiom) but none of the other worker-scoped types —
//     those must arrive through the factory-made state parameter;
//   - a MapWith factory must not return a captured worker-scoped value
//     verbatim: that would hand every worker the same state. Factories
//     capture shared immutable bases and Clone/construct from them.
package workerstate

import (
	"go/ast"
	"go/types"

	"repro/internal/lint/analysis"
	"repro/internal/lint/lintutil"
)

// Analyzer is the workerstate pass.
var Analyzer = &analysis.Analyzer{
	Name: "workerstate",
	Doc:  "closures on the flow pool must not capture worker-scoped mutable state; use the MapWith factory",
	Run:  run,
}

// workerScoped lists the types whose values are single-goroutine scratch
// holders.
var workerScoped = map[string]bool{
	"repro/internal/sta.Timing":          true,
	"repro/internal/sta.TimingBatch":     true,
	"repro/internal/core.Instance":       true,
	"repro/internal/variation.Retimer":   true,
	"repro/internal/variation.Tuner":     true,
	"repro/internal/variation.Sampler":   true,
	"repro/internal/variation.LeakModel": true,
	"repro/internal/variation.DieBlock":  true,
}

func run(pass *analysis.Pass) (any, error) {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := lintutil.Callee(pass.TypesInfo, call)
			if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "repro/internal/flow" {
				return true
			}
			switch fn.Name() {
			case "Map", "MapAll":
				// fn is the last argument.
				if lit, ok := lastArg(call).(*ast.FuncLit); ok {
					checkCaptures(pass, lit, fn.Name(), false)
				}
			case "MapWith":
				// MapWith(ctx, workers, n, newState, fn)
				if len(call.Args) == 5 {
					if lit, ok := ast.Unparen(call.Args[3]).(*ast.FuncLit); ok {
						checkFactory(pass, lit)
					}
					if lit, ok := ast.Unparen(call.Args[4]).(*ast.FuncLit); ok {
						checkCaptures(pass, lit, "MapWith", true)
					}
				}
			}
			return true
		})
	}
	return nil, nil
}

func lastArg(call *ast.CallExpr) ast.Expr {
	if len(call.Args) == 0 {
		return nil
	}
	return ast.Unparen(call.Args[len(call.Args)-1])
}

// checkCaptures reports references inside lit to worker-scoped values
// declared outside it. timingOK exempts sta.Timing (MapWith's read-only
// nominal-timing idiom).
func checkCaptures(pass *analysis.Pass, lit *ast.FuncLit, via string, timingOK bool) {
	forbidden := func(path string) bool {
		return workerScoped[path] && !(timingOK && path == "repro/internal/sta.Timing")
	}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.Ident:
			// A plain identifier reference: struct-field idents (the .smp
			// in w.smp) are reached through their root and skipped here.
			obj, ok := lintutil.ObjectOf(pass.TypesInfo, x).(*types.Var)
			if !ok || obj.IsField() || !declaredOutside(obj, lit) {
				return true
			}
			if path := lintutil.NamedPath(obj.Type()); forbidden(path) {
				pass.Reportf(x.Pos(), "closure passed to flow.%s captures %s (%s), worker-scoped mutable state shared across pool goroutines: thread it through a flow.MapWith factory instead", via, x.Name, path)
			}
		case *ast.SelectorExpr:
			// shared.rt reaches worker state through a captured container.
			root := lintutil.RootIdent(x.X)
			if root == nil {
				return true
			}
			obj, ok := lintutil.ObjectOf(pass.TypesInfo, root).(*types.Var)
			if !ok || obj.IsField() || !declaredOutside(obj, lit) {
				return true
			}
			tv, ok := pass.TypesInfo.Types[ast.Expr(x)]
			if !ok {
				return true
			}
			if path := lintutil.NamedPath(tv.Type); forbidden(path) {
				pass.Reportf(x.Sel.Pos(), "closure passed to flow.%s reaches %s (%s) through captured %s: worker-scoped mutable state must come from a flow.MapWith factory", via, x.Sel.Name, path, root.Name)
			}
		}
		return true
	})
}

// checkFactory reports a MapWith factory that returns a captured
// worker-scoped value verbatim (every worker would share it). Constructing
// or cloning from captured bases is fine.
func checkFactory(pass *analysis.Pass, lit *ast.FuncLit) {
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if inner, ok := n.(*ast.FuncLit); ok && inner != lit {
			return false // nested literal returns are its own business
		}
		ret, ok := n.(*ast.ReturnStmt)
		if !ok {
			return true
		}
		for _, res := range ret.Results {
			id, ok := ast.Unparen(res).(*ast.Ident)
			if !ok {
				continue
			}
			obj, ok := lintutil.ObjectOf(pass.TypesInfo, id).(*types.Var)
			if !ok || !declaredOutside(obj, lit) {
				continue
			}
			if path := lintutil.NamedPath(obj.Type()); workerScoped[path] {
				pass.Reportf(res.Pos(), "flow.MapWith factory returns captured %s (%s): every worker would share one mutable state — construct or Clone a fresh one per call", id.Name, path)
			}
		}
		return true
	})
}

// declaredOutside reports whether obj's declaration lies outside lit.
func declaredOutside(obj *types.Var, lit *ast.FuncLit) bool {
	return obj.Pos() < lit.Pos() || obj.Pos() >= lit.End()
}
