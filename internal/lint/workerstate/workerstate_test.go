package workerstate_test

import (
	"testing"

	"repro/internal/lint/analysistest"
	"repro/internal/lint/workerstate"
)

func TestWorkerstate(t *testing.T) {
	analysistest.Run(t, "testdata", workerstate.Analyzer, "workerstate/a")
}
