// Corpus for the flow-pool capture rules, written against the real
// repro/internal/flow generics and the real worker-scoped types.
package a

import (
	"context"

	"repro/internal/core"
	"repro/internal/flow"
	"repro/internal/sta"
	"repro/internal/variation"
)

func capturedRetimer(ctx context.Context, rt *variation.Retimer, dies []*variation.Die) {
	flow.Map(ctx, 0, len(dies), func(ctx context.Context, i int) (float64, error) {
		tm, err := rt.TimeLight(dies[i]) // want `closure passed to flow\.Map captures rt \(repro/internal/variation\.Retimer\)`
		if err != nil {
			return 0, err
		}
		return tm.DcritPS, nil
	})
}

func capturedTiming(ctx context.Context, buf *sta.Timing, an *sta.Analyzer, n int) {
	flow.MapAll(ctx, 0, n, func(ctx context.Context, i int) (float64, error) {
		tm, err := an.Run(nil, buf) // want `closure passed to flow\.MapAll captures buf \(repro/internal/sta\.Timing\)`
		if err != nil {
			return 0, err
		}
		return tm.DcritPS, nil
	})
}

func capturedInstance(ctx context.Context, al *core.Allocator, inst *core.Instance, n int) {
	flow.Map(ctx, 0, n, func(ctx context.Context, i int) (int, error) {
		_, got, err := al.SolveAt(core.Options{}, nil, inst) // want `closure passed to flow\.Map captures inst \(repro/internal/core\.Instance\)`
		if err != nil {
			return 0, err
		}
		_ = got
		return 0, nil
	})
}

type shared struct {
	rt *variation.Retimer
}

func capturedThroughStruct(ctx context.Context, s *shared, dies []*variation.Die) {
	flow.Map(ctx, 0, len(dies), func(ctx context.Context, i int) (float64, error) {
		tm, err := s.rt.TimeLight(dies[i]) // want `closure passed to flow\.Map reaches rt \(repro/internal/variation\.Retimer\) through captured s`
		if err != nil {
			return 0, err
		}
		return tm.DcritPS, nil
	})
}

func sharedStateViaMapWith(ctx context.Context, tn *variation.Tuner, n int) {
	flow.MapWith(ctx, 0, n,
		func() int { return 0 },
		func(ctx context.Context, s int, i int) (int, error) {
			_ = tn // want `closure passed to flow\.MapWith captures tn \(repro/internal/variation\.Tuner\)`
			return s, nil
		})
}

func factoryShares(ctx context.Context, rt *variation.Retimer, n int) {
	flow.MapWith(ctx, 0, n,
		func() *variation.Retimer {
			return rt // want `flow\.MapWith factory returns captured rt \(repro/internal/variation\.Retimer\)`
		},
		func(ctx context.Context, s *variation.Retimer, i int) (int, error) {
			return 0, nil
		})
}

// The sanctioned shapes.

// viaFactory: per-worker state built in the factory from shared immutable
// bases, threaded through the state parameter.
func viaFactory(ctx context.Context, an *sta.Analyzer, nom *sta.Timing, dies []*variation.Die) {
	flow.MapWith(ctx, 0, len(dies),
		func() *variation.Retimer { return variation.NewRetimer(an) },
		func(ctx context.Context, rt *variation.Retimer, i int) (float64, error) {
			tm, err := rt.TimeLight(dies[i])
			if err != nil {
				return 0, err
			}
			// nom (*sta.Timing) is the read-only nominal corner: the one
			// worker-scoped type MapWith bodies may capture.
			return tm.DcritPS - nom.DcritPS, nil
		})
}

// cloningFactory: capturing a base Sampler to Clone is the idiom; only
// returning it verbatim would share state.
func cloningFactory(ctx context.Context, smp *variation.Sampler, n int) {
	flow.MapWith(ctx, 0, n,
		func() *variation.Sampler { return smp.Clone() },
		func(ctx context.Context, s *variation.Sampler, i int) (int, error) {
			return 0, nil
		})
}

func suppressedCapture(ctx context.Context, rt *variation.Retimer, n int) {
	flow.Map(ctx, 1, n, func(ctx context.Context, i int) (int, error) {
		//lint:allow workerstate single-worker pool: workers=1 serializes every call on one goroutine
		_ = rt
		return 0, nil
	})
}
