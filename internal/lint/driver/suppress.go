package driver

import (
	"go/ast"
	"go/token"
	"strings"
)

// suppression is one parsed "//lint:allow <analyzer> <reason>" comment. The
// syntax is deliberately narrow and greppable: exactly that form, on the
// same line as the finding or alone on the line directly above it, with a
// mandatory human-readable reason.
type suppression struct {
	file     string
	line     int
	analyzer string
	reason   string
	pos      token.Pos
}

const allowPrefix = "//lint:allow"

// collectSuppressions extracts every lint:allow comment in the package.
func collectSuppressions(fset *token.FileSet, files []*ast.File) []suppression {
	var out []suppression
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, allowPrefix) {
					continue
				}
				rest := strings.TrimPrefix(c.Text, allowPrefix)
				if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
					continue // e.g. //lint:allowance — not ours
				}
				// A nested comment marker ends the reason (the analysistest
				// corpora put "// want" expectations after an allow).
				if i := strings.Index(rest, "//"); i >= 0 {
					rest = rest[:i]
				}
				fields := strings.Fields(rest)
				pos := fset.Position(c.Pos())
				s := suppression{file: pos.Filename, line: pos.Line, pos: c.Pos()}
				if len(fields) > 0 {
					s.analyzer = fields[0]
				}
				if len(fields) > 1 {
					s.reason = strings.Join(fields[1:], " ")
				}
				out = append(out, s)
			}
		}
	}
	return out
}

// suppressed reports whether a finding from analyzer at pos is answered by a
// well-formed allow comment on the same line or the line directly above.
func (p *Package) suppressed(analyzer string, pos token.Position) bool {
	for _, s := range p.suppressions {
		if s.analyzer != analyzer || s.reason == "" || s.file != pos.Filename {
			continue
		}
		if s.line == pos.Line || s.line == pos.Line-1 {
			return true
		}
	}
	return false
}

// badSuppressions reports allow comments that can never suppress anything:
// a missing analyzer name or a missing reason. Reporting them as findings
// keeps the suppression surface honest — an allow without a written-down
// why fails the build instead of silently masking a contract violation.
func (p *Package) badSuppressions() []Finding {
	var out []Finding
	for _, s := range p.suppressions {
		switch {
		case s.analyzer == "":
			out = append(out, Finding{
				Analyzer: "lintallow",
				Pos:      token.Position{Filename: s.file, Line: s.line, Column: 1},
				Message:  "lint:allow needs an analyzer name and a reason: //lint:allow <analyzer> <reason>",
			})
		case s.reason == "":
			out = append(out, Finding{
				Analyzer: "lintallow",
				Pos:      token.Position{Filename: s.file, Line: s.line, Column: 1},
				Message:  "lint:allow " + s.analyzer + " needs a reason: //lint:allow " + s.analyzer + " <reason>",
			})
		}
	}
	return out
}
