// Package driver loads type-checked packages and runs analysis passes over
// them. It is the stdlib-only replacement for the x/tools loader +
// multichecker pair: package metadata and compiled export data come from
// `go list -export -deps -json` (so type information for dependencies —
// stdlib and module-internal alike — is read from the build cache instead of
// re-type-checking the world from source), and the analyzed packages
// themselves are parsed with full comments and type-checked with go/types.
package driver

import (
	"encoding/json"
	"errors"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/lint/analysis"
)

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	Path      string
	Dir       string
	Fset      *token.FileSet
	Files     []*ast.File
	Types     *types.Package
	TypesInfo *types.Info

	suppressions []suppression
}

// listPackage is the subset of `go list -json` output the loader consumes.
type listPackage struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
	DepOnly    bool
	Error      *struct{ Err string }
}

// NewInfo returns a types.Info with every map the analyzers rely on
// allocated.
func NewInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Implicits:  map[ast.Node]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
		Instances:  map[*ast.Ident]types.Instance{},
	}
}

// goList runs `go list -export -deps -json` in dir over patterns and returns
// the decoded package stream.
func goList(dir string, patterns []string) ([]listPackage, error) {
	args := append([]string{
		"list", "-e", "-export", "-deps",
		"-json=ImportPath,Dir,Export,GoFiles,DepOnly,Error",
		"--",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr strings.Builder
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("driver: go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}
	var pkgs []listPackage
	dec := json.NewDecoder(strings.NewReader(string(out)))
	for {
		var p listPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("driver: decoding go list output: %v", err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// exportImporter resolves import paths to compiled export data files
// reported by `go list -export`.
type exportImporter map[string]string

func (m exportImporter) lookup(path string) (io.ReadCloser, error) {
	file, ok := m[path]
	if !ok {
		return nil, fmt.Errorf("driver: no export data for %q", path)
	}
	return os.Open(file)
}

// Load lists patterns in module directory dir ("." = current), parses every
// matched package with comments, and type-checks it against the build
// cache's export data. All packages share one FileSet so diagnostics from
// different packages position consistently.
func Load(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	listed, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}

	exports := exportImporter{}
	var roots []listPackage
	for _, p := range listed {
		if p.Error != nil {
			return nil, fmt.Errorf("driver: %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly && len(p.GoFiles) > 0 {
			roots = append(roots, p)
		}
	}
	if len(roots) == 0 {
		return nil, errors.New("driver: no packages matched")
	}

	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", exports.lookup)
	var out []*Package
	for _, p := range roots {
		files := make([]*ast.File, 0, len(p.GoFiles))
		for _, name := range p.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(p.Dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
			if err != nil {
				return nil, err
			}
			files = append(files, f)
		}
		info := NewInfo()
		conf := types.Config{Importer: imp}
		tpkg, err := conf.Check(p.ImportPath, fset, files, info)
		if err != nil {
			return nil, fmt.Errorf("driver: type-checking %s: %v", p.ImportPath, err)
		}
		pkg := &Package{
			Path:      p.ImportPath,
			Dir:       p.Dir,
			Fset:      fset,
			Files:     files,
			Types:     tpkg,
			TypesInfo: info,
		}
		pkg.suppressions = collectSuppressions(fset, files)
		out = append(out, pkg)
	}
	return out, nil
}

// NewPackage wraps an externally loaded package (the analysistest harness
// type-checks testdata corpora itself) so Run can analyze it with the same
// suppression semantics as Load-ed packages.
func NewPackage(path, dir string, fset *token.FileSet, files []*ast.File, tpkg *types.Package, info *types.Info) *Package {
	return &Package{
		Path:         path,
		Dir:          dir,
		Fset:         fset,
		Files:        files,
		Types:        tpkg,
		TypesInfo:    info,
		suppressions: collectSuppressions(fset, files),
	}
}

// ExportData resolves patterns (and their full dependency closure) to
// compiled export data files, for callers that assemble their own importer.
func ExportData(dir string, patterns ...string) (map[string]string, error) {
	listed, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}
	out := map[string]string{}
	for _, p := range listed {
		if p.Error != nil {
			return nil, fmt.Errorf("driver: %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			out[p.ImportPath] = p.Export
		}
	}
	return out, nil
}

// Finding is one unsuppressed diagnostic attributed to its analyzer.
type Finding struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: %s: %s", f.Pos, f.Analyzer, f.Message)
}

// Run applies every analyzer to every package and returns the surviving
// findings sorted by position. Diagnostics answered by a well-formed
// "//lint:allow <analyzer> <reason>" comment on the same or preceding line
// are dropped; malformed allow comments (missing reason, unknown analyzer
// name shape) are themselves reported so a suppression can never silently
// rot.
func Run(pkgs []*Package, analyzers []*analysis.Analyzer) ([]Finding, error) {
	var findings []Finding
	for _, pkg := range pkgs {
		findings = append(findings, pkg.badSuppressions()...)
		for _, a := range analyzers {
			pass := &analysis.Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.TypesInfo,
			}
			seen := map[string]bool{}
			pass.Report = func(d analysis.Diagnostic) {
				pos := pkg.Fset.Position(d.Pos)
				if pkg.suppressed(a.Name, pos) {
					return
				}
				key := fmt.Sprintf("%s|%s|%s", pos, a.Name, d.Message)
				if seen[key] {
					return
				}
				seen[key] = true
				findings = append(findings, Finding{Analyzer: a.Name, Pos: pos, Message: d.Message})
			}
			if _, err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("driver: %s on %s: %v", a.Name, pkg.Path, err)
			}
		}
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return findings, nil
}
