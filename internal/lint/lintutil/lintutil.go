// Package lintutil holds the type- and AST-resolution helpers shared by the
// contract analyzers.
package lintutil

import (
	"go/ast"
	"go/types"
)

// Callee resolves the static callee of a call expression: a package-level
// function or a concrete method reached through a selector. It returns nil
// for dynamic calls (function-typed variables, interface methods whose
// static object is still a *types.Func — those ARE returned — means: nil
// only when no *types.Func can be named) and for type conversions.
func Callee(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := info.Uses[fun.Sel].(*types.Func)
		return fn
	case *ast.IndexExpr: // generic instantiation f[T](...)
		if id, ok := ast.Unparen(fun.X).(*ast.Ident); ok {
			fn, _ := info.Uses[id].(*types.Func)
			return fn
		}
	}
	return nil
}

// IsConversion reports whether call is a type conversion, e.g. T(x).
func IsConversion(info *types.Info, call *ast.CallExpr) bool {
	tv, ok := info.Types[call.Fun]
	return ok && tv.IsType()
}

// NamedPath returns "pkgpath.Name" for a (possibly pointered, possibly
// aliased) named type, or "" for everything else.
func NamedPath(t types.Type) string {
	if t == nil {
		return ""
	}
	t = types.Unalias(t)
	if p, ok := t.(*types.Pointer); ok {
		t = types.Unalias(p.Elem())
	}
	n, ok := t.(*types.Named)
	if !ok || n.Obj().Pkg() == nil {
		return ""
	}
	return n.Obj().Pkg().Path() + "." + n.Obj().Name()
}

// RootIdent strips selectors, indexes, slices, derefs, parens and type
// assertions off an expression and returns the base identifier, or nil.
func RootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.TypeAssertExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// ObjectOf resolves an identifier to its object through Uses then Defs.
func ObjectOf(info *types.Info, id *ast.Ident) types.Object {
	if obj := info.Uses[id]; obj != nil {
		return obj
	}
	return info.Defs[id]
}
