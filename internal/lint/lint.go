// Package lint registers the repo's contract analyzers: the passes that
// turn runtime invariants — light timings never reaching path consumers,
// deterministic kernels never touching clocks or global entropy, scratch
// buffers never escaping, worker state never leaking across pool
// goroutines — into compile-time errors. cmd/fbbvet runs them (plus stock
// `go vet`) over the module; see README "Static contracts".
package lint

import (
	"repro/internal/lint/analysis"
	"repro/internal/lint/detrand"
	"repro/internal/lint/lightflow"
	"repro/internal/lint/scratchbuf"
	"repro/internal/lint/workerstate"
)

// All returns every contract analyzer in deterministic order.
func All() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		detrand.Analyzer,
		lightflow.Analyzer,
		scratchbuf.Analyzer,
		workerstate.Analyzer,
	}
}
