// Basic light-timing flows: direct, through locals, and the legitimate
// full-Run counterparts that must stay silent.
package a

import (
	"repro/internal/core"
	"repro/internal/place"
	"repro/internal/sta"
	"repro/internal/tech"
	"repro/internal/variation"
)

func direct(an *sta.Analyzer, pl *place.Placement) {
	tm, _ := an.RunLight(nil, nil)
	core.NewAllocator(pl, tm) // want `light \(Dcrit-only\) re-time flows into repro/internal/core\.NewAllocator`
}

func throughLocal(rt *variation.Retimer, die *variation.Die, tn *variation.Tuner, proc *tech.Process) {
	tm, err := rt.TimeLight(die)
	if err != nil {
		return
	}
	alias := tm
	variation.TuneOn(tn, alias, die, proc, variation.TuneOptions{}) // want `light \(Dcrit-only\) re-time flows into repro/internal/variation\.TuneOn`
}

func biasVariants(rt *variation.Retimer, die *variation.Die, proc *tech.Process, pl *place.Placement) {
	a, _ := rt.TimeWithBiasLight(die, proc, nil)
	b, _ := rt.TimeUniformBiasLight(die, proc, 0)
	core.NewAllocator(pl, a) // want `light \(Dcrit-only\) re-time flows into`
	core.NewAllocator(pl, b) // want `light \(Dcrit-only\) re-time flows into`
}

func pathsRead(an *sta.Analyzer) int {
	tm, _ := an.RunLight(nil, nil)
	return len(tm.Paths) // want `reading Paths of a light \(Dcrit-only\) re-time`
}

func recoverFamily(rt *variation.Retimer, die *variation.Die, proc *tech.Process, lm *variation.LeakModel) {
	nom, _ := rt.TimeLight(die)
	variation.RecoverLeakageOn(rt, nom, die, proc, variation.RBBOptions{}) // want `light \(Dcrit-only\) re-time flows into repro/internal/variation\.RecoverLeakageOn`
	variation.RecoverLeakageWith(rt, lm, nom, die, variation.RBBOptions{}) // want `light \(Dcrit-only\) re-time flows into repro/internal/variation\.RecoverLeakageWith`
}

// fullRun is the legitimate path: a full re-time may feed every consumer.
func fullRun(an *sta.Analyzer, pl *place.Placement, tn *variation.Tuner, die *variation.Die, proc *tech.Process) int {
	tm, _ := an.Run(nil, nil)
	core.NewAllocator(pl, tm)
	variation.TuneOn(tn, tm, die, proc, variation.TuneOptions{})
	return len(tm.Paths)
}

// dcritOnly reads only scalars off the light result: the sanctioned use.
func dcritOnly(rt *variation.Retimer, die *variation.Die) float64 {
	tm, _ := rt.TimeLight(die)
	return tm.DcritPS
}

// errNotPoisoned: the error result of a light source must not taint.
func errNotPoisoned(an *sta.Analyzer, pl *place.Placement, full *sta.Timing) error {
	_, err := an.RunLight(nil, nil)
	if err != nil {
		return err
	}
	_, e := core.NewAllocator(pl, full)
	return e
}
