// The negative corpus: a well-formed lint:allow silences a finding, a
// reasonless one is itself reported and suppresses nothing.
package suppress

import (
	"repro/internal/core"
	"repro/internal/place"
	"repro/internal/sta"
)

func allowed(an *sta.Analyzer, pl *place.Placement) {
	tm, _ := an.RunLight(nil, nil)
	//lint:allow lightflow exercising the guard path: NewAllocator must reject the light timing at runtime
	core.NewAllocator(pl, tm)
}

func allowedSameLine(an *sta.Analyzer, pl *place.Placement) {
	tm, _ := an.RunLight(nil, nil)
	core.NewAllocator(pl, tm) //lint:allow lightflow exercising the runtime guard on purpose
}

func reasonless(an *sta.Analyzer, pl *place.Placement) {
	tm, _ := an.RunLight(nil, nil)
	//lint:allow lightflow // want `lint:allow lightflow needs a reason`
	core.NewAllocator(pl, tm) // want `light \(Dcrit-only\) re-time flows into`
}

func wrongAnalyzer(an *sta.Analyzer, pl *place.Placement) {
	tm, _ := an.RunLight(nil, nil)
	//lint:allow detrand an allow for a different analyzer must not leak across passes
	core.NewAllocator(pl, tm) // want `light \(Dcrit-only\) re-time flows into`
}
