// Light timings smuggled through struct fields, containers and interfaces:
// the flows a plain "trace the variable" reviewer loses track of.
package structfield

import (
	"repro/internal/core"
	"repro/internal/place"
	"repro/internal/sta"
)

type holder struct {
	tm  *sta.Timing
	sub struct{ t *sta.Timing }
}

func viaField(an *sta.Analyzer, pl *place.Placement) {
	var h holder
	h.tm, _ = an.RunLight(nil, nil)
	core.NewAllocator(pl, h.tm) // want `light \(Dcrit-only\) re-time flows into`
}

func viaCompositeLit(an *sta.Analyzer, pl *place.Placement) {
	tm, _ := an.RunLight(nil, nil)
	h := holder{tm: tm}
	core.NewAllocator(pl, h.tm) // want `light \(Dcrit-only\) re-time flows into`
}

func viaNestedField(an *sta.Analyzer, pl *place.Placement) {
	var h holder
	h.sub.t, _ = an.RunLight(nil, nil)
	core.NewAllocator(pl, h.sub.t) // want `light \(Dcrit-only\) re-time flows into`
}

func viaInterface(an *sta.Analyzer, pl *place.Placement) {
	tm, _ := an.RunLight(nil, nil)
	var box any = tm
	core.NewAllocator(pl, box.(*sta.Timing)) // want `light \(Dcrit-only\) re-time flows into`
}

func viaSlice(an *sta.Analyzer, pl *place.Placement) {
	tm, _ := an.RunLight(nil, nil)
	dies := []*sta.Timing{tm}
	core.NewAllocator(pl, dies[0]) // want `light \(Dcrit-only\) re-time flows into`
}

func pathsViaField(an *sta.Analyzer) int {
	var h holder
	h.tm, _ = an.RunLight(nil, nil)
	return len(h.tm.Paths) // want `reading Paths of a light \(Dcrit-only\) re-time`
}

// fullViaField: the same shapes with a full Run stay silent.
func fullViaField(an *sta.Analyzer, pl *place.Placement) int {
	var h holder
	h.tm, _ = an.Run(nil, nil)
	core.NewAllocator(pl, h.tm)
	return len(h.tm.Paths)
}
