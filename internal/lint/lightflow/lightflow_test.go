package lightflow_test

import (
	"testing"

	"repro/internal/lint/analysistest"
	"repro/internal/lint/lightflow"
)

func TestLightflow(t *testing.T) {
	analysistest.Run(t, "testdata", lightflow.Analyzer,
		"lightflow/a",
		"lightflow/structfield",
		"lightflow/suppress",
	)
}
