// Package lightflow proves, at the source level, that no timing produced by
// a Dcrit-only "light" re-time ever reaches a path-consuming boundary.
//
// sta.Analyzer.RunLight and the Retimer Time*Light methods skip path
// extraction: the Timing they return carries bit-identical delays and
// DcritPS but an empty Paths set. Three call sites historically guarded
// this at runtime (core.NewAllocator, variation.TuneOn, the RBB recovery
// entry points all reject tm.Light); a caller that slipped a light timing
// past review would have built a constraint-free clustering problem and
// silently produced garbage biases. This pass promotes those guards to
// compile-time errors.
//
// The analysis is an intra-procedural taint pass over the typed AST: every
// call of a light source taints its result, taint propagates through
// assignments, composite literals, struct fields, slices, interface
// conversions and type assertions, and a diagnostic is reported when a
// tainted value reaches
//
//   - core.NewAllocator (any argument),
//   - the nominal-timing parameter of variation.Tune/TuneOn or the
//     RecoverLeakage* family, or
//   - a read of the Paths field of an sta.Timing.
//
// Being intra-procedural, the pass checks each function body on its own: a
// helper that returns a light timing to its caller is the caller's source
// only if the helper itself is one of the named light entry points. That is
// exactly the repo's shape — light timings are produced at the Analyzer /
// Retimer boundary and consumed in the same function — and keeps the pass
// free of whole-program analysis.
package lightflow

import (
	"go/ast"
	"go/types"

	"repro/internal/lint/analysis"
	"repro/internal/lint/lintutil"
)

// Analyzer is the lightflow pass.
var Analyzer = &analysis.Analyzer{
	Name: "lightflow",
	Doc:  "prove Dcrit-only (light) re-times never reach a path-consuming boundary",
	Run:  run,
}

// sources are the light re-time producers, by (*types.Func).FullName.
var sources = map[string]bool{
	"(*repro/internal/sta.Analyzer).RunLight":                  true,
	"(*repro/internal/sta.TimingBatch).DieInto":                true,
	"(*repro/internal/variation.Retimer).TimeLight":            true,
	"(*repro/internal/variation.Retimer).TimeWithBiasLight":    true,
	"(*repro/internal/variation.Retimer).TimeUniformBiasLight": true,
}

// sinks maps path-consuming functions to the argument indices that must
// hold a full (path-extracting) timing; nil means every argument.
var sinks = map[string][]int{
	"repro/internal/core.NewAllocator":            nil,
	"repro/internal/variation.Tune":               {1},
	"repro/internal/variation.TuneOn":             {1},
	"repro/internal/variation.RecoverLeakage":     {1},
	"repro/internal/variation.RecoverLeakageOn":   {1},
	"repro/internal/variation.RecoverLeakageWith": {2},
}

const timingPath = "repro/internal/sta.Timing"

func run(pass *analysis.Pass) (any, error) {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				analyzeFunc(pass, fd.Body)
			}
		}
	}
	return nil, nil
}

// analyzeFunc runs the taint pass over one function body (closures
// included: they share the enclosing object space).
func analyzeFunc(pass *analysis.Pass, body *ast.BlockStmt) {
	t := &tainter{pass: pass, tainted: map[types.Object]bool{}}
	for {
		before := len(t.tainted)
		ast.Inspect(body, t.propagate)
		if len(t.tainted) == before {
			break
		}
	}
	ast.Inspect(body, t.reportSinks)
}

type tainter struct {
	pass    *analysis.Pass
	tainted map[types.Object]bool
}

// propagate grows the taint set across one traversal.
func (t *tainter) propagate(n ast.Node) bool {
	switch st := n.(type) {
	case *ast.AssignStmt:
		t.assign(st.Lhs, st.Rhs)
	case *ast.ValueSpec:
		if len(st.Values) > 0 {
			lhs := make([]ast.Expr, len(st.Names))
			for i, id := range st.Names {
				lhs[i] = id
			}
			t.assign(lhs, st.Values)
		}
	case *ast.RangeStmt:
		if t.exprTainted(st.X) {
			if st.Key != nil {
				t.taintLHS(st.Key)
			}
			if st.Value != nil {
				t.taintLHS(st.Value)
			}
		}
	}
	return true
}

// assign applies taint across one assignment, pairwise or through a single
// multi-value call.
func (t *tainter) assign(lhs, rhs []ast.Expr) {
	if len(lhs) == len(rhs) {
		for i := range lhs {
			if t.exprTainted(rhs[i]) {
				t.taintLHS(lhs[i])
			}
		}
		return
	}
	if len(rhs) == 1 && t.exprTainted(rhs[0]) {
		// tm, err := rt.TimeLight(die): taint only the results whose type
		// can carry a timing, so the error does not poison unrelated flow.
		tuple, _ := t.pass.TypesInfo.Types[rhs[0]].Type.(*types.Tuple)
		for i, l := range lhs {
			if tuple != nil && i < tuple.Len() && !canCarryTiming(tuple.At(i).Type(), 0) {
				continue
			}
			t.taintLHS(l)
		}
	}
}

// canCarryTiming reports whether a value of type t could hold (or point
// to, or contain) an sta.Timing — the filter that keeps errors and counts
// from a multi-value source call out of the taint set.
func canCarryTiming(t types.Type, depth int) bool {
	if depth > 4 {
		return true // deep generic nesting: stay conservative
	}
	if lintutil.NamedPath(t) == timingPath {
		return true
	}
	if t == types.Universe.Lookup("error").Type() {
		return false // a Timing has no Error method; err results stay clean
	}
	switch u := types.Unalias(t).Underlying().(type) {
	case *types.Basic:
		return false
	case *types.Pointer:
		return canCarryTiming(u.Elem(), depth+1)
	case *types.Slice:
		return canCarryTiming(u.Elem(), depth+1)
	case *types.Array:
		return canCarryTiming(u.Elem(), depth+1)
	case *types.Map:
		return canCarryTiming(u.Elem(), depth+1) || canCarryTiming(u.Key(), depth+1)
	case *types.Chan:
		return canCarryTiming(u.Elem(), depth+1)
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if canCarryTiming(u.Field(i).Type(), depth+1) {
				return true
			}
		}
		return false
	case *types.Interface:
		return true // anything can hide behind an interface
	default:
		return true
	}
}

// taintLHS marks the object behind an assignment target. A store through a
// selector or index (h.tm = light, dies[i] = light) taints the root object:
// that is how taint crosses struct fields and containers.
func (t *tainter) taintLHS(e ast.Expr) {
	root := lintutil.RootIdent(e)
	if root == nil || root.Name == "_" {
		return
	}
	if obj, ok := lintutil.ObjectOf(t.pass.TypesInfo, root).(*types.Var); ok {
		t.tainted[obj] = true
	}
}

// exprTainted reports whether evaluating e can yield a light-derived value.
func (t *tainter) exprTainted(e ast.Expr) bool {
	switch x := e.(type) {
	case *ast.Ident:
		obj := lintutil.ObjectOf(t.pass.TypesInfo, x)
		return obj != nil && t.tainted[obj]
	case *ast.CallExpr:
		if fn := lintutil.Callee(t.pass.TypesInfo, x); fn != nil && sources[fn.FullName()] {
			return true
		}
		if lintutil.IsConversion(t.pass.TypesInfo, x) && len(x.Args) == 1 {
			return t.exprTainted(x.Args[0])
		}
		return false
	case *ast.SelectorExpr:
		if root := lintutil.RootIdent(x.X); root != nil {
			if _, isPkg := lintutil.ObjectOf(t.pass.TypesInfo, root).(*types.PkgName); isPkg {
				return false
			}
		}
		return t.exprTainted(x.X)
	case *ast.ParenExpr:
		return t.exprTainted(x.X)
	case *ast.StarExpr:
		return t.exprTainted(x.X)
	case *ast.UnaryExpr:
		return t.exprTainted(x.X)
	case *ast.TypeAssertExpr:
		return t.exprTainted(x.X)
	case *ast.IndexExpr:
		return t.exprTainted(x.X)
	case *ast.SliceExpr:
		return t.exprTainted(x.X)
	case *ast.CompositeLit:
		for _, el := range x.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				el = kv.Value
			}
			if t.exprTainted(el) {
				return true
			}
		}
		return false
	default:
		return false
	}
}

// reportSinks walks the body once more with the converged taint set and
// reports every tainted value that reaches a boundary.
func (t *tainter) reportSinks(n ast.Node) bool {
	switch x := n.(type) {
	case *ast.CallExpr:
		fn := lintutil.Callee(t.pass.TypesInfo, x)
		if fn == nil {
			return true
		}
		idxs, ok := sinks[fn.FullName()]
		if !ok {
			return true
		}
		if idxs == nil {
			for _, arg := range x.Args {
				t.reportArg(fn, arg)
			}
		} else {
			for _, i := range idxs {
				if i < len(x.Args) {
					t.reportArg(fn, x.Args[i])
				}
			}
		}
	case *ast.SelectorExpr:
		if x.Sel.Name != "Paths" {
			return true
		}
		tv, ok := t.pass.TypesInfo.Types[x.X]
		if !ok || lintutil.NamedPath(tv.Type) != timingPath {
			return true
		}
		if t.exprTainted(x.X) {
			t.pass.Reportf(x.Sel.Pos(), "reading Paths of a light (Dcrit-only) re-time: RunLight/Time*Light never extract paths, so this set is always empty — use the full Run/Time result")
		}
	}
	return true
}

func (t *tainter) reportArg(fn *types.Func, arg ast.Expr) {
	if t.exprTainted(arg) {
		t.pass.Reportf(arg.Pos(), "light (Dcrit-only) re-time flows into %s, which consumes the extracted path set; re-time this corner with the full Run/Time instead", fn.FullName())
	}
}
