// A package outside the kernel list: the service layer may read clocks and
// use entropy freely, so nothing here is reported.
package outside

import (
	"math/rand"
	"time"
)

func now() time.Time { return time.Now() }

func jitter() time.Duration {
	return time.Duration(rand.Intn(100)) * time.Millisecond
}
