// Test files are exempt: polling deadlines and throwaway entropy are fine
// in tests, which is why the exemption must stay narrow (see the serve
// waitFor helper). No diagnostics expected anywhere in this file.
package sta

import (
	"math/rand"
	"time"
)

func pollUntil(cond func() bool) bool {
	deadline := time.Now().Add(time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			return false
		}
	}
	return true
}

func fuzzInput() int {
	return rand.Intn(1 << 20)
}
