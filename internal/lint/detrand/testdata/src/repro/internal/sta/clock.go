// Corpus for the deterministic-kernel entropy rules. The import path of
// this testdata package is repro/internal/sta, so the pass treats it as
// kernel code.
package sta

import (
	"math/rand"
	"time"
)

func wallClock() time.Time {
	return time.Now() // want `time\.Now in deterministic kernel package`
}

func elapsed(start time.Time) time.Duration {
	return time.Since(start) // want `time\.Since in deterministic kernel package`
}

func globalStream() int {
	return rand.Intn(10) // want `global math/rand stream \(rand\.Intn\)`
}

func shuffled(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want `global math/rand stream \(rand\.Shuffle\)`
}

func entropySeed() *rand.Rand {
	return rand.New(rand.NewSource(time.Now().UnixNano())) // want `time\.Now in deterministic kernel package` `rand\.NewSource seed must be a constant, a threaded-in variable, or a visible derivation`
}

func opaqueSource(src rand.Source) *rand.Rand {
	return rand.New(src) // want `rand\.New must wrap an inline rand\.NewSource\(seed\)`
}

func laundered(x int64) *rand.Rand {
	return rand.New(rand.NewSource(mix(x))) // want `rand\.NewSource seed must be a constant, a threaded-in variable, or a visible derivation`
}

func mix(x int64) int64 { return x*6364136223846793005 + 1442695040888963407 }

// The sanctioned forms.

func constantSeed() *rand.Rand {
	return rand.New(rand.NewSource(0))
}

func threadedSeed(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

func derivedSeed(seed int64, die int) *rand.Rand {
	return rand.New(rand.NewSource(dieSeed(seed, die)))
}

func splitmixed(z uint64) *rand.Rand {
	return rand.New(rand.NewSource(splitmix64(z)))
}

func drawn(rng *rand.Rand) float64 {
	return rng.NormFloat64() // methods on a private generator are fine
}

func dieSeed(seed int64, die int) int64 {
	return splitmix64(uint64(seed) + uint64(die)*0x9e3779b97f4a7c15)
}

func splitmix64(z uint64) int64 {
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return int64(z)
}

func suppressed() time.Time {
	//lint:allow detrand this corpus pins that a reasoned allow silences the clock rule
	return time.Now()
}

func reasonless() time.Time {
	//lint:allow detrand // want `lint:allow detrand needs a reason`
	return time.Now() // want `time\.Now in deterministic kernel package`
}
