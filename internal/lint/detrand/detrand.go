// Package detrand forbids nondeterminism sources in the repro kernel
// packages. The reproduction's core guarantee — a study's population is
// byte-identical at any worker count, scheduling order, or machine — holds
// only if the deterministic kernels never read the wall clock and never
// draw from an entropy-seeded or globally shared random stream. Seeds must
// be derived per die via variation.DieSeed / splitmix64 (or threaded in
// from a caller who did), and every generator must be a private
// rand.New(rand.NewSource(seed)).
//
// In the packages listed in Packages, non-test code may not:
//
//   - call time.Now, time.Since or time.Until (wall-clock reads);
//   - call math/rand package-level functions (the global, locked,
//     entropy-seeded stream: rand.Intn, rand.Float64, rand.Shuffle, ...);
//   - call rand.New with anything but an inline rand.NewSource(seed);
//   - seed rand.NewSource through any call chain that is not visibly a
//     seed derivation (a function whose name mentions Seed or splitmix).
//
// Constant seeds and seeds threaded in as plain variables are allowed: the
// contract bans entropy, not fixed or caller-derived values.
package detrand

import (
	"go/ast"
	"go/constant"
	"go/types"
	"path/filepath"
	"strings"

	"repro/internal/lint/analysis"
	"repro/internal/lint/lintutil"
)

// Packages is the set of deterministic kernel package paths the pass
// applies to; everything else (the service layer, CLIs, tests) may use
// clocks and entropy freely.
var Packages = map[string]bool{
	"repro/internal/sta":       true,
	"repro/internal/core":      true,
	"repro/internal/variation": true,
	"repro/internal/ilp":       true,
	"repro/internal/flow":      true,
}

// Analyzer is the detrand pass.
var Analyzer = &analysis.Analyzer{
	Name: "detrand",
	Doc:  "forbid wall-clock reads and non-derived random streams in the deterministic kernel packages",
	Run:  run,
}

// wallClock names the forbidden time package functions.
var wallClock = map[string]bool{
	"time.Now":   true,
	"time.Since": true,
	"time.Until": true,
}

func run(pass *analysis.Pass) (any, error) {
	if !Packages[pass.Pkg.Path()] {
		return nil, nil
	}
	for _, file := range pass.Files {
		name := pass.Fset.Position(file.Pos()).Filename
		if strings.HasSuffix(filepath.Base(name), "_test.go") {
			continue // tests may poll clocks and use throwaway entropy
		}
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := lintutil.Callee(pass.TypesInfo, call)
			if fn == nil || fn.Pkg() == nil {
				return true
			}
			full := fn.Pkg().Path() + "." + fn.Name()
			switch {
			case wallClock[full]:
				pass.Reportf(call.Pos(), "%s in deterministic kernel package %s: results must not depend on the wall clock", full, pass.Pkg.Path())
			case fn.Pkg().Path() == "math/rand" || fn.Pkg().Path() == "math/rand/v2":
				checkRand(pass, call, fn)
			}
			return true
		})
	}
	return nil, nil
}

// checkRand vets one call into math/rand.
func checkRand(pass *analysis.Pass, call *ast.CallExpr, fn *types.Func) {
	if fn.Signature().Recv() != nil {
		return // methods on a private *rand.Rand are the sanctioned form
	}
	switch fn.Name() {
	case "New":
		src := ast.Unparen(firstArg(call))
		inner, ok := src.(*ast.CallExpr)
		if !ok || calleeName(pass, inner) != "NewSource" {
			pass.Reportf(call.Pos(), "rand.New must wrap an inline rand.NewSource(seed) so the seed derivation is auditable at the construction site")
		}
	case "NewSource":
		checkSeed(pass, firstArg(call))
	case "NewZipf":
		// takes an already-vetted *rand.Rand
	default:
		pass.Reportf(call.Pos(), "global math/rand stream (rand.%s) in deterministic kernel package %s: derive a seed via variation.DieSeed/splitmix64 and draw from a private rand.New(rand.NewSource(seed))", fn.Name(), pass.Pkg.Path())
	}
}

// checkSeed accepts constant seeds, seeds threaded in as plain variable
// expressions, and expressions whose call chain visibly derives a seed
// (…Seed…/…splitmix… in a callee name). Anything else — above all a clock
// read like time.Now().UnixNano() — is flagged.
func checkSeed(pass *analysis.Pass, seed ast.Expr) {
	if seed == nil {
		return
	}
	if tv, ok := pass.TypesInfo.Types[seed]; ok && tv.Value != nil && tv.Value.Kind() != constant.Unknown {
		return
	}
	hasCall, hasDerivation := false, false
	ast.Inspect(seed, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if lintutil.IsConversion(pass.TypesInfo, call) {
			return true
		}
		hasCall = true
		if fn := lintutil.Callee(pass.TypesInfo, call); fn != nil {
			lower := strings.ToLower(fn.Name())
			if strings.Contains(lower, "seed") || strings.Contains(lower, "splitmix") {
				hasDerivation = true
			}
		}
		return true
	})
	if hasCall && !hasDerivation {
		pass.Reportf(seed.Pos(), "rand.NewSource seed must be a constant, a threaded-in variable, or a visible derivation (variation.DieSeed/splitmix64), not an arbitrary call chain")
	}
}

func firstArg(call *ast.CallExpr) ast.Expr {
	if len(call.Args) == 0 {
		return nil
	}
	return call.Args[0]
}

func calleeName(pass *analysis.Pass, call *ast.CallExpr) string {
	if fn := lintutil.Callee(pass.TypesInfo, call); fn != nil {
		return fn.Name()
	}
	return ""
}
