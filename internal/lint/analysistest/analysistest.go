// Package analysistest runs an analyzer over "// want"-annotated testdata
// packages, mirroring golang.org/x/tools/go/analysis/analysistest on the
// standard library alone.
//
// Corpus layout follows the x/tools convention: testdata/src/<path>/*.go is
// the package with import path <path>. Imports are resolved testdata-first —
// a sibling testdata package shadows the world — and then against the real
// build (stdlib and repro/... alike) through `go list -export` data, so
// corpora can exercise analyzers against the repo's actual types
// (sta.Analyzer, flow.Map, ...) without copying their signatures.
//
// Expectations are comments of the form
//
//	// want "regexp" `another regexp`
//
// on the line a diagnostic is expected. Every reported diagnostic must match
// an expectation on its line and every expectation must be matched.
// Suppression comments (//lint:allow) are honored exactly as in production:
// a suppressed diagnostic needs no want and fails the test if one is given.
package analysistest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"
	"testing"

	"repro/internal/lint/analysis"
	"repro/internal/lint/driver"
)

// loader resolves imports testdata-first, then via build-cache export data.
type loader struct {
	srcRoot   string // <testdata>/src
	moduleDir string
	fset      *token.FileSet
	local     map[string]*localPkg
	exports   map[string]string
	gc        types.Importer
}

type localPkg struct {
	pkg  *driver.Package
	err  error
	done bool
}

func newLoader(testdata string) (*loader, error) {
	src := filepath.Join(testdata, "src")
	if _, err := os.Stat(src); err != nil {
		return nil, fmt.Errorf("analysistest: %v", err)
	}
	mod, err := findModuleRoot(testdata)
	if err != nil {
		return nil, err
	}
	l := &loader{
		srcRoot:   src,
		moduleDir: mod,
		fset:      token.NewFileSet(),
		local:     map[string]*localPkg{},
		exports:   map[string]string{},
	}
	l.gc = importer.ForCompiler(l.fset, "gc", l.lookup)
	return l, nil
}

func findModuleRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("analysistest: no go.mod above testdata")
		}
		dir = parent
	}
}

func (l *loader) lookup(path string) (io.ReadCloser, error) {
	file, ok := l.exports[path]
	if !ok {
		return nil, fmt.Errorf("analysistest: no export data for %q", path)
	}
	return os.Open(file)
}

// exportMu serializes `go list -export` invocations across parallel tests;
// the build cache makes repeats cheap.
var exportMu sync.Mutex

// Import implements types.Importer over the testdata-first chain.
func (l *loader) Import(path string) (*types.Package, error) {
	if dir := filepath.Join(l.srcRoot, filepath.FromSlash(path)); hasGoFiles(dir) {
		lp, err := l.loadLocal(path)
		if err != nil {
			return nil, err
		}
		return lp.Types, nil
	}
	if _, ok := l.exports[path]; !ok {
		exportMu.Lock()
		more, err := driver.ExportData(l.moduleDir, path)
		exportMu.Unlock()
		if err != nil {
			return nil, err
		}
		for k, v := range more {
			l.exports[k] = v
		}
	}
	return l.gc.Import(path)
}

func hasGoFiles(dir string) bool {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range ents {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			return true
		}
	}
	return false
}

// loadLocal parses and type-checks one testdata package (including its
// *_test.go files, which several corpora use to pin test-file exemptions).
func (l *loader) loadLocal(path string) (*driver.Package, error) {
	if lp, ok := l.local[path]; ok {
		if !lp.done {
			return nil, fmt.Errorf("analysistest: import cycle through %q", path)
		}
		return lp.pkg, lp.err
	}
	lp := &localPkg{}
	l.local[path] = lp

	dir := filepath.Join(l.srcRoot, filepath.FromSlash(path))
	ents, err := os.ReadDir(dir)
	if err != nil {
		lp.done, lp.err = true, err
		return nil, err
	}
	var names []string
	for _, e := range ents {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			lp.done, lp.err = true, err
			return nil, err
		}
		files = append(files, f)
	}
	info := driver.NewInfo()
	conf := types.Config{Importer: l}
	tpkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		err = fmt.Errorf("analysistest: type-checking %s: %v", path, err)
		lp.done, lp.err = true, err
		return nil, err
	}
	lp.pkg = driver.NewPackage(path, dir, l.fset, files, tpkg, info)
	lp.done = true
	return lp.pkg, nil
}

// expectation is one want regexp awaiting a matching diagnostic.
type expectation struct {
	file    string
	line    int
	re      *regexp.Regexp
	raw     string
	matched bool
}

var wantRE = regexp.MustCompile(`(?m)//\s*want\s+(.*)$`)

// parseWants extracts want expectations from every comment in the package.
func parseWants(fset *token.FileSet, files []*ast.File) ([]*expectation, error) {
	var out []*expectation
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				rest := strings.TrimSpace(m[1])
				for rest != "" {
					var lit string
					switch rest[0] {
					case '"':
						end := matchEnd(rest, '"')
						if end < 0 {
							return nil, fmt.Errorf("%s:%d: unterminated want string", pos.Filename, pos.Line)
						}
						lit = rest[:end+1]
						rest = strings.TrimSpace(rest[end+1:])
					case '`':
						end := strings.IndexByte(rest[1:], '`')
						if end < 0 {
							return nil, fmt.Errorf("%s:%d: unterminated want string", pos.Filename, pos.Line)
						}
						lit = rest[:end+2]
						rest = strings.TrimSpace(rest[end+2:])
					default:
						return nil, fmt.Errorf("%s:%d: want expects quoted regexps, got %q", pos.Filename, pos.Line, rest)
					}
					unq, err := strconv.Unquote(lit)
					if err != nil {
						return nil, fmt.Errorf("%s:%d: bad want literal %s: %v", pos.Filename, pos.Line, lit, err)
					}
					re, err := regexp.Compile(unq)
					if err != nil {
						return nil, fmt.Errorf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, unq, err)
					}
					out = append(out, &expectation{file: pos.Filename, line: pos.Line, re: re, raw: unq})
				}
			}
		}
	}
	return out, nil
}

// matchEnd returns the index of the closing double quote, honoring escapes.
func matchEnd(s string, q byte) int {
	for i := 1; i < len(s); i++ {
		switch s[i] {
		case '\\':
			i++
		case q:
			return i
		}
	}
	return -1
}

// Run loads each testdata package, applies the analyzer, and asserts the
// diagnostics exactly match the // want annotations.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, paths ...string) {
	t.Helper()
	l, err := newLoader(testdata)
	if err != nil {
		t.Fatal(err)
	}
	for _, path := range paths {
		pkg, err := l.loadLocal(path)
		if err != nil {
			t.Errorf("%s: %v", path, err)
			continue
		}
		findings, err := driver.Run([]*driver.Package{pkg}, []*analysis.Analyzer{a})
		if err != nil {
			t.Errorf("%s: %v", path, err)
			continue
		}
		wants, err := parseWants(l.fset, pkg.Files)
		if err != nil {
			t.Error(err)
			continue
		}
		for _, f := range findings {
			ok := false
			for _, w := range wants {
				if !w.matched && w.file == f.Pos.Filename && w.line == f.Pos.Line && w.re.MatchString(f.Message) {
					w.matched = true
					ok = true
					break
				}
			}
			if !ok {
				t.Errorf("%s: unexpected diagnostic: %s", path, f)
			}
		}
		for _, w := range wants {
			if !w.matched {
				t.Errorf("%s: %s:%d: no diagnostic matching %q", path, w.file, w.line, w.raw)
			}
		}
	}
}
