// Corpus for the reused-buffer retention rules. Timing stands in for the
// repo's scratch-carrying result types (sta.Timing, core.Instance).
package a

type Timing struct {
	Arr   []float64
	Paths []int
}

type cache struct {
	kept  *Timing
	slice []float64
}

var (
	globalTiming *Timing
	globalSlice  []float64
)

func fieldRetain(c *cache, buf *Timing) {
	c.kept = buf // want `scratch buffer retained in field c\.kept`
}

func fieldRetainAlias(c *cache, buf *Timing) {
	tm := buf
	c.kept = tm // want `scratch buffer retained in field c\.kept`
}

func interiorFieldRetain(c *cache, buf *Timing) {
	c.slice = buf.Arr // want `scratch buffer retained in field c\.slice`
}

func globalRetain(buf *Timing) {
	globalTiming = buf // want `scratch buffer stored in package-level variable globalTiming`
}

func globalSliceRetain(buf []float64) {
	globalSlice = buf[2:] // want `scratch buffer stored in package-level variable globalSlice`
}

func chainedAlias(buf []float64) {
	sub := buf[1:]
	deeper := sub[1:]
	globalSlice = deeper // want `scratch buffer stored in package-level variable globalSlice`
}

func send(ch chan []float64, buf []float64) {
	ch <- buf // want `scratch buffer sent on a channel`
}

func spawnCapture(buf *Timing) {
	go func() {
		buf.Arr[0] = 1 // want `scratch buffer buf captured by a spawned goroutine`
	}()
}

func spawnArg(work func([]float64), buf []float64) {
	go work(buf) // want `scratch buffer passed to a spawned goroutine`
}

func interiorReturn(buf *Timing) []int {
	return buf.Paths // want `interior alias of a scratch buffer returned`
}

func ifaceReturn(buf []float64) any {
	return buf // want `scratch buffer returned through an interface-typed result`
}

func containerStore(dst map[int][]float64, buf []float64) {
	dst[0] = buf // want `scratch buffer stored into a container that outlives the call`
}

// The sanctioned shapes: handoff, grow, regrow, write-into.

func handoff(scale []float64, buf *Timing) *Timing {
	tm := buf
	if tm == nil {
		tm = &Timing{}
	}
	tm.Arr = grow(tm.Arr, len(scale)) // writing into the buffer is the point
	return tm
}

func grow(buf []float64, n int) []float64 {
	if cap(buf) < n {
		return make([]float64, n)
	}
	return buf[:n]
}

func regrow(buf []float64, v float64) []float64 {
	return append(buf, v)
}

func deferredUse(buf *Timing) {
	defer func() { buf.Arr = buf.Arr[:0] }() // defers run in-frame: fine
}

func suppressed(c *cache, buf *Timing) {
	//lint:allow scratchbuf c is the per-worker pool slot that owns this buffer between calls
	c.kept = buf
}

func reasonlessSuppressed(c *cache, buf *Timing) {
	//lint:allow scratchbuf // want `lint:allow scratchbuf needs a reason`
	c.kept = buf // want `scratch buffer retained in field c\.kept`
}
