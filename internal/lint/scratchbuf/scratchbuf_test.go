package scratchbuf_test

import (
	"testing"

	"repro/internal/lint/analysistest"
	"repro/internal/lint/scratchbuf"
)

func TestScratchbuf(t *testing.T) {
	analysistest.Run(t, "testdata", scratchbuf.Analyzer, "scratchbuf/a")
}
