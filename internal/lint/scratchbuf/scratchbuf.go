// Package scratchbuf enforces the repo's reused-buffer contract on the
// functions that accept one.
//
// The hot kernels (sta.Analyzer.Run/RunLight, core.Allocator.At/SolveAt,
// variation.Sampler.SampleInto) take a caller-owned scratch buffer and
// promise zero steady-state allocation by reusing it call to call. The
// contract only holds if the callee never *retains* the buffer: once a
// buffer (or an alias into it) is stored in a field, a global, a channel or
// a spawned goroutine, the next call overwrites state someone else still
// holds — the classic silent-corruption bug the test suites' allocation
// budgets cannot catch.
//
// A parameter is treated as scratch if its name is "buf" or "scratch" (or
// carries a Buf/Scratch suffix) and its type is a slice or pointer, or if
// the function is listed in KnownScratch (for contract-bearing parameters
// with domain names, e.g. SampleInto's die). Inside such a function the
// pass tracks every local alias of the buffer (x := buf, sub := buf[lo:hi],
// p := &buf[i], tm := bufPtr) and reports when an alias
//
//   - is assigned to a field or element of anything that is not itself the
//     buffer (retention),
//   - is assigned to a package-level variable (retention),
//   - is sent on a channel (handoff to an unknown lifetime),
//   - is referenced inside a `go` statement's function literal (outlives
//     the call), or
//   - is returned, when the scratch is a slice or when the returned
//     expression is an interior alias rather than the buffer itself.
//
// Returning the buffer pointer verbatim (return tm / return inst) is NOT a
// finding: that is the documented handoff idiom — Run returns its buf so
// callers can thread it — and the caller already owns the buffer. What may
// not escape is an interior view (return buf.Paths, return buf[:n]) that
// detaches a piece of the buffer from the visible reuse contract.
package scratchbuf

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/lint/analysis"
	"repro/internal/lint/lintutil"
)

// Analyzer is the scratchbuf pass.
var Analyzer = &analysis.Analyzer{
	Name: "scratchbuf",
	Doc:  "reused scratch buffers must not be retained, aliased into fields, sent, or escape the call",
	Run:  run,
}

// KnownScratch maps (*types.Func).FullName of contract-bearing functions to
// the indices of their scratch parameters, for buffers whose names are
// domain words rather than buf/scratch.
var KnownScratch = map[string][]int{
	"(*repro/internal/variation.Sampler).SampleInto":      {0}, // die is the reused per-worker buffer
	"(*repro/internal/variation.Sampler).SampleBlockInto": {0}, // blk is the reused per-worker SoA block
}

func run(pass *analysis.Pass) (any, error) {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			params := scratchParams(pass, fd)
			if len(params) > 0 {
				check(pass, fd, params)
			}
		}
	}
	return nil, nil
}

// scratchParams returns the scratch parameter objects of fd.
func scratchParams(pass *analysis.Pass, fd *ast.FuncDecl) []*types.Var {
	fn, _ := pass.TypesInfo.Defs[fd.Name].(*types.Func)
	if fn == nil {
		return nil
	}
	sig := fn.Signature()
	var known map[int]bool
	if idxs, ok := KnownScratch[fn.FullName()]; ok {
		known = map[int]bool{}
		for _, i := range idxs {
			known[i] = true
		}
	}
	var out []*types.Var
	for i := 0; i < sig.Params().Len(); i++ {
		p := sig.Params().At(i)
		if known[i] || (scratchName(p.Name()) && refLike(p.Type())) {
			out = append(out, p)
		}
	}
	return out
}

func scratchName(name string) bool {
	return name == "buf" || name == "scratch" ||
		strings.HasSuffix(name, "Buf") || strings.HasSuffix(name, "Scratch")
}

// refLike reports whether t is a type worth tracking as a buffer (slices
// and pointers; value copies cannot retain).
func refLike(t types.Type) bool {
	switch types.Unalias(t).(type) {
	case *types.Slice, *types.Pointer:
		return true
	}
	return false
}

// checker tracks the alias set of one function's scratch parameters.
type checker struct {
	pass    *analysis.Pass
	aliases map[types.Object]bool
	results *types.Tuple
}

func check(pass *analysis.Pass, fd *ast.FuncDecl, params []*types.Var) {
	c := &checker{pass: pass, aliases: map[types.Object]bool{}}
	if fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
		c.results = fn.Signature().Results()
	}
	for _, p := range params {
		c.aliases[p] = true
	}
	// Fixed point: local aliases can chain (x := buf; y := x[2:]).
	for {
		before := len(c.aliases)
		ast.Inspect(fd.Body, c.propagate)
		if len(c.aliases) == before {
			break
		}
	}
	c.walk(fd.Body)
}

// propagate grows the alias set: a local assigned an alias-derived
// reference becomes an alias itself.
func (c *checker) propagate(n ast.Node) bool {
	switch st := n.(type) {
	case *ast.AssignStmt:
		if len(st.Lhs) != len(st.Rhs) {
			return true
		}
		for i := range st.Lhs {
			if !c.aliasExpr(st.Rhs[i]) {
				continue
			}
			if id, ok := ast.Unparen(st.Lhs[i]).(*ast.Ident); ok && id.Name != "_" {
				if obj, ok := lintutil.ObjectOf(c.pass.TypesInfo, id).(*types.Var); ok && obj.Parent() != obj.Pkg().Scope() {
					c.aliases[obj] = true
				}
			}
		}
	case *ast.ValueSpec:
		for i, v := range st.Values {
			if i < len(st.Names) && c.aliasExpr(v) {
				if obj, ok := c.pass.TypesInfo.Defs[st.Names[i]].(*types.Var); ok && obj.Parent() != obj.Pkg().Scope() {
					c.aliases[obj] = true
				}
			}
		}
	}
	return true
}

// aliasExpr reports whether e evaluates to a reference into the scratch
// buffer.
func (c *checker) aliasExpr(e ast.Expr) bool {
	switch x := e.(type) {
	case *ast.Ident:
		obj := lintutil.ObjectOf(c.pass.TypesInfo, x)
		return obj != nil && c.aliases[obj]
	case *ast.ParenExpr:
		return c.aliasExpr(x.X)
	case *ast.SliceExpr:
		return c.aliasExpr(x.X)
	case *ast.StarExpr:
		return c.aliasExpr(x.X)
	case *ast.UnaryExpr:
		return x.Op.String() == "&" && c.aliasExpr(x.X)
	case *ast.SelectorExpr:
		// buf.Paths, buf.DelayScale: interior references share backing.
		return c.aliasExpr(x.X)
	case *ast.IndexExpr:
		// buf[i] aliases only when the element itself is reference-like
		// (e.g. [][]float64); a scalar element is a copy.
		if !c.aliasExpr(x.X) {
			return false
		}
		tv, ok := c.pass.TypesInfo.Types[x]
		return ok && containsRef(tv.Type, 0)
	case *ast.TypeAssertExpr:
		return c.aliasExpr(x.X)
	case *ast.CallExpr:
		if lintutil.IsConversion(c.pass.TypesInfo, x) && len(x.Args) == 1 {
			return c.aliasExpr(x.Args[0])
		}
		// append(buf, ...) may keep buf's backing array.
		if id, ok := ast.Unparen(x.Fun).(*ast.Ident); ok && id.Name == "append" && len(x.Args) > 0 {
			return c.aliasExpr(x.Args[0])
		}
		return false
	default:
		return false
	}
}

// containsRef reports whether values of t can reference other memory.
func containsRef(t types.Type, depth int) bool {
	if depth > 4 {
		return true // give up conservatively
	}
	switch u := types.Unalias(t).Underlying().(type) {
	case *types.Basic:
		return u.Kind() == types.String || u.Kind() == types.UnsafePointer
	case *types.Pointer, *types.Slice, *types.Map, *types.Chan, *types.Interface, *types.Signature:
		return true
	case *types.Array:
		return containsRef(u.Elem(), depth+1)
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if containsRef(u.Field(i).Type(), depth+1) {
				return true
			}
		}
		return false
	default:
		return true
	}
}

// walk reports violations with the converged alias set.
func (c *checker) walk(n ast.Node) {
	ast.Inspect(n, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.AssignStmt:
			for i := range st.Lhs {
				rhs := st.Rhs[0]
				if len(st.Lhs) == len(st.Rhs) {
					rhs = st.Rhs[i]
				}
				if c.aliasExpr(rhs) {
					c.checkStore(st.Lhs[i], rhs)
				}
			}
		case *ast.SendStmt:
			if c.aliasExpr(st.Value) {
				c.pass.Reportf(st.Value.Pos(), "scratch buffer sent on a channel: the receiver's lifetime is unknown, so the next reuse would overwrite state it still holds")
			}
		case *ast.GoStmt:
			if lit, ok := st.Call.Fun.(*ast.FuncLit); ok {
				c.checkGoroutine(lit)
			}
			for _, arg := range st.Call.Args {
				if c.aliasExpr(arg) {
					c.pass.Reportf(arg.Pos(), "scratch buffer passed to a spawned goroutine: it outlives the call, breaking the caller-owned reuse contract")
				}
			}
		case *ast.ReturnStmt:
			for i, res := range st.Results {
				c.checkReturn(i, len(st.Results), res)
			}
		}
		return true
	})
}

// checkStore flags alias stores whose destination is not the buffer itself.
// Writing INTO the buffer (tm.ArrPS = ..., buf[i] = ...) is the whole point
// and stays silent; writing the buffer into something else retains it.
func (c *checker) checkStore(lhs ast.Expr, rhs ast.Expr) {
	switch l := ast.Unparen(lhs).(type) {
	case *ast.Ident:
		if obj, ok := lintutil.ObjectOf(c.pass.TypesInfo, l).(*types.Var); ok && obj.Pkg() != nil && obj.Parent() == obj.Pkg().Scope() {
			c.pass.Reportf(rhs.Pos(), "scratch buffer stored in package-level variable %s: reused buffers must stay call-local", l.Name)
		}
	case *ast.SelectorExpr:
		if root := lintutil.RootIdent(l); root != nil {
			if obj := lintutil.ObjectOf(c.pass.TypesInfo, root); obj != nil && c.aliases[obj] {
				return // writing into the buffer's own fields
			}
		}
		c.pass.Reportf(rhs.Pos(), "scratch buffer retained in field %s: the next call reuses the buffer and silently corrupts whatever holds this reference", exprString(l))
	case *ast.IndexExpr:
		if root := lintutil.RootIdent(l); root != nil {
			if obj := lintutil.ObjectOf(c.pass.TypesInfo, root); obj != nil && c.aliases[obj] {
				return
			}
		}
		c.pass.Reportf(rhs.Pos(), "scratch buffer stored into a container that outlives the call")
	}
}

// checkGoroutine flags any alias referenced inside a go'd function literal.
func (c *checker) checkGoroutine(lit *ast.FuncLit) {
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		if obj := lintutil.ObjectOf(c.pass.TypesInfo, id); obj != nil && c.aliases[obj] {
			c.pass.Reportf(id.Pos(), "scratch buffer %s captured by a spawned goroutine: it outlives the call, breaking the caller-owned reuse contract", id.Name)
		}
		return true
	})
}

// checkReturn flags the returned aliases that hide the handoff. Returning
// the buffer itself — `return tm`, `return buf[:n]`, `return append(buf,
// x)` — is the documented idiom: the caller handed the buffer in and gets
// it (possibly regrown) back, ownership visible end to end. What may NOT be
// returned is
//
//   - an interior view of a pointer buffer (return buf.Paths): the piece
//     escapes while the handoff disappears from the signature, or
//   - an alias through an interface-typed result: the buffer escapes
//     type-erased, so no caller can see it must not be retained.
func (c *checker) checkReturn(i, n int, res ast.Expr) {
	if !c.aliasExpr(res) {
		return
	}
	if c.results != nil && n == c.results.Len() && i < c.results.Len() {
		if _, isIface := types.Unalias(c.results.At(i).Type()).Underlying().(*types.Interface); isIface {
			c.pass.Reportf(res.Pos(), "scratch buffer returned through an interface-typed result: the reuse contract is erased with the type — return the concrete buffer or copy out")
			return
		}
	}
	switch ast.Unparen(res).(type) {
	case *ast.Ident, *ast.SliceExpr:
		return // whole-buffer handoff / grow idiom
	case *ast.CallExpr:
		return // append(buf, ...) style regrowth, vetted by aliasExpr
	}
	c.pass.Reportf(res.Pos(), "interior alias of a scratch buffer returned: a view of the reused buffer escapes while the visible handoff disappears — return the whole buffer or copy the data out")
}

func exprString(e ast.Expr) string {
	switch x := e.(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		return exprString(x.X) + "." + x.Sel.Name
	case *ast.IndexExpr:
		return exprString(x.X) + "[...]"
	case *ast.StarExpr:
		return "*" + exprString(x.X)
	default:
		return "?"
	}
}
