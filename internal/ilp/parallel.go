package ilp

// Deterministic parallel branch and bound. One commit loop pops nodes in
// a fixed total order — best bound first, node sequence number breaking
// ties — and is the only place incumbents, pseudo-costs, statuses and the
// node count change. Worker goroutines speculate: they solve the LP
// relaxations of still-pending nodes in the same order. A node's
// relaxation depends only on its branching fixes, never on the incumbent,
// so a speculative result is exactly what the commit loop would have
// computed inline; workers therefore change wall-clock time but no
// observable output, and the search is byte-identical at any worker
// count. The incumbent objective is published atomically so workers can
// skip nodes the commit loop is guaranteed to prune; because the cutoff
// only ever decreases, that skip can never suppress a result the commit
// loop needs.

import (
	"container/heap"
	"math"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/lp"
)

// specLeadMax bounds how many solved-but-uncommitted relaxations workers
// may accumulate (each holds a solution vector).
const specLeadMax = 256

type nodeState uint8

const (
	nodePending nodeState = iota
	nodeClaimed
	nodeSolved
	nodeDead
)

// bfix is one branching bound change: x_j <= v (upper) or x_j >= v.
type bfix struct {
	j     int
	upper bool
	v     float64
}

type pnode struct {
	seq   int64
	bound float64 // parent relaxation objective: a lower bound here
	fixes []bfix
	// state/res/err are guarded by search.mu until the commit loop has
	// consumed the node.
	state  nodeState
	bySpec bool // solved by a worker (for the lead accounting)
	res    lp.Result
	err    error
	// branching bookkeeping for pseudo-cost updates at commit time.
	hasParent bool
	bvar      int
	bdir      int8
	bfrac     float64
	parentObj float64
}

// nodeHeap orders by (bound asc, seq desc): best bound first; among equal
// bounds the most recently created node, so the search dives.
type nodeHeap []*pnode

func (h nodeHeap) Len() int { return len(h) }
func (h nodeHeap) Less(i, j int) bool {
	if h[i].bound != h[j].bound {
		return h[i].bound < h[j].bound
	}
	return h[i].seq > h[j].seq
}
func (h nodeHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *nodeHeap) Push(x any)   { *h = append(*h, x.(*pnode)) }
func (h *nodeHeap) Pop() any {
	old := *h
	n := len(old)
	nd := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return nd
}

type search struct {
	rd      *reduction
	m       *Model
	isInt   []bool
	br      brancher
	workers int

	// strong-branching accounting (commit loop only).
	strongLPs int
	strongErr error

	mu          sync.Mutex
	spec        nodeHeap // pending nodes visible to workers
	solvedAhead int
	closed      bool
	workCond    *sync.Cond // workers wait here for work / lead room
	waitCond    *sync.Cond // commit loop waits here for a claimed node
	wg          sync.WaitGroup

	cutoffBits atomic.Uint64 // reduced-space incumbent cutoff (advisory)

	// commit-loop-only state.
	open    nodeHeap
	nextSeq int64
}

func newSearch(rd *reduction, br brancher, workers int) *search {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	s := &search{rd: rd, m: rd.m, isInt: rd.m.Integer, br: br, workers: workers}
	s.workCond = sync.NewCond(&s.mu)
	s.waitCond = sync.NewCond(&s.mu)
	s.publishCutoff(math.Inf(1))
	return s
}

func (s *search) publishCutoff(v float64) { s.cutoffBits.Store(math.Float64bits(v)) }
func (s *search) readCutoff() float64     { return math.Float64frombits(s.cutoffBits.Load()) }

// solveNode solves a node's LP relaxation: the reduced model with the
// node's branching fixes applied to fresh bound arrays. Pure function of
// the node, callable from any goroutine.
func (s *search) solveNode(nd *pnode) (lp.Result, error) {
	sub := s.m.Problem
	L := append([]float64(nil), s.m.L...)
	U := append([]float64(nil), s.m.U...)
	for _, f := range nd.fixes {
		if f.upper {
			if f.v < U[f.j] {
				U[f.j] = f.v
			}
		} else if f.v > L[f.j] {
			L[f.j] = f.v
		}
	}
	sub.L, sub.U = L, U
	return lp.Solve(&sub)
}

// boundsAt returns the effective bounds of column j at a node.
func (s *search) boundsAt(nd *pnode, j int) (lo, hi float64) {
	lo, hi = s.m.L[j], s.m.U[j]
	for _, f := range nd.fixes {
		if f.j != j {
			continue
		}
		if f.upper {
			if f.v < hi {
				hi = f.v
			}
		} else if f.v > lo {
			lo = f.v
		}
	}
	return lo, hi
}

func (s *search) workerLoop() {
	defer s.wg.Done()
	s.mu.Lock()
	for {
		var nd *pnode
		for !s.closed {
			if s.solvedAhead < specLeadMax && len(s.spec) > 0 {
				nd = heap.Pop(&s.spec).(*pnode)
				break
			}
			s.workCond.Wait()
		}
		if nd == nil {
			break // closed
		}
		if nd.state != nodePending {
			nd = nil
			continue // claimed, solved or pruned while queued
		}
		if nd.bound >= s.readCutoff()-1e-9 {
			nd = nil
			continue // commit loop will prune it without a solve
		}
		nd.state = nodeClaimed
		nd.bySpec = true
		s.mu.Unlock()
		r, err := s.solveNode(nd)
		s.mu.Lock()
		if nd.state == nodeDead {
			nd = nil
			continue // pruned while we solved; discard
		}
		nd.res, nd.err = r, err
		nd.state = nodeSolved
		s.solvedAhead++
		s.waitCond.Broadcast()
		nd = nil
	}
	s.mu.Unlock()
}

// ensure returns the node's relaxation result: the speculative one when a
// worker got there first, an inline solve otherwise.
func (s *search) ensure(nd *pnode) (lp.Result, error) {
	s.mu.Lock()
	switch nd.state {
	case nodePending:
		nd.state = nodeClaimed
		s.mu.Unlock()
		r, err := s.solveNode(nd)
		s.mu.Lock()
		nd.res, nd.err = r, err
		nd.state = nodeSolved
	case nodeClaimed:
		for nd.state != nodeSolved {
			s.waitCond.Wait()
		}
	}
	if nd.bySpec {
		nd.bySpec = false
		s.solvedAhead--
		s.workCond.Signal()
	}
	r, err := nd.res, nd.err
	s.mu.Unlock()
	return r, err
}

// kill marks a popped node pruned so workers skip or discard it.
func (s *search) kill(nd *pnode) {
	s.mu.Lock()
	if nd.state == nodeSolved && nd.bySpec {
		s.solvedAhead--
		s.workCond.Signal()
	}
	nd.state = nodeDead
	nd.res = lp.Result{}
	s.mu.Unlock()
}

// release drops a committed node's solution vector.
func (s *search) release(nd *pnode) { nd.res = lp.Result{} }

// push enqueues a child for the commit loop and, if its relaxation is not
// already known (strong-branching reuse), for the workers.
func (s *search) push(nd *pnode) {
	heap.Push(&s.open, nd)
	if nd.state != nodePending || s.workers <= 1 {
		return
	}
	s.mu.Lock()
	heap.Push(&s.spec, nd)
	s.workCond.Signal()
	s.mu.Unlock()
}

func (s *search) close() {
	s.mu.Lock()
	s.closed = true
	s.workCond.Broadcast()
	s.mu.Unlock()
	s.wg.Wait()
}

// runAll executes tasks on up to s.workers goroutines and joins them all
// (used for strong branching; determinism comes from joining before any
// result is consumed).
func (s *search) runAll(tasks []func()) {
	if len(tasks) == 0 {
		return
	}
	nw := s.workers
	if nw > len(tasks) {
		nw = len(tasks)
	}
	if nw <= 1 {
		for _, t := range tasks {
			t()
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < nw; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				k := int(next.Add(1)) - 1
				if k >= len(tasks) {
					return
				}
				tasks[k]()
			}
		}()
	}
	wg.Wait()
}

// strongBranch solves the down/up child relaxations for each candidate
// column (in parallel, joined before returning) and charges the LP budget.
func (s *search) strongBranch(nd *pnode, cols []int, r *lp.Result) []strongOut {
	outs := make([]strongOut, len(cols))
	if len(cols) == 0 {
		return outs
	}
	var tasks []func()
	for i, c := range cols {
		o := &outs[i]
		x := r.X[c]
		lo := math.Floor(x)
		hi := lo + 1
		effL, effU := s.boundsAt(nd, c)
		if lo >= effL-1e-9 {
			child := &pnode{fixes: appendBfix(nd.fixes, bfix{j: c, upper: true, v: lo})}
			tasks = append(tasks, func() {
				o.down, o.downErr = s.solveNode(child)
				o.downSolved = o.downErr == nil
			})
		}
		if hi <= effU+1e-9 {
			child := &pnode{fixes: appendBfix(nd.fixes, bfix{j: c, upper: false, v: hi})}
			tasks = append(tasks, func() {
				o.up, o.upErr = s.solveNode(child)
				o.upSolved = o.upErr == nil
			})
		}
	}
	s.runAll(tasks)
	s.strongLPs += len(tasks)
	for i := range outs {
		if outs[i].downErr != nil && s.strongErr == nil {
			s.strongErr = outs[i].downErr
		}
		if outs[i].upErr != nil && s.strongErr == nil {
			s.strongErr = outs[i].upErr
		}
	}
	return outs
}

func appendBfix(fs []bfix, f bfix) []bfix {
	out := make([]bfix, len(fs)+1)
	copy(out, fs)
	out[len(fs)] = f
	return out
}

// fractionalCols lists the integer columns whose relaxation value is off
// the lattice, in ascending column order.
func fractionalCols(x []float64, isInt []bool) []int {
	var cands []int
	for j, xi := range x {
		if !isInt[j] {
			continue
		}
		if math.Abs(xi-math.Round(xi)) > intTol {
			cands = append(cands, j)
		}
	}
	return cands
}

// run is the commit loop. It mutates res in place and returns an error
// only on internal LP failures.
func (s *search) run(res *Result, nodeLimit int, interrupt func() bool) error {
	offset := s.rd.offset
	cutoff := res.Obj // original-space incumbent objective
	s.publishCutoff(cutoff - offset)

	root := &pnode{seq: 0, bound: math.Inf(-1), bvar: -1}
	s.nextSeq = 1
	s.push(root)

	nw := s.workers - 1
	for i := 0; i < nw; i++ {
		s.wg.Add(1)
		go s.workerLoop()
	}
	defer s.close()

	rootSolved := false
	truncated := false
	for len(s.open) > 0 {
		if res.Nodes >= nodeLimit || (interrupt != nil && interrupt()) {
			truncated = true
			break
		}
		nd := heap.Pop(&s.open).(*pnode)
		cutoffRed := cutoff - offset
		if nd.bound >= cutoffRed-1e-9 {
			s.kill(nd)
			continue
		}
		r, err := s.ensure(nd)
		if err != nil {
			return err
		}
		res.Nodes++
		switch r.Status {
		case lp.Infeasible:
			s.release(nd)
			continue
		case lp.Unbounded:
			if !rootSolved {
				res.Status = RelaxUnbounded
				res.StrongLPs = s.strongLPs
				return nil
			}
			s.release(nd)
			continue
		case lp.IterLimit:
			// Unusable relaxation: be conservative, drop the proof.
			truncated = true
			s.release(nd)
			continue
		}
		if nd.hasParent {
			s.br.observe(nd.bvar, nd.bdir, nd.bfrac, nd.parentObj, r.Obj)
		}
		if !rootSolved {
			rootSolved = true
			res.BoundObj = r.Obj + offset
		}
		if r.Obj >= cutoffRed-1e-9 {
			s.release(nd)
			continue
		}

		cands := fractionalCols(r.X, s.isInt)
		if len(cands) == 0 {
			// Integer feasible: round off the noise and accept.
			x := append([]float64(nil), r.X...)
			obj := 0.0
			for j := range x {
				if s.isInt[j] {
					x[j] = math.Round(x[j])
				}
				obj += s.m.C[j] * x[j]
			}
			if obj+offset < cutoff {
				cutoff = obj + offset
				res.Obj = cutoff
				res.X = s.rd.postsolve(x)
				s.publishCutoff(obj)
			}
			s.release(nd)
			continue
		}

		pk := s.br.pick(s, nd, &r, cands)
		if s.strongErr != nil {
			return s.strongErr
		}
		x := r.X[pk.col]
		lo := math.Floor(x)
		hi := lo + 1
		frac := x - lo
		effL, effU := s.boundsAt(nd, pk.col)
		downOK := lo >= effL-1e-9 && !pk.downInfeas
		upOK := hi <= effU+1e-9 && !pk.upInfeas

		mkChild := func(dir int8, v float64, pre *lp.Result) {
			f := bfix{j: pk.col, upper: dir < 0, v: v}
			moved := frac
			if dir > 0 {
				moved = 1 - frac
			}
			child := &pnode{
				seq:       s.nextSeq,
				bound:     r.Obj,
				fixes:     appendBfix(nd.fixes, f),
				hasParent: true,
				bvar:      pk.col,
				bdir:      dir,
				bfrac:     moved,
				parentObj: r.Obj,
			}
			s.nextSeq++
			if pre != nil {
				child.state = nodeSolved
				child.res = *pre
			}
			s.push(child)
		}
		// The nearer child is pushed last: it gets the larger sequence
		// number and, on equal bounds, is committed first (diving).
		if downOK && upOK {
			if frac > 0.5 {
				mkChild(-1, lo, pk.preDown)
				mkChild(+1, hi, pk.preUp)
			} else {
				mkChild(+1, hi, pk.preUp)
				mkChild(-1, lo, pk.preDown)
			}
		} else if downOK {
			mkChild(-1, lo, pk.preDown)
		} else if upOK {
			mkChild(+1, hi, pk.preUp)
		}
		s.release(nd)
	}

	res.StrongLPs = s.strongLPs

	// Remaining frontier contributes to the proven bound.
	frontier := res.Obj
	for _, nd := range s.open {
		if b := nd.bound + offset; b < frontier {
			frontier = b
		}
	}
	if len(s.open) == 0 && !truncated {
		if math.IsInf(res.Obj, 1) {
			res.Status = InfeasibleProven
			return nil
		}
		res.Status = OptimalProven
		res.BoundObj = res.Obj
		return nil
	}
	if math.IsInf(res.Obj, 1) {
		res.Status = NoSolution
	} else {
		res.Status = FeasibleBudget
		if frontier > res.BoundObj {
			res.BoundObj = frontier
		}
	}
	return nil
}
