package ilp

// Presolve shrinks a model before the tree search: activity-based bound
// tightening (with integer rounding), singleton-row conversion, redundant-
// row elimination, duality fixing, and substitution of fixed variables.
// Every reduction either preserves the full feasible set (tightening, row
// elimination) or provably keeps at least one optimal solution (duality
// fixing), so the reduced optimum equals the original optimum. The
// reduction carries a transform log — kept-column map, fixed values,
// objective offset — that maps reduced solutions back to original
// variables via postsolve.

import (
	"math"

	"repro/internal/lp"
)

const (
	psFeasTol   = 1e-7
	psMaxPasses = 10
)

// reduction is the presolved model plus the transform log back to the
// original variable space.
type reduction struct {
	m *Model // reduced model; L/U always materialized
	// keep maps reduced column -> original column.
	keep []int
	// fixed/fixVal record presolved-away original columns.
	fixed  []bool
	fixVal []float64
	// offset is the objective contribution of the fixed columns:
	// originalObj = reducedObj + offset.
	offset float64
	// diagnostics
	nFixed, nRows, nBounds int
	// feasible is false when presolve proved the model empty.
	feasible bool
}

// postsolve maps a reduced solution vector back to original variables.
func (rd *reduction) postsolve(xRed []float64) []float64 {
	x := make([]float64, len(rd.fixed))
	for r, j := range rd.keep {
		x[j] = xRed[r]
	}
	for j, f := range rd.fixed {
		if f {
			x[j] = rd.fixVal[j]
		}
	}
	return x
}

// reduce runs the presolve loop. With enable=false it only materializes
// bounds (the identity transform), so the search code has one shape.
func reduce(m *Model, isInt []bool, enable bool) *reduction {
	n := len(m.C)
	L := make([]float64, n)
	U := make([]float64, n)
	for j := 0; j < n; j++ {
		L[j] = lowerOf(&m.Problem, j)
		U[j] = upperOf(&m.Problem, j)
	}
	rd := &reduction{
		fixed:    make([]bool, n),
		fixVal:   make([]float64, n),
		feasible: true,
	}
	if !enable {
		mm := &Model{Problem: m.Problem, Integer: isInt}
		mm.L, mm.U = L, U
		rd.m = mm
		rd.keep = make([]int, n)
		for j := range rd.keep {
			rd.keep[j] = j
		}
		return rd
	}

	// Integer bounds start on the lattice; all later tightenings keep
	// them there.
	for j := 0; j < n; j++ {
		if !isInt[j] {
			continue
		}
		if !math.IsInf(L[j], -1) {
			L[j] = math.Ceil(L[j] - intTol)
		}
		if !math.IsInf(U[j], 1) {
			U[j] = math.Floor(U[j] + intTol)
		}
	}

	nr := len(m.A)
	alive := make([]bool, nr)
	for k := range alive {
		alive[k] = true
	}

	fix := func(j int, v float64) {
		rd.fixed[j] = true
		rd.fixVal[j] = v
		L[j], U[j] = v, v
		rd.nFixed++
	}
	// afterTighten fixes a variable whose interval collapsed and reports
	// whether the interval is still non-empty.
	afterTighten := func(j int) bool {
		if L[j] > U[j]+psFeasTol {
			rd.feasible = false
			return false
		}
		if rd.fixed[j] {
			return true
		}
		if isInt[j] {
			if U[j]-L[j] < 0.5 {
				fix(j, L[j])
			}
		} else if U[j]-L[j] <= 1e-9 {
			fix(j, 0.5*(L[j]+U[j]))
		}
		return true
	}
	changed := false
	tightenU := func(j int, v float64) bool {
		if isInt[j] && !math.IsInf(v, 0) {
			v = math.Floor(v + intTol)
		}
		thresh := 1e-9
		if isInt[j] {
			thresh = 0.5
		}
		if v < U[j]-thresh {
			U[j] = v
			rd.nBounds++
			changed = true
			return afterTighten(j)
		}
		return true
	}
	tightenL := func(j int, v float64) bool {
		if isInt[j] && !math.IsInf(v, 0) {
			v = math.Ceil(v - intTol)
		}
		thresh := 1e-9
		if isInt[j] {
			thresh = 0.5
		}
		if v > L[j]+thresh {
			L[j] = v
			rd.nBounds++
			changed = true
			return afterTighten(j)
		}
		return true
	}

	for pass := 0; pass < psMaxPasses && rd.feasible; pass++ {
		changed = false
		for k := 0; k < nr && rd.feasible; k++ {
			if !alive[k] {
				continue
			}
			row := m.A[k]
			b := m.B[k]
			rel := m.Rel[k]

			// Row activity over current bounds, infinity-aware: finite
			// part plus a count of infinite contributions.
			minFin, maxFin := 0.0, 0.0
			minInf, maxInf := 0, 0
			nUnfixed, lastJ := 0, -1
			for j, a := range row {
				if a == 0 {
					continue
				}
				if !rd.fixed[j] {
					nUnfixed++
					lastJ = j
				}
				lo, hi := L[j], U[j]
				if a < 0 {
					lo, hi = hi, lo
				}
				if math.IsInf(lo, 0) {
					minInf++
				} else {
					minFin += a * lo
				}
				if math.IsInf(hi, 0) {
					maxInf++
				} else {
					maxFin += a * hi
				}
			}
			minAct, maxAct := minFin, maxFin
			if minInf > 0 {
				minAct = math.Inf(-1)
			}
			if maxInf > 0 {
				maxAct = math.Inf(1)
			}

			// Feasibility and redundancy.
			drop := false
			switch rel {
			case lp.LE:
				if minAct > b+psFeasTol {
					rd.feasible = false
					continue
				}
				drop = maxAct <= b+psFeasTol
			case lp.GE:
				if maxAct < b-psFeasTol {
					rd.feasible = false
					continue
				}
				drop = minAct >= b-psFeasTol
			case lp.EQ:
				if minAct > b+psFeasTol || maxAct < b-psFeasTol {
					rd.feasible = false
					continue
				}
				drop = minAct >= b-psFeasTol && maxAct <= b+psFeasTol
			}
			if drop {
				alive[k] = false
				rd.nRows++
				changed = true
				continue
			}

			// Singleton row: one unfixed variable left. Fold the row
			// into that variable's bounds and drop it.
			if nUnfixed == 1 {
				a := row[lastJ]
				cFix := 0.0
				for j, aj := range row {
					if aj != 0 && j != lastJ {
						cFix += aj * rd.fixVal[j]
					}
				}
				v := (b - cFix) / a
				ok := true
				switch {
				case rel == lp.EQ:
					ok = tightenL(lastJ, v) && tightenU(lastJ, v)
					if ok && math.Abs(U[lastJ]-L[lastJ]) > psFeasTol {
						// Integer rounding emptied the point.
						rd.feasible = false
					}
				case (rel == lp.LE) == (a > 0):
					ok = tightenU(lastJ, v)
				default:
					ok = tightenL(lastJ, v)
				}
				if !ok {
					continue
				}
				alive[k] = false
				rd.nRows++
				changed = true
				continue
			}

			// Activity-based bound tightening. For ax <= b the minimum
			// activity of the other variables caps each term; for
			// ax >= b the maximum activity floors it. EQ rows tighten
			// from both sides.
			for j, a := range row {
				if a == 0 || rd.fixed[j] {
					continue
				}
				if rel == lp.LE || rel == lp.EQ {
					// min activity excluding j
					var others float64
					ownInf := false
					if a > 0 {
						ownInf = math.IsInf(L[j], 0)
						if !ownInf {
							others = minFin - a*L[j]
						}
					} else {
						ownInf = math.IsInf(U[j], 0)
						if !ownInf {
							others = minFin - a*U[j]
						}
					}
					rest := minInf
					if ownInf {
						rest--
					}
					if rest == 0 {
						ok := true
						if a > 0 {
							ok = tightenU(j, (b-others)/a)
						} else {
							ok = tightenL(j, (b-others)/a)
						}
						if !ok {
							break
						}
					}
				}
				if rel == lp.GE || rel == lp.EQ {
					// max activity excluding j
					var others float64
					ownInf := false
					if a > 0 {
						ownInf = math.IsInf(U[j], 0)
						if !ownInf {
							others = maxFin - a*U[j]
						}
					} else {
						ownInf = math.IsInf(L[j], 0)
						if !ownInf {
							others = maxFin - a*L[j]
						}
					}
					rest := maxInf
					if ownInf {
						rest--
					}
					if rest == 0 {
						ok := true
						if a > 0 {
							ok = tightenL(j, (b-others)/a)
						} else {
							ok = tightenU(j, (b-others)/a)
						}
						if !ok {
							break
						}
					}
				}
			}
		}
		if !rd.feasible {
			break
		}

		// Duality fixing: a variable whose objective coefficient and
		// column signs all pull the same way can sit at its bound in
		// some optimum.
		for j := 0; j < n && rd.feasible; j++ {
			if rd.fixed[j] {
				continue
			}
			cj := m.C[j]
			downOK := cj >= 0 && !math.IsInf(L[j], -1)
			upOK := cj <= 0 && !math.IsInf(U[j], 1)
			if !downOK && !upOK {
				continue
			}
			for k := 0; k < nr && (downOK || upOK); k++ {
				if !alive[k] {
					continue
				}
				a := m.A[k][j]
				if a == 0 {
					continue
				}
				switch m.Rel[k] {
				case lp.LE:
					if a < 0 {
						downOK = false
					} else {
						upOK = false
					}
				case lp.GE:
					if a > 0 {
						downOK = false
					} else {
						upOK = false
					}
				case lp.EQ:
					downOK, upOK = false, false
				}
			}
			if downOK {
				fix(j, L[j])
				changed = true
			} else if upOK {
				fix(j, U[j])
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	if !rd.feasible {
		return rd
	}

	// Build the reduced model: substitute fixed columns, drop dead rows.
	for j := 0; j < n; j++ {
		if !rd.fixed[j] {
			rd.keep = append(rd.keep, j)
		} else {
			rd.offset += m.C[j] * rd.fixVal[j]
		}
	}
	redN := len(rd.keep)
	redC := make([]float64, redN)
	redL := make([]float64, redN)
	redU := make([]float64, redN)
	redInt := make([]bool, redN)
	for r, j := range rd.keep {
		redC[r] = m.C[j]
		redL[r] = L[j]
		redU[r] = U[j]
		redInt[r] = isInt[j]
	}
	var redA [][]float64
	var redB []float64
	var redRel []lp.Rel
	for k := 0; k < nr; k++ {
		if !alive[k] {
			continue
		}
		row := m.A[k]
		b := m.B[k]
		nz := false
		newRow := make([]float64, redN)
		for r, j := range rd.keep {
			newRow[r] = row[j]
			if row[j] != 0 {
				nz = true
			}
		}
		for j, a := range row {
			if a != 0 && rd.fixed[j] {
				b -= a * rd.fixVal[j]
			}
		}
		if !nz {
			// Constant row that survived to the pass cap: decide it now.
			ok := true
			switch m.Rel[k] {
			case lp.LE:
				ok = 0 <= b+psFeasTol
			case lp.GE:
				ok = 0 >= b-psFeasTol
			case lp.EQ:
				ok = math.Abs(b) <= psFeasTol
			}
			if !ok {
				rd.feasible = false
				return rd
			}
			rd.nRows++
			continue
		}
		redA = append(redA, newRow)
		redB = append(redB, b)
		redRel = append(redRel, m.Rel[k])
	}
	rd.m = &Model{
		Problem: lp.Problem{C: redC, A: redA, Rel: redRel, B: redB, L: redL, U: redU},
		Integer: redInt,
	}
	return rd
}
