package ilp

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"repro/internal/lp"
)

func TestKnapsack(t *testing.T) {
	// max 10x1+13x2+7x3 s.t. 3x1+4x2+2x3 <= 6, binary.
	// Best: x1+x3 (w=5, v=17) vs x2+x3 (w=6, v=20) -> 20.
	m := &Model{Problem: lp.Problem{
		C:   []float64{-10, -13, -7},
		A:   [][]float64{{3, 4, 2}},
		Rel: []lp.Rel{lp.LE},
		B:   []float64{6},
		U:   []float64{1, 1, 1},
	}}
	r, err := Solve(m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r.Status != OptimalProven || math.Abs(r.Obj+20) > 1e-6 {
		t.Fatalf("status=%v obj=%f, want optimal -20", r.Status, r.Obj)
	}
	want := []float64{0, 1, 1}
	for j := range want {
		if math.Abs(r.X[j]-want[j]) > 1e-6 {
			t.Errorf("x[%d] = %f, want %f", j, r.X[j], want[j])
		}
	}
}

func TestIntegerRounding(t *testing.T) {
	// LP optimum fractional: min -x1-x2 s.t. 2x1+2x2 <= 3, binary.
	// LP gives 1.5; ILP must give exactly one variable set.
	m := &Model{Problem: lp.Problem{
		C:   []float64{-1, -1},
		A:   [][]float64{{2, 2}},
		Rel: []lp.Rel{lp.LE},
		B:   []float64{3},
		U:   []float64{1, 1},
	}}
	r, err := Solve(m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r.Status != OptimalProven || math.Abs(r.Obj+1) > 1e-6 {
		t.Fatalf("obj = %f, want -1", r.Obj)
	}
}

func TestInfeasibleILP(t *testing.T) {
	// x1 + x2 = 1.5 has no binary solution.
	m := &Model{Problem: lp.Problem{
		C:   []float64{1, 1},
		A:   [][]float64{{1, 1}},
		Rel: []lp.Rel{lp.EQ},
		B:   []float64{1.5},
		U:   []float64{1, 1},
	}}
	r, err := Solve(m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r.Status != InfeasibleProven {
		t.Fatalf("status = %v, want infeasible", r.Status)
	}
}

func TestMixedInteger(t *testing.T) {
	// x integer, y continuous: min -y s.t. y <= x + 0.5, x <= 2.3, y <= 9.
	// x integer <= 2.3 -> x=2, y=2.5.
	m := &Model{
		Problem: lp.Problem{
			C:   []float64{0, -1},
			A:   [][]float64{{-1, 1}, {1, 0}},
			Rel: []lp.Rel{lp.LE, lp.LE},
			B:   []float64{0.5, 2.3},
			U:   []float64{10, 9},
		},
		Integer: []bool{true, false},
	}
	r, err := Solve(m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r.Status != OptimalProven || math.Abs(r.X[0]-2) > 1e-6 || math.Abs(r.X[1]-2.5) > 1e-6 {
		t.Fatalf("got %v %v, want x=2 y=2.5", r.Status, r.X)
	}
}

func TestWarmStartPrunes(t *testing.T) {
	m := &Model{Problem: lp.Problem{
		C:   []float64{-10, -13, -7},
		A:   [][]float64{{3, 4, 2}},
		Rel: []lp.Rel{lp.LE},
		B:   []float64{6},
		U:   []float64{1, 1, 1},
	}}
	cold, err := Solve(m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	warm, err := Solve(m, Options{
		HasWarm: true,
		WarmObj: -20,
		WarmX:   []float64{0, 1, 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if warm.Obj != -20 || warm.Status != OptimalProven {
		t.Fatalf("warm solve lost the optimum: %v %f", warm.Status, warm.Obj)
	}
	if warm.Nodes > cold.Nodes {
		t.Errorf("warm start explored more nodes (%d) than cold (%d)", warm.Nodes, cold.Nodes)
	}
}

func TestNodeBudgetReportsBound(t *testing.T) {
	// A larger knapsack; a 1-node budget cannot prove optimality.
	rng := rand.New(rand.NewSource(3))
	n := 25
	m := &Model{Problem: lp.Problem{
		C:   make([]float64, n),
		A:   [][]float64{make([]float64, n)},
		Rel: []lp.Rel{lp.LE},
		B:   []float64{25},
		U:   make([]float64, n),
	}}
	for j := 0; j < n; j++ {
		m.C[j] = -float64(1 + rng.Intn(20))
		m.A[0][j] = float64(1 + rng.Intn(10))
		m.U[j] = 1
	}
	r, err := Solve(m, Options{NodeLimit: 1})
	if err != nil {
		t.Fatal(err)
	}
	if r.Status == OptimalProven {
		t.Skip("instance solved at the root; budget path not exercised")
	}
	if r.Status != NoSolution && r.Status != FeasibleBudget {
		t.Fatalf("status = %v", r.Status)
	}
	if r.Status == FeasibleBudget && r.BoundObj > r.Obj+1e-9 {
		t.Errorf("bound %f above incumbent %f", r.BoundObj, r.Obj)
	}
}

func TestInterruptStopsSearch(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	n := 40
	m := &Model{Problem: lp.Problem{
		C:   make([]float64, n),
		A:   make([][]float64, 12),
		Rel: make([]lp.Rel, 12),
		B:   make([]float64, 12),
		U:   make([]float64, n),
	}}
	for j := 0; j < n; j++ {
		m.C[j] = rng.Float64()*10 - 5
		m.U[j] = 1
	}
	for i := 0; i < 12; i++ {
		m.A[i] = make([]float64, n)
		for j := 0; j < n; j++ {
			m.A[i][j] = rng.Float64() * 3
		}
		m.Rel[i] = lp.LE
		m.B[i] = float64(n) / 3
	}
	startT := time.Now()
	deadline := startT.Add(50 * time.Millisecond)
	r, err := Solve(m, Options{Interrupt: func() bool { return time.Now().After(deadline) }})
	if err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(startT); elapsed > 3*time.Second {
		t.Errorf("interrupt not respected: ran %v", elapsed)
	}
	if r.Status == FeasibleBudget && r.BoundObj > r.Obj+1e-9 {
		t.Errorf("bound %f above incumbent %f", r.BoundObj, r.Obj)
	}
}

// exhaustive solves a pure binary program by enumeration.
func exhaustive(m *Model) (float64, []float64, bool) {
	n := len(m.C)
	best := math.Inf(1)
	var bestX []float64
	for mask := 0; mask < 1<<n; mask++ {
		x := make([]float64, n)
		for j := 0; j < n; j++ {
			if mask&(1<<j) != 0 {
				x[j] = 1
			}
		}
		ok := true
		for i, row := range m.A {
			v := 0.0
			for j := range row {
				v += row[j] * x[j]
			}
			switch m.Rel[i] {
			case lp.LE:
				ok = ok && v <= m.B[i]+1e-9
			case lp.GE:
				ok = ok && v >= m.B[i]-1e-9
			case lp.EQ:
				ok = ok && math.Abs(v-m.B[i]) <= 1e-9
			}
		}
		if !ok {
			continue
		}
		obj := 0.0
		for j := 0; j < n; j++ {
			obj += m.C[j] * x[j]
		}
		if obj < best {
			best = obj
			bestX = x
		}
	}
	return best, bestX, bestX != nil
}

func TestAgainstExhaustiveEnumeration(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 120; trial++ {
		n := 3 + rng.Intn(8) // up to 10 binaries -> 1024 points
		rows := 1 + rng.Intn(4)
		m := &Model{Problem: lp.Problem{
			C:   make([]float64, n),
			A:   make([][]float64, rows),
			Rel: make([]lp.Rel, rows),
			B:   make([]float64, rows),
			U:   make([]float64, n),
		}}
		for j := 0; j < n; j++ {
			m.C[j] = float64(rng.Intn(21) - 10)
			m.U[j] = 1
		}
		for i := 0; i < rows; i++ {
			m.A[i] = make([]float64, n)
			for j := 0; j < n; j++ {
				m.A[i][j] = float64(rng.Intn(9) - 3)
			}
			switch rng.Intn(3) {
			case 0:
				m.Rel[i] = lp.LE
				m.B[i] = float64(rng.Intn(2 * n))
			case 1:
				m.Rel[i] = lp.GE
				m.B[i] = float64(-rng.Intn(n))
			default:
				m.Rel[i] = lp.LE
				m.B[i] = float64(rng.Intn(n))
			}
		}
		got, err := Solve(m, Options{})
		if err != nil {
			t.Fatal(err)
		}
		want, _, feasible := exhaustive(m)
		if !feasible {
			if got.Status != InfeasibleProven {
				t.Fatalf("trial %d: oracle infeasible, solver says %v", trial, got.Status)
			}
			continue
		}
		if got.Status != OptimalProven {
			t.Fatalf("trial %d: status %v on a feasible instance", trial, got.Status)
		}
		if math.Abs(got.Obj-want) > 1e-6 {
			t.Fatalf("trial %d: solver %f vs oracle %f", trial, got.Obj, want)
		}
	}
}

func TestGap(t *testing.T) {
	r := Result{Status: OptimalProven, Obj: 5, BoundObj: 5}
	if r.Gap() != 0 {
		t.Error("proven optimum must have zero gap")
	}
	r = Result{Status: FeasibleBudget, Obj: 10, BoundObj: 8}
	if g := r.Gap(); math.Abs(g-0.2) > 1e-12 {
		t.Errorf("gap = %f, want 0.2", g)
	}
}
