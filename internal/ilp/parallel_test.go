package ilp

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/lp"
)

// TestSolveWorkerInvariance is the determinism contract: under a node
// budget, Solve returns a bit-identical Result — incumbent vector,
// objective, bound, status, node count, diagnostics — at any worker
// count. Random models, both branching rules, budgets tight enough that
// some runs truncate.
func TestSolveWorkerInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	workers := []int{1, 2, 8}
	for trial := 0; trial < 60; trial++ {
		m := randomBinaryModel(rng)
		for _, rule := range []string{"pseudocost", "mostfrac"} {
			for _, nodeLimit := range []int{4, 0} {
				var base Result
				for wi, w := range workers {
					got, err := Solve(m, Options{
						NodeLimit: nodeLimit,
						Workers:   w,
						Branching: rule,
					})
					if err != nil {
						t.Fatal(err)
					}
					if wi == 0 {
						base = got
						continue
					}
					if !reflect.DeepEqual(base, got) {
						t.Fatalf("trial %d rule=%s limit=%d: workers=%d diverged from workers=1:\n%+v\nvs\n%+v",
							trial, rule, nodeLimit, w, base, got)
					}
				}
			}
		}
	}
}

// TestSolveWorkerInvarianceWarm covers the warm-started budgeted path the
// FBB flow uses: incumbent primed by a heuristic, tight node budget.
func TestSolveWorkerInvarianceWarm(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 30; trial++ {
		m := randomBinaryModel(rng)
		// Cheap feasible warm start when one exists: all zeros.
		x0 := make([]float64, len(m.C))
		feasible := true
		for i, row := range m.A {
			v := 0.0
			for j := range row {
				v += row[j] * x0[j]
			}
			switch m.Rel[i] {
			case lp.LE:
				feasible = feasible && v <= m.B[i]+1e-9
			case lp.GE:
				feasible = feasible && v >= m.B[i]-1e-9
			case lp.EQ:
				feasible = feasible && v == m.B[i]
			}
		}
		if !feasible {
			continue
		}
		var base Result
		for wi, w := range []int{1, 2, 8} {
			got, err := Solve(m, Options{
				NodeLimit: 6,
				Workers:   w,
				HasWarm:   true,
				WarmObj:   0,
				WarmX:     x0,
			})
			if err != nil {
				t.Fatal(err)
			}
			if wi == 0 {
				base = got
				continue
			}
			if !reflect.DeepEqual(base, got) {
				t.Fatalf("trial %d: workers=%d diverged:\n%+v\nvs\n%+v", trial, w, base, got)
			}
		}
	}
}

// TestBranchingRulesAgreeOnOptimum: both rules must reach the same proven
// objective (their trees differ; the answer may not).
func TestBranchingRulesAgreeOnOptimum(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	for trial := 0; trial < 60; trial++ {
		m := randomBinaryModel(rng)
		pc, err := Solve(m, Options{Branching: "pseudocost"})
		if err != nil {
			t.Fatal(err)
		}
		mf, err := Solve(m, Options{Branching: "mostfrac"})
		if err != nil {
			t.Fatal(err)
		}
		if pc.Status != mf.Status {
			t.Fatalf("trial %d: pseudocost=%v mostfrac=%v", trial, pc.Status, mf.Status)
		}
		if pc.Status == OptimalProven && pc.Obj != mf.Obj {
			// Equal-valued optima may differ in X; objective must match
			// to LP tolerance.
			if d := pc.Obj - mf.Obj; d > 1e-6 || d < -1e-6 {
				t.Fatalf("trial %d: pseudocost obj %f vs mostfrac %f", trial, pc.Obj, mf.Obj)
			}
		}
	}
}

func TestUnknownBranchingRuleRejected(t *testing.T) {
	m := &Model{Problem: lp.Problem{
		C:   []float64{-1},
		A:   [][]float64{{1}},
		Rel: []lp.Rel{lp.LE},
		B:   []float64{1},
		U:   []float64{1},
	}}
	if _, err := Solve(m, Options{Branching: "bogus"}); err == nil {
		t.Fatal("unknown branching rule accepted")
	}
}
