package ilp

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/lp"
)

func TestPresolveFixesForcedBinaries(t *testing.T) {
	// x1 + x2 >= 2 forces both binaries to 1; presolve alone solves it.
	m := &Model{Problem: lp.Problem{
		C:   []float64{3, 5},
		A:   [][]float64{{1, 1}},
		Rel: []lp.Rel{lp.GE},
		B:   []float64{2},
		U:   []float64{1, 1},
	}}
	r, err := Solve(m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r.Status != OptimalProven || math.Abs(r.Obj-8) > 1e-9 {
		t.Fatalf("status=%v obj=%f, want optimal 8", r.Status, r.Obj)
	}
	if r.X[0] != 1 || r.X[1] != 1 {
		t.Fatalf("postsolve lost the fixed values: %v", r.X)
	}
	if r.PresolveFixedVars != 2 {
		t.Errorf("fixed %d vars, want 2", r.PresolveFixedVars)
	}
	if r.Nodes != 0 {
		t.Errorf("search ran %d nodes on a presolve-closed model", r.Nodes)
	}
}

func TestPresolveDropsRedundantRow(t *testing.T) {
	// x1 + x2 <= 5 can never bind for binaries; the knapsack result must
	// be unaffected and the row reported as dropped.
	m := &Model{Problem: lp.Problem{
		C:   []float64{-10, -13, -7},
		A:   [][]float64{{3, 4, 2}, {1, 1, 1}},
		Rel: []lp.Rel{lp.LE, lp.LE},
		B:   []float64{6, 5},
		U:   []float64{1, 1, 1},
	}}
	r, err := Solve(m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r.Status != OptimalProven || math.Abs(r.Obj+20) > 1e-6 {
		t.Fatalf("status=%v obj=%f, want optimal -20", r.Status, r.Obj)
	}
	if r.PresolveDroppedRows == 0 {
		t.Error("redundant row not eliminated")
	}
}

func TestPresolveSingletonRow(t *testing.T) {
	// 2*x2 <= 1 is a singleton: binary x2 must be 0.
	m := &Model{Problem: lp.Problem{
		C:   []float64{-1, -10},
		A:   [][]float64{{0, 2}},
		Rel: []lp.Rel{lp.LE},
		B:   []float64{1},
		U:   []float64{1, 1},
	}}
	r, err := Solve(m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r.Status != OptimalProven || math.Abs(r.Obj+1) > 1e-9 {
		t.Fatalf("status=%v obj=%f, want optimal -1", r.Status, r.Obj)
	}
	if r.X[1] != 0 {
		t.Fatalf("x2 = %f, want 0", r.X[1])
	}
}

func TestPresolveProvesInfeasible(t *testing.T) {
	// Max activity of x1+x2 is 2 < 3: no search needed.
	m := &Model{Problem: lp.Problem{
		C:   []float64{1, 1},
		A:   [][]float64{{1, 1}},
		Rel: []lp.Rel{lp.GE},
		B:   []float64{3},
		U:   []float64{1, 1},
	}}
	r, err := Solve(m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r.Status != InfeasibleProven {
		t.Fatalf("status = %v, want infeasible", r.Status)
	}
	if r.Nodes != 0 {
		t.Errorf("search ran %d nodes on a presolve-infeasible model", r.Nodes)
	}
}

func TestPresolveDualityFixing(t *testing.T) {
	// x2 has positive cost and only helps constraints when low: presolve
	// can pin it at its lower bound without search.
	m := &Model{Problem: lp.Problem{
		C:   []float64{-2, 4},
		A:   [][]float64{{1, 1}},
		Rel: []lp.Rel{lp.LE},
		B:   []float64{1},
		U:   []float64{1, 1},
	}}
	r, err := Solve(m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r.Status != OptimalProven || math.Abs(r.Obj+2) > 1e-9 {
		t.Fatalf("status=%v obj=%f, want optimal -2", r.Status, r.Obj)
	}
	if r.X[1] != 0 {
		t.Fatalf("x2 = %f, want duality-fixed 0", r.X[1])
	}
}

// TestPresolveAblationMatches proves presolve changes the work, never the
// answer: on random binary programs both configurations agree with each
// other (and transitively with the exhaustive oracle, which the
// enumeration suite pins).
func TestPresolveAblationMatches(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 80; trial++ {
		m := randomBinaryModel(rng)
		on, err := Solve(m, Options{})
		if err != nil {
			t.Fatal(err)
		}
		off, err := Solve(m, Options{NoPresolve: true})
		if err != nil {
			t.Fatal(err)
		}
		if on.Status != off.Status {
			t.Fatalf("trial %d: presolve on=%v off=%v", trial, on.Status, off.Status)
		}
		if on.Status == OptimalProven && math.Abs(on.Obj-off.Obj) > 1e-6 {
			t.Fatalf("trial %d: presolve on obj %f, off %f", trial, on.Obj, off.Obj)
		}
		// The incumbent must satisfy the original rows exactly.
		if on.Status == OptimalProven {
			checkFeasible(t, trial, m, on.X)
		}
	}
}

func checkFeasible(t *testing.T, trial int, m *Model, x []float64) {
	t.Helper()
	for i, row := range m.A {
		v := 0.0
		for j := range row {
			v += row[j] * x[j]
		}
		ok := true
		switch m.Rel[i] {
		case lp.LE:
			ok = v <= m.B[i]+1e-6
		case lp.GE:
			ok = v >= m.B[i]-1e-6
		case lp.EQ:
			ok = math.Abs(v-m.B[i]) <= 1e-6
		}
		if !ok {
			t.Fatalf("trial %d: postsolved incumbent violates row %d: %f vs %f", trial, i, v, m.B[i])
		}
	}
}

func randomBinaryModel(rng *rand.Rand) *Model {
	n := 3 + rng.Intn(8)
	rows := 1 + rng.Intn(4)
	m := &Model{Problem: lp.Problem{
		C:   make([]float64, n),
		A:   make([][]float64, rows),
		Rel: make([]lp.Rel, rows),
		B:   make([]float64, rows),
		U:   make([]float64, n),
	}}
	for j := 0; j < n; j++ {
		m.C[j] = float64(rng.Intn(21) - 10)
		m.U[j] = 1
	}
	for i := 0; i < rows; i++ {
		m.A[i] = make([]float64, n)
		for j := 0; j < n; j++ {
			m.A[i][j] = float64(rng.Intn(9) - 3)
		}
		switch rng.Intn(3) {
		case 0:
			m.Rel[i] = lp.LE
			m.B[i] = float64(rng.Intn(2 * n))
		case 1:
			m.Rel[i] = lp.GE
			m.B[i] = float64(-rng.Intn(n))
		default:
			m.Rel[i] = lp.LE
			m.B[i] = float64(rng.Intn(n))
		}
	}
	return m
}
