package ilp

// Branching rules. The search asks the rule to pick a column among the
// fractional integer variables of a node relaxation; rules may consult
// child relaxations (strong branching) through the search's worker pool.
// All rule state updates happen at deterministic commit points, so a rule
// makes identical decisions at any worker count.

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/lp"
)

const (
	// pcReliability: a variable's pseudo-costs are trusted once it has
	// this many observations (strong branching fills the gap before).
	pcReliability = 4
	// pcStrongCands caps strong-branching candidates per node.
	pcStrongCands = 8
	// pcStrongLPBudget caps total strong-branching LP solves per search.
	pcStrongLPBudget = 768
	// pcEps floors degradation estimates (dual degeneracy yields zeros).
	pcEps = 1e-6
	// pcMu weighs max vs min child degradation in the score.
	pcMu = 1.0 / 6.0
)

// pickResult is a branching decision. preDown/preUp carry child
// relaxations already solved during strong branching (reusable by the
// search, nil otherwise); downInfeas/upInfeas mark children proven
// infeasible, which the search then never expands.
type pickResult struct {
	col                  int
	preDown, preUp       *lp.Result
	downInfeas, upInfeas bool
}

type brancher interface {
	name() string
	pick(sr *search, nd *pnode, r *lp.Result, cands []int) pickResult
	// observe records the relaxation degradation of a committed child:
	// dir is -1 (down) or +1 (up), frac the distance the branch moved
	// the variable, parentObj/childObj the two relaxation objectives.
	observe(col int, dir int8, frac, parentObj, childObj float64)
}

func newBrancher(rule string, n int) (brancher, error) {
	switch rule {
	case "", "pseudocost":
		return newPseudoCost(n), nil
	case "mostfrac":
		return mostFractional{}, nil
	}
	return nil, fmt.Errorf("ilp: unknown branching rule %q (want pseudocost or mostfrac)", rule)
}

// mostFractional picks the variable farthest from integrality (the
// pre-rebuild baseline rule). Ties break to the lowest column.
type mostFractional struct{}

func (mostFractional) name() string { return "mostfrac" }

func (mostFractional) pick(_ *search, _ *pnode, r *lp.Result, cands []int) pickResult {
	best, worst := cands[0], 0.0
	for _, j := range cands {
		f := math.Abs(r.X[j] - math.Round(r.X[j]))
		if f > worst {
			worst = f
			best = j
		}
	}
	return pickResult{col: best}
}

func (mostFractional) observe(int, int8, float64, float64, float64) {}

// pseudoCost estimates per-variable objective degradation from observed
// branchings, seeded by strong branching until a variable is reliable.
type pseudoCost struct {
	down, up   []float64 // summed unit degradations per column
	nDown, nUp []int
	sumDown    float64 // global fallbacks for uninitialized columns
	sumUp      float64
	cntDown    int
	cntUp      int
}

func newPseudoCost(n int) *pseudoCost {
	return &pseudoCost{
		down:  make([]float64, n),
		up:    make([]float64, n),
		nDown: make([]int, n),
		nUp:   make([]int, n),
	}
}

func (p *pseudoCost) name() string { return "pseudocost" }

func (p *pseudoCost) observe(col int, dir int8, frac, parentObj, childObj float64) {
	d := childObj - parentObj
	if d < 0 {
		d = 0
	}
	unit := d / math.Max(frac, pcEps)
	if dir < 0 {
		p.down[col] += unit
		p.nDown[col]++
		p.sumDown += unit
		p.cntDown++
	} else {
		p.up[col] += unit
		p.nUp[col]++
		p.sumUp += unit
		p.cntUp++
	}
}

// unitCosts returns the per-unit degradation estimates for a column,
// falling back to the global average (then 1) when uninitialized.
func (p *pseudoCost) unitCosts(col int) (pcDown, pcUp float64) {
	switch {
	case p.nDown[col] > 0:
		pcDown = p.down[col] / float64(p.nDown[col])
	case p.cntDown > 0:
		pcDown = p.sumDown / float64(p.cntDown)
	default:
		pcDown = 1
	}
	switch {
	case p.nUp[col] > 0:
		pcUp = p.up[col] / float64(p.nUp[col])
	case p.cntUp > 0:
		pcUp = p.sumUp / float64(p.cntUp)
	default:
		pcUp = 1
	}
	return pcDown, pcUp
}

func (p *pseudoCost) pick(sr *search, nd *pnode, r *lp.Result, cands []int) pickResult {
	// Reliability initialization: strong-branch the least-known, most
	// fractional candidates while the LP budget lasts.
	var strong []int
	if sr.strongLPs < pcStrongLPBudget {
		for _, j := range cands {
			if p.nDown[j]+p.nUp[j] < pcReliability {
				strong = append(strong, j)
			}
		}
		sort.Slice(strong, func(a, b int) bool {
			fa := math.Abs(r.X[strong[a]] - math.Round(r.X[strong[a]]))
			fb := math.Abs(r.X[strong[b]] - math.Round(r.X[strong[b]]))
			if fa != fb {
				return fa > fb
			}
			return strong[a] < strong[b]
		})
		if len(strong) > pcStrongCands {
			strong = strong[:pcStrongCands]
		}
		if room := (pcStrongLPBudget - sr.strongLPs) / 2; len(strong) > room {
			strong = strong[:room]
		}
	}
	outs := sr.strongBranch(nd, strong, r)
	for i, j := range strong {
		o := &outs[i]
		f := r.X[j] - math.Floor(r.X[j])
		if o.downSolved && o.down.Status == lp.Optimal {
			p.observe(j, -1, f, r.Obj, o.down.Obj)
		}
		if o.upSolved && o.up.Status == lp.Optimal {
			p.observe(j, +1, 1-f, r.Obj, o.up.Obj)
		}
	}

	// A strong-branched candidate with an infeasible child halves the
	// tree for free: take the first such column.
	for i, j := range strong {
		o := &outs[i]
		dInf := o.downSolved && o.down.Status == lp.Infeasible
		uInf := o.upSolved && o.up.Status == lp.Infeasible
		if dInf || uInf {
			return pickResult{
				col:        j,
				preDown:    o.optResult(o.down, o.downSolved),
				preUp:      o.optResult(o.up, o.upSolved),
				downInfeas: dInf,
				upInfeas:   uInf,
			}
		}
	}

	// Score: blended min/max of the estimated child degradations.
	best, bestScore := cands[0], math.Inf(-1)
	for _, j := range cands {
		f := r.X[j] - math.Floor(r.X[j])
		pcD, pcU := p.unitCosts(j)
		qD := math.Max(pcD, pcEps) * f
		qU := math.Max(pcU, pcEps) * (1 - f)
		lo, hi := qD, qU
		if lo > hi {
			lo, hi = hi, lo
		}
		score := (1-pcMu)*lo + pcMu*hi
		if score > bestScore {
			bestScore = score
			best = j
		}
	}
	pr := pickResult{col: best}
	for i, j := range strong {
		if j == best {
			o := &outs[i]
			pr.preDown = o.optResult(o.down, o.downSolved)
			pr.preUp = o.optResult(o.up, o.upSolved)
		}
	}
	return pr
}

// strongOut is one candidate's pair of child relaxations.
type strongOut struct {
	down, up             lp.Result
	downSolved, upSolved bool
	downErr, upErr       error
}

// optResult returns a reusable pointer when the child solved to
// optimality (other statuses are not cacheable as node results).
func (o *strongOut) optResult(r lp.Result, solved bool) *lp.Result {
	if solved && r.Status == lp.Optimal {
		c := r
		return &c
	}
	return nil
}
