// Package ilp solves (mixed) integer linear programs by branch and bound
// over the lp simplex. It provides what the paper used lp_solve for: the
// exact FBB allocation. Like the paper's runs — where the ILP "did not
// converge in a specified amount of time" on the two largest designs — the
// solver takes node and wall-clock budgets and reports the best incumbent
// with its proven bound when a budget expires.
package ilp

import (
	"errors"
	"math"
	"time"

	"repro/internal/lp"
)

// Model is an ILP: an LP plus integrality flags per variable.
type Model struct {
	lp.Problem
	// Integer marks the integrality-constrained variables; nil means all.
	Integer []bool
}

// Status reports the outcome.
type Status uint8

// Outcomes of Solve.
const (
	// OptimalProven: the incumbent is optimal.
	OptimalProven Status = iota
	// FeasibleBudget: a budget expired; the incumbent is feasible but not
	// proven optimal (Result.BoundObj tells how far it could be).
	FeasibleBudget
	// InfeasibleProven: no integer point satisfies the constraints.
	InfeasibleProven
	// NoSolution: a budget expired before any integer solution was found.
	NoSolution
	// RelaxUnbounded: the LP relaxation is unbounded.
	RelaxUnbounded
)

// String implements fmt.Stringer.
func (s Status) String() string {
	switch s {
	case OptimalProven:
		return "optimal"
	case FeasibleBudget:
		return "feasible(budget)"
	case InfeasibleProven:
		return "infeasible"
	case NoSolution:
		return "no-solution(budget)"
	case RelaxUnbounded:
		return "unbounded"
	}
	return "unknown"
}

// Options tune the search.
type Options struct {
	// TimeLimit bounds wall-clock time (0 = none).
	TimeLimit time.Duration
	// NodeLimit bounds explored nodes (0 = 1<<20).
	NodeLimit int
	// WarmObj primes the incumbent objective (e.g. from a heuristic);
	// use with WarmX. Zero values mean no warm start.
	WarmObj float64
	WarmX   []float64
	// HasWarm marks WarmObj/WarmX as valid.
	HasWarm bool
}

// Result of a solve.
type Result struct {
	Status Status
	// X and Obj describe the incumbent (valid unless NoSolution).
	X   []float64
	Obj float64
	// BoundObj is the proven lower bound on the optimum.
	BoundObj float64
	// Nodes explored; Elapsed wall time.
	Nodes   int
	Elapsed time.Duration
}

const intTol = 1e-6

type fix struct {
	j int
	v float64
}

type node struct {
	fixes []fix
	// bound is the parent's LP objective: a lower bound on this node.
	bound float64
}

// Solve runs branch and bound.
func Solve(m *Model, opts Options) (Result, error) {
	if err := m.Problem.Validate(); err != nil {
		return Result{}, err
	}
	n := len(m.C)
	isInt := m.Integer
	if isInt == nil {
		isInt = make([]bool, n)
		for j := range isInt {
			isInt[j] = true
		}
	} else if len(isInt) != n {
		return Result{}, errors.New("ilp: Integer length mismatch")
	}

	nodeLimit := opts.NodeLimit
	if nodeLimit <= 0 {
		nodeLimit = 1 << 20
	}
	//lint:allow detrand opts.TimeLimit is an explicit caller-chosen wall-clock budget; ROADMAP item 3 (deterministic parallel B&B) replaces it with node/work budgets
	start := time.Now()
	deadline := time.Time{}
	if opts.TimeLimit > 0 {
		deadline = start.Add(opts.TimeLimit)
	}

	res := Result{Obj: math.Inf(1), BoundObj: math.Inf(-1)}
	if opts.HasWarm {
		res.Obj = opts.WarmObj
		res.X = append([]float64(nil), opts.WarmX...)
	}

	// Base bounds (copied per node with fixes applied).
	baseL := make([]float64, n)
	baseU := make([]float64, n)
	for j := 0; j < n; j++ {
		baseL[j] = lowerOf(&m.Problem, j)
		baseU[j] = upperOf(&m.Problem, j)
	}

	stack := []node{{bound: math.Inf(-1)}}
	rootSolved := false
	anyPrunedByBudget := false

	for len(stack) > 0 {
		//lint:allow detrand deadline pruning only fires when the caller opted into a wall-clock TimeLimit; Status reports the truncation
		if res.Nodes >= nodeLimit || (!deadline.IsZero() && time.Now().After(deadline)) {
			anyPrunedByBudget = true
			break
		}
		nd := stack[len(stack)-1]
		stack = stack[:len(stack)-1]

		// Bound pruning against the incumbent.
		if nd.bound >= res.Obj-1e-9 {
			continue
		}

		// Node LP.
		sub := m.Problem
		L := append([]float64(nil), baseL...)
		U := append([]float64(nil), baseU...)
		for _, f := range nd.fixes {
			L[f.j], U[f.j] = f.v, f.v
		}
		sub.L, sub.U = L, U
		res.Nodes++
		r, err := lp.Solve(&sub)
		if err != nil {
			return Result{}, err
		}
		switch r.Status {
		case lp.Infeasible:
			continue
		case lp.Unbounded:
			if !rootSolved {
				res.Status = RelaxUnbounded
				res.Elapsed = time.Since(start) //lint:allow detrand Elapsed is reporting-only telemetry, never an input to the solve
				return res, nil
			}
			continue
		case lp.IterLimit:
			// Treat as unpruned but unusable; be conservative.
			anyPrunedByBudget = true
			continue
		}
		if !rootSolved {
			rootSolved = true
			res.BoundObj = r.Obj
		}
		if r.Obj >= res.Obj-1e-9 {
			continue
		}

		// Most fractional integer variable.
		branchVar, worst := -1, intTol
		for j := 0; j < n; j++ {
			if !isInt[j] {
				continue
			}
			f := math.Abs(r.X[j] - math.Round(r.X[j]))
			if f > worst {
				worst = f
				branchVar = j
			}
		}
		if branchVar < 0 {
			// Integer feasible: round off the noise and accept.
			x := append([]float64(nil), r.X...)
			for j := 0; j < n; j++ {
				if isInt[j] {
					x[j] = math.Round(x[j])
				}
			}
			obj := 0.0
			for j := 0; j < n; j++ {
				obj += m.C[j] * x[j]
			}
			if obj < res.Obj {
				res.Obj = obj
				res.X = x
			}
			continue
		}

		// Branch: child with the nearer value explored first (pushed
		// last). Both inherit this node's LP objective as their bound.
		lo := math.Floor(r.X[branchVar])
		hi := lo + 1
		down := node{fixes: appendFix(nd.fixes, fix{branchVar, lo}), bound: r.Obj}
		up := node{fixes: appendFix(nd.fixes, fix{branchVar, hi}), bound: r.Obj}
		if clampOK(baseL, baseU, branchVar, lo) && clampOK(baseL, baseU, branchVar, hi) {
			if r.X[branchVar]-lo > 0.5 {
				stack = append(stack, down, up)
			} else {
				stack = append(stack, up, down)
			}
		} else if clampOK(baseL, baseU, branchVar, lo) {
			stack = append(stack, down)
		} else if clampOK(baseL, baseU, branchVar, hi) {
			stack = append(stack, up)
		}
	}

	res.Elapsed = time.Since(start) //lint:allow detrand Elapsed is reporting-only telemetry, never an input to the solve
	// Remaining frontier contributes to the proven bound.
	frontier := res.Obj
	for _, nd := range stack {
		if nd.bound < frontier {
			frontier = nd.bound
		}
	}
	if len(stack) == 0 && !anyPrunedByBudget {
		if math.IsInf(res.Obj, 1) {
			res.Status = InfeasibleProven
			return res, nil
		}
		res.Status = OptimalProven
		res.BoundObj = res.Obj
		return res, nil
	}
	if math.IsInf(res.Obj, 1) {
		res.Status = NoSolution
	} else {
		res.Status = FeasibleBudget
		if frontier > res.BoundObj {
			res.BoundObj = frontier
		}
	}
	return res, nil
}

func appendFix(fs []fix, f fix) []fix {
	out := make([]fix, len(fs)+1)
	copy(out, fs)
	out[len(fs)] = f
	return out
}

func clampOK(l, u []float64, j int, v float64) bool {
	return v >= l[j]-1e-9 && v <= u[j]+1e-9
}

func lowerOf(p *lp.Problem, j int) float64 {
	if p.L == nil {
		return 0
	}
	return p.L[j]
}

func upperOf(p *lp.Problem, j int) float64 {
	if p.U == nil {
		return math.Inf(1)
	}
	return p.U[j]
}

// Gap returns the relative optimality gap of a result (0 when proven).
func (r *Result) Gap() float64 {
	if r.Status == OptimalProven {
		return 0
	}
	if math.IsInf(r.Obj, 1) || math.IsInf(r.BoundObj, -1) {
		return math.Inf(1)
	}
	den := math.Abs(r.Obj)
	if den < 1e-12 {
		den = 1e-12
	}
	return (r.Obj - r.BoundObj) / den
}
