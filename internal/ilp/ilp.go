// Package ilp solves (mixed) integer linear programs by branch and bound
// over the lp simplex. It provides what the paper used lp_solve for: the
// exact FBB allocation. The engine runs a presolve pass (bound tightening,
// variable fixing, redundant-row elimination), a pluggable branching rule
// (pseudo-cost with reliability initialization, or most-fractional), and a
// deterministically parallel tree search: worker goroutines speculatively
// solve node relaxations ahead of a sequential commit order, so the result
// — incumbent, objective, status, node count — is byte-identical at any
// worker count. Like the paper's runs, where the ILP "did not converge in
// a specified amount of time" on the two largest designs, the solver takes
// a node budget (deterministic) or a caller-wired interrupt (wall-clock
// opt-out) and reports the best incumbent with its proven bound when the
// budget expires.
package ilp

import (
	"errors"
	"math"

	"repro/internal/lp"
)

// Model is an ILP: an LP plus integrality flags per variable.
type Model struct {
	lp.Problem
	// Integer marks the integrality-constrained variables; nil means all.
	Integer []bool
}

// Status reports the outcome.
type Status uint8

// Outcomes of Solve.
const (
	// OptimalProven: the incumbent is optimal.
	OptimalProven Status = iota
	// FeasibleBudget: a budget expired; the incumbent is feasible but not
	// proven optimal (Result.BoundObj tells how far it could be).
	FeasibleBudget
	// InfeasibleProven: no integer point satisfies the constraints.
	InfeasibleProven
	// NoSolution: a budget expired before any integer solution was found.
	NoSolution
	// RelaxUnbounded: the LP relaxation is unbounded.
	RelaxUnbounded
)

// String implements fmt.Stringer.
func (s Status) String() string {
	switch s {
	case OptimalProven:
		return "optimal"
	case FeasibleBudget:
		return "feasible(budget)"
	case InfeasibleProven:
		return "infeasible"
	case NoSolution:
		return "no-solution(budget)"
	case RelaxUnbounded:
		return "unbounded"
	}
	return "unknown"
}

// Options tune the search.
type Options struct {
	// NodeLimit bounds committed branch-and-bound nodes (0 = 1<<20).
	// Node budgets are the deterministic truncation mechanism: the same
	// limit commits the same tree at any Workers count.
	NodeLimit int
	// Workers is the tree-search parallelism (0 = GOMAXPROCS). Workers
	// speculatively solve node relaxations ahead of the deterministic
	// commit order; the committed result is identical at any value.
	Workers int
	// Branching selects the branching rule: "pseudocost" (default, with
	// reliability initialization by strong branching) or "mostfrac".
	Branching string
	// NoPresolve skips the presolve reductions (for ablations).
	NoPresolve bool
	// Interrupt, when non-nil, is polled between node commits; once it
	// returns true the search stops and reports FeasibleBudget (or
	// NoSolution). This is the wall-clock opt-out: callers wire a
	// deadline here and accept nondeterministic truncation. Leave nil
	// for deterministic runs.
	Interrupt func() bool
	// WarmObj primes the incumbent objective (e.g. from a heuristic);
	// use with WarmX. Zero values mean no warm start.
	WarmObj float64
	WarmX   []float64
	// HasWarm marks WarmObj/WarmX as valid.
	HasWarm bool
}

// Result of a solve.
type Result struct {
	Status Status
	// X and Obj describe the incumbent (valid unless NoSolution).
	X   []float64
	Obj float64
	// BoundObj is the proven lower bound on the optimum.
	BoundObj float64
	// Nodes counts committed branch-and-bound nodes. Under a NodeLimit
	// budget it is identical at any Workers count.
	Nodes int
	// Presolve reductions: variables fixed, rows eliminated, bound
	// tightenings applied.
	PresolveFixedVars   int
	PresolveDroppedRows int
	PresolveTightened   int
	// Branching echoes the rule that ran; StrongLPs counts the strong-
	// branching LP solves spent on reliability initialization (these are
	// not part of Nodes).
	Branching string
	StrongLPs int
}

const intTol = 1e-6

// Solve runs presolve then a deterministic parallel branch and bound.
func Solve(m *Model, opts Options) (Result, error) {
	if err := m.Problem.Validate(); err != nil {
		return Result{}, err
	}
	n := len(m.C)
	isInt := m.Integer
	if isInt == nil {
		isInt = make([]bool, n)
		for j := range isInt {
			isInt[j] = true
		}
	} else if len(isInt) != n {
		return Result{}, errors.New("ilp: Integer length mismatch")
	}

	nodeLimit := opts.NodeLimit
	if nodeLimit <= 0 {
		nodeLimit = 1 << 20
	}

	res := Result{Obj: math.Inf(1), BoundObj: math.Inf(-1)}
	if opts.HasWarm {
		res.Obj = opts.WarmObj
		res.X = append([]float64(nil), opts.WarmX...)
	}

	rd := reduce(m, isInt, !opts.NoPresolve)
	res.PresolveFixedVars = rd.nFixed
	res.PresolveDroppedRows = rd.nRows
	res.PresolveTightened = rd.nBounds
	if !rd.feasible {
		res.Status = InfeasibleProven
		res.X = nil
		res.Obj = math.Inf(1)
		return res, nil
	}

	br, err := newBrancher(opts.Branching, len(rd.m.C))
	if err != nil {
		return Result{}, err
	}
	res.Branching = br.name()

	if len(rd.m.C) == 0 {
		// Presolve fixed every variable: the model is solved outright.
		obj := rd.offset
		if obj < res.Obj {
			res.Obj = obj
			res.X = rd.postsolve(nil)
		}
		res.Status = OptimalProven
		res.BoundObj = res.Obj
		return res, nil
	}

	sr := newSearch(rd, br, opts.Workers)
	if err := sr.run(&res, nodeLimit, opts.Interrupt); err != nil {
		return Result{}, err
	}
	return res, nil
}

func lowerOf(p *lp.Problem, j int) float64 {
	if p.L == nil {
		return 0
	}
	return p.L[j]
}

func upperOf(p *lp.Problem, j int) float64 {
	if p.U == nil {
		return math.Inf(1)
	}
	return p.U[j]
}

// Gap returns the relative optimality gap of a result (0 when proven).
func (r *Result) Gap() float64 {
	if r.Status == OptimalProven {
		return 0
	}
	if math.IsInf(r.Obj, 1) || math.IsInf(r.BoundObj, -1) {
		return math.Inf(1)
	}
	den := math.Abs(r.Obj)
	if den < 1e-12 {
		den = 1e-12
	}
	return (r.Obj - r.BoundObj) / den
}
