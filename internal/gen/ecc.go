package gen

import (
	"repro/internal/cell"
	"repro/internal/netlist"
)

// ECC32 generates the c1355-class circuit: a 32-bit single-error-correcting
// decoder built on cross parity. The 32 data bits are arranged as a 4x8
// grid; four row-parity and eight column-parity check bits accompany the
// data. A single flipped data bit produces exactly one row syndrome and one
// column syndrome, whose conjunction flips the bit back.
//
// Inputs:  d0..d31 (data), cr0..cr3 (row checks), cc0..cc7 (column checks)
// Outputs: o0..o31 (corrected data), err (any syndrome active)
func ECC32(lib *cell.Library) *netlist.Design {
	b := netlist.NewBuilder("c1355", lib)
	d := b.PIBus("d", 32)
	cr := b.PIBus("cr", 4)
	cc := b.PIBus("cc", 8)

	// Row and column parities of the received data.
	rowSyn := make([]netlist.Signal, 4)
	for r := 0; r < 4; r++ {
		rowSyn[r] = b.Xor(b.XorTree(d[r*8:(r+1)*8]), cr[r])
	}
	colSyn := make([]netlist.Signal, 8)
	for c := 0; c < 8; c++ {
		col := []netlist.Signal{d[c], d[8+c], d[16+c], d[24+c]}
		colSyn[c] = b.Xor(b.XorTree(col), cc[c])
	}

	// Correction: bit (r,c) flips iff both its row and column syndromes
	// fire.
	out := make([]netlist.Signal, 32)
	for r := 0; r < 4; r++ {
		for c := 0; c < 8; c++ {
			i := r*8 + c
			flip := b.And(rowSyn[r], colSyn[c])
			out[i] = b.Xor(d[i], flip)
		}
	}
	b.OutputBus("o", out)
	b.Output("err", b.Or(b.Or(rowSyn...), b.Or(colSyn...)))

	b.SizeDrives()
	return b.MustBuild()
}
