// Package gen generates the benchmark circuits of the paper's Table 1.
//
// The original evaluation used five ISCAS-85 benchmarks and three industrial
// SoC modules, none of which can be redistributed. Each generator here is a
// clean-room functional equivalent of the same circuit class, parameterized
// to land close to the paper's reported gate count, and verified against a
// behavioural model by logic simulation (see the package tests):
//
//	c1355    32-bit single-error-correcting decoder (cross parity)
//	c3540    12-bit two-adder ALU with BCD stage (ALU class, 842 gates)
//	c5315    dual 9-bit ALU with parity and output selection
//	c7552    32-bit adder/magnitude-comparator with parity
//	adder128 registered 128-bit adder with carry-skip groups
//	c6288    16x16 array multiplier (the many-critical-paths regime)
//	industrial1..3  synthetic SoC modules (datapath + control mix)
//
// All generators are deterministic.
package gen

import (
	"fmt"
	"sort"

	"repro/internal/cell"
	"repro/internal/netlist"
)

// Benchmark describes one generated design and its Table 1 anchor data.
type Benchmark struct {
	// Name is the paper's benchmark name.
	Name string
	// PaperGates and PaperRows are the gate/row counts of Table 1, used
	// to validate that the generated stand-ins are comparable.
	PaperGates int
	PaperRows  int
	// Industrial marks the SoC modules for which the paper reports no
	// ILP results (did not converge).
	Industrial bool
	// Build generates the design on the given library.
	Build func(lib *cell.Library) *netlist.Design
}

// All returns the nine Table 1 benchmarks in the paper's order.
func All() []Benchmark {
	return []Benchmark{
		{Name: "c1355", PaperGates: 439, PaperRows: 13, Build: ECC32},
		{Name: "c3540", PaperGates: 842, PaperRows: 15, Build: ALU3540},
		{Name: "c5315", PaperGates: 1308, PaperRows: 23, Build: DualALU5315},
		{Name: "c7552", PaperGates: 1666, PaperRows: 26, Build: AddCmp7552},
		{Name: "adder128", PaperGates: 2026, PaperRows: 28, Build: Adder128},
		{Name: "c6288", PaperGates: 2740, PaperRows: 33, Build: Mult16},
		{Name: "industrial1", PaperGates: 4219, PaperRows: 41, Industrial: true,
			Build: func(lib *cell.Library) *netlist.Design { return Industrial(lib, "industrial1", 4219, 1) }},
		{Name: "industrial2", PaperGates: 10464, PaperRows: 63, Industrial: true,
			Build: func(lib *cell.Library) *netlist.Design { return Industrial(lib, "industrial2", 10464, 2) }},
		{Name: "industrial3", PaperGates: 23898, PaperRows: 94, Industrial: true,
			Build: func(lib *cell.Library) *netlist.Design { return Industrial(lib, "industrial3", 23898, 3) }},
	}
}

// Names returns the benchmark names in Table 1 order.
func Names() []string {
	all := All()
	names := make([]string, len(all))
	for i, b := range all {
		names[i] = b.Name
	}
	return names
}

// ByName returns the named benchmark.
func ByName(name string) (Benchmark, error) {
	for _, b := range All() {
		if b.Name == name {
			return b, nil
		}
	}
	known := Names()
	sort.Strings(known)
	return Benchmark{}, fmt.Errorf("gen: unknown benchmark %q (known: %v)", name, known)
}

// Build generates the named benchmark on the library.
func Build(name string, lib *cell.Library) (*netlist.Design, error) {
	b, err := ByName(name)
	if err != nil {
		return nil, err
	}
	return b.Build(lib), nil
}
