package gen

import (
	"repro/internal/cell"
	"repro/internal/netlist"
)

// ALUConfig parameterizes the generated ALU slices.
type ALUConfig struct {
	// Width is the datapath width in bits.
	Width int
	// BarrelStages is the number of shifter stages (shift amounts up to
	// 2^stages-1, taken from the low bits of operand b). Zero disables
	// the shifter (SHL becomes a fixed shift by one).
	BarrelStages int
	// BCD adds a decimal-adjust stage on the adder output (c3540 class).
	BCD bool
	// Parity adds a parity tree over the result.
	Parity bool
	// Compare adds an unsigned a<b flag derived from the subtractor.
	Compare bool
}

// ALU opcodes (3-bit op input).
const (
	aluADD = 0 // r = a + b + cin
	aluSUB = 1 // r = a - b (two's complement; cout = no-borrow)
	aluAND = 2
	aluOR  = 3
	aluXOR = 4
	aluSHL = 5 // r = a << shamt, zero fill
	aluINC = 6 // r = a + 1
	aluDEC = 7 // r = a - 1
)

// aluPorts collects the signals of one generated ALU slice.
type aluPorts struct {
	a, b, op []netlist.Signal
	cin      netlist.Signal
	r        []netlist.Signal
	zero     netlist.Signal
	cout     netlist.Signal
	parity   netlist.Signal // valid when cfg.Parity
	ltu      netlist.Signal // valid when cfg.Compare
	bcd      []netlist.Signal
}

// buildALU constructs one ALU slice with inputs named <prefix>a*, <prefix>b*,
// <prefix>op*, <prefix>cin.
func buildALU(b *netlist.Builder, prefix string, cfg ALUConfig) aluPorts {
	w := cfg.Width
	p := aluPorts{
		a:   b.PIBus(prefix+"a", w),
		b:   b.PIBus(prefix+"b", w),
		op:  b.PIBus(prefix+"op", 3),
		cin: b.PI(prefix + "cin"),
	}

	// Opcode decoder: dec[k] is high when op == k.
	nop := make([]netlist.Signal, 3)
	for i := range nop {
		nop[i] = b.Not(p.op[i])
	}
	dec := make([]netlist.Signal, 8)
	for k := 0; k < 8; k++ {
		ins := make([]netlist.Signal, 3)
		for i := 0; i < 3; i++ {
			if k&(1<<i) != 0 {
				ins[i] = p.op[i]
			} else {
				ins[i] = nop[i]
			}
		}
		dec[k] = b.And(ins...)
	}

	// Adder 1: a + (b^isSub) + (isSub ? 1 : cin), serving ADD and SUB.
	isSub := dec[aluSUB]
	bx := make([]netlist.Signal, w)
	for i := range bx {
		bx[i] = b.Xor(p.b[i], isSub)
	}
	cinEff := b.Mux(isSub, p.cin, netlist.Const(true))
	sum1, cout1 := b.RippleAdder(p.a, bx, cinEff)

	// Adder 2: a + (isDec ? all-ones : 0) + isInc, serving INC and DEC.
	isDec := dec[aluDEC]
	decBus := make([]netlist.Signal, w)
	for i := range decBus {
		decBus[i] = isDec
	}
	sum2, cout2 := b.RippleAdder(p.a, decBus, dec[aluINC])

	// Logic unit.
	andR := make([]netlist.Signal, w)
	orR := make([]netlist.Signal, w)
	xorR := make([]netlist.Signal, w)
	for i := 0; i < w; i++ {
		andR[i] = b.And(p.a[i], p.b[i])
		orR[i] = b.Or(p.a[i], p.b[i])
		xorR[i] = b.Xor(p.a[i], p.b[i])
	}

	// Shifter: barrel over the low bits of b, or a fixed shift by one.
	shl := append([]netlist.Signal(nil), p.a...)
	if cfg.BarrelStages <= 0 {
		copy(shl[1:], p.a)
		shl[0] = netlist.Const(false)
	} else {
		for s := 0; s < cfg.BarrelStages; s++ {
			shift := 1 << s
			next := make([]netlist.Signal, w)
			for i := 0; i < w; i++ {
				from := netlist.Const(false)
				if i-shift >= 0 {
					from = shl[i-shift]
				}
				next[i] = b.Mux(p.b[s], shl[i], from)
			}
			shl = next
		}
	}

	// Result selection: AND-OR mux over the eight opcode lines.
	p.r = make([]netlist.Signal, w)
	for i := 0; i < w; i++ {
		terms := []netlist.Signal{
			b.And(dec[aluADD], sum1[i]),
			b.And(dec[aluSUB], sum1[i]),
			b.And(dec[aluAND], andR[i]),
			b.And(dec[aluOR], orR[i]),
			b.And(dec[aluXOR], xorR[i]),
			b.And(dec[aluSHL], shl[i]),
			b.And(dec[aluINC], sum2[i]),
			b.And(dec[aluDEC], sum2[i]),
		}
		p.r[i] = b.Or(terms...)
	}

	// Flags.
	p.zero = b.Nor(p.r...)
	arith1 := b.Or(dec[aluADD], dec[aluSUB])
	arith2 := b.Or(dec[aluINC], dec[aluDEC])
	p.cout = b.Or(b.And(arith1, cout1), b.And(arith2, cout2))
	if cfg.Parity {
		p.parity = b.XorTree(p.r)
	}
	if cfg.Compare {
		// Unsigned a<b: borrow out of a-b, i.e. NOT cout of a+~b+1.
		// Valid when op == SUB (cinEff forces +1 there).
		p.ltu = b.Not(cout1)
	}

	// BCD decimal adjust over the adder-1 sum: each nibble above 9 gets
	// +6 (carry chains between nibbles are the caller's concern; this is
	// the per-digit adjust stage found in BCD ALUs).
	if cfg.BCD {
		for n := 0; n+3 < w; n += 4 {
			nib := sum1[n : n+4]
			gt9 := b.And(nib[3], b.Or(nib[2], nib[1]))
			addend := []netlist.Signal{netlist.Const(false), gt9, gt9, netlist.Const(false)}
			adj, _ := b.RippleAdder(nib, addend, netlist.Const(false))
			p.bcd = append(p.bcd, adj...)
		}
	}
	return p
}

// ALU3540 generates the c3540-class circuit: a 12-bit ALU with two adders, a
// two-stage barrel shifter, BCD adjust, parity and compare flags. The width
// and feature set are chosen so the mapped gate count lands at the paper's
// 842 gates for c3540 (an 8-bit ALU with BCD arithmetic and more control
// modes than this one; the wider datapath compensates).
func ALU3540(lib *cell.Library) *netlist.Design {
	b := netlist.NewBuilder("c3540", lib)
	p := buildALU(b, "", ALUConfig{
		Width:        12,
		BarrelStages: 2,
		BCD:          true,
		Parity:       true,
		Compare:      true,
	})
	b.OutputBus("r", p.r)
	b.Output("zero", p.zero)
	b.Output("cout", p.cout)
	b.Output("parity", p.parity)
	b.Output("ltu", p.ltu)
	b.OutputBus("bcd", p.bcd)
	b.SizeDrives()
	return b.MustBuild()
}

// DualALU5315 generates the c5315-class circuit: two 9-bit ALU slices whose
// results are merged by a select input, with parity over both operands and
// the merged result (c5315 is a 9-bit ALU that computes two arithmetic
// operations in parallel with parity checking).
func DualALU5315(lib *cell.Library) *netlist.Design {
	b := netlist.NewBuilder("c5315", lib)
	cfg := ALUConfig{Width: 9, BarrelStages: 3, Parity: true, Compare: true}
	u := buildALU(b, "u", cfg)
	v := buildALU(b, "v", cfg)

	sel := b.PI("sel")
	merged := b.MuxBus(sel, u.r, v.r)
	b.OutputBus("r", merged)
	b.OutputBus("ur", u.r)
	b.OutputBus("vr", v.r)
	b.Output("uzero", u.zero)
	b.Output("vzero", v.zero)
	b.Output("ucout", u.cout)
	b.Output("vcout", v.cout)
	b.Output("uparity", u.parity)
	b.Output("vparity", v.parity)
	b.Output("ultu", u.ltu)
	b.Output("vltu", v.ltu)
	b.Output("mparity", b.XorTree(merged))
	b.Output("mzero", b.Nor(merged...))

	// Operand parity checkers (c5315 carries parity through its datapath).
	b.Output("apar", b.XorTree(append(append([]netlist.Signal{}, u.a...), v.a...)))
	b.Output("bpar", b.XorTree(append(append([]netlist.Signal{}, u.b...), v.b...)))

	b.SizeDrives()
	return b.MustBuild()
}
