package gen

import (
	"repro/internal/cell"
	"repro/internal/netlist"
)

// Mult16 generates the c6288-class circuit: a 16x16 array multiplier. The
// partial-product array is accumulated row by row with ripple-carry adders,
// exactly the structure that gives c6288 its hallmark timing profile: a
// large number of nearly-balanced critical paths through the adder array,
// which in turn produces the largest constraint counts of Table 1.
//
// Inputs:  a0..a15, b0..b15
// Outputs: p0..p31 (the 32-bit product)
func Mult16(lib *cell.Library) *netlist.Design {
	const w = 16
	b := netlist.NewBuilder("c6288", lib)
	a := b.PIBus("a", w)
	x := b.PIBus("b", w)

	// Partial products pp[i][j] = a[j] AND b[i], weight i+j.
	pp := make([][]netlist.Signal, w)
	for i := 0; i < w; i++ {
		pp[i] = make([]netlist.Signal, w)
		for j := 0; j < w; j++ {
			pp[i][j] = b.And(a[j], x[i])
		}
	}

	// Row-by-row accumulation. Invariant: entering round i, acc holds the
	// w+1 bits of weights i-1 .. i+w-1 of the running sum; its lowest bit
	// is final (no later row reaches that weight).
	product := make([]netlist.Signal, 0, 2*w)
	acc := make([]netlist.Signal, w+1)
	copy(acc, pp[0])
	acc[w] = netlist.Const(false)
	for i := 1; i < w; i++ {
		product = append(product, acc[0])
		rest := acc[1 : w+1] // w bits, weights i .. i+w-1
		sum, cout := b.RippleAdder(rest, pp[i], netlist.Const(false))
		acc = append(append(make([]netlist.Signal, 0, w+1), sum...), cout)
	}
	product = append(product, acc...) // weights w-1 .. 2w-1
	b.OutputBus("p", product)

	b.SizeDrives()
	return b.MustBuild()
}
