package gen

import (
	"math/rand"
	"testing"

	"repro/internal/cell"
	"repro/internal/netlist"
)

func lib() *cell.Library { return cell.Default() }

func sim(t *testing.T, d *netlist.Design) *netlist.Simulator {
	t.Helper()
	s, err := netlist.NewSimulator(d)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestGateCountsTrackPaper(t *testing.T) {
	for _, bm := range All() {
		d := bm.Build(lib())
		got := d.NumGates()
		dev := float64(got-bm.PaperGates) / float64(bm.PaperGates)
		t.Logf("%-12s gates=%5d paper=%5d (%+.1f%%)", bm.Name, got, bm.PaperGates, dev*100)
		if dev < -0.15 || dev > 0.15 {
			t.Errorf("%s: %d gates deviates >15%% from paper's %d", bm.Name, got, bm.PaperGates)
		}
	}
}

func TestECC32Corrects(t *testing.T) {
	d := ECC32(lib())
	s := sim(t, d)
	rng := rand.New(rand.NewSource(1))

	// Helper computing the check bits of 32 data bits.
	checks := func(data uint32) (row [4]bool, col [8]bool) {
		for r := 0; r < 4; r++ {
			p := false
			for c := 0; c < 8; c++ {
				p = p != (data&(1<<(r*8+c)) != 0)
			}
			row[r] = p
		}
		for c := 0; c < 8; c++ {
			p := false
			for r := 0; r < 4; r++ {
				p = p != (data&(1<<(r*8+c)) != 0)
			}
			col[c] = p
		}
		return
	}
	apply := func(data uint32, row [4]bool, col [8]bool) {
		if err := s.SetUintInputs("d", 32, uint64(data)); err != nil {
			t.Fatal(err)
		}
		for r := 0; r < 4; r++ {
			s.SetPIByName("cr"+string(rune('0'+r)), row[r])
		}
		for c := 0; c < 8; c++ {
			s.SetPIByName("cc"+string(rune('0'+c)), col[c])
		}
		s.Eval()
	}

	for trial := 0; trial < 32; trial++ {
		data := rng.Uint32()
		row, col := checks(data)

		// Error-free word passes through with err=0.
		apply(data, row, col)
		out, err := s.UintOutputs("o", 32)
		if err != nil {
			t.Fatal(err)
		}
		if uint32(out) != data {
			t.Fatalf("clean word corrupted: in %08x out %08x", data, out)
		}
		if e, _ := s.PO("err"); e {
			t.Fatal("err flag raised on clean word")
		}

		// Any single-bit data error is corrected and flagged.
		bit := rng.Intn(32)
		apply(data^(1<<bit), row, col)
		out, _ = s.UintOutputs("o", 32)
		if uint32(out) != data {
			t.Fatalf("bit %d not corrected: want %08x got %08x", bit, data, out)
		}
		if e, _ := s.PO("err"); !e {
			t.Fatal("err flag not raised on corrupted word")
		}
	}
}

// aluModel mirrors the generated ALU semantics.
func aluModel(w int, a, b uint64, op int, cin bool, stages int) (r uint64, cout bool) {
	mask := uint64(1)<<w - 1
	ci := uint64(0)
	if cin {
		ci = 1
	}
	switch op {
	case aluADD:
		full := a + b + ci
		return full & mask, full > mask
	case aluSUB:
		full := a + (^b & mask) + 1
		return full & mask, full > mask
	case aluAND:
		return a & b & mask, false
	case aluOR:
		return (a | b) & mask, false
	case aluXOR:
		return (a ^ b) & mask, false
	case aluSHL:
		sh := uint(1)
		if stages > 0 {
			sh = uint(b & (1<<stages - 1))
		}
		return (a << sh) & mask, false
	case aluINC:
		full := a + 1
		return full & mask, full > mask
	case aluDEC:
		full := a + mask // a + (2^w - 1) = a - 1 mod 2^w
		return full & mask, full > mask
	}
	panic("bad op")
}

func parity64(v uint64) bool {
	p := false
	for ; v != 0; v &= v - 1 {
		p = !p
	}
	return p
}

func TestALU3540Behaviour(t *testing.T) {
	const w = 12
	d := ALU3540(lib())
	s := sim(t, d)
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 200; trial++ {
		a := rng.Uint64() & (1<<w - 1)
		b := rng.Uint64() & (1<<w - 1)
		op := rng.Intn(8)
		cin := rng.Intn(2) == 1
		s.SetUintInputs("a", w, a)
		s.SetUintInputs("b", w, b)
		s.SetUintInputs("op", 3, uint64(op))
		s.SetPIByName("cin", cin)
		s.Eval()

		wantR, wantCout := aluModel(w, a, b, op, cin, 2)
		gotR, _ := s.UintOutputs("r", w)
		if gotR != wantR {
			t.Fatalf("op=%d a=%03x b=%03x cin=%v: r=%03x want %03x", op, a, b, cin, gotR, wantR)
		}
		if z, _ := s.PO("zero"); z != (wantR == 0) {
			t.Fatalf("op=%d: zero=%v for r=%03x", op, z, wantR)
		}
		if co, _ := s.PO("cout"); co != wantCout {
			t.Fatalf("op=%d a=%03x b=%03x cin=%v: cout=%v want %v", op, a, b, cin, co, wantCout)
		}
		if p, _ := s.PO("parity"); p != parity64(wantR) {
			t.Fatalf("op=%d: parity mismatch", op)
		}
		if op == aluSUB {
			if ltu, _ := s.PO("ltu"); ltu != (a < b) {
				t.Fatalf("a=%03x b=%03x: ltu=%v", a, b, ltu)
			}
		}
		// BCD adjust of the adder-1 sum (a+b+cin or a-b per op).
		sum1, _ := aluModel(w, a, b, map[bool]int{true: aluSUB, false: aluADD}[op == aluSUB], cin, 2)
		if op != aluSUB {
			sum1, _ = aluModel(w, a, b, aluADD, cin, 2)
		}
		bcd, _ := s.UintOutputs("bcd", w)
		for n := 0; n < w/4; n++ {
			nib := (sum1 >> (4 * n)) & 0xF
			want := nib
			if nib > 9 {
				want = (nib + 6) & 0xF
			}
			if got := (bcd >> (4 * n)) & 0xF; got != want {
				t.Fatalf("bcd nibble %d of %03x: got %x want %x", n, sum1, got, want)
			}
		}
	}
}

func TestDualALU5315Behaviour(t *testing.T) {
	const w = 9
	d := DualALU5315(lib())
	s := sim(t, d)
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 150; trial++ {
		ua := rng.Uint64() & (1<<w - 1)
		ub := rng.Uint64() & (1<<w - 1)
		va := rng.Uint64() & (1<<w - 1)
		vb := rng.Uint64() & (1<<w - 1)
		uop, vop := rng.Intn(8), rng.Intn(8)
		sel := rng.Intn(2) == 1
		s.SetUintInputs("ua", w, ua)
		s.SetUintInputs("ub", w, ub)
		s.SetUintInputs("va", w, va)
		s.SetUintInputs("vb", w, vb)
		s.SetUintInputs("uop", 3, uint64(uop))
		s.SetUintInputs("vop", 3, uint64(vop))
		s.SetPIByName("ucin", false)
		s.SetPIByName("vcin", false)
		s.SetPIByName("sel", sel)
		s.Eval()

		wantU, _ := aluModel(w, ua, ub, uop, false, 3)
		wantV, _ := aluModel(w, va, vb, vop, false, 3)
		gotU, _ := s.UintOutputs("ur", w)
		gotV, _ := s.UintOutputs("vr", w)
		if gotU != wantU || gotV != wantV {
			t.Fatalf("slice results: u=%03x/%03x v=%03x/%03x", gotU, wantU, gotV, wantV)
		}
		want := wantU
		if sel {
			want = wantV
		}
		if got, _ := s.UintOutputs("r", w); got != want {
			t.Fatalf("merged result %03x, want %03x (sel=%v)", got, want, sel)
		}
		if p, _ := s.PO("mparity"); p != parity64(want) {
			t.Fatal("merged parity mismatch")
		}
		if p, _ := s.PO("apar"); p != parity64(ua) != parity64(va) == false {
			// apar = parity(ua bits + va bits)
			if p != (parity64(ua) != parity64(va)) {
				t.Fatal("operand parity mismatch")
			}
		}
	}
}

func TestAddCmp7552Behaviour(t *testing.T) {
	const w = 32
	d := AddCmp7552(lib())
	s := sim(t, d)
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 150; trial++ {
		a := rng.Uint64() & (1<<w - 1)
		b := rng.Uint64() & (1<<w - 1)
		if trial%10 == 0 {
			b = a // exercise the equality path
		}
		cin := rng.Intn(2) == 1
		s.SetUintInputs("a", w, a)
		s.SetUintInputs("b", w, b)
		s.SetPIByName("cin", cin)
		s.Eval()

		ci := uint64(0)
		if cin {
			ci = 1
		}
		full := a + b + ci
		gotS, _ := s.UintOutputs("s", w)
		if gotS != full&(1<<w-1) {
			t.Fatalf("sum wrong: %x want %x", gotS, full&(1<<w-1))
		}
		if co, _ := s.PO("cout"); co != (full > 1<<w-1) {
			t.Fatal("cout wrong")
		}
		gotInc, _ := s.UintOutputs("inc", w)
		if gotInc != (a+1)&(1<<w-1) {
			t.Fatal("increment wrong")
		}
		eq, _ := s.PO("eq")
		ltu, _ := s.PO("ltu")
		gtu, _ := s.PO("gtu")
		if eq != (a == b) || ltu != (a < b) || gtu != (a > b) {
			t.Fatalf("compare flags: eq=%v ltu=%v gtu=%v for a=%x b=%x", eq, ltu, gtu, a, b)
		}
		if p, _ := s.PO("apar"); p != parity64(a) {
			t.Fatal("apar wrong")
		}
		if p, _ := s.PO("spar"); p != parity64(gotS) {
			t.Fatal("spar wrong")
		}
	}
}

func TestAdder128Behaviour(t *testing.T) {
	const w = 128
	d := Adder128(lib())
	s := sim(t, d)
	if d.NumDFFs() != w+w+1+w+1 {
		t.Errorf("DFF count = %d, want %d", d.NumDFFs(), 3*w+2)
	}
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 40; trial++ {
		aLo, aHi := rng.Uint64(), rng.Uint64()
		bLo, bHi := rng.Uint64(), rng.Uint64()
		if trial%8 == 0 { // exercise long carry chains
			aLo, aHi = ^uint64(0), ^uint64(0)
		}
		cin := rng.Intn(2) == 1
		s.SetUintInputs("a", 64, aLo)
		s.SetUintInputs("b", 64, bLo)
		for i := 0; i < 64; i++ {
			s.SetPIByName("a"+itoa(64+i), aHi&(1<<i) != 0)
			s.SetPIByName("b"+itoa(64+i), bHi&(1<<i) != 0)
		}
		s.SetPIByName("cin", cin)
		s.Step() // latch operands
		s.Step() // latch result
		s.Eval()

		ci := uint64(0)
		if cin {
			ci = 1
		}
		wantLo := aLo + bLo + ci
		carryMid := uint64(0)
		if wantLo < aLo || (wantLo == aLo && bLo+ci != 0) {
			carryMid = 1
		}
		wantHi := aHi + bHi + carryMid
		carryOut := wantHi < aHi || (wantHi == aHi && bHi+carryMid != 0)

		gotLo, _ := s.UintOutputs("s", 64)
		var gotHi uint64
		for i := 0; i < 64; i++ {
			bit, err := s.PO("s" + itoa(64+i))
			if err != nil {
				t.Fatal(err)
			}
			if bit {
				gotHi |= 1 << i
			}
		}
		if gotLo != wantLo || gotHi != wantHi {
			t.Fatalf("sum wrong: got %016x%016x want %016x%016x", gotHi, gotLo, wantHi, wantLo)
		}
		if co, _ := s.PO("cout"); co != carryOut {
			t.Fatalf("cout = %v, want %v", co, carryOut)
		}
	}
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [4]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}

func TestMult16Behaviour(t *testing.T) {
	d := Mult16(lib())
	s := sim(t, d)
	rng := rand.New(rand.NewSource(6))
	cases := [][2]uint64{{0, 0}, {1, 1}, {65535, 65535}, {65535, 1}, {32768, 2}}
	for trial := 0; trial < 60; trial++ {
		var a, b uint64
		if trial < len(cases) {
			a, b = cases[trial][0], cases[trial][1]
		} else {
			a, b = rng.Uint64()&0xFFFF, rng.Uint64()&0xFFFF
		}
		s.SetUintInputs("a", 16, a)
		s.SetUintInputs("b", 16, b)
		s.Eval()
		got, err := s.UintOutputs("p", 32)
		if err != nil {
			t.Fatal(err)
		}
		if got != a*b {
			t.Fatalf("%d * %d = %d, want %d", a, b, got, a*b)
		}
	}
}

func TestIndustrialDeterministicAndSized(t *testing.T) {
	d1 := Industrial(lib(), "ind", 4219, 1)
	d2 := Industrial(lib(), "ind", 4219, 1)
	if d1.NumGates() != d2.NumGates() {
		t.Fatalf("not deterministic: %d vs %d gates", d1.NumGates(), d2.NumGates())
	}
	if d1.NumGates() != 4219 {
		t.Errorf("gate count = %d, want exactly 4219", d1.NumGates())
	}
	if d1.NumDFFs() == 0 {
		t.Error("industrial module should contain registers")
	}
	d3 := Industrial(lib(), "ind", 4219, 9)
	if d3.NumGates() != 4219 {
		t.Errorf("seed 9: gate count = %d, want 4219", d3.NumGates())
	}
}

func TestByName(t *testing.T) {
	if _, err := ByName("c6288"); err != nil {
		t.Error(err)
	}
	if _, err := ByName("nope"); err == nil {
		t.Error("unknown benchmark accepted")
	}
	if _, err := Build("c1355", lib()); err != nil {
		t.Error(err)
	}
}
