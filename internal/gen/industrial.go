package gen

import (
	"fmt"
	"math/rand"

	"repro/internal/cell"
	"repro/internal/netlist"
)

// Industrial generates a synthetic SoC module standing in for the paper's
// industrial benchmarks: a deterministic random composition of datapath
// blocks (adders, comparators, mux buses, parity trees), decoders, random
// control clouds and register slices, grown until the mapped gate count
// reaches the target. The same (name, target, seed) always yields the same
// netlist.
func Industrial(lib *cell.Library, name string, targetGates int, seed int64) *netlist.Design {
	rng := rand.New(rand.NewSource(seed))
	b := netlist.NewBuilder(name, lib)

	// Signal pool: generators draw operands from recent signals, which
	// gives the netlist locality (cones of related logic), like real RTL.
	pool := make([]netlist.Signal, 0, 1024)
	for _, s := range b.PIBus("in", 64) {
		pool = append(pool, s)
	}
	pick := func() netlist.Signal {
		// Bias towards recent signals for locality.
		n := len(pool)
		window := n / 4
		if window < 32 {
			window = 32
		}
		if window > n {
			window = n
		}
		return pool[n-1-rng.Intn(window)]
	}
	pickBus := func(w int) []netlist.Signal {
		out := make([]netlist.Signal, w)
		for i := range out {
			out[i] = pick()
		}
		return out
	}
	push := func(sigs ...netlist.Signal) {
		for _, s := range sigs {
			if s.Kind == netlist.SigGate {
				pool = append(pool, s)
			}
		}
		if len(pool) > 2048 {
			pool = pool[len(pool)-1024:]
		}
	}

	blocks := []func(){
		func() { // adder
			w := 8 + rng.Intn(17)
			sum, cout := b.RippleAdder(pickBus(w), pickBus(w), pick())
			push(sum...)
			push(cout)
		},
		func() { // parity tree
			w := 16 + rng.Intn(33)
			push(b.XorTree(pickBus(w)))
		},
		func() { // decoder
			bits := 3 + rng.Intn(2)
			in := pickBus(bits)
			inv := make([]netlist.Signal, bits)
			for i := range inv {
				inv[i] = b.Not(in[i])
			}
			for k := 0; k < 1<<bits; k++ {
				term := make([]netlist.Signal, bits)
				for i := 0; i < bits; i++ {
					if k&(1<<i) != 0 {
						term[i] = in[i]
					} else {
						term[i] = inv[i]
					}
				}
				push(b.And(term...))
			}
		},
		func() { // mux bus
			w := 8 + rng.Intn(9)
			sel := pick()
			push(b.MuxBus(sel, pickBus(w), pickBus(w))...)
		},
		func() { // random control cloud
			width := 10 + rng.Intn(21)
			depth := 3 + rng.Intn(4)
			layer := pickBus(width)
			for d := 0; d < depth; d++ {
				next := make([]netlist.Signal, width)
				for i := range next {
					x, y := layer[rng.Intn(width)], layer[rng.Intn(width)]
					switch rng.Intn(4) {
					case 0:
						next[i] = b.Nand(x, y)
					case 1:
						next[i] = b.Nor(x, y)
					case 2:
						next[i] = b.Nand(x, y, layer[rng.Intn(width)])
					default:
						next[i] = b.Not(x)
					}
				}
				layer = next
			}
			push(layer...)
		},
		func() { // register slice
			w := 8 + rng.Intn(17)
			push(b.DFFBus(pickBus(w))...)
		},
		func() { // comparator
			w := 8 + rng.Intn(9)
			x, y := pickBus(w), pickBus(w)
			ny := make([]netlist.Signal, w)
			for i := range ny {
				ny[i] = b.Not(y[i])
			}
			diff, cout := b.RippleAdder(x, ny, netlist.Const(true))
			push(b.Nor(diff...), b.Not(cout))
		},
	}

	// Grow with full-size blocks, then trim to the target with small
	// parity clouds and buffer chains.
	for b.NumGates() < targetGates-500 {
		blocks[rng.Intn(len(blocks))]()
	}
	for b.NumGates() < targetGates-40 {
		push(b.XorTree(pickBus(8)))
	}
	for b.NumGates() < targetGates {
		push(b.Buf(pick()))
	}

	// Expose a sample of the pool as primary outputs.
	nPOs := 64
	if len(pool) < nPOs {
		nPOs = len(pool)
	}
	perm := rng.Perm(len(pool))
	for i := 0; i < nPOs; i++ {
		b.Output(fmt.Sprintf("out%d", i), pool[perm[i]])
	}

	b.SizeDrives()
	return b.MustBuild()
}
