package gen

import (
	"repro/internal/cell"
	"repro/internal/netlist"
)

// AddCmp7552 generates the c7552-class circuit: a 32-bit adder combined with
// a magnitude comparator and parity checking (c7552 is a 32-bit
// adder/comparator with parity). It computes a+b+cin, an incremented copy
// a+1, the subtraction-based comparison flags, equality, and parities over
// the operands and the sum.
//
// Inputs:  a0..a31, b0..b31, cin
// Outputs: s0..s31 (sum), inc0..inc31 (a+1), cout, icout, eq, ltu, gtu,
//
//	apar, bpar, spar, szero
func AddCmp7552(lib *cell.Library) *netlist.Design {
	const w = 32
	b := netlist.NewBuilder("c7552", lib)
	a := b.PIBus("a", w)
	x := b.PIBus("b", w)
	cin := b.PI("cin")

	// Main adder.
	sum, cout := b.RippleAdder(a, x, cin)
	b.OutputBus("s", sum)
	b.Output("cout", cout)

	// Incrementer (the second arithmetic unit of c7552).
	zeros := make([]netlist.Signal, w)
	for i := range zeros {
		zeros[i] = netlist.Const(false)
	}
	inc, icout := b.RippleAdder(a, zeros, netlist.Const(true))
	b.OutputBus("inc", inc)
	b.Output("icout", icout)

	// Magnitude comparison via a - b: borrow = NOT carry-out of a+~b+1.
	nb := make([]netlist.Signal, w)
	for i := range nb {
		nb[i] = b.Not(x[i])
	}
	diff, subCout := b.RippleAdder(a, nb, netlist.Const(true))
	ltu := b.Not(subCout)
	diffZero := b.Nor(diff...)
	b.Output("eq", diffZero)
	b.Output("ltu", ltu)
	b.Output("gtu", b.Nor(ltu, diffZero))

	// Parity trees over operands and sum, plus per-byte parities of the
	// sum (c7552 carries byte-sliced parity checking).
	b.Output("apar", b.XorTree(a))
	b.Output("bpar", b.XorTree(x))
	b.Output("spar", b.XorTree(sum))
	b.Output("szero", b.Nor(sum...))
	for byteIdx := 0; byteIdx < w/8; byteIdx++ {
		b.Output("sbpar"+string(rune('0'+byteIdx)), b.XorTree(sum[byteIdx*8:(byteIdx+1)*8]))
	}

	// Consistency compare between the two arithmetic units: s == inc
	// (true when b+cin == 1), a self-checking structure.
	eqBits := make([]netlist.Signal, w)
	for i := 0; i < w; i++ {
		eqBits[i] = b.Xnor(sum[i], inc[i])
	}
	b.Output("sieq", b.And(eqBits...))

	b.SizeDrives()
	return b.MustBuild()
}

// Adder128 generates the paper's "adder 128bits" benchmark: a registered
// 128-bit adder with carry-skip groups. Operand and result registers make it
// the only sequential datapath among the public benchmarks, matching its
// DFF-heavy composition.
//
// Inputs:  a0..a127, b0..b127, cin
// Outputs: s0..s127, cout (all registered)
func Adder128(lib *cell.Library) *netlist.Design {
	const w = 128
	const group = 8
	b := netlist.NewBuilder("adder128", lib)
	a := b.DFFBus(b.PIBus("a", w))
	x := b.DFFBus(b.PIBus("b", w))
	cin := b.DFF(b.PI("cin"))

	// Lower half: plain ripple carry. Upper half: carry-skip groups, the
	// usual optimization where the carry has already travelled far.
	sum, carry := b.RippleAdder(a[:w/2], x[:w/2], cin)
	for g := w / 2 / group; g < w/group; g++ {
		lo, hi := g*group, (g+1)*group
		gsum, gcout := b.RippleAdder(a[lo:hi], x[lo:hi], carry)
		sum = append(sum, gsum...)
		// Carry-skip: the group propagates iff every bit position
		// propagates (a XOR b); then the group carry-out equals the
		// carry-in and can skip the ripple chain.
		props := make([]netlist.Signal, group)
		for i := lo; i < hi; i++ {
			props[i-lo] = b.Xor(a[i], x[i])
		}
		pGroup := b.And(props...)
		carry = b.Mux(pGroup, gcout, carry)
	}
	b.OutputBus("s", b.DFFBus(sum))
	b.Output("cout", b.DFF(carry))

	b.SizeDrives()
	return b.MustBuild()
}
