package netlist

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/cell"
)

// ISCAS .bench reader and writer. The format is line-oriented:
//
//	# comment
//	INPUT(a)
//	OUTPUT(y)
//	y = NAND(a, b)
//	q = DFF(d)
//
// Functions with more inputs than the reduced library supports are folded
// into trees, and XOR/XNOR (absent from the library, as in the paper) are
// expanded into NAND structures on the fly.

// ParseBench reads a .bench netlist and maps it onto the library.
func ParseBench(r io.Reader, name string, lib *cell.Library) (*Design, error) {
	type rawGate struct {
		out  string
		fn   string
		args []string
		line int
	}
	var (
		inputs  []string
		outputs []string
		raws    []rawGate
	)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		switch {
		case strings.HasPrefix(strings.ToUpper(line), "INPUT(") && strings.HasSuffix(line, ")"):
			inputs = append(inputs, strings.TrimSpace(line[6:len(line)-1]))
		case strings.HasPrefix(strings.ToUpper(line), "OUTPUT(") && strings.HasSuffix(line, ")"):
			outputs = append(outputs, strings.TrimSpace(line[7:len(line)-1]))
		default:
			eq := strings.Index(line, "=")
			if eq < 0 {
				return nil, fmt.Errorf("bench line %d: expected assignment: %q", lineNo, line)
			}
			out := strings.TrimSpace(line[:eq])
			rhs := strings.TrimSpace(line[eq+1:])
			open := strings.Index(rhs, "(")
			if open < 0 || !strings.HasSuffix(rhs, ")") {
				return nil, fmt.Errorf("bench line %d: expected FUNC(args): %q", lineNo, rhs)
			}
			fn := strings.ToUpper(strings.TrimSpace(rhs[:open]))
			argstr := rhs[open+1 : len(rhs)-1]
			var args []string
			for _, a := range strings.Split(argstr, ",") {
				a = strings.TrimSpace(a)
				if a != "" {
					args = append(args, a)
				}
			}
			if len(args) == 0 {
				return nil, fmt.Errorf("bench line %d: %s with no arguments", lineNo, fn)
			}
			raws = append(raws, rawGate{out: out, fn: fn, args: args, line: lineNo})
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}

	b := NewBuilder(name, lib)
	sigs := map[string]Signal{}
	for _, in := range inputs {
		sigs[in] = b.PI(in)
	}
	// Resolve gates iteratively: .bench files are not necessarily in
	// topological order, and DFF inputs may be defined later (sequential
	// loops). Two rounds: first place DFFs with placeholder inputs, then
	// resolve combinational gates until a fixed point, then patch DFFs.
	type pendingDFF struct {
		gate GateID
		arg  string
		line int
	}
	var dffs []pendingDFF
	for _, rg := range raws {
		if rg.fn == "DFF" {
			q := b.DFF(Const(false)) // placeholder D, patched below
			sigs[rg.out] = q
			dffs = append(dffs, pendingDFF{gate: q.Idx, arg: rg.args[0], line: rg.line})
		}
	}
	remaining := make([]rawGate, 0, len(raws))
	for _, rg := range raws {
		if rg.fn != "DFF" {
			remaining = append(remaining, rg)
		}
	}
	for len(remaining) > 0 {
		progress := false
		var next []rawGate
		for _, rg := range remaining {
			ins := make([]Signal, 0, len(rg.args))
			ready := true
			for _, a := range rg.args {
				s, ok := sigs[a]
				if !ok {
					ready = false
					break
				}
				ins = append(ins, s)
			}
			if !ready {
				next = append(next, rg)
				continue
			}
			s, err := buildBenchGate(b, rg.fn, ins)
			if err != nil {
				return nil, fmt.Errorf("bench line %d: %w", rg.line, err)
			}
			sigs[rg.out] = s
			progress = true
		}
		if !progress {
			return nil, fmt.Errorf("bench: unresolved signals (cycle or missing driver), e.g. %q", next[0].out)
		}
		remaining = next
	}
	for _, p := range dffs {
		s, ok := sigs[p.arg]
		if !ok {
			return nil, fmt.Errorf("bench line %d: DFF input %q undefined", p.line, p.arg)
		}
		b.d.Gates[p.gate].Ins[0] = s
	}
	for _, out := range outputs {
		s, ok := sigs[out]
		if !ok {
			return nil, fmt.Errorf("bench: output %q undefined", out)
		}
		b.Output(out, s)
	}
	b.SizeDrives()
	return b.Build()
}

func buildBenchGate(b *Builder, fn string, ins []Signal) (Signal, error) {
	switch fn {
	case "NOT", "INV":
		return b.Not(ins[0]), nil
	case "BUF", "BUFF":
		return b.Buf(ins[0]), nil
	case "AND":
		return b.And(ins...), nil
	case "OR":
		return b.Or(ins...), nil
	case "NAND":
		return b.Nand(ins...), nil
	case "NOR":
		return b.Nor(ins...), nil
	case "XOR":
		out := ins[0]
		for _, in := range ins[1:] {
			out = b.Xor(out, in)
		}
		return out, nil
	case "XNOR":
		out := ins[0]
		for _, in := range ins[1:] {
			out = b.Xor(out, in)
		}
		return b.Not(out), nil
	}
	return Signal{}, fmt.Errorf("unsupported bench function %q", fn)
}

// WriteBench emits the design in .bench format. Gates are named g<N>; PIs
// and POs keep their names. Constant inputs are emitted as tie nets driven
// by degenerate gates (NAND of a PI with itself cannot express constants, so
// constants are rejected: the reduced flow never produces them).
func WriteBench(w io.Writer, d *Design) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# %s: %d gates, %d inputs, %d outputs\n",
		d.Name, len(d.Gates), len(d.PINames), len(d.POs))
	for _, in := range d.PINames {
		fmt.Fprintf(bw, "INPUT(%s)\n", in)
	}
	name := func(s Signal) (string, error) {
		switch s.Kind {
		case SigPI:
			return d.PINames[s.Idx], nil
		case SigGate:
			return fmt.Sprintf("g%d", s.Idx), nil
		default:
			return "", fmt.Errorf("bench: constant signals are not representable")
		}
	}
	// Emit outputs before gate definitions, as is conventional.
	type poLine struct{ out, drv string }
	var poLines []poLine
	for _, po := range d.POs {
		drv, err := name(po.Sig)
		if err != nil {
			return err
		}
		fmt.Fprintf(bw, "OUTPUT(%s)\n", po.Name)
		poLines = append(poLines, poLine{po.Name, drv})
	}
	for i := range d.Gates {
		g := &d.Gates[i]
		var fn string
		switch g.Cell.Kind {
		case cell.Inv:
			fn = "NOT"
		case cell.Buf:
			fn = "BUFF"
		case cell.And:
			fn = "AND"
		case cell.Or:
			fn = "OR"
		case cell.Nand:
			fn = "NAND"
		case cell.Nor:
			fn = "NOR"
		case cell.Dff:
			fn = "DFF"
		default:
			return fmt.Errorf("bench: cannot emit cell kind %v", g.Cell.Kind)
		}
		args := make([]string, len(g.Ins))
		for k, in := range g.Ins {
			n, err := name(in)
			if err != nil {
				return err
			}
			args[k] = n
		}
		fmt.Fprintf(bw, "g%d = %s(%s)\n", i, fn, strings.Join(args, ", "))
	}
	// PO aliases: .bench outputs reference net names directly; emit BUFF
	// aliases when the PO name differs from its driver net.
	sort.Slice(poLines, func(i, j int) bool { return poLines[i].out < poLines[j].out })
	for _, p := range poLines {
		if p.out != p.drv {
			fmt.Fprintf(bw, "%s = BUFF(%s)\n", p.out, p.drv)
		}
	}
	return bw.Flush()
}
