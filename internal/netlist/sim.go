package netlist

import (
	"fmt"
)

// Simulator evaluates a design's logic cycle by cycle. It is used to verify
// that the benchmark generators produce functionally correct circuits (the
// adder adds, the multiplier multiplies) before they are fed to the flow.
type Simulator struct {
	d     *Design
	topo  []GateID
	val   []bool // current output value per gate
	pi    []bool
	state []bool  // flip-flop contents
	ffIdx []int32 // gate -> state slot, -1 for combinational gates
	poIdx map[string]int
}

// NewSimulator builds a simulator; the design must validate.
func NewSimulator(d *Design) (*Simulator, error) {
	topo, err := d.TopoOrder()
	if err != nil {
		return nil, err
	}
	s := &Simulator{
		d:     d,
		topo:  topo,
		val:   make([]bool, len(d.Gates)),
		pi:    make([]bool, len(d.PINames)),
		ffIdx: make([]int32, len(d.Gates)),
		poIdx: make(map[string]int, len(d.POs)),
	}
	nFF := 0
	for i := range d.Gates {
		if d.Gates[i].IsDFF() {
			s.ffIdx[i] = int32(nFF)
			nFF++
		} else {
			s.ffIdx[i] = -1
		}
	}
	s.state = make([]bool, nFF)
	for i, po := range d.POs {
		s.poIdx[po.Name] = i
	}
	return s, nil
}

// SetPI sets primary input i.
func (s *Simulator) SetPI(i int, v bool) { s.pi[i] = v }

// SetInputs sets all primary inputs at once.
func (s *Simulator) SetInputs(vals []bool) error {
	if len(vals) != len(s.pi) {
		return fmt.Errorf("netlist: %d input values for %d PIs", len(vals), len(s.pi))
	}
	copy(s.pi, vals)
	return nil
}

// SetPIByName sets the named primary input.
func (s *Simulator) SetPIByName(name string, v bool) error {
	for i, n := range s.d.PINames {
		if n == name {
			s.pi[i] = v
			return nil
		}
	}
	return fmt.Errorf("netlist: no primary input %q", name)
}

// signal reads the current value of a signal.
func (s *Simulator) signal(sig Signal) bool {
	switch sig.Kind {
	case SigPI:
		return s.pi[sig.Idx]
	case SigGate:
		return s.val[sig.Idx]
	case SigConst1:
		return true
	default:
		return false
	}
}

// Eval propagates the current inputs and flip-flop state through the
// combinational logic.
func (s *Simulator) Eval() {
	var ins [8]bool
	for _, id := range s.topo {
		g := &s.d.Gates[id]
		if g.IsDFF() {
			s.val[id] = s.state[s.ffIdx[id]]
			continue
		}
		buf := ins[:len(g.Ins)]
		for k, in := range g.Ins {
			buf[k] = s.signal(in)
		}
		s.val[id] = g.Cell.Kind.Eval(buf)
	}
}

// Step evaluates the combinational logic and then clocks every flip-flop,
// latching its D input.
func (s *Simulator) Step() {
	s.Eval()
	for i := range s.d.Gates {
		if idx := s.ffIdx[i]; idx >= 0 {
			s.state[idx] = s.signal(s.d.Gates[i].Ins[0])
		}
	}
}

// ResetState clears all flip-flops.
func (s *Simulator) ResetState() {
	for i := range s.state {
		s.state[i] = false
	}
}

// GateValue returns the current output value of a gate.
func (s *Simulator) GateValue(id GateID) bool { return s.val[id] }

// PO returns the value of the named primary output after the last Eval.
func (s *Simulator) PO(name string) (bool, error) {
	i, ok := s.poIdx[name]
	if !ok {
		return false, fmt.Errorf("netlist: no primary output %q", name)
	}
	return s.signal(s.d.POs[i].Sig), nil
}

// POValues returns the values of all primary outputs in declaration order.
func (s *Simulator) POValues() []bool {
	out := make([]bool, len(s.d.POs))
	for i, po := range s.d.POs {
		out[i] = s.signal(po.Sig)
	}
	return out
}

// SetUintInputs assigns the bits of v (LSB first) to the inputs named
// prefix0, prefix1, ... width times. It is a convenience for datapath tests.
func (s *Simulator) SetUintInputs(prefix string, width int, v uint64) error {
	for b := 0; b < width; b++ {
		if err := s.SetPIByName(fmt.Sprintf("%s%d", prefix, b), v&(1<<b) != 0); err != nil {
			return err
		}
	}
	return nil
}

// UintOutputs reads outputs named prefix0..prefix<width-1> as an integer,
// LSB first.
func (s *Simulator) UintOutputs(prefix string, width int) (uint64, error) {
	var v uint64
	for b := 0; b < width; b++ {
		bit, err := s.PO(fmt.Sprintf("%s%d", prefix, b))
		if err != nil {
			return 0, err
		}
		if bit {
			v |= 1 << b
		}
	}
	return v, nil
}
