// Package netlist provides the gate-level netlist representation shared by
// the whole flow: designs made of standard cells from the reduced library,
// topological utilities, an event-free logic simulator used to verify the
// benchmark generators, a structural Builder, and ISCAS .bench I/O.
package netlist

import (
	"errors"
	"fmt"

	"repro/internal/cell"
)

// GateID indexes a gate within a Design.
type GateID = int32

// SigKind discriminates the driver of a Signal.
type SigKind uint8

// Signal driver kinds.
const (
	// SigPI is a primary input, Idx indexes Design.PINames.
	SigPI SigKind = iota
	// SigGate is a gate output, Idx is the GateID.
	SigGate
	// SigConst0 is a constant logic 0 (tie-low).
	SigConst0
	// SigConst1 is a constant logic 1 (tie-high).
	SigConst1
)

// Signal identifies the driver of a net.
type Signal struct {
	Kind SigKind
	Idx  int32
}

// PISignal returns the signal of primary input i.
func PISignal(i int) Signal { return Signal{Kind: SigPI, Idx: int32(i)} }

// GateSignal returns the output signal of gate g.
func GateSignal(g GateID) Signal { return Signal{Kind: SigGate, Idx: g} }

// Const returns a constant signal.
func Const(v bool) Signal {
	if v {
		return Signal{Kind: SigConst1}
	}
	return Signal{Kind: SigConst0}
}

// Port is a named primary output.
type Port struct {
	Name string
	Sig  Signal
}

// Gate is one standard-cell instance.
type Gate struct {
	// Cell is the library element implementing the gate.
	Cell *cell.Cell
	// Ins are the input signals, length Cell.NumInputs. For DFF cells the
	// single input is the D pin; the clock is implicit (single domain).
	Ins []Signal
	// Name is an optional instance name (used by .bench I/O).
	Name string
}

// IsDFF reports whether the gate is a flip-flop.
func (g *Gate) IsDFF() bool { return g.Cell.Kind == cell.Dff }

// Design is a mapped gate-level netlist.
type Design struct {
	Name    string
	PINames []string
	Gates   []Gate
	POs     []Port
}

// NumGates returns the number of gate instances.
func (d *Design) NumGates() int { return len(d.Gates) }

// NumDFFs returns the number of flip-flops.
func (d *Design) NumDFFs() int {
	n := 0
	for i := range d.Gates {
		if d.Gates[i].IsDFF() {
			n++
		}
	}
	return n
}

// Validate checks structural sanity: input counts match the cells, all signal
// indices are in range, and the combinational logic is acyclic.
func (d *Design) Validate() error {
	for i := range d.Gates {
		g := &d.Gates[i]
		if g.Cell == nil {
			return fmt.Errorf("netlist: gate %d has no cell", i)
		}
		if len(g.Ins) != g.Cell.NumInputs {
			return fmt.Errorf("netlist: gate %d (%s) has %d inputs, cell wants %d",
				i, g.Cell.Name, len(g.Ins), g.Cell.NumInputs)
		}
		for pin, s := range g.Ins {
			if err := d.checkSignal(s); err != nil {
				return fmt.Errorf("netlist: gate %d pin %d: %w", i, pin, err)
			}
		}
	}
	for _, po := range d.POs {
		if err := d.checkSignal(po.Sig); err != nil {
			return fmt.Errorf("netlist: output %q: %w", po.Name, err)
		}
	}
	if _, err := d.TopoOrder(); err != nil {
		return err
	}
	return nil
}

func (d *Design) checkSignal(s Signal) error {
	switch s.Kind {
	case SigPI:
		if s.Idx < 0 || int(s.Idx) >= len(d.PINames) {
			return fmt.Errorf("PI index %d out of range", s.Idx)
		}
	case SigGate:
		if s.Idx < 0 || int(s.Idx) >= len(d.Gates) {
			return fmt.Errorf("gate index %d out of range", s.Idx)
		}
	case SigConst0, SigConst1:
	default:
		return fmt.Errorf("invalid signal kind %d", s.Kind)
	}
	return nil
}

// TopoOrder returns the gates in a combinational evaluation order: flip-flops
// first (their outputs are state, independent of D within a cycle), then
// combinational gates so that every gate appears after its drivers. An error
// is returned when the combinational logic contains a cycle.
func (d *Design) TopoOrder() ([]GateID, error) {
	n := len(d.Gates)
	indeg := make([]int32, n)
	for i := range d.Gates {
		g := &d.Gates[i]
		if g.IsDFF() {
			continue // D pin is a sequential, not ordering, dependency
		}
		for _, s := range g.Ins {
			if s.Kind == SigGate {
				indeg[i]++
			}
		}
	}
	order := make([]GateID, 0, n)
	queue := make([]GateID, 0, n)
	for i := 0; i < n; i++ {
		if indeg[i] == 0 {
			queue = append(queue, GateID(i))
		}
	}
	fanouts := d.Fanouts()
	for len(queue) > 0 {
		g := queue[0]
		queue = queue[1:]
		order = append(order, g)
		for _, f := range fanouts[g] {
			if d.Gates[f].IsDFF() {
				continue
			}
			indeg[f]--
			if indeg[f] == 0 {
				queue = append(queue, f)
			}
		}
	}
	if len(order) != n {
		return nil, errors.New("netlist: combinational cycle detected")
	}
	return order, nil
}

// Fanouts returns, for every gate, the list of gates consuming its output
// (with multiplicity one per consumer gate pin).
func (d *Design) Fanouts() [][]GateID {
	out := make([][]GateID, len(d.Gates))
	for i := range d.Gates {
		for _, s := range d.Gates[i].Ins {
			if s.Kind == SigGate {
				out[s.Idx] = append(out[s.Idx], GateID(i))
			}
		}
	}
	return out
}

// FanoutCounts returns the consumer pin count of every gate output including
// primary-output loads.
func (d *Design) FanoutCounts() []int {
	out := make([]int, len(d.Gates))
	for i := range d.Gates {
		for _, s := range d.Gates[i].Ins {
			if s.Kind == SigGate {
				out[s.Idx]++
			}
		}
	}
	for _, po := range d.POs {
		if po.Sig.Kind == SigGate {
			out[po.Sig.Idx]++
		}
	}
	return out
}

// Stats summarizes a design.
type Stats struct {
	Name       string
	Gates      int
	DFFs       int
	PIs        int
	POs        int
	WidthSites int
	ByKind     map[cell.Kind]int
}

// Stats computes summary statistics.
func (d *Design) Stats() Stats {
	s := Stats{
		Name:   d.Name,
		Gates:  len(d.Gates),
		PIs:    len(d.PINames),
		POs:    len(d.POs),
		ByKind: map[cell.Kind]int{},
	}
	for i := range d.Gates {
		g := &d.Gates[i]
		s.ByKind[g.Cell.Kind]++
		s.WidthSites += g.Cell.WidthSites
		if g.IsDFF() {
			s.DFFs++
		}
	}
	return s
}

// String implements fmt.Stringer.
func (s Stats) String() string {
	return fmt.Sprintf("%s: %d gates (%d FF), %d PI, %d PO, %d sites",
		s.Name, s.Gates, s.DFFs, s.PIs, s.POs, s.WidthSites)
}
