package netlist

import (
	"strings"
	"testing"
)

func TestWriteVerilog(t *testing.T) {
	d := buildToy(t)
	var sb strings.Builder
	if err := WriteVerilog(&sb, d); err != nil {
		t.Fatal(err)
	}
	v := sb.String()
	for _, want := range []string{
		"module toy", "input clk;", "input a;", "output y;", "output q;",
		"INV_X1", "NAND2_X1", "DFF_X1", ".CK(clk)", "endmodule",
	} {
		if !strings.Contains(v, want) {
			t.Errorf("verilog missing %q:\n%s", want, v)
		}
	}
	// Every gate instantiated exactly once.
	if got := strings.Count(v, "_X1 u"); got != d.NumGates() {
		t.Errorf("found %d instances for %d gates", got, d.NumGates())
	}
}

func TestWriteVerilogCombinationalOmitsClock(t *testing.T) {
	b := NewBuilder("comb", lib())
	a := b.PI("a")
	b.Output("y", b.Not(a))
	d, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := WriteVerilog(&sb, d); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(sb.String(), "clk") {
		t.Error("combinational design should have no clock port")
	}
}

func TestSanitizeID(t *testing.T) {
	cases := map[string]string{
		"a":     "a",
		"a.b-c": "a_b_c",
		"9x":    "_9x",
		"":      "_",
	}
	for in, want := range cases {
		if got := sanitizeID(in); got != want {
			t.Errorf("sanitizeID(%q) = %q, want %q", in, got, want)
		}
	}
}
