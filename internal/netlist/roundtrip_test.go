package netlist

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/cell"
)

// TestBenchRoundTripProperty writes random circuits to .bench and reparses
// them, checking functional equivalence on random input vectors — the
// strongest check the interchange path gets.
func TestBenchRoundTripProperty(t *testing.T) {
	l := cell.Default()
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 20; trial++ {
		b := NewBuilder("rt", l)
		nPI := 2 + rng.Intn(4)
		pool := make([]Signal, 0, 64)
		for i := 0; i < nPI; i++ {
			pool = append(pool, b.PI("i"+itoa(i)))
		}
		nG := 10 + rng.Intn(30)
		for i := 0; i < nG; i++ {
			x := pool[rng.Intn(len(pool))]
			y := pool[rng.Intn(len(pool))]
			var s Signal
			switch rng.Intn(6) {
			case 0:
				s = b.Nand(x, y)
			case 1:
				s = b.Nor(x, y)
			case 2:
				s = b.And(x, y, pool[rng.Intn(len(pool))])
			case 3:
				s = b.Or(x, y)
			case 4:
				s = b.Xor(x, y)
			default:
				s = b.Not(x)
			}
			pool = append(pool, s)
		}
		nPO := 1 + rng.Intn(4)
		for i := 0; i < nPO; i++ {
			b.Output("o"+itoa(i), pool[len(pool)-1-i])
		}
		orig, err := b.Build()
		if err != nil {
			t.Fatal(err)
		}

		var sb strings.Builder
		if err := WriteBench(&sb, orig); err != nil {
			t.Fatalf("trial %d: write: %v", trial, err)
		}
		parsed, err := ParseBench(strings.NewReader(sb.String()), "rt2", l)
		if err != nil {
			t.Fatalf("trial %d: parse: %v", trial, err)
		}

		s1, err := NewSimulator(orig)
		if err != nil {
			t.Fatal(err)
		}
		s2, err := NewSimulator(parsed)
		if err != nil {
			t.Fatal(err)
		}
		for vec := 0; vec < 32; vec++ {
			for i := 0; i < nPI; i++ {
				v := rng.Intn(2) == 1
				if err := s1.SetPIByName("i"+itoa(i), v); err != nil {
					t.Fatal(err)
				}
				if err := s2.SetPIByName("i"+itoa(i), v); err != nil {
					t.Fatal(err)
				}
			}
			s1.Eval()
			s2.Eval()
			for i := 0; i < nPO; i++ {
				v1, err1 := s1.PO("o" + itoa(i))
				v2, err2 := s2.PO("o" + itoa(i))
				if err1 != nil || err2 != nil {
					t.Fatal(err1, err2)
				}
				if v1 != v2 {
					t.Fatalf("trial %d vec %d: output o%d differs after round trip", trial, vec, i)
				}
			}
		}
	}
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}
