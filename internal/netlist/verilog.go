package netlist

import (
	"bufio"
	"fmt"
	"io"
	"strings"

	"repro/internal/cell"
)

// WriteVerilog emits the design as a structural Verilog netlist over the
// reduced library, the interchange format downstream physical-design tools
// expect. Cell ports follow the usual liberty convention: inputs A, B, C,
// output Z (flip-flops: D, CK, Q).
func WriteVerilog(w io.Writer, d *Design) error {
	bw := bufio.NewWriter(w)
	name := sanitizeID(d.Name)
	fmt.Fprintf(bw, "// %d gates, %d inputs, %d outputs\n", len(d.Gates), len(d.PINames), len(d.POs))
	fmt.Fprintf(bw, "module %s (\n", name)

	ports := make([]string, 0, len(d.PINames)+len(d.POs)+1)
	hasFF := d.NumDFFs() > 0
	if hasFF {
		ports = append(ports, "clk")
	}
	for _, pi := range d.PINames {
		ports = append(ports, sanitizeID(pi))
	}
	for _, po := range d.POs {
		ports = append(ports, sanitizeID(po.Name))
	}
	fmt.Fprintf(bw, "  %s\n);\n", strings.Join(ports, ",\n  "))

	if hasFF {
		fmt.Fprintln(bw, "  input clk;")
	}
	for _, pi := range d.PINames {
		fmt.Fprintf(bw, "  input %s;\n", sanitizeID(pi))
	}
	for _, po := range d.POs {
		fmt.Fprintf(bw, "  output %s;\n", sanitizeID(po.Name))
	}
	for i := range d.Gates {
		fmt.Fprintf(bw, "  wire n%d;\n", i)
	}

	net := func(s Signal) string {
		switch s.Kind {
		case SigPI:
			return sanitizeID(d.PINames[s.Idx])
		case SigGate:
			return fmt.Sprintf("n%d", s.Idx)
		case SigConst1:
			return "1'b1"
		default:
			return "1'b0"
		}
	}
	pinNames := [3]string{"A", "B", "C"}
	for i := range d.Gates {
		g := &d.Gates[i]
		fmt.Fprintf(bw, "  %s u%d (", g.Cell.Name, i)
		if g.Cell.Kind == cell.Dff {
			fmt.Fprintf(bw, ".D(%s), .CK(clk), .Q(n%d)", net(g.Ins[0]), i)
		} else {
			for p, in := range g.Ins {
				fmt.Fprintf(bw, ".%s(%s), ", pinNames[p], net(in))
			}
			fmt.Fprintf(bw, ".Z(n%d)", i)
		}
		fmt.Fprintln(bw, ");")
	}
	for _, po := range d.POs {
		fmt.Fprintf(bw, "  assign %s = %s;\n", sanitizeID(po.Name), net(po.Sig))
	}
	fmt.Fprintln(bw, "endmodule")
	return bw.Flush()
}

// sanitizeID makes a name a legal Verilog identifier.
func sanitizeID(s string) string {
	if s == "" {
		return "_"
	}
	var sb strings.Builder
	for _, r := range s {
		ok := r == '_' || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') || (r >= '0' && r <= '9')
		if !ok {
			sb.WriteByte('_')
			continue
		}
		sb.WriteRune(r)
	}
	out := sb.String()
	if out[0] >= '0' && out[0] <= '9' {
		out = "_" + out
	}
	return out
}
