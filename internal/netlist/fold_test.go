package netlist

import (
	"testing"

	"repro/internal/cell"
)

func TestConstantFolding(t *testing.T) {
	b := NewBuilder("fold", lib())
	a := b.PI("a")

	if s := b.And(a, Const(false)); s.Kind != SigConst0 {
		t.Error("AND(a,0) should fold to 0")
	}
	if s := b.And(a, Const(true)); s != a {
		t.Error("AND(a,1) should fold to a")
	}
	if s := b.Or(a, Const(true)); s.Kind != SigConst1 {
		t.Error("OR(a,1) should fold to 1")
	}
	if s := b.Or(a, Const(false)); s != a {
		t.Error("OR(a,0) should fold to a")
	}
	if s := b.Nand(a, Const(false)); s.Kind != SigConst1 {
		t.Error("NAND(a,0) should fold to 1")
	}
	if s := b.Nor(a, Const(true)); s.Kind != SigConst0 {
		t.Error("NOR(a,1) should fold to 0")
	}
	if s := b.Not(Const(false)); s.Kind != SigConst1 {
		t.Error("NOT(0) should fold to 1")
	}
	if s := b.Buf(Const(true)); s.Kind != SigConst1 {
		t.Error("BUF(1) should fold to 1")
	}

	// NAND(a,1) must degrade to a single inverter, not a NAND cell.
	before := b.NumGates()
	s := b.Nand(a, Const(true))
	if s.Kind != SigGate || b.d.Gates[s.Idx].Cell.Kind != cell.Inv {
		t.Error("NAND(a,1) should become INV(a)")
	}
	if b.NumGates() != before+1 {
		t.Errorf("NAND(a,1) built %d gates, want 1", b.NumGates()-before)
	}
}

func TestFoldingNeverDropsDFF(t *testing.T) {
	b := NewBuilder("dffconst", lib())
	q := b.DFF(Const(true))
	if q.Kind != SigGate {
		t.Fatal("DFF of a constant must stay a state element")
	}
	b.Output("q", q)
	if _, err := b.Build(); err != nil {
		t.Fatal(err)
	}
}

func TestHalfAdderCheaperViaFolding(t *testing.T) {
	// A full adder with constant carry-in must cost fewer gates than a
	// general one: the folding turns it into a half adder automatically.
	b := NewBuilder("ha", lib())
	a, x, c := b.PI("a"), b.PI("b"), b.PI("c")
	start := b.NumGates()
	b.FullAdder(a, x, c)
	fullCost := b.NumGates() - start

	start = b.NumGates()
	sum, carry := b.FullAdder(a, x, Const(false))
	haCost := b.NumGates() - start
	if haCost >= fullCost {
		t.Errorf("folded half adder costs %d gates, full adder %d", haCost, fullCost)
	}

	// And it must still be functionally a half adder.
	b.Output("s", sum)
	b.Output("co", carry)
	d, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	s, _ := NewSimulator(d)
	for av := 0; av < 2; av++ {
		for bv := 0; bv < 2; bv++ {
			s.SetPIByName("a", av == 1)
			s.SetPIByName("b", bv == 1)
			s.Eval()
			sv, _ := s.PO("s")
			cv, _ := s.PO("co")
			if sv != ((av^bv) == 1) || cv != (av == 1 && bv == 1) {
				t.Errorf("half adder wrong at a=%d b=%d: s=%v c=%v", av, bv, sv, cv)
			}
		}
	}
}
