package netlist

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/cell"
)

func lib() *cell.Library { return cell.Default() }

// buildToy returns y = NAND(a, NOT(b)) with a registered copy q.
func buildToy(t *testing.T) *Design {
	t.Helper()
	b := NewBuilder("toy", lib())
	a, bb := b.PI("a"), b.PI("b")
	nb := b.Not(bb)
	y := b.Nand(a, nb)
	q := b.DFF(y)
	b.Output("y", y)
	b.Output("q", q)
	d, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestBuilderAndValidate(t *testing.T) {
	d := buildToy(t)
	if d.NumGates() != 3 {
		t.Errorf("gates = %d, want 3", d.NumGates())
	}
	if d.NumDFFs() != 1 {
		t.Errorf("FFs = %d, want 1", d.NumDFFs())
	}
	st := d.Stats()
	if st.PIs != 2 || st.POs != 2 || st.ByKind[cell.Nand] != 1 {
		t.Errorf("bad stats: %+v", st)
	}
}

func TestTopoOrderRespectsDependencies(t *testing.T) {
	d := buildToy(t)
	order, err := d.TopoOrder()
	if err != nil {
		t.Fatal(err)
	}
	pos := make(map[GateID]int)
	for i, g := range order {
		pos[g] = i
	}
	for i := range d.Gates {
		if d.Gates[i].IsDFF() {
			continue
		}
		for _, in := range d.Gates[i].Ins {
			if in.Kind == SigGate && pos[in.Idx] > pos[GateID(i)] {
				t.Errorf("gate %d evaluated before its driver %d", i, in.Idx)
			}
		}
	}
}

func TestCombinationalCycleDetected(t *testing.T) {
	b := NewBuilder("cyc", lib())
	a := b.PI("a")
	g1 := b.Nand(a, a) // placeholder, rewired below
	g2 := b.Nand(g1, a)
	b.d.Gates[g1.Idx].Ins[1] = g2 // create g1 <-> g2 cycle
	b.Output("y", g2)
	if _, err := b.Build(); err == nil {
		t.Fatal("combinational cycle not detected")
	}
}

func TestSequentialLoopAllowed(t *testing.T) {
	// A toggle flip-flop: q = DFF(NOT(q)) is a legal sequential loop.
	b := NewBuilder("tff", lib())
	q := b.DFF(Const(false))
	nq := b.Not(q)
	b.d.Gates[q.Idx].Ins[0] = nq
	b.Output("q", q)
	d, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSimulator(d)
	if err != nil {
		t.Fatal(err)
	}
	var seq []bool
	for i := 0; i < 4; i++ {
		s.Step()
		v, err := s.PO("q")
		if err != nil {
			t.Fatal(err)
		}
		seq = append(seq, v)
	}
	// After each step the flop toggles: starting false, reads false then
	// true alternating on the output *after* the step's eval.
	want := []bool{false, true, false, true}
	for i := range want {
		// Outputs observed after Step i reflect pre-step state; just
		// check that it toggles every cycle.
		if i > 0 && seq[i] == seq[i-1] {
			t.Fatalf("toggle FF did not toggle: %v", seq)
		}
		_ = want
	}
}

func TestSimulatorCombinational(t *testing.T) {
	d := buildToy(t)
	s, err := NewSimulator(d)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		a, b, y bool
	}{
		{false, false, true},
		{true, false, false}, // y = NAND(a, NOT(b)) = !(a && !b)
		{true, true, true},
		{false, true, true},
	}
	for _, c := range cases {
		s.SetPI(0, c.a)
		s.SetPI(1, c.b)
		s.Eval()
		got, err := s.PO("y")
		if err != nil {
			t.Fatal(err)
		}
		if got != c.y {
			t.Errorf("a=%v b=%v: y=%v, want %v", c.a, c.b, got, c.y)
		}
	}
}

func TestSimulatorSequential(t *testing.T) {
	d := buildToy(t)
	s, err := NewSimulator(d)
	if err != nil {
		t.Fatal(err)
	}
	s.SetPI(0, true)
	s.SetPI(1, false)
	s.Step() // latches y=false
	s.Eval()
	q, _ := s.PO("q")
	if q != false {
		t.Errorf("q after first clock = %v, want false", q)
	}
	s.SetPI(0, false)
	s.Step() // y=true latched
	s.Eval()
	if q, _ = s.PO("q"); q != true {
		t.Errorf("q after second clock = %v, want true", q)
	}
	s.ResetState()
	s.Eval()
	if q, _ = s.PO("q"); q != false {
		t.Error("ResetState did not clear flop")
	}
}

func TestXorExpansion(t *testing.T) {
	b := NewBuilder("xor", lib())
	x, y := b.PI("x"), b.PI("y")
	b.Output("z", b.Xor(x, y))
	d, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if d.NumGates() != 4 {
		t.Errorf("XOR2 should cost 4 NAND2, got %d gates", d.NumGates())
	}
	s, _ := NewSimulator(d)
	for _, c := range []struct{ x, y, z bool }{
		{false, false, false}, {true, false, true}, {false, true, true}, {true, true, false},
	} {
		s.SetPI(0, c.x)
		s.SetPI(1, c.y)
		s.Eval()
		if got, _ := s.PO("z"); got != c.z {
			t.Errorf("xor(%v,%v) = %v, want %v", c.x, c.y, got, c.z)
		}
	}
}

func TestWideGateFolding(t *testing.T) {
	b := NewBuilder("wide", lib())
	ins := b.PIBus("i", 9)
	b.Output("z", b.And(ins...))
	d, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	s, _ := NewSimulator(d)
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 64; trial++ {
		want := true
		for i := 0; i < 9; i++ {
			v := rng.Intn(2) == 1
			s.SetPI(i, v)
			want = want && v
		}
		s.Eval()
		if got, _ := s.PO("z"); got != want {
			t.Fatalf("AND9 wrong on trial %d", trial)
		}
	}
	// Every gate respects the library's input limits.
	for i := range d.Gates {
		if len(d.Gates[i].Ins) > 3 {
			t.Errorf("gate %d has %d inputs", i, len(d.Gates[i].Ins))
		}
	}
}

func TestRippleAdder(t *testing.T) {
	b := NewBuilder("add4", lib())
	a := b.PIBus("a", 4)
	x := b.PIBus("b", 4)
	sum, cout := b.RippleAdder(a, x, Const(false))
	b.OutputBus("s", sum)
	b.Output("cout", cout)
	d, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	s, _ := NewSimulator(d)
	for av := uint64(0); av < 16; av++ {
		for bv := uint64(0); bv < 16; bv++ {
			if err := s.SetUintInputs("a", 4, av); err != nil {
				t.Fatal(err)
			}
			if err := s.SetUintInputs("b", 4, bv); err != nil {
				t.Fatal(err)
			}
			s.Eval()
			got, err := s.UintOutputs("s", 4)
			if err != nil {
				t.Fatal(err)
			}
			co, _ := s.PO("cout")
			if co {
				got |= 16
			}
			if got != av+bv {
				t.Fatalf("%d+%d = %d, want %d", av, bv, got, av+bv)
			}
		}
	}
}

func TestMux(t *testing.T) {
	b := NewBuilder("mux", lib())
	sel, x, y := b.PI("s"), b.PI("x"), b.PI("y")
	b.Output("z", b.Mux(sel, x, y))
	d, _ := b.Build()
	s, _ := NewSimulator(d)
	for _, c := range []struct{ sel, x, y, z bool }{
		{false, true, false, true}, {true, true, false, false},
		{false, false, true, false}, {true, false, true, true},
	} {
		s.SetPI(0, c.sel)
		s.SetPI(1, c.x)
		s.SetPI(2, c.y)
		s.Eval()
		if got, _ := s.PO("z"); got != c.z {
			t.Errorf("mux(%v;%v,%v) = %v, want %v", c.sel, c.x, c.y, got, c.z)
		}
	}
}

func TestSizeDrives(t *testing.T) {
	b := NewBuilder("fan", lib())
	a := b.PI("a")
	src := b.Not(a)
	for i := 0; i < 10; i++ {
		b.Output(strings.Repeat("o", i+1), b.Not(src))
	}
	b.SizeDrives()
	d, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if got := d.Gates[src.Idx].Cell.Drive; got != 4 {
		t.Errorf("10-fanout gate drive = X%d, want X4", got)
	}
}

func TestFanoutCounts(t *testing.T) {
	d := buildToy(t)
	counts := d.FanoutCounts()
	// Gate 1 (the NAND) drives the DFF and the PO "y".
	if counts[1] != 2 {
		t.Errorf("NAND fanout = %d, want 2", counts[1])
	}
}

func TestValidateCatchesBadSignals(t *testing.T) {
	b := NewBuilder("bad", lib())
	a := b.PI("a")
	g := b.Not(a)
	b.d.Gates[g.Idx].Ins[0] = Signal{Kind: SigPI, Idx: 99}
	b.Output("y", g)
	if _, err := b.Build(); err == nil {
		t.Error("out-of-range PI index not caught")
	}
}

func TestBenchRoundTrip(t *testing.T) {
	orig := buildToy(t)
	var sb strings.Builder
	if err := WriteBench(&sb, orig); err != nil {
		t.Fatal(err)
	}
	parsed, err := ParseBench(strings.NewReader(sb.String()), "toy2", lib())
	if err != nil {
		t.Fatalf("reparse failed: %v\n%s", err, sb.String())
	}
	// Functional equivalence on all input combinations (combinational
	// output y only; the reparsed design may have buffer aliases).
	s1, _ := NewSimulator(orig)
	s2, _ := NewSimulator(parsed)
	for a := 0; a < 2; a++ {
		for bv := 0; bv < 2; bv++ {
			s1.SetPIByName("a", a == 1)
			s1.SetPIByName("b", bv == 1)
			s2.SetPIByName("a", a == 1)
			s2.SetPIByName("b", bv == 1)
			s1.Eval()
			s2.Eval()
			v1, _ := s1.PO("y")
			v2, _ := s2.PO("y")
			if v1 != v2 {
				t.Errorf("a=%d b=%d: original %v, reparsed %v", a, bv, v1, v2)
			}
		}
	}
}

func TestParseBenchHandlesXorAndOrder(t *testing.T) {
	// Out-of-order definitions and an XOR must parse.
	src := `
# tiny circuit
INPUT(a)
INPUT(b)
OUTPUT(z)
z = XOR(t, b)
t = NOT(a)
`
	d, err := ParseBench(strings.NewReader(src), "tiny", lib())
	if err != nil {
		t.Fatal(err)
	}
	s, _ := NewSimulator(d)
	for a := 0; a < 2; a++ {
		for bv := 0; bv < 2; bv++ {
			s.SetPIByName("a", a == 1)
			s.SetPIByName("b", bv == 1)
			s.Eval()
			want := (a == 0) != (bv == 1)
			if got, _ := s.PO("z"); got != want {
				t.Errorf("a=%d b=%d: z=%v want %v", a, bv, got, want)
			}
		}
	}
}

func TestParseBenchSequential(t *testing.T) {
	src := `
INPUT(d)
OUTPUT(q)
q = DFF(n)
n = NOT(q)
`
	d, err := ParseBench(strings.NewReader(src), "seq", lib())
	if err != nil {
		t.Fatal(err)
	}
	if d.NumDFFs() != 1 {
		t.Errorf("FFs = %d, want 1", d.NumDFFs())
	}
}

func TestParseBenchErrors(t *testing.T) {
	bad := []string{
		"z = FROB(a)\nINPUT(a)\nOUTPUT(z)",
		"INPUT(a)\nOUTPUT(z)\nz = NAND(a, missing)",
		"INPUT(a)\nOUTPUT(z)\nz NAND(a)",
	}
	for i, src := range bad {
		if _, err := ParseBench(strings.NewReader(src), "bad", lib()); err == nil {
			t.Errorf("case %d: bad bench accepted", i)
		}
	}
}
