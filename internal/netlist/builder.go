package netlist

import (
	"fmt"

	"repro/internal/cell"
)

// Builder assembles designs structurally. All gates are created at drive X1;
// SizeDrives applies a fanout-based sizing pass afterwards, mimicking what a
// synthesis tool does. Functions with more inputs than the library offers
// (>3) are folded into balanced trees; XOR, which the reduced library lacks,
// is expanded into four NAND2s exactly as row-based synthesis flows do.
type Builder struct {
	lib   *cell.Library
	d     *Design
	piIdx map[string]int
}

// NewBuilder starts a design with the given name on the library.
func NewBuilder(name string, lib *cell.Library) *Builder {
	return &Builder{
		lib:   lib,
		d:     &Design{Name: name},
		piIdx: map[string]int{},
	}
}

// PI declares (or returns the existing) primary input with the given name.
func (b *Builder) PI(name string) Signal {
	if i, ok := b.piIdx[name]; ok {
		return PISignal(i)
	}
	i := len(b.d.PINames)
	b.d.PINames = append(b.d.PINames, name)
	b.piIdx[name] = i
	return PISignal(i)
}

// PIBus declares width inputs named prefix0..prefix<width-1> (LSB first).
func (b *Builder) PIBus(prefix string, width int) []Signal {
	out := make([]Signal, width)
	for i := range out {
		out[i] = b.PI(fmt.Sprintf("%s%d", prefix, i))
	}
	return out
}

// Output declares a primary output.
func (b *Builder) Output(name string, s Signal) {
	b.d.POs = append(b.d.POs, Port{Name: name, Sig: s})
}

// OutputBus declares width outputs named prefix0.. for the given signals.
func (b *Builder) OutputBus(prefix string, sigs []Signal) {
	for i, s := range sigs {
		b.Output(fmt.Sprintf("%s%d", prefix, i), s)
	}
}

// Gate instantiates a gate of the given kind over the inputs, folding wide
// functions into trees of 2/3-input cells.
func (b *Builder) Gate(k cell.Kind, ins ...Signal) Signal {
	switch k {
	case cell.Inv, cell.Buf, cell.Dff:
		if len(ins) != 1 {
			panic(fmt.Sprintf("netlist: %v takes 1 input, got %d", k, len(ins)))
		}
		return b.raw(k, ins...)
	case cell.And, cell.Or:
		return b.tree(k, ins)
	case cell.Nand:
		if len(ins) <= 3 {
			return b.raw(k, ins...)
		}
		return b.Not(b.tree(cell.And, ins))
	case cell.Nor:
		if len(ins) <= 3 {
			return b.raw(k, ins...)
		}
		return b.Not(b.tree(cell.Or, ins))
	}
	panic(fmt.Sprintf("netlist: cannot build kind %v", k))
}

// tree folds an associative function into a balanced tree of 3- and 2-input
// cells.
func (b *Builder) tree(k cell.Kind, ins []Signal) Signal {
	switch len(ins) {
	case 0:
		panic("netlist: empty input list")
	case 1:
		return ins[0]
	case 2, 3:
		return b.raw(k, ins...)
	}
	var next []Signal
	i := 0
	for i < len(ins) {
		rem := len(ins) - i
		take := 3
		if rem == 4 { // avoid a trailing 1-input group
			take = 2
		}
		if rem < take {
			take = rem
		}
		next = append(next, b.raw(k, ins[i:i+take]...))
		i += take
	}
	return b.tree(k, next)
}

// raw instantiates one library cell, after the constant folding any
// synthesis flow performs: gates with constant inputs are simplified or
// removed. Folding is what turns a full adder with a constant carry into a
// half adder, as in the generated datapaths.
func (b *Builder) raw(k cell.Kind, ins ...Signal) Signal {
	if s, done := b.fold(k, ins); done {
		return s
	}
	c, ok := b.lib.Pick(k, len(ins), 1)
	if !ok {
		panic(fmt.Sprintf("netlist: no %v cell with %d inputs", k, len(ins)))
	}
	id := GateID(len(b.d.Gates))
	b.d.Gates = append(b.d.Gates, Gate{Cell: c, Ins: append([]Signal(nil), ins...)})
	return GateSignal(id)
}

// fold simplifies constant inputs. It reports done=true when the result is
// fully determined without instantiating a cell of kind k (the returned
// signal may still have caused a simpler cell, e.g. NAND(a,1) -> INV(a)).
func (b *Builder) fold(k cell.Kind, ins []Signal) (Signal, bool) {
	isConst := func(s Signal) (bool, bool) {
		switch s.Kind {
		case SigConst0:
			return true, false
		case SigConst1:
			return true, true
		}
		return false, false
	}
	switch k {
	case cell.Inv:
		if c, v := isConst(ins[0]); c {
			return Const(!v), true
		}
	case cell.Buf:
		if c, v := isConst(ins[0]); c {
			return Const(v), true
		}
	case cell.Dff:
		return Signal{}, false // state elements are never folded
	case cell.And, cell.Nand:
		var live []Signal
		for _, s := range ins {
			if c, v := isConst(s); c {
				if !v { // a constant 0 dominates
					if k == cell.And {
						return Const(false), true
					}
					return Const(true), true
				}
				continue // constant 1 is the identity
			}
			live = append(live, s)
		}
		if len(live) == len(ins) {
			return Signal{}, false
		}
		switch {
		case len(live) == 0:
			return Const(k == cell.And), true
		case len(live) == 1:
			if k == cell.And {
				return live[0], true
			}
			return b.raw(cell.Inv, live[0]), true
		default:
			return b.raw(k, live...), true
		}
	case cell.Or, cell.Nor:
		var live []Signal
		for _, s := range ins {
			if c, v := isConst(s); c {
				if v { // a constant 1 dominates
					if k == cell.Or {
						return Const(true), true
					}
					return Const(false), true
				}
				continue // constant 0 is the identity
			}
			live = append(live, s)
		}
		if len(live) == len(ins) {
			return Signal{}, false
		}
		switch {
		case len(live) == 0:
			return Const(k != cell.Or), true
		case len(live) == 1:
			if k == cell.Or {
				return live[0], true
			}
			return b.raw(cell.Inv, live[0]), true
		default:
			return b.raw(k, live...), true
		}
	}
	return Signal{}, false
}

// Convenience wrappers.

// Not inverts a signal.
func (b *Builder) Not(a Signal) Signal { return b.raw(cell.Inv, a) }

// Buf buffers a signal.
func (b *Builder) Buf(a Signal) Signal { return b.raw(cell.Buf, a) }

// And returns the conjunction of the inputs.
func (b *Builder) And(ins ...Signal) Signal { return b.Gate(cell.And, ins...) }

// Or returns the disjunction of the inputs.
func (b *Builder) Or(ins ...Signal) Signal { return b.Gate(cell.Or, ins...) }

// Nand returns the negated conjunction.
func (b *Builder) Nand(ins ...Signal) Signal { return b.Gate(cell.Nand, ins...) }

// Nor returns the negated disjunction.
func (b *Builder) Nor(ins ...Signal) Signal { return b.Gate(cell.Nor, ins...) }

// DFF adds a flip-flop latching d.
func (b *Builder) DFF(d Signal) Signal { return b.raw(cell.Dff, d) }

// DFFBus registers every signal of a bus.
func (b *Builder) DFFBus(ds []Signal) []Signal {
	out := make([]Signal, len(ds))
	for i, d := range ds {
		out[i] = b.DFF(d)
	}
	return out
}

// Xor builds a XOR2 from four NAND2 cells (the reduced library has no XOR).
func (b *Builder) Xor(a, x Signal) Signal {
	n1 := b.raw(cell.Nand, a, x)
	n2 := b.raw(cell.Nand, a, n1)
	n3 := b.raw(cell.Nand, x, n1)
	return b.raw(cell.Nand, n2, n3)
}

// Xnor is the complement of Xor.
func (b *Builder) Xnor(a, x Signal) Signal { return b.Not(b.Xor(a, x)) }

// XorTree folds many signals through Xor.
func (b *Builder) XorTree(ins []Signal) Signal {
	if len(ins) == 0 {
		panic("netlist: empty xor tree")
	}
	for len(ins) > 1 {
		var next []Signal
		for i := 0; i+1 < len(ins); i += 2 {
			next = append(next, b.Xor(ins[i], ins[i+1]))
		}
		if len(ins)%2 == 1 {
			next = append(next, ins[len(ins)-1])
		}
		ins = next
	}
	return ins[0]
}

// Mux returns a ? b1 : b0 using four NAND2 cells plus an inverter.
func (b *Builder) Mux(sel, b0, b1 Signal) Signal {
	ns := b.Not(sel)
	n0 := b.raw(cell.Nand, b0, ns)
	n1 := b.raw(cell.Nand, b1, sel)
	return b.raw(cell.Nand, n0, n1)
}

// MuxBus muxes two equal-width buses.
func (b *Builder) MuxBus(sel Signal, b0, b1 []Signal) []Signal {
	if len(b0) != len(b1) {
		panic("netlist: mux bus width mismatch")
	}
	out := make([]Signal, len(b0))
	for i := range b0 {
		out[i] = b.Mux(sel, b0[i], b1[i])
	}
	return out
}

// HalfAdder returns (sum, carry).
func (b *Builder) HalfAdder(a, x Signal) (sum, carry Signal) {
	return b.Xor(a, x), b.And(a, x)
}

// FullAdder returns (sum, carry) of three inputs using the classic
// two-XOR/majority decomposition.
func (b *Builder) FullAdder(a, x, cin Signal) (sum, carry Signal) {
	p := b.Xor(a, x)
	sum = b.Xor(p, cin)
	carry = b.Or(b.And(a, x), b.And(p, cin))
	return sum, carry
}

// RippleAdder adds two equal-width buses with carry-in, returning the sum
// bits and the carry-out.
func (b *Builder) RippleAdder(a, x []Signal, cin Signal) (sum []Signal, cout Signal) {
	if len(a) != len(x) {
		panic("netlist: adder width mismatch")
	}
	sum = make([]Signal, len(a))
	c := cin
	for i := range a {
		sum[i], c = b.FullAdder(a[i], x[i], c)
	}
	return sum, c
}

// NumGates returns the number of gates built so far.
func (b *Builder) NumGates() int { return len(b.d.Gates) }

// SizeDrives applies a fanout-based drive sizing pass: outputs driving four
// or more pins get X2 cells, eight or more get X4.
func (b *Builder) SizeDrives() {
	counts := b.d.FanoutCounts()
	for i := range b.d.Gates {
		g := &b.d.Gates[i]
		drive := 1
		switch {
		case counts[i] >= 8:
			drive = 4
		case counts[i] >= 4:
			drive = 2
		}
		if drive != g.Cell.Drive {
			if c, ok := b.lib.Pick(g.Cell.Kind, g.Cell.NumInputs, drive); ok {
				g.Cell = c
			}
		}
	}
}

// Build validates and returns the design. The builder remains usable, but
// the returned design is shared, not copied.
func (b *Builder) Build() (*Design, error) {
	if err := b.d.Validate(); err != nil {
		return nil, err
	}
	return b.d, nil
}

// MustBuild is Build for generators whose structure is fixed at compile time.
func (b *Builder) MustBuild() *Design {
	d, err := b.Build()
	if err != nil {
		panic("netlist: " + err.Error())
	}
	return d
}
