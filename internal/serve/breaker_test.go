package serve

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// fakeReplica serves a healthy /healthz plus the given scripted handlers,
// so router tests can stage transport behavior (aborts, stalls, slow
// streams) that a real fbbd never exhibits. Returns the base URL.
func fakeReplica(t *testing.T, handlers map[string]http.HandlerFunc) string {
	t.Helper()
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		io.WriteString(w, `{"status":"ok","draining":false}`+"\n")
	})
	for pat, h := range handlers {
		mux.HandleFunc(pat, h)
	}
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)
	return ts.URL
}

// TestRouterBreakerTripsAfterConsecutiveFailures: a replica whose /healthz
// is fine but whose forwards die at the transport level trips the breaker
// on exactly the BreakerThreshold'th consecutive failure — not before —
// and the count restarts after each trip. The poked probe (healthz is
// healthy) lets the replica rejoin, so the breaker alone drives the trips.
func TestRouterBreakerTripsAfterConsecutiveFailures(t *testing.T) {
	leakCheck(t)
	url := fakeReplica(t, map[string]http.HandlerFunc{
		"POST /v1/tune": func(http.ResponseWriter, *http.Request) {
			panic(http.ErrAbortHandler) // kill the connection mid-exchange
		},
	})
	rt, c := newTestRouter(t, []string{url}, RouterOptions{Spill: -1, BreakerThreshold: 3})
	rep := rt.ring.replicas[0]

	body := string(encodeJSON(t, TuneRequest{DesignRef: DesignRef{Benchmark: "c1355"}, Beta: 0.05}))
	tune := func() int {
		status, _ := postRaw(t, c, "/v1/tune", body)
		return status
	}
	for i := 1; i <= 2; i++ {
		if status := tune(); status != http.StatusServiceUnavailable {
			t.Fatalf("request %d: status %d, want 503", i, status)
		}
	}
	if got := rep.trips.Load(); got != 0 {
		t.Fatalf("breaker tripped after 2 failures (trips=%d), threshold is 3", got)
	}
	if status := tune(); status != http.StatusServiceUnavailable {
		t.Fatalf("request 3: status %d, want 503", status)
	}
	if got := rep.trips.Load(); got != 1 {
		t.Fatalf("trips after 3 consecutive failures = %d, want 1", got)
	}
	// The trip poked an immediate re-probe; healthz still answers, so the
	// replica rejoins without waiting out the (1h) health interval.
	waitFor(t, 5*time.Second, func() bool { return rep.inRing() },
		"tripped replica never rejoined after a healthy probe")

	// The count restarted at the trip: three more failures, one more trip.
	for i := 4; i <= 6; i++ {
		tune()
		// The trip's async probe races the next forward; settle the view so
		// every failure lands on an in-ring replica and is counted.
		waitFor(t, 5*time.Second, func() bool { return rep.inRing() },
			"replica out of ring between requests")
	}
	if got := rep.trips.Load(); got != 2 {
		t.Fatalf("trips after 6 consecutive failures = %d, want 2", got)
	}

	stats, err := c.ClusterStats(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(stats.Replicas) != 1 || stats.Replicas[0].Trips != 2 {
		t.Fatalf("cluster stats replicas %+v, want one with trips=2", stats.Replicas)
	}
}

// TestRouterForwardTimeoutBoundsHeaders: a replica that accepts the
// connection but never starts responding is cut off at ForwardTimeout, the
// stall counts as a breaker failure, and the client gets the router's 503
// instead of hanging.
func TestRouterForwardTimeoutBoundsHeaders(t *testing.T) {
	leakCheck(t)
	url := fakeReplica(t, map[string]http.HandlerFunc{
		"POST /v1/tune": func(w http.ResponseWriter, r *http.Request) {
			// Consume the body so the server's client-abort watcher arms and
			// the router's cancel unblocks the select below.
			io.Copy(io.Discard, r.Body)
			select {
			case <-r.Context().Done(): // router gave up; unwind
			case <-time.After(30 * time.Second):
			}
		},
	})
	rt, c := newTestRouter(t, []string{url}, RouterOptions{
		Spill: -1, BreakerThreshold: 1, ForwardTimeout: 100 * time.Millisecond,
	})

	start := time.Now()
	status, _ := postRaw(t, c, "/v1/tune", string(encodeJSON(t, TuneRequest{DesignRef: DesignRef{Benchmark: "c1355"}, Beta: 0.05})))
	elapsed := time.Since(start)
	if status != http.StatusServiceUnavailable {
		t.Fatalf("stalled replica: status %d, want 503", status)
	}
	if elapsed > 5*time.Second {
		t.Fatalf("router took %v to give up on a stalled forward (timeout 100ms)", elapsed)
	}
	if got := rt.ring.replicas[0].trips.Load(); got != 1 {
		t.Fatalf("forward timeout did not feed the breaker: trips=%d, want 1", got)
	}
}

// TestRouterForwardTimeoutSparesSlowStreams: ForwardTimeout bounds only the
// wait for response headers. A stream that answers immediately and then
// pauses mid-body far longer than the timeout relays to completion.
func TestRouterForwardTimeoutSparesSlowStreams(t *testing.T) {
	leakCheck(t)
	const line1, line2 = `{"die":0}` + "\n", `{"stats":{}}` + "\n"
	url := fakeReplica(t, map[string]http.HandlerFunc{
		"POST /v1/yield": func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "application/x-ndjson")
			w.WriteHeader(http.StatusOK)
			io.WriteString(w, line1)
			http.NewResponseController(w).Flush()
			time.Sleep(300 * time.Millisecond) // 6x the forward timeout
			io.WriteString(w, line2)
		},
	})
	_, c := newTestRouter(t, []string{url}, RouterOptions{
		Spill: -1, ForwardTimeout: 50 * time.Millisecond,
	})

	status, body := postRaw(t, c, "/v1/yield", string(encodeJSON(t, YieldRequest{DesignRef: DesignRef{Benchmark: "c1355"}, Dies: 1})))
	if status != http.StatusOK {
		t.Fatalf("slow stream: status %d, body %s", status, body)
	}
	if got := string(body); !strings.HasSuffix(got, line2) || !strings.HasPrefix(got, line1) {
		t.Fatalf("slow stream truncated by the forward timeout: %q", got)
	}
}
