package serve

import (
	"bytes"
	"context"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/flow"
)

// This file is the concurrency conformance net — run it under -race (CI
// does). It pins the two production claims of the serving layer: the
// coalesced prefix cache builds each placement exactly once under
// concurrent mixed traffic, and the streamed /v1/yield keeps memory
// bounded for a 10k-die run.

// TestConcurrentIdenticalRequestsBuildPrefixOnce is the acceptance
// criterion verbatim: N concurrent identical requests, one prefix build.
// The build is gated until every other request has joined the in-flight
// entry, so the coalescing path itself — not lucky cache-hit timing — is
// what serves N-1 of them.
func TestConcurrentIdenticalRequestsBuildPrefixOnce(t *testing.T) {
	const n = 12
	var mu sync.Mutex
	builds := map[string]int{}
	gate := make(chan struct{})
	s, c := newTestServer(t, Options{
		Workers: n, // every request admitted at once
		OnPrefixBuild: func(key string) {
			mu.Lock()
			builds[key]++
			mu.Unlock()
			<-gate
		},
	})

	before := flow.PrefixBuilds()
	req := TuneRequest{DesignRef: DesignRef{Benchmark: "c1355"}, Beta: 0.05}
	var wg sync.WaitGroup
	bodies := make([][]byte, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			status, body := postRaw(t, c, "/v1/tune", string(encodeJSON(t, req)))
			if status != 200 {
				t.Errorf("request %d: status %d: %s", i, status, body)
			}
			bodies[i] = body
		}(i)
	}
	// The winner is parked in the gate; wait until the other n-1 have
	// joined its in-flight entry, then release.
	waitFor(t, 10*time.Second, func() bool { return s.cache.Stats().Joins >= n-1 },
		"not all %d requests joined the in-flight build", n-1)
	close(gate)
	wg.Wait()

	if got := flow.PrefixBuilds() - before; got != 1 {
		t.Errorf("flow.Prefix built %d times for %d identical requests", got, n)
	}
	if len(builds) != 1 {
		t.Errorf("distinct cache keys: %v", builds)
	}
	for key, n := range builds {
		if n != 1 {
			t.Errorf("key %s built %d times", key, n)
		}
	}
	for i := 1; i < n; i++ {
		if !bytes.Equal(bodies[i], bodies[0]) {
			t.Errorf("request %d returned different bytes than request 0", i)
		}
	}
}

// TestMixedTrafficConformance hammers one server with overlapping tune,
// die-tune, streamed yield and table1 traffic on two designs. Asserted:
// every response succeeds, identical requests return identical bytes, and
// the shared prefix cache built exactly one prefix per distinct design —
// the exactly-once contract under the full mixed workload rather than a
// single-endpoint microcosm.
func TestMixedTrafficConformance(t *testing.T) {
	var mu sync.Mutex
	builds := map[string]int{}
	_, c := newTestServer(t, Options{
		Workers:   runtime.GOMAXPROCS(0),
		Queue:     64,
		CacheSize: 8,
		OnPrefixBuild: func(key string) {
			mu.Lock()
			builds[key]++
			mu.Unlock()
		},
	})
	before := flow.PrefixBuilds()

	chain := chainBench(32)
	var (
		wg      sync.WaitGroup
		resMu   sync.Mutex
		byKind  = map[string][][]byte{}
		failure = false
	)
	record := func(kind string, body []byte) {
		resMu.Lock()
		byKind[kind] = append(byKind[kind], body)
		resMu.Unlock()
	}
	fail := func(format string, args ...any) {
		resMu.Lock()
		failure = true
		resMu.Unlock()
		t.Errorf(format, args...)
	}

	launch := func(kind, path, body string) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			status, got := postRaw(t, c, path, body)
			if status != 200 {
				fail("%s: status %d: %s", kind, status, got)
				return
			}
			record(kind, got)
		}()
	}

	tuneBench := string(encodeJSON(t, TuneRequest{DesignRef: DesignRef{Benchmark: "c1355"}, Beta: 0.05}))
	tuneChain := string(encodeJSON(t, TuneRequest{DesignRef: DesignRef{Netlist: chain}, Beta: 0.05}))
	dieBench := string(encodeJSON(t, TuneRequest{DesignRef: DesignRef{Benchmark: "c1355"}, Die: &DieRequest{Seed: 5}}))
	yieldChain := string(encodeJSON(t, YieldRequest{DesignRef: DesignRef{Netlist: chain}, Dies: 30, Seed: 9, Workers: 2}))
	table1Bench := string(encodeJSON(t, Table1Request{Benchmarks: []string{"c1355"}, Betas: []float64{0.05}, ILPGateLimit: 1}))

	for i := 0; i < 6; i++ {
		launch("tuneBench", "/v1/tune", tuneBench)
		launch("tuneChain", "/v1/tune", tuneChain)
	}
	for i := 0; i < 4; i++ {
		launch("dieBench", "/v1/tune", dieBench)
	}
	for i := 0; i < 2; i++ {
		launch("yieldChain", "/v1/yield", yieldChain)
		launch("table1Bench", "/v1/table1", table1Bench)
	}
	wg.Wait()
	if failure {
		return
	}

	// Identical requests, identical bytes — across endpoints and modes.
	for kind, bodies := range byKind {
		for i := 1; i < len(bodies); i++ {
			if !bytes.Equal(bodies[i], bodies[0]) {
				t.Errorf("%s: response %d differs from response 0", kind, i)
			}
		}
	}

	// Two distinct designs were in play (the c1355 benchmark, shared by
	// tune, die-tune and table1; and the uploaded chain, shared by tune
	// and yield): exactly two prefix builds, one per design.
	if got := flow.PrefixBuilds() - before; got != 2 {
		t.Errorf("flow.Prefix built %d times, want 2 (one per distinct design)", got)
	}
	if len(builds) != 2 {
		t.Errorf("distinct cache keys %d, want 2: %v", len(builds), builds)
	}
	for key, n := range builds {
		if n != 1 {
			t.Errorf("key %s built %d times, want 1", key, n)
		}
	}
}

// TestYieldStreamBoundedMemory10k is the bounded-memory acceptance test: a
// 10k-die streamed yield study must not accumulate per-die results
// server-side. The client samples live heap (post-GC) after 1k and after
// 9k received lines from inside the same process; a handler retaining its
// stream would show ~8k solutions of growth between the two samples.
func TestYieldStreamBoundedMemory10k(t *testing.T) {
	if testing.Short() {
		t.Skip("10k-die stream is a -short skip")
	}
	_, c := newTestServer(t, Options{})

	const dies = 10_000
	heap := func() uint64 {
		runtime.GC()
		var m runtime.MemStats
		runtime.ReadMemStats(&m)
		return m.HeapAlloc
	}
	var h1k, h9k uint64
	seen := 0
	stats, err := c.Yield(context.Background(), YieldRequest{
		DesignRef: DesignRef{Netlist: chainBench(48)},
		Dies:      dies, Seed: 42,
	}, func(d *DieResult) error {
		if d.Die != seen {
			t.Fatalf("out-of-order die %d at position %d", d.Die, seen)
		}
		seen++
		switch seen {
		case 1_000:
			h1k = heap()
		case 9_000:
			h9k = heap()
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if seen != dies || stats == nil || stats.Dies != dies {
		t.Fatalf("stream incomplete: %d lines, stats %+v", seen, stats)
	}
	// Signed growth between the two mid-stream samples; noise is a few
	// hundred KB, accumulation would be many MB.
	growth := int64(h9k) - int64(h1k)
	const limit = 4 << 20
	if growth > limit {
		t.Errorf("heap grew %d bytes between die 1k and die 9k (limit %d): per-die accumulation?", growth, limit)
	}
	t.Logf("heap at 1k dies: %d, at 9k dies: %d (growth %d)", h1k, h9k, growth)
}
