package serve

import (
	"bytes"
	"context"
	"fmt"
	"testing"

	"repro"
	"repro/internal/cell"
	"repro/internal/flow"
	"repro/internal/gen"
	"repro/internal/tech"
	"repro/internal/variation"
)

// This file is the end-to-end differential net of the service: for a grid
// of configs, the exact response bytes of /v1/tune and /v1/table1 must
// equal the in-process drivers (repro.RunOn / variation.TuneOn /
// repro.Table1) encoded the same way. A service that drifts from the
// library — a lost option, a different default, a nondeterministic field —
// fails on bytes, not on vibes.

// localPrefix builds the same prefix the server would, bypassing its cache.
func localPrefix(t *testing.T, bench string) *flow.Prefix {
	t.Helper()
	d, err := gen.Build(bench, cell.Default())
	if err != nil {
		t.Fatal(err)
	}
	pfx, err := flow.PrefixFor(d, cell.Default(), 0)
	if err != nil {
		t.Fatal(err)
	}
	return pfx
}

func TestTuneDifferentialAgainstRunOn(t *testing.T) {
	_, c := newTestServer(t, Options{})
	eng := flow.New()

	benches := []string{"c1355"}
	solvers := []string{"", "local"}
	if !testing.Short() {
		benches = append(benches, "c3540")
	}
	for _, bench := range benches {
		for _, beta := range []float64{0.05, 0.10} {
			for _, cMax := range []int{2, 3} {
				for _, solver := range solvers {
					name := fmt.Sprintf("%s/beta%g/C%d/%s", bench, beta, cMax, solver)
					t.Run(name, func(t *testing.T) {
						res, err := repro.RunOn(eng, repro.Config{
							Benchmark:   bench,
							Beta:        beta,
							MaxClusters: cMax,
							Solver:      solver,
							SkipLayout:  true,
						})
						if err != nil {
							t.Fatal(err)
						}
						want := encodeJSON(t, TuneResponse{Summary: res.Summarize()})

						req := encodeJSON(t, TuneRequest{
							DesignRef:   DesignRef{Benchmark: bench},
							Beta:        beta,
							MaxClusters: cMax,
							Solver:      solver,
						})
						status, got := postRaw(t, c, "/v1/tune", string(req))
						if status != 200 {
							t.Fatalf("status %d: %s", status, got)
						}
						if !bytes.Equal(got, want) {
							t.Errorf("response drifted from repro.RunOn:\n got: %s\nwant: %s", got, want)
						}
					})
				}
			}
		}
	}
}

func TestTuneDieDifferentialAgainstTuneOn(t *testing.T) {
	_, c := newTestServer(t, Options{})
	pfx := localPrefix(t, "c1355")
	proc := tech.Default45nm()
	model := variation.Default()

	for _, seed := range []int64{3, 17, 99} {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			tn := variation.NewTuner(variation.NewRetimer(pfx.Analyzer), pfx.Allocator)
			die := model.Sample(pfx.Placement, proc, seed)
			tr, err := variation.TuneOn(tn, pfx.Timing, die, proc, variation.TuneOptions{
				GuardbandPct: defaultGuardbandPct,
			})
			if err != nil {
				t.Fatal(err)
			}
			want := encodeJSON(t, TuneResponse{Die: dieResult(0, seed, tr, pfx.Placement.Lib.Grid)})

			req := encodeJSON(t, TuneRequest{
				DesignRef: DesignRef{Benchmark: "c1355"},
				Die:       &DieRequest{Seed: seed},
			})
			status, got := postRaw(t, c, "/v1/tune", string(req))
			if status != 200 {
				t.Fatalf("status %d: %s", status, got)
			}
			if !bytes.Equal(got, want) {
				t.Errorf("die response drifted from variation.TuneOn:\n got: %s\nwant: %s", got, want)
			}
		})
	}
}

func TestTable1DifferentialAgainstDriver(t *testing.T) {
	_, c := newTestServer(t, Options{})
	benches := []string{"c1355", "bogus"} // error rows must match too
	betas := []float64{0.05, 0.10}

	rows, err := repro.Table1(repro.Table1Options{
		Benchmarks:   benches,
		Betas:        betas,
		ILPGateLimit: 1, // heuristic columns only: budget-free, deterministic
	})
	if err != nil {
		t.Fatal(err)
	}
	want := encodeJSON(t, Table1Response{Rows: rows})

	req := encodeJSON(t, Table1Request{
		Benchmarks:   benches,
		Betas:        betas,
		ILPGateLimit: 1,
	})
	status, got := postRaw(t, c, "/v1/table1", string(req))
	if status != 200 {
		t.Fatalf("status %d: %s", status, got)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("table1 drifted from repro.Table1:\n got: %s\nwant: %s", got, want)
	}
}

// TestYieldDifferentialAgainstYieldStream pins the whole NDJSON stream —
// every per-die line and the stats footer — to the in-process
// variation.YieldStream on the same prefix, seeds and options.
func TestYieldDifferentialAgainstYieldStream(t *testing.T) {
	_, c := newTestServer(t, Options{})
	pfx := localPrefix(t, "c1355")
	proc := tech.Default45nm()
	model := variation.Default()

	const dies, seed = 8, 77
	var want bytes.Buffer
	opts := variation.TuneOptions{GuardbandPct: defaultGuardbandPct, Workers: 2}
	stats, err := variation.YieldStream(context.Background(),
		pfx.Analyzer, pfx.Allocator, pfx.Timing, proc, model, dies, seed, opts,
		func(die int, tr *variation.TuneResult) error {
			want.Write(encodeJSON(t, dieResult(die, variation.DieSeed(seed, die), tr, pfx.Placement.Lib.Grid)))
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	want.Write(encodeJSON(t, YieldFooter{Stats: yieldStatsJSON(stats)}))

	req := encodeJSON(t, YieldRequest{
		DesignRef: DesignRef{Benchmark: "c1355"},
		Dies:      dies, Seed: seed, Workers: 2,
	})
	status, got := postRaw(t, c, "/v1/yield", string(req))
	if status != 200 {
		t.Fatalf("status %d: %s", status, got)
	}
	if !bytes.Equal(got, want.Bytes()) {
		t.Errorf("yield stream drifted from variation.YieldStream:\n got: %s\nwant: %s", got, want.String())
	}
}
