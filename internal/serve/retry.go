package serve

import (
	"context"
	"errors"
	"io"
	"net"
	"net/url"
	"time"
)

// Clock abstracts time for the retry layer so backoff behavior is testable
// without wall-clock sleeps (and pinned exactly — the Retry-After floor
// tests run on a fake). The zero Client uses the system clock.
type Clock interface {
	// Now returns the current time.
	Now() time.Time
	// Sleep blocks for d or until ctx is done, returning ctx.Err() when
	// interrupted.
	Sleep(ctx context.Context, d time.Duration) error
}

// systemClock is the production Clock.
type systemClock struct{}

func (systemClock) Now() time.Time { return time.Now() }

func (systemClock) Sleep(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// RetryPolicy makes a Client self-healing: calls that fail retryably —
// shed 503s, spurious 5xx, refused connections, resets, broken streams —
// are retried under capped exponential backoff with deterministic seeded
// jitter and a per-call attempt/time budget. Retrying is safe because every
// fbbd endpoint is a pure function of its request: a retried tune recomputes
// the identical bytes, and a retried yield stream resumes from its last
// checkpoint (duplicate dies suppressed) rather than rerunning from scratch.
//
// The backoff before retry k is BaseDelay·2^(k-1) capped at MaxDelay, then
// jittered into [d/2, d) by a splitmix64 draw on (Seed, k) — a pure
// function, so a replayed run schedules byte-identical delays. A server
// Retry-After is honored as a floor on top of the jittered delay: the next
// attempt never fires before the server asked. Give concurrently deployed
// clients distinct Seeds so their herds decorrelate.
type RetryPolicy struct {
	// MaxAttempts bounds the total attempts per call, including the first
	// (default 4; minimum 1).
	MaxAttempts int
	// BaseDelay is the pre-jitter backoff before the first retry (default
	// 50ms).
	BaseDelay time.Duration
	// MaxDelay caps the pre-jitter exponential growth (default 2s).
	MaxDelay time.Duration
	// MaxElapsed bounds the whole call — attempts plus backoffs — on the
	// policy clock. A retry whose backoff would cross the budget is not
	// attempted; the last error returns instead. 0 = no time budget.
	MaxElapsed time.Duration
	// Seed drives the deterministic jitter.
	Seed int64
	// Clock supplies time (nil = system clock).
	Clock Clock
	// OnRetry, when non-nil, observes every scheduled retry: the attempt
	// that just failed (1-based), the backoff about to be slept, and the
	// error that caused it.
	OnRetry func(attempt int, delay time.Duration, err error)
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = 4
	}
	if p.BaseDelay <= 0 {
		p.BaseDelay = 50 * time.Millisecond
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = 2 * time.Second
	}
	if p.Clock == nil {
		p.Clock = systemClock{}
	}
	return p
}

// retryMix is the splitmix64 finalizer (the repo's shared seed-derivation
// idiom — variation.DieSeed, the router ring, the fault schedules).
func retryMix(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Delay returns the deterministic jittered backoff scheduled after failed
// attempt k (1-based), before any Retry-After floor: a pure function of
// (Seed, k), so replayed runs back off identically.
func (p RetryPolicy) Delay(attempt int) time.Duration {
	p = p.withDefaults()
	d := p.BaseDelay
	for i := 1; i < attempt && d < p.MaxDelay; i++ {
		d *= 2
	}
	if d > p.MaxDelay {
		d = p.MaxDelay
	}
	// Jitter into [d/2, d): keep at least half the backoff so a floor of
	// herd-thundering zero-delays cannot be drawn, and spread the rest.
	x := retryMix(uint64(p.Seed) + uint64(attempt)*0x9e3779b97f4a7c15)
	half := d / 2
	return half + time.Duration(x%uint64(half+1))
}

// floorDelay raises delay to any server-advertised Retry-After on err.
func floorDelay(delay time.Duration, err error) time.Duration {
	var apiErr *APIError
	if errors.As(err, &apiErr) && apiErr.RetryAfterSec > 0 {
		if floor := time.Duration(apiErr.RetryAfterSec) * time.Second; delay < floor {
			return floor
		}
	}
	return delay
}

// isRetryable classifies an error for the retry layer. Transport-level
// failures (refused dials, resets, timeouts) and retryable API statuses
// (shed 503s, spurious 5xx) are worth another attempt against pure
// endpoints; client-side mistakes (4xx), mid-stream server error objects,
// and the caller's own cancellation are not. Broken streams (*StreamError)
// are retryable — the client resumes them — unless their cause is one of
// the non-retryable kinds.
func isRetryable(err error) bool {
	if err == nil {
		return false
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return false
	}
	var apiErr *APIError
	if errors.As(err, &apiErr) {
		return apiErr.IsRetryable()
	}
	var se *StreamError
	if errors.As(err, &se) {
		// The stream died mid-flight (truncation, reset, garbage line):
		// resumable. Causes already handled above (cancellation, server
		// error objects as APIError) were classified there.
		return true
	}
	var ue *url.Error
	if errors.As(err, &ue) {
		return true // transport-level: never reached a response
	}
	var ne *net.OpError
	if errors.As(err, &ne) {
		return true // mid-body socket failure
	}
	return errors.Is(err, io.ErrUnexpectedEOF)
}

// doRetry runs call under the client's retry policy (nil policy = exactly
// one attempt). call is re-invoked verbatim; the last error wins.
func (c *Client) doRetry(ctx context.Context, call func() error) error {
	if c.Retry == nil {
		return call()
	}
	pol := c.Retry.withDefaults()
	start := pol.Clock.Now()
	for attempt := 1; ; attempt++ {
		err := call()
		if err == nil || !isRetryable(err) || attempt >= pol.MaxAttempts {
			return err
		}
		delay := floorDelay(pol.Delay(attempt), err)
		if pol.MaxElapsed > 0 && pol.Clock.Now().Sub(start)+delay > pol.MaxElapsed {
			return err
		}
		if pol.OnRetry != nil {
			pol.OnRetry(attempt, delay, err)
		}
		c.retries.Add(1)
		if serr := pol.Clock.Sleep(ctx, delay); serr != nil {
			return err // cancelled mid-backoff; the last real error explains why we were here
		}
	}
}
