package serve

import (
	"bytes"
	"context"
	"fmt"
	"net/http"
	"reflect"
	"testing"
	"time"

	"repro/internal/serve/fault"
)

// The chaos conformance suite: seeded fault schedules against an in-process
// 3-replica routed cluster, with the self-healing client in front. The
// contract under test is the PR's capstone claim:
//
//   - every request is answered exactly once (one final outcome per call;
//     yield dies delivered exactly once, in order, across resumes);
//   - every successful response is byte-identical to the fault-free golden;
//   - a failed request surfaces only a retryable error (the exhausted
//     budget's last fault), never corruption dressed as an answer;
//   - retry amplification stays within the policy budget;
//   - nothing leaks — goroutines or connections.
//
// Schedules replay bit-identically from their seed, so any failure here is
// reproducible by its logged seed. CI runs this under -race.

// chaosFaultSpec is the standard chaos mix: ~38% of requests take a fault,
// every fault family represented, cuts landing mid-body for typical
// responses. Latency and slow-writes run through an injected no-op sleeper,
// so the suite exercises the code paths without the wall-clock cost.
func chaosFaultSpec() fault.Spec {
	return fault.Spec{
		RefusePM:    90,
		HTTP500PM:   80,
		ResetPM:     80,
		TruncatePM:  80,
		SlowPM:      50,
		LatencyPM:   200,
		MaxLatency:  3 * time.Millisecond,
		CutAfterMin: 80,
		CutAfterMax: 3000,
		SlowChunk:   256,
		SlowPause:   time.Millisecond,
	}
}

// chaosRetryPolicy is the client policy the suite runs under. Attempts are
// generous (the fault mix can be unlucky), delays are tiny (the schedule is
// what matters, not the waiting).
func chaosRetryPolicy(seed int64) *RetryPolicy {
	return &RetryPolicy{
		MaxAttempts: 8,
		BaseDelay:   time.Millisecond,
		MaxDelay:    4 * time.Millisecond,
		Seed:        seed,
	}
}

// chaosSpec is one logical request in the suite's fixed workload.
type chaosSpec struct {
	name string
	run  func(t *testing.T, c *Client) ([]byte, error)
}

// chaosWorkload is the request mix every schedule replays: tunes across
// designs that hash to different replicas, resumable yield streams, and a
// scattered Table 1 slice. Each run func returns the response in canonical
// bytes (the server's own JSON encoding round-trips exactly).
func chaosWorkload() []chaosSpec {
	tune := func(name string, req TuneRequest) chaosSpec {
		return chaosSpec{name: name, run: func(t *testing.T, c *Client) ([]byte, error) {
			resp, err := c.Tune(context.Background(), req)
			if err != nil {
				return nil, err
			}
			return encodeJSON(t, resp), nil
		}}
	}
	yield := func(name string, req YieldRequest) chaosSpec {
		return chaosSpec{name: name, run: func(t *testing.T, c *Client) ([]byte, error) {
			var buf bytes.Buffer
			seen := 0
			st, err := c.Yield(context.Background(), req, func(d *DieResult) error {
				// Exactly-once, in order — across any number of resumes.
				if d.Die != seen {
					return fmt.Errorf("die %d delivered at position %d", d.Die, seen)
				}
				seen++
				buf.Write(encodeJSON(t, d))
				return nil
			})
			if err != nil {
				return nil, err
			}
			if seen != req.Dies {
				return nil, fmt.Errorf("delivered %d dies, want %d", seen, req.Dies)
			}
			buf.Write(encodeJSON(t, YieldFooter{Stats: st}))
			return buf.Bytes(), nil
		}}
	}
	return []chaosSpec{
		tune("tune-chain8", TuneRequest{DesignRef: DesignRef{Netlist: chainBench(8), Name: "chain8"}, Beta: 0.05}),
		tune("tune-chain12", TuneRequest{DesignRef: DesignRef{Netlist: chainBench(12), Name: "chain12"}, Beta: 0.10}),
		tune("tune-chain16", TuneRequest{DesignRef: DesignRef{Netlist: chainBench(16), Name: "chain16"}, Beta: 0.05}),
		tune("tune-c1355", TuneRequest{DesignRef: DesignRef{Benchmark: "c1355"}, Beta: 0.05}),
		yield("yield-chain16", YieldRequest{DesignRef: DesignRef{Netlist: chainBench(16), Name: "chain16"}, Dies: 30, Seed: 7, Checkpoint: 6, Workers: 2}),
		yield("yield-chain12", YieldRequest{DesignRef: DesignRef{Netlist: chainBench(12), Name: "chain12"}, Dies: 24, Seed: 9, Checkpoint: 5}),
	}
}

// chaosCluster stands up the shared 3-replica routed cluster and returns
// the router's base URL.
func chaosCluster(t *testing.T) string {
	t.Helper()
	_, urls := newCluster(t, 3, Options{Workers: 4}, nil)
	_, c := newTestRouter(t, urls, RouterOptions{Spill: 1, BreakerThreshold: 3})
	return c.BaseURL
}

// chaosClient builds the faulted, self-healing client for one schedule:
// keep-alives are disabled so every attempt claims exactly one schedule
// slot, and the transport's connections are tracked for leak assertions.
func chaosClient(t *testing.T, baseURL string, seed int64, clock Clock, onFault func(fault.Decision), onRetry func(int, time.Duration, error)) (*Client, *fault.Schedule, *connTracker, *http.Transport) {
	t.Helper()
	sched, err := fault.NewSchedule(seed, chaosFaultSpec())
	if err != nil {
		t.Fatal(err)
	}
	tracker := &connTracker{}
	base := tracker.track(&http.Transport{DisableKeepAlives: true})
	c := NewClientWith(baseURL, &http.Client{Transport: &fault.Transport{
		Base:     base,
		Schedule: sched,
		Sleep:    func(time.Duration) {},
		OnFault:  onFault,
	}})
	c.Retry = chaosRetryPolicy(seed)
	c.Retry.Clock = clock
	c.Retry.OnRetry = onRetry
	return c, sched, tracker, base
}

// runChaosSeed replays the workload under one schedule and checks every
// outcome against the goldens. Returns how many faults fired.
func runChaosSeed(t *testing.T, baseURL string, seed int64, golden [][]byte) int64 {
	t.Helper()
	specs := chaosWorkload()
	faults := 0
	c, sched, tracker, base := chaosClient(t, baseURL, seed,
		nil, func(fault.Decision) { faults++ }, nil)

	for i, spec := range specs {
		body, err := spec.run(t, c)
		if err != nil {
			// A lost request is acceptable only as an exhausted retry
			// budget: the surfaced error must itself be retryable. A
			// non-retryable error means a fault leaked through as
			// corruption or a spurious client error.
			if !isRetryable(err) {
				t.Errorf("seed %d: %s surfaced non-retryable error: %v", seed, spec.name, err)
			}
			continue
		}
		if !bytes.Equal(body, golden[i]) {
			t.Errorf("seed %d: %s response differs from fault-free golden\n got: %s\nwant: %s",
				seed, spec.name, body, golden[i])
		}
	}
	// Amplification budget: at most MaxAttempts-1 retries per request.
	if max := int64(len(specs)) * int64(c.Retry.MaxAttempts-1); c.Retries() > max {
		t.Errorf("seed %d: %d retries for %d requests exceeds budget %d",
			seed, c.Retries(), len(specs), max)
	}
	if sched.Slots() == 0 {
		t.Errorf("seed %d: schedule claimed no slots", seed)
	}
	tracker.assertDrained(t, base)
	return int64(faults)
}

func TestChaosConformance(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos suite is not a -short test")
	}
	leakCheck(t)
	baseURL := chaosCluster(t)

	// Fault-free goldens, once: the endpoints are pure functions of the
	// request, so one golden serves every schedule.
	golden := make([][]byte, 0, len(chaosWorkload()))
	plain := NewClient(baseURL)
	for _, spec := range chaosWorkload() {
		body, err := spec.run(t, plain)
		if err != nil {
			t.Fatalf("fault-free golden %s: %v", spec.name, err)
		}
		golden = append(golden, body)
	}

	var totalFaults int64
	for seed := int64(1); seed <= 8; seed++ {
		t.Run(fmt.Sprintf("seed-%d", seed), func(t *testing.T) {
			totalFaults += runChaosSeed(t, baseURL, seed, golden)
		})
	}
	// Across 8 fixed schedules the fault mix cannot be all-clean; zero
	// injected faults means the injection layer is wired wrong.
	if totalFaults == 0 {
		t.Error("8 chaos schedules injected no faults at all")
	}

	// One rotating schedule widens coverage run over run; the seed is in
	// the log, so any failure replays bit-identically.
	rotating := time.Now().UnixNano()
	t.Run("rotating", func(t *testing.T) {
		t.Logf("rotating chaos seed %d (replay: fault.NewSchedule(%d, chaosFaultSpec()))", rotating, rotating)
		runChaosSeed(t, baseURL, rotating, golden)
	})
}

// TestChaosProxySocketFaults runs a reduced workload through the socket-
// level fault proxy in front of the router: kernel-level RSTs and FIN
// truncations instead of the RoundTripper's simulated ones. Successful
// responses must still match the fault-free goldens byte for byte.
func TestChaosProxySocketFaults(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos suite is not a -short test")
	}
	leakCheck(t)
	baseURL := chaosCluster(t)
	specs := chaosWorkload()

	golden := make([][]byte, len(specs))
	plain := NewClient(baseURL)
	for i, spec := range specs {
		body, err := spec.run(t, plain)
		if err != nil {
			t.Fatalf("fault-free golden %s: %v", spec.name, err)
		}
		golden[i] = body
	}

	sched, err := fault.NewSchedule(42, fault.Spec{
		RefusePM: 80, HTTP500PM: 80, ResetPM: 80, TruncatePM: 80,
		CutAfterMin: 80, CutAfterMax: 3000,
	})
	if err != nil {
		t.Fatal(err)
	}
	proxy, err := fault.NewProxy(baseURL, sched, func(time.Duration) {})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(proxy.Close)

	// One connection per request so every request maps to one proxy slot.
	tracker := &connTracker{}
	base := tracker.track(&http.Transport{DisableKeepAlives: true})
	c := NewClientWith(proxy.URL(), &http.Client{Transport: base})
	c.Retry = chaosRetryPolicy(42)

	for i, spec := range specs {
		body, err := spec.run(t, c)
		if err != nil {
			if !isRetryable(err) {
				t.Errorf("%s surfaced non-retryable error: %v", spec.name, err)
			}
			continue
		}
		if !bytes.Equal(body, golden[i]) {
			t.Errorf("%s response through fault proxy differs from golden", spec.name)
		}
	}
	if sched.Slots() == 0 {
		t.Error("proxy claimed no schedule slots")
	}
	tracker.assertDrained(t, base)
}

// chaosTrace replays the workload under one seed and records everything
// nondeterminism could touch: each fault decision as it fires, each retry
// (attempt and backoff, on a fake clock — no wall time), and each spec's
// final outcome bytes.
func chaosTrace(t *testing.T, baseURL string, seed int64) (faults, retries, outcomes []string) {
	t.Helper()
	c, _, tracker, base := chaosClient(t, baseURL, seed, newFakeClock(),
		func(d fault.Decision) { faults = append(faults, d.String()) },
		func(attempt int, delay time.Duration, err error) {
			retries = append(retries, fmt.Sprintf("attempt %d backoff %s", attempt, delay))
		})
	for _, spec := range chaosWorkload() {
		body, err := spec.run(t, c)
		if err != nil {
			outcomes = append(outcomes, fmt.Sprintf("%s: error", spec.name))
			continue
		}
		outcomes = append(outcomes, fmt.Sprintf("%s: %d bytes %x", spec.name, len(body), body))
	}
	tracker.assertDrained(t, base)
	return faults, retries, outcomes
}

// TestChaosReplaysIdentically is the determinism acceptance criterion:
// replaying a chaos seed reproduces the identical fault schedule AND the
// identical client retry timing — decision for decision, backoff for
// backoff, outcome for outcome.
func TestChaosReplaysIdentically(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos suite is not a -short test")
	}
	leakCheck(t)
	baseURL := chaosCluster(t)

	// Seed 1 faults on its very first slot, so the traces are never empty
	// (a clean schedule would make the equality below vacuous).
	const seed = 1
	faults1, retries1, out1 := chaosTrace(t, baseURL, seed)
	faults2, retries2, out2 := chaosTrace(t, baseURL, seed)

	if !reflect.DeepEqual(faults1, faults2) {
		t.Errorf("fault schedules diverged between replays:\nrun1: %v\nrun2: %v", faults1, faults2)
	}
	if !reflect.DeepEqual(retries1, retries2) {
		t.Errorf("retry timing diverged between replays:\nrun1: %v\nrun2: %v", retries1, retries2)
	}
	if !reflect.DeepEqual(out1, out2) {
		t.Errorf("outcomes diverged between replays:\nrun1: %v\nrun2: %v", out1, out2)
	}
	if len(faults1) == 0 {
		t.Error("seed 1 injected no faults; the replay assertion is vacuous")
	}
}
