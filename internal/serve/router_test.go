package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/flow"
)

// newCluster spins up n in-process fbbd replicas and returns their servers
// and base URLs. Every replica shares the per-replica options (the
// OnPrefixBuild hook is wrapped per replica so builds attribute to the
// replica that ran them).
func newCluster(t *testing.T, n int, opts Options, onBuild func(replica int, key string)) ([]*Server, []string) {
	t.Helper()
	leakCheck(t)
	servers := make([]*Server, n)
	urls := make([]string, n)
	for i := 0; i < n; i++ {
		o := opts
		if onBuild != nil {
			i := i
			o.OnPrefixBuild = func(key string) { onBuild(i, key) }
		}
		servers[i] = New(o)
		ts := httptest.NewServer(servers[i].Handler())
		t.Cleanup(ts.Close)
		urls[i] = ts.URL
	}
	return servers, urls
}

// newTestRouter fronts the given replica URLs with a Router behind
// httptest and returns the router, its handle, and a Client against it.
// The health interval is long so tests drive the view with CheckNow.
func newTestRouter(t *testing.T, urls []string, opts RouterOptions) (*Router, *Client) {
	t.Helper()
	leakCheck(t)
	opts.Replicas = urls
	if opts.HealthInterval == 0 {
		opts.HealthInterval = time.Hour // tests poll explicitly
	}
	rt, err := NewRouter(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Close)
	ts := httptest.NewServer(rt.Handler())
	t.Cleanup(ts.Close)
	return rt, NewClient(ts.URL)
}

// ownerIndex resolves which replica in urls owns the given design.
func ownerIndex(t *testing.T, rt *Router, urls []string, ref DesignRef) int {
	t.Helper()
	key, e := rt.designKey(&ref)
	if e != nil {
		t.Fatalf("designKey: %v", e)
	}
	seq := rt.ring.sequence(key, 1)
	if len(seq) == 0 {
		t.Fatal("no owner in ring")
	}
	for i, u := range urls {
		if u == seq[0].addr {
			return i
		}
	}
	t.Fatalf("owner %s not among replicas %v", seq[0].addr, urls)
	return -1
}

// TestRouterClusterCoalescing is the cluster-wide acceptance criterion:
// with N replicas behind the router and M concurrent identical requests,
// flow.PrefixBuilds increments exactly once across the whole cluster —
// consistent hashing sends every copy of the key to one replica, and that
// replica's singleflight cache builds once. The build is gated until every
// other request has joined it, so the claim is the routing + coalescing
// path, not lucky timing. Run under -race (CI does).
func TestRouterClusterCoalescing(t *testing.T) {
	const nReplicas, m = 3, 12
	var mu sync.Mutex
	buildsBy := map[int]int{}
	gate := make(chan struct{})
	servers, urls := newCluster(t, nReplicas, Options{Workers: m}, func(rep int, key string) {
		mu.Lock()
		buildsBy[rep]++
		mu.Unlock()
		<-gate
	})
	rt, c := newTestRouter(t, urls, RouterOptions{})
	owner := ownerIndex(t, rt, urls, DesignRef{Benchmark: "c1355"})

	before := flow.PrefixBuilds()
	req := TuneRequest{DesignRef: DesignRef{Benchmark: "c1355"}, Beta: 0.05}
	var wg sync.WaitGroup
	bodies := make([][]byte, m)
	for i := 0; i < m; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			status, body := postRaw(t, c, "/v1/tune", string(encodeJSON(t, req)))
			if status != 200 {
				t.Errorf("request %d: status %d: %s", i, status, body)
			}
			bodies[i] = body
		}(i)
	}
	// The winner is parked in the gate on the owner replica; wait until
	// the other m-1 requests joined its in-flight entry, then release.
	waitFor(t, 10*time.Second, func() bool { return servers[owner].cache.Stats().Joins >= m-1 },
		"not all %d requests joined the owner's in-flight build", m-1)
	close(gate)
	wg.Wait()

	if got := flow.PrefixBuilds() - before; got != 1 {
		t.Errorf("flow.Prefix built %d times across the cluster for %d identical requests", got, m)
	}
	if len(buildsBy) != 1 || buildsBy[owner] != 1 {
		t.Errorf("builds per replica %v, want exactly {%d: 1}", buildsBy, owner)
	}
	for i := 1; i < m; i++ {
		if !bytes.Equal(bodies[i], bodies[0]) {
			t.Errorf("request %d returned different bytes than request 0", i)
		}
	}
}

// TestRouterDrainRehash is the drain half of the acceptance criterion:
// draining the replica that owns a design re-routes its key with zero
// failed (non-503) client requests — the drain race is absorbed by the
// spill, and once the health view catches up the key lives on the
// survivor, where its prefix is built exactly once more.
func TestRouterDrainRehash(t *testing.T) {
	servers, urls := newCluster(t, 2, Options{}, nil)
	rt, c := newTestRouter(t, urls, RouterOptions{Spill: 1})
	ref := DesignRef{Benchmark: "c1355"}
	owner := ownerIndex(t, rt, urls, ref)
	survivor := 1 - owner

	tune := func() error {
		_, err := c.Tune(context.Background(), TuneRequest{DesignRef: ref, Beta: 0.05})
		return err
	}
	// Warm the owner.
	if err := tune(); err != nil {
		t.Fatal(err)
	}

	before := flow.PrefixBuilds()
	servers[owner].BeginDrain()
	// The router has not polled yet: the next request hits the draining
	// owner, gets its 503, and must spill to the survivor — not fail.
	for i := 0; i < 4; i++ {
		if err := tune(); err != nil {
			t.Fatalf("request %d during drain race failed: %v", i, err)
		}
	}
	// Health catches up: the owner leaves the ring, its key re-hashes.
	rt.CheckNow(context.Background())
	if got := ownerIndex(t, rt, urls, ref); got != survivor {
		t.Fatalf("after drain the key is owned by replica %d, want %d", got, survivor)
	}
	for i := 0; i < 4; i++ {
		if err := tune(); err != nil {
			t.Fatalf("request %d after re-hash failed: %v", i, err)
		}
	}
	// The survivor built the prefix exactly once (the spill request and
	// the re-hashed ones coalesced onto its cache).
	if got := flow.PrefixBuilds() - before; got != 1 {
		t.Errorf("%d prefix builds after drain, want 1 (on the survivor)", got)
	}
	if st := servers[survivor].cache.Stats(); st.Builds != 1 {
		t.Errorf("survivor built %d prefixes, want 1: %+v", st.Builds, st)
	}
	// And the drained replica served nothing new after leaving the ring.
	if n := servers[owner].inFlight.Load(); n != 0 {
		t.Errorf("drained owner still has %d in flight", n)
	}
}

// TestRouterRoutesDistinctDesignsAcrossReplicas: each design key routes to
// exactly one replica, repeatedly — and a spread of designs lands on more
// than one replica (the ring actually distributes).
func TestRouterRoutesDistinctDesignsAcrossReplicas(t *testing.T) {
	var mu sync.Mutex
	buildsBy := map[int]map[string]int{}
	_, urls := newCluster(t, 3, Options{}, func(rep int, key string) {
		mu.Lock()
		if buildsBy[rep] == nil {
			buildsBy[rep] = map[string]int{}
		}
		buildsBy[rep][key]++
		mu.Unlock()
	})
	_, c := newTestRouter(t, urls, RouterOptions{})

	benches := []string{"adder128", "c1355", "c3540", "c5315", "industrial1"}
	for round := 0; round < 2; round++ {
		for _, b := range benches {
			if _, err := c.Tune(context.Background(), TuneRequest{DesignRef: DesignRef{Benchmark: b}, Beta: 0.05}); err != nil {
				t.Fatalf("%s: %v", b, err)
			}
		}
	}

	mu.Lock()
	defer mu.Unlock()
	total := 0
	for rep, keys := range buildsBy {
		for key, n := range keys {
			total++
			if n != 1 {
				t.Errorf("replica %d built key %s %d times", rep, key, n)
			}
		}
	}
	if total != len(benches) {
		t.Errorf("%d prefix builds across the cluster for %d designs", total, len(benches))
	}
	if len(buildsBy) < 2 {
		t.Errorf("all %d designs routed to %d replica(s); ring not distributing", len(benches), len(buildsBy))
	}
}

// TestRouterTable1ScatterMatchesSingleServer: a scattered Table 1 request
// through the router returns byte-identical rows to one replica running
// the whole grid — the scatter/gather must not reorder or perturb cells.
func TestRouterTable1ScatterMatchesSingleServer(t *testing.T) {
	_, urls := newCluster(t, 2, Options{}, nil)
	_, c := newTestRouter(t, urls, RouterOptions{})
	_, single := newTestServer(t, Options{})

	// "nope" pins the error-row path: the router must synthesize the same
	// per-beta error rows the server would have produced.
	body := string(encodeJSON(t, Table1Request{
		Benchmarks:   []string{"adder128", "nope", "c1355"},
		Betas:        []float64{0.05, 0.10},
		ILPGateLimit: 1,
	}))
	statusR, viaRouter := postRaw(t, c, "/v1/table1", body)
	statusS, direct := postRaw(t, single, "/v1/table1", body)
	if statusR != 200 || statusS != 200 {
		t.Fatalf("status router %d, single %d", statusR, statusS)
	}
	if !bytes.Equal(viaRouter, direct) {
		t.Errorf("scattered table1 differs from single-server run:\nrouter: %s\nsingle: %s", viaRouter, direct)
	}
}

// TestRouterSheds503WithRetryAfter: when the whole cluster pushes back,
// the client sees the replica's own 503 with Retry-After intact — the
// backpressure contract holds end to end through the router.
func TestRouterSheds503WithRetryAfter(t *testing.T) {
	gate := make(chan struct{})
	servers, urls := newCluster(t, 2, Options{Workers: 1, Queue: -1}, func(int, string) { <-gate })
	rt, c := newTestRouter(t, urls, RouterOptions{Spill: 1})

	// Find, per replica, a design it owns: distinct uploaded netlists hash
	// all over the ring.
	var occupy [2]DesignRef
	found := 0
	for n := 8; found < 2 && n < 256; n++ {
		ref := DesignRef{Netlist: chainBench(n)}
		if idx := ownerIndex(t, rt, urls, ref); occupy[idx].Netlist == "" {
			occupy[idx] = ref
			found++
		}
	}
	if found != 2 {
		t.Fatal("could not find a design owned by each replica")
	}
	// Occupy the single worker on both replicas.
	var wg sync.WaitGroup
	defer wg.Wait()
	defer close(gate)
	for _, ref := range occupy {
		wg.Add(1)
		go func(ref DesignRef) {
			defer wg.Done()
			_, _ = c.Tune(context.Background(), TuneRequest{DesignRef: ref, Beta: 0.05})
		}(ref)
	}
	waitFor(t, 10*time.Second, func() bool {
		return servers[0].inFlight.Load() == 1 && servers[1].inFlight.Load() == 1
	}, "replicas never saturated")

	resp, err := http.Post(c.BaseURL+"/v1/tune", "application/json", bytes.NewReader(encodeJSON(t, TuneRequest{DesignRef: DesignRef{Netlist: chainBench(300)}, Beta: 0.05})))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("saturated cluster answered %d, want 503", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Error("503 through the router lost its Retry-After header")
	}
	var e ErrorResponse
	if err := json.NewDecoder(resp.Body).Decode(&e); err != nil || e.Error == "" {
		t.Errorf("503 body: %q, %v", e.Error, err)
	}
}

// TestRouterFailsOverDeadReplica: a replica that stops answering leaves
// the ring after a health check, and in the race before that its requests
// fail over via spill rather than erroring.
func TestRouterFailsOverDeadReplica(t *testing.T) {
	servers := make([]*Server, 2)
	urls := make([]string, 2)
	tss := make([]*httptest.Server, 2)
	for i := range servers {
		servers[i] = New(Options{})
		tss[i] = httptest.NewServer(servers[i].Handler())
		urls[i] = tss[i].URL
	}
	t.Cleanup(func() {
		for _, ts := range tss {
			ts.Close()
		}
	})
	rt, c := newTestRouter(t, urls, RouterOptions{Spill: 1})
	ref := DesignRef{Benchmark: "c3540"}
	owner := ownerIndex(t, rt, urls, ref)

	tss[owner].Close() // the owner drops off the network
	// Race window: the router still believes in the owner; the transport
	// error must spill, not surface.
	if _, err := c.Tune(context.Background(), TuneRequest{DesignRef: ref, Beta: 0.05}); err != nil {
		t.Fatalf("request during dead-replica race failed: %v", err)
	}
	rt.CheckNow(context.Background())
	if got := ownerIndex(t, rt, urls, ref); got == owner {
		t.Fatal("dead replica still owns its keys after a health check")
	}
	if _, err := c.Tune(context.Background(), TuneRequest{DesignRef: ref, Beta: 0.05}); err != nil {
		t.Fatalf("request after failover failed: %v", err)
	}
}

// TestRouterKeyResolution400s: requests the router cannot key — no design,
// unknown benchmark, unparsable netlist — are the client's 400 at the
// router, matching the replica's own validation.
func TestRouterKeyResolution400s(t *testing.T) {
	_, urls := newCluster(t, 2, Options{}, nil)
	rt, c := newTestRouter(t, urls, RouterOptions{})
	for name, body := range map[string]string{
		"no design":        `{}`,
		"unknown bench":    `{"benchmark":"nope"}`,
		"bad netlist":      `{"netlist":"INPUT(","dies":3}`,
		"ambiguous design": `{"benchmark":"c1355","netlist":"x = NAND(a,b)"}`,
		"not json":         `{`,
	} {
		status, respBody := postRaw(t, c, "/v1/tune", body)
		if status != http.StatusBadRequest {
			t.Errorf("%s: status %d (%s), want 400", name, status, respBody)
		}
	}
	if rt.keyErrors.Load() == 0 {
		t.Error("router key errors not counted")
	}
}

// TestRouterYieldStreams: an NDJSON yield study streams through the router
// intact — die lines in order, footer last, typed client none the wiser.
func TestRouterYieldStreams(t *testing.T) {
	_, urls := newCluster(t, 2, Options{}, nil)
	_, c := newTestRouter(t, urls, RouterOptions{})
	seen := 0
	stats, err := c.Yield(context.Background(), YieldRequest{
		DesignRef: DesignRef{Netlist: chainBench(16)},
		Dies:      25, Seed: 3,
	}, func(d *DieResult) error {
		if d.Die != seen {
			return fmt.Errorf("out-of-order die %d at position %d", d.Die, seen)
		}
		seen++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if seen != 25 || stats == nil || stats.Dies != 25 {
		t.Fatalf("stream through router incomplete: %d lines, stats %+v", seen, stats)
	}
}

// TestRouterClusterStats: GET /v1/stats through the router returns the
// cluster view — every replica with health and live stats — and the
// router's /healthz reports the healthy count.
func TestRouterClusterStats(t *testing.T) {
	_, urls := newCluster(t, 2, Options{}, nil)
	_, c := newTestRouter(t, urls, RouterOptions{})
	if _, err := c.Tune(context.Background(), TuneRequest{DesignRef: DesignRef{Benchmark: "c1355"}, Beta: 0.05}); err != nil {
		t.Fatal(err)
	}
	cs, err := c.ClusterStats(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(cs.Replicas) != 2 {
		t.Fatalf("cluster view has %d replicas, want 2: %+v", len(cs.Replicas), cs)
	}
	forwarded := int64(0)
	for _, r := range cs.Replicas {
		if r.Stats == nil {
			t.Errorf("replica %s: no stats (%s)", r.Addr, r.Err)
		}
		if !r.Healthy {
			t.Errorf("replica %s unhealthy in a healthy cluster", r.Addr)
		}
		forwarded += r.Forwarded
	}
	if forwarded != 1 {
		t.Errorf("forwarded %d, want 1", forwarded)
	}

	// A plain replica's ClusterStats has no replicas — the discovery
	// contract fbbload's router detection rides on.
	plain := NewClient(urls[0])
	pcs, err := plain.ClusterStats(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(pcs.Replicas) != 0 {
		t.Errorf("plain fbbd advertises %d replicas", len(pcs.Replicas))
	}

	hzResp, err := http.Get(c.BaseURL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer hzResp.Body.Close()
	var hz struct {
		Status  string `json:"status"`
		Healthy int    `json:"healthy"`
	}
	if err := json.NewDecoder(hzResp.Body).Decode(&hz); err != nil || hz.Status != "ok" || hz.Healthy != 2 {
		t.Errorf("router healthz: %+v (%v)", hz, err)
	}
}

// TestHashRingDrainMovesOnlyOwnedKeys pins the consistent-hashing
// property the cluster's cache economics depend on: taking one replica
// out of the ring re-homes that replica's keys and no others.
func TestHashRingDrainMovesOnlyOwnedKeys(t *testing.T) {
	reps := make([]*replica, 3)
	for i := range reps {
		reps[i] = &replica{addr: fmt.Sprintf("http://r%d", i), checkCh: make(chan struct{}, 1)}
		reps[i].healthy.Store(true)
	}
	ring := newHashRing(reps, 64)

	keys := make([]string, 200)
	ownersBefore := make([]*replica, len(keys))
	for i := range keys {
		keys[i] = fmt.Sprintf("key-%d", i)
		seq := ring.sequence(keys[i], 1)
		if len(seq) != 1 {
			t.Fatalf("key %d: no owner", i)
		}
		ownersBefore[i] = seq[0]
	}
	// Sanity: the ring spreads keys over all three replicas.
	byRep := map[*replica]int{}
	for _, o := range ownersBefore {
		byRep[o]++
	}
	if len(byRep) != 3 {
		t.Fatalf("200 keys landed on %d of 3 replicas", len(byRep))
	}

	reps[0].draining.Store(true)
	moved := 0
	for i, key := range keys {
		seq := ring.sequence(key, 1)
		if len(seq) != 1 {
			t.Fatalf("key %d lost its owner after drain", i)
		}
		if ownersBefore[i] == reps[0] {
			if seq[0] == reps[0] {
				t.Errorf("key %d still owned by the draining replica", i)
			}
			moved++
		} else if seq[0] != ownersBefore[i] {
			t.Errorf("key %d moved (%s -> %s) though its owner is not draining",
				i, ownersBefore[i].addr, seq[0].addr)
		}
	}
	if moved == 0 {
		t.Error("draining replica owned no keys; test is vacuous")
	}

	// The replica's return restores exactly its old keys.
	reps[0].draining.Store(false)
	for i, key := range keys {
		if seq := ring.sequence(key, 1); seq[0] != ownersBefore[i] {
			t.Errorf("key %d did not return to its original owner", i)
		}
	}

	// Spill sequences: distinct replicas, owner first.
	for _, key := range keys[:20] {
		seq := ring.sequence(key, 3)
		if len(seq) != 3 {
			t.Fatalf("sequence(3) returned %d replicas", len(seq))
		}
		if seq[0] == seq[1] || seq[1] == seq[2] || seq[0] == seq[2] {
			t.Fatal("spill sequence repeats a replica")
		}
	}
}

// TestNewRouterValidation: bad replica sets are construction errors.
func TestNewRouterValidation(t *testing.T) {
	if _, err := NewRouter(RouterOptions{}); err == nil {
		t.Error("empty replica set accepted")
	}
	if _, err := NewRouter(RouterOptions{Replicas: []string{"http://a", "http://a"}}); err == nil {
		t.Error("duplicate replicas accepted")
	}
	if _, err := NewRouter(RouterOptions{Replicas: []string{" "}}); err == nil {
		t.Error("blank replica accepted")
	}
}

// TestRouterNoHealthyReplicas: with every replica out of the ring the
// router sheds with its own 503 + Retry-After rather than hanging.
func TestRouterNoHealthyReplicas(t *testing.T) {
	_, urls := newCluster(t, 2, Options{}, nil)
	rt, c := newTestRouter(t, urls, RouterOptions{})
	for _, rep := range rt.ring.replicas {
		rep.healthy.Store(false)
	}
	_, err := c.Tune(context.Background(), TuneRequest{DesignRef: DesignRef{Benchmark: "c1355"}, Beta: 0.05})
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("got %v, want 503 APIError", err)
	}
	if apiErr.RetryAfterSec == 0 {
		t.Error("router's own 503 has no Retry-After")
	}
	if !apiErr.IsRetryable() {
		t.Error("router shed not retryable")
	}
}
