package serve

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// fakeClock is an injectable Clock: Sleep records the requested backoff and
// advances virtual time instantly, so Retry-After floors and budgets are
// pinned exactly, with zero wall-clock dependence (the kernel determinism
// contract extended to the retry layer).
type fakeClock struct {
	mu     sync.Mutex
	now    time.Time
	sleeps []time.Duration
}

func newFakeClock() *fakeClock {
	return &fakeClock{now: time.Date(2020, 1, 1, 0, 0, 0, 0, time.UTC)}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) Sleep(ctx context.Context, d time.Duration) error {
	c.mu.Lock()
	c.sleeps = append(c.sleeps, d)
	c.now = c.now.Add(d)
	c.mu.Unlock()
	return ctx.Err()
}

func (c *fakeClock) recorded() []time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]time.Duration(nil), c.sleeps...)
}

// TestRetryDelayDeterministicJitter: the backoff schedule is a pure function
// of (Seed, attempt) — capped exponential, jittered into [d/2, d), identical
// across policy instances with the same seed and different across seeds.
func TestRetryDelayDeterministicJitter(t *testing.T) {
	a := RetryPolicy{Seed: 9, BaseDelay: 50 * time.Millisecond, MaxDelay: 2 * time.Second}
	b := RetryPolicy{Seed: 9, BaseDelay: 50 * time.Millisecond, MaxDelay: 2 * time.Second}
	other := RetryPolicy{Seed: 10, BaseDelay: 50 * time.Millisecond, MaxDelay: 2 * time.Second}
	diverged := false
	for k := 1; k <= 12; k++ {
		d := a.Delay(k)
		if d != b.Delay(k) {
			t.Fatalf("attempt %d: same seed gave %s vs %s", k, d, b.Delay(k))
		}
		if d != other.Delay(k) {
			diverged = true
		}
		base := 50 * time.Millisecond << (k - 1)
		if base > 2*time.Second {
			base = 2 * time.Second
		}
		if d < base/2 || d > base {
			t.Fatalf("attempt %d: delay %s outside [%s, %s]", k, d, base/2, base)
		}
	}
	if !diverged {
		t.Fatal("seeds 9 and 10 produced identical 12-attempt schedules")
	}
}

// shedNTimes returns a handler that sheds the first n requests with 503 +
// Retry-After and then delegates, plus a counter of requests seen.
func shedNTimes(n int, retryAfterSec int, next http.Handler) (http.Handler, *atomic.Int64) {
	var seen atomic.Int64
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if seen.Add(1) <= int64(n) {
			writeError(w, &apiError{status: http.StatusServiceUnavailable, msg: "shed", retryAfter: retryAfterSec})
			return
		}
		next.ServeHTTP(w, r)
	}), &seen
}

// TestClientHonorsRetryAfterFloor: a retrying client must never schedule the
// next attempt before the server-advertised Retry-After, even when its own
// jittered backoff is far shorter. Pinned with the fake clock: the recorded
// sleeps are exactly the 3s floor, not the ~50ms jitter.
func TestClientHonorsRetryAfterFloor(t *testing.T) {
	s := New(Options{Workers: 1})
	h, seen := shedNTimes(2, 3, s.Handler())
	ts := httptest.NewServer(h)
	defer ts.Close()

	clk := newFakeClock()
	c := NewClient(ts.URL)
	c.Retry = &RetryPolicy{Seed: 1, Clock: clk}
	resp, err := c.Tune(context.Background(), TuneRequest{
		DesignRef: DesignRef{Netlist: chainBench(8), Name: "chain8"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Summary == nil {
		t.Fatal("no summary after retries")
	}
	if got := seen.Load(); got != 3 {
		t.Fatalf("server saw %d requests, want 3", got)
	}
	sleeps := clk.recorded()
	if len(sleeps) != 2 {
		t.Fatalf("recorded %d backoffs, want 2: %v", len(sleeps), sleeps)
	}
	for i, d := range sleeps {
		if d != 3*time.Second {
			t.Fatalf("backoff %d = %s, want exactly the 3s Retry-After floor", i, d)
		}
	}
	if got := c.Retries(); got != 2 {
		t.Fatalf("Retries() = %d, want 2", got)
	}
}

// TestClientRetryTimingReplays: the repeated-run equality contract at the
// client level — two fresh clients with the same policy seed, driven through
// the same failure sequence, schedule byte-identical backoff sequences.
func TestClientRetryTimingReplays(t *testing.T) {
	run := func() []time.Duration {
		ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			writeError(w, &apiError{status: http.StatusInternalServerError, msg: "boom"})
		}))
		defer ts.Close()
		clk := newFakeClock()
		c := NewClient(ts.URL)
		c.Retry = &RetryPolicy{Seed: 77, MaxAttempts: 5, Clock: clk}
		if _, err := c.Stats(context.Background()); err == nil {
			t.Fatal("expected failure")
		}
		return clk.recorded()
	}
	first, second := run(), run()
	if len(first) != 4 {
		t.Fatalf("recorded %d backoffs, want 4 (MaxAttempts-1)", len(first))
	}
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("backoff %d differs across runs: %s vs %s", i, first[i], second[i])
		}
	}
}

// TestClientRetryBudgets: MaxAttempts bounds the request count exactly, and
// MaxElapsed refuses a backoff that would cross the time budget.
func TestClientRetryBudgets(t *testing.T) {
	t.Run("attempts", func(t *testing.T) {
		var seen atomic.Int64
		ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			seen.Add(1)
			writeError(w, &apiError{status: http.StatusServiceUnavailable, msg: "shed", retryAfter: 1})
		}))
		defer ts.Close()
		c := NewClient(ts.URL)
		c.Retry = &RetryPolicy{Seed: 2, MaxAttempts: 3, Clock: newFakeClock()}
		_, err := c.Stats(context.Background())
		var apiErr *APIError
		if !errors.As(err, &apiErr) || apiErr.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("got %v, want the final 503", err)
		}
		if got := seen.Load(); got != 3 {
			t.Fatalf("server saw %d requests, want exactly MaxAttempts=3", got)
		}
	})
	t.Run("elapsed", func(t *testing.T) {
		var seen atomic.Int64
		ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			seen.Add(1)
			writeError(w, &apiError{status: http.StatusServiceUnavailable, msg: "shed", retryAfter: 10})
		}))
		defer ts.Close()
		clk := newFakeClock()
		c := NewClient(ts.URL)
		c.Retry = &RetryPolicy{Seed: 2, MaxAttempts: 10, MaxElapsed: 5 * time.Second, Clock: clk}
		if _, err := c.Stats(context.Background()); err == nil {
			t.Fatal("expected failure")
		}
		// The 10s Retry-After floor would blow the 5s budget: no retry.
		if got := seen.Load(); got != 1 {
			t.Fatalf("server saw %d requests, want 1 (backoff would cross MaxElapsed)", got)
		}
		if len(clk.recorded()) != 0 {
			t.Fatalf("slept %v despite the budget refusal", clk.recorded())
		}
	})
}

// TestClientNoRetryOnClientError: 4xx is the caller's bug; retrying cannot
// help and must not happen.
func TestClientNoRetryOnClientError(t *testing.T) {
	var seen atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		seen.Add(1)
		writeError(w, badRequest("no design"))
	}))
	defer ts.Close()
	c := NewClient(ts.URL)
	c.Retry = &RetryPolicy{Seed: 3, Clock: newFakeClock()}
	_, err := c.Tune(context.Background(), TuneRequest{})
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.StatusCode != http.StatusBadRequest {
		t.Fatalf("got %v, want a 400", err)
	}
	if got := seen.Load(); got != 1 {
		t.Fatalf("server saw %d requests, want 1", got)
	}
	if c.Retries() != 0 {
		t.Fatalf("Retries() = %d after a non-retryable failure", c.Retries())
	}
}

// TestClientRetriesTransportErrors: a refused connection is retryable — the
// request never reached a (pure) endpoint.
func TestClientRetriesTransportErrors(t *testing.T) {
	// A listener that is immediately closed: every dial is refused.
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	url := ts.URL
	ts.Close()
	c := NewClient(url)
	clk := newFakeClock()
	c.Retry = &RetryPolicy{Seed: 4, MaxAttempts: 3, Clock: clk}
	if _, err := c.Stats(context.Background()); err == nil {
		t.Fatal("expected failure against a closed listener")
	}
	if got := len(clk.recorded()); got != 2 {
		t.Fatalf("recorded %d backoffs, want 2", got)
	}
}

// cutRT truncates response bodies per scripted request index: cuts[i] >= 0
// caps request i's body at that many bytes (then closes the underlying
// connection, like a dropped peer); -1 passes through clean.
type cutRT struct {
	base http.RoundTripper
	mu   sync.Mutex
	cuts []int
	i    int
}

func (rt *cutRT) RoundTrip(req *http.Request) (*http.Response, error) {
	rt.mu.Lock()
	k := rt.i
	rt.i++
	rt.mu.Unlock()
	resp, err := rt.base.RoundTrip(req)
	if err != nil || k >= len(rt.cuts) || rt.cuts[k] < 0 {
		return resp, err
	}
	resp.Body = &truncBody{rc: resp.Body, remain: rt.cuts[k]}
	return resp, nil
}

type truncBody struct {
	rc     io.ReadCloser
	remain int
	done   bool
}

func (b *truncBody) Read(p []byte) (int, error) {
	if b.done || b.remain <= 0 {
		if !b.done {
			b.done = true
			_ = b.rc.Close()
		}
		return 0, io.EOF
	}
	if len(p) > b.remain {
		p = p[:b.remain]
	}
	n, err := b.rc.Read(p)
	b.remain -= n
	if err != nil {
		b.done = true
	}
	return n, err
}

func (b *truncBody) Close() error {
	if !b.done {
		b.done = true
		_ = b.rc.Close()
	}
	return nil
}

// TestYieldStreamErrorSurfacesFrontier (satellite): a mid-stream failure
// must report which die the stream died at, not an opaque decode error —
// here 3 complete die lines arrive, then a cut mid-line.
func TestYieldStreamErrorSurfacesFrontier(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/x-ndjson")
		for i := 0; i < 3; i++ {
			fmt.Fprintf(w, `{"die":%d,"seed":1,"betaActual":0,"betaSensed":0,"met":true,"iters":0,"dcritBeforePS":1,"dcritAfterPS":1,"leakBeforeNW":1,"leakAfterNW":1}`+"\n", i)
		}
		io.WriteString(w, `{"die":3,"seed":1,"betaActu`) // cut mid-line, no footer
	}))
	defer ts.Close()
	c := NewClient(ts.URL)
	delivered := 0
	_, err := c.Yield(context.Background(), YieldRequest{
		DesignRef: DesignRef{Benchmark: "c432"}, Dies: 10,
	}, func(d *DieResult) error { delivered++; return nil })
	var se *StreamError
	if !errors.As(err, &se) {
		t.Fatalf("got %T (%v), want *StreamError", err, err)
	}
	if se.NextDie != 3 {
		t.Fatalf("StreamError.NextDie = %d, want 3", se.NextDie)
	}
	if delivered != 3 {
		t.Fatalf("delivered %d dies before the error, want 3", delivered)
	}
	if !strings.Contains(err.Error(), "die 3") {
		t.Fatalf("error %q does not name the frontier", err)
	}
}

// yieldCollect drives one Yield call and returns the delivered die lines
// re-encoded exactly as the server writes them, plus the footer bytes.
func yieldCollect(t *testing.T, c *Client, req YieldRequest) ([][]byte, []byte) {
	t.Helper()
	var dies [][]byte
	st, err := c.Yield(context.Background(), req, func(d *DieResult) error {
		dies = append(dies, encodeJSON(t, d))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return dies, encodeJSON(t, YieldFooter{Stats: st})
}

// TestYieldRetryResumesMidStreamCuts: the end-to-end resume contract — a
// stream cut twice mid-flight, resumed from checkpoints, must deliver every
// die exactly once in order and reproduce the fault-free stream's die bytes
// and footer bytes exactly.
func TestYieldRetryResumesMidStreamCuts(t *testing.T) {
	leakCheck(t)
	_, c := newTestServer(t, Options{Workers: 2})
	req := YieldRequest{
		DesignRef:  DesignRef{Netlist: chainBench(24), Name: "chain24"},
		Dies:       40,
		Seed:       11,
		Checkpoint: 8,
		Workers:    2,
	}
	wantDies, wantFooter := yieldCollect(t, c, req)
	if len(wantDies) != 40 {
		t.Fatalf("fault-free run delivered %d dies, want 40", len(wantDies))
	}

	// Same server, a client whose transport cuts the first two attempts
	// mid-body (far enough in that dies and a checkpoint got through).
	tr := &cutRT{base: http.DefaultTransport, cuts: []int{4000, 2000, -1}}
	hc := &http.Client{Transport: tr}
	rc := NewClientWith(c.BaseURL, hc)
	clk := newFakeClock()
	rc.Retry = &RetryPolicy{Seed: 5, MaxAttempts: 5, Clock: clk}

	gotDies, gotFooter := yieldCollect(t, rc, req)
	if rc.Retries() == 0 {
		t.Fatal("the cut transport caused no retries; the test exercised nothing")
	}
	if len(gotDies) != len(wantDies) {
		t.Fatalf("resumed run delivered %d dies, want %d", len(gotDies), len(wantDies))
	}
	for i := range wantDies {
		if string(gotDies[i]) != string(wantDies[i]) {
			t.Fatalf("die %d diverged after resume:\nwant %s\ngot  %s", i, wantDies[i], gotDies[i])
		}
	}
	if string(gotFooter) != string(wantFooter) {
		t.Fatalf("footer diverged after resume:\nwant %s\ngot  %s", wantFooter, gotFooter)
	}
}

// TestYieldResumeRequestValidation: the server rejects malformed resume
// tokens up front.
func TestYieldResumeRequestValidation(t *testing.T) {
	_, c := newTestServer(t, Options{Workers: 1})
	body := `{"benchmark":"c432","dies":10,"resume":{"ckpt":3,"acc":{"dies":2}}}`
	status, raw := postRaw(t, c, "/v1/yield", body)
	if status != http.StatusBadRequest {
		t.Fatalf("status %d, want 400: %s", status, raw)
	}
	if !strings.Contains(string(raw), "resume.acc covers 2 dies") {
		t.Fatalf("body %q does not explain the mismatch", raw)
	}
}
