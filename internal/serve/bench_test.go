package serve

import (
	"context"
	"net/http/httptest"
	"testing"
)

// The serve hot path, measured end to end through HTTP: a cached request
// pays JSON + one Allocator.At + solve on the shared prefix; a cold request
// additionally rebuilds the prefix (gen, place, STA, allocator). The gap is
// the value of the coalesced LRU — CI smoke-runs both at -benchtime=1x.

func BenchmarkServeTuneCachedPrefix(b *testing.B) {
	s := New(Options{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	c := NewClient(ts.URL)
	req := TuneRequest{DesignRef: DesignRef{Benchmark: "c1355"}, Beta: 0.05}
	if _, err := c.Tune(context.Background(), req); err != nil {
		b.Fatal(err) // warm the cache
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Tune(context.Background(), req); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkServeTuneColdPrefix(b *testing.B) {
	// Capacity 1 with alternating designs: every request evicts the
	// other's prefix, so each one rebuilds from scratch.
	s := New(Options{CacheSize: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	c := NewClient(ts.URL)
	reqs := [2]TuneRequest{
		{DesignRef: DesignRef{Benchmark: "c1355"}, Beta: 0.05},
		{DesignRef: DesignRef{Netlist: chainBench(439)}, Beta: 0.05},
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Tune(context.Background(), reqs[i%2]); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkServeYieldStream(b *testing.B) {
	s := New(Options{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	c := NewClient(ts.URL)
	req := YieldRequest{DesignRef: DesignRef{Benchmark: "c1355"}, Dies: 16, Seed: 5}
	if _, err := c.Yield(context.Background(), req, nil); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Yield(context.Background(), req, nil); err != nil {
			b.Fatal(err)
		}
	}
}
