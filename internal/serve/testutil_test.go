package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// waitFor polls cond every millisecond until it holds, failing the test with
// the formatted message if it does not within timeout. It replaces hand-rolled
// time.Now deadline loops so each test states only its condition.
func waitFor(t *testing.T, timeout time.Duration, cond func() bool, format string, args ...any) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf(format, args...)
		}
		time.Sleep(time.Millisecond)
	}
}

// newTestServer spins up a Server behind httptest and returns it with a
// matching Client.
func newTestServer(t *testing.T, opts Options) (*Server, *Client) {
	t.Helper()
	s := New(opts)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, NewClient(ts.URL)
}

// chainBench returns a tiny ISCAS .bench netlist: a NAND chain of the given
// length re-reading the primary inputs so every gate stays 2-input. Small
// enough that a 10k-die yield study runs in seconds, yet a real placement
// with real timing paths.
func chainBench(gates int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "# chain%d\n", gates)
	fmt.Fprintln(&b, "INPUT(a)")
	fmt.Fprintln(&b, "INPUT(b)")
	fmt.Fprintf(&b, "OUTPUT(n%d)\n", gates-1)
	fmt.Fprintln(&b, "n0 = NAND(a, b)")
	for i := 1; i < gates; i++ {
		other := "a"
		if i%2 == 0 {
			other = "b"
		}
		fmt.Fprintf(&b, "n%d = NAND(n%d, %s)\n", i, i-1, other)
	}
	return b.String()
}

// encodeJSON marshals v exactly as the server does (json.Encoder: compact,
// trailing newline), so differential tests can compare raw bytes.
func encodeJSON(t *testing.T, v any) []byte {
	t.Helper()
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	if err := enc.Encode(v); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// postRaw issues a POST and returns status code and raw body.
func postRaw(t *testing.T, c *Client, path, body string) (int, []byte) {
	t.Helper()
	resp, err := c.httpClient().Post(c.BaseURL+path, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, buf.Bytes()
}
