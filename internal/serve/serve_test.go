package serve

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/flow"
	"repro/internal/netlist"
)

// --- PrefixCache unit tests (fake builds: the cache never inspects the
// prefix, so a zero value stands in) ---

func TestPrefixCacheCoalescesConcurrentBuilds(t *testing.T) {
	var builds atomic.Int64
	c := NewPrefixCache(4, nil)
	gate := make(chan struct{})
	const n = 16
	var wg sync.WaitGroup
	results := make([]*flow.Prefix, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			pfx, err := c.Get(context.Background(), "k", func() (*flow.Prefix, error) {
				builds.Add(1)
				<-gate
				return &flow.Prefix{}, nil
			})
			if err != nil {
				t.Error(err)
			}
			results[i] = pfx
		}(i)
	}
	// Wait until the loser goroutines have joined the in-flight entry,
	// then let the winner finish.
	waitFor(t, 5*time.Second, func() bool { return c.Stats().Joins >= n-1 },
		"not all loser goroutines joined the in-flight entry")
	close(gate)
	wg.Wait()
	if got := builds.Load(); got != 1 {
		t.Fatalf("coalescing failed: %d builds for 16 concurrent gets", got)
	}
	for i := 1; i < n; i++ {
		if results[i] != results[0] {
			t.Fatalf("get %d returned a different prefix instance", i)
		}
	}
	st := c.Stats()
	if st.Builds != 1 || st.Misses != 1 || st.Hits != n-1 || st.Len != 1 {
		t.Fatalf("stats off: %+v", st)
	}
}

func TestPrefixCacheLRUEviction(t *testing.T) {
	c := NewPrefixCache(2, nil)
	builds := map[string]int{}
	get := func(key string) {
		t.Helper()
		if _, err := c.Get(context.Background(), key, func() (*flow.Prefix, error) {
			builds[key]++
			return &flow.Prefix{}, nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	get("a")
	get("b")
	get("a") // refresh a: b is now the LRU
	get("c") // evicts b
	if c.Len() != 2 {
		t.Fatalf("len %d after eviction, want 2", c.Len())
	}
	get("a") // still resident
	get("b") // rebuilt
	if builds["a"] != 1 {
		t.Errorf("a built %d times, want 1 (should have stayed resident)", builds["a"])
	}
	if builds["b"] != 2 {
		t.Errorf("b built %d times, want 2 (evicted then rebuilt)", builds["b"])
	}
	if ev := c.Stats().Evictions; ev < 2 {
		t.Errorf("evictions %d, want >= 2", ev)
	}
}

// TestPrefixCacheFailedBuildDoesNotEvict pins the garbage-traffic
// invariant: a build that fails must never cost a resident placement its
// slot, even on a full cache where an insert-time eviction policy would
// have dropped the LRU entry before the failure was known.
func TestPrefixCacheFailedBuildDoesNotEvict(t *testing.T) {
	c := NewPrefixCache(1, nil)
	goodBuilds := 0
	good := func() (*flow.Prefix, error) {
		goodBuilds++
		return &flow.Prefix{}, nil
	}
	if _, err := c.Get(context.Background(), "good", good); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		_, err := c.Get(context.Background(), "bad", func() (*flow.Prefix, error) {
			return nil, errors.New("boom")
		})
		if err == nil {
			t.Fatal("failing build succeeded")
		}
	}
	if _, err := c.Get(context.Background(), "good", good); err != nil {
		t.Fatal(err)
	}
	if goodBuilds != 1 {
		t.Fatalf("resident placement rebuilt %d times: failed builds evicted it", goodBuilds)
	}
}

func TestPrefixCacheDoesNotRetainFailures(t *testing.T) {
	c := NewPrefixCache(4, nil)
	calls := 0
	boom := errors.New("boom")
	for i := 0; i < 3; i++ {
		_, err := c.Get(context.Background(), "bad", func() (*flow.Prefix, error) {
			calls++
			return nil, boom
		})
		if !errors.Is(err, boom) {
			t.Fatalf("got %v, want boom", err)
		}
	}
	if calls != 3 {
		t.Fatalf("failed build cached: %d calls, want 3", calls)
	}
	if c.Len() != 0 {
		t.Fatalf("failed entry retained: len %d", c.Len())
	}
}

func TestPrefixCacheWaiterHonoursContext(t *testing.T) {
	c := NewPrefixCache(2, nil)
	gate := make(chan struct{})
	started := make(chan struct{})
	go func() {
		c.Get(context.Background(), "k", func() (*flow.Prefix, error) {
			close(started)
			<-gate
			return &flow.Prefix{}, nil
		})
	}()
	<-started
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := c.Get(ctx, "k", nil); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled waiter got %v", err)
	}
	close(gate)
}

// TestPrefixCacheFailedJoinAccounting is the regression test for the
// stats misaccounting bug: a Get that joined an in-flight build used to be
// booked as a hit at join time, even when that build then failed — a bad
// design being hammered reported a near-perfect hit rate while serving
// nothing but errors. Joins must resolve into Hits only on success;
// failed builds and expired waiter contexts are FailedJoins.
func TestPrefixCacheFailedJoinAccounting(t *testing.T) {
	c := NewPrefixCache(4, nil)
	boom := errors.New("boom")

	// Two joiners attach to a build that fails.
	gate := make(chan struct{})
	results := make(chan error, 3)
	go func() {
		_, err := c.Get(context.Background(), "bad", func() (*flow.Prefix, error) {
			<-gate
			return nil, boom
		})
		results <- err
	}()
	waitFor(t, 5*time.Second, func() bool { return c.Stats().Misses == 1 },
		"winner never started its build")
	for i := 0; i < 2; i++ {
		go func() {
			_, err := c.Get(context.Background(), "bad", nil)
			results <- err
		}()
	}
	waitFor(t, 5*time.Second, func() bool { return c.Stats().Joins == 2 },
		"joiners never attached")
	close(gate)
	for i := 0; i < 3; i++ {
		if err := <-results; !errors.Is(err, boom) {
			t.Fatalf("got %v, want boom", err)
		}
	}
	st := c.Stats()
	if st.Hits != 0 || st.FailedJoins != 2 {
		t.Fatalf("joins on a failed build booked as hits: %+v", st)
	}

	// A waiter whose context expires is a failed join even though the
	// build goes on to succeed for everyone else; a waiter that sees the
	// success is a hit.
	gate2 := make(chan struct{})
	done := make(chan error, 2)
	go func() {
		_, err := c.Get(context.Background(), "good", func() (*flow.Prefix, error) {
			<-gate2
			return &flow.Prefix{}, nil
		})
		done <- err
	}()
	waitFor(t, 5*time.Second, func() bool { return c.Stats().Misses == 2 },
		"second winner never started")
	ctx, cancel := context.WithCancel(context.Background())
	expired := make(chan error, 1)
	go func() {
		_, err := c.Get(ctx, "good", nil)
		expired <- err
	}()
	go func() {
		_, err := c.Get(context.Background(), "good", nil)
		done <- err
	}()
	waitFor(t, 5*time.Second, func() bool { return c.Stats().Joins == 4 },
		"waiters never attached to the second build")
	cancel()
	if err := <-expired; !errors.Is(err, context.Canceled) {
		t.Fatalf("expired waiter got %v", err)
	}
	close(gate2)
	for i := 0; i < 2; i++ {
		if err := <-done; err != nil {
			t.Fatalf("successful build surfaced %v", err)
		}
	}
	st = c.Stats()
	if st.Joins != 4 || st.FailedJoins != 3 || st.Hits != 1 {
		t.Fatalf("join accounting off: %+v (want joins=4 failedJoins=3 hits=1)", st)
	}
}

// --- DesignKey ---

func TestDesignKeyDistinguishesDesignsAndRows(t *testing.T) {
	lib := New(Options{}).opts.Library
	parse := func(text, name string) *netlist.Design {
		t.Helper()
		d, err := netlist.ParseBench(strings.NewReader(text), name, lib)
		if err != nil {
			t.Fatal(err)
		}
		return d
	}
	d1 := parse(chainBench(12), "chain")
	d1b := parse(chainBench(12), "chain")
	d2 := parse(chainBench(13), "chain")
	d3 := parse(chainBench(12), "chain2")
	if DesignKey(d1, 0) != DesignKey(d1b, 0) {
		t.Error("identical designs got different keys")
	}
	if DesignKey(d1, 0) == DesignKey(d2, 0) {
		t.Error("different structures share a key")
	}
	if DesignKey(d1, 0) == DesignKey(d3, 0) {
		t.Error("different names share a key")
	}
	if DesignKey(d1, 0) == DesignKey(d1, 2) {
		t.Error("different forceRows share a key")
	}
}

// --- Admission / backpressure / drain ---

// blockingServer returns a server whose next prefix build blocks until the
// returned release func is called — the deterministic way to hold a worker
// slot mid-request without sleeps.
func blockingServer(t *testing.T, opts Options) (*Server, *Client, chan struct{}) {
	t.Helper()
	gate := make(chan struct{})
	opts.OnPrefixBuild = func(string) { <-gate }
	s, c := newTestServer(t, opts)
	return s, c, gate
}

func TestBackpressureShedsWith503(t *testing.T) {
	s, c, gate := blockingServer(t, Options{Workers: 1, Queue: -1, CacheSize: 2})
	errCh := make(chan error, 1)
	go func() {
		_, err := c.Tune(context.Background(), TuneRequest{DesignRef: DesignRef{Netlist: chainBench(8)}})
		errCh <- err
	}()
	// Wait for the first request to be admitted and block in its build.
	waitFor(t, 5*time.Second, func() bool { return s.inFlight.Load() > 0 },
		"first request never admitted")

	_, err := c.Tune(context.Background(), TuneRequest{DesignRef: DesignRef{Benchmark: "c1355"}})
	var apiErr *APIError
	if !errors.As(err, &apiErr) {
		t.Fatalf("saturated request: got %v, want APIError", err)
	}
	if apiErr.StatusCode != http.StatusServiceUnavailable || !apiErr.IsRetryable() {
		t.Fatalf("saturated request: %+v", apiErr)
	}
	if apiErr.RetryAfterSec != 1 {
		t.Fatalf("Retry-After %d, want 1", apiErr.RetryAfterSec)
	}
	if apiErr.Message != "server saturated" {
		t.Fatalf("message %q", apiErr.Message)
	}
	if s.shed.Load() != 1 {
		t.Fatalf("shed counter %d, want 1", s.shed.Load())
	}

	close(gate)
	if err := <-errCh; err != nil {
		t.Fatalf("held request failed: %v", err)
	}
}

func TestQueuedRequestRunsAfterWorkerFrees(t *testing.T) {
	s, c, gate := blockingServer(t, Options{Workers: 1, Queue: 1, CacheSize: 4})
	first := make(chan error, 1)
	go func() {
		_, err := c.Tune(context.Background(), TuneRequest{DesignRef: DesignRef{Netlist: chainBench(8)}})
		first <- err
	}()
	waitFor(t, 5*time.Second, func() bool { return s.inFlight.Load() > 0 },
		"first request never admitted")
	// Second request queues (depth 1); it must complete once the gate
	// opens, not shed. Its build also passes the gate: same channel, but
	// by then it is closed.
	second := make(chan error, 1)
	go func() {
		_, err := c.Tune(context.Background(), TuneRequest{DesignRef: DesignRef{Netlist: chainBench(9)}})
		second <- err
	}()
	waitFor(t, 5*time.Second, func() bool { return len(s.queueSem) > 0 },
		"second request never queued")
	// Third request finds worker busy and queue full: shed.
	_, err := c.Tune(context.Background(), TuneRequest{DesignRef: DesignRef{Benchmark: "c1355"}})
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("third request: got %v, want 503", err)
	}
	close(gate)
	if err := <-first; err != nil {
		t.Fatalf("first: %v", err)
	}
	if err := <-second; err != nil {
		t.Fatalf("second (queued): %v", err)
	}
}

func TestDrainRejectsNewAndFinishesInFlight(t *testing.T) {
	leakCheck(t)
	s, c, gate := blockingServer(t, Options{Workers: 2, CacheSize: 2})
	inflight := make(chan error, 1)
	go func() {
		_, err := c.Tune(context.Background(), TuneRequest{DesignRef: DesignRef{Netlist: chainBench(8)}})
		inflight <- err
	}()
	waitFor(t, 5*time.Second, func() bool { return s.inFlight.Load() > 0 },
		"request never admitted")

	s.BeginDrain()
	_, err := c.Tune(context.Background(), TuneRequest{DesignRef: DesignRef{Benchmark: "c1355"}})
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining server accepted a request: %v", err)
	}
	if apiErr.Message != "server draining" {
		t.Fatalf("message %q", apiErr.Message)
	}

	// Drain must wait for the in-flight request...
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	if err := s.Drain(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Drain returned %v with a request still in flight", err)
	}
	cancel()
	// ...and succeed once it finishes.
	close(gate)
	if err := <-inflight; err != nil {
		t.Fatalf("in-flight request failed during drain: %v", err)
	}
	ctx, cancel = context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("Drain after completion: %v", err)
	}
}

// TestDrainVsQueuedRequests pins the drain/queue race: requests parked in
// the admission queue when BeginDrain lands must each get exactly one
// response — success if they were already admitted, a clean 503 otherwise;
// never a hang, never a second answer — and Drain must return afterwards
// (no WaitGroup leak from queued requests). CI runs this under -race.
func TestDrainVsQueuedRequests(t *testing.T) {
	leakCheck(t)
	s, c, gate := blockingServer(t, Options{Workers: 1, Queue: 8, CacheSize: 16})
	const queued = 6
	results := make(chan error, queued+1)
	issue := func(n int) {
		_, err := c.Tune(context.Background(), TuneRequest{DesignRef: DesignRef{Netlist: chainBench(8 + n)}})
		results <- err
	}
	// One request holds the single worker; `queued` more park in the queue.
	go issue(0)
	waitFor(t, 5*time.Second, func() bool { return s.inFlight.Load() > 0 },
		"first request never admitted")
	for i := 1; i <= queued; i++ {
		go issue(i)
	}
	waitFor(t, 5*time.Second, func() bool { return len(s.queueSem) == queued },
		"requests never queued")

	// Drain begins while the queue is full; the worker frees concurrently.
	go s.BeginDrain()
	close(gate)

	okN, shedN := 0, 0
	for i := 0; i < queued+1; i++ {
		var apiErr *APIError
		switch err := <-results; {
		case err == nil:
			okN++
		case errors.As(err, &apiErr) && apiErr.StatusCode == http.StatusServiceUnavailable:
			shedN++
		default:
			t.Fatalf("queued request surfaced a non-503 failure: %v", err)
		}
	}
	if okN == 0 {
		t.Error("every request shed; the admitted one should have completed")
	}
	t.Logf("drain race: %d completed, %d shed", okN, shedN)

	if !s.Draining() {
		t.Error("server not draining after BeginDrain")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("Drain never returned after the queue emptied: %v", err)
	}
	if n := len(s.queueSem); n != 0 {
		t.Errorf("%d requests still queued after Drain", n)
	}
}

// --- Endpoint basics ---

func TestTuneOnUploadedNetlist(t *testing.T) {
	_, c := newTestServer(t, Options{})
	resp, err := c.Tune(context.Background(), TuneRequest{
		DesignRef: DesignRef{Netlist: chainBench(24), Name: "chain24"},
		Beta:      0.05,
	})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Summary == nil || resp.Die != nil {
		t.Fatalf("flow-mode response shape wrong: %+v", resp)
	}
	if resp.Summary.Benchmark != "chain24" || resp.Summary.Gates != 24 {
		t.Fatalf("summary %+v", resp.Summary)
	}
	if resp.Summary.Best.TotalLeakUW <= 0 || resp.Summary.DcritPS <= 0 {
		t.Fatalf("implausible summary %+v", resp.Summary)
	}
	if len(resp.Summary.Best.Assign) != resp.Summary.Rows {
		t.Fatalf("assign length %d != rows %d", len(resp.Summary.Best.Assign), resp.Summary.Rows)
	}
}

func TestTuneDieMode(t *testing.T) {
	_, c := newTestServer(t, Options{})
	resp, err := c.Tune(context.Background(), TuneRequest{
		DesignRef: DesignRef{Benchmark: "c1355"},
		Die:       &DieRequest{Seed: 7},
	})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Die == nil || resp.Summary != nil {
		t.Fatalf("die-mode response shape wrong: %+v", resp)
	}
	if resp.Die.Seed != 7 {
		t.Fatalf("die seed %d, want 7", resp.Die.Seed)
	}
	if resp.Die.DcritBeforePS <= 0 {
		t.Fatalf("implausible die result %+v", resp.Die)
	}
}

func TestValidationErrors(t *testing.T) {
	_, c := newTestServer(t, Options{})
	cases := []struct {
		name, path, body string
		wantStatus       int
		wantIn           string
	}{
		{"no design", "/v1/tune", `{}`, 400, "no design"},
		{"both designs", "/v1/tune", `{"benchmark":"c1355","netlist":"INPUT(a)"}`, 400, "not both"},
		{"bad beta", "/v1/tune", `{"benchmark":"c1355","beta":-1}`, 400, "beta"},
		{"bad clusters", "/v1/tune", `{"benchmark":"c1355","maxClusters":99}`, 400, "maxClusters"},
		{"bad solver", "/v1/tune", `{"benchmark":"c1355","solver":"zap"}`, 400, "unknown solver"},
		{"unknown benchmark", "/v1/tune", `{"benchmark":"zap"}`, 400, "unknown benchmark"},
		{"unknown field", "/v1/tune", `{"benchmrk":"c1355"}`, 400, "unknown field"},
		{"trailing garbage", "/v1/tune", `{"benchmark":"c1355"} {}`, 400, "trailing data"},
		{"bad netlist", "/v1/tune", `{"netlist":"INPUT(a)\ny = ZAP(a)\nOUTPUT(y)"}`, 400, "unsupported bench function"},
		{"yield no dies", "/v1/yield", `{"benchmark":"c1355"}`, 400, "dies"},
		{"yield bad workers", "/v1/yield", `{"benchmark":"c1355","dies":1,"workers":-2}`, 400, "workers"},
		{"table1 bad beta", "/v1/table1", `{"betas":[0]}`, 400, "beta"},
		{"table1 too many betas", "/v1/table1", `{"betas":[0.1,0.1,0.1,0.1,0.1,0.1,0.1,0.1,0.1,0.1,0.1,0.1,0.1,0.1,0.1,0.1,0.1]}`, 400, "too many betas"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			status, body := postRaw(t, c, tc.path, tc.body)
			if status != tc.wantStatus {
				t.Fatalf("status %d, want %d (body %s)", status, tc.wantStatus, body)
			}
			if !strings.Contains(string(body), tc.wantIn) {
				t.Fatalf("body %q missing %q", body, tc.wantIn)
			}
		})
	}
}

func TestStatsAndHealthz(t *testing.T) {
	s, c := newTestServer(t, Options{Workers: 3, Queue: 5})
	if _, err := c.Tune(context.Background(), TuneRequest{DesignRef: DesignRef{Netlist: chainBench(8)}}); err != nil {
		t.Fatal(err)
	}
	st, err := c.Stats(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if st.Workers != 3 || st.Queue != 5 {
		t.Fatalf("pool config %+v", st)
	}
	if st.Cache.Builds != 1 || st.Cache.Len != 1 {
		t.Fatalf("cache stats %+v", st.Cache)
	}
	if st.InFlight != 0 {
		t.Fatalf("inFlight %d at rest", st.InFlight)
	}
	resp, err := http.Get(c.BaseURL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("healthz %d", resp.StatusCode)
	}
	benches, err := c.Benchmarks(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(benches) != 9 {
		t.Fatalf("benchmarks %v", benches)
	}
	_ = s
}

func TestBenchmarkAndIdenticalUploadShareOnePrefix(t *testing.T) {
	// A benchmark requested by name and the same design uploaded as a
	// netlist hash to different keys only if they differ structurally;
	// two identical uploads must share. (The generated c1355 and its
	// .bench round-trip differ structurally — drive sizing — so the
	// sharing contract is exercised on uploads.)
	var mu sync.Mutex
	builds := map[string]int{}
	s, c := newTestServer(t, Options{OnPrefixBuild: func(k string) {
		mu.Lock()
		builds[k]++
		mu.Unlock()
	}})
	text := chainBench(16)
	for i := 0; i < 3; i++ {
		if _, err := c.Tune(context.Background(), TuneRequest{
			DesignRef: DesignRef{Netlist: text},
			Beta:      0.02 + 0.01*float64(i), // different betas, same prefix
		}); err != nil {
			t.Fatal(err)
		}
	}
	if len(builds) != 1 {
		t.Fatalf("distinct keys %d, want 1 (%v)", len(builds), builds)
	}
	for k, n := range builds {
		if n != 1 {
			t.Fatalf("key %s built %d times", k, n)
		}
	}
	if st := s.cache.Stats(); st.Hits != 2 {
		t.Fatalf("hits %d, want 2: %+v", st.Hits, st)
	}
}

func TestMethodAndPathErrors(t *testing.T) {
	_, c := newTestServer(t, Options{})
	resp, err := http.Get(c.BaseURL + "/v1/tune")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /v1/tune: %d, want 405", resp.StatusCode)
	}
	resp, err = http.Get(c.BaseURL + "/v1/nope")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("GET /v1/nope: %d, want 404", resp.StatusCode)
	}
}

func TestYieldStreamShape(t *testing.T) {
	_, c := newTestServer(t, Options{})
	var dies []int
	stats, err := c.Yield(context.Background(), YieldRequest{
		DesignRef: DesignRef{Netlist: chainBench(16)},
		Dies:      5, Seed: 11,
	}, func(d *DieResult) error {
		dies = append(dies, d.Die)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats == nil || stats.Dies != 5 {
		t.Fatalf("stats %+v", stats)
	}
	for i, d := range dies {
		if d != i {
			t.Fatalf("die order %v", dies)
		}
	}
	if len(dies) != 5 {
		t.Fatalf("%d die lines, want 5", len(dies))
	}
}

func TestYieldUnknownBenchmarkIs400(t *testing.T) {
	_, c := newTestServer(t, Options{})
	_, err := c.Yield(context.Background(), YieldRequest{
		DesignRef: DesignRef{Benchmark: "zap"}, Dies: 2,
	}, nil)
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.StatusCode != 400 {
		t.Fatalf("got %v, want 400", err)
	}
}

func TestMaxGatesRejected(t *testing.T) {
	_, c := newTestServer(t, Options{MaxGates: 10})
	_, err := c.Tune(context.Background(), TuneRequest{DesignRef: DesignRef{Netlist: chainBench(24)}})
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.StatusCode != 400 {
		t.Fatalf("got %v, want 400", err)
	}
	if !strings.Contains(apiErr.Message, "too large") {
		t.Fatalf("message %q", apiErr.Message)
	}
	// The cap holds on every endpoint, including table1's row-annotated
	// error path — the endpoint doing the most work per design.
	resp, err := c.Table1(context.Background(), Table1Request{
		Benchmarks:   []string{"c1355"},
		Betas:        []float64{0.05},
		ILPGateLimit: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Rows) != 1 || !strings.Contains(resp.Rows[0].Err, "too large") {
		t.Fatalf("table1 ignored MaxGates: %+v", resp.Rows)
	}
}

// TestUnknownBenchmarksDoNotGrowDesignCache pins the admission-side memory
// bound: client-invented benchmark names must be rejected before touching
// the designs cache (flow.Cache retains failed computations forever, so an
// attacker looping fresh names would otherwise grow the server without
// bound).
func TestUnknownBenchmarksDoNotGrowDesignCache(t *testing.T) {
	s, c := newTestServer(t, Options{})
	for i := 0; i < 20; i++ {
		status, _ := postRaw(t, c, "/v1/tune", fmt.Sprintf(`{"benchmark":"bogus%d"}`, i))
		if status != 400 {
			t.Fatalf("unknown benchmark %d: status %d, want 400", i, status)
		}
	}
	if n := s.designs.Len(); n != 0 {
		t.Fatalf("designs cache grew to %d entries on unknown names", n)
	}
}

func TestTable1UnknownBenchmarkAnnotatedOnRow(t *testing.T) {
	_, c := newTestServer(t, Options{})
	resp, err := c.Table1(context.Background(), Table1Request{
		Benchmarks:   []string{"zap"},
		Betas:        []float64{0.05},
		ILPGateLimit: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Rows) != 1 || resp.Rows[0].Err == "" {
		t.Fatalf("rows %+v", resp.Rows)
	}
	if !strings.Contains(resp.Rows[0].Err, "unknown benchmark") {
		t.Fatalf("err %q", resp.Rows[0].Err)
	}
}

func ExampleDesignKey() {
	lib := New(Options{}).opts.Library
	d, _ := netlist.ParseBench(strings.NewReader(chainBench(4)), "chain", lib)
	fmt.Println(len(DesignKey(d, 0)))
	// Output: 64
}
