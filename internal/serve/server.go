// Package serve implements fbbd, the FBB-tuning HTTP service: the full
// reproduction flow (netlist -> place -> STA -> allocate -> tune -> yield)
// behind three JSON endpoints, built for heavy concurrent traffic.
//
//	POST /v1/tune    one design-time allocation (repro.Summary) or one
//	                 post-silicon die tuning (DieResult)
//	POST /v1/yield   a Monte-Carlo yield study streamed as NDJSON with
//	                 bounded memory: one DieResult line per die, then a
//	                 YieldFooter with the aggregate statistics
//	POST /v1/table1  the paper's Table 1 grid as JSON rows
//	GET  /v1/stats   cache and admission counters
//	GET  /v1/benchmarks  the built-in design names
//	GET  /healthz    liveness (and drain state)
//
// Two mechanisms make the service cheap under load. First, the expensive,
// deterministic front of every request — generation/parse, placement,
// nominal STA, allocator construction — is a flow.Prefix held in a
// netlist-hash-keyed LRU with singleflight coalescing (PrefixCache): N
// identical concurrent requests build it once and share it, which is safe
// because a Prefix is immutable. Second, a bounded admission pool sheds
// load instead of queueing it unboundedly: past Workers in-flight requests
// and Queue waiters, requests are rejected with 503 and a Retry-After
// header, and a draining server rejects everything new while in-flight
// requests finish.
package serve

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"encoding/json"

	"repro"
	"repro/internal/cell"
	"repro/internal/core"
	"repro/internal/flow"
	"repro/internal/gen"
	"repro/internal/netlist"
	"repro/internal/tech"
	"repro/internal/variation"
)

// Options configure a Server. The zero value is usable: every field has a
// production default.
type Options struct {
	// CacheSize bounds the prefix LRU (default 8 placements).
	CacheSize int
	// Workers bounds concurrently executing requests (default one per
	// CPU). Per-request die-tuning parallelism inside /v1/yield is
	// separate and client-controlled.
	Workers int
	// Queue bounds requests waiting for a worker before new arrivals are
	// shed with 503 (0 = default 2*Workers; negative = no queue, shed as
	// soon as every worker is busy).
	Queue int
	// MaxDies caps one /v1/yield request (default 1_000_000).
	MaxDies int
	// MaxGates caps accepted designs (default 100_000 gates).
	MaxGates int
	// Library is the cell library (default cell.Default()).
	Library *cell.Library
	// Process is the technology model (default tech.Default45nm()).
	Process *tech.Process
	// Model is the variability model (nil = variation.Default()).
	Model *variation.Model
	// RetryAfterSec is the Retry-After advertised on shed (503)
	// responses, in seconds (default 1). Retrying clients honor it as a
	// floor on their backoff, so a saturated deployment can push its
	// herd further out by raising it.
	RetryAfterSec int
	// OnPrefixBuild, when non-nil, is called once per prefix actually
	// built — the conformance tests assert coalescing with it.
	OnPrefixBuild func(key string)
}

func (o Options) withDefaults() Options {
	if o.CacheSize <= 0 {
		o.CacheSize = 8
	}
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.Queue == 0 {
		o.Queue = 2 * o.Workers
	} else if o.Queue < 0 {
		o.Queue = 0
	}
	if o.MaxDies <= 0 {
		o.MaxDies = 1_000_000
	}
	if o.MaxGates <= 0 {
		o.MaxGates = 100_000
	}
	if o.RetryAfterSec <= 0 {
		o.RetryAfterSec = 1
	}
	if o.Library == nil {
		o.Library = cell.Default()
	}
	if o.Process == nil {
		o.Process = tech.Default45nm()
	}
	if o.Model == nil {
		m := variation.Default()
		o.Model = &m
	}
	return o
}

// Server is the fbbd request handler. Construct with New; safe for
// concurrent use.
type Server struct {
	opts  Options
	cache *PrefixCache
	// designs memoizes the built-in benchmark designs; uploaded netlists
	// are parsed per request (client-controlled, so never retained).
	designs flow.Cache[*netlist.Design]

	workSem  chan struct{} // executing requests, cap Workers
	queueSem chan struct{} // waiting requests, cap Queue
	drainCh  chan struct{}
	// drainMu makes the admission-side draining check and wg.Add atomic
	// against BeginDrain, so Drain can never observe a zero WaitGroup
	// while an admitted request is still between the check and its Add.
	drainMu  sync.RWMutex
	draining bool
	wg       sync.WaitGroup
	inFlight atomic.Int64
	shed     atomic.Int64

	mux *http.ServeMux
}

// New builds a Server.
func New(opts Options) *Server {
	opts = opts.withDefaults()
	s := &Server{
		opts:     opts,
		cache:    NewPrefixCache(opts.CacheSize, opts.OnPrefixBuild),
		workSem:  make(chan struct{}, opts.Workers),
		queueSem: make(chan struct{}, opts.Queue),
		drainCh:  make(chan struct{}),
		mux:      http.NewServeMux(),
	}
	s.mux.HandleFunc("POST /v1/tune", s.handleTune)
	s.mux.HandleFunc("POST /v1/yield", s.handleYield)
	s.mux.HandleFunc("POST /v1/table1", s.handleTable1)
	s.mux.HandleFunc("GET /v1/stats", s.handleStats)
	s.mux.HandleFunc("GET /v1/benchmarks", s.handleBenchmarks)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	return s
}

// shedError builds a 503 with this server's configured Retry-After.
func (s *Server) shedError(msg string) *apiError {
	return &apiError{status: http.StatusServiceUnavailable, msg: msg, retryAfter: s.opts.RetryAfterSec}
}

// Handler returns the HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// BeginDrain puts the server into drain: every subsequent request is
// rejected with 503 while in-flight requests run to completion. Idempotent.
func (s *Server) BeginDrain() {
	s.drainMu.Lock()
	if !s.draining {
		s.draining = true
		close(s.drainCh)
	}
	s.drainMu.Unlock()
}

// Draining reports whether BeginDrain has been called.
func (s *Server) Draining() bool {
	s.drainMu.RLock()
	defer s.drainMu.RUnlock()
	return s.draining
}

// Drain initiates drain and blocks until every in-flight request has
// finished or ctx expires.
func (s *Server) Drain(ctx context.Context) error {
	s.BeginDrain()
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// admit applies backpressure: it returns a release func when the request
// won a worker slot, or writes a 503 (saturated/draining) and returns
// ok=false. A request finding all workers busy waits in the bounded queue;
// a request finding the queue full too is shed immediately — the
// fast-fail contract that keeps latency bounded when overloaded.
func (s *Server) admit(w http.ResponseWriter, r *http.Request) (release func(), ok bool) {
	// Register with the drain WaitGroup atomically against BeginDrain:
	// from here every exit path must balance the Add, and Drain is
	// guaranteed to wait out this request — admitted, queued, or shed.
	s.drainMu.RLock()
	if s.draining {
		s.drainMu.RUnlock()
		s.shed.Add(1)
		writeError(w, s.shedError("server draining"))
		return nil, false
	}
	s.wg.Add(1)
	s.drainMu.RUnlock()

	acquired := func() (func(), bool) {
		s.inFlight.Add(1)
		return func() {
			<-s.workSem
			s.inFlight.Add(-1)
			s.wg.Done()
		}, true
	}
	select {
	case s.workSem <- struct{}{}:
		return acquired()
	default:
	}
	select {
	case s.queueSem <- struct{}{}:
	default:
		s.wg.Done()
		s.shed.Add(1)
		writeError(w, s.shedError("server saturated"))
		return nil, false
	}
	defer func() { <-s.queueSem }()
	select {
	case s.workSem <- struct{}{}:
		return acquired()
	case <-s.drainCh:
		s.wg.Done()
		s.shed.Add(1)
		writeError(w, s.shedError("server draining"))
		return nil, false
	case <-r.Context().Done():
		// Client gave up while queued; nothing to write.
		s.wg.Done()
		return nil, false
	}
}

// design resolves a DesignRef to a netlist: a memoized built-in benchmark
// or a freshly parsed upload.
func (s *Server) design(ref *DesignRef) (*netlist.Design, error) {
	if ref.Netlist != "" {
		name := ref.Name
		if name == "" {
			name = "custom"
		}
		return netlist.ParseBench(strings.NewReader(ref.Netlist), name, s.opts.Library)
	}
	// Validate the name before touching the cache: flow.Cache retains
	// failed computations forever, so unchecked client-supplied names
	// would each pin a dead entry and grow server memory without bound.
	if _, err := gen.ByName(ref.Benchmark); err != nil {
		return nil, err
	}
	return s.designs.Do(ref.Benchmark, func() (*netlist.Design, error) {
		return gen.Build(ref.Benchmark, s.opts.Library)
	})
}

// prefixErr resolves a DesignRef to its cached flow.Prefix, building and
// inserting it (coalesced) on miss, and enforcing the MaxGates admission
// cap on every path. Errors are raw — the table1 handler annotates them
// onto rows exactly as the in-process driver would.
func (s *Server) prefixErr(ctx context.Context, ref *DesignRef) (*flow.Prefix, error) {
	d, err := s.design(ref)
	if err != nil {
		return nil, err
	}
	if n := d.NumGates(); n > s.opts.MaxGates {
		return nil, fmt.Errorf("design too large: %d gates > limit %d", n, s.opts.MaxGates)
	}
	key := DesignKey(d, ref.ForceRows)
	return s.cache.Get(ctx, key, func() (*flow.Prefix, error) {
		return flow.PrefixFor(d, s.opts.Library, ref.ForceRows)
	})
}

// prefix is prefixErr with HTTP error mapping: anything wrong with the
// requested design is the client's 400; a cancelled wait surfaces as 503.
func (s *Server) prefix(ctx context.Context, ref *DesignRef) (*flow.Prefix, *apiError) {
	pfx, err := s.prefixErr(ctx, ref)
	if err != nil {
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			return nil, &apiError{status: http.StatusServiceUnavailable, msg: err.Error(), retryAfter: 1}
		}
		return nil, badRequest("%v", err)
	}
	return pfx, nil
}

// resolveSolver maps a request solver name to a core.Solver for the
// variation paths (nil = registered heuristic) through repro.NamedSolver —
// the same resolution the in-process drivers use — turning a typo into the
// client's 400.
func resolveSolver(name string) (core.Solver, *apiError) {
	sv, err := repro.NamedSolver(name, core.ILPOptions{})
	if err != nil {
		return nil, badRequest("%v", err)
	}
	return sv, nil
}

func (s *Server) handleTune(w http.ResponseWriter, r *http.Request) {
	release, ok := s.admit(w, r)
	if !ok {
		return
	}
	defer release()

	var req TuneRequest
	if e := decodeJSON(http.MaxBytesReader(w, r.Body, maxRequestBytes), &req); e != nil {
		writeError(w, e)
		return
	}
	if e := req.validate(); e != nil {
		writeError(w, e)
		return
	}
	// Validate the solver name up front: a typo is the client's 400, not
	// a failed flow.
	solver, e := resolveSolver(req.Solver)
	if e != nil {
		writeError(w, e)
		return
	}
	pfx, e := s.prefix(r.Context(), &req.DesignRef)
	if e != nil {
		writeError(w, e)
		return
	}

	if req.Die == nil {
		res, err := repro.RunWith(pfx, repro.Config{
			Beta:         req.Beta,
			MaxClusters:  req.MaxClusters,
			MaxBiasPairs: req.MaxBiasPairs,
			Solver:       req.Solver,
			SkipLayout:   true,
		})
		if err != nil {
			writeError(w, &apiError{status: http.StatusInternalServerError, msg: err.Error()})
			return
		}
		writeJSON(w, http.StatusOK, TuneResponse{Summary: res.Summarize(), ILP: ilpDiag(res)})
		return
	}

	opts := variation.TuneOptions{
		GuardbandPct: req.Die.GuardbandPct,
		MaxClusters:  req.MaxClusters,
		MaxBiasPairs: req.MaxBiasPairs,
		MaxIters:     req.Die.MaxIters,
		Solver:       solver,
		SolveCache:   pfx.Solves,
	}
	if opts.GuardbandPct == 0 {
		opts.GuardbandPct = defaultGuardbandPct
	}
	tn := variation.NewTuner(variation.NewRetimer(pfx.Analyzer), pfx.Allocator)
	die := s.opts.Model.Sample(pfx.Placement, s.opts.Process, req.Die.Seed)
	tr, err := variation.TuneOn(tn, pfx.Timing, die, s.opts.Process, opts)
	if err != nil {
		writeError(w, &apiError{status: http.StatusInternalServerError, msg: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, TuneResponse{Die: dieResult(0, req.Die.Seed, tr, pfx.Placement.Lib.Grid)})
}

// defaultGuardbandPct matches the repro Yield driver's sensor headroom.
const defaultGuardbandPct = 0.005

func (s *Server) handleYield(w http.ResponseWriter, r *http.Request) {
	release, ok := s.admit(w, r)
	if !ok {
		return
	}
	defer release()

	var req YieldRequest
	if e := decodeJSON(http.MaxBytesReader(w, r.Body, maxRequestBytes), &req); e != nil {
		writeError(w, e)
		return
	}
	if e := req.validate(s.opts.MaxDies); e != nil {
		writeError(w, e)
		return
	}
	solver, e := resolveSolver(req.Solver)
	if e != nil {
		writeError(w, e)
		return
	}
	pfx, e := s.prefix(r.Context(), &req.DesignRef)
	if e != nil {
		writeError(w, e)
		return
	}

	opts := variation.TuneOptions{
		GuardbandPct: req.GuardbandPct,
		MaxClusters:  req.MaxClusters,
		MaxBiasPairs: req.MaxBiasPairs,
		MaxIters:     req.MaxIters,
		Workers:      req.Workers,
		Solver:       solver,
		TargetCI:     req.TargetCI,
		SolveCache:   pfx.Solves,
	}
	if opts.GuardbandPct == 0 {
		opts.GuardbandPct = defaultGuardbandPct
	}

	// Stream: one DieResult line per die in die order, then the stats
	// footer. Memory stays bounded — variation.YieldStream hands each
	// result over as it is sequenced and never accumulates the stream,
	// and this handler writes it straight to the wire. The per-die work
	// under it is the vectorized pipeline: buffer-reusing sampling,
	// Dcrit-only light re-times and precomputed-table leakage over the
	// cached prefix's analyzer and allocator.
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	enc := json.NewEncoder(w)
	rc := http.NewResponseController(w)
	grid := pfx.Placement.Lib.Grid

	// Checkpoint/resume ride the variation layer's accumulator: a resumed
	// request starts at the checkpoint's die with its exact float state, so
	// the suffix it streams — die lines, later checkpoints, footer — is
	// byte-identical to the tail of the unbroken stream.
	sopts := variation.StreamOptions{}
	if req.Resume != nil {
		acc := req.Resume.Acc
		sopts.StartDie = req.Resume.Ckpt
		sopts.Prior = &acc
	}
	if req.Checkpoint > 0 {
		sopts.CheckpointEvery = req.Checkpoint
		sopts.OnCheckpoint = func(die int, acc variation.YieldAccum) error {
			if err := enc.Encode(YieldCheckpoint{Ckpt: die, Acc: acc}); err != nil {
				return err
			}
			return rc.Flush()
		}
	}
	stats, err := variation.YieldStreamResumable(r.Context(),
		pfx.Analyzer, pfx.Allocator, pfx.Timing,
		s.opts.Process, *s.opts.Model, req.Dies, req.Seed, opts, sopts,
		func(die int, tr *variation.TuneResult) error {
			if err := enc.Encode(dieResult(die, variation.DieSeed(req.Seed, die), tr, grid)); err != nil {
				return err
			}
			return rc.Flush()
		})
	if err != nil {
		// The status line is long gone; a terminal error object is the
		// NDJSON contract for mid-stream failure.
		_ = enc.Encode(ErrorResponse{Error: err.Error()})
		return
	}
	_ = enc.Encode(YieldFooter{Stats: yieldStatsJSON(stats)})
}

func (s *Server) handleTable1(w http.ResponseWriter, r *http.Request) {
	release, ok := s.admit(w, r)
	if !ok {
		return
	}
	defer release()

	var req Table1Request
	if e := decodeJSON(http.MaxBytesReader(w, r.Body, maxRequestBytes), &req); e != nil {
		writeError(w, e)
		return
	}
	if e := req.validate(); e != nil {
		writeError(w, e)
		return
	}
	if _, e := resolveSolver(req.Solver); e != nil {
		writeError(w, e)
		return
	}

	benchmarks := req.Benchmarks
	if len(benchmarks) == 0 {
		benchmarks = repro.Benchmarks()
	}
	betas := req.Betas
	if len(betas) == 0 {
		betas = []float64{0.05, 0.10}
	}
	opts := repro.Table1Options{
		ILPNodeLimit: req.ILPNodeLimit,
		ILPTimeLimit: time.Duration(req.ILPTimeLimitMS) * time.Millisecond,
		ILPGateLimit: req.ILPGateLimit,
		Solver:       req.Solver,
	}

	// Cells run sequentially in grid order: deterministic rows, and the
	// request occupies exactly the one worker slot it was admitted for.
	rows := make([]repro.Table1Row, 0, len(benchmarks)*len(betas))
	for _, name := range benchmarks {
		for _, beta := range betas {
			if err := r.Context().Err(); err != nil {
				return // client gone; no one left to answer
			}
			ref := DesignRef{Benchmark: name}
			pfx, err := s.prefixErr(r.Context(), &ref)
			if err != nil {
				rows = append(rows, repro.Table1Row{
					Benchmark: name, BetaPct: beta * 100, Err: err.Error(),
				})
				continue
			}
			rows = append(rows, repro.Table1CellOn(pfx, name, beta, opts))
		}
	}
	writeJSON(w, http.StatusOK, Table1Response{Rows: rows})
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, StatsResponse{
		Cache:        s.cache.Stats(),
		PrefixBuilds: flow.PrefixBuilds(),
		InFlight:     s.inFlight.Load(),
		Shed:         s.shed.Load(),
		Workers:      cap(s.workSem),
		Queue:        cap(s.queueSem),
	})
}

func (s *Server) handleBenchmarks(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, struct {
		Benchmarks []string `json:"benchmarks"`
	}{repro.Benchmarks()})
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, struct {
		Status   string `json:"status"`
		Draining bool   `json:"draining"`
	}{"ok", s.Draining()})
}
