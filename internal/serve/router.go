package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro"
	"repro/internal/cell"
	"repro/internal/flow"
	"repro/internal/gen"
	"repro/internal/netlist"
)

// Router is the stateless routing front door of an fbbd cluster: it
// consistent-hashes each request's DesignKey so every design's expensive
// flow prefix is built on exactly one replica — the single-process
// coalescing guarantee extended cluster-wide. The key is resolved without
// running the flow: the router builds or parses only the netlist (the same
// canonical encoding DesignKey hashes) and never places or times a design.
//
// Replicas are watched through their /healthz: a replica that reports
// draining (or stops answering) leaves the hash ring and its keys re-hash
// to the survivors, while every other replica keeps its keys — the
// consistent-hashing property that makes a drain a local, not global,
// cache upset. A 503 from the routed replica (shed under load, or the
// drain race before the next health poll) fails over through a bounded
// spill: up to Spill further replicas in ring order are tried, so a hot or
// draining design degrades into a second replica's cache instead of a
// client-visible error. A 503 that survives the spill is forwarded
// verbatim, Retry-After intact — backpressure stays end to end.
//
// The router holds no request state: routing is a pure function of the
// request body and the current health view, so any number of router
// processes can front the same replica set.
type Router struct {
	opts   RouterOptions
	ring   *hashRing
	client *http.Client
	// keys memoizes built-in benchmark design keys (benchmark#forceRows →
	// DesignKey); uploads are client-controlled and re-hashed per request.
	keys flow.Cache[string]
	mux  *http.ServeMux

	shed      atomic.Int64 // 503s returned to clients
	keyErrors atomic.Int64 // requests rejected before routing (400)

	stopOnce sync.Once
	stopCh   chan struct{}
	wg       sync.WaitGroup
}

// RouterOptions configure a Router. Replicas is required; every other
// field has a production default.
type RouterOptions struct {
	// Replicas are the fbbd base URLs (e.g. "http://10.0.0.1:8080").
	Replicas []string
	// HealthInterval is the /healthz polling period (default 500ms). A
	// forwarding error or shed additionally triggers an immediate
	// out-of-band re-check of that replica.
	HealthInterval time.Duration
	// Spill bounds failover: after the routed replica sheds or errors, up
	// to Spill further replicas in ring order are tried (default 1;
	// negative = none). Spilled keys build a second prefix on the spill
	// target — bounded duplication in exchange for absorbing hot designs
	// and drain races.
	Spill int
	// VirtualNodes places each replica this many times on the ring
	// (default 64) so keys spread evenly and a drain re-hashes them evenly.
	VirtualNodes int
	// HTTPClient overrides the forwarding transport (nil =
	// http.DefaultClient). Health checks use the same transport with a
	// per-probe timeout.
	HTTPClient *http.Client
	// Library resolves uploaded netlists to design keys (default
	// cell.Default() — must match the replicas' library for the router's
	// keys to agree with theirs).
	Library *cell.Library
	// ForwardTimeout bounds each forward's time to response headers (0 =
	// unbounded). It deliberately does not cover the body: a yield stream
	// answers its headers immediately and may then relay for minutes, so
	// the timer is stopped the moment the replica starts responding. A
	// timed-out forward counts as a transport failure for the breaker and
	// spills to the next replica.
	ForwardTimeout time.Duration
	// BreakerThreshold is the consecutive-forward-failure count that trips
	// a replica's circuit breaker (default 3; values below 1 are raised to
	// 1, i.e. trip on the first failure). A trip removes the replica from
	// the ring immediately and pokes its health loop for an authoritative
	// re-probe, so a dead replica stops taking keys without waiting out
	// HealthInterval; the probe's verdict then rules — a replica whose
	// /healthz still answers rejoins the ring with its failure count
	// restarted. Only transport-level failures count; a shed 503 is a
	// healthy replica pushing back, not a failure.
	BreakerThreshold int
}

func (o RouterOptions) withDefaults() RouterOptions {
	if o.HealthInterval <= 0 {
		o.HealthInterval = 500 * time.Millisecond
	}
	if o.Spill == 0 {
		o.Spill = 1
	} else if o.Spill < 0 {
		o.Spill = 0
	}
	if o.VirtualNodes <= 0 {
		o.VirtualNodes = 64
	}
	if o.HTTPClient == nil {
		o.HTTPClient = http.DefaultClient
	}
	if o.Library == nil {
		o.Library = cell.Default()
	}
	if o.BreakerThreshold == 0 {
		o.BreakerThreshold = 3
	} else if o.BreakerThreshold < 1 {
		o.BreakerThreshold = 1
	}
	return o
}

// replica is one fbbd backend and its health view.
type replica struct {
	addr string
	// healthy and draining together decide ring membership: a replica
	// serves keys only while healthy and not draining.
	healthy  atomic.Bool
	draining atomic.Bool
	// forwarded counts requests routed here as the key's owner, spills
	// requests served here as a failover target.
	forwarded atomic.Int64
	spills    atomic.Int64
	// fails counts consecutive forward transport failures (reset by any
	// forwarded response); trips counts how often fails reached the
	// breaker threshold and ejected the replica from the ring.
	fails atomic.Int64
	trips atomic.Int64
	// checkCh pokes the health loop for an immediate re-probe (sized 1;
	// a pending poke absorbs duplicates).
	checkCh chan struct{}
}

func (r *replica) inRing() bool { return r.healthy.Load() && !r.draining.Load() }

// NewRouter builds a Router over the given replicas and starts its health
// loop. Replicas start optimistically in the ring and the first poll (or
// first forwarding failure) corrects the view. Call Close to stop polling.
func NewRouter(opts RouterOptions) (*Router, error) {
	opts = opts.withDefaults()
	if len(opts.Replicas) == 0 {
		return nil, fmt.Errorf("router: no replicas")
	}
	seen := map[string]bool{}
	replicas := make([]*replica, 0, len(opts.Replicas))
	for _, addr := range opts.Replicas {
		addr = strings.TrimRight(strings.TrimSpace(addr), "/")
		if addr == "" {
			return nil, fmt.Errorf("router: empty replica address")
		}
		if seen[addr] {
			return nil, fmt.Errorf("router: duplicate replica %s", addr)
		}
		seen[addr] = true
		rep := &replica{addr: addr, checkCh: make(chan struct{}, 1)}
		rep.healthy.Store(true)
		replicas = append(replicas, rep)
	}
	rt := &Router{
		opts:   opts,
		ring:   newHashRing(replicas, opts.VirtualNodes),
		client: opts.HTTPClient,
		mux:    http.NewServeMux(),
		stopCh: make(chan struct{}),
	}
	rt.mux.HandleFunc("POST /v1/tune", func(w http.ResponseWriter, r *http.Request) { rt.routeByDesign(w, r, "/v1/tune") })
	rt.mux.HandleFunc("POST /v1/yield", func(w http.ResponseWriter, r *http.Request) { rt.routeByDesign(w, r, "/v1/yield") })
	rt.mux.HandleFunc("POST /v1/table1", rt.handleTable1)
	rt.mux.HandleFunc("GET /v1/stats", rt.handleStats)
	rt.mux.HandleFunc("GET /v1/benchmarks", rt.handleBenchmarks)
	rt.mux.HandleFunc("GET /healthz", rt.handleHealthz)
	for _, rep := range replicas {
		rt.wg.Add(1)
		go rt.healthLoop(rep)
	}
	return rt, nil
}

// Handler returns the HTTP handler.
func (rt *Router) Handler() http.Handler { return rt.mux }

// Close stops the health loops. Idempotent; in-flight forwards finish on
// their own.
func (rt *Router) Close() {
	rt.stopOnce.Do(func() { close(rt.stopCh) })
	rt.wg.Wait()
}

// CheckNow synchronously probes every replica once — tests and operators
// use it to settle the health view without waiting out HealthInterval.
func (rt *Router) CheckNow(ctx context.Context) {
	var wg sync.WaitGroup
	for _, rep := range rt.ring.replicas {
		wg.Add(1)
		go func(rep *replica) {
			defer wg.Done()
			rt.probe(ctx, rep)
		}(rep)
	}
	wg.Wait()
}

// healthLoop polls one replica's /healthz every HealthInterval, and
// immediately when poked after a forwarding failure or shed.
func (rt *Router) healthLoop(rep *replica) {
	defer rt.wg.Done()
	ticker := time.NewTicker(rt.opts.HealthInterval)
	defer ticker.Stop()
	for {
		select {
		case <-rt.stopCh:
			return
		case <-ticker.C:
		case <-rep.checkCh:
		}
		ctx, cancel := context.WithTimeout(context.Background(), rt.opts.HealthInterval*4)
		rt.probe(ctx, rep)
		cancel()
	}
}

// probe updates one replica's health view from its /healthz.
func (rt *Router) probe(ctx context.Context, rep *replica) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, rep.addr+"/healthz", nil)
	if err != nil {
		rep.healthy.Store(false)
		return
	}
	resp, err := rt.client.Do(req)
	if err != nil {
		rep.healthy.Store(false)
		return
	}
	defer drainClose(resp.Body)
	var body struct {
		Status   string `json:"status"`
		Draining bool   `json:"draining"`
	}
	if resp.StatusCode != http.StatusOK || json.NewDecoder(resp.Body).Decode(&body) != nil {
		rep.healthy.Store(false)
		return
	}
	rep.healthy.Store(true)
	rep.draining.Store(body.Draining)
}

// poke asks rep's health loop for an immediate re-probe (non-blocking).
func (rt *Router) poke(rep *replica) {
	select {
	case rep.checkCh <- struct{}{}:
	default:
	}
}

// noteForwardFailure feeds one transport-level forward failure to rep's
// circuit breaker: at BreakerThreshold consecutive failures the replica is
// tripped out of the ring and its failure count restarts. Tripped or not,
// the health loop is poked so the authoritative /healthz verdict arrives
// immediately instead of at the next HealthInterval tick.
func (rt *Router) noteForwardFailure(rep *replica) {
	if rep.fails.Add(1) >= int64(rt.opts.BreakerThreshold) {
		rep.fails.Store(0)
		if rep.healthy.CompareAndSwap(true, false) {
			rep.trips.Add(1)
		}
	}
	rt.poke(rep)
}

// designKey resolves a request's DesignRef to its cluster routing key
// without running the flow: built-in benchmarks are generated (netlist
// only) once and memoized, uploads are parsed per request. The key is the
// same DesignKey the replicas use for their prefix caches, so router
// placement and replica caching agree by construction.
func (rt *Router) designKey(ref *DesignRef) (string, *apiError) {
	if e := ref.validate(); e != nil {
		return "", e
	}
	if ref.Netlist != "" {
		name := ref.Name
		if name == "" {
			name = "custom"
		}
		d, err := netlist.ParseBench(strings.NewReader(ref.Netlist), name, rt.opts.Library)
		if err != nil {
			return "", badRequest("%v", err)
		}
		return DesignKey(d, ref.ForceRows), nil
	}
	if _, err := gen.ByName(ref.Benchmark); err != nil {
		return "", badRequest("%v", err)
	}
	key, err := rt.keys.Do(fmt.Sprintf("%s#%d", ref.Benchmark, ref.ForceRows), func() (string, error) {
		d, err := gen.Build(ref.Benchmark, rt.opts.Library)
		if err != nil {
			return "", err
		}
		return DesignKey(d, ref.ForceRows), nil
	})
	if err != nil {
		return "", badRequest("%v", err)
	}
	return key, nil
}

// routeByDesign handles /v1/tune and /v1/yield: resolve the design key
// from the body, pick the key's owner on the ring, forward with bounded
// spill, and stream the response through.
func (rt *Router) routeByDesign(w http.ResponseWriter, r *http.Request, path string) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxRequestBytes))
	if err != nil {
		rt.keyErrors.Add(1)
		writeError(w, badRequest("bad request body: %v", err))
		return
	}
	// A lenient probe: the router reads only the design fields; the owning
	// replica applies the endpoint's strict validation to the same bytes.
	var probe struct {
		DesignRef
	}
	if err := json.Unmarshal(body, &probe); err != nil {
		rt.keyErrors.Add(1)
		writeError(w, badRequest("bad request body: %v", err))
		return
	}
	key, e := rt.designKey(&probe.DesignRef)
	if e != nil {
		rt.keyErrors.Add(1)
		writeError(w, e)
		return
	}
	rt.forward(w, r, path, body, key)
}

// forward sends body to the key's owner, spilling through up to Spill
// further ring replicas on shed or transport failure. The final response —
// success or not — streams through verbatim; a cluster-wide failure to
// place the request is the router's own 503.
func (rt *Router) forward(w http.ResponseWriter, r *http.Request, path string, body []byte, key string) {
	seq := rt.ring.sequence(key, 1+rt.opts.Spill)
	if len(seq) == 0 {
		rt.shed.Add(1)
		writeError(w, errNoReplicas)
		return
	}
	// lastShed holds the most recent 503 while later candidates are tried:
	// if they all fail too, that response — its Retry-After is the
	// replica's own backpressure signal — is what the client gets.
	var lastShed *http.Response
	var lastShedDone func()
	dropShed := func() {
		if lastShed != nil {
			drainClose(lastShed.Body)
			lastShedDone()
			lastShed = nil
		}
	}
	for i, rep := range seq {
		resp, done, err := rt.send(r, rep, path, body)
		if err != nil {
			// Transport failure (dial error, reset, forward timeout): feed
			// the breaker — which trips the replica out of the ring after
			// BreakerThreshold in a row and re-probes it immediately — and
			// try the next candidate.
			rt.noteForwardFailure(rep)
			continue
		}
		rep.fails.Store(0)
		if resp.StatusCode == http.StatusServiceUnavailable {
			// Shed (saturated) or drain race: re-probe so a draining
			// replica leaves the ring before its next key arrives, and
			// spill this request to the next replica in ring order.
			rt.poke(rep)
			dropShed()
			if i < len(seq)-1 {
				lastShed, lastShedDone = resp, done
				continue
			}
			rt.shed.Add(1)
			rt.relay(w, resp)
			done()
			return
		}
		dropShed()
		if i > 0 {
			rep.spills.Add(1)
		}
		rep.forwarded.Add(1)
		rt.relay(w, resp)
		done()
		return
	}
	rt.shed.Add(1)
	if lastShed != nil {
		rt.relay(w, lastShed)
		lastShedDone()
		return
	}
	writeError(w, errNoReplicas)
}

// send issues one forwarded POST, propagating the client's context and
// applying ForwardTimeout to the headers phase. On success the returned
// done func must be called once the response body has been fully consumed
// (it releases the forward's context resources); on error done is nil.
func (rt *Router) send(r *http.Request, rep *replica, path string, body []byte) (*http.Response, func(), error) {
	ctx, cancel := context.WithCancel(r.Context())
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, rep.addr+path, bytes.NewReader(body))
	if err != nil {
		cancel()
		return nil, nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	// The timeout covers only the wait for response headers: the timer is
	// armed before Do and stopped as soon as the replica answers, so a
	// long NDJSON relay afterwards is never cut short.
	var timer *time.Timer
	if rt.opts.ForwardTimeout > 0 {
		timer = time.AfterFunc(rt.opts.ForwardTimeout, cancel)
	}
	resp, err := rt.client.Do(req)
	if timer != nil {
		timer.Stop()
	}
	if err != nil {
		cancel()
		return nil, nil, err
	}
	return resp, cancel, nil
}

// relay streams one upstream response to the client, flushing as bytes
// arrive so NDJSON yield streams stay live through the router.
func (rt *Router) relay(w http.ResponseWriter, resp *http.Response) {
	defer resp.Body.Close()
	for _, h := range []string{"Content-Type", "Retry-After"} {
		if v := resp.Header.Get(h); v != "" {
			w.Header().Set(h, v)
		}
	}
	w.WriteHeader(resp.StatusCode)
	rc := http.NewResponseController(w)
	buf := make([]byte, 32*1024)
	for {
		n, err := resp.Body.Read(buf)
		if n > 0 {
			if _, werr := w.Write(buf[:n]); werr != nil {
				return
			}
			_ = rc.Flush()
		}
		if err != nil {
			return
		}
	}
}

// handleTable1 scatters a Table 1 request per benchmark — each benchmark's
// cells run on the replica that owns that design's key, so the grid warms
// exactly the caches the routed tune/yield traffic will hit — and gathers
// the rows back in request order. The concatenation is byte-compatible
// with a single replica's response: rows are produced benchmark-major
// there too.
func (rt *Router) handleTable1(w http.ResponseWriter, r *http.Request) {
	var req Table1Request
	if e := decodeJSON(http.MaxBytesReader(w, r.Body, maxRequestBytes), &req); e != nil {
		rt.keyErrors.Add(1)
		writeError(w, e)
		return
	}
	if e := req.validate(); e != nil {
		rt.keyErrors.Add(1)
		writeError(w, e)
		return
	}
	benchmarks := req.Benchmarks
	if len(benchmarks) == 0 {
		benchmarks = repro.Benchmarks()
	}
	betas := req.Betas
	if len(betas) == 0 {
		betas = []float64{0.05, 0.10}
	}

	parts := make([]t1part, len(benchmarks))
	var wg sync.WaitGroup
	for i, name := range benchmarks {
		wg.Add(1)
		go func(i int, name string) {
			defer wg.Done()
			sub := req
			sub.Benchmarks = []string{name}
			parts[i] = rt.table1Part(r, name, sub, betas)
		}(i, name)
	}
	wg.Wait()

	rows := make([]repro.Table1Row, 0, len(benchmarks))
	for _, p := range parts {
		if p.err != nil {
			// One shed benchmark sheds the request: a partial grid would
			// silently misreport the paper's table. Retry-After passes
			// through from the replica that pushed back.
			if p.err.status == http.StatusServiceUnavailable {
				rt.shed.Add(1)
			} else {
				rt.keyErrors.Add(1)
			}
			if p.ra != "" {
				w.Header().Set("Retry-After", p.ra)
				p.err.retryAfter = 0 // already set verbatim
			}
			writeError(w, p.err)
			return
		}
		rows = append(rows, p.rows...)
	}
	writeJSON(w, http.StatusOK, Table1Response{Rows: rows})
}

// t1part is one benchmark's share of a scattered Table 1 request.
type t1part struct {
	rows []repro.Table1Row
	err  *apiError
	ra   string // Retry-After of a shed sub-request
}

// table1Part runs one benchmark's sub-request on its owning replica. betas
// is the request's effective beta grid (after defaulting), needed to mirror
// the server's per-beta error rows for unresolvable designs.
func (rt *Router) table1Part(r *http.Request, name string, sub Table1Request, betas []float64) (p t1part) {
	key, e := rt.designKey(&DesignRef{Benchmark: name})
	if e != nil {
		// An unknown benchmark is still a valid request to the server — it
		// answers with one error row per beta, not a 400. Mirror that
		// byte-for-byte so the scattered grid stays interchangeable with a
		// single replica's.
		for _, beta := range betas {
			p.rows = append(p.rows, repro.Table1Row{Benchmark: name, BetaPct: beta * 100, Err: e.msg})
		}
		return p
	}
	body, err := json.Marshal(sub)
	if err != nil {
		p.err = &apiError{status: http.StatusInternalServerError, msg: err.Error()}
		return p
	}

	seq := rt.ring.sequence(key, 1+rt.opts.Spill)
	var last *apiError
	var lastRA string
	for i, rep := range seq {
		resp, done, err := rt.send(r, rep, "/v1/table1", body)
		if err != nil {
			rt.noteForwardFailure(rep)
			last = &apiError{status: http.StatusServiceUnavailable, msg: fmt.Sprintf("replica %s: %v", rep.addr, err), retryAfter: 1}
			lastRA = ""
			continue
		}
		rep.fails.Store(0)
		if resp.StatusCode == http.StatusServiceUnavailable {
			rt.poke(rep)
			last = &apiError{status: http.StatusServiceUnavailable, msg: readErrorBody(resp), retryAfter: 1}
			lastRA = resp.Header.Get("Retry-After")
			drainClose(resp.Body)
			done()
			continue
		}
		if resp.StatusCode != http.StatusOK {
			p.err = &apiError{status: resp.StatusCode, msg: readErrorBody(resp)}
			drainClose(resp.Body)
			done()
			return p
		}
		var out Table1Response
		err = json.NewDecoder(resp.Body).Decode(&out)
		drainClose(resp.Body)
		done()
		if err != nil {
			p.err = &apiError{status: http.StatusBadGateway, msg: fmt.Sprintf("replica %s: bad table1 response: %v", rep.addr, err)}
			return p
		}
		if i > 0 {
			rep.spills.Add(1)
		}
		rep.forwarded.Add(1)
		p.rows = out.Rows
		return p
	}
	if last == nil {
		last = errNoReplicas
	}
	p.err, p.ra = last, lastRA
	return p
}

// readErrorBody extracts the JSON error message of a non-2xx response
// (falling back to the HTTP status).
func readErrorBody(resp *http.Response) string {
	var body ErrorResponse
	if json.NewDecoder(io.LimitReader(resp.Body, 64<<10)).Decode(&body) == nil && body.Error != "" {
		return body.Error
	}
	return resp.Status
}

// handleStats fans a GET /v1/stats out to every replica and returns the
// cluster view: router counters plus each replica's health and live stats
// — the one call a load generator needs to compute per-replica shed rates
// and prefix-build locality.
func (rt *Router) handleStats(w http.ResponseWriter, r *http.Request) {
	reps := rt.ring.replicas
	statuses := make([]ReplicaStatus, len(reps))
	var wg sync.WaitGroup
	for i, rep := range reps {
		wg.Add(1)
		go func(i int, rep *replica) {
			defer wg.Done()
			st := ReplicaStatus{
				Addr:      rep.addr,
				Healthy:   rep.healthy.Load(),
				Draining:  rep.draining.Load(),
				Forwarded: rep.forwarded.Load(),
				Spills:    rep.spills.Load(),
				Trips:     rep.trips.Load(),
			}
			stats, err := NewClientWith(rep.addr, rt.client).Stats(r.Context())
			if err != nil {
				st.Err = err.Error()
			} else {
				st.Stats = stats
			}
			statuses[i] = st
		}(i, rep)
	}
	wg.Wait()
	writeJSON(w, http.StatusOK, ClusterStatsResponse{
		Router: RouterStats{
			Shed:      rt.shed.Load(),
			KeyErrors: rt.keyErrors.Load(),
			Spill:     rt.opts.Spill,
		},
		Replicas: statuses,
	})
}

func (rt *Router) handleBenchmarks(w http.ResponseWriter, _ *http.Request) {
	// The built-in designs are compiled into the router too; answering
	// locally keeps the endpoint up while the cluster churns.
	writeJSON(w, http.StatusOK, struct {
		Benchmarks []string `json:"benchmarks"`
	}{repro.Benchmarks()})
}

func (rt *Router) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	healthy := 0
	for _, rep := range rt.ring.replicas {
		if rep.inRing() {
			healthy++
		}
	}
	status := "ok"
	if healthy == 0 {
		status = "no-replicas"
	}
	writeJSON(w, http.StatusOK, struct {
		Status   string `json:"status"`
		Draining bool   `json:"draining"`
		Replicas int    `json:"replicas"`
		Healthy  int    `json:"healthy"`
	}{status, false, len(rt.ring.replicas), healthy})
}

// ClusterStatsResponse is the router's GET /v1/stats body: the presence of
// the replicas array is what distinguishes a router from a plain fbbd.
type ClusterStatsResponse struct {
	Router   RouterStats     `json:"router"`
	Replicas []ReplicaStatus `json:"replicas"`
}

// RouterStats are the router's own counters.
type RouterStats struct {
	// Shed counts 503s returned to clients (no replica could take the
	// request, or the owning replica's shed survived the spill).
	Shed int64 `json:"shed"`
	// KeyErrors counts requests rejected before routing (bad body or
	// unresolvable design).
	KeyErrors int64 `json:"keyErrors"`
	// Spill echoes the configured failover bound.
	Spill int `json:"spill"`
}

// ReplicaStatus is one replica's health and stats in the cluster view.
type ReplicaStatus struct {
	Addr     string `json:"addr"`
	Healthy  bool   `json:"healthy"`
	Draining bool   `json:"draining"`
	// Forwarded counts requests this router routed here as key owner,
	// Spills those it served as a failover target, Trips how often the
	// consecutive-failure breaker ejected it from the ring.
	Forwarded int64 `json:"forwarded"`
	Spills    int64 `json:"spills"`
	Trips     int64 `json:"trips"`
	// Stats is the replica's own /v1/stats (absent when unreachable, with
	// Err explaining why).
	Stats *StatsResponse `json:"stats,omitempty"`
	Err   string         `json:"err,omitempty"`
}

var errNoReplicas = &apiError{status: http.StatusServiceUnavailable, msg: "no healthy replicas", retryAfter: 1}

// --- consistent hash ring ---

// hashRing places every replica VirtualNodes times on a 64-bit ring. A key
// is owned by the first in-ring replica clockwise of its hash; the spill
// sequence continues clockwise over distinct replicas. Unhealthy and
// draining replicas stay on the ring but are skipped at lookup, so a
// replica's return restores exactly its old keys.
type hashRing struct {
	replicas []*replica
	vnodes   []vnode // sorted by hash
}

type vnode struct {
	hash uint64
	idx  int // into replicas
}

func newHashRing(replicas []*replica, virtual int) *hashRing {
	r := &hashRing{replicas: replicas}
	r.vnodes = make([]vnode, 0, len(replicas)*virtual)
	for i, rep := range replicas {
		for v := 0; v < virtual; v++ {
			r.vnodes = append(r.vnodes, vnode{hash: ringHash(fmt.Sprintf("%s#%d", rep.addr, v)), idx: i})
		}
	}
	sort.Slice(r.vnodes, func(i, j int) bool { return r.vnodes[i].hash < r.vnodes[j].hash })
	return r
}

func ringHash(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	x := h.Sum64()
	// FNV-1a barely avalanches on short, similar inputs: replica vnode
	// labels ("http://host:port#0".."#63") hash to one narrow band of the
	// 64-bit space, which collapses the ring onto a single replica. A
	// splitmix64 finalizer spreads them over the whole ring.
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// sequence returns up to n distinct in-ring replicas for key, in ring
// order starting at the key's owner. An empty result means the cluster has
// no usable replica.
func (r *hashRing) sequence(key string, n int) []*replica {
	if n > len(r.replicas) {
		n = len(r.replicas)
	}
	kh := ringHash(key)
	start := sort.Search(len(r.vnodes), func(i int) bool { return r.vnodes[i].hash >= kh })
	out := make([]*replica, 0, n)
	seen := make([]bool, len(r.replicas))
	for i := 0; i < len(r.vnodes) && len(out) < n; i++ {
		vn := r.vnodes[(start+i)%len(r.vnodes)]
		if seen[vn.idx] {
			continue
		}
		seen[vn.idx] = true
		if rep := r.replicas[vn.idx]; rep.inRing() {
			out = append(out, rep)
		}
	}
	return out
}
