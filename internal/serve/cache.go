package serve

import (
	"container/list"
	"context"

	"sync"

	"repro/internal/flow"
)

// PrefixCache is the heart of fbbd: a bounded, netlist-hash-keyed LRU of
// flow.Prefix with singleflight coalescing. N concurrent requests for the
// same key trigger exactly one prefix build — the losers block on the
// winner's entry — and completed prefixes are retained most-recently-used
// until capacity evicts them. A Prefix is immutable, so an evicted entry
// still in use by an in-flight request simply outlives its cache residency;
// eviction only forgets, it never invalidates.
//
// Failed builds are coalesced like successes (every waiter gets the same
// error) but are not retained: a deterministic failure is cheap to
// recompute, and caching it would let garbage requests evict real
// placements.
type PrefixCache struct {
	capacity int
	onBuild  func(key string)

	mu          sync.Mutex
	ll          *list.List // *centry, front = most recently used
	entries     map[string]*list.Element
	hits        int64
	misses      int64
	joins       int64
	failedJoins int64
	builds      int64
	evictions   int64
}

type centry struct {
	key string
	// done is closed when the build finishes; ready is set (under mu)
	// first, so eviction can distinguish in-flight entries without
	// blocking.
	done  chan struct{}
	ready bool
	pfx   *flow.Prefix
	err   error
}

// CacheStats is a point-in-time snapshot of cache behaviour.
type CacheStats struct {
	// Hits counts Gets that came away with a prefix without building one:
	// served from a completed resident entry, or joined an in-flight build
	// that then succeeded. Misses counts Gets that started a build.
	Hits   int64 `json:"hits"`
	Misses int64 `json:"misses"`
	// Joins counts Gets that attached to an in-flight build (resolved
	// later into Hits or FailedJoins); FailedJoins counts joins that came
	// away without a prefix — the joined build failed, or the waiter's
	// context expired first. Keeping them out of Hits matters exactly when
	// a bad design is being hammered: N requests coalescing onto one
	// failing build are N wasted waits, not N-1 cache hits, and the
	// router's locality report reads Hits as real cache effectiveness.
	Joins       int64 `json:"joins"`
	FailedJoins int64 `json:"failedJoins"`
	// Builds counts prefix constructions actually run (== Misses; kept
	// separate so the coalescing conformance tests read intent, not
	// accounting coincidence).
	Builds int64 `json:"builds"`
	// Evictions counts completed entries dropped by capacity.
	Evictions int64 `json:"evictions"`
	// Len is the current number of resident entries (in-flight included).
	Len int `json:"len"`
}

// NewPrefixCache returns a cache holding at most capacity completed
// prefixes (minimum 1). onBuild, when non-nil, is invoked once per actual
// build, before it starts — the conformance tests count coalescing with it.
func NewPrefixCache(capacity int, onBuild func(key string)) *PrefixCache {
	if capacity < 1 {
		capacity = 1
	}
	return &PrefixCache{
		capacity: capacity,
		onBuild:  onBuild,
		ll:       list.New(),
		entries:  map[string]*list.Element{},
	}
}

// Get returns the prefix for key, building it with build if no entry is
// resident. Concurrent Gets of one key coalesce onto a single build; a
// caller whose ctx is cancelled while waiting unblocks with ctx's error
// while the build runs on for the others.
func (c *PrefixCache) Get(ctx context.Context, key string, build func() (*flow.Prefix, error)) (*flow.Prefix, error) {
	c.mu.Lock()
	if el, ok := c.entries[key]; ok {
		c.ll.MoveToFront(el)
		e := el.Value.(*centry)
		if e.ready {
			// Completed resident entry — failures are never retained, so
			// this is always a real prefix: an unconditional hit.
			c.hits++
			c.mu.Unlock()
			return e.pfx, e.err
		}
		// Joining an in-flight build: the outcome decides the accounting.
		// Counting the join as a hit up front would book a success for
		// every waiter piling onto a failing build.
		c.joins++
		c.mu.Unlock()
		resolve := func(failed bool) {
			c.mu.Lock()
			if failed {
				c.failedJoins++
			} else {
				c.hits++
			}
			c.mu.Unlock()
		}
		select {
		case <-e.done:
			resolve(e.err != nil)
			return e.pfx, e.err
		case <-ctx.Done():
			resolve(true)
			return nil, ctx.Err()
		}
	}
	e := &centry{key: key, done: make(chan struct{})}
	c.entries[key] = c.ll.PushFront(e)
	c.misses++
	c.builds++
	c.mu.Unlock()

	if c.onBuild != nil {
		c.onBuild(key)
	}
	pfx, err := build()

	c.mu.Lock()
	e.pfx, e.err, e.ready = pfx, err, true
	if err != nil {
		if el, ok := c.entries[key]; ok && el.Value.(*centry) == e {
			c.ll.Remove(el)
			delete(c.entries, key)
		}
	} else {
		// Eviction happens only now, on a build that actually produced a
		// placement: a failing build must never cost a resident one its
		// slot (insert-time eviction would let garbage uploads knock
		// warm placements out before their build even ran).
		c.evictLocked()
	}
	c.mu.Unlock()
	close(e.done)
	return pfx, err
}

// evictLocked drops completed entries from the LRU tail until at most
// capacity remain. In-flight builds are never evicted (their waiters hold
// the entry); the cache may transiently exceed capacity while many distinct
// keys build at once.
func (c *PrefixCache) evictLocked() {
	for el := c.ll.Back(); el != nil && c.ll.Len() > c.capacity; {
		prev := el.Prev()
		e := el.Value.(*centry)
		if e.ready {
			c.ll.Remove(el)
			delete(c.entries, e.key)
			c.evictions++
		}
		el = prev
	}
}

// Len reports the number of resident entries (in-flight included).
func (c *PrefixCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Stats snapshots the cache counters.
func (c *PrefixCache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Hits:        c.hits,
		Misses:      c.misses,
		Joins:       c.joins,
		FailedJoins: c.failedJoins,
		Builds:      c.builds,
		Evictions:   c.evictions,
		Len:         c.ll.Len(),
	}
}
