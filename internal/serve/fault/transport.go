package fault

import (
	"fmt"
	"io"
	"net"
	"net/http"
	"strconv"
	"strings"
	"syscall"
	"time"
)

// Transport is an http.RoundTripper that injects the schedule's faults at
// the protocol layer: each request claims the next slot and suffers (or
// escapes) that slot's decision. Refuse and HTTP500 short-circuit before the
// request is sent — the server never sees those slots — while Reset,
// Truncate and Slow let the real exchange happen and corrupt only the
// response body on its way up, which is exactly what a mid-stream network
// failure looks like to the client.
type Transport struct {
	// Base performs the real exchanges (nil = http.DefaultTransport).
	Base http.RoundTripper
	// Schedule supplies the per-slot decisions.
	Schedule *Schedule
	// Sleep implements injected latency and slow-write pauses (nil =
	// time.Sleep). Tests that must not depend on wall time inject a
	// recording fake.
	Sleep func(time.Duration)
	// OnFault observes every decision that did anything (action or
	// latency), in slot order under sequential use.
	OnFault func(Decision)
}

func (t *Transport) base() http.RoundTripper {
	if t.Base != nil {
		return t.Base
	}
	return http.DefaultTransport
}

func (t *Transport) sleep(d time.Duration) {
	if t.Sleep != nil {
		t.Sleep(d)
		return
	}
	time.Sleep(d)
}

// errRefused is what a refused connection surfaces as: a dial-shaped
// net.OpError wrapping ECONNREFUSED, so errors.Is and the retry layer's
// transport-error classification see the real thing.
func errRefused() error {
	return &net.OpError{Op: "dial", Net: "tcp", Err: syscall.ECONNREFUSED}
}

// errReset is the mid-body cut: a read-shaped net.OpError wrapping
// ECONNRESET.
func errReset() error {
	return &net.OpError{Op: "read", Net: "tcp", Err: syscall.ECONNRESET}
}

// RoundTrip applies the next slot's decision around one exchange.
func (t *Transport) RoundTrip(req *http.Request) (*http.Response, error) {
	d := t.Schedule.Next()
	if t.OnFault != nil && (d.Action != None || d.Latency > 0) {
		t.OnFault(d)
	}
	if d.Latency > 0 {
		t.sleep(d.Latency)
	}
	switch d.Action {
	case Refuse:
		if req.Body != nil {
			_ = req.Body.Close()
		}
		return nil, errRefused()
	case HTTP500:
		if req.Body != nil {
			_ = req.Body.Close()
		}
		body := fmt.Sprintf(`{"error":"fault: injected 500 (slot %d)"}`, d.Slot)
		return &http.Response{
			Status:        "500 Internal Server Error",
			StatusCode:    http.StatusInternalServerError,
			Proto:         "HTTP/1.1",
			ProtoMajor:    1,
			ProtoMinor:    1,
			Header:        http.Header{"Content-Type": {"application/json"}, "X-Fault-Slot": {strconv.FormatUint(d.Slot, 10)}},
			Body:          io.NopCloser(strings.NewReader(body)),
			ContentLength: int64(len(body)),
			Request:       req,
		}, nil
	}
	resp, err := t.base().RoundTrip(req)
	if err != nil || resp == nil {
		return resp, err
	}
	switch d.Action {
	case Reset:
		resp.Body = &cutBody{rc: resp.Body, remain: d.CutAfter, err: errReset()}
	case Truncate:
		resp.Body = &cutBody{rc: resp.Body, remain: d.CutAfter}
	case Slow:
		spec := t.Schedule.Spec()
		resp.Body = &slowBody{rc: resp.Body, chunk: spec.SlowChunk, pause: spec.SlowPause, sleep: t.sleep}
	}
	return resp, nil
}

// cutBody relays at most remain bytes of the underlying body, then fails
// with err (a reset) or reports a clean EOF (a truncation). On the cut it
// closes the underlying body immediately — with bytes still unread, which
// kills the keep-alive connection exactly like the real fault would.
type cutBody struct {
	rc     io.ReadCloser
	remain int
	err    error // nil = clean EOF (truncate)
	done   bool
}

func (b *cutBody) Read(p []byte) (int, error) {
	if b.done || b.remain <= 0 {
		b.cut()
		if b.err != nil {
			return 0, b.err
		}
		return 0, io.EOF
	}
	if len(p) > b.remain {
		p = p[:b.remain]
	}
	n, err := b.rc.Read(p)
	b.remain -= n
	if err != nil {
		// The real body ended before the cut point; pass it through.
		b.done = true
		return n, err
	}
	return n, nil
}

func (b *cutBody) cut() {
	if !b.done {
		b.done = true
		_ = b.rc.Close()
	}
}

func (b *cutBody) Close() error {
	b.cut()
	return nil
}

// slowBody throttles reads: at most chunk bytes per Read, a pause after
// each.
type slowBody struct {
	rc    io.ReadCloser
	chunk int
	pause time.Duration
	sleep func(time.Duration)
}

func (b *slowBody) Read(p []byte) (int, error) {
	if len(p) > b.chunk {
		p = p[:b.chunk]
	}
	n, err := b.rc.Read(p)
	if n > 0 && b.pause > 0 {
		b.sleep(b.pause)
	}
	return n, err
}

func (b *slowBody) Close() error { return b.rc.Close() }
