package fault

import (
	"bufio"
	"fmt"
	"io"
	"net"
	"net/http"
	"sync"
	"time"
)

// Proxy is an in-process TCP relay between a client and one backend that
// injects the schedule's faults at the socket layer — below everything the
// HTTP client can see or compensate for. Each accepted connection claims the
// next slot:
//
//   - Refuse closes the connection immediately (before any bytes), which
//     HTTP clients surface as a refused/ECONNRESET dial.
//   - HTTP500 answers with a canned 500 without contacting the backend.
//   - Reset relays CutAfter backend→client bytes, then closes with SO_LINGER
//     zero so the kernel sends a real RST.
//   - Truncate relays CutAfter bytes, then closes cleanly (FIN) — the
//     mid-line NDJSON truncation a silently dropped peer produces.
//   - Slow throttles the backend→client copy (SlowChunk bytes, SlowPause).
//   - Latency delays the first relayed byte.
//
// Because HTTP keep-alive would let many requests share one connection —
// tying fault positions to connection reuse instead of the schedule — chaos
// tests that want per-request faults should disable keep-alives on the
// client transport so every request is one proxied connection, one slot.
type Proxy struct {
	ln    net.Listener
	sched *Schedule
	sleep func(time.Duration)

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup
}

// NewProxy starts a proxy on a fresh loopback port relaying to target (a
// host:port). Close releases the port and every in-flight connection.
func NewProxy(target string, sched *Schedule, sleep func(time.Duration)) (*Proxy, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	if sleep == nil {
		sleep = time.Sleep
	}
	p := &Proxy{ln: ln, sched: sched, sleep: sleep, conns: map[net.Conn]struct{}{}}
	p.wg.Add(1)
	go p.serve(target)
	return p, nil
}

// Addr returns the proxy's listen address (host:port).
func (p *Proxy) Addr() string { return p.ln.Addr().String() }

// URL returns the proxy's HTTP base URL.
func (p *Proxy) URL() string { return "http://" + p.Addr() }

// Close stops accepting, severs every open connection and waits for the
// relay goroutines to drain.
func (p *Proxy) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	_ = p.ln.Close()
	for c := range p.conns {
		_ = c.Close()
	}
	p.mu.Unlock()
	p.wg.Wait()
}

func (p *Proxy) track(c net.Conn) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		_ = c.Close()
		return false
	}
	p.conns[c] = struct{}{}
	return true
}

func (p *Proxy) untrack(c net.Conn) {
	p.mu.Lock()
	delete(p.conns, c)
	p.mu.Unlock()
	_ = c.Close()
}

func (p *Proxy) serve(target string) {
	defer p.wg.Done()
	for {
		conn, err := p.ln.Accept()
		if err != nil {
			return // listener closed
		}
		if !p.track(conn) {
			return
		}
		d := p.sched.Next()
		p.wg.Add(1)
		go func() {
			defer p.wg.Done()
			defer p.untrack(conn)
			p.handle(conn, target, d)
		}()
	}
}

func (p *Proxy) handle(client net.Conn, target string, d Decision) {
	if d.Latency > 0 {
		p.sleep(d.Latency)
	}
	switch d.Action {
	case Refuse:
		// Abort before any bytes: RST if the stack supports it, so the
		// client sees a refused-looking connection, not a clean EOF.
		if tc, ok := client.(*net.TCPConn); ok {
			_ = tc.SetLinger(0)
		}
		return
	case HTTP500:
		// Consume the request first — an unsolicited response on an idle
		// connection is a protocol violation HTTP clients reject.
		if req, err := http.ReadRequest(bufio.NewReader(client)); err == nil {
			_, _ = io.Copy(io.Discard, req.Body)
			_ = req.Body.Close()
		}
		body := fmt.Sprintf(`{"error":"fault: injected 500 (conn %d)"}`, d.Slot)
		fmt.Fprintf(client, "HTTP/1.1 500 Internal Server Error\r\nContent-Type: application/json\r\nContent-Length: %d\r\nConnection: close\r\n\r\n%s", len(body), body)
		return
	}

	backend, err := net.Dial("tcp", target)
	if err != nil {
		return
	}
	if !p.track(backend) {
		return
	}
	defer p.untrack(backend)

	// Client→backend always relays in full (requests are tiny); faults act
	// on the backend→client leg, where the stream lives.
	p.wg.Add(1)
	go func() {
		defer p.wg.Done()
		_, _ = io.Copy(backend, client)
		// Half-close toward the backend so it sees the request end even
		// when the client keeps its read side open.
		if tc, ok := backend.(*net.TCPConn); ok {
			_ = tc.CloseWrite()
		}
	}()

	var reader io.Reader = backend
	switch d.Action {
	case Reset:
		_, _ = io.CopyN(client, reader, int64(d.CutAfter))
		if tc, ok := client.(*net.TCPConn); ok {
			_ = tc.SetLinger(0) // close sends RST, not FIN
		}
		return
	case Truncate:
		_, _ = io.CopyN(client, reader, int64(d.CutAfter))
		return // clean FIN mid-stream
	case Slow:
		spec := p.sched.Spec()
		buf := make([]byte, spec.SlowChunk)
		for {
			n, err := reader.Read(buf)
			if n > 0 {
				if _, werr := client.Write(buf[:n]); werr != nil {
					return
				}
				if spec.SlowPause > 0 {
					p.sleep(spec.SlowPause)
				}
			}
			if err != nil {
				return
			}
		}
	}
	_, _ = io.Copy(client, reader)
}
