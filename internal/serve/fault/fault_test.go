package fault

import (
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"syscall"
	"testing"
	"time"
)

// chaosSpec is a representative all-faults mix used by the determinism
// tests.
func chaosSpec() Spec {
	return Spec{
		RefusePM: 60, HTTP500PM: 60, ResetPM: 60, TruncatePM: 60, SlowPM: 60,
		LatencyPM: 100, MaxLatency: 20 * time.Millisecond,
		CutAfterMin: 3, CutAfterMax: 900,
		SlowChunk: 32, SlowPause: time.Millisecond,
	}
}

// TestScheduleReplaysBitIdentically: the replay contract — two schedules
// with the same seed and spec produce identical decision sequences, Decide
// is pure, and a different seed produces a different sequence.
func TestScheduleReplaysBitIdentically(t *testing.T) {
	const n = 2000
	a, err := NewSchedule(42, chaosSpec())
	if err != nil {
		t.Fatal(err)
	}
	b, _ := NewSchedule(42, chaosSpec())
	other, _ := NewSchedule(43, chaosSpec())
	diverged := false
	for i := 0; i < n; i++ {
		da, db := a.Next(), b.Next()
		if da != db {
			t.Fatalf("slot %d: same seed diverged: %v vs %v", i, da, db)
		}
		if da != a.Decide(uint64(i)) {
			t.Fatalf("slot %d: Next() != Decide(): %v vs %v", i, da, a.Decide(uint64(i)))
		}
		if da != other.Decide(uint64(i)) {
			diverged = true
		}
	}
	if !diverged {
		t.Fatal("seeds 42 and 43 produced identical 2000-slot schedules")
	}
	if a.Slots() != n {
		t.Fatalf("Slots() = %d, want %d", a.Slots(), n)
	}
}

// TestScheduleCoversMix: every configured action (and latency, and the clean
// path) must actually occur, and cut offsets must respect their bounds.
func TestScheduleCoversMix(t *testing.T) {
	s, err := NewSchedule(7, chaosSpec())
	if err != nil {
		t.Fatal(err)
	}
	seen := map[Action]int{}
	lat := 0
	for i := uint64(0); i < 4000; i++ {
		d := s.Decide(i)
		seen[d.Action]++
		if d.Latency > 0 {
			lat++
			if d.Latency > 20*time.Millisecond {
				t.Fatalf("slot %d: latency %s exceeds MaxLatency", i, d.Latency)
			}
		}
		if d.Action == Reset || d.Action == Truncate {
			if d.CutAfter < 3 || d.CutAfter > 900 {
				t.Fatalf("slot %d: CutAfter %d outside [3, 900]", i, d.CutAfter)
			}
		} else if d.CutAfter != 0 {
			t.Fatalf("slot %d: CutAfter %d on %s", i, d.CutAfter, d.Action)
		}
	}
	for _, act := range []Action{None, Refuse, HTTP500, Reset, Truncate, Slow} {
		if seen[act] == 0 {
			t.Fatalf("action %s never drawn in 4000 slots: %v", act, seen)
		}
	}
	if lat == 0 {
		t.Fatal("latency never drawn in 4000 slots")
	}
}

// TestScheduleRejectsBadSpec: invalid mixes fail construction.
func TestScheduleRejectsBadSpec(t *testing.T) {
	if _, err := NewSchedule(1, Spec{RefusePM: 600, ResetPM: 600}); err == nil {
		t.Fatal("overweight spec accepted")
	}
	if _, err := NewSchedule(1, Spec{RefusePM: -1}); err == nil {
		t.Fatal("negative weight accepted")
	}
	if _, err := NewSchedule(1, Spec{CutAfterMin: -2}); err == nil {
		t.Fatal("negative CutAfterMin accepted")
	}
}

// forced returns a schedule where every slot draws exactly the given action.
func forced(t *testing.T, spec Spec) *Schedule {
	t.Helper()
	s, err := NewSchedule(11, spec)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestTransportInjectsEachFault drives every action through a real HTTP
// exchange and asserts the client-visible failure shape.
func TestTransportInjectsEachFault(t *testing.T) {
	const body = "0123456789abcdefghijklmnopqrstuvwxyz0123456789abcdefghijklmnopqrstuvwxyz"
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		_, _ = io.WriteString(w, body)
	}))
	defer srv.Close()

	get := func(tr *Transport) (*http.Response, error) {
		hc := &http.Client{Transport: tr}
		return hc.Get(srv.URL)
	}

	t.Run("refuse", func(t *testing.T) {
		tr := &Transport{Schedule: forced(t, Spec{RefusePM: 1000})}
		_, err := get(tr)
		if !errors.Is(err, syscall.ECONNREFUSED) {
			t.Fatalf("got %v, want ECONNREFUSED", err)
		}
	})
	t.Run("http500", func(t *testing.T) {
		tr := &Transport{Schedule: forced(t, Spec{HTTP500PM: 1000})}
		resp, err := get(tr)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != 500 {
			t.Fatalf("status %d, want 500", resp.StatusCode)
		}
		raw, _ := io.ReadAll(resp.Body)
		if !strings.Contains(string(raw), "injected 500") {
			t.Fatalf("body %q lacks the injection marker", raw)
		}
	})
	t.Run("reset", func(t *testing.T) {
		tr := &Transport{Schedule: forced(t, Spec{ResetPM: 1000, CutAfterMin: 10, CutAfterMax: 10})}
		resp, err := get(tr)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		raw, err := io.ReadAll(resp.Body)
		if !errors.Is(err, syscall.ECONNRESET) {
			t.Fatalf("got %v after %d bytes, want ECONNRESET", err, len(raw))
		}
		if string(raw) != body[:10] {
			t.Fatalf("read %q before reset, want the first 10 bytes", raw)
		}
	})
	t.Run("truncate", func(t *testing.T) {
		tr := &Transport{Schedule: forced(t, Spec{TruncatePM: 1000, CutAfterMin: 7, CutAfterMax: 7})}
		resp, err := get(tr)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		raw, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		if string(raw) != body[:7] {
			t.Fatalf("read %q, want clean-EOF truncation to 7 bytes", raw)
		}
	})
	t.Run("slow", func(t *testing.T) {
		var pauses int
		tr := &Transport{
			Schedule: forced(t, Spec{SlowPM: 1000, SlowChunk: 8, SlowPause: time.Millisecond}),
			Sleep:    func(time.Duration) { pauses++ },
		}
		resp, err := get(tr)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		raw, _ := io.ReadAll(resp.Body)
		if string(raw) != body {
			t.Fatalf("slow body corrupted: %q", raw)
		}
		if pauses < len(body)/8 {
			t.Fatalf("%d pauses for %d bytes at chunk 8", pauses, len(body))
		}
	})
	t.Run("latency", func(t *testing.T) {
		var slept []time.Duration
		tr := &Transport{
			Schedule: forced(t, Spec{LatencyPM: 1000, MaxLatency: 50 * time.Millisecond}),
			Sleep:    func(d time.Duration) { slept = append(slept, d) },
		}
		resp, err := get(tr)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if len(slept) != 1 || slept[0] <= 0 {
			t.Fatalf("latency sleeps = %v, want exactly one positive", slept)
		}
		if want := tr.Schedule.Decide(0).Latency; slept[0] != want {
			t.Fatalf("slept %s, schedule says %s", slept[0], want)
		}
	})
	t.Run("clean", func(t *testing.T) {
		var faults []Decision
		tr := &Transport{Schedule: forced(t, Spec{}), OnFault: func(d Decision) { faults = append(faults, d) }}
		resp, err := get(tr)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		raw, _ := io.ReadAll(resp.Body)
		if string(raw) != body {
			t.Fatalf("clean body corrupted: %q", raw)
		}
		if len(faults) != 0 {
			t.Fatalf("clean schedule reported faults: %v", faults)
		}
	})
}

// TestProxyInjectsSocketFaults drives the TCP proxy's fault paths end to
// end: pass-through fidelity, refused connections, canned 500s, truncation
// and resets below the HTTP layer.
func TestProxyInjectsSocketFaults(t *testing.T) {
	const body = "the quick brown fox jumps over the lazy dog, repeatedly and at length"
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		_, _ = io.WriteString(w, body)
	}))
	defer srv.Close()
	target := strings.TrimPrefix(srv.URL, "http://")

	// One connection per request so connection slots map 1:1 to requests.
	client := func() *http.Client {
		tr := http.DefaultTransport.(*http.Transport).Clone()
		tr.DisableKeepAlives = true
		return &http.Client{Transport: tr, Timeout: 5 * time.Second}
	}

	run := func(t *testing.T, spec Spec) (*http.Response, error) {
		t.Helper()
		sched, err := NewSchedule(5, spec)
		if err != nil {
			t.Fatal(err)
		}
		p, err := NewProxy(target, sched, nil)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(p.Close)
		return client().Get(p.URL())
	}

	t.Run("clean", func(t *testing.T) {
		resp, err := run(t, Spec{})
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		raw, err := io.ReadAll(resp.Body)
		if err != nil || string(raw) != body {
			t.Fatalf("pass-through corrupted: %q, %v", raw, err)
		}
	})
	t.Run("refuse", func(t *testing.T) {
		if _, err := run(t, Spec{RefusePM: 1000}); err == nil {
			t.Fatal("refused connection succeeded")
		}
	})
	t.Run("http500", func(t *testing.T) {
		resp, err := run(t, Spec{HTTP500PM: 1000})
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != 500 {
			t.Fatalf("status %d, want 500", resp.StatusCode)
		}
	})
	t.Run("truncate", func(t *testing.T) {
		resp, err := run(t, Spec{TruncatePM: 1000, CutAfterMin: 40, CutAfterMax: 40})
		if err != nil {
			// The cut can land inside the response headers, which is a
			// legitimate socket-level truncation too.
			return
		}
		defer resp.Body.Close()
		if _, err := io.ReadAll(resp.Body); err == nil {
			t.Fatal("truncated body read cleanly to completion")
		}
	})
	t.Run("reset", func(t *testing.T) {
		resp, err := run(t, Spec{ResetPM: 1000, CutAfterMin: 40, CutAfterMax: 40})
		if err != nil {
			return // reset landed in the headers
		}
		defer resp.Body.Close()
		if _, err := io.ReadAll(resp.Body); err == nil {
			t.Fatal("reset body read cleanly to completion")
		}
	})
}

// TestDecisionString pins the log/golden rendering.
func TestDecisionString(t *testing.T) {
	d := Decision{Slot: 9, Action: Reset, CutAfter: 17, Latency: 3 * time.Millisecond}
	if got := d.String(); got != "#9 reset cut=17 lat=3ms" {
		t.Fatalf("String() = %q", got)
	}
	if got := fmt.Sprint(Decision{Slot: 2}); got != "#2 none" {
		t.Fatalf("clean String() = %q", got)
	}
}
