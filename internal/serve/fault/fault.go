// Package fault is a deterministic, seeded fault-injection layer for the
// fbbd serving stack. It produces the messy failures real multi-user traffic
// sees — refused connections, mid-body resets, NDJSON truncation, latency
// spikes, slow writes, spurious 500s — from a splitmix64-derived schedule
// that is a pure function of (seed, request slot), so any chaos run replays
// bit-identically from its seed.
//
// Two injection points compose over the same Schedule:
//
//   - Transport wraps an http.RoundTripper and injects protocol-precise
//     faults (a reset after exactly N body bytes, a synthetic 500 before the
//     request ever leaves the client).
//   - Proxy is an in-process TCP relay that injects faults at the socket
//     level (refused accepts, connections cut mid-relay, throttled copies),
//     below everything the HTTP layer can see.
//
// The package deliberately lives outside the kernel packages: it may sleep
// and touch real sockets. Determinism here means the *schedule* — which slot
// gets which fault, with which parameters — not wall-clock timing; tests
// that need replayable timing inject the sleep function too.
package fault

import (
	"errors"
	"fmt"
	"sync/atomic"
	"time"
)

// Action is the fault injected into one request slot.
type Action int

const (
	// None passes the request through untouched (possibly delayed, when
	// the slot also drew latency).
	None Action = iota
	// Refuse fails the request before it is sent, as a refused connection.
	Refuse
	// HTTP500 short-circuits the request with a synthetic 500 response;
	// the request never reaches the server.
	HTTP500
	// Reset performs the real exchange but cuts the response body with a
	// connection-reset error after CutAfter bytes.
	Reset
	// Truncate performs the real exchange but ends the response body with
	// a clean EOF after CutAfter bytes — for NDJSON responses the cut
	// lands mid-line, the silent truncation a dropped peer produces.
	Truncate
	// Slow performs the real exchange but throttles the response body
	// (a pause every few bytes), the slow-writer pathology.
	Slow
)

// String names the action for fault logs and schedule goldens.
func (a Action) String() string {
	switch a {
	case None:
		return "none"
	case Refuse:
		return "refuse"
	case HTTP500:
		return "http500"
	case Reset:
		return "reset"
	case Truncate:
		return "truncate"
	case Slow:
		return "slow"
	}
	return fmt.Sprintf("action(%d)", int(a))
}

// Spec sets the fault mix. Weights are per-mille of request slots; the
// remainder passes through clean. Latency composes with any action (it is an
// independent draw), so a slot can be both delayed and reset.
type Spec struct {
	// RefusePM / HTTP500PM / ResetPM / TruncatePM / SlowPM weight the
	// actions, in thousandths. Their sum must not exceed 1000.
	RefusePM   int
	HTTP500PM  int
	ResetPM    int
	TruncatePM int
	SlowPM     int
	// LatencyPM is the independent per-mille chance of a pre-response
	// delay; MaxLatency bounds it (delays are uniform in (0, MaxLatency],
	// quantized to milliseconds). Zero MaxLatency disables latency even
	// when LatencyPM is set.
	LatencyPM  int
	MaxLatency time.Duration
	// CutAfterMin / CutAfterMax bound the response-body bytes relayed
	// before a Reset or Truncate cut (inclusive). CutAfterMax defaults to
	// CutAfterMin when smaller.
	CutAfterMin int
	CutAfterMax int
	// SlowChunk / SlowPause shape Slow: a pause of SlowPause after every
	// SlowChunk body bytes. SlowChunk defaults to 64.
	SlowChunk int
	SlowPause time.Duration
}

func (s *Spec) validate() error {
	for _, pm := range []int{s.RefusePM, s.HTTP500PM, s.ResetPM, s.TruncatePM, s.SlowPM, s.LatencyPM} {
		if pm < 0 || pm > 1000 {
			return fmt.Errorf("fault: weight %d out of range [0, 1000]", pm)
		}
	}
	if sum := s.RefusePM + s.HTTP500PM + s.ResetPM + s.TruncatePM + s.SlowPM; sum > 1000 {
		return fmt.Errorf("fault: action weights sum to %d > 1000", sum)
	}
	if s.CutAfterMin < 0 {
		return errors.New("fault: CutAfterMin must be non-negative")
	}
	return nil
}

// Decision is the fully resolved fault for one slot: a pure function of the
// schedule's (seed, spec) and the slot index.
type Decision struct {
	Slot     uint64
	Action   Action
	Latency  time.Duration
	CutAfter int
}

// String renders the decision compactly for fault logs and replay goldens.
func (d Decision) String() string {
	s := fmt.Sprintf("#%d %s", d.Slot, d.Action)
	if d.Action == Reset || d.Action == Truncate {
		s += fmt.Sprintf(" cut=%d", d.CutAfter)
	}
	if d.Latency > 0 {
		s += fmt.Sprintf(" lat=%s", d.Latency)
	}
	return s
}

// Schedule derives per-slot fault decisions from a seed. Decide is pure;
// Next hands out consecutive slots to concurrent callers. Two schedules with
// the same seed and spec produce identical decision sequences — the replay
// contract of every chaos run.
type Schedule struct {
	seed uint64
	spec Spec
	next atomic.Uint64
}

// NewSchedule validates the spec and builds the schedule.
func NewSchedule(seed int64, spec Spec) (*Schedule, error) {
	if err := spec.validate(); err != nil {
		return nil, err
	}
	if spec.SlowChunk <= 0 {
		spec.SlowChunk = 64
	}
	if spec.CutAfterMax < spec.CutAfterMin {
		spec.CutAfterMax = spec.CutAfterMin
	}
	return &Schedule{seed: uint64(seed), spec: spec}, nil
}

// Spec returns the schedule's (normalized) fault mix.
func (s *Schedule) Spec() Spec { return s.spec }

// Seed returns the schedule's seed, for replay logs.
func (s *Schedule) Seed() int64 { return int64(s.seed) }

// splitmix64 gamma and finalizer constants (Steele et al.), the same mixer
// the rest of the repo uses for seed derivation (variation.DieSeed, the
// router's ring hash) — one shared idiom, locally inlined to keep the fault
// layer free of kernel-package imports.
const smGamma = 0x9e3779b97f4a7c15

func smMix(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Decide resolves the fault for a slot. Every slot consumes exactly three
// draws (action, latency, cut) from a per-slot splitmix64 stream, so one
// decision never perturbs another.
func (s *Schedule) Decide(slot uint64) Decision {
	state := smMix(s.seed + (slot+1)*smGamma)
	draw := func() uint64 {
		state += smGamma
		return smMix(state)
	}
	d := Decision{Slot: slot}

	v := int(draw() % 1000)
	switch {
	case v < s.spec.RefusePM:
		d.Action = Refuse
	case v < s.spec.RefusePM+s.spec.HTTP500PM:
		d.Action = HTTP500
	case v < s.spec.RefusePM+s.spec.HTTP500PM+s.spec.ResetPM:
		d.Action = Reset
	case v < s.spec.RefusePM+s.spec.HTTP500PM+s.spec.ResetPM+s.spec.TruncatePM:
		d.Action = Truncate
	case v < s.spec.RefusePM+s.spec.HTTP500PM+s.spec.ResetPM+s.spec.TruncatePM+s.spec.SlowPM:
		d.Action = Slow
	default:
		d.Action = None
	}

	lat := draw()
	if s.spec.LatencyPM > 0 && s.spec.MaxLatency >= time.Millisecond &&
		int(lat%1000) < s.spec.LatencyPM {
		steps := uint64(s.spec.MaxLatency / time.Millisecond)
		d.Latency = time.Duration(1+smMix(lat)%steps) * time.Millisecond
	}

	cut := draw()
	if d.Action == Reset || d.Action == Truncate {
		span := uint64(s.spec.CutAfterMax-s.spec.CutAfterMin) + 1
		d.CutAfter = s.spec.CutAfterMin + int(cut%span)
	}
	return d
}

// Next claims the next slot and returns its decision. Concurrent callers get
// distinct consecutive slots; with sequential calls the sequence replays
// exactly.
func (s *Schedule) Next() Decision {
	return s.Decide(s.next.Add(1) - 1)
}

// Slots reports how many slots have been claimed via Next.
func (s *Schedule) Slots() uint64 { return s.next.Load() }
