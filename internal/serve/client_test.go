package serve

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// ndjsonServer returns a Client against a stub that answers every POST with
// the given NDJSON lines verbatim.
func ndjsonServer(t *testing.T, lines ...string) *Client {
	t.Helper()
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/x-ndjson")
		for _, l := range lines {
			fmt.Fprintln(w, l)
		}
	}))
	t.Cleanup(ts.Close)
	return NewClient(ts.URL)
}

// TestYieldClientSurvivesFieldReordering: the stream classifier must key on
// the marker fields themselves, not on the byte position the server's
// encoder happened to put them — a die line, footer, and error line with
// their keys shuffled (and unknown keys added) must still parse correctly.
func TestYieldClientSurvivesFieldReordering(t *testing.T) {
	c := ndjsonServer(t,
		// Die line with "die" not first and an unknown trailing field.
		`{"seed":42,"die":0,"betaActual":0.01,"betaSensed":0.01,"met":true,"iters":0,"dcritBeforePS":1,"dcritAfterPS":1,"leakBeforeNW":2,"leakAfterNW":2,"future":"x"}`,
		// Footer whose "stats" key is not the first byte.
		`{"futureField":1,"stats":{"dies":1,"metBefore":1,"metAfter":1,"yieldBeforePct":100,"yieldAfterPct":100,"meanBetaPct":1,"worstBetaPct":1,"meanLeakBeforeNW":2,"meanLeakAfterNW":2,"meanLeakTunedOnlyNW":0,"tunedDies":0,"failedCompensations":0,"meanTuneIters":0,"meanClustersPerTuned":0}}`,
	)
	var dies []*DieResult
	stats, err := c.Yield(context.Background(), YieldRequest{}, func(d *DieResult) error {
		dies = append(dies, d)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(dies) != 1 || dies[0].Die != 0 || dies[0].Seed != 42 {
		t.Fatalf("die lines misparsed: %+v", dies)
	}
	if stats == nil || stats.Dies != 1 || stats.MetAfter != 1 {
		t.Fatalf("footer misparsed: %+v", stats)
	}

	// A reordered mid-stream error object must still surface as APIError.
	c = ndjsonServer(t,
		`{"die":0,"seed":1,"betaActual":0,"betaSensed":0,"met":true,"iters":0,"dcritBeforePS":1,"dcritAfterPS":1,"leakBeforeNW":1,"leakAfterNW":1}`,
		`{"detail":"ignored","error":"study exploded"}`,
	)
	_, err = c.Yield(context.Background(), YieldRequest{}, nil)
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Message != "study exploded" {
		t.Fatalf("mid-stream error misparsed: %v", err)
	}
}

// TestYieldClientMalformedStream: broken streams fail loudly — garbage
// lines, truncated streams with no footer, and non-JSON noise must produce
// errors, never a silent nil-stats success.
func TestYieldClientMalformedStream(t *testing.T) {
	for _, tc := range []struct {
		name    string
		lines   []string
		wantErr string
	}{
		{"garbage line", []string{`{"die":0`}, "bad stream line"},
		{"non-json noise", []string{`<html>proxy error</html>`}, "bad stream line"},
		{"no footer", []string{
			`{"die":0,"seed":1,"betaActual":0,"betaSensed":0,"met":true,"iters":0,"dcritBeforePS":1,"dcritAfterPS":1,"leakBeforeNW":1,"leakAfterNW":1}`,
		}, "without a stats footer"},
		{"empty stream", nil, "without a stats footer"},
	} {
		c := ndjsonServer(t, tc.lines...)
		stats, err := c.Yield(context.Background(), YieldRequest{}, nil)
		if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
			t.Errorf("%s: err %v, want %q", tc.name, err, tc.wantErr)
		}
		if stats != nil {
			t.Errorf("%s: returned stats %+v from a broken stream", tc.name, stats)
		}
	}
}

// TestYieldAdaptiveTargetCI: end to end, targetCI truncates the study — the
// footer reports the dies actually run, the stream carries exactly that many
// die lines, and the same request without targetCI runs the full count.
func TestYieldAdaptiveTargetCI(t *testing.T) {
	_, c := newTestServer(t, Options{})
	req := YieldRequest{
		DesignRef: DesignRef{Netlist: chainBench(16)},
		Dies:      100, Seed: 11, TargetCI: 0.2,
	}
	var lines int
	stats, err := c.Yield(context.Background(), req, func(d *DieResult) error {
		lines++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Dies >= 100 || stats.Dies < 2 {
		t.Fatalf("adaptive study ran %d dies of 100; truncation broken", stats.Dies)
	}
	if lines != stats.Dies {
		t.Fatalf("%d die lines for a %d-die footer", lines, stats.Dies)
	}

	req.TargetCI = 0
	req.Dies = 30
	stats, err = c.Yield(context.Background(), req, nil)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Dies != 30 {
		t.Fatalf("default-off study ran %d of 30 dies", stats.Dies)
	}

	req.TargetCI = 0.7
	if _, err := c.Yield(context.Background(), req, nil); err == nil {
		t.Error("out-of-range targetCI accepted")
	}
}
