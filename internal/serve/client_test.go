package serve

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
)

// ndjsonServer returns a Client against a stub that answers every POST with
// the given NDJSON lines verbatim.
func ndjsonServer(t *testing.T, lines ...string) *Client {
	t.Helper()
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/x-ndjson")
		for _, l := range lines {
			fmt.Fprintln(w, l)
		}
	}))
	t.Cleanup(ts.Close)
	return NewClient(ts.URL)
}

// TestYieldClientSurvivesFieldReordering: the stream classifier must key on
// the marker fields themselves, not on the byte position the server's
// encoder happened to put them — a die line, footer, and error line with
// their keys shuffled (and unknown keys added) must still parse correctly.
func TestYieldClientSurvivesFieldReordering(t *testing.T) {
	c := ndjsonServer(t,
		// Die line with "die" not first and an unknown trailing field.
		`{"seed":42,"die":0,"betaActual":0.01,"betaSensed":0.01,"met":true,"iters":0,"dcritBeforePS":1,"dcritAfterPS":1,"leakBeforeNW":2,"leakAfterNW":2,"future":"x"}`,
		// Footer whose "stats" key is not the first byte.
		`{"futureField":1,"stats":{"dies":1,"metBefore":1,"metAfter":1,"yieldBeforePct":100,"yieldAfterPct":100,"meanBetaPct":1,"worstBetaPct":1,"meanLeakBeforeNW":2,"meanLeakAfterNW":2,"meanLeakTunedOnlyNW":0,"tunedDies":0,"failedCompensations":0,"meanTuneIters":0,"meanClustersPerTuned":0}}`,
	)
	var dies []*DieResult
	stats, err := c.Yield(context.Background(), YieldRequest{}, func(d *DieResult) error {
		dies = append(dies, d)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(dies) != 1 || dies[0].Die != 0 || dies[0].Seed != 42 {
		t.Fatalf("die lines misparsed: %+v", dies)
	}
	if stats == nil || stats.Dies != 1 || stats.MetAfter != 1 {
		t.Fatalf("footer misparsed: %+v", stats)
	}

	// A reordered mid-stream error object must still surface as APIError.
	c = ndjsonServer(t,
		`{"die":0,"seed":1,"betaActual":0,"betaSensed":0,"met":true,"iters":0,"dcritBeforePS":1,"dcritAfterPS":1,"leakBeforeNW":1,"leakAfterNW":1}`,
		`{"detail":"ignored","error":"study exploded"}`,
	)
	_, err = c.Yield(context.Background(), YieldRequest{}, nil)
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Message != "study exploded" {
		t.Fatalf("mid-stream error misparsed: %v", err)
	}
}

// TestYieldClientMalformedStream: broken streams fail loudly — garbage
// lines, truncated streams with no footer, and non-JSON noise must produce
// errors, never a silent nil-stats success.
func TestYieldClientMalformedStream(t *testing.T) {
	for _, tc := range []struct {
		name    string
		lines   []string
		wantErr string
	}{
		{"garbage line", []string{`{"die":0`}, "bad stream line"},
		{"non-json noise", []string{`<html>proxy error</html>`}, "bad stream line"},
		{"no footer", []string{
			`{"die":0,"seed":1,"betaActual":0,"betaSensed":0,"met":true,"iters":0,"dcritBeforePS":1,"dcritAfterPS":1,"leakBeforeNW":1,"leakAfterNW":1}`,
		}, "without a stats footer"},
		{"empty stream", nil, "without a stats footer"},
	} {
		c := ndjsonServer(t, tc.lines...)
		stats, err := c.Yield(context.Background(), YieldRequest{}, nil)
		if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
			t.Errorf("%s: err %v, want %q", tc.name, err, tc.wantErr)
		}
		if stats != nil {
			t.Errorf("%s: returned stats %+v from a broken stream", tc.name, stats)
		}
	}
}

// TestYieldAdaptiveTargetCI: end to end, targetCI truncates the study — the
// footer reports the dies actually run, the stream carries exactly that many
// die lines, and the same request without targetCI runs the full count.
func TestYieldAdaptiveTargetCI(t *testing.T) {
	_, c := newTestServer(t, Options{})
	req := YieldRequest{
		DesignRef: DesignRef{Netlist: chainBench(16)},
		Dies:      100, Seed: 11, TargetCI: 0.2,
	}
	var lines int
	stats, err := c.Yield(context.Background(), req, func(d *DieResult) error {
		lines++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Dies >= 100 || stats.Dies < 2 {
		t.Fatalf("adaptive study ran %d dies of 100; truncation broken", stats.Dies)
	}
	if lines != stats.Dies {
		t.Fatalf("%d die lines for a %d-die footer", lines, stats.Dies)
	}

	req.TargetCI = 0
	req.Dies = 30
	stats, err = c.Yield(context.Background(), req, nil)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Dies != 30 {
		t.Fatalf("default-off study ran %d of 30 dies", stats.Dies)
	}

	req.TargetCI = 0.7
	if _, err := c.Yield(context.Background(), req, nil); err == nil {
		t.Error("out-of-range targetCI accepted")
	}
}

// TestClientReusesConnections is the regression test for the
// connection-churn bug: post, decodeAPIError and Yield used to close
// response bodies with bytes still unread, which kills the keep-alive
// connection — under a 503-heavy load run every shed response forced a
// fresh dial (and with it a fresh ephemeral port, eventually exhausting
// them). All sequential traffic — shed 503s, JSON responses with their
// trailing newline, finished NDJSON streams — must ride one connection.
func TestClientReusesConnections(t *testing.T) {
	var dials atomic.Int64
	mux := http.NewServeMux()
	// Every handler flushes, forcing chunked transfer encoding — that is
	// what the real server's streamed responses (and any front proxy that
	// does not buffer) look like on the wire. A chunked body's EOF lives
	// after the terminal chunk, so a json.Decoder or scanner that stopped
	// at the value's end has NOT seen EOF, and a bare Close drops the
	// connection. (With small Content-Length bodies the decoder's
	// read-ahead hides the bug, which is exactly how it shipped.)
	mux.HandleFunc("POST /v1/tune", func(w http.ResponseWriter, r *http.Request) {
		writeError(w, errSaturated) // 503 + Retry-After + JSON body
		w.(http.Flusher).Flush()
	})
	// A long study: ~1000 die lines (~130 KB) before the footer. A client
	// that stops consuming mid-stream leaves most of it unread — the case
	// a bare Close always turns into a dead connection.
	mux.HandleFunc("POST /v1/yield", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/x-ndjson")
		for i := 0; i < 1000; i++ {
			fmt.Fprintf(w, `{"die":%d,"seed":1,"betaActual":0,"betaSensed":0,"met":true,"iters":0,"dcritBeforePS":1,"dcritAfterPS":1,"leakBeforeNW":1,"leakAfterNW":1}`+"\n", i)
		}
		w.(http.Flusher).Flush()
		fmt.Fprintln(w, `{"stats":{"dies":1000,"metBefore":1000,"metAfter":1000,"yieldBeforePct":100,"yieldAfterPct":100,"meanBetaPct":1,"worstBetaPct":1,"meanLeakBeforeNW":1,"meanLeakAfterNW":1,"meanLeakTunedOnlyNW":0,"tunedDies":0,"failedCompensations":0,"meanTuneIters":0,"meanClustersPerTuned":0}}`)
		w.(http.Flusher).Flush()
	})
	mux.HandleFunc("GET /v1/stats", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, StatsResponse{})
		w.(http.Flusher).Flush()
	})
	mux.HandleFunc("POST /v1/table1", func(w http.ResponseWriter, r *http.Request) {
		writeError(w, badRequest("no")) // 400 with an unread JSON body
		w.(http.Flusher).Flush()
	})
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)

	tr := &http.Transport{
		DialContext: func(ctx context.Context, network, addr string) (net.Conn, error) {
			dials.Add(1)
			var d net.Dialer
			return d.DialContext(ctx, network, addr)
		},
	}
	t.Cleanup(tr.CloseIdleConnections)
	c := NewClientWith(ts.URL, &http.Client{Transport: tr})

	ctx := context.Background()
	for i := 0; i < 5; i++ { // the 503-heavy path: decodeAPIError must drain
		var apiErr *APIError
		if _, err := c.Tune(ctx, TuneRequest{}); !errors.As(err, &apiErr) || !apiErr.IsRetryable() {
			t.Fatalf("tune %d: %v", i, err)
		}
	}
	for i := 0; i < 3; i++ { // non-503 errors too
		if _, err := c.Table1(ctx, Table1Request{}); err == nil {
			t.Fatalf("table1 %d unexpectedly succeeded", i)
		}
	}
	for i := 0; i < 3; i++ { // finished NDJSON streams leave a trailing newline
		if _, err := c.Yield(ctx, YieldRequest{}, nil); err != nil {
			t.Fatalf("yield %d: %v", i, err)
		}
	}
	errStop := errors.New("enough")
	for i := 0; i < 3; i++ { // a consumer stopping mid-stream abandons ~130KB
		_, err := c.Yield(ctx, YieldRequest{}, func(d *DieResult) error {
			if d.Die >= 1 {
				return errStop
			}
			return nil
		})
		if !errors.Is(err, errStop) {
			t.Fatalf("aborted yield %d: %v", i, err)
		}
	}
	for i := 0; i < 3; i++ { // plain JSON GETs leave the encoder's newline
		if _, err := c.Stats(ctx); err != nil {
			t.Fatalf("stats %d: %v", i, err)
		}
	}
	if got := dials.Load(); got != 1 {
		t.Errorf("14 sequential requests dialed %d times, want 1: undrained bodies are killing keep-alive connections", got)
	}
}
