package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
)

// Client is a thin typed client for the fbbd API. The zero HTTPClient uses
// http.DefaultClient; safe for concurrent use.
type Client struct {
	// BaseURL is the server root, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// HTTPClient overrides the transport (nil = http.DefaultClient).
	HTTPClient *http.Client
}

// NewClient returns a Client for the given base URL.
func NewClient(baseURL string) *Client {
	return &Client{BaseURL: strings.TrimRight(baseURL, "/")}
}

// NewClientWith returns a Client using the given http.Client (nil =
// http.DefaultClient).
func NewClientWith(baseURL string, hc *http.Client) *Client {
	return &Client{BaseURL: strings.TrimRight(baseURL, "/"), HTTPClient: hc}
}

// maxDrainBytes bounds how much of an unread response body drainClose will
// consume to hand the connection back to the keep-alive pool. Error bodies
// are tiny; an abandoned NDJSON stream past this bound costs the
// connection, not unbounded reading.
const maxDrainBytes = 256 << 10

// drainClose consumes the remainder of a response body (bounded) before
// closing it. Closing an HTTP response body with bytes still unread kills
// the underlying keep-alive connection; under a 503-heavy load run that
// turns every shed response into a fresh dial. Draining first lets the
// transport reuse the connection.
func drainClose(body io.ReadCloser) {
	_, _ = io.Copy(io.Discard, io.LimitReader(body, maxDrainBytes))
	_ = body.Close()
}

// APIError is a non-2xx response decoded from the server's error body.
type APIError struct {
	// StatusCode is the HTTP status.
	StatusCode int
	// Message is the server's error string.
	Message string
	// RetryAfterSec is the Retry-After header (0 if absent) — set on 503
	// shed responses; clients replaying traffic should back off by it.
	RetryAfterSec int
}

func (e *APIError) Error() string {
	return fmt.Sprintf("fbbd: %d: %s", e.StatusCode, e.Message)
}

// IsRetryable reports whether the request was shed (saturated or draining)
// rather than rejected.
func (e *APIError) IsRetryable() bool { return e.StatusCode == http.StatusServiceUnavailable }

func (c *Client) httpClient() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return http.DefaultClient
}

// post issues one JSON POST and returns the raw response; the caller owns
// the body. Non-2xx responses are decoded into *APIError.
func (c *Client) post(ctx context.Context, path string, reqBody any) (*http.Response, error) {
	buf, err := json.Marshal(reqBody)
	if err != nil {
		return nil, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.BaseURL+path, bytes.NewReader(buf))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode/100 != 2 {
		defer drainClose(resp.Body)
		return nil, decodeAPIError(resp)
	}
	return resp, nil
}

func decodeAPIError(resp *http.Response) error {
	apiErr := &APIError{StatusCode: resp.StatusCode}
	if ra, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil {
		apiErr.RetryAfterSec = ra
	}
	var body ErrorResponse
	if err := json.NewDecoder(resp.Body).Decode(&body); err == nil && body.Error != "" {
		apiErr.Message = body.Error
	} else {
		apiErr.Message = resp.Status
	}
	return apiErr
}

func (c *Client) postJSON(ctx context.Context, path string, reqBody, out any) error {
	resp, err := c.post(ctx, path, reqBody)
	if err != nil {
		return err
	}
	// Drain, don't just close: json.Decoder stops at the value's end and
	// leaves the encoder's trailing newline unread, which would cost the
	// keep-alive connection on every single request.
	defer drainClose(resp.Body)
	return json.NewDecoder(resp.Body).Decode(out)
}

// Tune runs one /v1/tune request.
func (c *Client) Tune(ctx context.Context, req TuneRequest) (*TuneResponse, error) {
	var out TuneResponse
	if err := c.postJSON(ctx, "/v1/tune", req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Table1 runs one /v1/table1 request.
func (c *Client) Table1(ctx context.Context, req Table1Request) (*Table1Response, error) {
	var out Table1Response
	if err := c.postJSON(ctx, "/v1/table1", req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Yield runs one streamed /v1/yield request, invoking onDie (when non-nil)
// for every per-die NDJSON line as it arrives, and returns the aggregate
// statistics from the stream footer. A mid-stream server error arrives as
// an *APIError with StatusCode 200.
func (c *Client) Yield(ctx context.Context, req YieldRequest, onDie func(*DieResult) error) (*YieldStatsJSON, error) {
	resp, err := c.post(ctx, "/v1/yield", req)
	if err != nil {
		return nil, err
	}
	// The footer return leaves at most trailing whitespace unread; an
	// early error abandons the stream mid-flight. Either way, drain
	// (bounded) so the connection survives for the next request.
	defer drainClose(resp.Body)

	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 64*1024), 16*1024*1024)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		// The footer and the terminal error object are the only non-die
		// lines. Discriminate by decoding a probe of their marker keys —
		// no DieResult field is named "stats" or "error", and a marker
		// identifies its line wherever the encoder put the key, so the
		// classification survives any server-side field reordering
		// (a raw byte-prefix check would silently misread the footer as
		// a die line the day the wire order changed).
		var probe struct {
			Stats *YieldStatsJSON `json:"stats"`
			Error *string         `json:"error"`
		}
		if err := json.Unmarshal(line, &probe); err != nil {
			return nil, fmt.Errorf("fbbd: bad stream line: %w", err)
		}
		if probe.Stats != nil {
			return probe.Stats, nil
		}
		if probe.Error != nil {
			return nil, &APIError{StatusCode: resp.StatusCode, Message: *probe.Error}
		}
		var die DieResult
		if err := json.Unmarshal(line, &die); err != nil {
			return nil, fmt.Errorf("fbbd: bad stream line: %w", err)
		}
		if onDie != nil {
			if err := onDie(&die); err != nil {
				return nil, err
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return nil, fmt.Errorf("fbbd: yield stream ended without a stats footer")
}

// Stats fetches /v1/stats.
func (c *Client) Stats(ctx context.Context) (*StatsResponse, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+"/v1/stats", nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return nil, err
	}
	defer drainClose(resp.Body)
	if resp.StatusCode/100 != 2 {
		return nil, decodeAPIError(resp)
	}
	var out StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, err
	}
	return &out, nil
}

// ClusterStats fetches /v1/stats and decodes it as a router's cluster
// view. Against a plain fbbd the call succeeds with no replicas — the
// presence of replicas is how callers (fbbload's multi-target mode)
// distinguish a router from a single server.
func (c *Client) ClusterStats(ctx context.Context) (*ClusterStatsResponse, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+"/v1/stats", nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return nil, err
	}
	defer drainClose(resp.Body)
	if resp.StatusCode/100 != 2 {
		return nil, decodeAPIError(resp)
	}
	var out ClusterStatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Benchmarks fetches the server's built-in design names.
func (c *Client) Benchmarks(ctx context.Context) ([]string, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+"/v1/benchmarks", nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return nil, err
	}
	defer drainClose(resp.Body)
	if resp.StatusCode/100 != 2 {
		return nil, decodeAPIError(resp)
	}
	var out struct {
		Benchmarks []string `json:"benchmarks"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, err
	}
	return out.Benchmarks, nil
}
