package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync/atomic"
)

// Client is a thin typed client for the fbbd API. The zero HTTPClient uses
// http.DefaultClient; safe for concurrent use.
type Client struct {
	// BaseURL is the server root, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// HTTPClient overrides the transport (nil = http.DefaultClient).
	HTTPClient *http.Client
	// Retry, when non-nil, makes the client self-healing: retryable
	// failures (shed 503s, 5xx, transport errors, broken yield streams)
	// are retried under the policy's backoff and budgets, and Yield
	// transparently resumes a broken stream from its last checkpoint with
	// duplicate-die suppression. Nil preserves single-attempt behavior.
	Retry *RetryPolicy

	// retries counts scheduled retry attempts (beyond each call's first)
	// across the client's lifetime.
	retries atomic.Int64
}

// Retries reports how many retry attempts (beyond first attempts) this
// client has scheduled — the numerator of a load run's amplification.
func (c *Client) Retries() int64 { return c.retries.Load() }

// NewClient returns a Client for the given base URL.
func NewClient(baseURL string) *Client {
	return &Client{BaseURL: strings.TrimRight(baseURL, "/")}
}

// NewClientWith returns a Client using the given http.Client (nil =
// http.DefaultClient).
func NewClientWith(baseURL string, hc *http.Client) *Client {
	return &Client{BaseURL: strings.TrimRight(baseURL, "/"), HTTPClient: hc}
}

// maxDrainBytes bounds how much of an unread response body drainClose will
// consume to hand the connection back to the keep-alive pool. Error bodies
// are tiny; an abandoned NDJSON stream past this bound costs the
// connection, not unbounded reading.
const maxDrainBytes = 256 << 10

// drainClose consumes the remainder of a response body (bounded) before
// closing it. Closing an HTTP response body with bytes still unread kills
// the underlying keep-alive connection; under a 503-heavy load run that
// turns every shed response into a fresh dial. Draining first lets the
// transport reuse the connection.
func drainClose(body io.ReadCloser) {
	_, _ = io.Copy(io.Discard, io.LimitReader(body, maxDrainBytes))
	_ = body.Close()
}

// APIError is a non-2xx response decoded from the server's error body.
type APIError struct {
	// StatusCode is the HTTP status.
	StatusCode int
	// Message is the server's error string.
	Message string
	// RetryAfterSec is the Retry-After header (0 if absent) — set on 503
	// shed responses; clients replaying traffic should back off by it.
	RetryAfterSec int
}

func (e *APIError) Error() string {
	return fmt.Sprintf("fbbd: %d: %s", e.StatusCode, e.Message)
}

// IsRetryable reports whether another attempt can succeed: shed requests
// (503, saturated or draining) and transient server-side failures (500/502/
// 504 — a crashed handler, a bad gateway hop). 4xx are the caller's bug and
// never retryable. All fbbd endpoints are pure functions of the request, so
// retrying a retryable status is always safe.
func (e *APIError) IsRetryable() bool {
	switch e.StatusCode {
	case http.StatusServiceUnavailable, http.StatusInternalServerError,
		http.StatusBadGateway, http.StatusGatewayTimeout:
		return true
	}
	return false
}

// StreamError reports a /v1/yield stream that died mid-flight, carrying the
// frontier: dies [0, NextDie) were fully delivered before the failure.
// Resume logic restarts at the last checkpoint and operators see exactly
// where the stream broke instead of an opaque decode error.
type StreamError struct {
	// NextDie is the first die index that was NOT delivered.
	NextDie int
	// Err is the underlying failure (transport error, truncation, bad
	// line).
	Err error
}

func (e *StreamError) Error() string {
	return fmt.Sprintf("fbbd: yield stream broken at die %d: %v", e.NextDie, e.Err)
}

func (e *StreamError) Unwrap() error { return e.Err }

func (c *Client) httpClient() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return http.DefaultClient
}

// post issues one JSON POST and returns the raw response; the caller owns
// the body. Non-2xx responses are decoded into *APIError.
func (c *Client) post(ctx context.Context, path string, reqBody any) (*http.Response, error) {
	buf, err := json.Marshal(reqBody)
	if err != nil {
		return nil, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.BaseURL+path, bytes.NewReader(buf))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode/100 != 2 {
		defer drainClose(resp.Body)
		return nil, decodeAPIError(resp)
	}
	return resp, nil
}

func decodeAPIError(resp *http.Response) error {
	apiErr := &APIError{StatusCode: resp.StatusCode}
	if ra, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil {
		apiErr.RetryAfterSec = ra
	}
	var body ErrorResponse
	if err := json.NewDecoder(resp.Body).Decode(&body); err == nil && body.Error != "" {
		apiErr.Message = body.Error
	} else {
		apiErr.Message = resp.Status
	}
	return apiErr
}

func (c *Client) postJSON(ctx context.Context, path string, reqBody, out any) error {
	resp, err := c.post(ctx, path, reqBody)
	if err != nil {
		return err
	}
	// Drain, don't just close: json.Decoder stops at the value's end and
	// leaves the encoder's trailing newline unread, which would cost the
	// keep-alive connection on every single request.
	defer drainClose(resp.Body)
	return json.NewDecoder(resp.Body).Decode(out)
}

// Tune runs one /v1/tune request (retried under the client's policy).
func (c *Client) Tune(ctx context.Context, req TuneRequest) (*TuneResponse, error) {
	var out TuneResponse
	err := c.doRetry(ctx, func() error {
		out = TuneResponse{}
		return c.postJSON(ctx, "/v1/tune", req, &out)
	})
	if err != nil {
		return nil, err
	}
	return &out, nil
}

// Table1 runs one /v1/table1 request (retried under the client's policy).
func (c *Client) Table1(ctx context.Context, req Table1Request) (*Table1Response, error) {
	var out Table1Response
	err := c.doRetry(ctx, func() error {
		out = Table1Response{}
		return c.postJSON(ctx, "/v1/table1", req, &out)
	})
	if err != nil {
		return nil, err
	}
	return &out, nil
}

// DefaultYieldCheckpoint is the checkpoint interval a retrying client
// requests when the caller didn't pick one: frequent enough that a broken
// stream rarely replays more than this many dies, rare enough that the
// checkpoint lines are stream noise, not stream payload.
const DefaultYieldCheckpoint = 64

// streamProgress carries a yield stream's client-side state across resume
// attempts: the delivery frontier and the latest resume token.
type streamProgress struct {
	// frontier is the next die index owed to onDie; dies [0, frontier)
	// were delivered exactly once.
	frontier int
	// ckpt is the most recent checkpoint line (nil until one arrives).
	ckpt *YieldCheckpoint
}

// Yield runs one streamed /v1/yield request, invoking onDie (when non-nil)
// for every per-die NDJSON line as it arrives, and returns the aggregate
// statistics from the stream footer. A mid-stream server error arrives as
// an *APIError with StatusCode 200; a broken stream as a *StreamError
// carrying the die frontier.
//
// With a retry policy set, the call is self-healing: a retryable failure
// resumes the stream from its last checkpoint (requesting checkpoints every
// DefaultYieldCheckpoint dies unless the request asked for its own
// interval), suppressing dies already delivered, so onDie sees every die
// exactly once in order and the footer statistics are byte-identical to an
// unbroken stream's. Attempt and time budgets span the whole call,
// including resumes.
func (c *Client) Yield(ctx context.Context, req YieldRequest, onDie func(*DieResult) error) (*YieldStatsJSON, error) {
	prog := streamProgress{ckpt: req.Resume}
	if req.Resume != nil {
		prog.frontier = req.Resume.Ckpt
	}
	if c.Retry == nil {
		return c.yieldOnce(ctx, req, &prog, onDie)
	}
	if req.Checkpoint <= 0 {
		req.Checkpoint = DefaultYieldCheckpoint
	}
	pol := c.Retry.withDefaults()
	start := pol.Clock.Now()
	for attempt := 1; ; attempt++ {
		req.Resume = prog.ckpt
		st, err := c.yieldOnce(ctx, req, &prog, onDie)
		if err == nil || !isRetryable(err) || attempt >= pol.MaxAttempts {
			return st, err
		}
		delay := floorDelay(pol.Delay(attempt), err)
		if pol.MaxElapsed > 0 && pol.Clock.Now().Sub(start)+delay > pol.MaxElapsed {
			return nil, err
		}
		if pol.OnRetry != nil {
			pol.OnRetry(attempt, delay, err)
		}
		c.retries.Add(1)
		if serr := pol.Clock.Sleep(ctx, delay); serr != nil {
			return nil, err
		}
	}
}

// yieldOnce performs one /v1/yield attempt, advancing prog as dies and
// checkpoints arrive. Dies below the frontier (the overlap between the last
// checkpoint and the break point of a resumed stream) are suppressed, not
// re-delivered.
func (c *Client) yieldOnce(ctx context.Context, req YieldRequest, prog *streamProgress, onDie func(*DieResult) error) (*YieldStatsJSON, error) {
	resp, err := c.post(ctx, "/v1/yield", req)
	if err != nil {
		return nil, err
	}
	// The footer return leaves at most trailing whitespace unread; an
	// early error abandons the stream mid-flight. Either way, drain
	// (bounded) so the connection survives for the next request.
	defer drainClose(resp.Body)

	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 64*1024), 16*1024*1024)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		// The footer, checkpoints and the terminal error object are the
		// only non-die lines. Discriminate by decoding a probe of their
		// marker keys — no DieResult field is named "stats", "error" or
		// "ckpt", and a marker identifies its line wherever the encoder
		// put the key, so the classification survives any server-side
		// field reordering (a raw byte-prefix check would silently
		// misread the footer as a die line the day the wire order
		// changed).
		var probe struct {
			Stats *YieldStatsJSON `json:"stats"`
			Error *string         `json:"error"`
			Ckpt  *int            `json:"ckpt"`
		}
		if err := json.Unmarshal(line, &probe); err != nil {
			return nil, &StreamError{NextDie: prog.frontier, Err: fmt.Errorf("bad stream line: %w", err)}
		}
		if probe.Stats != nil {
			return probe.Stats, nil
		}
		if probe.Error != nil {
			return nil, &APIError{StatusCode: resp.StatusCode, Message: *probe.Error}
		}
		if probe.Ckpt != nil {
			var ck YieldCheckpoint
			if err := json.Unmarshal(line, &ck); err != nil {
				return nil, &StreamError{NextDie: prog.frontier, Err: fmt.Errorf("bad stream line: %w", err)}
			}
			prog.ckpt = &ck
			continue
		}
		var die DieResult
		if err := json.Unmarshal(line, &die); err != nil {
			return nil, &StreamError{NextDie: prog.frontier, Err: fmt.Errorf("bad stream line: %w", err)}
		}
		switch {
		case die.Die < prog.frontier:
			continue // resume overlap: already delivered
		case die.Die > prog.frontier:
			return nil, &StreamError{NextDie: prog.frontier, Err: fmt.Errorf("stream jumped to die %d", die.Die)}
		}
		prog.frontier++
		if onDie != nil {
			if err := onDie(&die); err != nil {
				return nil, err
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, &StreamError{NextDie: prog.frontier, Err: err}
	}
	return nil, &StreamError{NextDie: prog.frontier, Err: fmt.Errorf("yield stream ended without a stats footer")}
}

// getJSON issues one GET and decodes a 2xx JSON body into out; non-2xx
// responses decode into *APIError.
func (c *Client) getJSON(ctx context.Context, path string, out any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+path, nil)
	if err != nil {
		return err
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return err
	}
	defer drainClose(resp.Body)
	if resp.StatusCode/100 != 2 {
		return decodeAPIError(resp)
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// Stats fetches /v1/stats (retried under the client's policy).
func (c *Client) Stats(ctx context.Context) (*StatsResponse, error) {
	var out StatsResponse
	err := c.doRetry(ctx, func() error {
		out = StatsResponse{}
		return c.getJSON(ctx, "/v1/stats", &out)
	})
	if err != nil {
		return nil, err
	}
	return &out, nil
}

// ClusterStats fetches /v1/stats and decodes it as a router's cluster
// view. Against a plain fbbd the call succeeds with no replicas — the
// presence of replicas is how callers (fbbload's multi-target mode)
// distinguish a router from a single server.
func (c *Client) ClusterStats(ctx context.Context) (*ClusterStatsResponse, error) {
	var out ClusterStatsResponse
	err := c.doRetry(ctx, func() error {
		out = ClusterStatsResponse{}
		return c.getJSON(ctx, "/v1/stats", &out)
	})
	if err != nil {
		return nil, err
	}
	return &out, nil
}

// Benchmarks fetches the server's built-in design names.
func (c *Client) Benchmarks(ctx context.Context) ([]string, error) {
	var out struct {
		Benchmarks []string `json:"benchmarks"`
	}
	err := c.doRetry(ctx, func() error {
		out.Benchmarks = nil
		return c.getJSON(ctx, "/v1/benchmarks", &out)
	})
	if err != nil {
		return nil, err
	}
	return out.Benchmarks, nil
}
