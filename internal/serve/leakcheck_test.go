package serve

import (
	"context"
	"net"
	"net/http"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// goroutineStacks returns one stack trace per live goroutine, minus the ones
// that are never a leak: the runtime's own helpers and testing's harness.
func goroutineStacks() []string {
	buf := make([]byte, 1<<20)
	for {
		n := runtime.Stack(buf, true)
		if n < len(buf) {
			buf = buf[:n]
			break
		}
		buf = make([]byte, 2*len(buf))
	}
	var out []string
	for _, st := range strings.Split(string(buf), "\n\n") {
		if st == "" {
			continue
		}
		if strings.Contains(st, "testing.(*T).Run") ||
			strings.Contains(st, "testing.Main") ||
			strings.Contains(st, "testing.runTests") ||
			strings.Contains(st, "runtime.goexit0") ||
			strings.Contains(st, "goroutineStacks") {
			continue
		}
		out = append(out, st)
	}
	return out
}

// leakCheck snapshots the goroutine population and, at cleanup, asserts it
// drained back to the snapshot. Register it BEFORE starting servers,
// routers or proxies: t.Cleanup runs LIFO, so the leak assertion then runs
// after their closers — exactly when everything they spawned must be gone.
// Brief stragglers (idle HTTP conns handing back, pool workers parking) get
// a polling grace window; a genuine leak fails with the offending stacks.
func leakCheck(t *testing.T) {
	t.Helper()
	base := len(goroutineStacks())
	t.Cleanup(func() {
		if t.Failed() {
			return // don't stack a leak report on a real failure
		}
		// Idle keep-alive connections on the shared default client hold a
		// read-loop goroutine each; they are pool state, not a leak.
		http.DefaultClient.CloseIdleConnections()
		deadline := time.Now().Add(5 * time.Second)
		for {
			stacks := goroutineStacks()
			if len(stacks) <= base {
				return
			}
			if time.Now().After(deadline) {
				t.Errorf("goroutine leak: %d at start, %d after cleanup; current stacks:\n\n%s",
					base, len(stacks), strings.Join(stacks, "\n\n"))
				return
			}
			time.Sleep(10 * time.Millisecond)
		}
	})
}

// connTracker counts connections a client transport opens and closes, for
// asserting that a suite's traffic leaks no sockets. Wire it with track.
type connTracker struct {
	opened atomic.Int64
	closed atomic.Int64
}

type trackedConn struct {
	net.Conn
	tr   *connTracker
	once atomic.Bool
}

func (c *trackedConn) Close() error {
	if c.once.CompareAndSwap(false, true) {
		c.tr.closed.Add(1)
	}
	return c.Conn.Close()
}

// track wraps an http.Transport's dialer so every connection it opens is
// counted, and returns the tracker.
func (tr *connTracker) track(t *http.Transport) *http.Transport {
	base := t.DialContext
	if base == nil {
		d := &net.Dialer{Timeout: 5 * time.Second}
		base = d.DialContext
	}
	t.DialContext = func(ctx context.Context, network, addr string) (net.Conn, error) {
		c, err := base(ctx, network, addr)
		if err != nil {
			return nil, err
		}
		tr.opened.Add(1)
		return &trackedConn{Conn: c, tr: tr}, nil
	}
	return t
}

// assertDrained closes the transport's idle pool and asserts every opened
// connection was closed (with a polling grace window for in-flight
// teardown).
func (tr *connTracker) assertDrained(t *testing.T, transport *http.Transport) {
	t.Helper()
	transport.CloseIdleConnections()
	deadline := time.Now().Add(5 * time.Second)
	for {
		opened, closed := tr.opened.Load(), tr.closed.Load()
		if opened == closed {
			return
		}
		if time.Now().After(deadline) {
			t.Errorf("connection leak: %d opened, %d closed", opened, closed)
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
}
