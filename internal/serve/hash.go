package serve

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"

	"repro/internal/netlist"
)

// DesignKey returns the prefix-cache key of a (design, forceRows) pair: a
// SHA-256 over a canonical, injective encoding of everything the flow prefix
// depends on — the design name, PI names, every gate's cell and input
// signals, the primary outputs, and the row override. Two requests share a
// cached placement exactly when this key matches, whether the design came
// from a built-in generator or an uploaded netlist.
//
// Injectivity matters more than speed here: every variable-length field is
// length-prefixed and every signal is tagged with its kind, so no two
// structurally distinct designs can serialize to the same byte stream (the
// fuzz target FuzzDesignKey exercises exactly this). Gate instance names are
// deliberately excluded — placement and timing never read them, so designs
// differing only in instance naming correctly share one prefix.
func DesignKey(d *netlist.Design, forceRows int) string {
	h := sha256.New()
	var buf [binary.MaxVarintLen64]byte
	putInt := func(v int64) {
		n := binary.PutVarint(buf[:], v)
		h.Write(buf[:n])
	}
	putStr := func(s string) {
		putInt(int64(len(s)))
		h.Write([]byte(s))
	}
	putSig := func(s netlist.Signal) {
		putInt(int64(s.Kind))
		putInt(int64(s.Idx))
	}

	putStr(d.Name)
	putInt(int64(forceRows))
	putInt(int64(len(d.PINames)))
	for _, n := range d.PINames {
		putStr(n)
	}
	putInt(int64(len(d.Gates)))
	for i := range d.Gates {
		g := &d.Gates[i]
		putStr(g.Cell.Name)
		putInt(int64(len(g.Ins)))
		for _, s := range g.Ins {
			putSig(s)
		}
	}
	putInt(int64(len(d.POs)))
	for _, po := range d.POs {
		putStr(po.Name)
		putSig(po.Sig)
	}
	return hex.EncodeToString(h.Sum(nil))
}
