package serve

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"repro/internal/cell"
	"repro/internal/netlist"
)

// FuzzDecodeRequest throws arbitrary bytes at every /v1/* request decoder:
// no panic, ever — bad input is a 400-shaped error value. Requests that
// survive decoding and validation with an embedded netlist also go through
// the .bench parser and the cache-key hasher, the rest of the
// attacker-controlled surface before any flow work starts.
func FuzzDecodeRequest(f *testing.F) {
	f.Add([]byte(`{"benchmark":"c1355","beta":0.05,"maxClusters":3,"solver":"heuristic"}`))
	f.Add([]byte(`{"benchmark":"c1355","die":{"seed":7,"guardbandPct":0.01}}`))
	f.Add([]byte(`{"netlist":"INPUT(a)\nINPUT(b)\nOUTPUT(n0)\nn0 = NAND(a, b)\n","dies":4,"seed":9}`))
	f.Add([]byte(`{"benchmarks":["c1355"],"betas":[0.05],"ilpGateLimit":1}`))
	f.Add([]byte(`{"benchmark":"c1355"} {"trailing":1}`))
	f.Add([]byte(`{"benchmrk":"unknown field"}`))
	f.Add([]byte(`[1,2,3]`))
	f.Add([]byte(`{"netlist":"INPUT(a)\ny = ZAP(a)\nOUTPUT(y)"}`))
	f.Add([]byte{0xff, 0xfe, 0x00})

	lib := cell.Default()
	f.Fuzz(func(t *testing.T, data []byte) {
		tryNetlist := func(text string, forceRows int) {
			if text == "" || len(text) > 1<<16 {
				return
			}
			d, err := netlist.ParseBench(strings.NewReader(text), "fuzz", lib)
			if err != nil {
				return
			}
			if key := DesignKey(d, forceRows); len(key) != 64 {
				t.Fatalf("bad key %q", key)
			}
		}

		var tune TuneRequest
		if e := decodeJSON(bytes.NewReader(data), &tune); e == nil {
			if e := tune.validate(); e == nil {
				tryNetlist(tune.Netlist, tune.ForceRows)
			}
		}
		var yield YieldRequest
		if e := decodeJSON(bytes.NewReader(data), &yield); e == nil {
			if e := yield.validate(1_000_000); e == nil {
				tryNetlist(yield.Netlist, yield.ForceRows)
			}
		}
		var t1 Table1Request
		if e := decodeJSON(bytes.NewReader(data), &t1); e == nil {
			_ = t1.validate()
		}
	})
}

// fuzzDesign deterministically grows a small design from a byte script so
// the fuzzer explores the space of structurally distinct netlists. Returns
// nil when the script is too short to make a design.
func fuzzDesign(name string, script []byte) *netlist.Design {
	if len(script) == 0 {
		return nil
	}
	b := netlist.NewBuilder(name, cell.Default())
	nPI := 1 + int(script[0])%3
	var sigs []netlist.Signal
	for i := 0; i < nPI; i++ {
		sigs = append(sigs, b.PI(fmt.Sprintf("i%d", i)))
	}
	maxGates := 24
	for _, op := range script[1:] {
		if b.NumGates() >= maxGates {
			break
		}
		a := sigs[int(op)%len(sigs)]
		c := sigs[int(op>>3)%len(sigs)]
		var s netlist.Signal
		switch op % 5 {
		case 0:
			s = b.Nand(a, c)
		case 1:
			s = b.Nor(a, c)
		case 2:
			s = b.Not(a)
		case 3:
			s = b.And(a, c)
		default:
			s = b.Or(a, c)
		}
		sigs = append(sigs, s)
	}
	b.Output("o", sigs[len(sigs)-1])
	d, err := b.Build()
	if err != nil {
		return nil
	}
	return d
}

// sameDesign compares exactly the fields DesignKey covers.
func sameDesign(a, b *netlist.Design) bool {
	if a.Name != b.Name || len(a.PINames) != len(b.PINames) ||
		len(a.Gates) != len(b.Gates) || len(a.POs) != len(b.POs) {
		return false
	}
	for i := range a.PINames {
		if a.PINames[i] != b.PINames[i] {
			return false
		}
	}
	for i := range a.Gates {
		ga, gb := &a.Gates[i], &b.Gates[i]
		if ga.Cell.Name != gb.Cell.Name || len(ga.Ins) != len(gb.Ins) {
			return false
		}
		for k := range ga.Ins {
			if ga.Ins[k] != gb.Ins[k] {
				return false
			}
		}
	}
	for i := range a.POs {
		if a.POs[i] != b.POs[i] {
			return false
		}
	}
	return true
}

// FuzzDesignKey pins the cache key's injectivity on the explored corpus:
// two designs must collide exactly when they are structurally identical
// and share a row override — a sloppy canonical encoding (missing length
// prefixes, dropped fields) shows up as distinct netlists mapping onto one
// cache entry, which in production would silently serve design A's timing
// for design B.
func FuzzDesignKey(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5}, []byte{1, 2, 3, 4, 5}, uint8(0), uint8(0))
	f.Add([]byte{1, 2, 3, 4, 5}, []byte{1, 2, 3, 4, 6}, uint8(0), uint8(0))
	f.Add([]byte{9, 200, 13, 77}, []byte{9, 200, 13}, uint8(2), uint8(2))
	f.Add([]byte{0, 0, 0, 0}, []byte{0, 0, 0, 0}, uint8(0), uint8(3))

	f.Fuzz(func(t *testing.T, s1, s2 []byte, rows1, rows2 uint8) {
		d1 := fuzzDesign("d", s1)
		d2 := fuzzDesign("d", s2)
		if d1 == nil || d2 == nil {
			t.Skip()
		}
		k1 := DesignKey(d1, int(rows1))
		k2 := DesignKey(d2, int(rows2))
		want := sameDesign(d1, d2) && rows1 == rows2
		if got := k1 == k2; got != want {
			t.Fatalf("key collision contract broken: same=%v rows %d/%d but keys equal=%v\nd1: %v gates\nd2: %v gates",
				sameDesign(d1, d2), rows1, rows2, got, len(d1.Gates), len(d2.Gates))
		}
		// Determinism: hashing twice must agree.
		if k1 != DesignKey(d1, int(rows1)) {
			t.Fatal("DesignKey not deterministic")
		}
	})
}
