package serve

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"

	"repro"
	"repro/internal/core"
	"repro/internal/ilp"
	"repro/internal/tech"
	"repro/internal/variation"
)

// This file defines the wire types of the fbbd JSON API and their
// validation. Responses carry only deterministic fields (no wall-clock
// runtimes), so the same config always marshals to the same bytes — the
// property the differential tests pin against the in-process drivers.

// DesignRef selects the design a request operates on: a built-in Table 1
// benchmark by name, or an uploaded ISCAS .bench netlist. Exactly one of
// Benchmark/Netlist must be set. Structurally identical netlists with the
// same design name hash to the same prefix-cache key regardless of how
// they arrived, so repeated uploads of one design share one cached
// placement (the name is part of the key — it is reported back in
// summaries — so renaming an upload makes a distinct entry).
type DesignRef struct {
	// Benchmark names a built-in Table 1 design.
	Benchmark string `json:"benchmark,omitempty"`
	// Netlist is an ISCAS .bench netlist to place and tune.
	Netlist string `json:"netlist,omitempty"`
	// Name labels an uploaded netlist (default "custom").
	Name string `json:"name,omitempty"`
	// ForceRows overrides the placer's automatic row count (0 = auto).
	ForceRows int `json:"forceRows,omitempty"`
}

// TuneRequest is the body of POST /v1/tune. Without Die it runs the
// design-time flow (place, time, allocate for Beta) and returns a
// repro.Summary; with Die it samples that die from the variation model and
// runs the paper's post-silicon tuning loop on it.
type TuneRequest struct {
	DesignRef
	// Beta is the slowdown coefficient to compensate (default 0.05);
	// ignored in die mode, where the sensed slowdown drives the loop.
	Beta float64 `json:"beta,omitempty"`
	// MaxClusters is C (default 3); MaxBiasPairs caps routed pairs
	// (default 2).
	MaxClusters  int `json:"maxClusters,omitempty"`
	MaxBiasPairs int `json:"maxBiasPairs,omitempty"`
	// Solver names the allocation engine (default "heuristic").
	Solver string `json:"solver,omitempty"`
	// Die switches to post-silicon die tuning.
	Die *DieRequest `json:"die,omitempty"`
}

// DieRequest configures post-silicon tuning of one sampled die.
type DieRequest struct {
	// Seed samples the die from the variation model (used verbatim; the
	// /v1/yield stream mixes per-die seeds with variation.DieSeed).
	Seed int64 `json:"seed"`
	// GuardbandPct is added to the sensed slowdown (default 0.005).
	GuardbandPct float64 `json:"guardbandPct,omitempty"`
	// MaxIters bounds the escalate-and-retry loop (default 5).
	MaxIters int `json:"maxIters,omitempty"`
}

// TuneResponse is the body of a successful /v1/tune.
type TuneResponse struct {
	// Summary is set in flow mode (no die requested).
	Summary *repro.Summary `json:"summary,omitempty"`
	// ILP carries the branch-and-bound diagnostics of a flow-mode tune
	// whose solver ran the exact engine ("ilp" or "race"). The solves run
	// under node budgets, so every field is deterministic and safe to
	// include in the byte-reproducible response.
	ILP *ILPDiag `json:"ilp,omitempty"`
	// Die is set in die mode.
	Die *DieResult `json:"die,omitempty"`
}

// ILPDiag is the wire form of the exact solver's ilp.Result diagnostics.
type ILPDiag struct {
	// Status is the branch-and-bound outcome ("optimal",
	// "feasible(budget)", ...); Proven mirrors status == "optimal".
	Status string `json:"status"`
	Proven bool   `json:"proven"`
	// Nodes counts explored branch-and-bound nodes, StrongLPs the child
	// relaxations solved during strong branching.
	Nodes     int `json:"nodes"`
	StrongLPs int `json:"strongLPs,omitempty"`
	// GapPct is the relative optimality gap of a budget-truncated solve
	// (0 when proven).
	GapPct float64 `json:"gapPct"`
	// Branching names the rule that ran; Presolve* count the reductions.
	Branching           string `json:"branching,omitempty"`
	PresolveFixedVars   int    `json:"presolveFixedVars,omitempty"`
	PresolveDroppedRows int    `json:"presolveDroppedRows,omitempty"`
	PresolveTightened   int    `json:"presolveTightened,omitempty"`
	// RaceWinner names the winning portfolio member of a "race" solve.
	RaceWinner string `json:"raceWinner,omitempty"`
}

// ilpDiag digests a Result's exact-solve diagnostics (nil when none ran).
func ilpDiag(res *repro.Result) *ILPDiag {
	ir := res.ILPResult
	if ir == nil {
		return nil
	}
	return &ILPDiag{
		Status:              ir.Status.String(),
		Proven:              ir.Status == ilp.OptimalProven,
		Nodes:               ir.Nodes,
		StrongLPs:           ir.StrongLPs,
		GapPct:              ir.Gap() * 100,
		Branching:           ir.Branching,
		PresolveFixedVars:   ir.PresolveFixedVars,
		PresolveDroppedRows: ir.PresolveDroppedRows,
		PresolveTightened:   ir.PresolveTightened,
		RaceWinner:          res.RaceWinner,
	}
}

// YieldRequest is the body of POST /v1/yield: a Monte-Carlo yield study
// streamed as NDJSON — one DieResult line per die in die order, then a
// single YieldFooter line with the aggregate statistics.
type YieldRequest struct {
	DesignRef
	// Dies is the Monte-Carlo sample size.
	Dies int `json:"dies"`
	// Seed seeds the study; die i is sampled with DieSeed(seed, i).
	Seed int64 `json:"seed,omitempty"`
	// MaxClusters / MaxBiasPairs / Solver / GuardbandPct / MaxIters
	// configure each die's tuning as in TuneRequest.
	MaxClusters  int     `json:"maxClusters,omitempty"`
	MaxBiasPairs int     `json:"maxBiasPairs,omitempty"`
	Solver       string  `json:"solver,omitempty"`
	GuardbandPct float64 `json:"guardbandPct,omitempty"`
	MaxIters     int     `json:"maxIters,omitempty"`
	// Workers bounds the per-request die-tuning parallelism (0 = one per
	// CPU, 1 = sequential). The aggregate statistics are identical at any
	// setting.
	Workers int `json:"workers,omitempty"`
	// TargetCI opts into adaptive termination: when positive, the study
	// stops once the 95% Wilson interval half-width on the recovered-yield
	// fraction reaches it (a fraction; 0.01 = ±1 yield point), and the
	// footer's dies field reports how many dies actually ran. Dies then
	// acts as the sample-size cap. Default 0: exactly Dies dies run.
	TargetCI float64 `json:"targetCI,omitempty"`
	// Checkpoint, when positive, interleaves a YieldCheckpoint line into
	// the stream after every Checkpoint-th die (at absolute die counts
	// divisible by it, never at the very end). The line carries the raw
	// accumulator state a later request can resume from. Default 0: no
	// checkpoint lines — the stream bytes are identical to earlier
	// protocol versions.
	Checkpoint int `json:"checkpoint,omitempty"`
	// Resume restarts a broken stream: the server begins at die
	// Resume.Ckpt, folding new dies into Resume.Acc. Because per-die seeds
	// are absolute (variation.DieSeed) and the accumulator round-trips
	// float64s exactly, the emitted suffix — remaining die lines,
	// remaining checkpoints, footer — is byte-identical to the tail of an
	// unbroken run with the same parameters.
	Resume *YieldCheckpoint `json:"resume,omitempty"`
}

// YieldCheckpoint is both a mid-stream NDJSON checkpoint line and the resume
// token of a later request: the accumulator state covering dies [0, Ckpt).
// Clients discriminate it from die lines by its "ckpt" marker key, exactly
// as the footer is discriminated by "stats".
type YieldCheckpoint struct {
	// Ckpt is the number of dies covered (== Acc.Dies); the resumed stream
	// starts at this die index.
	Ckpt int `json:"ckpt"`
	// Acc is the raw accumulator state.
	Acc variation.YieldAccum `json:"acc"`
}

// DieResult is one die's tuning outcome: a /v1/tune die-mode response body
// member and one NDJSON line of a /v1/yield stream.
type DieResult struct {
	// Die is the die index within a yield stream (0 for one-shot tunes).
	Die int `json:"die"`
	// Seed is the variation-model seed that sampled this die.
	Seed int64 `json:"seed"`
	// BetaActual is the die's true slowdown, BetaSensed the sensor's view.
	BetaActual float64 `json:"betaActual"`
	BetaSensed float64 `json:"betaSensed"`
	// Met reports whether the tuned die meets nominal timing.
	Met bool `json:"met"`
	// Reason explains a failed tuning.
	Reason string `json:"reason,omitempty"`
	// Iters counts allocation attempts.
	Iters         int     `json:"iters"`
	DcritBeforePS float64 `json:"dcritBeforePS"`
	DcritAfterPS  float64 `json:"dcritAfterPS"`
	LeakBeforeNW  float64 `json:"leakBeforeNW"`
	LeakAfterNW   float64 `json:"leakAfterNW"`
	// Solution is the applied clustering (absent when the die needed no
	// bias or no allocation succeeded).
	Solution *SolutionJSON `json:"solution,omitempty"`
}

// SolutionJSON is the wire form of a core.Solution.
type SolutionJSON struct {
	Method      string    `json:"method"`
	Clusters    int       `json:"clusters"`
	TotalLeakNW float64   `json:"totalLeakNW"`
	ExtraLeakNW float64   `json:"extraLeakNW"`
	VbsLevels   []float64 `json:"vbsLevels"`
	Assign      []int     `json:"assign"`
}

// YieldFooter is the terminal NDJSON line of a /v1/yield stream.
type YieldFooter struct {
	Stats *YieldStatsJSON `json:"stats"`
}

// YieldStatsJSON is the wire form of variation.YieldStats.
type YieldStatsJSON struct {
	Dies                 int     `json:"dies"`
	MetBefore            int     `json:"metBefore"`
	MetAfter             int     `json:"metAfter"`
	YieldBeforePct       float64 `json:"yieldBeforePct"`
	YieldAfterPct        float64 `json:"yieldAfterPct"`
	MeanBetaPct          float64 `json:"meanBetaPct"`
	WorstBetaPct         float64 `json:"worstBetaPct"`
	MeanLeakBeforeNW     float64 `json:"meanLeakBeforeNW"`
	MeanLeakAfterNW      float64 `json:"meanLeakAfterNW"`
	MeanLeakTunedOnlyNW  float64 `json:"meanLeakTunedOnlyNW"`
	TunedDies            int     `json:"tunedDies"`
	FailedCompensations  int     `json:"failedCompensations"`
	MeanTuneIters        float64 `json:"meanTuneIters"`
	MeanClustersPerTuned float64 `json:"meanClustersPerTuned"`
}

// Table1Request is the body of POST /v1/table1. Cells run sequentially
// within the request (cross-request parallelism comes from the worker
// pool), and the exact solves run under node budgets, so every column is
// byte-reproducible unless ilpTimeLimitMS opts back into the wall clock.
type Table1Request struct {
	// Benchmarks to run (default: all nine in paper order).
	Benchmarks []string `json:"benchmarks,omitempty"`
	// Betas to evaluate (default 5% and 10%).
	Betas []float64 `json:"betas,omitempty"`
	// ILPNodeLimit bounds each exact solve's branch-and-bound nodes
	// (default 50000); results are deterministic under it.
	ILPNodeLimit int `json:"ilpNodeLimit,omitempty"`
	// ILPTimeLimitMS additionally interrupts each exact solve on wall
	// clock (0 = none). Truncated cells then vary run to run.
	ILPTimeLimitMS int `json:"ilpTimeLimitMS,omitempty"`
	// ILPGateLimit skips the ILP on larger designs (default 5000; use 1
	// to skip it everywhere).
	ILPGateLimit int `json:"ilpGateLimit,omitempty"`
	// Solver names the engine behind the non-ILP columns.
	Solver string `json:"solver,omitempty"`
}

// Table1Response is the body of a successful /v1/table1.
type Table1Response struct {
	Rows []repro.Table1Row `json:"rows"`
}

// StatsResponse is the body of GET /v1/stats.
type StatsResponse struct {
	Cache CacheStats `json:"cache"`
	// PrefixBuilds is the process-wide flow.Prefix construction count.
	PrefixBuilds int64 `json:"prefixBuilds"`
	// InFlight is the number of admitted requests currently executing.
	InFlight int64 `json:"inFlight"`
	// Shed counts requests rejected with 503 since start.
	Shed int64 `json:"shed"`
	// Workers and Queue echo the configured pool bounds.
	Workers int `json:"workers"`
	Queue   int `json:"queue"`
}

// ErrorResponse is the body of every non-2xx response.
type ErrorResponse struct {
	Error string `json:"error"`
}

// apiError carries an HTTP status (and optional Retry-After) with a message.
type apiError struct {
	status     int
	msg        string
	retryAfter int
}

func (e *apiError) Error() string { return e.msg }

func badRequest(format string, args ...any) *apiError {
	return &apiError{status: http.StatusBadRequest, msg: fmt.Sprintf(format, args...)}
}

// errSaturated / errDraining are the default shed responses; a Server with a
// configured RetryAfterSec builds its own via shedError.
var (
	errSaturated = &apiError{status: http.StatusServiceUnavailable, msg: "server saturated", retryAfter: 1}
	errDraining  = &apiError{status: http.StatusServiceUnavailable, msg: "server draining", retryAfter: 1}
)

// maxRequestBytes bounds request bodies: netlist uploads dominate, and the
// largest built-in design serializes well under this.
const maxRequestBytes = 16 << 20

// decodeJSON strictly decodes one JSON object from the request body.
// Unknown fields are rejected so that a typoed option fails loudly instead
// of silently running the defaults.
func decodeJSON(r io.Reader, v any) *apiError {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return badRequest("bad request body: %v", err)
	}
	if dec.More() {
		return badRequest("bad request body: trailing data after JSON object")
	}
	return nil
}

func (d *DesignRef) validate() *apiError {
	if d.Benchmark == "" && d.Netlist == "" {
		return badRequest("no design: set benchmark or netlist")
	}
	if d.Benchmark != "" && d.Netlist != "" {
		return badRequest("ambiguous design: set benchmark or netlist, not both")
	}
	if d.ForceRows < 0 || d.ForceRows > 4096 {
		return badRequest("forceRows %d out of range [0, 4096]", d.ForceRows)
	}
	return nil
}

// validateAlloc checks the allocation knobs shared by tune and yield.
func validateAlloc(beta float64, maxClusters, maxBiasPairs int) *apiError {
	if beta < 0 || beta > 1 {
		return badRequest("beta %g out of range [0, 1]", beta)
	}
	if maxClusters < 0 || maxClusters > 32 {
		return badRequest("maxClusters %d out of range [0, 32]", maxClusters)
	}
	if maxBiasPairs < 0 || maxBiasPairs > 32 {
		return badRequest("maxBiasPairs %d out of range [0, 32]", maxBiasPairs)
	}
	return nil
}

func (q *TuneRequest) validate() *apiError {
	if err := q.DesignRef.validate(); err != nil {
		return err
	}
	if err := validateAlloc(q.Beta, q.MaxClusters, q.MaxBiasPairs); err != nil {
		return err
	}
	if q.Die != nil {
		if err := q.Die.validate(); err != nil {
			return err
		}
	}
	return nil
}

func (d *DieRequest) validate() *apiError {
	if d.GuardbandPct < 0 || d.GuardbandPct > 0.5 {
		return badRequest("die.guardbandPct %g out of range [0, 0.5]", d.GuardbandPct)
	}
	if d.MaxIters < 0 || d.MaxIters > 100 {
		return badRequest("die.maxIters %d out of range [0, 100]", d.MaxIters)
	}
	return nil
}

func (q *YieldRequest) validate(maxDies int) *apiError {
	if err := q.DesignRef.validate(); err != nil {
		return err
	}
	if q.Dies < 1 || q.Dies > maxDies {
		return badRequest("dies %d out of range [1, %d]", q.Dies, maxDies)
	}
	if err := validateAlloc(0, q.MaxClusters, q.MaxBiasPairs); err != nil {
		return err
	}
	if q.GuardbandPct < 0 || q.GuardbandPct > 0.5 {
		return badRequest("guardbandPct %g out of range [0, 0.5]", q.GuardbandPct)
	}
	if q.MaxIters < 0 || q.MaxIters > 100 {
		return badRequest("maxIters %d out of range [0, 100]", q.MaxIters)
	}
	if q.Workers < 0 || q.Workers > 256 {
		return badRequest("workers %d out of range [0, 256]", q.Workers)
	}
	if q.TargetCI < 0 || q.TargetCI > 0.5 {
		return badRequest("targetCI %g out of range [0, 0.5]", q.TargetCI)
	}
	if q.Checkpoint < 0 {
		return badRequest("checkpoint %d must be non-negative", q.Checkpoint)
	}
	if q.Resume != nil {
		if q.Resume.Ckpt < 1 || q.Resume.Ckpt > q.Dies {
			return badRequest("resume.ckpt %d out of range [1, %d]", q.Resume.Ckpt, q.Dies)
		}
		if q.Resume.Acc.Dies != q.Resume.Ckpt {
			return badRequest("resume.acc covers %d dies, resume.ckpt is %d", q.Resume.Acc.Dies, q.Resume.Ckpt)
		}
	}
	return nil
}

func (q *Table1Request) validate() *apiError {
	if len(q.Benchmarks) > 64 {
		return badRequest("too many benchmarks (%d > 64)", len(q.Benchmarks))
	}
	if len(q.Betas) > 16 {
		return badRequest("too many betas (%d > 16)", len(q.Betas))
	}
	for _, b := range q.Betas {
		if b <= 0 || b > 1 {
			return badRequest("beta %g out of range (0, 1]", b)
		}
	}
	if q.ILPNodeLimit < 0 || q.ILPNodeLimit > 10_000_000 {
		return badRequest("ilpNodeLimit %d out of range [0, 10000000]", q.ILPNodeLimit)
	}
	if q.ILPTimeLimitMS < 0 || q.ILPTimeLimitMS > 600_000 {
		return badRequest("ilpTimeLimitMS %d out of range [0, 600000]", q.ILPTimeLimitMS)
	}
	if q.ILPGateLimit < 0 {
		return badRequest("ilpGateLimit %d out of range [0, ∞)", q.ILPGateLimit)
	}
	return nil
}

// solutionJSON converts an applied solution, deriving the cluster voltages
// from the bias grid (ascending, mirroring core.Problem.VbsOf).
func solutionJSON(sol *core.Solution, grid tech.BiasGrid) *SolutionJSON {
	if sol == nil {
		return nil
	}
	maxLevel := 0
	for _, j := range sol.Assign {
		if j > maxLevel {
			maxLevel = j
		}
	}
	seen := make([]bool, maxLevel+1)
	for _, j := range sol.Assign {
		seen[j] = true
	}
	var vbs []float64
	for j, ok := range seen {
		if ok {
			vbs = append(vbs, grid.Voltage(j))
		}
	}
	return &SolutionJSON{
		Method:      sol.Method,
		Clusters:    sol.Clusters,
		TotalLeakNW: sol.TotalLeakNW,
		ExtraLeakNW: sol.ExtraLeakNW,
		VbsLevels:   vbs,
		Assign:      sol.Assign,
	}
}

// dieResult converts one tuning outcome to its wire form.
func dieResult(die int, seed int64, r *variation.TuneResult, grid tech.BiasGrid) *DieResult {
	return &DieResult{
		Die:           die,
		Seed:          seed,
		BetaActual:    r.BetaActual,
		BetaSensed:    r.BetaSensed,
		Met:           r.Met,
		Reason:        r.Reason,
		Iters:         r.Iters,
		DcritBeforePS: r.DcritBeforePS,
		DcritAfterPS:  r.DcritAfterPS,
		LeakBeforeNW:  r.LeakBeforeNW,
		LeakAfterNW:   r.LeakAfterNW,
		Solution:      solutionJSON(r.Solution, grid),
	}
}

// yieldStatsJSON converts the aggregate statistics to their wire form.
func yieldStatsJSON(st *variation.YieldStats) *YieldStatsJSON {
	before, after := st.YieldPct()
	return &YieldStatsJSON{
		Dies:                 st.Dies,
		MetBefore:            st.MetBefore,
		MetAfter:             st.MetAfter,
		YieldBeforePct:       before,
		YieldAfterPct:        after,
		MeanBetaPct:          st.MeanBetaPct,
		WorstBetaPct:         st.WorstBetaPct,
		MeanLeakBeforeNW:     st.MeanLeakBeforeNW,
		MeanLeakAfterNW:      st.MeanLeakAfterNW,
		MeanLeakTunedOnlyNW:  st.MeanLeakTunedOnlyNW,
		TunedDies:            st.TunedDies,
		FailedCompensations:  st.FailedCompensations,
		MeanTuneIters:        st.MeanTuneIters,
		MeanClustersPerTuned: st.MeanClustersPerTuned,
	}
}

// writeJSON writes one JSON value with a trailing newline (the exact bytes a
// json.Encoder produces; the differential tests reproduce them the same way).
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v)
}

// writeError writes an apiError as a JSON error body.
func writeError(w http.ResponseWriter, e *apiError) {
	if e.retryAfter > 0 {
		w.Header().Set("Retry-After", strconv.Itoa(e.retryAfter))
	}
	writeJSON(w, e.status, ErrorResponse{Error: e.msg})
}
