package core

import (
	"bytes"
	"errors"
	"math"
	"sort"
	"strconv"

	"repro/internal/cell"
	"repro/internal/ilp"
	"repro/internal/place"
	"repro/internal/power"
	"repro/internal/sta"
	"repro/internal/tech"
)

// Allocator is the reusable form of BuildProblem for batched allocation:
// everything a (beta, cluster-cap) pair cannot change — the L_ij leakage
// table, each path's cells grouped by placement row in CSR form, and the
// per-gate bias delay factors — is computed once at construction, so At only
// re-evaluates the beta-dependent requirements, delay-delta tables and
// signature merging into reused buffers. Tuning loops (variation.TuneOn,
// YieldStudy) and experiment grids (Table 1, cluster sweeps) construct
// thousands of Problems over one fixed (placement, nominal timing) pair;
// with BuildProblem each pays the full grouping, table and map work, with an
// Allocator each is a linear re-materialization with ~zero allocations.
//
// An Allocator is immutable after construction and therefore safe for
// concurrent use: all per-call state lives in the caller-provided Instance
// buffer. Callers that run concurrently share one Allocator and keep one
// Instance per worker (exactly how sta.Analyzer pairs with per-worker
// Timing buffers).
//
// The placement and timing must not be mutated while the Allocator is in
// use: like Problem, it reads tm's paths and gate delays at every call, so
// tm must be a stable nominal timing (e.g. flow.Prefix.Timing), never a
// Retimer's reused buffer.
type Allocator struct {
	pl   *place.Placement
	tm   *sta.Timing
	grid tech.BiasGrid
	n, p int

	// rowLeak is the beta-independent L_ij table, shared (read-only) with
	// every materialized Problem.
	rowLeak [][]float64

	// Per-path row grouping, beta-independent, in CSR form: path pi's
	// groups are indices pathStart[pi]..pathStart[pi+1] (one per distinct
	// row, ascending); group g covers row groupRow[g] and its gates, in
	// path order, are pathGates[groupGateStart[g]:groupGateStart[g+1]].
	pathStart      []int32
	groupRow       []int32
	groupGateStart []int32
	pathGates      []int32

	// omdf[g*p+j] = 1 - DelayFactor[j] of gate g's cell: the fractional
	// delay reduction bias level j buys on gate g.
	omdf []float64

	// maxContribs bounds the RowContrib arena any At can need: the row
	// groups of every class exemplar.
	maxContribs int

	// groups partitions the paths into structural-duplicate classes: two
	// paths with the same row list and, per row, the same sequence of
	// (gate delay, delay factors) produce bit-identical delta vectors at
	// every beta, so their constraints merge at every beta. At processes
	// one exemplar per class, which is where the batched path beats
	// BuildProblem: the duplicate delta accumulations and — decisively —
	// the duplicate "%.6f" signature formatting disappear.
	groups []allocGroup
}

// allocGroup is one structural-duplicate class of paths.
type allocGroup struct {
	// exemplar is the path whose CSR grouping stands in for the class
	// (all members produce bit-identical deltas).
	exemplar int32
	// members lists the class's paths, ascending.
	members []int32
	// candidate marks classes whose beta-0 delta vector lies within
	// decimal-formatting distance of another class over the same rows:
	// only these can ever merge across classes under BuildProblem's
	// "%.6f" signature, so only these pay for key formatting in At.
	candidate bool
}

// NewAllocator precomputes the beta-independent part of clustering-problem
// construction for a placed, timed design.
func NewAllocator(pl *place.Placement, tm *sta.Timing) (*Allocator, error) {
	if pl == nil || tm == nil {
		return nil, errors.New("core: NewAllocator needs a placement and its timing")
	}
	if tm.Pl != pl {
		return nil, errors.New("core: timing was computed for a different placement")
	}
	if tm.Light {
		// A Dcrit-only re-time carries no extracted paths; building on it
		// would silently produce a constraint-free problem.
		return nil, errors.New("core: timing is a Dcrit-only light re-time; the allocator needs the full path set")
	}
	a := &Allocator{
		pl:      pl,
		tm:      tm,
		grid:    pl.Lib.Grid,
		n:       pl.NumRows,
		p:       pl.Lib.Grid.NumLevels(),
		rowLeak: power.RowLeakTable(pl),
	}

	nGates := len(pl.Design.Gates)
	a.omdf = make([]float64, nGates*a.p)
	for g := 0; g < nGates; g++ {
		df := pl.Design.Gates[g].Cell.DelayFactor
		for j := 0; j < a.p; j++ {
			a.omdf[g*a.p+j] = 1 - df[j]
		}
	}

	// Group every path's gates by row, rows ascending, gates in path order
	// within each row — the exact order BuildProblem's map-and-sort pass
	// visits them, so the per-level delta accumulation is bit-identical.
	rowCount := make([]int32, a.n)
	rowOffset := make([]int32, a.n)
	rowsBuf := make([]int, 0, 64)
	a.pathStart = make([]int32, len(tm.Paths)+1)
	for pi := range tm.Paths {
		path := &tm.Paths[pi]
		rowsBuf = rowsBuf[:0]
		for _, g := range path.Gates {
			r := pl.RowOf[g]
			if rowCount[r] == 0 {
				rowsBuf = append(rowsBuf, r)
			}
			rowCount[r]++
		}
		sortInts(rowsBuf)
		base := int32(len(a.pathGates))
		off := int32(0)
		for _, r := range rowsBuf {
			a.groupRow = append(a.groupRow, int32(r))
			a.groupGateStart = append(a.groupGateStart, base+off)
			rowOffset[r] = base + off
			off += rowCount[r]
			rowCount[r] = 0
		}
		a.pathGates = append(a.pathGates, make([]int32, off)...)
		for _, g := range path.Gates {
			r := pl.RowOf[g]
			a.pathGates[rowOffset[r]] = int32(g)
			rowOffset[r]++
		}
		a.pathStart[pi+1] = int32(len(a.groupRow))
	}
	a.groupGateStart = append(a.groupGateStart, int32(len(a.pathGates)))
	a.buildGroups()
	a.markMergeCandidates()
	return a, nil
}

// buildGroups partitions the paths into structural-duplicate classes. Gates
// are first classed by (delay bits, cell): two gates of the same class
// contribute bit-identical terms to a delta vector at any beta, so paths
// with identical per-row class sequences are one group.
func (a *Allocator) buildGroups() {
	nGates := len(a.pl.Design.Gates)
	cellID := map[*cell.Cell]int32{}
	type gateKey struct {
		delay uint64
		cell  int32
	}
	classOf := map[gateKey]int32{}
	gateClass := make([]int32, nGates)
	for g := 0; g < nGates; g++ {
		c := a.pl.Design.Gates[g].Cell
		ci, ok := cellID[c]
		if !ok {
			ci = int32(len(cellID))
			cellID[c] = ci
		}
		k := gateKey{delay: math.Float64bits(a.tm.GateDelayPS[g]), cell: ci}
		id, ok := classOf[k]
		if !ok {
			id = int32(len(classOf))
			classOf[k] = id
		}
		gateClass[g] = id
	}

	buckets := map[uint64][]int32{} // path-structure hash -> group indices
	for pi := range a.tm.Paths {
		h := uint64(14695981039346656037)
		mix := func(v uint64) {
			h ^= v
			h *= 1099511628211
		}
		for gi := a.pathStart[pi]; gi < a.pathStart[pi+1]; gi++ {
			mix(uint64(a.groupRow[gi]) | 1<<40)
			for _, g := range a.pathGates[a.groupGateStart[gi]:a.groupGateStart[gi+1]] {
				mix(uint64(gateClass[g]))
			}
		}
		placed := false
		for _, gi := range buckets[h] {
			if a.samePathStructure(int32(pi), a.groups[gi].exemplar, gateClass) {
				a.groups[gi].members = append(a.groups[gi].members, int32(pi))
				placed = true
				break
			}
		}
		if !placed {
			buckets[h] = append(buckets[h], int32(len(a.groups)))
			a.groups = append(a.groups, allocGroup{
				exemplar: int32(pi),
				members:  []int32{int32(pi)},
			})
			a.maxContribs += int(a.pathStart[pi+1] - a.pathStart[pi])
		}
	}
}

// samePathStructure reports whether two paths have identical row lists and,
// per row, identical gate-class sequences.
func (a *Allocator) samePathStructure(pa, pb int32, gateClass []int32) bool {
	sa, ea := a.pathStart[pa], a.pathStart[pa+1]
	sb, eb := a.pathStart[pb], a.pathStart[pb+1]
	if ea-sa != eb-sb {
		return false
	}
	for i := int32(0); i < ea-sa; i++ {
		ga, gb := sa+i, sb+i
		if a.groupRow[ga] != a.groupRow[gb] {
			return false
		}
		la := a.groupGateStart[ga+1] - a.groupGateStart[ga]
		if la != a.groupGateStart[gb+1]-a.groupGateStart[gb] {
			return false
		}
		for k := int32(0); k < la; k++ {
			if gateClass[a.pathGates[a.groupGateStart[ga]+k]] != gateClass[a.pathGates[a.groupGateStart[gb]+k]] {
				return false
			}
		}
	}
	return true
}

// mergeEpsPS bounds when two bit-different delta vectors could still format
// to the same "%.6f" signature at some beta. Two values share a rounded
// 6-decimal representation only when they differ by less than 1e-6 (plus
// ulps); the per-level delta difference between two classes scales as
// (1+beta) times their beta-0 difference (up to summation ulps, orders of
// magnitude below this threshold), so a beta-0 gap of 2e-6 on any level
// rules the merge out for every beta >= 0.
const mergeEpsPS = 2e-6

// markMergeCandidates computes each class's beta-0 delta vector and flags
// the classes that could ever format-merge with another class: same row
// list, every level's delta within mergeEpsPS. Everything else skips
// signature work in At entirely.
func (a *Allocator) markMergeCandidates() {
	nG := len(a.groups)
	if nG < 2 {
		return
	}
	// beta-0 delta vectors, one per class, over the class's rows.
	base := make([][]float64, nG)
	for gi := range a.groups {
		pi := a.groups[gi].exemplar
		rows := a.pathStart[pi+1] - a.pathStart[pi]
		bv := make([]float64, int(rows)*a.p)
		for r := int32(0); r < rows; r++ {
			gslot := a.pathStart[pi] + r
			dv := bv[int(r)*a.p : (int(r)+1)*a.p]
			for _, g := range a.pathGates[a.groupGateStart[gslot]:a.groupGateStart[gslot+1]] {
				d := a.tm.GateDelayPS[g]
				omdf := a.omdf[int(g)*a.p : (int(g)+1)*a.p]
				for j := 0; j < a.p; j++ {
					dv[j] += d * omdf[j]
				}
			}
		}
		base[gi] = bv
	}
	// Bucket by row list; only same-row-list classes can merge.
	rowBuckets := map[uint64][]int32{}
	for gi := range a.groups {
		pi := a.groups[gi].exemplar
		h := uint64(14695981039346656037)
		for _, r := range a.groupRow[a.pathStart[pi]:a.pathStart[pi+1]] {
			h ^= uint64(r)
			h *= 1099511628211
		}
		rowBuckets[h] = append(rowBuckets[h], int32(gi))
	}
	for _, gis := range rowBuckets {
		for x := 0; x < len(gis); x++ {
			for y := x + 1; y < len(gis); y++ {
				ga, gb := gis[x], gis[y]
				if a.groups[ga].candidate && a.groups[gb].candidate {
					continue
				}
				if !a.sameRowList(a.groups[ga].exemplar, a.groups[gb].exemplar) {
					continue
				}
				if deltaWithin(base[ga], base[gb], a.p) {
					a.groups[ga].candidate = true
					a.groups[gb].candidate = true
				}
			}
		}
	}
}

// sameRowList reports whether two paths touch exactly the same rows.
func (a *Allocator) sameRowList(pa, pb int32) bool {
	ra := a.groupRow[a.pathStart[pa]:a.pathStart[pa+1]]
	rb := a.groupRow[a.pathStart[pb]:a.pathStart[pb+1]]
	if len(ra) != len(rb) {
		return false
	}
	for i := range ra {
		if ra[i] != rb[i] {
			return false
		}
	}
	return true
}

// deltaWithin reports whether every formatted level (j >= 1, the signature's
// range) of two beta-0 delta vectors is within mergeEpsPS.
func deltaWithin(ba, bb []float64, p int) bool {
	for i := 0; i < len(ba); i += p {
		for j := 1; j < p; j++ {
			d := ba[i+j] - bb[i+j]
			if d < -mergeEpsPS || d > mergeEpsPS {
				return false
			}
		}
	}
	return true
}

// sortInts is an insertion sort for the small per-path row lists (a handful
// of rows; sort.Ints' interface indirection dominates at this size).
func sortInts(s []int) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// Placement returns the placement the Allocator was built for.
func (a *Allocator) Placement() *place.Placement { return a.pl }

// Timing returns the nominal timing the Allocator was built for.
func (a *Allocator) Timing() *sta.Timing { return a.tm }

// Instance is one materialized clustering problem over an Allocator's
// precomputed structure, plus the scratch every solver pass reuses.
//
// Buffer contract (mirroring sta.Timing under Analyzer.Run): everything an
// Instance exposes — Prob, its constraint tables, and any Solution returned
// by a solve on it — lives in the Instance's buffers and is invalidated by
// the next At/SolveAt/Solve call on the same Instance; Clone a Solution (or
// finish reading Prob) before re-materializing. An Instance must not be
// shared between concurrent solves, but the Allocator may be: keep one
// Instance per worker.
type Instance struct {
	// Prob is the materialized problem, fully interchangeable with a
	// BuildProblem result (same constraints, bit-exact).
	Prob *Problem

	// ILPResult reports the branch-and-bound outcome of the most recent
	// exact solve on this instance (nil before one runs).
	ILPResult *ilp.Result

	// RaceWinner names the portfolio member whose solution the most
	// recent RaceSolver solve returned ("" before one runs).
	RaceWinner string

	prob Problem

	constraints  []PathConstraint
	contribArena []RowContrib
	deltaArena   []float64
	involved     []bool
	rowConsStart []int32
	rowConsRefs  []rowConRef

	// Signature-merge scratch: an open-addressed chain over the key byte
	// arena replaces BuildProblem's map[string] so repeat materializations
	// allocate nothing.
	keyArena []byte
	keyOff   []int32
	keyLen   []int32
	buckets  []int32
	bnext    []int32

	viol     []violGroup
	violSort violSorter

	heur heurScratch
}

// violGroup is one violating structural class during materialization.
type violGroup struct {
	group   int32
	firstPi int32
	req     float64
	flipped bool
}

// violSorter orders violating classes by their registering path, matching
// BuildProblem's constraint order, without sort.Slice's closure allocation.
type violSorter struct{ v []violGroup }

func (s *violSorter) Len() int           { return len(s.v) }
func (s *violSorter) Less(i, j int) bool { return s.v[i].firstPi < s.v[j].firstPi }
func (s *violSorter) Swap(i, j int)      { s.v[i], s.v[j] = s.v[j], s.v[i] }

// At materializes the clustering instance for opts into buf (nil allocates a
// fresh Instance), replicating BuildProblem bit-for-bit: identical
// constraints, merge decisions, and requirement values.
func (a *Allocator) At(opts Options, buf *Instance) (*Instance, error) {
	if err := opts.normalize(); err != nil {
		return nil, err
	}
	inst := buf
	if inst == nil {
		inst = &Instance{}
	}
	inst.ILPResult = nil
	inst.RaceWinner = ""

	p := &inst.prob
	p.Pl, p.Tm, p.Grid = a.pl, a.tm, a.grid
	p.Beta = opts.Beta
	p.MaxClusters, p.MaxBiasPairs = opts.MaxClusters, opts.MaxBiasPairs
	p.N, p.P = a.n, a.p
	p.RowLeakNW = a.rowLeak
	p.RawViolations = 0

	cons := inst.constraints[:0]
	contribs := inst.contribArena
	if cap(contribs) < a.maxContribs {
		contribs = make([]RowContrib, 0, a.maxContribs)
	}
	contribs = contribs[:0]
	deltas := inst.deltaArena
	if cap(deltas) < a.maxContribs*a.p {
		deltas = make([]float64, 0, a.maxContribs*a.p)
	}
	deltas = deltas[:0]
	keys := inst.keyArena[:0]
	keyOff := inst.keyOff[:0]
	keyLen := inst.keyLen[:0]
	bnext := inst.bnext[:0]

	nb := 1
	for nb < 2*len(a.groups) {
		nb <<= 1
	}
	if cap(inst.buckets) < nb {
		inst.buckets = make([]int32, nb)
	}
	buckets := inst.buckets[:nb]
	for i := range buckets {
		buckets[i] = -1
	}

	onePlusBeta := 1 + opts.Beta
	dcrit := a.tm.DcritPS

	// Pass 1: find the violating classes, recording for each the member
	// that registers its constraint in BuildProblem's path order (the
	// first violating one) and the binding requirement (the largest one).
	// The class's PathIdx collapses to -1 exactly when a member after the
	// registering one strictly tightened the requirement — compared on
	// the computed requirement floats, exactly as BuildProblem's merge
	// does (two ulp-apart delays can round to equal requirements, and the
	// tie must then keep the first member's PathIdx).
	viol := inst.viol[:0]
	for gi := range a.groups {
		g := &a.groups[gi]
		firstPi := int32(-1)
		var firstReq, maxReq float64
		count := 0
		for _, m := range g.members {
			req := a.tm.Paths[m].DelayPS*onePlusBeta - dcrit
			if req <= feasTolPS {
				continue // meets timing even degraded; prune
			}
			count++
			if firstPi < 0 {
				firstPi = m
				firstReq = req
			}
			if req > maxReq {
				maxReq = req
			}
		}
		if count == 0 {
			continue
		}
		p.RawViolations += count
		viol = append(viol, violGroup{
			group:   int32(gi),
			firstPi: firstPi,
			req:     maxReq,
			flipped: maxReq > firstReq,
		})
	}
	inst.viol = viol
	inst.violSort.v = viol
	sort.Sort(&inst.violSort)

	// Pass 2: materialize one constraint per violating class in
	// registration order, format-merging only the candidate classes
	// (everything else is provably unique at any beta).
	for vi := range viol {
		vg := &viol[vi]
		g := &a.groups[vg.group]
		pi := int(g.exemplar)
		req := vg.req
		pathIdx := int(vg.firstPi)
		if vg.flipped {
			pathIdx = -1
		}
		cstart, dstart, kstart := len(contribs), len(deltas), len(keys)
		for gi := a.pathStart[pi]; gi < a.pathStart[pi+1]; gi++ {
			row := int(a.groupRow[gi])
			dpos := len(deltas)
			for j := 0; j < a.p; j++ {
				deltas = append(deltas, 0)
			}
			dv := deltas[dpos : dpos+a.p]
			for _, gg := range a.pathGates[a.groupGateStart[gi]:a.groupGateStart[gi+1]] {
				degraded := a.tm.GateDelayPS[gg] * onePlusBeta
				omdf := a.omdf[int(gg)*a.p : (int(gg)+1)*a.p]
				for j := 0; j < a.p; j++ {
					dv[j] += degraded * omdf[j]
				}
			}
			contribs = append(contribs, RowContrib{Row: row, DeltaPS: dv})
			if g.candidate {
				// The signature covers every level (BuildProblem's
				// "%d:" + "%.6f," format, byte for byte): constraints
				// may only merge when their whole coefficient vectors
				// agree.
				keys = strconv.AppendInt(keys, int64(row), 10)
				keys = append(keys, ':')
				for j := 1; j < a.p; j++ {
					keys = strconv.AppendFloat(keys, dv[j], 'f', 6, 64)
					keys = append(keys, ',')
				}
				keys = append(keys, ';')
			}
		}

		if g.candidate {
			key := keys[kstart:]
			h := uint64(14695981039346656037)
			for _, b := range key {
				h ^= uint64(b)
				h *= 1099511628211
			}
			slot := h & uint64(nb-1)
			dup := int32(-1)
			for j := buckets[slot]; j >= 0; j = bnext[j] {
				if bytes.Equal(key, keys[keyOff[j]:keyOff[j]+keyLen[j]]) {
					dup = j
					break
				}
			}
			if dup >= 0 {
				// Merge: only the tightest requirement binds.
				if req > cons[dup].ReqPS {
					cons[dup].ReqPS = req
					cons[dup].PathIdx = -1
				}
				contribs = contribs[:cstart]
				deltas = deltas[:dstart]
				keys = keys[:kstart]
				continue
			}
			bnext = append(bnext, buckets[slot])
			buckets[slot] = int32(len(cons))
			keyOff = append(keyOff, int32(kstart))
			keyLen = append(keyLen, int32(len(keys)-kstart))
		} else {
			// Placeholders keep the per-constraint key tables aligned;
			// non-candidates never enter a bucket chain.
			bnext = append(bnext, -1)
			keyOff = append(keyOff, 0)
			keyLen = append(keyLen, 0)
		}
		cons = append(cons, PathConstraint{
			ReqPS:   req,
			Rows:    contribs[cstart:len(contribs):len(contribs)],
			PathIdx: pathIdx,
		})
	}

	p.Constraints = cons
	inst.involved = growBools(inst.involved, a.n)
	for i := range inst.involved {
		inst.involved[i] = false
	}
	p.Involved = inst.involved
	p.rowConsStart, p.rowConsRefs = buildRowCons(a.n, cons, p.Involved,
		inst.rowConsStart, inst.rowConsRefs)

	inst.constraints = cons
	inst.contribArena = contribs
	inst.deltaArena = deltas
	inst.keyArena = keys
	inst.keyOff = keyOff
	inst.keyLen = keyLen
	inst.bnext = bnext
	inst.rowConsStart = p.rowConsStart
	inst.rowConsRefs = p.rowConsRefs
	inst.Prob = p
	return inst, nil
}

// SolveAt materializes the instance for opts into buf and solves it with
// solver (nil = the registered two-pass heuristic). It returns the solution
// and the instance actually used, so callers can thread the same buffer
// through repeated solves; the solution follows the Instance buffer
// contract (Clone to keep).
func (a *Allocator) SolveAt(opts Options, solver Solver, buf *Instance) (*Solution, *Instance, error) {
	inst, err := a.At(opts, buf)
	if err != nil {
		return nil, buf, err
	}
	sol, err := inst.Solve(solver)
	return sol, inst, err
}

// defaultSolver is the pre-boxed heuristic fallback (a fresh interface
// conversion per Solve call would allocate).
var defaultSolver Solver = HeuristicSolver{}

// Solve runs solver on the materialized instance (nil = the two-pass
// heuristic). The returned Solution may live in the Instance's scratch and
// is invalidated by the next solve or At on it; Clone it to keep it.
func (inst *Instance) Solve(solver Solver) (*Solution, error) {
	if solver == nil {
		solver = defaultSolver
	}
	return solver.Solve(inst)
}

// SingleBB returns the block-level single-voltage baseline on the
// instance's scratch (same buffer contract as Solve, but a separate slot:
// a SingleBB result and one later Solve result may coexist).
func (inst *Instance) SingleBB() (*Solution, error) {
	return inst.prob.singleBBScratch(&inst.heur)
}
