package core

import (
	"math"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/cell"
	"repro/internal/netlist"
	"repro/internal/place"
	"repro/internal/power"
	"repro/internal/sta"
	"repro/internal/tech"
)

// tinyProblem builds a random small circuit on a coarse 3-level grid and a
// handful of rows, so the full assignment space (levels^rows) is enumerable.
func tinyProblem(t *testing.T, rng *rand.Rand) *Problem {
	t.Helper()
	coarse, err := cell.NewLibrary(tech.Default45nm(), tech.BiasGrid{StepV: 0.25, MaxV: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	b := netlist.NewBuilder("tiny", coarse)
	nPI := 3 + rng.Intn(3)
	pool := make([]netlist.Signal, 0, 64)
	for i := 0; i < nPI; i++ {
		pool = append(pool, b.PI("p"+string(rune('0'+i))))
	}
	nG := 25 + rng.Intn(30)
	for i := 0; i < nG; i++ {
		x := pool[rng.Intn(len(pool))]
		y := pool[rng.Intn(len(pool))]
		var s netlist.Signal
		switch rng.Intn(4) {
		case 0:
			s = b.Nand(x, y)
		case 1:
			s = b.Nor(x, y)
		case 2:
			s = b.And(x, y)
		default:
			s = b.Not(x)
		}
		pool = append(pool, s)
	}
	for i := nPI; i < len(pool); i += 3 {
		b.Output("o"+string(rune('a'+i%26)), pool[i])
	}
	d, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	rows := 3 + rng.Intn(2)
	pl, err := place.Place(d, coarse, place.Options{ForceRows: rows})
	if err != nil {
		t.Fatal(err)
	}
	tm, err := sta.Analyze(pl, sta.Options{})
	if err != nil {
		t.Fatal(err)
	}
	beta := 0.03 + rng.Float64()*0.09
	c := 2 + rng.Intn(2)
	p, err := BuildProblem(pl, tm, Options{Beta: beta, MaxClusters: c, MaxBiasPairs: c})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// bruteForce enumerates every assignment and returns the minimum leakage
// overhead among timing-feasible ones within the cluster and pair caps.
func bruteForce(p *Problem) (float64, bool) {
	assign := make([]int, p.N)
	best := math.Inf(1)
	found := false
	var rec func(i int)
	rec = func(i int) {
		if i == p.N {
			if Clusters(assign) > p.MaxClusters || BiasPairs(assign) > p.MaxBiasPairs {
				return
			}
			if !p.CheckTiming(assign) {
				return
			}
			extra, err := power.AssignExtraLeakageNW(p.Pl, assign)
			if err != nil {
				return
			}
			if extra < best {
				best = extra
				found = true
			}
			return
		}
		for j := 0; j < p.P; j++ {
			assign[i] = j
			rec(i + 1)
		}
	}
	rec(0)
	return best, found
}

func TestAllocatorsAgainstExhaustiveEnumeration(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	tried, skipped := 0, 0
	for trial := 0; trial < 12; trial++ {
		p := tinyProblem(t, rng)
		if p.NumConstraints() == 0 {
			skipped++
			continue // beta too small for this circuit; nothing to check
		}
		want, feasible := bruteForce(p)
		single, errSingle := p.SingleBB()

		if !feasible {
			if errSingle == nil {
				t.Fatalf("trial %d: oracle infeasible but PassOne found %v", trial, single.Assign)
			}
			continue
		}
		tried++

		// Heuristic: feasible and no better than the optimum.
		h, err := p.SolveHeuristic()
		if err != nil {
			t.Fatalf("trial %d: heuristic failed on feasible instance: %v", trial, err)
		}
		if !p.CheckTiming(h.Assign) {
			t.Fatalf("trial %d: heuristic infeasible", trial)
		}
		if h.ExtraLeakNW < want-1e-6 {
			t.Fatalf("trial %d: heuristic %f beats the oracle optimum %f", trial, h.ExtraLeakNW, want)
		}

		// Local search: feasible, within caps, and bracketed by the
		// oracle optimum below and the single-BB baseline above; nothing
		// tighter is guaranteed, but it must never "beat" an exhaustive
		// enumeration.
		ls, err := (&LocalSolver{Seed: 7}).solveProblem(p)
		if err != nil {
			t.Fatalf("trial %d: local solver failed on feasible instance: %v", trial, err)
		}
		if !p.CheckTiming(ls.Assign) {
			t.Fatalf("trial %d: local solution infeasible", trial)
		}
		if Clusters(ls.Assign) > p.MaxClusters || BiasPairs(ls.Assign) > p.MaxBiasPairs {
			t.Fatalf("trial %d: local solution breaks caps (%d clusters, %d pairs)",
				trial, Clusters(ls.Assign), BiasPairs(ls.Assign))
		}
		if ls.ExtraLeakNW < want-1e-6 {
			t.Fatalf("trial %d: local %f beats the oracle optimum %f", trial, ls.ExtraLeakNW, want)
		}
		if ls.ExtraLeakNW > single.ExtraLeakNW+1e-9 {
			t.Fatalf("trial %d: local %f above single BB %f", trial, ls.ExtraLeakNW, single.ExtraLeakNW)
		}

		// ILP: must match the oracle exactly.
		sol, res, err := p.SolveILP(ILPOptions{WarmStart: h})
		if err != nil {
			t.Fatalf("trial %d: ILP error: %v", trial, err)
		}
		if sol == nil || !sol.Proven {
			t.Fatalf("trial %d: ILP not proven on a tiny instance (%v)", trial, res.Status)
		}
		if math.Abs(sol.ExtraLeakNW-want) > 1e-6 {
			t.Fatalf("trial %d: ILP optimum %f != oracle %f (N=%d P=%d M=%d C=%d)",
				trial, sol.ExtraLeakNW, want, p.N, p.P, p.NumConstraints(), p.MaxClusters)
		}
	}
	t.Logf("verified %d instances against exhaustive enumeration (%d had no violations)", tried, skipped)
	if tried == 0 {
		t.Error("no instance exercised the allocators")
	}
}

// TestSolveILPWorkerInvariance pins the determinism contract at the core
// layer: the same instance solved with 1, 2 and 8 workers must return
// byte-identical solutions and diagnostics — both when the search runs to
// proof and when a node budget truncates it mid-tree.
func TestSolveILPWorkerInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	checked := 0
	for trial := 0; trial < 10; trial++ {
		p := tinyProblem(t, rng)
		if p.NumConstraints() == 0 {
			continue
		}
		h, err := p.SolveHeuristic()
		if err != nil {
			continue // uncompensatable instance; the oracle test covers these
		}
		for _, limit := range []int{0, 8} {
			baseSol, baseRes, err := p.SolveILP(ILPOptions{Workers: 1, NodeLimit: limit, WarmStart: h})
			if err != nil {
				t.Fatalf("trial %d limit %d: serial solve: %v", trial, limit, err)
			}
			for _, w := range []int{2, 8} {
				sol, res, err := p.SolveILP(ILPOptions{Workers: w, NodeLimit: limit, WarmStart: h})
				if err != nil {
					t.Fatalf("trial %d limit %d: %d workers: %v", trial, limit, w, err)
				}
				if !reflect.DeepEqual(sol, baseSol) {
					t.Fatalf("trial %d limit %d: solution differs at %d workers:\n 1: %+v\n%2d: %+v",
						trial, limit, w, baseSol, w, sol)
				}
				if !reflect.DeepEqual(res, baseRes) {
					t.Fatalf("trial %d limit %d: diagnostics differ at %d workers:\n 1: %+v\n%2d: %+v",
						trial, limit, w, baseRes, w, res)
				}
			}
		}
		checked++
	}
	if checked == 0 {
		t.Error("no instance exercised the parallel tree")
	}
}
