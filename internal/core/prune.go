package core

// Constraint dominance pruning. Constraint k is dominated by k' when k' is
// at least as hard to satisfy everywhere: req_k <= req_k' and every
// coefficient of k is >= the matching coefficient of k' (any assignment
// giving k' its requirement gives k at least as much reduction). Dominated
// constraints are redundant for both allocators; dropping them shrinks the
// ILP without changing its feasible set. On the multiplier-class instances
// (hundreds of near-identical array paths) this removes a large fraction of
// the rows the simplex has to carry.

// PruneDominated removes dominated constraints in place and returns how many
// were dropped. The comparison is limited to constraint pairs with identical
// row sets (coefficient-wise comparison is only sound when neither has a
// row the other lacks on the >= side; equal row sets are the common case
// produced by the array structures).
func (p *Problem) PruneDominated() int {
	type bucketKey string
	buckets := map[bucketKey][]int{}
	for k := range p.Constraints {
		key := make([]byte, 0, len(p.Constraints[k].Rows)*3)
		for _, rc := range p.Constraints[k].Rows {
			key = append(key, byte(rc.Row), byte(rc.Row>>8), ',')
		}
		buckets[bucketKey(key)] = append(buckets[bucketKey(key)], k)
	}

	drop := make([]bool, len(p.Constraints))
	dropped := 0
	for _, ks := range buckets {
		if len(ks) < 2 {
			continue
		}
		for a := 0; a < len(ks); a++ {
			if drop[ks[a]] {
				continue
			}
			for b := 0; b < len(ks); b++ {
				if a == b || drop[ks[b]] || drop[ks[a]] {
					continue
				}
				if dominates(&p.Constraints[ks[b]], &p.Constraints[ks[a]]) {
					drop[ks[a]] = true
					dropped++
				}
			}
		}
	}
	if dropped == 0 {
		return 0
	}
	kept := p.Constraints[:0]
	for k := range p.Constraints {
		if !drop[k] {
			kept = append(kept, p.Constraints[k])
		}
	}
	p.Constraints = kept
	p.reindexRows()
	return dropped
}

// dominates reports whether satisfying hard implies satisfying easy, for
// constraints over the same row set.
func dominates(hard, easy *PathConstraint) bool {
	if easy.ReqPS > hard.ReqPS {
		return false
	}
	for i := range hard.Rows {
		hr, er := &hard.Rows[i], &easy.Rows[i]
		if hr.Row != er.Row {
			return false
		}
		for j := range hr.DeltaPS {
			if er.DeltaPS[j] < hr.DeltaPS[j]-1e-12 {
				return false
			}
		}
	}
	return true
}

// reindexRows rebuilds the row-to-constraint index after pruning.
func (p *Problem) reindexRows() {
	for i := range p.Involved {
		p.Involved[i] = false
	}
	p.rowConsStart, p.rowConsRefs = buildRowCons(p.N, p.Constraints, p.Involved,
		p.rowConsStart, p.rowConsRefs)
}
