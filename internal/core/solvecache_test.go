package core

import (
	"strings"
	"sync"
	"testing"

	"repro/internal/cell"
)

// TestSolveCacheMatchesDirectSolve: a cached outcome must be exactly what an
// uncached SolveAt of the same (opts, solver) returns — solution, graceful
// solveErr, and all — on both the filling call and every hit after it.
func TestSolveCacheMatchesDirectSolve(t *testing.T) {
	pl, tm := randomTimed(t, cell.Default(), 11)
	al, err := NewAllocator(pl, tm)
	if err != nil {
		t.Fatal(err)
	}
	c := NewSolveCache(al)
	var inst, ref *Instance
	for _, beta := range []float64{0.02, 0.05, 0.02, 0.08, 0.05} {
		opts := Options{Beta: beta, MaxClusters: 3, MaxBiasPairs: 2}
		wantSol, refInst, wantErr := al.SolveAt(opts, nil, ref)
		ref = refInst
		if wantErr != nil {
			t.Fatalf("beta %v: reference solve failed: %v", beta, wantErr)
		}
		sol, gotInst, solveErr, err := c.Solve(opts, nil, inst)
		inst = gotInst
		if err != nil || solveErr != nil {
			t.Fatalf("beta %v: cache solve failed: %v / %v", beta, err, solveErr)
		}
		requireSolutionsEqual(t, wantSol, sol, "cached vs direct")
	}
	if c.Len() != 3 {
		t.Fatalf("cache holds %d entries after 3 distinct targets, want 3", c.Len())
	}
	if c.Allocator() != al {
		t.Fatal("Allocator accessor does not return the cached engine")
	}
}

// TestSolveCacheCachesGracefulFailure: the beyond-compensation-range outcome
// is deterministic and must be cached like a solution — a second call with
// the same impossible target returns the same solveErr without re-solving.
func TestSolveCacheCachesGracefulFailure(t *testing.T) {
	pl, tm := randomTimed(t, cell.Default(), 11)
	al, err := NewAllocator(pl, tm)
	if err != nil {
		t.Fatal(err)
	}
	c := NewSolveCache(al)
	opts := Options{Beta: 0.99, MaxClusters: 3, MaxBiasPairs: 2}
	sol, inst, solveErr, err := c.Solve(opts, nil, nil)
	if err != nil {
		t.Fatalf("structural error for an in-range materialization: %v", err)
	}
	if solveErr == nil || sol != nil {
		t.Skip("beta 0.99 unexpectedly compensable on this fixture")
	}
	if c.Len() != 1 {
		t.Fatalf("graceful failure not cached: Len = %d", c.Len())
	}
	sol2, _, solveErr2, err := c.Solve(opts, nil, inst)
	if err != nil || sol2 != nil {
		t.Fatalf("cached failure replay: sol=%v err=%v", sol2, err)
	}
	if solveErr2 == nil || solveErr2.Error() != solveErr.Error() {
		t.Fatalf("cached solveErr %v, want %v", solveErr2, solveErr)
	}
}

// TestSolveCacheCoalesces: N goroutines missing on one key must all return
// the same shared Solution value (one materialize-and-solve, not N).
func TestSolveCacheCoalesces(t *testing.T) {
	pl, tm := randomTimed(t, cell.Default(), 11)
	al, err := NewAllocator(pl, tm)
	if err != nil {
		t.Fatal(err)
	}
	c := NewSolveCache(al)
	opts := Options{Beta: 0.04, MaxClusters: 3, MaxBiasPairs: 2}
	const n = 8
	sols := make([]*Solution, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sol, _, solveErr, err := c.Solve(opts, nil, nil)
			if err != nil || solveErr != nil {
				t.Errorf("goroutine %d: %v / %v", i, err, solveErr)
				return
			}
			sols[i] = sol
		}(i)
	}
	wg.Wait()
	if c.Len() != 1 {
		t.Fatalf("%d entries for one key, want 1", c.Len())
	}
	for i := 1; i < n; i++ {
		if sols[i] != sols[0] {
			t.Fatalf("goroutine %d got a distinct Solution pointer: coalescing failed", i)
		}
	}
}

// uncomparableSolver has a non-comparable dynamic type (slice field), so it
// cannot be a map key; the cache must bypass it rather than panic.
type uncomparableSolver struct {
	pad []int
}

func (uncomparableSolver) Name() string { return "uncomparable" }
func (uncomparableSolver) Solve(inst *Instance) (*Solution, error) {
	return HeuristicSolver{}.Solve(inst)
}

// TestSolveCacheBypassesUncacheable: an uncacheable solver solves correctly
// without inserting, and a bogus target still reports a structural error.
func TestSolveCacheBypassesUncacheable(t *testing.T) {
	pl, tm := randomTimed(t, cell.Default(), 11)
	al, err := NewAllocator(pl, tm)
	if err != nil {
		t.Fatal(err)
	}
	c := NewSolveCache(al)
	opts := Options{Beta: 0.04, MaxClusters: 3, MaxBiasPairs: 2}
	want, _, werr := al.SolveAt(opts, nil, nil)
	if werr != nil {
		t.Fatal(werr)
	}
	sol, _, solveErr, err := c.Solve(opts, uncomparableSolver{pad: []int{1}}, nil)
	if err != nil || solveErr != nil {
		t.Fatalf("bypass solve failed: %v / %v", err, solveErr)
	}
	requireSolutionsEqual(t, want, sol, "bypassed vs direct")
	if c.Len() != 0 {
		t.Fatalf("uncacheable solver inserted %d entries", c.Len())
	}
	if _, _, _, err := c.Solve(Options{Beta: -1}, nil, nil); err == nil ||
		!strings.Contains(err.Error(), "beta") {
		t.Fatalf("invalid options not rejected: %v", err)
	}
	if c.Len() != 0 {
		t.Fatalf("invalid options inserted %d entries", c.Len())
	}
}

// TestSolveCacheBounded: insertion stops at maxSolveCache; later distinct
// keys still solve correctly through the bypass.
func TestSolveCacheBounded(t *testing.T) {
	if testing.Short() {
		t.Skip("filling the cache is a -short skip")
	}
	pl, tm := randomTimed(t, cell.Default(), 11)
	al, err := NewAllocator(pl, tm)
	if err != nil {
		t.Fatal(err)
	}
	c := NewSolveCache(al)
	var inst *Instance
	for i := 0; i < maxSolveCache+16; i++ {
		opts := Options{Beta: 0.01 + 1e-5*float64(i), MaxClusters: 3, MaxBiasPairs: 2}
		_, got, _, err := c.Solve(opts, nil, inst)
		inst = got
		if err != nil {
			t.Fatal(err)
		}
		if c.Len() > maxSolveCache {
			t.Fatalf("cache grew to %d entries, cap is %d", c.Len(), maxSolveCache)
		}
	}
	if c.Len() != maxSolveCache {
		t.Fatalf("cache holds %d entries, want the cap %d", c.Len(), maxSolveCache)
	}
}
