package core

import (
	"reflect"
	"sync"
)

// SolveCache is a concurrency-safe memo of allocation outcomes over one
// Allocator, shared across workers, streams and requests. The clustering
// problem depends only on the nominal timing and the target options — never
// on the die — and the solvers are deterministic, so any two solves of the
// same (Options, Solver) pair return the same Solution; a population study
// (or a serving process fielding many of them) re-solves a handful of
// monitor-quantized targets over and over, and materialization (Allocator.At)
// dominates that cost. The per-Tuner memo already removes the repeats within
// one worker; this cache removes them across workers and across streams: a
// flow.Prefix carries one, so every /v1/yield request against a cached
// placement starts with the population's allocation set already solved.
//
// Concurrent misses on one key coalesce: the first caller materializes and
// solves, later callers block until the entry is filled. The cached Solution
// is owned by the cache and shared — callers must treat it as immutable and
// Clone before retaining, exactly as they must for Instance-owned solutions.
type SolveCache struct {
	al *Allocator
	mu sync.Mutex
	m  map[solveKey]*solveEntry
}

// maxSolveCache bounds the cache. Reusable targets are monitor-quantized
// (a few dozen distinct values on any realistic population); the bound only
// guards against a caller inserting continuous per-die targets.
const maxSolveCache = 256

// solveKey identifies one allocation instance: the normalized options plus
// the solver value itself (nil = the registered default heuristic). Keying
// on the interface value means two requests share an entry only when they
// share the solver configuration, not merely its name.
type solveKey struct {
	beta            float64
	clusters, pairs int
	solver          Solver
}

type solveEntry struct {
	done     chan struct{}
	sol      *Solution // detached clone; nil when the solve failed
	solveErr error     // graceful beyond-compensation-range outcome
	fatal    error     // structural At failure, broadcast but never cached
}

// NewSolveCache returns an empty cache over al.
func NewSolveCache(al *Allocator) *SolveCache {
	return &SolveCache{al: al}
}

// Allocator returns the engine the cache memoizes; callers mixing several
// allocators must check it, since solutions are only valid for the placement
// and timing the Allocator was built on.
func (c *SolveCache) Allocator() *Allocator { return c.al }

// Len reports the number of cached entries (filled or in flight).
func (c *SolveCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.m)
}

// Solve returns the allocation outcome for (opts, solver) through the cache,
// materializing and solving into buf on a miss. Like Tuner.solve it keeps
// the two failure modes apart: solveErr is the deterministic
// beyond-compensation-range outcome (cached alongside solutions), err is a
// structural materialization failure (fatal, never cached). The returned
// Instance is buf (possibly grown) — callers thread it exactly as with
// Allocator.SolveAt — and on a cache hit buf is returned untouched.
//
// A solver whose dynamic type is not comparable cannot be a map key; such
// values bypass the cache and solve directly (correctness is unaffected —
// the cache is a pure memo).
func (c *SolveCache) Solve(opts Options, solver Solver, buf *Instance) (sol *Solution, inst *Instance, solveErr, err error) {
	if err := opts.normalize(); err != nil {
		return nil, buf, nil, err
	}
	if solver != nil && !reflect.TypeOf(solver).Comparable() {
		return c.solveUncached(opts, solver, buf)
	}
	key := solveKey{beta: opts.Beta, clusters: opts.MaxClusters, pairs: opts.MaxBiasPairs, solver: solver}

	c.mu.Lock()
	if e, ok := c.m[key]; ok {
		c.mu.Unlock()
		<-e.done
		if e.fatal != nil {
			return nil, buf, nil, e.fatal
		}
		return e.sol, buf, e.solveErr, nil
	}
	if c.m == nil {
		c.m = make(map[solveKey]*solveEntry)
	}
	if len(c.m) >= maxSolveCache {
		c.mu.Unlock()
		return c.solveUncached(opts, solver, buf)
	}
	e := &solveEntry{done: make(chan struct{})}
	c.m[key] = e
	c.mu.Unlock()

	inst, err = c.al.At(opts, buf)
	if err != nil {
		// Broadcast the failure to coalesced waiters but drop the entry:
		// fatal errors are never cached, matching the Tuner memo.
		e.fatal = err
		c.mu.Lock()
		delete(c.m, key)
		c.mu.Unlock()
		close(e.done)
		return nil, buf, nil, err
	}
	s, serr := inst.Solve(solver)
	if s != nil {
		e.sol = s.Clone() // s lives in the Instance scratch
	}
	e.solveErr = serr
	close(e.done)
	return e.sol, inst, serr, nil
}

// solveUncached is the bypass path (uncacheable solver, full cache): one
// materialize-and-solve on the caller's scratch, failure modes separated as
// in Solve.
func (c *SolveCache) solveUncached(opts Options, solver Solver, buf *Instance) (*Solution, *Instance, error, error) {
	inst, err := c.al.At(opts, buf)
	if err != nil {
		return nil, buf, nil, err
	}
	s, serr := inst.Solve(solver)
	return s, inst, serr, nil
}
