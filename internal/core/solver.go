package core

import (
	"fmt"
	"sort"
	"sync"
)

// Solver is a pluggable allocation engine over a materialized Instance. The
// paper evaluates two points of the quality-vs-speed space (the linear-time
// heuristic and the exact ILP); the seam lets experiments register and sweep
// others without touching the callers.
//
// Implementations must be safe for concurrent Solve calls on *distinct*
// Instances (the built-ins are: any mutable per-solve state lives in the
// Instance). The returned Solution may share the Instance's scratch — it is
// invalidated by the next solve or At on the same Instance; Clone it to
// keep it.
type Solver interface {
	// Name identifies the solver in registries, flags, and Solution.Method.
	Name() string
	// Solve allocates clustered FBB on the materialized instance.
	Solve(inst *Instance) (*Solution, error)
}

var (
	solverMu        sync.RWMutex
	solverFactories = map[string]func() Solver{}
)

// RegisterSolver makes a solver constructable by name (NewNamedSolver). The
// factory returns a fresh, default-configured value so callers may adjust
// fields without racing other users. Registering a duplicate or empty name
// panics: registration is an init-time programming act, not runtime input.
func RegisterSolver(name string, factory func() Solver) {
	if name == "" || factory == nil {
		panic("core: RegisterSolver needs a name and a factory")
	}
	solverMu.Lock()
	defer solverMu.Unlock()
	if _, dup := solverFactories[name]; dup {
		panic("core: duplicate solver " + name)
	}
	solverFactories[name] = factory
}

// NewNamedSolver returns a fresh instance of the named registered solver.
func NewNamedSolver(name string) (Solver, error) {
	solverMu.RLock()
	factory := solverFactories[name]
	solverMu.RUnlock()
	if factory == nil {
		return nil, fmt.Errorf("core: unknown solver %q (have %v)", name, SolverNames())
	}
	return factory(), nil
}

// SolverNames lists the registered solvers, sorted.
func SolverNames() []string {
	solverMu.RLock()
	defer solverMu.RUnlock()
	names := make([]string, 0, len(solverFactories))
	for n := range solverFactories {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

func init() {
	RegisterSolver("heuristic", func() Solver { return HeuristicSolver{} })
	RegisterSolver("ilp", func() Solver { return &ILPSolver{} })
	RegisterSolver("local", func() Solver { return &LocalSolver{} })
	RegisterSolver("race", func() Solver { return &RaceSolver{} })
}

// HeuristicSolver is the paper's two-pass greedy allocator (Figure 5) as a
// Solver: identical, bit for bit, to Problem.SolveHeuristic — both run the
// same scratch implementation — but allocation-free on a warmed Instance.
type HeuristicSolver struct {
	// Opts toggle the ablation switches; the zero value enables every
	// post-pass.
	Opts HeuristicOptions
}

// Name implements Solver.
func (HeuristicSolver) Name() string { return "heuristic" }

// Solve implements Solver.
func (h HeuristicSolver) Solve(inst *Instance) (*Solution, error) {
	return inst.prob.solveHeuristicScratch(&inst.heur, h.Opts)
}

// ILPSolver is the paper's exact allocator (equations 1-5) as a Solver. It
// first runs the two-pass heuristic on the instance and hands branch and
// bound that solution as the incumbent, so even a budget-starved solve
// returns a feasible allocation. The branch-and-bound outcome (status,
// nodes, bound) of the latest solve is published on Instance.ILPResult.
type ILPSolver struct {
	// Opts bound the exact solve; WarmStart is overridden with the
	// heuristic solution of the same instance.
	Opts ILPOptions
}

// Name implements Solver.
func (*ILPSolver) Name() string { return "ilp" }

// Solve implements Solver.
func (s *ILPSolver) Solve(inst *Instance) (*Solution, error) {
	warm, err := (HeuristicSolver{}).Solve(inst)
	if err != nil {
		// PassOne failed: no uniform bias meets timing, so the ILP is
		// infeasible too — surface the cheaper diagnosis.
		return nil, err
	}
	opts := s.Opts
	opts.WarmStart = warm
	sol, res, err := inst.prob.SolveILP(opts)
	inst.ILPResult = res
	return sol, err
}
