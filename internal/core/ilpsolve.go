package core

import (
	"context"
	"fmt"
	"time"

	"repro/internal/ilp"
	"repro/internal/lp"
)

// ILPOptions configure the exact solve. The default budget is a node
// limit, which makes results reproducible at any worker count; TimeLimit
// is the explicit wall-clock opt-out.
type ILPOptions struct {
	// NodeLimit bounds explored branch-and-bound nodes (0 = solver
	// default, 1<<20). Node budgets are deterministic: the same model and
	// limit yield a bit-identical result regardless of Workers.
	NodeLimit int
	// TimeLimit additionally interrupts the search on wall clock
	// (0 = none). The paper reports no ILP results for its two largest
	// designs because lp_solve "did not converge in a specified amount of
	// time"; the same budget semantics apply here — but unlike NodeLimit,
	// where the clock cuts the tree is machine-dependent, so truncated
	// results may vary run to run.
	TimeLimit time.Duration
	// Workers sets the tree-parallelism degree (0 = GOMAXPROCS). Any
	// value returns the same result under a node budget.
	Workers int
	// Branching selects the branching rule: "" or "pseudocost" (strong-
	// branching-seeded pseudo-costs), or "mostfrac".
	Branching string
	// NoPresolve disables the presolve pass (ablation switch).
	NoPresolve bool
	// WarmStart primes the incumbent, typically with the heuristic
	// solution.
	WarmStart *Solution
}

// BuildILP assembles the paper's ILP (equations 1-5). Rows on no violating
// path are interchangeable — in any optimal solution they all share one
// level (splitting them can only add leakage or clusters) — so they are
// aggregated exactly into a single pseudo-row whose leakage column is their
// sum. This keeps the variable count at (involved+1) * P while preserving
// optimality, including the subtle case where parking the uninvolved rows on
// a used bias level frees the NBB cluster slot. Variables are x_ij (row i at
// level j) and the cluster indicators y_j.
func (p *Problem) BuildILP() (*ilp.Model, []int) {
	inv := make([]int, 0, p.N)
	invIdx := make(map[int]int, p.N)
	for i := 0; i < p.N; i++ {
		if p.Involved[i] {
			invIdx[i] = len(inv)
			inv = append(inv, i)
		}
	}
	nInv := len(inv)
	nRows := nInv
	hasAgg := nInv < p.N
	if hasAgg {
		nRows++ // the aggregated uninvolved pseudo-row
	}
	xIdx := func(i, j int) int { return i*p.P + j }
	yBase := nRows * p.P
	nVars := yBase + p.P

	m := &ilp.Model{}
	m.C = make([]float64, nVars)
	m.U = make([]float64, nVars)
	for v := range m.U {
		m.U[v] = 1
	}
	for i, row := range inv {
		for j := 0; j < p.P; j++ {
			m.C[xIdx(i, j)] = p.RowLeakNW[row][j]
		}
	}
	if hasAgg {
		for i := 0; i < p.N; i++ {
			if p.Involved[i] {
				continue
			}
			for j := 0; j < p.P; j++ {
				m.C[xIdx(nInv, j)] += p.RowLeakNW[i][j]
			}
		}
	}

	addRow := func(a []float64, rel lp.Rel, b float64) {
		m.A = append(m.A, a)
		m.Rel = append(m.Rel, rel)
		m.B = append(m.B, b)
	}

	// Equation 2 (with the sign convention fixed): total reduction on
	// each violating path must reach its requirement.
	for k := range p.Constraints {
		c := &p.Constraints[k]
		a := make([]float64, nVars)
		for _, rc := range c.Rows {
			i := invIdx[rc.Row]
			for j := 0; j < p.P; j++ {
				a[xIdx(i, j)] = rc.DeltaPS[j]
			}
		}
		addRow(a, lp.GE, c.ReqPS)
	}

	// Equation 3: each row (including the pseudo-row) belongs to exactly
	// one cluster.
	for i := 0; i < nRows; i++ {
		a := make([]float64, nVars)
		for j := 0; j < p.P; j++ {
			a[xIdx(i, j)] = 1
		}
		addRow(a, lp.EQ, 1)
	}

	// Equation 4: level usage linking (F = nRows is "a very large number"
	// at the instance scale) and the cluster-count cap.
	for j := 0; j < p.P; j++ {
		a := make([]float64, nVars)
		for i := 0; i < nRows; i++ {
			a[xIdx(i, j)] = 1
		}
		a[yBase+j] = -float64(nRows)
		addRow(a, lp.LE, 0)
	}
	capRow := make([]float64, nVars)
	for j := 0; j < p.P; j++ {
		capRow[yBase+j] = 1
	}
	addRow(capRow, lp.LE, float64(p.MaxClusters))

	// Routing cap (section 3.3): each non-NBB level needs a bias pair on
	// top metal, and at most MaxBiasPairs fit without growing the die.
	pairRow := make([]float64, nVars)
	for j := 1; j < p.P; j++ {
		pairRow[yBase+j] = 1
	}
	addRow(pairRow, lp.LE, float64(p.MaxBiasPairs))
	return m, inv
}

// warmVector translates a full assignment into the ILP variable space
// (uninvolved rows collapse onto the pseudo-row at the highest level any of
// them uses, a feasible if slightly pessimistic incumbent), or reports false
// when the assignment is not representable within the caps.
func (p *Problem) warmVector(m *ilp.Model, inv []int, s *Solution) ([]float64, float64, bool) {
	nInv := len(inv)
	nRows := nInv
	hasAgg := nInv < p.N
	if hasAgg {
		nRows++
	}
	yBase := nRows * p.P
	x := make([]float64, len(m.C))
	obj := 0.0
	levels := map[int]struct{}{}
	for i, row := range inv {
		j := s.Assign[row]
		x[i*p.P+j] = 1
		obj += p.RowLeakNW[row][j]
		levels[j] = struct{}{}
	}
	if hasAgg {
		aggLevel := 0
		for i := 0; i < p.N; i++ {
			if !p.Involved[i] && s.Assign[i] > aggLevel {
				aggLevel = s.Assign[i]
			}
		}
		x[nInv*p.P+aggLevel] = 1
		obj += m.C[nInv*p.P+aggLevel]
		levels[aggLevel] = struct{}{}
	}
	if len(levels) > p.MaxClusters {
		return nil, 0, false
	}
	pairs := 0
	for j := range levels {
		if j != 0 {
			pairs++
		}
	}
	if pairs > p.MaxBiasPairs {
		return nil, 0, false
	}
	for j := range levels {
		x[yBase+j] = 1
	}
	return x, obj, true
}

// NoIncumbentError reports an exact solve that ended without any feasible
// incumbent: the node or time budget expired before branch and bound found
// an integer point (ilp.NoSolution), or the relaxation was unbounded. It
// replaces the historical (nil, res, nil) return, which handed callers a
// silent nil Solution to dereference.
type NoIncumbentError struct {
	Status ilp.Status
	Beta   float64
}

func (e *NoIncumbentError) Error() string {
	return fmt.Sprintf("core: ILP ended %s with no incumbent at beta=%.1f%%",
		e.Status, e.Beta*100)
}

// SolveILP runs the exact allocator. When the budget expires with an
// incumbent, the returned solution carries Proven=false. When branch and
// bound ends with no incumbent at all, the warm-start solution (when given)
// is returned with Proven=false — it is feasible, just unimproved — and
// otherwise the error is a *NoIncumbentError; either way the ilp.Result
// still reports the explored nodes and bound.
func (p *Problem) SolveILP(opts ILPOptions) (*Solution, *ilp.Result, error) {
	m, inv := p.BuildILP()
	var iopts ilp.Options
	iopts.NodeLimit = opts.NodeLimit
	iopts.Workers = opts.Workers
	iopts.Branching = opts.Branching
	iopts.NoPresolve = opts.NoPresolve
	if opts.TimeLimit > 0 {
		ctx, cancel := context.WithTimeout(context.Background(), opts.TimeLimit)
		defer cancel()
		iopts.Interrupt = func() bool { return ctx.Err() != nil }
	}
	warmOK := false
	if opts.WarmStart != nil {
		if x, obj, ok := p.warmVector(m, inv, opts.WarmStart); ok {
			iopts.HasWarm = true
			iopts.WarmX = x
			iopts.WarmObj = obj
			warmOK = true
		}
	}
	res, err := ilp.Solve(m, iopts)
	if err != nil {
		return nil, nil, err
	}
	switch res.Status {
	case ilp.InfeasibleProven:
		return nil, &res, fmt.Errorf("core: ILP infeasible at beta=%.1f%%", p.Beta*100)
	case ilp.NoSolution, ilp.RelaxUnbounded:
		// A warm start that fit the caps is a feasible incumbent even when
		// branch and bound never improved on it; one that did not fit (or
		// none at all) leaves nothing to return.
		if warmOK {
			sol := opts.WarmStart.Clone()
			sol.Proven = false
			return sol, &res, nil
		}
		return nil, &res, &NoIncumbentError{Status: res.Status, Beta: p.Beta}
	}

	levelOf := func(i int) int {
		for j := 0; j < p.P; j++ {
			if res.X[i*p.P+j] > 0.5 {
				return j
			}
		}
		return -1
	}
	assign := make([]int, p.N)
	for i, row := range inv {
		level := levelOf(i)
		if level < 0 {
			return nil, &res, fmt.Errorf("core: ILP row %d has no level selected", row)
		}
		assign[row] = level
	}
	if len(inv) < p.N {
		aggLevel := levelOf(len(inv))
		if aggLevel < 0 {
			return nil, &res, fmt.Errorf("core: ILP pseudo-row has no level selected")
		}
		for i := 0; i < p.N; i++ {
			if !p.Involved[i] {
				assign[i] = aggLevel
			}
		}
	}
	if !p.CheckTiming(assign) {
		return nil, &res, fmt.Errorf("core: ILP assignment fails timing check")
	}
	sol, err := p.solutionFor(assign, "ilp", res.Status == ilp.OptimalProven)
	if err != nil {
		return nil, &res, err
	}
	return sol, &res, nil
}
