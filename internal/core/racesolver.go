package core

import "sync"

// RaceSolver runs a portfolio race: the two-pass heuristic first (its
// solution warm-starts everything downstream), then the local-search
// portfolio and the warm-started exact ILP concurrently. The ILP is the
// only member that can prove optimality, so a proven solve wins outright;
// otherwise the cheaper incumbent wins, ties to the ILP (whose incumbent
// is never worse than the warm start).
//
// Both members run to completion under their own budgets and the verdict
// depends only on their results — never on which finished first — so a
// race is exactly as deterministic as its members: bit-reproducible under
// the default node budgets, machine-dependent only if ILP.TimeLimit is
// set. The members do not exchange incumbents mid-flight for the same
// reason; the concurrency buys wall clock, not coupling.
type RaceSolver struct {
	// ILP bounds the exact member; WarmStart is overridden with the
	// heuristic solution of the same instance.
	ILP ILPOptions
	// Local configures the local-search member (zero value = defaults).
	Local LocalSolver
}

// Name implements Solver.
func (*RaceSolver) Name() string { return "race" }

// Solve implements Solver. The winning member is published on
// Instance.RaceWinner ("ilp" or "local") and the exact member's
// branch-and-bound outcome on Instance.ILPResult, mirroring ILPSolver.
func (s *RaceSolver) Solve(inst *Instance) (*Solution, error) {
	warm, err := (HeuristicSolver{}).Solve(inst)
	if err != nil {
		// PassOne failed: no uniform bias meets timing, so every member
		// is infeasible — surface the cheapest diagnosis.
		return nil, err
	}

	var (
		wg     sync.WaitGroup
		ilpSol *Solution
		locSol *Solution
		ilpErr error
		locErr error
	)
	wg.Add(2)
	go func() {
		defer wg.Done()
		opts := s.ILP
		opts.WarmStart = warm
		ilpSol, inst.ILPResult, ilpErr = inst.prob.SolveILP(opts)
	}()
	go func() {
		defer wg.Done()
		loc := s.Local
		locSol, locErr = loc.solveProblem(inst.Prob)
	}()
	wg.Wait()

	switch {
	case ilpErr != nil && locErr != nil:
		return nil, ilpErr
	case ilpErr != nil:
		inst.RaceWinner = "local"
		return locSol, nil
	case locErr != nil:
		inst.RaceWinner = "ilp"
		return ilpSol, nil
	case ilpSol.Proven:
		inst.RaceWinner = "ilp"
		return ilpSol, nil
	case locSol.ExtraLeakNW < ilpSol.ExtraLeakNW:
		inst.RaceWinner = "local"
		return locSol, nil
	}
	inst.RaceWinner = "ilp"
	return ilpSol, nil
}
