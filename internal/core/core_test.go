package core

import (
	"math/rand"
	"testing"

	"repro/internal/cell"
	"repro/internal/gen"
	"repro/internal/place"
	"repro/internal/sta"
)

func problem(t *testing.T, name string, beta float64, c int) *Problem {
	t.Helper()
	l := cell.Default()
	d, err := gen.Build(name, l)
	if err != nil {
		t.Fatal(err)
	}
	pl, err := place.Place(d, l, place.Options{})
	if err != nil {
		t.Fatal(err)
	}
	tm, err := sta.Analyze(pl, sta.Options{})
	if err != nil {
		t.Fatal(err)
	}
	p, err := BuildProblem(pl, tm, Options{Beta: beta, MaxClusters: c})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestConstraintCountGrowsWithBeta(t *testing.T) {
	p5 := problem(t, "c5315", 0.05, 3)
	p10 := problem(t, "c5315", 0.10, 3)
	t.Logf("c5315 constraints: beta=5%% -> %d, beta=10%% -> %d",
		p5.NumConstraints(), p10.NumConstraints())
	if p5.NumConstraints() == 0 {
		t.Fatal("no constraints at beta=5%")
	}
	if p10.NumConstraints() <= p5.NumConstraints() {
		t.Errorf("constraints should grow with beta: %d vs %d",
			p5.NumConstraints(), p10.NumConstraints())
	}
}

func TestMultiplierDominatesConstraintCounts(t *testing.T) {
	// Table 1: c6288's No.Constr (773/810) dwarfs every other benchmark.
	mult := problem(t, "c6288", 0.05, 3)
	ecc := problem(t, "c1355", 0.05, 3)
	t.Logf("constraints at beta=5%%: c6288=%d c1355=%d", mult.NumConstraints(), ecc.NumConstraints())
	if mult.NumConstraints() < 5*ecc.NumConstraints() {
		t.Errorf("multiplier constraints (%d) should dwarf ECC's (%d)",
			mult.NumConstraints(), ecc.NumConstraints())
	}
}

func TestSingleBBUniformAndFeasible(t *testing.T) {
	p := problem(t, "c1355", 0.05, 3)
	s, err := p.SingleBB()
	if err != nil {
		t.Fatal(err)
	}
	if s.Clusters != 1 {
		t.Errorf("single BB clusters = %d, want 1", s.Clusters)
	}
	for _, j := range s.Assign[1:] {
		if j != s.Assign[0] {
			t.Fatal("single BB assignment not uniform")
		}
	}
	if !p.CheckTiming(s.Assign) {
		t.Error("single BB fails timing")
	}
	if s.Assign[0] == 0 {
		t.Error("a violated design must need some bias")
	}
	if s.ExtraLeakNW <= 0 {
		t.Error("single BB must spend leakage")
	}
	// jopt is minimal: one level lower must fail.
	lower := make([]int, p.N)
	for i := range lower {
		lower[i] = s.Assign[0] - 1
	}
	if p.CheckTiming(lower) {
		t.Error("PassOne did not return the minimal feasible level")
	}
}

func TestHeuristicInvariants(t *testing.T) {
	for _, tc := range []struct {
		name string
		beta float64
		c    int
	}{
		{"c1355", 0.05, 2}, {"c1355", 0.10, 3},
		{"c3540", 0.05, 3}, {"c5315", 0.10, 2},
		{"c7552", 0.05, 3}, {"adder128", 0.10, 3},
	} {
		p := problem(t, tc.name, tc.beta, tc.c)
		single, err := p.SingleBB()
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		h, err := p.SolveHeuristic()
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if !p.CheckTiming(h.Assign) {
			t.Errorf("%s: heuristic violates timing", tc.name)
		}
		if h.Clusters > tc.c {
			t.Errorf("%s: %d clusters exceed C=%d", tc.name, h.Clusters, tc.c)
		}
		if h.ExtraLeakNW > single.ExtraLeakNW+1e-9 {
			t.Errorf("%s: heuristic leakage %f above single BB %f",
				tc.name, h.ExtraLeakNW, single.ExtraLeakNW)
		}
		sav := Savings(single, h)
		if sav < 0 || sav > 100 {
			t.Errorf("%s: savings %f out of range", tc.name, sav)
		}
		t.Logf("%-10s beta=%g C=%d: single=%.1fnW heuristic=%.1fnW savings=%.1f%% clusters=%d constr=%d",
			tc.name, tc.beta, tc.c, single.ExtraLeakNW, h.ExtraLeakNW, sav, h.Clusters, p.NumConstraints())
	}
}

func TestHeuristicSavesLeakage(t *testing.T) {
	// The headline claim: clustering beats block-level FBB. On every
	// public benchmark the heuristic must save something at beta=10%.
	for _, name := range []string{"c1355", "c3540", "c5315", "c7552"} {
		p := problem(t, name, 0.10, 3)
		single, err := p.SingleBB()
		if err != nil {
			t.Fatal(err)
		}
		h, err := p.SolveHeuristic()
		if err != nil {
			t.Fatal(err)
		}
		if sav := Savings(single, h); sav <= 0 {
			t.Errorf("%s: heuristic saves nothing (%.2f%%)", name, sav)
		}
	}
}

func TestSavingsGrowWithBeta(t *testing.T) {
	// Table 1's trend: savings at beta=10% exceed savings at beta=5%.
	grow := 0
	names := []string{"c1355", "c3540", "c5315", "c7552"}
	for _, name := range names {
		p5 := problem(t, name, 0.05, 3)
		p10 := problem(t, name, 0.10, 3)
		s5, err := p5.SingleBB()
		if err != nil {
			t.Fatal(err)
		}
		h5, err := p5.SolveHeuristic()
		if err != nil {
			t.Fatal(err)
		}
		s10, err := p10.SingleBB()
		if err != nil {
			t.Fatal(err)
		}
		h10, err := p10.SolveHeuristic()
		if err != nil {
			t.Fatal(err)
		}
		if Savings(s10, h10) > Savings(s5, h5) {
			grow++
		}
		t.Logf("%s: savings 5%%=%.1f 10%%=%.1f", name, Savings(s5, h5), Savings(s10, h10))
	}
	if grow < len(names)-1 {
		t.Errorf("savings grew with beta on only %d/%d designs", grow, len(names))
	}
}

func TestCOneDegeneratesToSingleBB(t *testing.T) {
	p := problem(t, "c1355", 0.05, 1)
	single, err := p.SingleBB()
	if err != nil {
		t.Fatal(err)
	}
	h, err := p.SolveHeuristic()
	if err != nil {
		t.Fatal(err)
	}
	if h.Clusters != 1 {
		t.Errorf("C=1 heuristic used %d clusters", h.Clusters)
	}
	if h.ExtraLeakNW != single.ExtraLeakNW {
		t.Errorf("C=1 heuristic %.2fnW != single BB %.2fnW", h.ExtraLeakNW, single.ExtraLeakNW)
	}
}

func TestInfeasibleBetaRejected(t *testing.T) {
	// A 50% slowdown needs a ~33% delay reduction; FBB tops out around
	// 15-18%, so PassOne must fail.
	p := problem(t, "c1355", 0.50, 3)
	if _, err := p.PassOne(); err == nil {
		t.Fatal("PassOne accepted an uncompensatable slowdown")
	}
	if _, err := p.SolveHeuristic(); err == nil {
		t.Fatal("heuristic accepted an uncompensatable slowdown")
	}
}

func TestILPOnSmallDesign(t *testing.T) {
	for _, c := range []int{2, 3} {
		p := problem(t, "c1355", 0.05, c)
		single, err := p.SingleBB()
		if err != nil {
			t.Fatal(err)
		}
		h, err := p.SolveHeuristic()
		if err != nil {
			t.Fatal(err)
		}
		sol, res, err := p.SolveILP(ILPOptions{WarmStart: h})
		if err != nil {
			t.Fatal(err)
		}
		if sol == nil {
			t.Fatalf("C=%d: ILP returned no solution (%v)", c, res.Status)
		}
		if !p.CheckTiming(sol.Assign) {
			t.Errorf("C=%d: ILP violates timing", c)
		}
		if sol.Clusters > c {
			t.Errorf("C=%d: ILP used %d clusters", c, sol.Clusters)
		}
		// Exactness: ILP at least as good as the heuristic.
		if sol.ExtraLeakNW > h.ExtraLeakNW+1e-6 {
			t.Errorf("C=%d: ILP %.2fnW worse than heuristic %.2fnW",
				c, sol.ExtraLeakNW, h.ExtraLeakNW)
		}
		t.Logf("c1355 C=%d: ILP %.1f%% vs heuristic %.1f%% (nodes=%d proven=%v)",
			c, Savings(single, sol), Savings(single, h), res.Nodes, sol.Proven)
	}
}

func TestILPMoreClustersNeverWorse(t *testing.T) {
	p2 := problem(t, "c1355", 0.10, 2)
	p3 := problem(t, "c1355", 0.10, 3)
	h2, err := p2.SolveHeuristic()
	if err != nil {
		t.Fatal(err)
	}
	h3, err := p3.SolveHeuristic()
	if err != nil {
		t.Fatal(err)
	}
	s2, _, err := p2.SolveILP(ILPOptions{WarmStart: h2})
	if err != nil {
		t.Fatal(err)
	}
	s3, _, err := p3.SolveILP(ILPOptions{WarmStart: h3})
	if err != nil {
		t.Fatal(err)
	}
	if s2 == nil || s3 == nil {
		t.Skip("ILP budget expired without incumbent")
	}
	if s3.Proven && s2.Proven && s3.ExtraLeakNW > s2.ExtraLeakNW+1e-6 {
		t.Errorf("C=3 optimum %.2f worse than C=2 optimum %.2f", s3.ExtraLeakNW, s2.ExtraLeakNW)
	}
}

func TestIncrementalTimingMatchesFull(t *testing.T) {
	p := problem(t, "c3540", 0.05, 3)
	rng := rand.New(rand.NewSource(21))
	assign := make([]int, p.N)
	for i := range assign {
		assign[i] = rng.Intn(p.P)
	}
	st := p.newTimingState(assign)
	for step := 0; step < 500; step++ {
		r := rng.Intn(p.N)
		to := rng.Intn(p.P)
		st.move(r, to)
		if st.feasible() != p.CheckTiming(assign) {
			t.Fatalf("step %d: incremental %v != full %v", step, st.feasible(), p.CheckTiming(assign))
		}
	}
}

func TestBuildProblemValidation(t *testing.T) {
	l := cell.Default()
	d, err := gen.Build("c1355", l)
	if err != nil {
		t.Fatal(err)
	}
	pl, err := place.Place(d, l, place.Options{})
	if err != nil {
		t.Fatal(err)
	}
	tm, err := sta.Analyze(pl, sta.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := BuildProblem(pl, tm, Options{Beta: 0}); err == nil {
		t.Error("beta=0 accepted")
	}
	if _, err := BuildProblem(pl, tm, Options{Beta: 0.05, MaxClusters: -2}); err == nil {
		t.Error("negative cluster cap accepted")
	}
}

func TestVbsOf(t *testing.T) {
	p := problem(t, "c1355", 0.05, 3)
	h, err := p.SolveHeuristic()
	if err != nil {
		t.Fatal(err)
	}
	vbs := p.VbsOf(h)
	if len(vbs) != h.Clusters {
		t.Errorf("VbsOf returned %d voltages for %d clusters", len(vbs), h.Clusters)
	}
	for i := 1; i < len(vbs); i++ {
		if vbs[i] <= vbs[i-1] {
			t.Error("voltages not ascending")
		}
	}
}

func TestCriticalityRanksInvolvedRowsHigher(t *testing.T) {
	p := problem(t, "c5315", 0.05, 3)
	ct := p.RowCriticality()
	maxUninvolved, minInvolvedMax := 0.0, 0.0
	for i := 0; i < p.N; i++ {
		if p.Involved[i] {
			if ct[i] > minInvolvedMax {
				minInvolvedMax = ct[i]
			}
		} else if ct[i] > maxUninvolved {
			maxUninvolved = ct[i]
		}
	}
	if minInvolvedMax <= maxUninvolved {
		t.Errorf("most critical involved row (%f) not above uninvolved rows (%f)",
			minInvolvedMax, maxUninvolved)
	}
}
