package core

import (
	"math/rand"
	"testing"
)

func TestPruneDominatedPreservesFeasibility(t *testing.T) {
	for _, name := range []string{"c6288", "c1355", "c5315"} {
		p := problem(t, name, 0.05, 3)
		// Snapshot the full constraint set for the oracle.
		full := make([]PathConstraint, len(p.Constraints))
		copy(full, p.Constraints)
		checkFull := func(assign []int) bool {
			for k := range full {
				sigma := 0.0
				for _, rc := range full[k].Rows {
					sigma += rc.DeltaPS[assign[rc.Row]]
				}
				if sigma < full[k].ReqPS-feasTolPS {
					return false
				}
			}
			return true
		}

		dropped := p.PruneDominated()
		t.Logf("%-8s: %d constraints, %d dominated dropped", name, len(full), dropped)

		// Random assignments must agree between full and pruned sets.
		rng := rand.New(rand.NewSource(5))
		for trial := 0; trial < 400; trial++ {
			assign := make([]int, p.N)
			for i := range assign {
				assign[i] = rng.Intn(p.P)
			}
			if p.CheckTiming(assign) != checkFull(assign) {
				t.Fatalf("%s trial %d: pruned and full sets disagree", name, trial)
			}
		}

		// The heuristic still produces a solution feasible under the
		// FULL set.
		sol, err := p.SolveHeuristic()
		if err != nil {
			t.Fatal(err)
		}
		if !checkFull(sol.Assign) {
			t.Fatalf("%s: heuristic on pruned set violates a full constraint", name)
		}
	}
}

func TestPruneDominatedHelpsMultiplier(t *testing.T) {
	p := problem(t, "c6288", 0.05, 3)
	before := p.NumConstraints()
	dropped := p.PruneDominated()
	if dropped == 0 {
		t.Skip("no dominated constraints on this build; nothing to measure")
	}
	if p.NumConstraints() != before-dropped {
		t.Fatalf("count bookkeeping wrong: %d - %d != %d", before, dropped, p.NumConstraints())
	}
	// Idempotent.
	if again := p.PruneDominated(); again != 0 {
		t.Errorf("second prune dropped %d more", again)
	}
}

func TestPruneKeepsAllocatorsEquivalentOnTinyInstances(t *testing.T) {
	rng := rand.New(rand.NewSource(123))
	for trial := 0; trial < 6; trial++ {
		p := tinyProblem(t, rng)
		if p.NumConstraints() == 0 {
			continue
		}
		wantFull, feasFull := bruteForce(p)
		p.PruneDominated()
		wantPruned, feasPruned := bruteForce(p)
		if feasFull != feasPruned {
			t.Fatalf("trial %d: feasibility changed by pruning", trial)
		}
		if feasFull && wantFull != wantPruned {
			t.Fatalf("trial %d: optimum changed by pruning: %f vs %f", trial, wantFull, wantPruned)
		}
	}
}
