package core

import (
	"testing"

	"repro/internal/cell"
	"repro/internal/gen"
	"repro/internal/place"
	"repro/internal/sta"
)

// benchTimed generates, places and times a named benchmark.
func benchTimed(b *testing.B, name string) (*place.Placement, *sta.Timing) {
	b.Helper()
	l := cell.Default()
	d, err := gen.Build(name, l)
	if err != nil {
		b.Fatal(err)
	}
	pl, err := place.Place(d, l, place.Options{})
	if err != nil {
		b.Fatal(err)
	}
	tm, err := sta.Analyze(pl, sta.Options{})
	if err != nil {
		b.Fatal(err)
	}
	return pl, tm
}

var benchAllocNames = []string{"c5315", "c6288", "industrial1"}

// BenchmarkBuildProblemSolve is the seed per-solve allocation path: a full
// problem construction plus a heuristic solve for every (beta, C) point.
func BenchmarkBuildProblemSolve(b *testing.B) {
	for _, name := range benchAllocNames {
		b.Run(name, func(b *testing.B) {
			pl, tm := benchTimed(b, name)
			opts := Options{Beta: 0.05, MaxClusters: 3}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				p, err := BuildProblem(pl, tm, opts)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := p.SolveHeuristic(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAllocatorSolveAt is the batched path: shared Allocator, reused
// Instance, scratch-buffer heuristic — the engine variation.TuneOn and the
// experiment grids run on. Repeat solves must stay at 0 allocs/op.
func BenchmarkAllocatorSolveAt(b *testing.B) {
	for _, name := range benchAllocNames {
		b.Run(name, func(b *testing.B) {
			pl, tm := benchTimed(b, name)
			al, err := NewAllocator(pl, tm)
			if err != nil {
				b.Fatal(err)
			}
			opts := Options{Beta: 0.05, MaxClusters: 3}
			_, inst, err := al.SolveAt(opts, nil, nil) // warm the buffers
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := al.SolveAt(opts, nil, inst); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAllocatorMaterialize isolates problem materialization (no
// solve), the direct counterpart of BuildProblem.
func BenchmarkAllocatorMaterialize(b *testing.B) {
	pl, tm := benchTimed(b, "c5315")
	al, err := NewAllocator(pl, tm)
	if err != nil {
		b.Fatal(err)
	}
	opts := Options{Beta: 0.05, MaxClusters: 3}
	inst, err := al.At(opts, nil)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := al.At(opts, inst); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLocalSolver tracks the portfolio solver's cost on the paper's
// in-text design.
func BenchmarkLocalSolver(b *testing.B) {
	pl, tm := benchTimed(b, "c5315")
	al, err := NewAllocator(pl, tm)
	if err != nil {
		b.Fatal(err)
	}
	inst, err := al.At(Options{Beta: 0.05, MaxClusters: 3}, nil)
	if err != nil {
		b.Fatal(err)
	}
	ls := &LocalSolver{Seed: 1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := inst.Solve(ls); err != nil {
			b.Fatal(err)
		}
	}
}
