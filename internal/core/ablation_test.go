package core

import (
	"testing"
)

func TestRefineDownAblation(t *testing.T) {
	// The cleanup sweep must never hurt and should help on at least one
	// benchmark (it is what closes part of the greedy/ILP gap).
	helped := false
	for _, name := range []string{"c1355", "c3540", "c5315", "c7552"} {
		p := problem(t, name, 0.05, 3)
		full, err := p.SolveHeuristic()
		if err != nil {
			t.Fatal(err)
		}
		bare, err := p.SolveHeuristicOpts(HeuristicOptions{SkipRefine: true})
		if err != nil {
			t.Fatal(err)
		}
		if full.ExtraLeakNW > bare.ExtraLeakNW+1e-9 {
			t.Errorf("%s: refineDown increased leakage %.2f -> %.2f",
				name, bare.ExtraLeakNW, full.ExtraLeakNW)
		}
		if full.ExtraLeakNW < bare.ExtraLeakNW-1e-9 {
			helped = true
		}
		t.Logf("%-8s bare=%.1fnW refined=%.1fnW", name, bare.ExtraLeakNW, full.ExtraLeakNW)
	}
	if !helped {
		t.Error("refineDown never improved a solution; sweep is dead code")
	}
}

func TestReconcileAblationRespectsRouting(t *testing.T) {
	// Without the reconcile pass the greedy walk may strand more bias
	// pairs than the layout can route; with it, never.
	for _, name := range []string{"c1355", "c3540", "c5315", "c7552", "adder128"} {
		for _, beta := range []float64{0.05, 0.10} {
			p := problem(t, name, beta, 3)
			sol, err := p.SolveHeuristic()
			if err != nil {
				t.Fatal(err)
			}
			if got := BiasPairs(sol.Assign); got > p.MaxBiasPairs {
				t.Errorf("%s beta=%g: %d bias pairs exceed the routing cap", name, beta, got)
			}
		}
	}
}

func TestRawViolationsCompression(t *testing.T) {
	// Signature merging must compress the multiplier's path explosion
	// substantially (the row abstraction is what keeps the ILP tractable).
	p := problem(t, "c6288", 0.05, 3)
	if p.RawViolations < p.NumConstraints() {
		t.Fatalf("raw %d < merged %d", p.RawViolations, p.NumConstraints())
	}
	t.Logf("c6288: %d violating paths -> %d merged constraints", p.RawViolations, p.NumConstraints())
	ecc := problem(t, "c1355", 0.05, 3)
	t.Logf("c1355: %d violating paths -> %d merged constraints", ecc.RawViolations, ecc.NumConstraints())
}
