// Package core implements the paper's contribution: physically clustered
// forward body biasing at standard-cell row granularity.
//
// Given a placed and timed design, a slowdown coefficient beta (every path
// delay degraded by 1+beta), a body-bias voltage grid, and a maximum cluster
// count C, the allocator partitions the rows into at most C clusters and
// assigns each cluster one bias voltage so that every degraded path meets
// the nominal critical delay Dcrit, at minimum leakage overhead.
//
// Two allocators are provided, mirroring the paper's section 4:
//
//   - an exact ILP (equations 1-5) solved by branch and bound, and
//   - the linear-time two-pass greedy heuristic (figures 4-5): PassOne finds
//     the lowest uniform voltage jopt meeting timing (this is also the
//     "single BB" block-level baseline the paper compares against), PassTwo
//     drops rows, least-timing-critical first, to lower voltages until
//     timing breaks, locking a cluster at each break.
//
// Sign convention: the paper writes the timing constraints as
// sum(a_ijk * x_ij) <= b_k with b_k = Dcrit - p_k(1+beta) (negative for a
// violating path) while describing a_ijk as a positive delay reduction. We
// implement the evident intent: the total reduction on path k must reach
// req_k = p_k(1+beta) - Dcrit > 0. Paths with req_k <= 0 are pruned, which
// matches the paper's constraint counts growing with beta.
package core

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"repro/internal/place"
	"repro/internal/power"
	"repro/internal/sta"
	"repro/internal/tech"
)

// feasTolPS is the timing feasibility tolerance in picoseconds.
const feasTolPS = 1e-6

// RowContrib is one row's per-level delay reduction on one path.
type RowContrib struct {
	// Row is the placement row index.
	Row int
	// DeltaPS[j] is the path-delay reduction (ps) contributed by this
	// row at bias level j (the paper's a_ijk for fixed k).
	DeltaPS []float64
}

// PathConstraint is one timing constraint of the violating-path set.
type PathConstraint struct {
	// ReqPS is the required total delay reduction (ps).
	ReqPS float64
	// Rows lists the contributing rows (rows without cells on the path
	// are absent).
	Rows []RowContrib
	// PathIdx indexes the originating sta path (-1 for merged
	// constraints that kept a tighter requirement).
	PathIdx int
}

// Problem is a fully constructed FBB clustering instance.
type Problem struct {
	Pl   *place.Placement
	Tm   *sta.Timing
	Grid tech.BiasGrid
	// Beta is the slowdown coefficient (0.05 = all paths 5% slower).
	Beta float64
	// MaxClusters is C, the maximum number of distinct bias levels in a
	// solution, counting no-body-bias as a cluster (the paper's layout
	// supports at most 3: NBB plus two routed bias pairs).
	MaxClusters int
	// MaxBiasPairs caps the distinct non-NBB levels: each one needs a
	// (vbsn, vbsp) pair routed on top metal, and the paper's row style
	// can route at most two without growing the die.
	MaxBiasPairs int

	// N is the row count, P the level count.
	N, P int
	// Constraints is the pruned, deduplicated constraint set; its length
	// is the paper's "No.Constr" column.
	Constraints []PathConstraint
	// RawViolations counts violating paths before signature merging
	// (>= len(Constraints)); the gap measures how much the row-level
	// abstraction compresses the path set.
	RawViolations int
	// RowLeakNW[i][j] is the leakage overhead (nW) of row i at level j
	// (the paper's L_ij, expressed as increase over NBB).
	RowLeakNW [][]float64
	// Involved marks rows contributing to at least one constraint.
	Involved []bool

	// rowConsStart/rowConsRefs index, in CSR form, the (constraint,
	// position) pairs each row contributes to, for incremental timing
	// checks: row i's references are rowConsRefs[rowConsStart[i]:
	// rowConsStart[i+1]].
	rowConsStart []int32
	rowConsRefs  []rowConRef
}

type rowConRef struct {
	k   int32 // constraint index
	pos int32 // index into Constraints[k].Rows
}

// Options configure problem construction.
type Options struct {
	// Beta is the slowdown coefficient; must be positive.
	Beta float64
	// MaxClusters is C (default 3, the paper's layout limit).
	MaxClusters int
	// MaxBiasPairs caps distinct non-NBB levels (default 2, the routing
	// limit of section 3.3; raise it for cluster-count sweep studies).
	MaxBiasPairs int
}

// normalize applies the defaults and validates the options; BuildProblem and
// Allocator.At share it so both construction paths accept exactly the same
// inputs.
func (o *Options) normalize() error {
	if o.Beta <= 0 {
		return errors.New("core: beta must be positive")
	}
	if o.MaxClusters == 0 {
		o.MaxClusters = 3
	}
	if o.MaxClusters < 1 {
		return errors.New("core: MaxClusters must be >= 1")
	}
	if o.MaxBiasPairs == 0 {
		o.MaxBiasPairs = 2
	}
	if o.MaxBiasPairs < 1 {
		return errors.New("core: MaxBiasPairs must be >= 1")
	}
	return nil
}

// BuildProblem constructs the clustering instance from a placed, timed
// design: computes the L_ij leakage table, extracts the violating paths
// under beta, groups their cells by row into the a_ijk coefficients, and
// merges duplicate constraints keeping the tightest requirement.
func BuildProblem(pl *place.Placement, tm *sta.Timing, opts Options) (*Problem, error) {
	if err := opts.normalize(); err != nil {
		return nil, err
	}
	grid := pl.Lib.Grid
	p := &Problem{
		Pl:           pl,
		Tm:           tm,
		Grid:         grid,
		Beta:         opts.Beta,
		MaxClusters:  opts.MaxClusters,
		MaxBiasPairs: opts.MaxBiasPairs,
		N:            pl.NumRows,
		P:            grid.NumLevels(),
		RowLeakNW:    power.RowLeakTable(pl),
		Involved:     make([]bool, pl.NumRows),
	}

	// Extract violating paths and their per-row reduction vectors.
	type sigEntry struct{ idx int }
	sigs := map[string]sigEntry{}
	var key strings.Builder
	for pi, path := range tm.Paths {
		req := path.DelayPS*(1+opts.Beta) - tm.DcritPS
		if req <= feasTolPS {
			continue // meets timing even degraded; prune
		}
		p.RawViolations++
		// Group the path's gates by row; delta per level is the sum of
		// the gates' degraded-delay reductions.
		perRow := map[int][]float64{}
		for _, g := range path.Gates {
			row := pl.RowOf[g]
			dv := perRow[row]
			if dv == nil {
				dv = make([]float64, p.P)
				perRow[row] = dv
			}
			c := pl.Design.Gates[g].Cell
			degraded := tm.GateDelayPS[g] * (1 + opts.Beta)
			for j := 0; j < p.P; j++ {
				dv[j] += degraded * (1 - c.DelayFactor[j])
			}
		}
		rows := make([]int, 0, len(perRow))
		for r := range perRow {
			rows = append(rows, r)
		}
		sort.Ints(rows)
		pc := PathConstraint{ReqPS: req, PathIdx: pi}
		key.Reset()
		for _, r := range rows {
			dv := perRow[r]
			pc.Rows = append(pc.Rows, RowContrib{Row: r, DeltaPS: dv})
			// The signature covers every level: constraints may only
			// merge when their whole coefficient vectors agree.
			fmt.Fprintf(&key, "%d:", r)
			for j := 1; j < p.P; j++ {
				fmt.Fprintf(&key, "%.6f,", dv[j])
			}
			key.WriteByte(';')
		}
		// Merge constraints with identical row/delta signatures: only
		// the tightest requirement binds.
		k := key.String()
		if e, ok := sigs[k]; ok {
			if req > p.Constraints[e.idx].ReqPS {
				p.Constraints[e.idx].ReqPS = req
				p.Constraints[e.idx].PathIdx = -1
			}
			continue
		}
		sigs[k] = sigEntry{idx: len(p.Constraints)}
		p.Constraints = append(p.Constraints, pc)
	}

	// Row-to-constraint index and involvement flags.
	p.rowConsStart, p.rowConsRefs = buildRowCons(p.N, p.Constraints, p.Involved, nil, nil)
	return p, nil
}

// buildRowCons constructs the CSR row-to-constraint index and the
// involvement flags, reusing startBuf/refsBuf when they have capacity. The
// involved slice must already be sized N and zeroed.
func buildRowCons(n int, constraints []PathConstraint, involved []bool, startBuf []int32, refsBuf []rowConRef) ([]int32, []rowConRef) {
	start := startBuf
	if cap(start) < n+1 {
		start = make([]int32, n+1)
	}
	start = start[:n+1]
	for i := range start {
		start[i] = 0
	}
	total := 0
	for k := range constraints {
		for _, rc := range constraints[k].Rows {
			involved[rc.Row] = true
			start[rc.Row+1]++
			total++
		}
	}
	for i := 0; i < n; i++ {
		start[i+1] += start[i]
	}
	refs := refsBuf
	if cap(refs) < total {
		refs = make([]rowConRef, total)
	}
	refs = refs[:total]
	// fill using start as a moving cursor, then restore it.
	for k := range constraints {
		for pos, rc := range constraints[k].Rows {
			refs[start[rc.Row]] = rowConRef{k: int32(k), pos: int32(pos)}
			start[rc.Row]++
		}
	}
	for i := n; i > 0; i-- {
		start[i] = start[i-1]
	}
	start[0] = 0
	return start, refs
}

// rowCons returns row i's constraint references.
func (p *Problem) rowCons(i int) []rowConRef {
	return p.rowConsRefs[p.rowConsStart[i]:p.rowConsStart[i+1]]
}

// NumConstraints returns M, the paper's "No.Constr".
func (p *Problem) NumConstraints() int { return len(p.Constraints) }

// CheckTiming reports whether a row-to-level assignment meets every path
// constraint (the paper's Figure 4 routine).
func (p *Problem) CheckTiming(assign []int) bool {
	for k := range p.Constraints {
		c := &p.Constraints[k]
		sigma := 0.0
		for _, rc := range c.Rows {
			sigma += rc.DeltaPS[assign[rc.Row]]
		}
		if sigma < c.ReqPS-feasTolPS {
			return false
		}
	}
	return true
}

// Clusters returns the number of distinct bias levels used by an assignment
// (no-body-bias counts as a cluster when used, per the paper's layout
// accounting).
func Clusters(assign []int) int {
	seen := map[int]struct{}{}
	for _, j := range assign {
		seen[j] = struct{}{}
	}
	return len(seen)
}

// BiasPairs returns the number of distinct non-NBB levels of an assignment,
// i.e. the (vbsn, vbsp) pairs the layout must route.
func BiasPairs(assign []int) int {
	seen := map[int]struct{}{}
	for _, j := range assign {
		if j != 0 {
			seen[j] = struct{}{}
		}
	}
	return len(seen)
}

// Solution is one FBB allocation.
type Solution struct {
	// Assign maps each row to its bias level.
	Assign []int
	// ExtraLeakNW is the leakage overhead spent over the NBB corner.
	ExtraLeakNW float64
	// TotalLeakNW is the absolute design leakage under the assignment
	// (the paper's Table 1 reports this for the single-BB baseline, and
	// savings percentages are relative to it).
	TotalLeakNW float64
	// Clusters is the number of distinct levels used.
	Clusters int
	// Method identifies the allocator ("single-bb", "heuristic", "ilp").
	Method string
	// Proven is true when the ILP proved optimality (always true for
	// single-bb and never for the heuristic).
	Proven bool
}

// Clone returns a deep copy of the solution, detaching it from any scratch
// buffers it may live in (Instance-owned solutions are invalidated by the
// next solve; clone what must outlive it).
func (s *Solution) Clone() *Solution {
	c := *s
	c.Assign = append([]int(nil), s.Assign...)
	return &c
}

// solutionFor packages an assignment.
func (p *Problem) solutionFor(assign []int, method string, proven bool) (*Solution, error) {
	sol := &Solution{}
	if err := p.fillSolution(sol, nil, assign, method, proven); err != nil {
		return nil, err
	}
	return sol, nil
}

// fillSolution populates sol from assign, reusing sol's Assign buffer and,
// when non-nil, levelSeen (len >= P, contents ignored) as cluster-count
// scratch, so a warmed-up caller fills without allocating.
func (p *Problem) fillSolution(sol *Solution, levelSeen []bool, assign []int, method string, proven bool) error {
	extra, err := power.AssignExtraLeakageNW(p.Pl, assign)
	if err != nil {
		return err
	}
	clusters := 0
	if levelSeen != nil {
		seen := levelSeen[:p.P]
		for j := range seen {
			seen[j] = false
		}
		for _, j := range assign {
			if !seen[j] {
				seen[j] = true
				clusters++
			}
		}
	} else {
		clusters = Clusters(assign)
	}
	sol.Assign = append(sol.Assign[:0], assign...)
	sol.ExtraLeakNW = extra
	sol.TotalLeakNW = power.DesignLeakageNW(p.Pl.Design) + extra
	sol.Clusters = clusters
	sol.Method = method
	sol.Proven = proven
	return nil
}

// VbsOf returns the bias voltages (NMOS side) of the clusters used by a
// solution, ascending.
func (p *Problem) VbsOf(s *Solution) []float64 {
	seen := map[int]struct{}{}
	for _, j := range s.Assign {
		seen[j] = struct{}{}
	}
	levels := make([]int, 0, len(seen))
	for j := range seen {
		levels = append(levels, j)
	}
	sort.Ints(levels)
	out := make([]float64, len(levels))
	for i, j := range levels {
		out[i] = p.Grid.Voltage(j)
	}
	return out
}

// Savings returns the percentage of total leakage saved by a solution
// relative to the single-voltage baseline, the paper's headline metric
// (Table 1 reports the baseline as absolute microwatts and the savings
// against that absolute figure, which is why they plateau below ~50%: the
// no-body-bias floor cannot be saved).
func Savings(single, sol *Solution) float64 {
	if single.TotalLeakNW <= 0 {
		return 0
	}
	return 100 * (single.TotalLeakNW - sol.TotalLeakNW) / single.TotalLeakNW
}
