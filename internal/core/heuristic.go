package core

import (
	"errors"
	"fmt"
	"sort"
)

// heurScratch holds every buffer the two-pass heuristic (and the single-BB
// baseline) needs, so repeated solves on one Instance allocate nothing. The
// zero value is valid: buffers grow on first use and are reused afterwards.
// All content is rewritten by each solve; only capacity carries over.
type heurScratch struct {
	assign    []int
	ct        []float64
	order     []int
	sigma     []float64
	levelSeen []bool
	levels    []int
	rows      []int
	sorter    ctSorter
	sol       Solution
	solSingle Solution
}

func growInts(s []int, n int) []int {
	if cap(s) < n {
		return make([]int, n)
	}
	return s[:n]
}

func growFloats(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}

func growBools(s []bool, n int) []bool {
	if cap(s) < n {
		return make([]bool, n)
	}
	return s[:n]
}

// passOneInto is PassOne writing the winning uniform assignment into assign
// (len N): on success assign is uniformly jopt, exactly the starting point
// PassTwo wants.
func (p *Problem) passOneInto(assign []int) (int, error) {
	for j := 0; j < p.P; j++ {
		for i := range assign {
			assign[i] = j
		}
		if p.CheckTiming(assign) {
			return j, nil
		}
	}
	return 0, fmt.Errorf("core: no uniform bias meets timing at beta=%.1f%% "+
		"(design slowed beyond the FBB compensation range)", p.Beta*100)
}

// PassOne finds the lowest uniform bias level meeting timing: assign every
// row to level j for increasing j and check timing (the paper's Figure 5,
// PASSONE). The result is jopt; the corresponding uniform assignment is the
// block-level "single BB" baseline of Table 1.
func (p *Problem) PassOne() (int, error) {
	return p.passOneInto(make([]int, p.N))
}

// SingleBB returns the block-level single-voltage baseline: all rows at jopt.
func (p *Problem) SingleBB() (*Solution, error) {
	var s heurScratch
	sol, err := p.singleBBScratch(&s)
	if err != nil {
		return nil, err
	}
	return sol.Clone(), nil
}

// singleBBScratch is SingleBB on reusable buffers; the returned Solution is
// s.solSingle — a slot separate from the heuristic's, so a baseline and one
// later heuristic solve may coexist — and is invalidated by the next
// singleBBScratch call on the same scratch.
func (p *Problem) singleBBScratch(s *heurScratch) (*Solution, error) {
	s.assign = growInts(s.assign, p.N)
	if _, err := p.passOneInto(s.assign); err != nil {
		return nil, err
	}
	s.levelSeen = growBools(s.levelSeen, p.P)
	if err := p.fillSolution(&s.solSingle, s.levelSeen, s.assign, "single-bb", true); err != nil {
		return nil, err
	}
	return &s.solSingle, nil
}

// RowCriticality returns the paper's timing-criticality coefficient per row:
// ct_i = sum over paths k of Q_ik / slack_k, where Q_ik counts the path's
// cells in row i and the slack is taken under the degraded timing (floored
// at one picosecond so violating paths dominate the ranking).
func (p *Problem) RowCriticality() []float64 {
	return p.rowCriticalityInto(make([]float64, p.N))
}

func (p *Problem) rowCriticalityInto(ct []float64) []float64 {
	const minSlackPS = 1.0
	for i := range ct {
		ct[i] = 0
	}
	for _, path := range p.Tm.Paths {
		slack := p.Tm.DcritPS - path.DelayPS*(1+p.Beta)
		if slack < minSlackPS {
			slack = minSlackPS
		}
		w := 1 / slack
		for _, g := range path.Gates {
			ct[p.Pl.RowOf[g]] += w
		}
	}
	return ct
}

// ctSorter stable-sorts a row order by ascending criticality without the
// closure and reflection allocations of sort.SliceStable (a stable sort's
// output is fully determined by the keys, so swapping the sort
// implementation cannot change the result).
type ctSorter struct {
	order []int
	key   []float64
}

func (s *ctSorter) Len() int           { return len(s.order) }
func (s *ctSorter) Less(a, b int) bool { return s.key[s.order[a]] < s.key[s.order[b]] }
func (s *ctSorter) Swap(a, b int)      { s.order[a], s.order[b] = s.order[b], s.order[a] }

// timingState evaluates constraints incrementally as rows move between
// levels, making each heuristic step O(paths touching the row) instead of
// O(all constraints).
type timingState struct {
	p        *Problem
	assign   []int
	sigma    []float64
	violated int
}

func (p *Problem) newTimingState(assign []int) *timingState {
	st := &timingState{}
	p.initTimingState(st, assign, make([]float64, len(p.Constraints)))
	return st
}

// initTimingState readies st over assign using sigma (len = constraints) as
// the accumulator buffer.
func (p *Problem) initTimingState(st *timingState, assign []int, sigma []float64) {
	st.p = p
	st.assign = assign
	st.sigma = sigma
	st.violated = 0
	for k := range p.Constraints {
		c := &p.Constraints[k]
		st.sigma[k] = 0
		for _, rc := range c.Rows {
			st.sigma[k] += rc.DeltaPS[assign[rc.Row]]
		}
		if st.sigma[k] < c.ReqPS-feasTolPS {
			st.violated++
		}
	}
}

// move reassigns one row and updates the violation count.
func (st *timingState) move(row, to int) {
	from := st.assign[row]
	if from == to {
		return
	}
	st.assign[row] = to
	for _, ref := range st.p.rowCons(row) {
		c := &st.p.Constraints[ref.k]
		rc := &c.Rows[ref.pos]
		before := st.sigma[ref.k]
		after := before - rc.DeltaPS[from] + rc.DeltaPS[to]
		st.sigma[ref.k] = after
		wasOK := before >= c.ReqPS-feasTolPS
		isOK := after >= c.ReqPS-feasTolPS
		switch {
		case wasOK && !isOK:
			st.violated++
		case !wasOK && isOK:
			st.violated--
		}
	}
}

func (st *timingState) feasible() bool { return st.violated == 0 }

// HeuristicOptions toggle the post-passes of the greedy allocator, mainly
// for ablation studies; the zero value enables everything.
type HeuristicOptions struct {
	// SkipReconcile disables the routing-cap enforcement pass.
	SkipReconcile bool
	// SkipRefine disables the final lowering sweep.
	SkipRefine bool
}

// SolveHeuristic runs the two-pass greedy allocator (the paper's Figure 5).
//
// PassTwo interpretation (the published pseudocode reuses indices
// ambiguously): rows are sorted by increasing timing criticality; starting
// with every row at jopt, rows are dropped one at a time to the next lower
// level. The first row whose drop violates timing is reverted, and all rows
// still at the upper level are locked as one cluster. After C-1 lock events
// the remaining rows may only move as a single block (so no new cluster can
// appear). The walk continues level by level until no-body-bias is reached.
// Complexity is O(P*N) row moves, each with an incremental timing check, so
// the runtime is linear in the rows, as the paper claims.
func (p *Problem) SolveHeuristic() (*Solution, error) {
	return p.SolveHeuristicOpts(HeuristicOptions{})
}

// SolveHeuristicOpts is SolveHeuristic with ablation toggles.
func (p *Problem) SolveHeuristicOpts(hopts HeuristicOptions) (*Solution, error) {
	var s heurScratch
	sol, err := p.solveHeuristicScratch(&s, hopts)
	if err != nil {
		return nil, err
	}
	return sol.Clone(), nil
}

// solveHeuristicScratch is the single implementation of the two-pass
// heuristic, running entirely on s's reusable buffers; Problem.SolveHeuristic
// and Instance solves both route here, so they cannot diverge. The returned
// Solution is s.sol, invalidated by the next solve on the same scratch.
func (p *Problem) solveHeuristicScratch(s *heurScratch, hopts HeuristicOptions) (*Solution, error) {
	s.assign = growInts(s.assign, p.N)
	s.levelSeen = growBools(s.levelSeen, p.P)
	assign := s.assign
	jopt, err := p.passOneInto(assign)
	if err != nil {
		return nil, err
	}
	if jopt == 0 {
		// Nothing to compensate; a single NBB cluster.
		if err := p.fillSolution(&s.sol, s.levelSeen, assign, "heuristic", false); err != nil {
			return nil, err
		}
		return &s.sol, nil
	}

	// Rank rows by increasing criticality (least critical dropped first).
	s.ct = growFloats(s.ct, p.N)
	ct := p.rowCriticalityInto(s.ct)
	s.order = growInts(s.order, p.N)
	order := s.order
	for i := range order {
		order[i] = i
	}
	s.sorter.order, s.sorter.key = order, ct
	sort.Stable(&s.sorter)

	s.sigma = growFloats(s.sigma, len(p.Constraints))
	var st timingState
	p.initTimingState(&st, assign, s.sigma)
	if !st.feasible() {
		return nil, errors.New("core: PassOne solution fails incremental check")
	}

	p.walkDown(&st, order, jopt)

	if !st.feasible() {
		return nil, errors.New("core: heuristic produced an infeasible assignment")
	}
	if !hopts.SkipReconcile {
		p.reconcilePairs(&st, assign, s)
	}
	if !hopts.SkipRefine {
		p.refineDown(&st, assign, s)
	}
	if err := p.fillSolution(&s.sol, s.levelSeen, assign, "heuristic", false); err != nil {
		return nil, err
	}
	return &s.sol, nil
}

// walkDown is the PassTwo level walk: rows are dropped in `order` (least
// critical first) one level at a time; the first failing drop per level is
// reverted and locks the remaining rows as a cluster. It truncates order in
// place (the unlocked suffix shrinks as clusters lock).
func (p *Problem) walkDown(st *timingState, order []int, jopt int) {
	unlocked := order
	lockEvents := 0
	for level := jopt; level >= 1 && len(unlocked) > 0; level-- {
		if lockEvents >= p.MaxClusters-1 {
			// Only whole-block moves are allowed now: any split
			// would create a cluster beyond C.
			for _, r := range unlocked {
				st.move(r, level-1)
			}
			if !st.feasible() {
				for _, r := range unlocked {
					st.move(r, level)
				}
				break
			}
			continue
		}
		cut := len(unlocked)
		for idx, r := range unlocked {
			st.move(r, level-1)
			if !st.feasible() {
				st.move(r, level)
				// Rows idx.. are more critical; lock them at
				// this level as one cluster.
				lockEvents++
				cut = idx
				break
			}
		}
		unlocked = unlocked[:cut]
	}
}

// refineDown is a cleanup sweep after the greedy walk: every row retries the
// lowest level already in use that keeps timing feasible. Lowering a row
// strictly reduces leakage, can only remove clusters (levels may empty, none
// appear), and tends to collapse isolated biased rows, which also trims the
// layout's well-separation boundaries. Two sweeps suffice in practice; the
// loop stops at the first sweep with no improvement.
func (p *Problem) refineDown(st *timingState, assign []int, s *heurScratch) {
	s.levelSeen = growBools(s.levelSeen, p.P)
	for sweep := 0; sweep < 4; sweep++ {
		levels := p.levelsInUse(assign, s)
		improved := false
		for r := 0; r < p.N; r++ {
			for _, j := range levels {
				if j >= assign[r] {
					break
				}
				from := assign[r]
				st.move(r, j)
				if st.feasible() {
					improved = true
					break
				}
				st.move(r, from)
			}
		}
		if !improved {
			return
		}
	}
}

// levelsInUse collects the distinct levels of assign, ascending, into s's
// reusable buffers.
func (p *Problem) levelsInUse(assign []int, s *heurScratch) []int {
	s.levelSeen = growBools(s.levelSeen, p.P)
	seen := s.levelSeen
	for j := range seen {
		seen[j] = false
	}
	for _, j := range assign {
		seen[j] = true
	}
	s.levels = s.levels[:0]
	for j := 0; j < p.P; j++ {
		if seen[j] {
			s.levels = append(s.levels, j)
		}
	}
	return s.levels
}

// reconcilePairs enforces the routing cap of section 3.3: at most
// MaxBiasPairs distinct non-NBB levels. When the greedy walk strands an
// extra cluster above NBB, its rows are dropped to NBB if timing allows and
// otherwise promoted to the next higher level in use — always feasible,
// since more bias only adds slack.
func (p *Problem) reconcilePairs(st *timingState, assign []int, s *heurScratch) {
	for {
		levels := p.levelsInUse(assign, s)
		pairs := len(levels)
		if pairs > 0 && levels[0] == 0 {
			pairs--
		}
		if pairs <= p.MaxBiasPairs {
			return
		}
		lowest := levels[0]
		if lowest == 0 {
			lowest = levels[1]
		}
		next := 0
		for _, j := range levels {
			if j > lowest {
				next = j
				break
			}
		}
		// Row by row: drop to NBB when timing allows (free), otherwise
		// promote to the next level in use (small extra leakage).
		s.rows = s.rows[:0]
		for row, j := range assign {
			if j == lowest {
				s.rows = append(s.rows, row)
			}
		}
		for _, r := range s.rows {
			st.move(r, 0)
			if !st.feasible() {
				st.move(r, next)
			}
		}
	}
}
