package core

import (
	"errors"
	"fmt"
	"sort"
)

// PassOne finds the lowest uniform bias level meeting timing: assign every
// row to level j for increasing j and check timing (the paper's Figure 5,
// PASSONE). The result is jopt; the corresponding uniform assignment is the
// block-level "single BB" baseline of Table 1.
func (p *Problem) PassOne() (int, error) {
	assign := make([]int, p.N)
	for j := 0; j < p.P; j++ {
		for i := range assign {
			assign[i] = j
		}
		if p.CheckTiming(assign) {
			return j, nil
		}
	}
	return 0, fmt.Errorf("core: no uniform bias meets timing at beta=%.1f%% "+
		"(design slowed beyond the FBB compensation range)", p.Beta*100)
}

// SingleBB returns the block-level single-voltage baseline: all rows at jopt.
func (p *Problem) SingleBB() (*Solution, error) {
	jopt, err := p.PassOne()
	if err != nil {
		return nil, err
	}
	assign := make([]int, p.N)
	for i := range assign {
		assign[i] = jopt
	}
	return p.solutionFor(assign, "single-bb", true)
}

// RowCriticality returns the paper's timing-criticality coefficient per row:
// ct_i = sum over paths k of Q_ik / slack_k, where Q_ik counts the path's
// cells in row i and the slack is taken under the degraded timing (floored
// at one picosecond so violating paths dominate the ranking).
func (p *Problem) RowCriticality() []float64 {
	const minSlackPS = 1.0
	ct := make([]float64, p.N)
	for _, path := range p.Tm.Paths {
		slack := p.Tm.DcritPS - path.DelayPS*(1+p.Beta)
		if slack < minSlackPS {
			slack = minSlackPS
		}
		w := 1 / slack
		for _, g := range path.Gates {
			ct[p.Pl.RowOf[g]] += w
		}
	}
	return ct
}

// timingState evaluates constraints incrementally as rows move between
// levels, making each heuristic step O(paths touching the row) instead of
// O(all constraints).
type timingState struct {
	p        *Problem
	assign   []int
	sigma    []float64
	violated int
}

func (p *Problem) newTimingState(assign []int) *timingState {
	st := &timingState{p: p, assign: assign, sigma: make([]float64, len(p.Constraints))}
	for k := range p.Constraints {
		c := &p.Constraints[k]
		for _, rc := range c.Rows {
			st.sigma[k] += rc.DeltaPS[assign[rc.Row]]
		}
		if st.sigma[k] < c.ReqPS-feasTolPS {
			st.violated++
		}
	}
	return st
}

// move reassigns one row and updates the violation count.
func (st *timingState) move(row, to int) {
	from := st.assign[row]
	if from == to {
		return
	}
	st.assign[row] = to
	for _, ref := range st.p.rowCons[row] {
		c := &st.p.Constraints[ref.k]
		rc := &c.Rows[ref.pos]
		before := st.sigma[ref.k]
		after := before - rc.DeltaPS[from] + rc.DeltaPS[to]
		st.sigma[ref.k] = after
		wasOK := before >= c.ReqPS-feasTolPS
		isOK := after >= c.ReqPS-feasTolPS
		switch {
		case wasOK && !isOK:
			st.violated++
		case !wasOK && isOK:
			st.violated--
		}
	}
}

func (st *timingState) feasible() bool { return st.violated == 0 }

// HeuristicOptions toggle the post-passes of the greedy allocator, mainly
// for ablation studies; the zero value enables everything.
type HeuristicOptions struct {
	// SkipReconcile disables the routing-cap enforcement pass.
	SkipReconcile bool
	// SkipRefine disables the final lowering sweep.
	SkipRefine bool
}

// SolveHeuristic runs the two-pass greedy allocator (the paper's Figure 5).
//
// PassTwo interpretation (the published pseudocode reuses indices
// ambiguously): rows are sorted by increasing timing criticality; starting
// with every row at jopt, rows are dropped one at a time to the next lower
// level. The first row whose drop violates timing is reverted, and all rows
// still at the upper level are locked as one cluster. After C-1 lock events
// the remaining rows may only move as a single block (so no new cluster can
// appear). The walk continues level by level until no-body-bias is reached.
// Complexity is O(P*N) row moves, each with an incremental timing check, so
// the runtime is linear in the rows, as the paper claims.
func (p *Problem) SolveHeuristic() (*Solution, error) {
	return p.SolveHeuristicOpts(HeuristicOptions{})
}

// SolveHeuristicOpts is SolveHeuristic with ablation toggles.
func (p *Problem) SolveHeuristicOpts(hopts HeuristicOptions) (*Solution, error) {
	jopt, err := p.PassOne()
	if err != nil {
		return nil, err
	}
	assign := make([]int, p.N)
	for i := range assign {
		assign[i] = jopt
	}
	if jopt == 0 {
		// Nothing to compensate; a single NBB cluster.
		return p.solutionFor(assign, "heuristic", false)
	}

	// Rank rows by increasing criticality (least critical dropped first).
	ct := p.RowCriticality()
	order := make([]int, p.N)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return ct[order[a]] < ct[order[b]] })

	st := p.newTimingState(assign)
	if !st.feasible() {
		return nil, errors.New("core: PassOne solution fails incremental check")
	}

	unlocked := order
	lockEvents := 0
	for level := jopt; level >= 1 && len(unlocked) > 0; level-- {
		if lockEvents >= p.MaxClusters-1 {
			// Only whole-block moves are allowed now: any split
			// would create a cluster beyond C.
			for _, r := range unlocked {
				st.move(r, level-1)
			}
			if !st.feasible() {
				for _, r := range unlocked {
					st.move(r, level)
				}
				break
			}
			continue
		}
		var moved []int
		lockedHere := false
		for idx, r := range unlocked {
			st.move(r, level-1)
			if !st.feasible() {
				st.move(r, level)
				// Rows idx.. are more critical; lock them at
				// this level as one cluster.
				lockEvents++
				lockedHere = true
				_ = idx
				break
			}
			moved = append(moved, r)
		}
		unlocked = moved
		_ = lockedHere
	}

	if !st.feasible() {
		return nil, errors.New("core: heuristic produced an infeasible assignment")
	}
	if !hopts.SkipReconcile {
		p.reconcilePairs(st, assign)
	}
	if !hopts.SkipRefine {
		p.refineDown(st, assign)
	}
	return p.solutionFor(assign, "heuristic", false)
}

// refineDown is a cleanup sweep after the greedy walk: every row retries the
// lowest level already in use that keeps timing feasible. Lowering a row
// strictly reduces leakage, can only remove clusters (levels may empty, none
// appear), and tends to collapse isolated biased rows, which also trims the
// layout's well-separation boundaries. Two sweeps suffice in practice; the
// loop stops at the first sweep with no improvement.
func (p *Problem) refineDown(st *timingState, assign []int) {
	for sweep := 0; sweep < 4; sweep++ {
		inUse := map[int]struct{}{}
		for _, j := range assign {
			inUse[j] = struct{}{}
		}
		levels := make([]int, 0, len(inUse))
		for j := range inUse {
			levels = append(levels, j)
		}
		sort.Ints(levels)
		improved := false
		for r := 0; r < p.N; r++ {
			for _, j := range levels {
				if j >= assign[r] {
					break
				}
				from := assign[r]
				st.move(r, j)
				if st.feasible() {
					improved = true
					break
				}
				st.move(r, from)
			}
		}
		if !improved {
			return
		}
	}
}

// reconcilePairs enforces the routing cap of section 3.3: at most
// MaxBiasPairs distinct non-NBB levels. When the greedy walk strands an
// extra cluster above NBB, its rows are dropped to NBB if timing allows and
// otherwise promoted to the next higher level in use — always feasible,
// since more bias only adds slack.
func (p *Problem) reconcilePairs(st *timingState, assign []int) {
	for {
		levels := map[int][]int{}
		for row, j := range assign {
			if j != 0 {
				levels[j] = append(levels[j], row)
			}
		}
		if len(levels) <= p.MaxBiasPairs {
			return
		}
		lowest := -1
		for j := range levels {
			if lowest < 0 || j < lowest {
				lowest = j
			}
		}
		rows := levels[lowest]
		next := 0
		for j := range levels {
			if j > lowest && (next == 0 || j < next) {
				next = j
			}
		}
		// Row by row: drop to NBB when timing allows (free), otherwise
		// promote to the next level in use (small extra leakage).
		for _, r := range rows {
			st.move(r, 0)
			if !st.feasible() {
				st.move(r, next)
			}
		}
	}
}
