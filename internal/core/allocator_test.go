package core

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/cell"
	"repro/internal/netlist"
	"repro/internal/place"
	"repro/internal/sta"
	"repro/internal/tech"
)

// randomTimed builds and places a random combinational DAG on lib
// deterministically from seed, returning the placement and its nominal
// timing.
func randomTimed(tb testing.TB, lib *cell.Library, seed int64) (*place.Placement, *sta.Timing) {
	tb.Helper()
	rng := rand.New(rand.NewSource(seed))
	b := netlist.NewBuilder("rand", lib)
	nPI := 3 + rng.Intn(4)
	pool := make([]netlist.Signal, 0, 160)
	for i := 0; i < nPI; i++ {
		pool = append(pool, b.PI("p"+string(rune('0'+i))))
	}
	nG := 30 + rng.Intn(90)
	for i := 0; i < nG; i++ {
		x := pool[rng.Intn(len(pool))]
		y := pool[rng.Intn(len(pool))]
		var s netlist.Signal
		switch rng.Intn(5) {
		case 0:
			s = b.Nand(x, y)
		case 1:
			s = b.Nor(x, y)
		case 2:
			s = b.And(x, y)
		case 3:
			s = b.DFF(x)
		default:
			s = b.Not(x)
		}
		pool = append(pool, s)
	}
	for i := nPI; i < len(pool); i += 3 {
		b.Output("o"+string(rune('a'+i%26))+string(rune('0'+i/26%10)), pool[i])
	}
	d, err := b.Build()
	if err != nil {
		tb.Fatal(err)
	}
	pl, err := place.Place(d, lib, place.Options{ForceRows: 3 + rng.Intn(5)})
	if err != nil {
		tb.Fatal(err)
	}
	tm, err := sta.Analyze(pl, sta.Options{})
	if err != nil {
		tb.Fatal(err)
	}
	return pl, tm
}

// requireProblemsEqual asserts the materialized problem matches a fresh
// BuildProblem bit for bit: same constraints, same merge decisions, same
// requirement values, same indices. Any drift is a real divergence — both
// sides compute the same float operations in the same order.
func requireProblemsEqual(tb testing.TB, want, got *Problem, label string) {
	tb.Helper()
	if want.Beta != got.Beta || want.MaxClusters != got.MaxClusters ||
		want.MaxBiasPairs != got.MaxBiasPairs || want.N != got.N || want.P != got.P {
		tb.Fatalf("%s: header mismatch: want (%v %d %d %d %d) got (%v %d %d %d %d)", label,
			want.Beta, want.MaxClusters, want.MaxBiasPairs, want.N, want.P,
			got.Beta, got.MaxClusters, got.MaxBiasPairs, got.N, got.P)
	}
	if want.RawViolations != got.RawViolations {
		tb.Fatalf("%s: RawViolations %d, want %d", label, got.RawViolations, want.RawViolations)
	}
	if len(want.Constraints) != len(got.Constraints) {
		tb.Fatalf("%s: %d constraints, want %d", label, len(got.Constraints), len(want.Constraints))
	}
	for k := range want.Constraints {
		wc, gc := &want.Constraints[k], &got.Constraints[k]
		if wc.ReqPS != gc.ReqPS || wc.PathIdx != gc.PathIdx {
			tb.Fatalf("%s: constraint %d (req, path) = (%v, %d), want (%v, %d)",
				label, k, gc.ReqPS, gc.PathIdx, wc.ReqPS, wc.PathIdx)
		}
		if len(wc.Rows) != len(gc.Rows) {
			tb.Fatalf("%s: constraint %d has %d rows, want %d", label, k, len(gc.Rows), len(wc.Rows))
		}
		for i := range wc.Rows {
			wr, gr := &wc.Rows[i], &gc.Rows[i]
			if wr.Row != gr.Row {
				tb.Fatalf("%s: constraint %d row %d = %d, want %d", label, k, i, gr.Row, wr.Row)
			}
			for j := range wr.DeltaPS {
				if wr.DeltaPS[j] != gr.DeltaPS[j] {
					tb.Fatalf("%s: constraint %d row %d delta[%d] = %v, want %v",
						label, k, i, j, gr.DeltaPS[j], wr.DeltaPS[j])
				}
			}
		}
	}
	for i := range want.Involved {
		if want.Involved[i] != got.Involved[i] {
			tb.Fatalf("%s: Involved[%d] = %v, want %v", label, i, got.Involved[i], want.Involved[i])
		}
	}
	for i := range want.RowLeakNW {
		for j := range want.RowLeakNW[i] {
			if want.RowLeakNW[i][j] != got.RowLeakNW[i][j] {
				tb.Fatalf("%s: RowLeakNW[%d][%d] = %v, want %v",
					label, i, j, got.RowLeakNW[i][j], want.RowLeakNW[i][j])
			}
		}
	}
	for i := 0; i <= want.N; i++ {
		if want.rowConsStart[i] != got.rowConsStart[i] {
			tb.Fatalf("%s: rowConsStart[%d] = %d, want %d",
				label, i, got.rowConsStart[i], want.rowConsStart[i])
		}
	}
	for i := range want.rowConsRefs {
		if want.rowConsRefs[i] != got.rowConsRefs[i] {
			tb.Fatalf("%s: rowConsRefs[%d] = %+v, want %+v",
				label, i, got.rowConsRefs[i], want.rowConsRefs[i])
		}
	}
}

// requireSolutionsEqual asserts two solutions are identical in every field,
// exact to the bit.
func requireSolutionsEqual(tb testing.TB, want, got *Solution, label string) {
	tb.Helper()
	if want == nil || got == nil {
		if want != got {
			tb.Fatalf("%s: solution presence diverged (want %v, got %v)", label, want != nil, got != nil)
		}
		return
	}
	if want.ExtraLeakNW != got.ExtraLeakNW || want.TotalLeakNW != got.TotalLeakNW ||
		want.Clusters != got.Clusters || want.Method != got.Method || want.Proven != got.Proven {
		tb.Fatalf("%s: solution diverged:\nwant %+v\ngot  %+v", label, want, got)
	}
	if len(want.Assign) != len(got.Assign) {
		tb.Fatalf("%s: assignment length %d, want %d", label, len(got.Assign), len(want.Assign))
	}
	for i := range want.Assign {
		if want.Assign[i] != got.Assign[i] {
			tb.Fatalf("%s: assign[%d] = %d, want %d", label, i, got.Assign[i], want.Assign[i])
		}
	}
}

// randomOpts draws a random (beta, caps) point.
func randomOpts(rng *rand.Rand) Options {
	c := 2 + rng.Intn(3)
	pairs := 0 // default 2
	if rng.Intn(2) == 0 {
		pairs = 1 + rng.Intn(c)
	}
	return Options{
		Beta:         0.02 + rng.Float64()*0.13,
		MaxClusters:  c,
		MaxBiasPairs: pairs,
	}
}

// TestAllocatorMatchesBuildProblem is the differential harness of the
// batched allocation path: across random placements and random (beta, C,
// pairs) points, one dirty, continually reused Instance must materialize
// problems bit-identical to fresh BuildProblem calls and solve them to
// bit-identical heuristic and single-BB solutions.
func TestAllocatorMatchesBuildProblem(t *testing.T) {
	lib := cell.Default()
	rng := rand.New(rand.NewSource(17))
	inst := (*Instance)(nil) // deliberately reused — and dirtied — across everything
	for trial := 0; trial < 12; trial++ {
		pl, tm := randomTimed(t, lib, int64(trial))
		al, err := NewAllocator(pl, tm)
		if err != nil {
			t.Fatal(err)
		}
		for round := 0; round < 4; round++ {
			opts := randomOpts(rng)
			want, err := BuildProblem(pl, tm, opts)
			if err != nil {
				t.Fatal(err)
			}
			inst, err = al.At(opts, inst)
			if err != nil {
				t.Fatal(err)
			}
			requireProblemsEqual(t, want, inst.Prob, "materialize")

			wantH, errW := want.SolveHeuristic()
			gotH, errG := inst.Solve(nil)
			if (errW == nil) != (errG == nil) {
				t.Fatalf("heuristic error diverged: %v vs %v", errW, errG)
			}
			if errW == nil {
				requireSolutionsEqual(t, wantH, gotH, "heuristic")
			}

			wantS, errW := want.SingleBB()
			gotS, errG := inst.SingleBB()
			if (errW == nil) != (errG == nil) {
				t.Fatalf("single-BB error diverged: %v vs %v", errW, errG)
			}
			if errW == nil {
				requireSolutionsEqual(t, wantS, gotS, "single-bb")
			}
		}
	}
}

// TestAllocatorMatchesBuildProblemILP runs the differential harness through
// the exact allocator on small coarse-grid instances (where branch and
// bound proves optimality quickly): warm-started from each side's own
// heuristic, the two ILP paths must agree bit for bit.
func TestAllocatorMatchesBuildProblemILP(t *testing.T) {
	coarse, err := cell.NewLibrary(tech.Default45nm(), tech.BiasGrid{StepV: 0.25, MaxV: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	var inst *Instance
	checked := 0
	for trial := 0; trial < 8 && checked < 4; trial++ {
		pl, tm := randomTimed(t, coarse, int64(200+trial))
		al, err := NewAllocator(pl, tm)
		if err != nil {
			t.Fatal(err)
		}
		opts := Options{Beta: 0.03 + rng.Float64()*0.07, MaxClusters: 2 + rng.Intn(2)}
		want, err := BuildProblem(pl, tm, opts)
		if err != nil {
			t.Fatal(err)
		}
		if want.NumConstraints() == 0 {
			continue
		}
		inst, err = al.At(opts, inst)
		if err != nil {
			t.Fatal(err)
		}
		wantH, err := want.SolveHeuristic()
		if err != nil {
			continue // beyond compensation range; ILP infeasible too
		}
		wantILP, wantRes, err := want.SolveILP(ILPOptions{WarmStart: wantH})
		if err != nil {
			t.Fatal(err)
		}
		gotILP, err := inst.Solve(&ILPSolver{})
		if err != nil {
			t.Fatal(err)
		}
		requireSolutionsEqual(t, wantILP, gotILP, "ilp")
		if inst.ILPResult == nil || inst.ILPResult.Status != wantRes.Status ||
			inst.ILPResult.Nodes != wantRes.Nodes {
			t.Fatalf("ILP result diverged: %+v vs %+v", inst.ILPResult, wantRes)
		}
		checked++
	}
	if checked == 0 {
		t.Error("no instance exercised the ILP differential")
	}
}

// TestAllocatorValidation pins the error contract of the batched path.
func TestAllocatorValidation(t *testing.T) {
	lib := cell.Default()
	pl, tm := randomTimed(t, lib, 1)
	if _, err := NewAllocator(nil, tm); err == nil {
		t.Error("nil placement accepted")
	}
	pl2, _ := randomTimed(t, lib, 2)
	if _, err := NewAllocator(pl2, tm); err == nil {
		t.Error("foreign timing accepted")
	}
	al, err := NewAllocator(pl, tm)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := al.At(Options{Beta: -1}, nil); err == nil {
		t.Error("negative beta accepted")
	}
	if _, err := al.At(Options{Beta: 0.05, MaxClusters: -1}, nil); err == nil {
		t.Error("negative MaxClusters accepted")
	}
	if _, err := al.At(Options{}, nil); err == nil {
		t.Error("zero beta accepted")
	}
	// SolveAt with an unknown-solver lookup is the caller's job; a nil
	// solver must mean the heuristic.
	sol, _, err := al.SolveAt(Options{Beta: 0.05}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Method != "heuristic" {
		t.Errorf("nil solver ran %q, want heuristic", sol.Method)
	}
}

// TestSolverRegistry pins the registry contract.
func TestSolverRegistry(t *testing.T) {
	names := SolverNames()
	for _, want := range []string{"heuristic", "ilp", "local"} {
		found := false
		for _, n := range names {
			if n == want {
				found = true
			}
		}
		if !found {
			t.Errorf("registry is missing %q (have %v)", want, names)
		}
	}
	for _, name := range names {
		s, err := NewNamedSolver(name)
		if err != nil {
			t.Fatal(err)
		}
		if s.Name() != name {
			t.Errorf("solver %q reports Name()=%q", name, s.Name())
		}
	}
	if _, err := NewNamedSolver("no-such-solver"); err == nil {
		t.Error("unknown solver accepted")
	} else if !strings.Contains(err.Error(), "no-such-solver") {
		t.Errorf("unhelpful unknown-solver error: %v", err)
	}
}

// TestLocalSolverInvariants: the portfolio solver must return feasible
// allocations within the caps, never worse than the single-voltage
// baseline, deterministically.
func TestLocalSolverInvariants(t *testing.T) {
	lib := cell.Default()
	rng := rand.New(rand.NewSource(23))
	var inst *Instance
	exercised := 0
	for trial := 0; trial < 8; trial++ {
		pl, tm := randomTimed(t, lib, int64(100+trial))
		al, err := NewAllocator(pl, tm)
		if err != nil {
			t.Fatal(err)
		}
		opts := randomOpts(rng)
		var errAt error
		inst, errAt = al.At(opts, inst)
		if errAt != nil {
			t.Fatal(errAt)
		}
		if inst.Prob.NumConstraints() == 0 {
			continue
		}
		single, err := inst.SingleBB()
		if err != nil {
			continue // beyond the compensation range
		}
		singleExtra := single.ExtraLeakNW
		ls := &LocalSolver{Seed: 42}
		sol, err := inst.Solve(ls)
		if err != nil {
			t.Fatalf("trial %d: local solver failed on feasible instance: %v", trial, err)
		}
		exercised++
		if !inst.Prob.CheckTiming(sol.Assign) {
			t.Fatalf("trial %d: local solution violates timing", trial)
		}
		if sol.Clusters > opts.MaxClusters {
			t.Fatalf("trial %d: %d clusters exceed C=%d", trial, sol.Clusters, opts.MaxClusters)
		}
		if pairs := BiasPairs(sol.Assign); pairs > inst.Prob.MaxBiasPairs {
			t.Fatalf("trial %d: %d bias pairs exceed cap %d", trial, pairs, inst.Prob.MaxBiasPairs)
		}
		if sol.ExtraLeakNW > singleExtra+1e-9 {
			t.Fatalf("trial %d: local leakage %f above single BB %f",
				trial, sol.ExtraLeakNW, singleExtra)
		}
		again, err := inst.Solve(&LocalSolver{Seed: 42})
		if err != nil {
			t.Fatal(err)
		}
		requireSolutionsEqual(t, sol, again, "local determinism")
		other, err := inst.Solve(&LocalSolver{Seed: 43})
		if err != nil {
			t.Fatal(err)
		}
		if !inst.Prob.CheckTiming(other.Assign) {
			t.Fatalf("trial %d: reseeded local solution violates timing", trial)
		}
	}
	if exercised == 0 {
		t.Error("no instance exercised the local solver")
	}
}

// FuzzAllocatorSolveAt fuzzes the differential property: for any (design
// seed, option seed), a dirty reused Instance must materialize and solve
// bit-identically to a fresh BuildProblem + SolveHeuristic.
func FuzzAllocatorSolveAt(f *testing.F) {
	f.Add(int64(1), int64(1))
	f.Add(int64(2), int64(7))
	f.Add(int64(42), int64(99))
	f.Add(int64(-5), int64(0))
	f.Add(int64(12345), int64(-8))
	lib := cell.Default()
	f.Fuzz(func(t *testing.T, designSeed, optSeed int64) {
		pl, tm := randomTimed(t, lib, designSeed)
		al, err := NewAllocator(pl, tm)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(optSeed))
		var inst *Instance
		for round := 0; round < 3; round++ {
			opts := randomOpts(rng)
			if math.IsNaN(opts.Beta) {
				t.Skip("degenerate beta")
			}
			want, err := BuildProblem(pl, tm, opts)
			if err != nil {
				t.Fatal(err)
			}
			inst, err = al.At(opts, inst)
			if err != nil {
				t.Fatal(err)
			}
			requireProblemsEqual(t, want, inst.Prob, "fuzz materialize")
			wantH, errW := want.SolveHeuristic()
			gotH, errG := inst.Solve(nil)
			if (errW == nil) != (errG == nil) {
				t.Fatalf("fuzz heuristic error diverged: %v vs %v", errW, errG)
			}
			if errW == nil {
				requireSolutionsEqual(t, wantH, gotH, "fuzz heuristic")
			}
		}
	})
}
