package core

import (
	"errors"
	"math/rand"
	"sort"
)

// LocalSolver is the quality-vs-speed middle ground the paper could not
// explore between its two allocators: a small portfolio of
// criticality-seeded greedy walks (the heuristic's PassTwo under randomly
// perturbed row rankings) each followed by randomized repair sweeps that
// trade a row's drop against another row's promotion whenever the exchange
// cuts leakage, keeping the cheapest feasible allocation found. Every
// restart derives its RNG from Seed and the restart index alone, so results
// are deterministic and independent of scheduling or parallelism.
type LocalSolver struct {
	// Seed is the base seed of the per-restart RNG streams (any fixed
	// value is fine; zero is valid and distinct from one).
	Seed int64
	// Restarts is the number of greedy walks (default 4). Restart 0
	// replays the unperturbed criticality ranking, so the portfolio never
	// starts worse than the plain heuristic's walk.
	Restarts int
	// Sweeps bounds the repair sweeps per restart (default 3); a sweep
	// without an accepted move ends the search early.
	Sweeps int
}

// Name implements Solver.
func (*LocalSolver) Name() string { return "local" }

// Solve implements Solver.
func (s *LocalSolver) Solve(inst *Instance) (*Solution, error) {
	return s.solveProblem(inst.Prob)
}

// restartSeed mixes the base seed and restart index through the splitmix64
// finalizer, decorrelating the per-restart streams.
func restartSeed(seed int64, restart int) int64 {
	z := uint64(seed) + uint64(restart)*0x9e3779b97f4a7c15
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return int64(z)
}

func (s *LocalSolver) solveProblem(p *Problem) (*Solution, error) {
	restarts := s.Restarts
	if restarts <= 0 {
		restarts = 4
	}
	sweeps := s.Sweeps
	if sweeps <= 0 {
		sweeps = 3
	}

	assign := make([]int, p.N)
	jopt, err := p.passOneInto(assign)
	if err != nil {
		return nil, err
	}
	if jopt == 0 {
		return p.solutionFor(assign, "local", false)
	}

	ct := p.RowCriticality()
	key := make([]float64, p.N)
	order := make([]int, p.N)
	sigma := make([]float64, len(p.Constraints))
	var scratch heurScratch
	var best *Solution
	for r := 0; r < restarts; r++ {
		rng := rand.New(rand.NewSource(restartSeed(s.Seed, r)))
		for i := range key {
			if r == 0 {
				key[i] = ct[i]
			} else {
				key[i] = ct[i] * (0.5 + rng.Float64())
			}
		}
		for i := range order {
			order[i] = i
		}
		sorter := ctSorter{order: order, key: key}
		sort.Stable(&sorter)

		for i := range assign {
			assign[i] = jopt
		}
		var st timingState
		p.initTimingState(&st, assign, sigma)
		if !st.feasible() {
			return nil, errors.New("core: PassOne solution fails incremental check")
		}
		p.walkDown(&st, order, jopt)
		p.reconcilePairs(&st, assign, &scratch)
		s.repair(p, &st, assign, rng, sweeps)
		p.refineDown(&st, assign, &scratch)
		if !st.feasible() {
			continue // defensive; the passes above preserve feasibility
		}
		sol, err := p.solutionFor(assign, "local", false)
		if err != nil {
			return nil, err
		}
		if best == nil || sol.ExtraLeakNW < best.ExtraLeakNW {
			best = sol
		}
	}
	if best == nil {
		return nil, errors.New("core: local search found no feasible allocation")
	}
	return best, nil
}

// repair runs randomized exchange sweeps on a feasible assignment: drop a
// random row to a lower level already in use and, when that breaks timing,
// promote the most helpful row of a violated constraint to the vacated
// level — accepting the pair only when it is feasible and strictly cheaper.
// Rows only ever move between levels already in use, so the cluster and
// bias-pair caps can never be exceeded (levels may empty; none appear).
func (s *LocalSolver) repair(p *Problem, st *timingState, assign []int, rng *rand.Rand, sweeps int) {
	if p.N == 0 || p.P < 2 {
		return
	}
	used := make([]int, p.P)
	for _, j := range assign {
		used[j]++
	}
	viol := make([]int, 0, len(p.Constraints))
	tries := 2 * p.N
	for sw := 0; sw < sweeps; sw++ {
		improved := false
		for t := 0; t < tries; t++ {
			r1 := rng.Intn(p.N)
			from := assign[r1]
			if from == 0 {
				continue
			}
			// Pick a random lower level in use.
			lower := 0
			for j := 0; j < from; j++ {
				if used[j] > 0 {
					lower++
				}
			}
			if lower == 0 {
				continue
			}
			pick := rng.Intn(lower)
			to := -1
			for j := 0; j < from; j++ {
				if used[j] > 0 {
					if pick == 0 {
						to = j
						break
					}
					pick--
				}
			}
			gain := p.RowLeakNW[r1][from] - p.RowLeakNW[r1][to]
			st.move(r1, to)
			if st.feasible() {
				used[from]--
				used[to]++
				improved = true
				continue
			}
			// Repair: promote the row that buys the most slack on a
			// violated constraint up to the vacated level.
			viol = viol[:0]
			for k := range p.Constraints {
				if st.sigma[k] < p.Constraints[k].ReqPS-feasTolPS {
					viol = append(viol, k)
				}
			}
			r2 := -1
			if len(viol) > 0 {
				c := &p.Constraints[viol[rng.Intn(len(viol))]]
				bestDelta := 0.0
				for i := range c.Rows {
					rc := &c.Rows[i]
					if rc.Row == r1 || assign[rc.Row] >= from {
						continue
					}
					if d := rc.DeltaPS[from] - rc.DeltaPS[assign[rc.Row]]; d > bestDelta {
						bestDelta = d
						r2 = rc.Row
					}
				}
			}
			if r2 >= 0 {
				r2from := assign[r2]
				cost := p.RowLeakNW[r2][from] - p.RowLeakNW[r2][r2from]
				st.move(r2, from)
				if st.feasible() && cost < gain {
					// r1: from -> to; r2: r2from -> from.
					used[to]++
					used[r2from]--
					improved = true
					continue
				}
				st.move(r2, r2from)
			}
			st.move(r1, from)
		}
		if !improved {
			return
		}
	}
}
