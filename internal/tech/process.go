// Package tech models a 45nm-class CMOS technology with adaptive body bias.
//
// The model follows the device behaviour reported in the paper's Figure 1 for
// a 45nm SOI process: forward body bias (FBB) lowers the threshold voltage
// through the body effect, which speeds gates up roughly linearly in vbs while
// growing leakage exponentially. Beyond vbs = 0.5 V the forward source-body
// junction turns on and leakage explodes, which is why the usable grid stops
// at 0.5 V.
//
// The default process is calibrated analytically so that an inverter at
// vbs = 0.5 V shows a 21% speed-up and a 12.74x total leakage increase over
// no body bias (NBB), the two anchor points the paper reports.
package tech

import (
	"fmt"
	"math"
)

// Physical constants.
const (
	// BoltzmannEV is Boltzmann's constant in eV/K, so that the thermal
	// voltage kT/q in volts is BoltzmannEV * T.
	BoltzmannEV = 8.617333262e-5
	// RoomTempK is the nominal characterization temperature.
	RoomTempK = 300.0
)

// Calibration anchor points from the paper's Figure 1 (45nm SOI inverter).
const (
	// CalVbs is the body bias voltage at which the anchors are specified.
	CalVbs = 0.5
	// CalSpeedup is the delay speed-up at CalVbs relative to NBB.
	CalSpeedup = 0.21
	// CalLeakFactor is the total leakage increase at CalVbs relative to NBB.
	CalLeakFactor = 12.74
	// CalJunctionShare is the portion of CalLeakFactor contributed by the
	// forward source-body junction at CalVbs. It is small at 0.5 V but
	// grows so fast above it that it bounds the usable bias range.
	CalJunctionShare = 0.44
)

// Process holds the parameters of a body-biasable CMOS process. All factors
// produced by its methods are relative to the nominal corner: vbs = 0,
// zero threshold shift, T = 300 K.
type Process struct {
	Name string

	// VddV is the supply voltage in volts. The paper sweeps vbs up to
	// "0.95V (Vdd)", so the default process uses 0.95 V.
	VddV float64
	// Vth0V is the nominal threshold voltage magnitude at zero body bias.
	Vth0V float64
	// Alpha is the velocity-saturation exponent of the alpha-power law
	// delay model: delay ~ Vdd / (Vdd - Vth)^Alpha.
	Alpha float64
	// GammaBB is the body-effect coefficient in V^0.5:
	// Vth(vbs) = Vth0 + GammaBB*(sqrt(PhiS - vbs) - sqrt(PhiS)).
	GammaBB float64
	// PhiSV is the surface potential 2*phiF in volts.
	PhiSV float64
	// SubIdeality is the subthreshold slope ideality factor n, so leakage
	// scales as exp(-dVth / (n * kT/q)).
	SubIdeality float64
	// GateLeakShare is the fraction of nominal leakage due to gate
	// tunnelling, which does not respond to body bias.
	GateLeakShare float64
	// JunctionScale is the source-body diode saturation current relative
	// to the total nominal leakage.
	JunctionScale float64
	// JunctionIdeality is the diode ideality factor of the source-body
	// junction.
	JunctionIdeality float64
	// DIBLOverdriveV is the average overdrive contribution of
	// drain-induced barrier lowering along a switching trajectory
	// (eta * <Vds>). It enlarges the effective overdrive and therefore
	// dilutes the delay sensitivity to threshold shifts, matching what
	// the transient simulator observes.
	DIBLOverdriveV float64

	// TempK is the operating temperature in kelvin.
	TempK float64
	// TempDelayCoeff is the relative delay increase per kelvin above 300 K
	// (mobility degradation).
	TempDelayCoeff float64
	// LeakDoubleK is the temperature increase in kelvin that doubles
	// subthreshold leakage.
	LeakDoubleK float64

	// MaxSafeVbs is the maximum forward body bias before the source-body
	// junction current makes FBB counterproductive (0.5 V in the paper).
	MaxSafeVbs float64
}

// Default45nm returns the 45nm-class process used throughout the library,
// calibrated in closed form to the paper's Figure 1 anchor points.
func Default45nm() *Process {
	p := &Process{
		Name:             "generic45soi",
		VddV:             0.95,
		Vth0V:            0.35,
		Alpha:            1.3,
		PhiSV:            0.85,
		GateLeakShare:    0.15,
		JunctionIdeality: 1.0,
		DIBLOverdriveV:   0.057, // eta=0.08 times <Vds> ~ 0.75*Vdd
		TempK:            RoomTempK,
		TempDelayCoeff:   0.0008,
		LeakDoubleK:      25.0,
		MaxSafeVbs:       0.5,
	}
	p.calibrate()
	return p
}

// calibrate solves GammaBB, SubIdeality and JunctionScale so the process hits
// the Figure 1 anchors exactly.
func (p *Process) calibrate() {
	vt := BoltzmannEV * RoomTempK
	// Threshold shift needed at CalVbs for the target speed-up under the
	// alpha-power law, including the DIBL overdrive boost.
	overdrive := p.VddV - p.Vth0V + p.DIBLOverdriveV
	dvth := overdrive * (math.Pow(1+CalSpeedup, 1/p.Alpha) - 1)
	p.GammaBB = dvth / (math.Sqrt(p.PhiSV) - math.Sqrt(p.PhiSV-CalVbs))
	// Subthreshold ideality so that the bias-responsive share of leakage
	// reaches the target total minus the gate and junction contributions.
	subFactor := (CalLeakFactor - p.GateLeakShare - CalJunctionShare) / (1 - p.GateLeakShare)
	p.SubIdeality = dvth / (vt * math.Log(subFactor))
	// Diode scale so the junction contributes its share at CalVbs.
	p.JunctionScale = CalJunctionShare / (math.Exp(CalVbs/(p.JunctionIdeality*vt)) - 1)
}

// ThermalVoltage returns kT/q in volts at the process temperature.
func (p *Process) ThermalVoltage() float64 { return BoltzmannEV * p.TempK }

// VthShift returns the threshold voltage change (in volts) caused by a body
// bias of vbs volts. Forward bias (vbs > 0) gives a negative shift; reverse
// bias (vbs < 0) a positive one. The square-root depletion model breaks down
// as vbs approaches the surface potential, so above PhiS-0.1 the curve is
// continued linearly (C1-smooth), matching the near-linear tail of Figure 1.
func (p *Process) VthShift(vbs float64) float64 {
	knee := p.PhiSV - 0.1
	if vbs <= knee {
		return p.GammaBB * (math.Sqrt(p.PhiSV-vbs) - math.Sqrt(p.PhiSV))
	}
	atKnee := p.GammaBB * (math.Sqrt(p.PhiSV-knee) - math.Sqrt(p.PhiSV))
	slope := -p.GammaBB / (2 * math.Sqrt(p.PhiSV-knee))
	return atKnee + slope*(vbs-knee)
}

// Vth returns the threshold voltage at the given body bias.
func (p *Process) Vth(vbs float64) float64 { return p.Vth0V + p.VthShift(vbs) }

// DelayFactor returns the gate delay at body bias vbs relative to the nominal
// delay (vbs = 0, 300 K). FBB gives factors below one.
func (p *Process) DelayFactor(vbs float64) float64 {
	return p.DelayFactorDVth(p.VthShift(vbs))
}

// DelayFactorDVth returns the relative delay for an arbitrary threshold
// voltage shift dvth (e.g. from process variation or aging). Positive shifts
// slow the gate down.
func (p *Process) DelayFactorDVth(dvth float64) float64 {
	over0 := p.VddV - p.Vth0V + p.DIBLOverdriveV
	over := over0 - dvth
	if over < 0.05 {
		over = 0.05 // near/below-threshold clamp: extremely slow, not infinite
	}
	f := math.Pow(over0/over, p.Alpha)
	return f * p.tempDelayFactor()
}

// Speedup returns the fractional speed-up at body bias vbs relative to NBB:
// 0.21 means 21% faster.
func (p *Process) Speedup(vbs float64) float64 {
	return 1/p.DelayFactor(vbs) - 1
}

// SubthresholdFactor returns the subthreshold leakage increase at vbs
// relative to nominal subthreshold leakage.
func (p *Process) SubthresholdFactor(vbs float64) float64 {
	return p.SubFactorDVth(p.VthShift(vbs))
}

// SubFactorDVth returns the subthreshold leakage factor of a bare threshold
// shift: exp(-dvth / (n kT/q)). It is one of the two separable factors of
// LeakageFactorBias, which batched leakage evaluation (variation.LeakModel)
// precomputes per die; the per-bias-level factor is SubthresholdFactor.
func (p *Process) SubFactorDVth(dvth float64) float64 {
	return math.Exp(-dvth / (p.SubIdeality * BoltzmannEV * RoomTempK))
}

// JunctionFactor returns the forward source-body junction current at vbs,
// expressed relative to the total nominal leakage. It is negligible below
// 0.5 V and explodes beyond it, which is what limits the usable FBB range.
func (p *Process) JunctionFactor(vbs float64) float64 {
	if vbs <= 0 {
		return 0
	}
	vt := BoltzmannEV * RoomTempK
	return p.JunctionScale * (math.Exp(vbs/(p.JunctionIdeality*vt)) - 1)
}

// LeakageFactor returns the total leakage at body bias vbs relative to NBB at
// the process temperature. The total is composed of a bias-responsive
// subthreshold part, a bias-insensitive gate-leakage part and the forward
// junction diode current.
func (p *Process) LeakageFactor(vbs float64) float64 {
	f := (1-p.GateLeakShare)*p.SubthresholdFactor(vbs) + p.GateLeakShare + p.JunctionFactor(vbs)
	return f * p.tempLeakFactor()
}

// LeakageFactorDVth returns the relative leakage for an arbitrary threshold
// shift dvth with no body bias applied.
func (p *Process) LeakageFactorDVth(dvth float64) float64 {
	f := (1-p.GateLeakShare)*p.SubFactorDVth(dvth) + p.GateLeakShare
	return f * p.tempLeakFactor()
}

// DelayFactorBias combines a body bias with an extra threshold shift, as seen
// by a gate on a die with process variation dvth that receives FBB vbs.
func (p *Process) DelayFactorBias(vbs, dvth float64) float64 {
	return p.DelayFactorDVth(p.VthShift(vbs) + dvth)
}

// LeakageFactorBias combines a body bias with an extra threshold shift. The
// subthreshold term is evaluated in separable form — the bias factor
// exp(-VthShift(vbs)/(n kT/q)) times the variation factor exp(-dvth/(n kT/q))
// — which is the same exponential in exact arithmetic but lets a population
// loop precompute the per-die factor once and the per-level factor once per
// grid (variation.LeakModel reduces every per-assignment evaluation to one
// multiply-add pass that reproduces this function bit for bit).
func (p *Process) LeakageFactorBias(vbs, dvth float64) float64 {
	f := (1-p.GateLeakShare)*(p.SubthresholdFactor(vbs)*p.SubFactorDVth(dvth)) +
		p.GateLeakShare + p.JunctionFactor(vbs)
	return f * p.tempLeakFactor()
}

func (p *Process) tempDelayFactor() float64 {
	return 1 + p.TempDelayCoeff*(p.TempK-RoomTempK)
}

func (p *Process) tempLeakFactor() float64 {
	return math.Exp2((p.TempK - RoomTempK) / p.LeakDoubleK)
}

// TempLeakFactor returns the temperature derating every leakage factor is
// multiplied by (1.0 at 300 K, doubling every LeakDoubleK kelvin).
func (p *Process) TempLeakFactor() float64 { return p.tempLeakFactor() }

// WithTemperature returns a copy of the process at the given temperature.
// Delay and leakage factors of the copy include the temperature derating
// relative to 300 K.
func (p *Process) WithTemperature(tempK float64) *Process {
	q := *p
	q.TempK = tempK
	return &q
}

// String implements fmt.Stringer.
func (p *Process) String() string {
	return fmt.Sprintf("%s: Vdd=%.2fV Vth0=%.2fV alpha=%.2f gamma=%.3f n=%.3f",
		p.Name, p.VddV, p.Vth0V, p.Alpha, p.GammaBB, p.SubIdeality)
}
