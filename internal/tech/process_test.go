package tech

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestCalibrationAnchors(t *testing.T) {
	p := Default45nm()
	if got := p.Speedup(CalVbs); !almostEqual(got, CalSpeedup, 1e-6) {
		t.Errorf("speedup at %.2fV = %.6f, want %.2f", CalVbs, got, CalSpeedup)
	}
	if got := p.LeakageFactor(CalVbs); !almostEqual(got, CalLeakFactor, 1e-6) {
		t.Errorf("leakage factor at %.2fV = %.6f, want %.2f", CalVbs, got, CalLeakFactor)
	}
}

func TestNominalCornerIsUnity(t *testing.T) {
	p := Default45nm()
	if got := p.DelayFactor(0); !almostEqual(got, 1, 1e-12) {
		t.Errorf("DelayFactor(0) = %v, want 1", got)
	}
	if got := p.LeakageFactor(0); !almostEqual(got, 1, 1e-12) {
		t.Errorf("LeakageFactor(0) = %v, want 1", got)
	}
	if got := p.VthShift(0); !almostEqual(got, 0, 1e-12) {
		t.Errorf("VthShift(0) = %v, want 0", got)
	}
}

func TestDelayMonotoneDecreasingInVbs(t *testing.T) {
	p := Default45nm()
	prev := math.Inf(1)
	for vbs := 0.0; vbs <= 0.95; vbs += 0.01 {
		f := p.DelayFactor(vbs)
		if f >= prev {
			t.Fatalf("delay factor not strictly decreasing at vbs=%.2f: %v >= %v", vbs, f, prev)
		}
		prev = f
	}
}

func TestLeakageMonotoneIncreasingInVbs(t *testing.T) {
	p := Default45nm()
	prev := 0.0
	for vbs := 0.0; vbs <= 0.95; vbs += 0.01 {
		f := p.LeakageFactor(vbs)
		if f <= prev {
			t.Fatalf("leakage factor not strictly increasing at vbs=%.2f: %v <= %v", vbs, f, prev)
		}
		prev = f
	}
}

func TestJunctionDominatesBeyondHalfVolt(t *testing.T) {
	p := Default45nm()
	// At 0.5 V the junction is a minor contributor...
	if j := p.JunctionFactor(0.5); j > 1.0 {
		t.Errorf("junction at 0.5V = %v, want < 1 (minor)", j)
	}
	// ...but by 0.7 V it dwarfs the subthreshold component, which is why
	// the paper restricts vbs to [0, 0.5].
	j, s := p.JunctionFactor(0.7), p.SubthresholdFactor(0.7)
	if j < 10*s {
		t.Errorf("junction at 0.7V = %v should dominate subthreshold %v", j, s)
	}
}

func TestReverseBodyBiasSlowsAndSaves(t *testing.T) {
	p := Default45nm()
	// RBB (negative vbs) must increase delay and reduce leakage.
	if f := p.DelayFactor(-0.3); f <= 1 {
		t.Errorf("RBB delay factor = %v, want > 1", f)
	}
	if f := p.LeakageFactor(-0.3); f >= 1 {
		t.Errorf("RBB leakage factor = %v, want < 1", f)
	}
}

func TestSpeedupRoughlyLinear(t *testing.T) {
	// Figure 1 shows a (roughly) linear speed-up in vbs. Check that the
	// half-range speed-up is close to half the full-range one.
	p := Default45nm()
	half, full := p.Speedup(0.25), p.Speedup(0.5)
	ratio := half / full
	if ratio < 0.40 || ratio > 0.60 {
		t.Errorf("speedup(0.25)/speedup(0.5) = %.3f, want within [0.40, 0.60]", ratio)
	}
}

func TestTemperatureDerating(t *testing.T) {
	p := Default45nm()
	hot := p.WithTemperature(373)
	if hot.DelayFactor(0) <= p.DelayFactor(0) {
		t.Error("hot die should be slower")
	}
	if hot.LeakageFactor(0) <= 2 {
		t.Errorf("leakage at 373K = %v, want > 2x (doubles every %vK)",
			hot.LeakageFactor(0), p.LeakDoubleK)
	}
	// The original process must be untouched.
	if p.TempK != RoomTempK {
		t.Error("WithTemperature mutated the receiver")
	}
}

func TestDVthFactorsConsistentWithBias(t *testing.T) {
	// Applying a bias vbs must be identical to applying its VthShift as a
	// raw threshold shift for the delay model.
	p := Default45nm()
	for _, vbs := range []float64{0.05, 0.2, 0.35, 0.5} {
		a := p.DelayFactor(vbs)
		b := p.DelayFactorDVth(p.VthShift(vbs))
		if !almostEqual(a, b, 1e-12) {
			t.Errorf("vbs=%.2f: DelayFactor=%v != DelayFactorDVth=%v", vbs, a, b)
		}
	}
}

func TestDelayFactorBiasCancelsVariation(t *testing.T) {
	// A gate slowed by +dvth and compensated by a bias producing -dvth
	// must return exactly to nominal delay.
	p := Default45nm()
	vbs := 0.3
	dvth := -p.VthShift(vbs)
	if f := p.DelayFactorBias(vbs, dvth); !almostEqual(f, 1, 1e-12) {
		t.Errorf("compensated delay factor = %v, want 1", f)
	}
}

func TestPropertyFBBTradeoff(t *testing.T) {
	// Property: for any vbs in (0, 0.5], FBB is a strict speed/leakage
	// trade-off: faster and leakier, with leakage growing faster than
	// speed (the reason the paper uses FBB sparingly).
	p := Default45nm()
	f := func(raw float64) bool {
		vbs := math.Mod(math.Abs(raw), 0.5)
		if vbs < 1e-3 {
			vbs = 1e-3
		}
		sp := p.Speedup(vbs)
		lk := p.LeakageFactor(vbs)
		return sp > 0 && lk > 1 && lk-1 > sp
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestGridLevels(t *testing.T) {
	g := DefaultGrid()
	if got := g.NumLevels(); got != 11 {
		t.Fatalf("NumLevels = %d, want 11", got)
	}
	ls := g.Levels()
	if !almostEqual(ls[0], 0, 0) || !almostEqual(ls[10], 0.5, 1e-12) {
		t.Errorf("levels endpoints = %v, %v; want 0 and 0.5", ls[0], ls[10])
	}
	for j := 1; j < len(ls); j++ {
		if !almostEqual(ls[j]-ls[j-1], 0.05, 1e-12) {
			t.Errorf("level step %d = %v, want 0.05", j, ls[j]-ls[j-1])
		}
	}
}

func TestGridQuantizeUp(t *testing.T) {
	g := DefaultGrid()
	cases := []struct {
		v    float64
		want int
	}{
		{-0.1, 0}, {0, 0}, {0.001, 1}, {0.05, 1}, {0.051, 2},
		{0.249, 5}, {0.25, 5}, {0.49, 10}, {0.5, 10}, {0.9, 10},
	}
	for _, c := range cases {
		if got := g.QuantizeUp(c.v); got != c.want {
			t.Errorf("QuantizeUp(%v) = %d, want %d", c.v, got, c.want)
		}
	}
}

func TestGridQuantizeUpNeverUnderCorrects(t *testing.T) {
	g := DefaultGrid()
	f := func(raw float64) bool {
		v := math.Mod(math.Abs(raw), 0.5)
		j := g.QuantizeUp(v)
		return g.Voltage(j) >= v-1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestGridPair(t *testing.T) {
	g := DefaultGrid()
	p := Default45nm()
	// Paper: "for NMOS starting from 0 to 0.5V in steps of 50mV and for
	// PMOS starting from 0.95 to 0.45".
	n0, p0 := g.Pair(p.VddV, 0)
	if n0 != 0 || !almostEqual(p0, 0.95, 1e-12) {
		t.Errorf("Pair(0) = %v,%v; want 0, 0.95", n0, p0)
	}
	n10, p10 := g.Pair(p.VddV, 10)
	if !almostEqual(n10, 0.5, 1e-12) || !almostEqual(p10, 0.45, 1e-12) {
		t.Errorf("Pair(10) = %v,%v; want 0.5, 0.45", n10, p10)
	}
}

func TestDegenerateGrid(t *testing.T) {
	g := BiasGrid{StepV: 0, MaxV: 0}
	if g.NumLevels() != 1 {
		t.Errorf("degenerate grid levels = %d, want 1 (NBB only)", g.NumLevels())
	}
	if g.Voltage(0) != 0 || g.Voltage(5) != 0 {
		t.Error("degenerate grid must always return 0V")
	}
}
