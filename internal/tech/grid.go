package tech

import (
	"fmt"
	"math"
)

// BiasGrid is the discrete set of body bias voltages a generator can produce.
// The paper assumes a 50 mV resolution up to 0.5 V, giving P = 11 levels
// {0, 0.05, ..., 0.5}; level 0 is no body bias (NBB).
type BiasGrid struct {
	// StepV is the generator resolution in volts (50 mV in the paper,
	// 32 mV achievable per Tschanz et al.).
	StepV float64
	// MaxV is the maximum forward bias in volts (0.5 V: beyond it the
	// forward junction current dominates).
	MaxV float64
}

// DefaultGrid returns the paper's 50 mV / 0.5 V grid with 11 levels.
func DefaultGrid() BiasGrid { return BiasGrid{StepV: 0.05, MaxV: 0.5} }

// NumLevels returns P, the number of available bias voltages including NBB.
func (g BiasGrid) NumLevels() int {
	if g.StepV <= 0 || g.MaxV < 0 {
		return 1
	}
	return int(math.Round(g.MaxV/g.StepV)) + 1
}

// Voltage returns the bias voltage of level j in [0, NumLevels).
func (g BiasGrid) Voltage(j int) float64 {
	if j <= 0 {
		return 0
	}
	v := float64(j) * g.StepV
	if v > g.MaxV {
		v = g.MaxV
	}
	return v
}

// Levels returns all voltages of the grid in ascending order.
func (g BiasGrid) Levels() []float64 {
	n := g.NumLevels()
	vs := make([]float64, n)
	for j := range vs {
		vs[j] = g.Voltage(j)
	}
	return vs
}

// QuantizeUp returns the lowest level whose voltage is >= v, clamped to the
// top level. Compensation must round up: a lower voltage would under-correct.
func (g BiasGrid) QuantizeUp(v float64) int {
	if v <= 0 {
		return 0
	}
	j := int(math.Ceil(v/g.StepV - 1e-9))
	if j >= g.NumLevels() {
		j = g.NumLevels() - 1
	}
	return j
}

// Pair returns the NMOS and PMOS bias voltages distributed for level j, as in
// the paper: vbsn = vbs and vbsp = Vdd - vbs.
func (g BiasGrid) Pair(vdd float64, j int) (vbsn, vbsp float64) {
	v := g.Voltage(j)
	return v, vdd - v
}

// String implements fmt.Stringer.
func (g BiasGrid) String() string {
	return fmt.Sprintf("grid(%d levels, %.0fmV step, max %.2fV)",
		g.NumLevels(), g.StepV*1000, g.MaxV)
}
