package report

import (
	"strings"
	"testing"
)

func TestTableAlignment(t *testing.T) {
	tb := New("demo", "name", "value")
	tb.Add("a", "1")
	tb.Add("longer-name", "22")
	s := tb.String()
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	if len(lines) != 5 { // title, header, rule, 2 rows
		t.Fatalf("lines = %d, want 5:\n%s", len(lines), s)
	}
	if !strings.HasPrefix(lines[1], "name") {
		t.Errorf("header line = %q", lines[1])
	}
	// Value columns start at the same offset.
	off3 := strings.Index(lines[3], "1")
	off4 := strings.Index(lines[4], "22")
	if off3 != off4 {
		t.Errorf("misaligned columns: %d vs %d\n%s", off3, off4, s)
	}
}

func TestAddf(t *testing.T) {
	tb := New("", "a", "b")
	tb.Addf("%d|%.1f", 3, 2.5)
	if tb.Rows[0][0] != "3" || tb.Rows[0][1] != "2.5" {
		t.Errorf("Addf produced %v", tb.Rows[0])
	}
}

func TestCSVEscaping(t *testing.T) {
	tb := New("", "x")
	tb.Add(`va"l,ue`)
	csv := tb.CSV()
	if !strings.Contains(csv, `"va""l,ue"`) {
		t.Errorf("bad CSV escaping: %q", csv)
	}
}

func TestRaggedRows(t *testing.T) {
	tb := New("", "a", "b", "c")
	tb.Add("1")
	tb.Add("1", "2", "3")
	if s := tb.String(); !strings.Contains(s, "3") {
		t.Errorf("ragged table broken:\n%s", s)
	}
}
