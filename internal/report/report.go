// Package report renders aligned text tables and CSV for the experiment
// drivers and command-line tools.
package report

import (
	"fmt"
	"strings"
)

// Table is a simple column-aligned table.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// New creates a table.
func New(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// Add appends a row; missing cells render empty.
func (t *Table) Add(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// Addf appends a row of formatted values.
func (t *Table) Addf(format string, args ...any) {
	t.Add(strings.Split(fmt.Sprintf(format, args...), "|")...)
}

// String renders the aligned table.
func (t *Table) String() string {
	cols := len(t.Headers)
	for _, r := range t.Rows {
		if len(r) > cols {
			cols = len(r)
		}
	}
	width := make([]int, cols)
	measure := func(r []string) {
		for i, c := range r {
			if len(c) > width[i] {
				width[i] = len(c)
			}
		}
	}
	measure(t.Headers)
	for _, r := range t.Rows {
		measure(r)
	}

	var sb strings.Builder
	if t.Title != "" {
		sb.WriteString(t.Title)
		sb.WriteByte('\n')
	}
	line := func(r []string) {
		for i := 0; i < cols; i++ {
			c := ""
			if i < len(r) {
				c = r[i]
			}
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", width[i], c)
		}
		sb.WriteByte('\n')
	}
	if len(t.Headers) > 0 {
		line(t.Headers)
		total := 0
		for _, w := range width {
			total += w
		}
		sb.WriteString(strings.Repeat("-", total+2*(cols-1)))
		sb.WriteByte('\n')
	}
	for _, r := range t.Rows {
		line(r)
	}
	return sb.String()
}

// CSV renders the table as comma-separated values (cells containing commas
// or quotes are quoted).
func (t *Table) CSV() string {
	var sb strings.Builder
	row := func(r []string) {
		for i, c := range r {
			if i > 0 {
				sb.WriteByte(',')
			}
			if strings.ContainsAny(c, ",\"\n") {
				sb.WriteByte('"')
				sb.WriteString(strings.ReplaceAll(c, `"`, `""`))
				sb.WriteByte('"')
			} else {
				sb.WriteString(c)
			}
		}
		sb.WriteByte('\n')
	}
	if len(t.Headers) > 0 {
		row(t.Headers)
	}
	for _, r := range t.Rows {
		row(r)
	}
	return sb.String()
}
