package sta

import (
	"math/rand"
	"testing"
)

// TestRunLightBatchMatchesRunLight: every lane of a batched re-timing must
// be bit-identical to a scalar RunLight of that die — per-gate delays,
// arrivals, tails, and the critical delay — across random DAGs, widths, and
// a lane of nominal (all-ones) scale mixed among perturbed ones.
func TestRunLightBatchMatchesRunLight(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		pl := randomPlacement(t, 400+seed)
		a, err := NewAnalyzer(pl, Options{})
		if err != nil {
			t.Fatal(err)
		}
		n := len(pl.Design.Gates)
		rng := rand.New(rand.NewSource(seed))
		var tb *TimingBatch
		var lightBuf, laneBuf *Timing
		for _, w := range []int{1, 2, 3, 7, 16} {
			scale := make([]float64, n*w)
			for i := range scale {
				scale[i] = 0.8 + 0.5*rng.Float64()
			}
			if w > 1 {
				// Lane 1 at exactly nominal: the all-ones product must
				// still match the scalar path bit for bit.
				for g := 0; g < n; g++ {
					scale[n+g] = 1
				}
			}
			tb, err = a.RunLightBatch(scale, w, tb)
			if err != nil {
				t.Fatal(err)
			}
			if tb.W != w || tb.NumGates() != n {
				t.Fatalf("seed %d w %d: batch shape (%d, %d)", seed, w, tb.W, tb.NumGates())
			}
			for d := 0; d < w; d++ {
				lightBuf, err = a.RunLight(scale[d*n:(d+1)*n], lightBuf)
				if err != nil {
					t.Fatal(err)
				}
				if tb.DcritPS[d] != lightBuf.DcritPS {
					t.Fatalf("seed %d w %d lane %d: Dcrit %v, want %v",
						seed, w, d, tb.DcritPS[d], lightBuf.DcritPS)
				}
				for g := 0; g < n; g++ {
					if tb.GateDelayPS[g*w+d] != lightBuf.GateDelayPS[g] ||
						tb.ArrPS[g*w+d] != lightBuf.ArrPS[g] ||
						tb.TailPS[g*w+d] != lightBuf.TailPS[g] {
						t.Fatalf("seed %d w %d lane %d gate %d: (%v, %v, %v), want (%v, %v, %v)",
							seed, w, d, g,
							tb.GateDelayPS[g*w+d], tb.ArrPS[g*w+d], tb.TailPS[g*w+d],
							lightBuf.GateDelayPS[g], lightBuf.ArrPS[g], lightBuf.TailPS[g])
					}
				}
				// The gathered lane is the scalar light Timing.
				laneBuf = tb.DieInto(d, laneBuf)
				requireTimingEqual(t, lightBuf, laneBuf, "DieInto lane")
				if !laneBuf.Light || len(laneBuf.Paths) != 0 {
					t.Fatalf("DieInto lane is not a light, path-free timing")
				}
			}
		}
	}
}

// TestRunLightBatchValidation: width and scale-length mismatches are
// structural errors, not silent truncations.
func TestRunLightBatchValidation(t *testing.T) {
	pl := randomPlacement(t, 401)
	a, err := NewAnalyzer(pl, Options{})
	if err != nil {
		t.Fatal(err)
	}
	n := len(pl.Design.Gates)
	if _, err := a.RunLightBatch(make([]float64, n), 0, nil); err == nil {
		t.Error("width 0 accepted")
	}
	if _, err := a.RunLightBatch(make([]float64, n*2-1), 2, nil); err == nil {
		t.Error("short scale accepted")
	}
}

// TestRunLightBatchAllocFree: a warmed batch re-time allocates nothing — the
// same steady-state contract as RunLight, extended to the SoA block.
func TestRunLightBatchAllocFree(t *testing.T) {
	pl := randomPlacement(t, 402)
	a, err := NewAnalyzer(pl, Options{})
	if err != nil {
		t.Fatal(err)
	}
	n := len(pl.Design.Gates)
	const w = 8
	scale := make([]float64, n*w)
	for i := range scale {
		scale[i] = 0.9 + 0.001*float64(i%200)
	}
	tb, err := a.RunLightBatch(scale, w, nil)
	if err != nil {
		t.Fatal(err)
	}
	var tm *Timing
	tm = tb.DieInto(0, tm)
	allocs := testing.AllocsPerRun(50, func() {
		if tb, err = a.RunLightBatch(scale, w, tb); err != nil {
			t.Fatal(err)
		}
		tm = tb.DieInto(3, tm)
	})
	if allocs != 0 {
		t.Errorf("warmed RunLightBatch+DieInto allocates %v per run, want 0", allocs)
	}
}
