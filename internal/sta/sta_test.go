package sta

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/cell"
	"repro/internal/gen"
	"repro/internal/netlist"
	"repro/internal/place"
)

func placeDesign(t *testing.T, d *netlist.Design) *place.Placement {
	t.Helper()
	p, err := place.Place(d, cell.Default(), place.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func analyze(t *testing.T, d *netlist.Design) *Timing {
	t.Helper()
	tm, err := Analyze(placeDesign(t, d), Options{})
	if err != nil {
		t.Fatal(err)
	}
	return tm
}

func TestInverterChain(t *testing.T) {
	l := cell.Default()
	b := netlist.NewBuilder("chain", l)
	s := b.PI("a")
	const n = 10
	for i := 0; i < n; i++ {
		s = b.Not(s)
	}
	b.Output("y", s)
	d, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	tm := analyze(t, d)

	// Dcrit equals the sum of all gate delays.
	sum := 0.0
	for _, gd := range tm.GateDelayPS {
		sum += gd
	}
	if math.Abs(tm.DcritPS-sum) > 1e-9 {
		t.Errorf("Dcrit = %f, want chain sum %f", tm.DcritPS, sum)
	}
	// One unique path containing all n gates.
	if len(tm.Paths) != 1 {
		t.Fatalf("paths = %d, want 1", len(tm.Paths))
	}
	if len(tm.Paths[0].Gates) != n {
		t.Errorf("path length = %d, want %d", len(tm.Paths[0].Gates), n)
	}
	if tm.Paths[0].SlackPS != 0 {
		t.Errorf("critical path slack = %f, want 0", tm.Paths[0].SlackPS)
	}
}

func TestDiamondPicksLongerBranch(t *testing.T) {
	l := cell.Default()
	b := netlist.NewBuilder("diamond", l)
	a := b.PI("a")
	short := b.Not(a)
	long := b.Not(b.Not(b.Not(a)))
	b.Output("y", b.Nand(short, long))
	d, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	tm := analyze(t, d)
	cp := tm.CriticalPath()
	if len(cp.Gates) != 4 { // 3 inverters + NAND
		t.Errorf("critical path length = %d, want 4", len(cp.Gates))
	}
}

func TestSequentialBoundaries(t *testing.T) {
	// PI -> INV -> DFF -> INV -> PO. Two paths: one ending at the D pin
	// (with setup), one starting at the FF (clk-to-q).
	l := cell.Default()
	b := netlist.NewBuilder("seq", l)
	a := b.PI("a")
	x := b.Not(a)
	q := b.DFF(x)
	y := b.Not(q)
	b.Output("y", y)
	d, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	tm := analyze(t, d)

	dff := l.MustCell("DFF_X1")
	// Path 1: INV(x) + setup.
	want1 := tm.GateDelayPS[x.Idx] + dff.SetupPS
	// Path 2: DFF clk-to-q + INV(y).
	want2 := tm.GateDelayPS[q.Idx] + tm.GateDelayPS[y.Idx]
	if len(tm.Paths) != 2 {
		t.Fatalf("paths = %d, want 2", len(tm.Paths))
	}
	got := map[int]float64{}
	for _, p := range tm.Paths {
		got[len(p.Gates)] = p.DelayPS
	}
	// Path 1 has 1 gate (the input inverter), path 2 has 2 (FF + inverter).
	if math.Abs(got[1]-want1) > 1e-9 {
		t.Errorf("D-pin path delay = %f, want %f", got[1], want1)
	}
	if math.Abs(got[2]-want2) > 1e-9 {
		t.Errorf("clk-to-q path delay = %f, want %f", got[2], want2)
	}
}

func TestPathsAreConnectedChains(t *testing.T) {
	l := cell.Default()
	d, err := gen.Build("c3540", l)
	if err != nil {
		t.Fatal(err)
	}
	tm := analyze(t, d)
	for _, p := range tm.Paths {
		for i := 0; i+1 < len(p.Gates); i++ {
			drv, snk := p.Gates[i], p.Gates[i+1]
			found := false
			for _, in := range d.Gates[snk].Ins {
				if in.Kind == netlist.SigGate && in.Idx == drv {
					found = true
				}
			}
			if !found {
				t.Fatalf("path gates %d -> %d not connected", drv, snk)
			}
		}
	}
}

func TestPathInvariants(t *testing.T) {
	l := cell.Default()
	for _, name := range []string{"c1355", "c5315", "c6288"} {
		d, err := gen.Build(name, l)
		if err != nil {
			t.Fatal(err)
		}
		tm := analyze(t, d)
		if tm.DcritPS <= 0 {
			t.Fatalf("%s: non-positive Dcrit", name)
		}
		seen := map[string]bool{}
		for i, p := range tm.Paths {
			if p.DelayPS > tm.DcritPS+1e-9 {
				t.Errorf("%s: path %d longer than Dcrit", name, i)
			}
			if p.SlackPS < -1e-9 {
				t.Errorf("%s: negative slack %f at nominal corner", name, p.SlackPS)
			}
			if i > 0 && p.DelayPS > tm.Paths[i-1].DelayPS+1e-9 {
				t.Errorf("%s: paths not sorted", name)
			}
			k := ""
			for _, g := range p.Gates {
				k += string(rune(g)) + ","
			}
			if seen[k] {
				t.Errorf("%s: duplicate path", name)
			}
			seen[k] = true
		}
		// The critical path must be among the extracted ones and achieve
		// slack zero.
		if tm.Paths[0].SlackPS != 0 {
			t.Errorf("%s: no zero-slack path", name)
		}
		t.Logf("%-8s Dcrit=%.0fps paths=%d", name, tm.DcritPS, len(tm.Paths))
	}
}

// TestAgainstBruteForce compares Dcrit with an exhaustive DFS longest-path
// search on small random DAGs.
func TestAgainstBruteForce(t *testing.T) {
	l := cell.Default()
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 25; trial++ {
		b := netlist.NewBuilder("rand", l)
		nPI := 3 + rng.Intn(3)
		pool := make([]netlist.Signal, 0, 40)
		for i := 0; i < nPI; i++ {
			pool = append(pool, b.PI("p"+string(rune('0'+i))))
		}
		nG := 5 + rng.Intn(20)
		for i := 0; i < nG; i++ {
			x := pool[rng.Intn(len(pool))]
			y := pool[rng.Intn(len(pool))]
			var s netlist.Signal
			switch rng.Intn(3) {
			case 0:
				s = b.Nand(x, y)
			case 1:
				s = b.Nor(x, y)
			default:
				s = b.Not(x)
			}
			pool = append(pool, s)
		}
		// Expose everything as POs so nothing dangles ambiguously.
		for i, s := range pool[nPI:] {
			b.Output("o"+string(rune('a'+i%26))+string(rune('0'+i/26)), s)
		}
		d, err := b.Build()
		if err != nil {
			t.Fatal(err)
		}
		pl := placeDesign(t, d)
		tm, err := Analyze(pl, Options{})
		if err != nil {
			t.Fatal(err)
		}

		// Brute force longest endpoint arrival via memoized DFS.
		memo := make([]float64, len(d.Gates))
		for i := range memo {
			memo[i] = -1
		}
		var longest func(g netlist.GateID) float64
		longest = func(g netlist.GateID) float64 {
			if memo[g] >= 0 {
				return memo[g]
			}
			best := 0.0
			for _, in := range d.Gates[g].Ins {
				if in.Kind == netlist.SigGate {
					if v := longest(in.Idx); v > best {
						best = v
					}
				}
			}
			memo[g] = best + tm.GateDelayPS[g]
			return memo[g]
		}
		want := 0.0
		for g := range d.Gates {
			if v := longest(netlist.GateID(g)); v > want {
				want = v
			}
		}
		if math.Abs(want-tm.DcritPS) > 1e-6 {
			t.Fatalf("trial %d: Dcrit=%f, brute force %f", trial, tm.DcritPS, want)
		}
	}
}

func TestFanoutLoadIncreasesDelay(t *testing.T) {
	l := cell.Default()
	build := func(fan int) *netlist.Design {
		b := netlist.NewBuilder("fan", l)
		a := b.PI("a")
		x := b.Not(a)
		for i := 0; i < fan; i++ {
			b.Output("y"+string(rune('0'+i)), b.Not(x))
		}
		d, err := b.Build()
		if err != nil {
			t.Fatal(err)
		}
		return d
	}
	tm1 := analyze(t, build(1))
	tm8 := analyze(t, build(8))
	if tm8.GateDelayPS[0] <= tm1.GateDelayPS[0] {
		t.Errorf("8-fanout driver delay %f not above 1-fanout %f",
			tm8.GateDelayPS[0], tm1.GateDelayPS[0])
	}
}

func TestDelayScale(t *testing.T) {
	l := cell.Default()
	d, err := gen.Build("c1355", l)
	if err != nil {
		t.Fatal(err)
	}
	pl := placeDesign(t, d)
	base, err := Analyze(pl, Options{})
	if err != nil {
		t.Fatal(err)
	}
	scale := make([]float64, len(d.Gates))
	for i := range scale {
		scale[i] = 1.1
	}
	slow, err := Analyze(pl, Options{DelayScale: scale})
	if err != nil {
		t.Fatal(err)
	}
	// Dcrit scales by 1.1 up to the (unscaled) FF setup contribution.
	ratio := slow.DcritPS / base.DcritPS
	if ratio < 1.09 || ratio > 1.11 {
		t.Errorf("uniform 1.1 scaling changed Dcrit by %f", ratio)
	}
	if _, err := Analyze(pl, Options{DelayScale: scale[:3]}); err == nil {
		t.Error("bad DelayScale length accepted")
	}
}

func TestMultiplierHasManyNearCriticalPaths(t *testing.T) {
	// The c6288 class is the paper's stress case: its constraint count
	// (Table 1, No.Constr) is an order of magnitude above the others.
	l := cell.Default()
	mult := analyze(t, mustGen(t, l, "c6288"))
	ecc := analyze(t, mustGen(t, l, "c1355"))
	nearCritical := func(tm *Timing, frac float64) int {
		n := 0
		for _, p := range tm.Paths {
			if p.DelayPS >= tm.DcritPS*(1-frac) {
				n++
			}
		}
		return n
	}
	m, e := nearCritical(mult, 0.05), nearCritical(ecc, 0.05)
	t.Logf("paths within 5%% of critical: c6288=%d c1355=%d", m, e)
	if m < 3*e {
		t.Errorf("multiplier near-critical path count %d not >> ECC's %d", m, e)
	}
}

func mustGen(t *testing.T, l *cell.Library, name string) *netlist.Design {
	t.Helper()
	d, err := gen.Build(name, l)
	if err != nil {
		t.Fatal(err)
	}
	return d
}
