package sta

import (
	"fmt"

	"repro/internal/place"
)

// TimingBatch is the Dcrit-only re-timing of a batch of dies through one
// Analyzer: W lanes of GateDelayPS/ArrPS/TailPS stored lane-contiguous
// ([g*W+d] for gate g, die d) and one DcritPS per die. It is the batch form
// of a Light Timing — no paths are ever extracted — and follows the same
// buffer contract: RunLightBatch reuses the slices call to call, so a batch
// must not be shared between concurrent calls, and the previous batch held
// in the same buffer is invalidated.
type TimingBatch struct {
	Pl   *place.Placement
	Opts Options

	// W is the number of die lanes of the current batch.
	W int
	// GateDelayPS/ArrPS/TailPS are the per-gate vectors of every lane,
	// indexed [g*W+d]; bit-identical to what RunLight computes for die d
	// alone.
	GateDelayPS []float64
	ArrPS       []float64
	TailPS      []float64
	// DcritPS is the critical path delay of every die.
	DcritPS []float64

	// acc is the per-gate lane accumulator of the forward/backward sweeps.
	acc []float64
}

// RunLightBatch re-times w dies at once, each with its own per-gate delay
// scale, into buf (nil allocates a fresh TimingBatch). scale is die-major:
// die d's scale vector is scale[d*n : (d+1)*n] for n = NumGates — the layout
// a die-major SoA sampler produces — and is transposed into the batch's
// lane-contiguous arrays on entry.
//
// Per die, the float operations are exactly RunLight's: the forward and
// backward sweeps visit gates in the same topological order and reduce each
// gate's fanin/fanout in the same pin order, and DcritPS accumulates over
// gates in index order, so lane d of the batch is bit-identical to
// RunLight(scale[d*n:(d+1)*n], ...). What the batch buys is structure
// amortization: the per-gate topo lookups, CSR slice bounds and
// setup-vs-combinational branches are paid once per gate instead of once
// per gate per die, and the inner lane loops are branch-light contiguous
// sweeps.
func (a *Analyzer) RunLightBatch(scale []float64, w int, buf *TimingBatch) (*TimingBatch, error) {
	n := len(a.nomDelayPS)
	if w <= 0 {
		return nil, fmt.Errorf("sta: batch width %d, want >= 1", w)
	}
	if len(scale) != n*w {
		return nil, fmt.Errorf("sta: batch DelayScale length %d, want %d (%d dies x %d gates)", len(scale), n*w, w, n)
	}
	tb := buf
	if tb == nil {
		tb = &TimingBatch{}
	}
	tb.Pl = a.pl
	tb.Opts = a.opts
	tb.W = w
	tb.GateDelayPS = growFloat(tb.GateDelayPS, n*w)
	tb.ArrPS = growFloat(tb.ArrPS, n*w)
	tb.TailPS = growFloat(tb.TailPS, n*w)
	tb.DcritPS = growFloat(tb.DcritPS, w)
	tb.acc = growFloat(tb.acc, w)

	// Transpose the die-major scale into lane-contiguous scaled delays:
	// gd[g*W+d] = nom[g] * scale[d*n+g].
	gd := tb.GateDelayPS
	for d := 0; d < w; d++ {
		row := scale[d*n : (d+1)*n]
		for g, s := range row {
			gd[g*w+d] = a.nomDelayPS[g] * s
		}
	}

	arr := tb.ArrPS
	acc := tb.acc[:w]

	// Forward pass: per-lane arrival maxima in pin order, then one add of
	// the gate delay — the same float ops per lane as RunLight.
	for _, g := range a.topo {
		for d := range acc {
			acc[d] = 0
		}
		for _, p := range a.preds[a.predStart[g]:a.predStart[g+1]] {
			lane := arr[int(p)*w : int(p)*w+w]
			for d, v := range lane {
				if v > acc[d] {
					acc[d] = v
				}
			}
		}
		out := arr[int(g)*w : int(g)*w+w]
		del := gd[int(g)*w : int(g)*w+w]
		for d := range out {
			out[d] = acc[d] + del[d]
		}
	}

	// Backward pass: per-lane tail maxima in fanout order. A flip-flop
	// consumer contributes its (lane-invariant) setup time, compared in
	// the same position of each lane's reduction as in RunLight.
	tail := tb.TailPS
	for i := len(a.topo) - 1; i >= 0; i-- {
		g := a.topo[i]
		for d := range acc {
			acc[d] = 0
		}
		for k := a.succStart[g]; k < a.succStart[g+1]; k++ {
			if setup := a.succSetupPS[k]; setup >= 0 {
				for d := range acc {
					if setup > acc[d] {
						acc[d] = setup
					}
				}
				continue
			}
			f := int(a.succs[k])
			fd := gd[f*w : f*w+w]
			ft := tail[f*w : f*w+w]
			for d := range acc {
				if cand := fd[d] + ft[d]; cand > acc[d] {
					acc[d] = cand
				}
			}
		}
		copy(tail[int(g)*w:int(g)*w+w], acc)
	}

	// Critical delays, accumulated over gates in index order exactly like
	// the shared dcrit reduction.
	dc := tb.DcritPS[:w]
	for d := range dc {
		dc[d] = 0
	}
	for g := 0; g < n; g++ {
		ga := arr[g*w : g*w+w]
		gt := tail[g*w : g*w+w]
		for d := range dc {
			if t := ga[d] + gt[d]; t > dc[d] {
				dc[d] = t
			}
		}
	}
	return tb, nil
}

// NumGates returns the per-lane gate count of the current batch.
func (tb *TimingBatch) NumGates() int {
	if tb.W == 0 {
		return 0
	}
	return len(tb.GateDelayPS) / tb.W
}

// DieInto gathers lane d of the batch into buf as a light Timing (nil
// allocates a fresh one): GateDelayPS/ArrPS/TailPS/DcritPS are the lane's
// values — bit-identical to a scalar RunLight of that die — with Light set
// and no Paths. It is the bridge to scalar consumers (generic sensors, the
// per-die tuning tail) and follows the usual reused-buffer contract.
func (tb *TimingBatch) DieInto(d int, buf *Timing) *Timing {
	tm := buf
	if tm == nil {
		tm = &Timing{}
	}
	n := tb.NumGates()
	w := tb.W
	tm.Pl = tb.Pl
	tm.Opts = tb.Opts
	tm.Light = true
	tm.Paths = tm.Paths[:0]
	tm.GateDelayPS = growFloat(tm.GateDelayPS, n)
	tm.ArrPS = growFloat(tm.ArrPS, n)
	tm.TailPS = growFloat(tm.TailPS, n)
	for g := 0; g < n; g++ {
		tm.GateDelayPS[g] = tb.GateDelayPS[g*w+d]
		tm.ArrPS[g] = tb.ArrPS[g*w+d]
		tm.TailPS[g] = tb.TailPS[g*w+d]
	}
	tm.DcritPS = tb.DcritPS[d]
	return tm
}
