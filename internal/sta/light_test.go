package sta

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/cell"
	"repro/internal/gen"
	"repro/internal/place"
)

// requireLightEqual asserts that a RunLight result matches a full Run on the
// fields the light contract guarantees — GateDelayPS, ArrPS, TailPS and
// DcritPS — exact to the bit, and that the light result carries no paths.
func requireLightEqual(tb testing.TB, full, light *Timing, label string) {
	tb.Helper()
	if !light.Light {
		tb.Fatalf("%s: RunLight result not marked Light", label)
	}
	if full.Light {
		tb.Fatalf("%s: full Run result marked Light", label)
	}
	if len(light.Paths) != 0 {
		tb.Fatalf("%s: RunLight extracted %d paths, want none", label, len(light.Paths))
	}
	if full.DcritPS != light.DcritPS {
		tb.Fatalf("%s: Dcrit %v != %v", label, light.DcritPS, full.DcritPS)
	}
	eqF := func(name string, a, b []float64) {
		tb.Helper()
		if len(a) != len(b) {
			tb.Fatalf("%s: %s length %d != %d", label, name, len(b), len(a))
		}
		for i := range a {
			if a[i] != b[i] {
				tb.Fatalf("%s: %s[%d] = %v, want %v", label, name, i, b[i], a[i])
			}
		}
	}
	eqF("GateDelayPS", full.GateDelayPS, light.GateDelayPS)
	eqF("ArrPS", full.ArrPS, light.ArrPS)
	eqF("TailPS", full.TailPS, light.TailPS)
}

// TestRunLightMatchesRun is the differential harness of the Dcrit-only fast
// path: across random placements and scale vectors, a reused — and
// alternately full/light dirtied — buffer must agree with Run bit for bit
// on every field the light contract covers.
func TestRunLightMatchesRun(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	lightBuf := &Timing{} // reused across all trials
	mixedBuf := &Timing{} // alternates Run and RunLight
	for trial := 0; trial < 30; trial++ {
		pl := randomPlacement(t, int64(1000+trial))
		an, err := NewAnalyzer(pl, Options{})
		if err != nil {
			t.Fatal(err)
		}
		for round := 0; round < 4; round++ {
			scale := randomScale(rng, len(pl.Design.Gates))
			full, err := an.Run(scale, nil)
			if err != nil {
				t.Fatal(err)
			}
			light, err := an.RunLight(scale, lightBuf)
			if err != nil {
				t.Fatal(err)
			}
			requireLightEqual(t, full, light, "light buffer")
			// A buffer that alternates full and light runs must behave
			// identically in both directions.
			if round%2 == 0 {
				got, err := an.RunLight(scale, mixedBuf)
				if err != nil {
					t.Fatal(err)
				}
				requireLightEqual(t, full, got, "mixed buffer (light)")
			} else {
				got, err := an.Run(scale, mixedBuf)
				if err != nil {
					t.Fatal(err)
				}
				requireTimingEqual(t, full, got, "mixed buffer (full)")
			}
		}
	}
}

// TestRunLightMatchesRunOnBenchmarks runs the differential check on real
// generated benchmarks, where the deep shared path structure is what the
// light path skips.
func TestRunLightMatchesRunOnBenchmarks(t *testing.T) {
	l := cell.Default()
	rng := rand.New(rand.NewSource(23))
	buf := &Timing{}
	fullBuf := &Timing{}
	names := []string{"c1355", "c3540"}
	if !testing.Short() {
		names = append(names, "c6288")
	}
	for _, name := range names {
		d, err := gen.Build(name, l)
		if err != nil {
			t.Fatal(err)
		}
		pl, err := place.Place(d, l, place.Options{})
		if err != nil {
			t.Fatal(err)
		}
		an, err := NewAnalyzer(pl, Options{})
		if err != nil {
			t.Fatal(err)
		}
		for round := 0; round < 3; round++ {
			scale := randomScale(rng, len(d.Gates))
			full, err := an.Run(scale, fullBuf)
			if err != nil {
				t.Fatal(err)
			}
			light, err := an.RunLight(scale, buf)
			if err != nil {
				t.Fatal(err)
			}
			requireLightEqual(t, full, light, name)
		}
	}
}

// TestRunLightValidation pins the light path's error and buffer contract.
func TestRunLightValidation(t *testing.T) {
	pl := randomPlacement(t, 2)
	an, err := NewAnalyzer(pl, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := an.RunLight(make([]float64, an.NumGates()+1), nil); err == nil {
		t.Error("bad DelayScale length accepted")
	}
	// A dirty full-run buffer handed to RunLight must drop its paths; the
	// same buffer handed back to Run must regrow them.
	buf, err := an.Run(nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(buf.Paths) == 0 {
		t.Fatal("full run extracted no paths")
	}
	if _, err := an.RunLight(nil, buf); err != nil {
		t.Fatal(err)
	}
	if len(buf.Paths) != 0 || !buf.Light {
		t.Errorf("RunLight left a stale path set (%d paths, light=%v)", len(buf.Paths), buf.Light)
	}
	if _, err := an.Run(nil, buf); err != nil {
		t.Fatal(err)
	}
	if len(buf.Paths) == 0 || buf.Light {
		t.Errorf("Run after RunLight did not restore the full result (%d paths, light=%v)",
			len(buf.Paths), buf.Light)
	}
}

// FuzzAnalyzerRunLight fuzzes the differential property: for any (design
// seed, scale seed, spread), RunLight into a reused buffer agrees with a
// full Run on GateDelayPS/ArrPS/TailPS/DcritPS bit-exactly.
func FuzzAnalyzerRunLight(f *testing.F) {
	f.Add(int64(1), int64(1), 0.3)
	f.Add(int64(2), int64(7), 0.0)
	f.Add(int64(42), int64(99), 0.9)
	f.Add(int64(-5), int64(0), 0.5)
	f.Add(int64(12345), int64(-8), 0.05)
	f.Fuzz(func(t *testing.T, designSeed, scaleSeed int64, spread float64) {
		if math.IsNaN(spread) || math.IsInf(spread, 0) {
			t.Skip("degenerate spread")
		}
		spread = math.Abs(spread)
		if spread > 0.95 {
			spread = math.Mod(spread, 0.95)
		}
		pl := randomPlacement(t, designSeed)
		an, err := NewAnalyzer(pl, Options{})
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(scaleSeed))
		buf := &Timing{}
		fullBuf := &Timing{}
		for round := 0; round < 3; round++ {
			var scale []float64
			if round > 0 { // round 0 checks the nominal corner
				scale = make([]float64, an.NumGates())
				for i := range scale {
					scale[i] = 1 - spread + 2*spread*rng.Float64()
				}
			}
			full, err := an.Run(scale, fullBuf)
			if err != nil {
				t.Fatal(err)
			}
			light, err := an.RunLight(scale, buf)
			if err != nil {
				t.Fatal(err)
			}
			requireLightEqual(t, full, light, "fuzz")
		}
	})
}
