package sta

import (
	"math/rand"
	"testing"

	"repro/internal/cell"
	"repro/internal/gen"
	"repro/internal/place"
)

// The pair below is the tentpole measurement of the batched Monte-Carlo
// path: Analyze rebuilds the timing graph for every DelayScale vector,
// Analyzer.Run re-times through precomputed topology into reused buffers.

func benchPlacement(b *testing.B, name string) *place.Placement {
	b.Helper()
	l := cell.Default()
	d, err := gen.Build(name, l)
	if err != nil {
		b.Fatal(err)
	}
	pl, err := place.Place(d, l, place.Options{})
	if err != nil {
		b.Fatal(err)
	}
	return pl
}

func benchScale(n int) []float64 {
	rng := rand.New(rand.NewSource(17))
	s := make([]float64, n)
	for i := range s {
		s[i] = 0.9 + 0.2*rng.Float64()
	}
	return s
}

func benchmarkAnalyze(b *testing.B, name string) {
	pl := benchPlacement(b, name)
	scale := benchScale(len(pl.Design.Gates))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Analyze(pl, Options{DelayScale: scale}); err != nil {
			b.Fatal(err)
		}
	}
}

func benchmarkAnalyzerRun(b *testing.B, name string) {
	pl := benchPlacement(b, name)
	scale := benchScale(len(pl.Design.Gates))
	an, err := NewAnalyzer(pl, Options{})
	if err != nil {
		b.Fatal(err)
	}
	buf := &Timing{}
	if _, err := an.Run(scale, buf); err != nil { // warm the buffer
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := an.Run(scale, buf); err != nil {
			b.Fatal(err)
		}
	}
}

func benchmarkAnalyzerRunLight(b *testing.B, name string) {
	pl := benchPlacement(b, name)
	scale := benchScale(len(pl.Design.Gates))
	an, err := NewAnalyzer(pl, Options{})
	if err != nil {
		b.Fatal(err)
	}
	buf := &Timing{}
	if _, err := an.RunLight(scale, buf); err != nil { // warm the buffer
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := an.RunLight(scale, buf); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAnalyzeC5315(b *testing.B)       { benchmarkAnalyze(b, "c5315") }
func BenchmarkAnalyzeC6288(b *testing.B)       { benchmarkAnalyze(b, "c6288") }
func BenchmarkAnalyzeIndustrial1(b *testing.B) { benchmarkAnalyze(b, "industrial1") }

func BenchmarkAnalyzerRunC5315(b *testing.B)       { benchmarkAnalyzerRun(b, "c5315") }
func BenchmarkAnalyzerRunC6288(b *testing.B)       { benchmarkAnalyzerRun(b, "c6288") }
func BenchmarkAnalyzerRunIndustrial1(b *testing.B) { benchmarkAnalyzerRun(b, "industrial1") }

func BenchmarkAnalyzerRunLightC5315(b *testing.B)       { benchmarkAnalyzerRunLight(b, "c5315") }
func BenchmarkAnalyzerRunLightC6288(b *testing.B)       { benchmarkAnalyzerRunLight(b, "c6288") }
func BenchmarkAnalyzerRunLightIndustrial1(b *testing.B) { benchmarkAnalyzerRunLight(b, "industrial1") }
