package sta

import (
	"strings"
	"testing"

	"repro/internal/cell"
)

func TestTextReport(t *testing.T) {
	l := cell.Default()
	tm := analyze(t, mustGen(t, l, "c1355"))
	rep := tm.TextReport(3)
	for _, want := range []string{"critical delay", "slack histogram", "worst paths", "#1"} {
		if !strings.Contains(rep, want) {
			t.Errorf("report missing %q:\n%s", want, rep)
		}
	}
	// The worst path line must reference real cells.
	if !strings.Contains(rep, "_X") {
		t.Error("report paths show no cell names")
	}
	// Requesting more paths than exist must not panic.
	_ = tm.TextReport(1 << 20)
	// Zero paths suppresses the section.
	if s := tm.TextReport(0); strings.Contains(s, "worst paths") {
		t.Error("zero-path report still lists paths")
	}
}
