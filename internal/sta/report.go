package sta

import (
	"fmt"
	"strings"
)

// TextReport renders a PrimeTime-style timing summary: the critical delay, a
// slack histogram over the extracted path set, and the top worst paths with
// their gate chains.
func (tm *Timing) TextReport(topPaths int) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "timing report: %s\n", tm.Pl.Design.Name)
	fmt.Fprintf(&sb, "  critical delay : %.1f ps\n", tm.DcritPS)
	fmt.Fprintf(&sb, "  extracted paths: %d (unique longest-through-cell set)\n\n", len(tm.Paths))

	// Slack histogram over ten equal bins of [0, Dcrit].
	const bins = 10
	counts := make([]int, bins)
	for _, p := range tm.Paths {
		b := int(p.SlackPS / tm.DcritPS * bins)
		if b >= bins {
			b = bins - 1
		}
		if b < 0 {
			b = 0
		}
		counts[b]++
	}
	maxN := 1
	for _, n := range counts {
		if n > maxN {
			maxN = n
		}
	}
	sb.WriteString("  slack histogram (fraction of Dcrit):\n")
	for b := 0; b < bins; b++ {
		lo := float64(b) / bins
		hi := float64(b+1) / bins
		bar := strings.Repeat("#", counts[b]*40/maxN)
		fmt.Fprintf(&sb, "  %4.0f%%-%3.0f%% %5d %s\n", lo*100, hi*100, counts[b], bar)
	}

	if topPaths > len(tm.Paths) {
		topPaths = len(tm.Paths)
	}
	if topPaths > 0 {
		fmt.Fprintf(&sb, "\n  %d worst paths:\n", topPaths)
	}
	for i := 0; i < topPaths; i++ {
		p := tm.Paths[i]
		fmt.Fprintf(&sb, "  #%d  delay %.1f ps, slack %.1f ps, %d gates:",
			i+1, p.DelayPS, p.SlackPS, len(p.Gates))
		for k, g := range p.Gates {
			if k > 0 {
				sb.WriteString(" ->")
			}
			if k >= 8 {
				fmt.Fprintf(&sb, " ... (%d more)", len(p.Gates)-k)
				break
			}
			fmt.Fprintf(&sb, " %s(g%d)", tm.Pl.Design.Gates[g].Cell.Name, g)
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}
