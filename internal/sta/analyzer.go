package sta

import (
	"errors"
	"fmt"
	"slices"

	"repro/internal/netlist"
	"repro/internal/place"
)

// Analyzer is the reusable form of Analyze for batched re-timing: everything
// a DelayScale vector cannot change — the topological order, the fanin and
// fanout adjacency, the estimated wire and pin load of every net, the
// nominal loaded gate delays, and the endpoint structure — is computed once
// at construction, so Run only re-evaluates delays, arrivals, requireds and
// the extracted path set. Monte-Carlo loops (YieldStudy, RBB recovery,
// aging) re-time thousands of per-die corners of one placement; with
// Analyze each corner pays the full graph build, with an Analyzer each
// corner is two linear passes plus path extraction into reused buffers.
//
// An Analyzer is immutable after construction and therefore safe for
// concurrent use: all per-call state lives in the caller-provided Timing
// buffer. Callers that run concurrently share one Analyzer and keep one
// Timing scratch buffer per worker.
type Analyzer struct {
	pl   *place.Placement
	opts Options // defaults applied; DelayScale is per-Run, never stored

	topo       []netlist.GateID
	nomDelayPS []float64 // loaded delay of every gate at scale 1.0
	isDFF      []bool

	// predStart/preds is the CSR fanin adjacency of the forward pass: the
	// gate-input edges of every combinational gate in pin order (flip-flop
	// D pins are sequential, not ordering, dependencies and are omitted).
	predStart []int32
	preds     []int32

	// succStart/succs/succSetupPS is the CSR fanout adjacency of the
	// backward pass, one entry per consumer pin in fanout order.
	// succSetupPS[k] >= 0 marks a flip-flop consumer (an endpoint whose
	// tail contribution is its setup time); -1 marks a combinational one.
	succStart   []int32
	succs       []int32
	succSetupPS []float64
}

// NewAnalyzer precomputes the scale-independent part of STA for a placed
// design. opts.DelayScale is ignored: the scale vector is an argument of
// each Run call.
func NewAnalyzer(pl *place.Placement, opts Options) (*Analyzer, error) {
	opts.setDefaults()
	opts.DelayScale = nil
	d := pl.Design
	n := len(d.Gates)
	if n == 0 {
		return nil, errors.New("sta: empty design")
	}
	topo, err := d.TopoOrder()
	if err != nil {
		return nil, err
	}

	a := &Analyzer{
		pl:         pl,
		opts:       opts,
		topo:       topo,
		nomDelayPS: make([]float64, n),
		isDFF:      make([]bool, n),
		predStart:  make([]int32, n+1),
		succStart:  make([]int32, n+1),
	}

	// Loaded nominal delays: wire cap from the placement's net estimate,
	// one pin cap per occurrence of g in a consumer's inputs, and the
	// primary-output load.
	fanouts := pl.Fanouts()
	for g := 0; g < n; g++ {
		a.isDFF[g] = d.Gates[g].IsDFF()
		load := opts.WireCapPerUMfF * pl.NetHPWL(netlist.GateID(g))
		for _, f := range fanouts[g] {
			for _, in := range d.Gates[f].Ins {
				if in.Kind == netlist.SigGate && in.Idx == netlist.GateID(g) {
					load += d.Gates[f].Cell.InputCapFF
				}
			}
		}
		if len(pl.POsOf(netlist.GateID(g))) > 0 {
			load += opts.POLoadFF
		}
		a.nomDelayPS[g] = d.Gates[g].Cell.DelayPS(load)
	}

	// Fanin CSR, preserving pin order (duplicate pins included, exactly as
	// the forward pass visits them).
	for g := 0; g < n; g++ {
		gate := &d.Gates[g]
		if !gate.IsDFF() {
			for _, in := range gate.Ins {
				if in.Kind == netlist.SigGate {
					a.preds = append(a.preds, int32(in.Idx))
				}
			}
		}
		a.predStart[g+1] = int32(len(a.preds))
	}

	// Fanout CSR, preserving fanout-list order (one entry per consumer
	// pin, as Design.Fanouts builds it).
	for g := 0; g < n; g++ {
		for _, f := range fanouts[g] {
			a.succs = append(a.succs, int32(f))
			setup := -1.0
			if d.Gates[f].IsDFF() {
				setup = d.Gates[f].Cell.SetupPS
			}
			a.succSetupPS = append(a.succSetupPS, setup)
		}
		a.succStart[g+1] = int32(len(a.succs))
	}
	return a, nil
}

// Placement returns the placement the Analyzer was built for.
func (a *Analyzer) Placement() *place.Placement { return a.pl }

// NumGates returns the gate count, the required length of Run's scale
// vector.
func (a *Analyzer) NumGates() int { return len(a.nomDelayPS) }

// Run re-times the placement with each gate's delay multiplied by scale
// (nil = nominal, length must equal NumGates otherwise), producing the same
// Timing that Analyze would.
//
// Buffer contract: when buf is non-nil its slices — including the returned
// Paths and their Gates chains — are reused, so the previous Run's results
// held in the same buffer are invalidated; pass nil to allocate a fresh
// Timing. A buffer must not be shared between concurrent Run calls, but the
// Analyzer itself may be: it is never written after construction.
func (a *Analyzer) Run(scale []float64, buf *Timing) (*Timing, error) {
	n := len(a.nomDelayPS)
	if scale != nil && len(scale) != n {
		return nil, fmt.Errorf("sta: DelayScale length %d, want %d", len(scale), n)
	}
	tm := buf
	if tm == nil {
		tm = &Timing{}
	}
	tm.Pl = a.pl
	tm.Opts = a.opts
	tm.Opts.DelayScale = scale
	tm.Light = false
	tm.GateDelayPS = growFloat(tm.GateDelayPS, n)
	tm.ArrPS = growFloat(tm.ArrPS, n)
	tm.TailPS = growFloat(tm.TailPS, n)
	tm.bestPred = growInt32(tm.bestPred, n)
	tm.bestSucc = growInt32(tm.bestSucc, n)

	a.scaleDelays(tm, scale)

	// Forward pass: arrival times and best predecessor.
	for _, g := range a.topo {
		arr := 0.0
		best := int32(-1)
		for _, p := range a.preds[a.predStart[g]:a.predStart[g+1]] {
			if v := tm.ArrPS[p]; v > arr {
				arr = v
				best = p
			}
		}
		tm.ArrPS[g] = arr + tm.GateDelayPS[g]
		tm.bestPred[g] = best
	}

	// Backward pass: tails and best successor.
	for i := len(a.topo) - 1; i >= 0; i-- {
		g := a.topo[i]
		tail := 0.0
		succ := int32(-1)
		for k := a.succStart[g]; k < a.succStart[g+1]; k++ {
			f := a.succs[k]
			cand := a.succSetupPS[k]
			if cand < 0 {
				cand = tm.GateDelayPS[f] + tm.TailPS[f]
			}
			if cand > tail {
				tail = cand
				succ = f
			}
		}
		tm.TailPS[g] = tail
		tm.bestSucc[g] = succ
	}

	tm.DcritPS = dcrit(tm.ArrPS, tm.TailPS)
	a.extractPaths(tm)
	return tm, nil
}

// RunLight is the Dcrit-only fast path of Run: it re-times the placement
// into buf exactly like Run — GateDelayPS, ArrPS, TailPS and DcritPS are
// bit-identical — but never reconstructs the per-gate longest-path set, so
// the result carries no Paths (and Light is set). Monte-Carlo loops that
// only read the die's critical delay (yield tuning, bias verification, RBB
// scans) re-time through it; anything that walks paths — the replica
// sensors' nominal path set, the Allocator's constraint rows — needs a full
// Run of the nominal corner, which it pays once per placement, not per die.
//
// The backward (tail) pass is kept even though no path is extracted:
// DcritPS is the max of ArrPS[g]+TailPS[g] over all gates, and the float
// association differs along a path depending on where the forward and
// backward sums meet, so a forward-only endpoint reduction could drift from
// Run's DcritPS by an ulp. Matching Run's float operations exactly is the
// contract the differential and fuzz harnesses pin.
//
// The buffer contract matches Run; a buffer may freely alternate between
// Run and RunLight calls.
func (a *Analyzer) RunLight(scale []float64, buf *Timing) (*Timing, error) {
	n := len(a.nomDelayPS)
	if scale != nil && len(scale) != n {
		return nil, fmt.Errorf("sta: DelayScale length %d, want %d", len(scale), n)
	}
	tm := buf
	if tm == nil {
		tm = &Timing{}
	}
	tm.Pl = a.pl
	tm.Opts = a.opts
	tm.Opts.DelayScale = scale
	tm.Light = true
	tm.Paths = tm.Paths[:0]
	tm.GateDelayPS = growFloat(tm.GateDelayPS, n)
	tm.ArrPS = growFloat(tm.ArrPS, n)
	tm.TailPS = growFloat(tm.TailPS, n)

	a.scaleDelays(tm, scale)

	// Forward pass, no predecessor tracking: same float ops as Run.
	for _, g := range a.topo {
		arr := 0.0
		for _, p := range a.preds[a.predStart[g]:a.predStart[g+1]] {
			if v := tm.ArrPS[p]; v > arr {
				arr = v
			}
		}
		tm.ArrPS[g] = arr + tm.GateDelayPS[g]
	}

	// Backward pass, no successor tracking.
	for i := len(a.topo) - 1; i >= 0; i-- {
		g := a.topo[i]
		tail := 0.0
		for k := a.succStart[g]; k < a.succStart[g+1]; k++ {
			cand := a.succSetupPS[k]
			if cand < 0 {
				f := a.succs[k]
				cand = tm.GateDelayPS[f] + tm.TailPS[f]
			}
			if cand > tail {
				tail = cand
			}
		}
		tm.TailPS[g] = tail
	}

	tm.DcritPS = dcrit(tm.ArrPS, tm.TailPS)
	return tm, nil
}

// scaleDelays fills tm.GateDelayPS with the nominal loaded delays times the
// optional per-gate scale vector.
func (a *Analyzer) scaleDelays(tm *Timing, scale []float64) {
	if scale == nil {
		copy(tm.GateDelayPS, a.nomDelayPS)
		return
	}
	for g, s := range scale {
		tm.GateDelayPS[g] = a.nomDelayPS[g] * s
	}
}

// dcrit is the shared critical-delay reduction of Run and RunLight; one
// body, so the two paths cannot diverge in float order.
func dcrit(arr, tail []float64) float64 {
	d := 0.0
	for g := range arr {
		if t := arr[g] + tail[g]; t > d {
			d = t
		}
	}
	return d
}

// extractPaths reconstructs, for every gate, the longest path through it,
// and prunes the set to unique paths (the heuristic of [11] the paper uses
// to avoid full path enumeration). Chains are stored in tm's arena and
// deduplicated through tm's reusable open-hash table, so a warmed-up buffer
// extracts without allocating. Gates are visited in topological order so
// that a gate whose predecessor points back at it (bestSucc[bestPred[g]] ==
// g) can reuse the predecessor's chain wholesale: the two walks meet the
// same start- and endpoint, making the chains equal without rebuilding —
// the common case on chain-structured logic, which turns the O(depth) walk
// into O(1) for most gates.
func (a *Analyzer) extractPaths(tm *Timing) {
	n := len(a.nomDelayPS)
	paths := tm.Paths[:0]
	arena := tm.arena[:0]
	tm.pathOf = growInt32(tm.pathOf, n)

	nb := 1
	for nb < 2*n {
		nb <<= 1
	}
	if cap(tm.buckets) < nb {
		tm.buckets = make([]int32, nb)
	}
	buckets := tm.buckets[:nb]
	for i := range buckets {
		buckets[i] = -1
	}
	bnext := tm.bnext[:0]

	for _, g := range a.topo {
		delay := tm.ArrPS[g] + tm.TailPS[g]
		if p := tm.bestPred[g]; p >= 0 && tm.bestSucc[p] == int32(g) {
			// back(g) = back(p)+[g] and fwd(p) = [g]+fwd(g): identical
			// chains, so fold g's delay into p's already-registered path.
			idx := tm.pathOf[p]
			tm.pathOf[g] = idx
			if delay > paths[idx].DelayPS {
				paths[idx].DelayPS = delay
			}
			continue
		}
		// Walk back to the startpoint...
		back := tm.backBuf[:0]
		for cur := int32(g); cur >= 0; cur = tm.bestPred[cur] {
			back = append(back, netlist.GateID(cur))
		}
		tm.backBuf = back
		start := len(arena)
		for i := len(back) - 1; i >= 0; i-- {
			arena = append(arena, back[i])
		}
		// ...then forward to the endpoint. A flip-flop consumer is the
		// endpoint itself (its D pin); it is not part of the path, but
		// its setup time is already inside TailPS.
		for cur := tm.bestSucc[g]; cur >= 0; cur = tm.bestSucc[cur] {
			if a.isDFF[cur] {
				break
			}
			arena = append(arena, netlist.GateID(cur))
		}
		chain := arena[start:]

		h := uint64(14695981039346656037)
		for _, id := range chain {
			h ^= uint64(uint32(id))
			h *= 1099511628211
		}
		slot := h & uint64(nb-1)
		dup := false
		for j := buckets[slot]; j >= 0; j = bnext[j] {
			if slices.Equal(paths[j].Gates, chain) {
				// The same chain reconstructed from different gates can
				// differ in the last ulp (float association); keep the
				// max so the critical path matches Dcrit exactly.
				if delay > paths[j].DelayPS {
					paths[j].DelayPS = delay
				}
				tm.pathOf[g] = j
				dup = true
				break
			}
		}
		if dup {
			arena = arena[:start]
			continue
		}
		bnext = append(bnext, buckets[slot])
		buckets[slot] = int32(len(paths))
		tm.pathOf[g] = int32(len(paths))
		paths = append(paths, Path{Gates: chain, DelayPS: delay})
	}
	tm.arena = arena
	tm.bnext = bnext

	slices.SortFunc(paths, func(x, y Path) int {
		if x.DelayPS != y.DelayPS {
			if x.DelayPS > y.DelayPS {
				return -1
			}
			return 1
		}
		return len(y.Gates) - len(x.Gates)
	})
	for i := range paths {
		paths[i].SlackPS = tm.DcritPS - paths[i].DelayPS
	}
	tm.Paths = paths
}

func growFloat(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}

func growInt32(s []int32, n int) []int32 {
	if cap(s) < n {
		return make([]int32, n)
	}
	return s[:n]
}
