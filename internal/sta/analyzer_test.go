package sta

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/cell"
	"repro/internal/gen"
	"repro/internal/netlist"
	"repro/internal/place"
)

// randomPlacement builds and places a random DAG (with a sprinkling of
// flip-flops so sequential endpoints are exercised) deterministically from
// seed.
func randomPlacement(tb testing.TB, seed int64) *place.Placement {
	tb.Helper()
	l := cell.Default()
	rng := rand.New(rand.NewSource(seed))
	b := netlist.NewBuilder("rand", l)
	nPI := 2 + rng.Intn(4)
	pool := make([]netlist.Signal, 0, 64)
	for i := 0; i < nPI; i++ {
		pool = append(pool, b.PI("p"+string(rune('0'+i))))
	}
	nG := 8 + rng.Intn(40)
	for i := 0; i < nG; i++ {
		x := pool[rng.Intn(len(pool))]
		y := pool[rng.Intn(len(pool))]
		var s netlist.Signal
		switch rng.Intn(5) {
		case 0:
			s = b.Nand(x, y)
		case 1:
			s = b.Nor(x, y)
		case 2:
			s = b.DFF(x)
		default:
			s = b.Not(x)
		}
		pool = append(pool, s)
	}
	for i, s := range pool[nPI:] {
		if rng.Intn(3) == 0 || i == len(pool)-nPI-1 {
			b.Output("o"+string(rune('a'+i%26))+string(rune('0'+i/26)), s)
		}
	}
	d, err := b.Build()
	if err != nil {
		tb.Fatal(err)
	}
	pl, err := place.Place(d, l, place.Options{})
	if err != nil {
		tb.Fatal(err)
	}
	return pl
}

// randomScale draws a per-gate delay-scale vector; returns nil (the nominal
// corner) roughly one time in four.
func randomScale(rng *rand.Rand, n int) []float64 {
	if rng.Intn(4) == 0 {
		return nil
	}
	s := make([]float64, n)
	for i := range s {
		s[i] = 0.8 + 0.5*rng.Float64()
	}
	return s
}

// requireTimingEqual asserts two Timings are identical in every output
// field, exact to the bit: both sides compute the same float operations in
// the same order, so any drift is a real divergence.
func requireTimingEqual(tb testing.TB, want, got *Timing, label string) {
	tb.Helper()
	if want.DcritPS != got.DcritPS {
		tb.Fatalf("%s: Dcrit %v != %v", label, got.DcritPS, want.DcritPS)
	}
	eqF := func(name string, a, b []float64) {
		tb.Helper()
		if len(a) != len(b) {
			tb.Fatalf("%s: %s length %d != %d", label, name, len(b), len(a))
		}
		for i := range a {
			if a[i] != b[i] {
				tb.Fatalf("%s: %s[%d] = %v, want %v", label, name, i, b[i], a[i])
			}
		}
	}
	eqF("GateDelayPS", want.GateDelayPS, got.GateDelayPS)
	eqF("ArrPS", want.ArrPS, got.ArrPS)
	eqF("TailPS", want.TailPS, got.TailPS)
	if len(want.Paths) != len(got.Paths) {
		tb.Fatalf("%s: %d paths, want %d", label, len(got.Paths), len(want.Paths))
	}
	for i := range want.Paths {
		w, g := want.Paths[i], got.Paths[i]
		if w.DelayPS != g.DelayPS || w.SlackPS != g.SlackPS {
			tb.Fatalf("%s: path %d delay/slack (%v, %v), want (%v, %v)",
				label, i, g.DelayPS, g.SlackPS, w.DelayPS, w.SlackPS)
		}
		if len(w.Gates) != len(g.Gates) {
			tb.Fatalf("%s: path %d has %d gates, want %d", label, i, len(g.Gates), len(w.Gates))
		}
		for k := range w.Gates {
			if w.Gates[k] != g.Gates[k] {
				tb.Fatalf("%s: path %d gate %d = %d, want %d", label, i, k, g.Gates[k], w.Gates[k])
			}
		}
	}
}

// TestAnalyzerMatchesAnalyze is the differential harness of the batched STA
// path: across random placements and random DelayScale vectors, a shared
// Analyzer re-running into one dirty, continually reused Timing buffer must
// reproduce a from-scratch Analyze exactly.
func TestAnalyzerMatchesAnalyze(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	buf := &Timing{} // deliberately reused — and dirtied — across everything
	for trial := 0; trial < 30; trial++ {
		pl := randomPlacement(t, int64(trial))
		an, err := NewAnalyzer(pl, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if an.NumGates() != len(pl.Design.Gates) {
			t.Fatalf("NumGates() = %d, want %d", an.NumGates(), len(pl.Design.Gates))
		}
		for round := 0; round < 4; round++ {
			scale := randomScale(rng, len(pl.Design.Gates))
			want, err := Analyze(pl, Options{DelayScale: scale})
			if err != nil {
				t.Fatal(err)
			}
			got, err := an.Run(scale, buf)
			if err != nil {
				t.Fatal(err)
			}
			if got != buf {
				t.Fatal("Run did not return the provided buffer")
			}
			requireTimingEqual(t, want, got, "random trial")
		}
	}
}

// TestAnalyzerMatchesAnalyzeOnBenchmarks runs the same differential check
// on real generated benchmarks, where path sets are deep and heavily
// shared.
func TestAnalyzerMatchesAnalyzeOnBenchmarks(t *testing.T) {
	l := cell.Default()
	rng := rand.New(rand.NewSource(7))
	buf := &Timing{}
	names := []string{"c1355", "c3540"}
	if !testing.Short() {
		names = append(names, "c6288")
	}
	for _, name := range names {
		d, err := gen.Build(name, l)
		if err != nil {
			t.Fatal(err)
		}
		pl, err := place.Place(d, l, place.Options{})
		if err != nil {
			t.Fatal(err)
		}
		an, err := NewAnalyzer(pl, Options{})
		if err != nil {
			t.Fatal(err)
		}
		for round := 0; round < 3; round++ {
			scale := randomScale(rng, len(d.Gates))
			want, err := Analyze(pl, Options{DelayScale: scale})
			if err != nil {
				t.Fatal(err)
			}
			got, err := an.Run(scale, buf)
			if err != nil {
				t.Fatal(err)
			}
			requireTimingEqual(t, want, got, name)
		}
	}
}

// TestAnalyzerRunValidation pins the error contract of the batched path.
func TestAnalyzerRunValidation(t *testing.T) {
	pl := randomPlacement(t, 1)
	an, err := NewAnalyzer(pl, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := an.Run(make([]float64, an.NumGates()+1), nil); err == nil {
		t.Error("bad DelayScale length accepted")
	}
	// A nil buffer allocates a fresh Timing per call.
	a, err := an.Run(nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := an.Run(nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if a == b {
		t.Error("nil-buffer Runs returned the same Timing")
	}
	requireTimingEqual(t, a, b, "repeat nominal")
}

// TestAnalyzerBufferCrossesDesigns reuses one Timing buffer across
// analyzers of different designs and sizes — buffers carry capacity, never
// stale content.
func TestAnalyzerBufferCrossesDesigns(t *testing.T) {
	buf := &Timing{}
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 10; trial++ {
		pl := randomPlacement(t, int64(100+trial))
		an, err := NewAnalyzer(pl, Options{})
		if err != nil {
			t.Fatal(err)
		}
		scale := randomScale(rng, len(pl.Design.Gates))
		want, err := Analyze(pl, Options{DelayScale: scale})
		if err != nil {
			t.Fatal(err)
		}
		got, err := an.Run(scale, buf)
		if err != nil {
			t.Fatal(err)
		}
		requireTimingEqual(t, want, got, "cross-design reuse")
	}
}

// FuzzAnalyzerRun fuzzes the differential property: for any (design seed,
// scale seed, scale spread), a reused-buffer Analyzer.Run equals a fresh
// Analyze.
func FuzzAnalyzerRun(f *testing.F) {
	f.Add(int64(1), int64(1), 0.3)
	f.Add(int64(2), int64(7), 0.0)
	f.Add(int64(42), int64(99), 0.9)
	f.Add(int64(-5), int64(0), 0.5)
	f.Add(int64(12345), int64(-8), 0.05)
	f.Fuzz(func(t *testing.T, designSeed, scaleSeed int64, spread float64) {
		if math.IsNaN(spread) || math.IsInf(spread, 0) {
			t.Skip("degenerate spread")
		}
		spread = math.Abs(spread)
		if spread > 0.95 {
			spread = math.Mod(spread, 0.95)
		}
		pl := randomPlacement(t, designSeed)
		an, err := NewAnalyzer(pl, Options{})
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(scaleSeed))
		buf := &Timing{}
		for round := 0; round < 3; round++ {
			var scale []float64
			if round > 0 { // round 0 checks the nominal corner
				scale = make([]float64, an.NumGates())
				for i := range scale {
					scale[i] = 1 - spread + 2*spread*rng.Float64()
				}
			}
			want, err := Analyze(pl, Options{DelayScale: scale})
			if err != nil {
				t.Fatal(err)
			}
			got, err := an.Run(scale, buf)
			if err != nil {
				t.Fatal(err)
			}
			requireTimingEqual(t, want, got, "fuzz")
		}
	})
}
