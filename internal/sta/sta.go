// Package sta is the static timing analysis engine of the flow, standing in
// for the commercial STA tool the paper uses (PrimeTime). It computes loaded
// gate delays (input caps plus placement-derived wire capacitance), arrival
// and required times over the combinational graph, and extracts the paper's
// timing-constraint set: the longest path through each cell ([11]), pruned
// to a unique path set Pi.
package sta

import (
	"repro/internal/netlist"
	"repro/internal/place"
)

// Options configure the analysis.
type Options struct {
	// WireCapPerUMfF is the wire capacitance per micrometre of estimated
	// net length (default 0.20 fF/um).
	WireCapPerUMfF float64
	// POLoadFF is the capacitive load on primary outputs (default 2 fF).
	POLoadFF float64
	// DelayScale optionally scales each gate's delay (per-gate process
	// variation); length must equal the gate count when non-nil.
	DelayScale []float64
}

func (o *Options) setDefaults() {
	if o.WireCapPerUMfF <= 0 {
		o.WireCapPerUMfF = 0.20
	}
	if o.POLoadFF <= 0 {
		o.POLoadFF = 2.0
	}
}

// Path is one extracted timing path: the chain of gates from a startpoint
// (PI or flip-flop output) to an endpoint (PO, flip-flop D input, or an
// unloaded output).
type Path struct {
	// Gates is the ordered gate chain.
	Gates []netlist.GateID
	// DelayPS is the nominal path delay including endpoint setup.
	DelayPS float64
	// SlackPS is Dcrit - DelayPS (non-negative at the nominal corner).
	SlackPS float64
}

// Timing is the analysis result.
type Timing struct {
	Pl   *place.Placement
	Opts Options

	// GateDelayPS is the loaded delay of every gate at the analysis
	// corner (clk-to-q for flip-flops).
	GateDelayPS []float64
	// ArrPS is the output arrival time of every gate.
	ArrPS []float64
	// TailPS is the longest delay from the gate output to any endpoint
	// (including endpoint setup).
	TailPS []float64
	// DcritPS is the critical path delay.
	DcritPS float64
	// Paths is the pruned unique set Pi of longest paths through each
	// cell, sorted by descending delay. Empty after a RunLight — the
	// Dcrit-only fast path never extracts paths.
	Paths []Path
	// Light reports that this Timing came from Analyzer.RunLight: only
	// GateDelayPS, ArrPS, TailPS and DcritPS are valid, and Paths is
	// empty. A full Run on the same buffer clears it.
	Light bool

	// Reusable per-run state for Analyzer.Run: predecessor/successor
	// choices, the path-chain walk and storage buffers, and the
	// deduplication hash table. A Timing that has been through a Run
	// carries its capacity to the next Run on the same buffer.
	bestPred, bestSucc []int32
	pathOf             []int32
	backBuf            []netlist.GateID
	arena              []netlist.GateID
	buckets            []int32
	bnext              []int32
}

// Analyze runs STA on a placed design. It is the one-shot form of Analyzer:
// callers re-timing the same placement under many DelayScale vectors should
// construct one Analyzer and call Run with a reused buffer instead.
func Analyze(pl *place.Placement, opts Options) (*Timing, error) {
	an, err := NewAnalyzer(pl, opts)
	if err != nil {
		return nil, err
	}
	return an.Run(opts.DelayScale, nil)
}

// CriticalPath returns the longest extracted path.
func (tm *Timing) CriticalPath() Path {
	if len(tm.Paths) == 0 {
		return Path{}
	}
	return tm.Paths[0]
}
