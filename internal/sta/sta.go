// Package sta is the static timing analysis engine of the flow, standing in
// for the commercial STA tool the paper uses (PrimeTime). It computes loaded
// gate delays (input caps plus placement-derived wire capacitance), arrival
// and required times over the combinational graph, and extracts the paper's
// timing-constraint set: the longest path through each cell ([11]), pruned
// to a unique path set Pi.
package sta

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"repro/internal/netlist"
	"repro/internal/place"
)

// Options configure the analysis.
type Options struct {
	// WireCapPerUMfF is the wire capacitance per micrometre of estimated
	// net length (default 0.20 fF/um).
	WireCapPerUMfF float64
	// POLoadFF is the capacitive load on primary outputs (default 2 fF).
	POLoadFF float64
	// DelayScale optionally scales each gate's delay (per-gate process
	// variation); length must equal the gate count when non-nil.
	DelayScale []float64
}

func (o *Options) setDefaults() {
	if o.WireCapPerUMfF <= 0 {
		o.WireCapPerUMfF = 0.20
	}
	if o.POLoadFF <= 0 {
		o.POLoadFF = 2.0
	}
}

// Path is one extracted timing path: the chain of gates from a startpoint
// (PI or flip-flop output) to an endpoint (PO, flip-flop D input, or an
// unloaded output).
type Path struct {
	// Gates is the ordered gate chain.
	Gates []netlist.GateID
	// DelayPS is the nominal path delay including endpoint setup.
	DelayPS float64
	// SlackPS is Dcrit - DelayPS (non-negative at the nominal corner).
	SlackPS float64
}

// Timing is the analysis result.
type Timing struct {
	Pl   *place.Placement
	Opts Options

	// GateDelayPS is the loaded delay of every gate at the analysis
	// corner (clk-to-q for flip-flops).
	GateDelayPS []float64
	// ArrPS is the output arrival time of every gate.
	ArrPS []float64
	// TailPS is the longest delay from the gate output to any endpoint
	// (including endpoint setup).
	TailPS []float64
	// DcritPS is the critical path delay.
	DcritPS float64
	// Paths is the pruned unique set Pi of longest paths through each
	// cell, sorted by descending delay.
	Paths []Path
}

// Analyze runs STA on a placed design.
func Analyze(pl *place.Placement, opts Options) (*Timing, error) {
	opts.setDefaults()
	d := pl.Design
	n := len(d.Gates)
	if n == 0 {
		return nil, errors.New("sta: empty design")
	}
	if opts.DelayScale != nil && len(opts.DelayScale) != n {
		return nil, fmt.Errorf("sta: DelayScale length %d, want %d", len(opts.DelayScale), n)
	}
	topo, err := d.TopoOrder()
	if err != nil {
		return nil, err
	}

	tm := &Timing{
		Pl:          pl,
		Opts:        opts,
		GateDelayPS: make([]float64, n),
		ArrPS:       make([]float64, n),
		TailPS:      make([]float64, n),
	}

	// Loaded delays.
	fanouts := pl.Fanouts()
	for g := 0; g < n; g++ {
		load := opts.WireCapPerUMfF * pl.NetHPWL(netlist.GateID(g))
		for _, f := range fanouts[g] {
			// One pin per occurrence of g in f's inputs.
			for _, in := range d.Gates[f].Ins {
				if in.Kind == netlist.SigGate && in.Idx == netlist.GateID(g) {
					load += d.Gates[f].Cell.InputCapFF
				}
			}
		}
		if len(pl.POsOf(netlist.GateID(g))) > 0 {
			load += opts.POLoadFF
		}
		delay := d.Gates[g].Cell.DelayPS(load)
		if opts.DelayScale != nil {
			delay *= opts.DelayScale[g]
		}
		tm.GateDelayPS[g] = delay
	}

	// Forward pass: arrival times and best predecessor.
	bestPred := make([]int32, n)
	for i := range bestPred {
		bestPred[i] = -1
	}
	for _, g := range topo {
		gate := &d.Gates[g]
		arr := 0.0
		if !gate.IsDFF() {
			for _, in := range gate.Ins {
				if in.Kind != netlist.SigGate {
					continue
				}
				if a := tm.ArrPS[in.Idx]; a > arr {
					arr = a
					bestPred[g] = in.Idx
				}
			}
		}
		tm.ArrPS[g] = arr + tm.GateDelayPS[g]
	}

	// Backward pass: tails and best successor. Endpoints: PO pins (tail
	// 0), flip-flop D pins (tail = setup), unloaded outputs (tail 0).
	bestSucc := make([]int32, n)
	for i := range bestSucc {
		bestSucc[i] = -1
	}
	for i := len(topo) - 1; i >= 0; i-- {
		g := topo[i]
		tail := 0.0
		succ := int32(-1)
		for _, f := range fanouts[g] {
			var cand float64
			if d.Gates[f].IsDFF() {
				cand = d.Gates[f].Cell.SetupPS
			} else {
				cand = tm.GateDelayPS[f] + tm.TailPS[f]
			}
			if cand > tail {
				tail = cand
				succ = f
			}
		}
		tm.TailPS[g] = tail
		bestSucc[g] = succ
	}

	// Critical delay and the per-cell longest-path set.
	for g := 0; g < n; g++ {
		if t := tm.ArrPS[g] + tm.TailPS[g]; t > tm.DcritPS {
			tm.DcritPS = t
		}
	}
	tm.Paths = tm.extractPaths(bestPred, bestSucc)
	return tm, nil
}

// extractPaths reconstructs, for every gate, the longest path through it,
// and prunes the set to unique paths (the heuristic of [11] the paper uses
// to avoid full path enumeration).
func (tm *Timing) extractPaths(bestPred, bestSucc []int32) []Path {
	n := len(tm.GateDelayPS)
	seen := make(map[string]int, n)
	var paths []Path
	var key strings.Builder
	for g := 0; g < n; g++ {
		// Walk back to the startpoint...
		var back []netlist.GateID
		for cur := int32(g); cur >= 0; cur = bestPred[cur] {
			back = append(back, cur)
		}
		chain := make([]netlist.GateID, 0, len(back)+8)
		for i := len(back) - 1; i >= 0; i-- {
			chain = append(chain, back[i])
		}
		// ...then forward to the endpoint. A flip-flop consumer is the
		// endpoint itself (its D pin); it is not part of the path, but
		// its setup time is already inside TailPS.
		for cur := bestSucc[g]; cur >= 0; cur = bestSucc[cur] {
			if tm.Pl.Design.Gates[cur].IsDFF() {
				break
			}
			chain = append(chain, cur)
		}

		key.Reset()
		for _, id := range chain {
			fmt.Fprintf(&key, "%d,", id)
		}
		k := key.String()
		delay := tm.ArrPS[g] + tm.TailPS[g]
		if idx, dup := seen[k]; dup {
			// The same chain reconstructed from different gates can
			// differ in the last ulp (float association); keep the
			// max so the critical path matches Dcrit exactly.
			if delay > paths[idx].DelayPS {
				paths[idx].DelayPS = delay
			}
			continue
		}
		seen[k] = len(paths)
		paths = append(paths, Path{Gates: chain, DelayPS: delay})
	}
	sort.Slice(paths, func(i, j int) bool {
		if paths[i].DelayPS != paths[j].DelayPS {
			return paths[i].DelayPS > paths[j].DelayPS
		}
		return len(paths[i].Gates) > len(paths[j].Gates)
	})
	for i := range paths {
		paths[i].SlackPS = tm.DcritPS - paths[i].DelayPS
	}
	return paths
}

// CriticalPath returns the longest extracted path.
func (tm *Timing) CriticalPath() Path {
	if len(tm.Paths) == 0 {
		return Path{}
	}
	return tm.Paths[0]
}
