package flow

import "sync"

// Cache memoizes keyed computations: for each key the compute function runs
// exactly once, concurrent callers of an in-flight key block for its result,
// and the value (or error — flow computations are deterministic, so a
// failure is permanent for the key) is retained for every later caller.
// The zero value is ready to use.
type Cache[V any] struct {
	m sync.Map // key -> *cacheEntry[V]
}

type cacheEntry[V any] struct {
	once sync.Once
	val  V
	err  error
}

// Do returns the cached value for key, running compute first if this is the
// key's first caller.
func (c *Cache[V]) Do(key string, compute func() (V, error)) (V, error) {
	v, _ := c.m.LoadOrStore(key, &cacheEntry[V]{})
	e := v.(*cacheEntry[V])
	e.once.Do(func() { e.val, e.err = compute() })
	return e.val, e.err
}

// Len reports the number of keys resident in the cache.
func (c *Cache[V]) Len() int {
	n := 0
	c.m.Range(func(_, _ any) bool { n++; return true })
	return n
}

// Once runs a function at most once per string key, with concurrent callers
// of the same key waiting for the winner to finish (unlike a bare
// LoadOrStore flag, which lets losers proceed while the winner still runs).
// The zero value is ready to use. bench_test.go uses it to print each
// regenerated experiment table exactly once across benchmark iterations.
type Once struct {
	m sync.Map // key -> *sync.Once
}

// Do runs f if no other call with the same key has run it yet.
func (o *Once) Do(key string, f func()) {
	v, _ := o.m.LoadOrStore(key, new(sync.Once))
	v.(*sync.Once).Do(f)
}
