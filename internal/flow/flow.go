// Package flow is the stage-cached, concurrent experiment engine behind the
// drivers in experiments.go.
//
// The reproduction flow factors into a deterministic prefix — benchmark
// generation, row placement, nominal STA — followed by cheap per-point work
// (problem construction and allocation for one (beta, C) pair). Every
// experiment grid re-visits the same prefixes many times: Table 1 alone runs
// four (beta, C) points per benchmark, and the cluster sweep runs ten on one
// design. The Engine memoizes each prefix behind a concurrency-safe cache so
// it is computed exactly once per process-wide key and shared, while the
// Map/MapAll pool fans the per-point work out over a bounded number of
// workers with context cancellation and deterministic, index-ordered
// results.
//
// Everything a Prefix exposes is immutable after construction (the placement
// and timing structs are built eagerly and only read by the allocators), so
// a single cached instance may be used from any number of goroutines.
package flow

import (
	"fmt"
	"sync/atomic"

	"repro/internal/cell"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/netlist"
	"repro/internal/place"
	"repro/internal/sta"
)

// Prefix is the deterministic front of the flow: the generated (or supplied)
// design, its row placement, and the nominal static timing analysis. All
// downstream stages — problem construction, allocation, layout — only read
// it, so one Prefix is safely shared across concurrent experiment points.
type Prefix struct {
	Design    *netlist.Design
	Placement *place.Placement
	Timing    *sta.Timing
	// Analyzer is the reusable STA engine over Placement (Timing is its
	// nominal run). It is immutable and safe to share across workers;
	// each worker keeps its own sta.Timing scratch buffer for Run.
	Analyzer *sta.Analyzer
	// Allocator is the reusable clustering engine over (Placement,
	// Timing): every (beta, C) experiment point materializes its problem
	// through it instead of a fresh core.BuildProblem. Like the Analyzer
	// it is immutable and shared; each worker keeps its own core.Instance
	// scratch.
	Allocator *core.Allocator
	// Solves is the prefix-level allocation-solve cache over Allocator:
	// population studies hand it to variation.TuneOptions.SolveCache so
	// the monitor-quantized first-iteration solves are shared across
	// workers, streams and requests — the first yield study against this
	// prefix warms it for every later one. The cache is concurrency-safe;
	// like everything else here it is shared, never rebuilt.
	Solves *core.SolveCache
}

// Engine memoizes flow prefixes. The zero value is not usable; construct
// with New.
type Engine struct {
	lib      *cell.Library
	designs  Cache[*netlist.Design]
	prefixes Cache[*Prefix]
}

// New returns an Engine over the default characterized library.
func New() *Engine { return NewWithLibrary(cell.Default()) }

// NewWithLibrary returns an Engine whose benchmarks are mapped to lib.
func NewWithLibrary(lib *cell.Library) *Engine { return &Engine{lib: lib} }

// Library returns the engine's cell library.
func (e *Engine) Library() *cell.Library { return e.lib }

// Design runs stage 1 — benchmark generation — memoized by name.
func (e *Engine) Design(name string) (*netlist.Design, error) {
	return e.designs.Do(name, func() (*netlist.Design, error) {
		return gen.Build(name, e.lib)
	})
}

// Prefix runs stages 1-3 — generation, placement, nominal STA — memoized
// per (benchmark, forceRows). Concurrent callers of the same key block for
// one shared computation. forceRows overrides the placer's automatic row
// count (0 = automatic); variants share the stage-1 design cache.
func (e *Engine) Prefix(name string, forceRows int) (*Prefix, error) {
	key := fmt.Sprintf("%s\x00rows=%d", name, forceRows)
	return e.prefixes.Do(key, func() (*Prefix, error) {
		d, err := e.Design(name)
		if err != nil {
			return nil, err
		}
		return PrefixFor(d, e.lib, forceRows)
	})
}

// PrefixCount reports how many distinct prefixes the engine holds, for
// tests and cache diagnostics.
func (e *Engine) PrefixCount() int { return e.prefixes.Len() }

// prefixBuilds counts every Prefix constructed process-wide. Serving layers
// whose whole point is to NOT rebuild prefixes (the fbbd coalesced cache)
// assert on it: N concurrent identical requests must move it by exactly one.
var prefixBuilds atomic.Int64

// PrefixBuilds reports how many Prefixes have been constructed process-wide
// since start. It is a conformance-test hook: delta across a traffic burst
// equals the number of distinct placements actually built, so coalescing
// and cache-sharing bugs (double builds of one netlist) show up as a count,
// not a heisenbug.
func PrefixBuilds() int64 { return prefixBuilds.Load() }

// PrefixFor computes stages 2-3 (placement and nominal STA) for an already
// built design, uncached. It is the computation Engine.Prefix memoizes, and
// the path custom (non-benchmark) designs take.
func PrefixFor(d *netlist.Design, lib *cell.Library, forceRows int) (*Prefix, error) {
	prefixBuilds.Add(1)
	pl, err := place.Place(d, lib, place.Options{ForceRows: forceRows})
	if err != nil {
		return nil, err
	}
	// Warm the placement's SoA gate-centre cache eagerly: every variation
	// Sampler over this prefix (one per yield worker) shares it, and
	// building it here keeps the first per-die sample on the hot path
	// instead of paying the one-time sweep under traffic.
	pl.Centers()
	an, err := sta.NewAnalyzer(pl, sta.Options{})
	if err != nil {
		return nil, err
	}
	tm, err := an.Run(nil, nil)
	if err != nil {
		return nil, err
	}
	al, err := core.NewAllocator(pl, tm)
	if err != nil {
		return nil, err
	}
	return &Prefix{Design: d, Placement: pl, Timing: tm, Analyzer: an, Allocator: al, Solves: core.NewSolveCache(al)}, nil
}
