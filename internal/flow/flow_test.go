package flow

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

func TestCacheComputesOnce(t *testing.T) {
	var c Cache[*int]
	var calls atomic.Int32
	var wg sync.WaitGroup
	ptrs := make([]*int, 64)
	for g := range ptrs {
		wg.Add(1)
		go func() {
			defer wg.Done()
			v, err := c.Do("k", func() (*int, error) {
				calls.Add(1)
				n := 42
				return &n, nil
			})
			if err != nil {
				t.Error(err)
			}
			ptrs[g] = v
		}()
	}
	wg.Wait()
	if calls.Load() != 1 {
		t.Fatalf("compute ran %d times, want 1", calls.Load())
	}
	for _, p := range ptrs {
		if p != ptrs[0] {
			t.Fatal("callers got different cached pointers")
		}
	}
	if c.Len() != 1 {
		t.Fatalf("Len() = %d, want 1", c.Len())
	}
}

func TestCacheRetainsError(t *testing.T) {
	var c Cache[int]
	var calls int
	fail := errors.New("boom")
	for i := 0; i < 3; i++ {
		_, err := c.Do("bad", func() (int, error) { calls++; return 0, fail })
		if err != fail {
			t.Fatalf("got %v, want cached error", err)
		}
	}
	if calls != 1 {
		t.Fatalf("failing compute ran %d times, want 1", calls)
	}
}

func TestOnceRunsWinnerOnly(t *testing.T) {
	var o Once
	var calls atomic.Int32
	var wg sync.WaitGroup
	for g := 0; g < 32; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			o.Do("print", func() { calls.Add(1) })
			if calls.Load() == 0 {
				t.Error("Do returned before the winner finished")
			}
		}()
	}
	wg.Wait()
	if calls.Load() != 1 {
		t.Fatalf("f ran %d times, want 1", calls.Load())
	}
}

func TestMapOrdering(t *testing.T) {
	for _, workers := range []int{0, 1, 3, 64} {
		out, err := Map(context.Background(), workers, 100,
			func(_ context.Context, i int) (int, error) { return i * i, nil })
		if err != nil {
			t.Fatal(err)
		}
		for i, v := range out {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestMapReturnsLowestIndexError(t *testing.T) {
	bad := func(i int) error { return fmt.Errorf("item %d failed", i) }
	_, err := Map(context.Background(), 8, 50, func(_ context.Context, i int) (int, error) {
		if i == 17 || i == 33 {
			return 0, bad(i)
		}
		return i, nil
	})
	if err == nil || err.Error() != "item 17 failed" {
		t.Fatalf("got %v, want the lowest-index failure", err)
	}
}

func TestMapCancelStopsWork(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var started atomic.Int32
	_, err := Map(ctx, 2, 1000, func(_ context.Context, i int) (int, error) {
		if started.Add(1) == 1 {
			cancel()
		}
		return i, nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
	if n := started.Load(); n == 1000 {
		t.Error("cancellation did not stop pending items")
	}
}

func TestMapAllKeepsPartialResults(t *testing.T) {
	fail := errors.New("odd")
	out, errs := MapAll(context.Background(), 4, 10, func(_ context.Context, i int) (int, error) {
		if i%2 == 1 {
			return 0, fail
		}
		return i * 10, nil
	})
	for i := 0; i < 10; i++ {
		if i%2 == 1 {
			if errs[i] != fail {
				t.Fatalf("errs[%d] = %v, want failure", i, errs[i])
			}
		} else if errs[i] != nil || out[i] != i*10 {
			t.Fatalf("item %d: out=%d errs=%v", i, out[i], errs[i])
		}
	}
}

// TestEnginePrefixSharedUnderRace hammers one engine from many goroutines:
// the prefix must be computed once and every caller must observe the same
// immutable instance. Run with -race (the CI race job does).
func TestEnginePrefixSharedUnderRace(t *testing.T) {
	e := New()
	var wg sync.WaitGroup
	prefixes := make([]*Prefix, 16)
	for g := range prefixes {
		wg.Add(1)
		go func() {
			defer wg.Done()
			p, err := e.Prefix("c1355", 0)
			if err != nil {
				t.Error(err)
				return
			}
			// Touch shared state the allocators read concurrently.
			if p.Placement.NumRows == 0 || p.Timing.DcritPS <= 0 || len(p.Design.Gates) == 0 {
				t.Error("incomplete prefix")
			}
			prefixes[g] = p
		}()
	}
	wg.Wait()
	for _, p := range prefixes {
		if p != prefixes[0] {
			t.Fatal("concurrent callers got different prefix instances")
		}
	}
	if e.PrefixCount() != 1 {
		t.Fatalf("PrefixCount() = %d, want 1", e.PrefixCount())
	}
	// A different forceRows is a different prefix but shares the stage-1
	// design cache.
	p2, err := e.Prefix("c1355", prefixes[0].Placement.NumRows+4)
	if err != nil {
		t.Fatal(err)
	}
	if p2 == prefixes[0] {
		t.Fatal("forceRows variant returned the cached automatic-rows prefix")
	}
	if p2.Design != prefixes[0].Design {
		t.Fatal("forceRows variant regenerated the design instead of sharing stage 1")
	}
}

// TestMapWithWorkerState pins the MapWith contract: each worker gets its
// own state from newState, a state is never used by two items concurrently,
// results come back in index order, and the first failure cancels the pool.
func TestMapWithWorkerState(t *testing.T) {
	type state struct {
		id   int32
		busy atomic.Bool
	}
	var created atomic.Int32
	const n = 200
	out, err := MapWith(context.Background(), 8, n,
		func() *state { return &state{id: created.Add(1)} },
		func(_ context.Context, s *state, i int) (int32, error) {
			if !s.busy.CompareAndSwap(false, true) {
				t.Error("worker state used by two items concurrently")
			}
			defer s.busy.Store(false)
			return s.id, nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != n {
		t.Fatalf("len(out) = %d, want %d", len(out), n)
	}
	if c := created.Load(); c < 1 || c > 8 {
		t.Fatalf("created %d states, want 1..8", c)
	}
	seen := map[int32]bool{}
	for _, id := range out {
		if id < 1 || id > created.Load() {
			t.Fatalf("item ran with unknown state id %d", id)
		}
		seen[id] = true
	}
	if len(seen) != int(created.Load()) {
		t.Fatalf("only %d of %d states ever ran an item", len(seen), created.Load())
	}
}

func TestMapWithSequentialSingleState(t *testing.T) {
	var created atomic.Int32
	out, err := MapWith(context.Background(), 1, 5,
		func() int32 { return created.Add(1) },
		func(_ context.Context, s int32, i int) (int, error) { return int(s) + i, nil })
	if err != nil {
		t.Fatal(err)
	}
	if created.Load() != 1 {
		t.Fatalf("sequential run created %d states, want 1", created.Load())
	}
	for i, v := range out {
		if v != 1+i {
			t.Fatalf("out[%d] = %d, want %d", i, v, 1+i)
		}
	}
}

func TestMapWithFirstErrorWins(t *testing.T) {
	boom := errors.New("boom")
	_, err := MapWith(context.Background(), 4, 50,
		func() struct{} { return struct{}{} },
		func(ctx context.Context, _ struct{}, i int) (int, error) {
			if i == 3 {
				return 0, boom
			}
			return i, nil
		})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
}
