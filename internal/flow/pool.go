package flow

import (
	"context"
	"errors"
	"runtime"
	"sync"
)

// effectiveWorkers resolves the worker count: <= 0 means one per CPU, and
// never more workers than items.
func effectiveWorkers(workers, n int) int {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	return workers
}

// forEach dispatches indices [0, n) to at most `workers` goroutines and
// waits for all dispatched work to finish; do receives the id of the worker
// it runs on (0..workers-1), which worker-scoped state keys off. workers
// <= 0 means one per CPU.
func forEach(workers, n int, do func(worker, i int)) {
	workers = effectiveWorkers(workers, n)
	if workers <= 1 {
		for i := 0; i < n; i++ {
			do(0, i)
		}
		return
	}
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			for i := range idx {
				do(worker, i)
			}
		}(w)
	}
	for i := 0; i < n; i++ {
		idx <- i
	}
	close(idx)
	wg.Wait()
}

// MapAll runs fn(ctx, i) for every index in [0, n) on a pool of at most
// `workers` goroutines (<= 0 means one per CPU) and returns the results in
// index order together with a parallel error slice: errs[i] is fn's error
// for item i, so callers can keep partial results. Item failures do not
// stop the other items; only cancelling ctx does, in which case items that
// had not started report ctx's error.
func MapAll[T any](ctx context.Context, workers, n int, fn func(ctx context.Context, i int) (T, error)) (out []T, errs []error) {
	if ctx == nil {
		ctx = context.Background()
	}
	out = make([]T, n)
	errs = make([]error, n)
	forEach(workers, n, func(_, i int) {
		if err := ctx.Err(); err != nil {
			errs[i] = err
			return
		}
		out[i], errs[i] = fn(ctx, i)
	})
	return out, errs
}

// Map runs fn(ctx, i) for every index in [0, n) on a pool of at most
// `workers` goroutines (<= 0 means one per CPU), returning the results in
// index order. The first failure cancels the context passed to in-flight
// and pending items and is returned; results are discarded on error.
func Map[T any](ctx context.Context, workers, n int, fn func(ctx context.Context, i int) (T, error)) ([]T, error) {
	return MapWith(ctx, workers, n,
		func() struct{} { return struct{}{} },
		func(ctx context.Context, _ struct{}, i int) (T, error) { return fn(ctx, i) })
}

// MapWith is Map with worker-scoped state: each worker goroutine obtains
// its own S from newState (lazily, on its first item) and passes it to
// every fn invocation it runs, so fn can reuse scratch buffers — an STA
// analyzer's Timing buffer, an allocator arena — without synchronization.
// A state is only ever used by one item at a time; it is never shared
// across concurrent fn calls. Error semantics match Map: the first failure
// cancels the pool and is returned, and results are discarded on error.
func MapWith[S, T any](ctx context.Context, workers, n int, newState func() S, fn func(ctx context.Context, s S, i int) (T, error)) ([]T, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	mctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var (
		causeOnce sync.Once
		cause     error
	)
	w := effectiveWorkers(workers, n)
	states := make([]S, w)
	inited := make([]bool, w)
	out := make([]T, n)
	errs := make([]error, n)
	forEach(w, n, func(worker, i int) {
		if err := mctx.Err(); err != nil {
			errs[i] = err
			return
		}
		if !inited[worker] {
			states[worker] = newState()
			inited[worker] = true
		}
		out[i], errs[i] = fn(mctx, states[worker], i)
		if errs[i] != nil {
			causeOnce.Do(func() { cause = errs[i] })
			cancel()
		}
	})
	// Prefer the lowest-index real error so sequential and parallel runs
	// report the same failure; fall back to the chronological cause (set
	// before any cancellation-induced errors) and then to ctx's error.
	for _, err := range errs {
		if err != nil && !errors.Is(err, context.Canceled) {
			return nil, err
		}
	}
	if cause != nil {
		return nil, cause
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return out, nil
}
