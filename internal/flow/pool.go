package flow

import (
	"context"
	"errors"
	"runtime"
	"sync"
)

// forEach dispatches indices [0, n) to at most `workers` goroutines and
// waits for all dispatched work to finish. workers <= 0 means one per CPU.
func forEach(workers, n int, do func(i int)) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			do(i)
		}
		return
	}
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				do(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		idx <- i
	}
	close(idx)
	wg.Wait()
}

// MapAll runs fn(ctx, i) for every index in [0, n) on a pool of at most
// `workers` goroutines (<= 0 means one per CPU) and returns the results in
// index order together with a parallel error slice: errs[i] is fn's error
// for item i, so callers can keep partial results. Item failures do not
// stop the other items; only cancelling ctx does, in which case items that
// had not started report ctx's error.
func MapAll[T any](ctx context.Context, workers, n int, fn func(ctx context.Context, i int) (T, error)) (out []T, errs []error) {
	if ctx == nil {
		ctx = context.Background()
	}
	out = make([]T, n)
	errs = make([]error, n)
	forEach(workers, n, func(i int) {
		if err := ctx.Err(); err != nil {
			errs[i] = err
			return
		}
		out[i], errs[i] = fn(ctx, i)
	})
	return out, errs
}

// Map runs fn(ctx, i) for every index in [0, n) on a pool of at most
// `workers` goroutines (<= 0 means one per CPU), returning the results in
// index order. The first failure cancels the context passed to in-flight
// and pending items and is returned; results are discarded on error.
func Map[T any](ctx context.Context, workers, n int, fn func(ctx context.Context, i int) (T, error)) ([]T, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	mctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var (
		causeOnce sync.Once
		cause     error
	)
	out, errs := MapAll(mctx, workers, n, func(ctx context.Context, i int) (T, error) {
		v, err := fn(ctx, i)
		if err != nil {
			causeOnce.Do(func() { cause = err })
			cancel()
		}
		return v, err
	})
	// Prefer the lowest-index real error so sequential and parallel runs
	// report the same failure; fall back to the chronological cause (set
	// before any cancellation-induced errors) and then to ctx's error.
	for _, err := range errs {
		if err != nil && !errors.Is(err, context.Canceled) {
			return nil, err
		}
	}
	if cause != nil {
		return nil, cause
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return out, nil
}
