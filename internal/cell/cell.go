// Package cell provides the reduced standard-cell library used by the paper:
// inverters, buffers, AND, OR, NAND, NOR gates and D flip-flops at several
// drive strengths, mapped to a 45nm-class process.
//
// Every cell carries two per-bias-level tables, produced by the spice
// characterization at library construction time: the delay factor and the
// leakage factor at each voltage of the body-bias grid, both relative to the
// no-body-bias corner. These tables are exactly what the paper's
// pre-processing phase extracts ("for each of the gates in the library, we
// characterized its delay increase and average leakage power for different
// body bias voltages").
package cell

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/spice"
	"repro/internal/tech"
)

// Kind identifies the logic function of a cell.
type Kind uint8

// The cell kinds of the reduced library.
const (
	Inv Kind = iota
	Buf
	Nand
	Nor
	And
	Or
	Dff
	numKinds
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case Inv:
		return "INV"
	case Buf:
		return "BUF"
	case Nand:
		return "NAND"
	case Nor:
		return "NOR"
	case And:
		return "AND"
	case Or:
		return "OR"
	case Dff:
		return "DFF"
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// Eval computes the combinational function of the kind on the given inputs.
// For Dff it returns the D input (the value that will be latched at the next
// clock edge); sequential behaviour is the simulator's concern.
func (k Kind) Eval(ins []bool) bool {
	switch k {
	case Inv:
		return !ins[0]
	case Buf, Dff:
		return ins[0]
	case Nand:
		for _, v := range ins {
			if !v {
				return true
			}
		}
		return false
	case And:
		for _, v := range ins {
			if !v {
				return false
			}
		}
		return true
	case Nor:
		for _, v := range ins {
			if v {
				return false
			}
		}
		return true
	case Or:
		for _, v := range ins {
			if v {
				return true
			}
		}
		return false
	}
	panic(fmt.Sprintf("cell: Eval on invalid kind %d", uint8(k)))
}

// Cell is one library element with its timing, power and layout parameters
// and the body-bias characterization tables.
type Cell struct {
	// Name is the library name, e.g. "NAND2_X2".
	Name string
	// Kind is the logic function.
	Kind Kind
	// NumInputs is the number of data inputs (1 for INV/BUF/DFF).
	NumInputs int
	// Drive is the drive strength (1, 2 or 4).
	Drive int
	// WidthSites is the placement width in sites.
	WidthSites int
	// IntrinsicPS is the unloaded propagation delay in picoseconds; for
	// DFF it is the clock-to-Q delay.
	IntrinsicPS float64
	// DriveResKOhm is the output drive resistance; delay grows by
	// DriveResKOhm * load(fF) picoseconds.
	DriveResKOhm float64
	// InputCapFF is the capacitance of one input pin in femtofarads.
	InputCapFF float64
	// LeakNW is the average leakage power at NBB, nominal corner, in
	// nanowatts.
	LeakNW float64
	// SetupPS is the setup time (DFF only).
	SetupPS float64

	// DelayFactor[j] is the delay at grid level j relative to NBB (<= 1
	// for forward bias).
	DelayFactor []float64
	// LeakFactor[j] is the leakage at grid level j relative to NBB (>= 1
	// for forward bias).
	LeakFactor []float64
}

// WidthUM returns the cell width in micrometres for the given library.
func (c *Cell) WidthUM(l *Library) float64 { return float64(c.WidthSites) * l.SiteWidthUM }

// DelayPS returns the loaded gate delay at NBB in picoseconds for an output
// load in femtofarads.
func (c *Cell) DelayPS(loadFF float64) float64 {
	return c.IntrinsicPS + c.DriveResKOhm*loadFF
}

// String implements fmt.Stringer.
func (c *Cell) String() string { return c.Name }

// Library is a characterized standard-cell library bound to a process and a
// body-bias grid.
type Library struct {
	Name string
	Proc *tech.Process
	Grid tech.BiasGrid
	// SiteWidthUM is the placement site width.
	SiteWidthUM float64
	// RowHeightUM is the standard-cell row height.
	RowHeightUM float64

	cells  []*Cell
	byName map[string]*Cell
}

// spec describes one X1 cell; drive variants are derived from it.
type spec struct {
	kind    Kind
	inputs  int
	sites   int
	dps     float64 // intrinsic delay, ps
	rkohm   float64 // drive resistance, kOhm
	cinFF   float64
	leakNW  float64
	setupPS float64
	// stackMix weights the characterization curves of 1-, 2- and 3-deep
	// device stacks for this topology (delay and leakage state-average).
	stackMix [3]float64
}

var baseSpecs = []spec{
	{kind: Inv, inputs: 1, sites: 3, dps: 10, rkohm: 5.5, cinFF: 1.1, leakNW: 0.50, stackMix: [3]float64{1, 0, 0}},
	{kind: Buf, inputs: 1, sites: 4, dps: 18, rkohm: 4.0, cinFF: 1.0, leakNW: 0.85, stackMix: [3]float64{1, 0, 0}},
	{kind: Nand, inputs: 2, sites: 4, dps: 14, rkohm: 6.0, cinFF: 1.3, leakNW: 0.75, stackMix: [3]float64{0.5, 0.5, 0}},
	{kind: Nand, inputs: 3, sites: 5, dps: 18, rkohm: 6.8, cinFF: 1.5, leakNW: 1.00, stackMix: [3]float64{0.4, 0.4, 0.2}},
	{kind: Nor, inputs: 2, sites: 4, dps: 16, rkohm: 7.2, cinFF: 1.3, leakNW: 0.80, stackMix: [3]float64{0.5, 0.5, 0}},
	{kind: Nor, inputs: 3, sites: 6, dps: 22, rkohm: 8.6, cinFF: 1.5, leakNW: 1.10, stackMix: [3]float64{0.4, 0.4, 0.2}},
	{kind: And, inputs: 2, sites: 5, dps: 20, rkohm: 4.5, cinFF: 1.2, leakNW: 1.00, stackMix: [3]float64{0.65, 0.35, 0}},
	{kind: And, inputs: 3, sites: 6, dps: 24, rkohm: 4.8, cinFF: 1.4, leakNW: 1.25, stackMix: [3]float64{0.55, 0.3, 0.15}},
	{kind: Or, inputs: 2, sites: 5, dps: 22, rkohm: 4.6, cinFF: 1.2, leakNW: 1.05, stackMix: [3]float64{0.65, 0.35, 0}},
	{kind: Or, inputs: 3, sites: 7, dps: 26, rkohm: 5.0, cinFF: 1.4, leakNW: 1.30, stackMix: [3]float64{0.55, 0.3, 0.15}},
	{kind: Dff, inputs: 1, sites: 12, dps: 45, rkohm: 5.0, cinFF: 1.6, leakNW: 2.90, setupPS: 30, stackMix: [3]float64{0.8, 0.2, 0}},
}

// drives are the available drive strengths.
var drives = []int{1, 2, 4}

// NewLibrary characterizes and returns the reduced 45nm library for the
// given process and bias grid.
func NewLibrary(p *tech.Process, grid tech.BiasGrid) (*Library, error) {
	l := &Library{
		Name:        "reduced45-" + p.Name,
		Proc:        p,
		Grid:        grid,
		SiteWidthUM: 0.19,
		RowHeightUM: 2.8,
		byName:      map[string]*Cell{},
	}

	// Characterize the three stack depths once; cells blend these curves
	// according to their pull-network topology and input-state average.
	var delayCurves, leakCurves [3][]float64
	for depth := 1; depth <= 3; depth++ {
		dc, err := spice.DelayFactorSweep(p, depth, 1, grid)
		if err != nil {
			return nil, fmt.Errorf("cell: characterizing delay of %d-stack: %w", depth, err)
		}
		lc, err := spice.LeakFactorSweep(p, depth, grid)
		if err != nil {
			return nil, fmt.Errorf("cell: characterizing leakage of %d-stack: %w", depth, err)
		}
		delayCurves[depth-1] = dc
		leakCurves[depth-1] = lc
	}

	n := grid.NumLevels()
	for _, s := range baseSpecs {
		df := make([]float64, n)
		lf := make([]float64, n)
		for j := 0; j < n; j++ {
			var d, lk float64
			for depth := 0; depth < 3; depth++ {
				w := s.stackMix[depth]
				if w == 0 {
					continue
				}
				d += w * delayCurves[depth][j]
				lk += w * leakCurves[depth][j]
			}
			df[j] = d
			lf[j] = lk
		}
		for _, drive := range drives {
			c := &Cell{
				Name:         cellName(s.kind, s.inputs, drive),
				Kind:         s.kind,
				NumInputs:    s.inputs,
				Drive:        drive,
				WidthSites:   s.sites + widthBump(drive),
				IntrinsicPS:  s.dps * intrinsicScale(drive),
				DriveResKOhm: s.rkohm / float64(drive),
				InputCapFF:   s.cinFF * float64(drive),
				LeakNW:       s.leakNW * float64(drive),
				SetupPS:      s.setupPS,
				DelayFactor:  df,
				LeakFactor:   lf,
			}
			l.cells = append(l.cells, c)
			l.byName[c.Name] = c
		}
	}
	sort.Slice(l.cells, func(i, j int) bool { return l.cells[i].Name < l.cells[j].Name })
	return l, nil
}

func cellName(k Kind, inputs, drive int) string {
	if k == Inv || k == Buf || k == Dff {
		return fmt.Sprintf("%s_X%d", k, drive)
	}
	return fmt.Sprintf("%s%d_X%d", k, inputs, drive)
}

func widthBump(drive int) int {
	switch drive {
	case 2:
		return 1
	case 4:
		return 3
	}
	return 0
}

func intrinsicScale(drive int) float64 {
	switch drive {
	case 2:
		return 0.95
	case 4:
		return 0.90
	}
	return 1.0
}

// Cell returns the named cell.
func (l *Library) Cell(name string) (*Cell, bool) {
	c, ok := l.byName[name]
	return c, ok
}

// MustCell returns the named cell or panics; for use in generators where a
// missing cell is a programming error.
func (l *Library) MustCell(name string) *Cell {
	c, ok := l.byName[name]
	if !ok {
		panic("cell: no such cell " + name)
	}
	return c
}

// Pick returns the cell with the given function, input count and drive.
func (l *Library) Pick(k Kind, inputs, drive int) (*Cell, bool) {
	return l.Cell(cellName(k, inputs, drive))
}

// Cells returns all cells sorted by name.
func (l *Library) Cells() []*Cell { return l.cells }

// Drives returns the available drive strengths in ascending order.
func (l *Library) Drives() []int { return append([]int(nil), drives...) }

var (
	defaultOnce sync.Once
	defaultLib  *Library
	defaultErr  error
)

// Default returns a process-wide shared library on the default 45nm process
// and 50mV/0.5V grid. It panics if characterization fails, which would be a
// programming error in the defaults.
func Default() *Library {
	defaultOnce.Do(func() {
		defaultLib, defaultErr = NewLibrary(tech.Default45nm(), tech.DefaultGrid())
	})
	if defaultErr != nil {
		panic("cell: default library characterization failed: " + defaultErr.Error())
	}
	return defaultLib
}
