package cell

import (
	"math"
	"strings"
	"testing"

	"repro/internal/tech"
)

func TestLibraryConstruction(t *testing.T) {
	l := Default()
	if len(l.Cells()) != len(baseSpecs)*len(drives) {
		t.Fatalf("cell count = %d, want %d", len(l.Cells()), len(baseSpecs)*len(drives))
	}
	seen := map[string]bool{}
	for _, c := range l.Cells() {
		if seen[c.Name] {
			t.Errorf("duplicate cell name %q", c.Name)
		}
		seen[c.Name] = true
	}
}

func TestCellNames(t *testing.T) {
	l := Default()
	for _, name := range []string{"INV_X1", "INV_X2", "INV_X4", "NAND2_X1", "NAND3_X4",
		"NOR2_X2", "AND2_X1", "AND3_X2", "OR2_X1", "OR3_X4", "BUF_X2", "DFF_X1"} {
		if _, ok := l.Cell(name); !ok {
			t.Errorf("missing cell %q", name)
		}
	}
	if _, ok := l.Cell("XOR2_X1"); ok {
		t.Error("library should not contain XOR cells (reduced library)")
	}
}

func TestFactorTablesShape(t *testing.T) {
	l := Default()
	n := l.Grid.NumLevels()
	for _, c := range l.Cells() {
		if len(c.DelayFactor) != n || len(c.LeakFactor) != n {
			t.Fatalf("%s: factor table lengths %d/%d, want %d",
				c.Name, len(c.DelayFactor), len(c.LeakFactor), n)
		}
		if math.Abs(c.DelayFactor[0]-1) > 1e-9 || math.Abs(c.LeakFactor[0]-1) > 1e-9 {
			t.Errorf("%s: NBB factors = %v, %v; want 1, 1", c.Name, c.DelayFactor[0], c.LeakFactor[0])
		}
		for j := 1; j < n; j++ {
			if c.DelayFactor[j] >= c.DelayFactor[j-1] {
				t.Errorf("%s: delay factor not decreasing at level %d", c.Name, j)
			}
			if c.LeakFactor[j] <= c.LeakFactor[j-1] {
				t.Errorf("%s: leak factor not increasing at level %d", c.Name, j)
			}
		}
		// Full-FBB anchors: ~17-18% delay reduction (1/1.21) and
		// roughly an order of magnitude more leakage, diluted a little
		// by stacking.
		top := n - 1
		if c.DelayFactor[top] < 0.78 || c.DelayFactor[top] > 0.88 {
			t.Errorf("%s: delay factor at 0.5V = %v, want in [0.78, 0.88]", c.Name, c.DelayFactor[top])
		}
		if c.LeakFactor[top] < 7 || c.LeakFactor[top] > 14 {
			t.Errorf("%s: leak factor at 0.5V = %v, want in [7, 14]", c.Name, c.LeakFactor[top])
		}
	}
}

func TestDriveVariants(t *testing.T) {
	l := Default()
	x1 := l.MustCell("NAND2_X1")
	x2 := l.MustCell("NAND2_X2")
	x4 := l.MustCell("NAND2_X4")
	if !(x4.DriveResKOhm < x2.DriveResKOhm && x2.DriveResKOhm < x1.DriveResKOhm) {
		t.Error("drive resistance must fall with drive strength")
	}
	if !(x4.InputCapFF > x2.InputCapFF && x2.InputCapFF > x1.InputCapFF) {
		t.Error("input cap must grow with drive strength")
	}
	if !(x4.LeakNW > x2.LeakNW && x2.LeakNW > x1.LeakNW) {
		t.Error("leakage must grow with drive strength")
	}
	if !(x4.WidthSites > x1.WidthSites) {
		t.Error("width must grow with drive strength")
	}
}

func TestDelayPS(t *testing.T) {
	l := Default()
	c := l.MustCell("INV_X1")
	unloaded := c.DelayPS(0)
	loaded := c.DelayPS(10)
	if unloaded != c.IntrinsicPS {
		t.Errorf("unloaded delay = %v, want intrinsic %v", unloaded, c.IntrinsicPS)
	}
	if loaded <= unloaded {
		t.Error("loaded delay must exceed unloaded delay")
	}
}

func TestEvalTruthTables(t *testing.T) {
	cases := []struct {
		k    Kind
		ins  []bool
		want bool
	}{
		{Inv, []bool{false}, true},
		{Inv, []bool{true}, false},
		{Buf, []bool{true}, true},
		{Nand, []bool{true, true}, false},
		{Nand, []bool{true, false}, true},
		{Nand, []bool{true, true, true}, false},
		{Nand, []bool{true, true, false}, true},
		{And, []bool{true, true}, true},
		{And, []bool{true, false}, false},
		{Nor, []bool{false, false}, true},
		{Nor, []bool{false, true}, false},
		{Or, []bool{false, true}, true},
		{Or, []bool{false, false, false}, false},
		{Dff, []bool{true}, true},
	}
	for _, c := range cases {
		if got := c.k.Eval(c.ins); got != c.want {
			t.Errorf("%v%v = %v, want %v", c.k, c.ins, got, c.want)
		}
	}
}

func TestStackedCellsLessBiasSensitiveLeakage(t *testing.T) {
	// A NAND3 (deep stacks in its state average) responds a bit less to
	// FBB leakage-wise than an inverter; its curve must not exceed the
	// inverter's by more than noise.
	l := Default()
	inv := l.MustCell("INV_X1")
	nand3 := l.MustCell("NAND3_X1")
	top := l.Grid.NumLevels() - 1
	if nand3.LeakFactor[top] > inv.LeakFactor[top]*1.02 {
		t.Errorf("NAND3 leak factor %v should not exceed INV %v",
			nand3.LeakFactor[top], inv.LeakFactor[top])
	}
}

func TestDffParameters(t *testing.T) {
	l := Default()
	d := l.MustCell("DFF_X1")
	if d.SetupPS <= 0 {
		t.Error("DFF must have a setup time")
	}
	if d.IntrinsicPS <= 0 {
		t.Error("DFF must have a clk-to-q delay")
	}
	if d.WidthSites <= l.MustCell("INV_X1").WidthSites {
		t.Error("DFF should be wider than an inverter")
	}
}

func TestKindString(t *testing.T) {
	for k := Inv; k < numKinds; k++ {
		s := k.String()
		if s == "" || strings.HasPrefix(s, "Kind(") {
			t.Errorf("kind %d has no name", k)
		}
	}
	if !strings.HasPrefix(Kind(200).String(), "Kind(") {
		t.Error("invalid kind should stringify to Kind(n)")
	}
}

func TestWidthUM(t *testing.T) {
	l := Default()
	c := l.MustCell("INV_X1")
	want := float64(c.WidthSites) * l.SiteWidthUM
	if got := c.WidthUM(l); got != want {
		t.Errorf("WidthUM = %v, want %v", got, want)
	}
}

func TestCustomGridLibrary(t *testing.T) {
	// A 100mV grid has 6 levels; tables must follow.
	p := tech.Default45nm()
	g := tech.BiasGrid{StepV: 0.1, MaxV: 0.5}
	l, err := NewLibrary(p, g)
	if err != nil {
		t.Fatal(err)
	}
	c := l.MustCell("INV_X1")
	if len(c.DelayFactor) != 6 {
		t.Errorf("table length = %d, want 6", len(c.DelayFactor))
	}
}

func TestPick(t *testing.T) {
	l := Default()
	c, ok := l.Pick(Nand, 2, 4)
	if !ok || c.Name != "NAND2_X4" {
		t.Errorf("Pick(Nand,2,4) = %v, %v", c, ok)
	}
	if _, ok := l.Pick(Nand, 5, 1); ok {
		t.Error("Pick should fail for a 5-input NAND")
	}
}
