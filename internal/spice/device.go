// Package spice is a small circuit-level simulator used to characterize
// standard cells under body bias. It implements the Sakurai-Newton
// alpha-power-law MOSFET model with subthreshold conduction and the forward
// source-body junction diode, a fixed-step transient solver for gate
// switching, and a DC solver for stacked off-state leakage.
//
// The paper characterized its 45nm library with SPICE (Figure 1); this
// package plays that role. Currents are normalized (unit transconductance for
// a unit-width NMOS), which is sufficient because every consumer uses ratios
// relative to the no-body-bias corner.
package spice

import (
	"math"

	"repro/internal/tech"
)

// PMOSMobilityRatio scales PMOS drive current per unit width relative to NMOS.
const PMOSMobilityRatio = 0.45

// Device is a MOSFET instance. Voltages passed to its methods are magnitudes
// referenced to the source terminal, so PMOS devices are handled by the
// caller mirroring voltages.
type Device struct {
	Proc *tech.Process
	// Width is the channel width relative to a unit NMOS.
	Width float64
	// PMOS selects the reduced mobility.
	PMOS bool
	// SatKv sets the saturation-voltage coefficient of the alpha-power
	// model: Vdsat = SatKv * (Vgs-Vth)^(Alpha/2). The default 0.6 reflects
	// strong velocity saturation at 45nm (Vdsat well below Vdd/2 at full
	// overdrive), which keeps the half-swing crossing inside saturation.
	SatKv float64
	// DIBLEta is the drain-induced barrier lowering coefficient:
	// Vth_eff = Vth - DIBLEta*Vds. DIBL is what makes stacked OFF
	// devices leak several times less than a single one.
	DIBLEta float64
}

// NewNMOS returns a unit NMOS in the given process.
func NewNMOS(p *tech.Process, width float64) Device {
	return Device{Proc: p, Width: width, SatKv: 0.6, DIBLEta: 0.08}
}

// NewPMOS returns a PMOS of the given width in the given process.
func NewPMOS(p *tech.Process, width float64) Device {
	return Device{Proc: p, Width: width, PMOS: true, SatKv: 0.6, DIBLEta: 0.08}
}

func (d Device) k() float64 {
	if d.PMOS {
		return PMOSMobilityRatio * d.Width
	}
	return d.Width
}

// subI0 is the subthreshold current prefactor, chosen for rough continuity
// with the strong-inversion branch at Vgs = Vth.
func (d Device) subI0() float64 {
	nvt := d.Proc.SubIdeality * d.Proc.ThermalVoltage()
	return d.k() * math.Pow(nvt, d.Proc.Alpha)
}

// Ids returns the drain-source current for gate-source voltage vgs,
// drain-source voltage vds and body-source voltage vbs (all magnitudes,
// vds >= 0). The model is piecewise: subthreshold exponential below Vth,
// Sakurai-Newton alpha-power law above it (continuity enforced by adding the
// boundary subthreshold current to the strong-inversion branch), with DIBL
// lowering the effective threshold as Vds grows.
func (d Device) Ids(vgs, vds, vbs float64) float64 {
	if vds <= 0 {
		return 0
	}
	p := d.Proc
	vth := p.Vth(vbs) - d.DIBLEta*vds
	vt := p.ThermalVoltage()
	nvt := p.SubIdeality * vt
	drainTerm := 1 - math.Exp(-vds/vt)
	if vgs <= vth {
		return d.subI0() * math.Exp((vgs-vth)/nvt) * drainTerm
	}
	boundary := d.subI0() * drainTerm
	over := vgs - vth
	idsat := d.k() * math.Pow(over, p.Alpha)
	vdsat := d.SatKv * math.Pow(over, p.Alpha/2)
	if vds >= vdsat {
		return idsat + boundary
	}
	x := vds / vdsat
	return idsat*x*(2-x) + boundary
}

// BodyDiode returns the forward source-body junction current for a body
// forward-biased by vbs volts, normalized so that consumers can scale it by
// the nominal off-current (see tech.Process.JunctionFactor).
func (d Device) BodyDiode(vbs float64) float64 {
	if vbs <= 0 {
		return 0
	}
	p := d.Proc
	vt := p.ThermalVoltage()
	return d.Width * p.JunctionScale * (math.Exp(vbs/(p.JunctionIdeality*vt)) - 1)
}
