package spice

import (
	"math"
	"testing"

	"repro/internal/tech"
)

func proc() *tech.Process { return tech.Default45nm() }

func TestDeviceRegions(t *testing.T) {
	p := proc()
	d := NewNMOS(p, 1)
	// Zero vds carries no current.
	if got := d.Ids(p.VddV, 0, 0); got != 0 {
		t.Errorf("Ids at vds=0 = %v, want 0", got)
	}
	// Strong inversion current must dwarf subthreshold current.
	on := d.Ids(p.VddV, p.VddV, 0)
	off := d.Ids(0, p.VddV, 0)
	if on/off < 1e3 {
		t.Errorf("on/off ratio = %v, want > 1e3", on/off)
	}
	// Saturation: current nearly flat beyond vdsat (DIBL gives it a
	// small positive slope).
	a := d.Ids(p.VddV, p.VddV, 0)
	b := d.Ids(p.VddV, p.VddV*0.9, 0)
	if a < b || a > 1.10*b {
		t.Errorf("saturation current not nearly flat: %v vs %v", a, b)
	}
	// Linear region: current rises with vds.
	lo := d.Ids(p.VddV, 0.05, 0)
	hi := d.Ids(p.VddV, 0.10, 0)
	if hi <= lo {
		t.Errorf("linear region not increasing: %v <= %v", hi, lo)
	}
}

func TestDeviceMonotoneInVgs(t *testing.T) {
	p := proc()
	d := NewNMOS(p, 1)
	prev := -1.0
	for vgs := 0.0; vgs <= p.VddV; vgs += 0.01 {
		id := d.Ids(vgs, p.VddV, 0)
		if id <= prev {
			t.Fatalf("Ids not increasing at vgs=%.2f: %v <= %v", vgs, id, prev)
		}
		prev = id
	}
}

func TestPMOSWeakerThanNMOS(t *testing.T) {
	p := proc()
	n := NewNMOS(p, 1)
	pm := NewPMOS(p, 1)
	if pm.Ids(p.VddV, p.VddV, 0) >= n.Ids(p.VddV, p.VddV, 0) {
		t.Error("unit PMOS should be weaker than unit NMOS")
	}
}

func TestTransientMatchesAlphaPowerModel(t *testing.T) {
	// The simulated inverter speed-up must track the closed-form
	// alpha-power prediction within a few percent across the FBB range.
	p := proc()
	for _, vbs := range []float64{0.1, 0.25, 0.4, 0.5} {
		sim, err := TransientSpeedup(p, vbs)
		if err != nil {
			t.Fatal(err)
		}
		model := p.Speedup(vbs)
		if math.Abs(sim-model) > 0.05*(1+model) {
			t.Errorf("vbs=%.2f: simulated speedup %.4f vs model %.4f", vbs, sim, model)
		}
	}
}

func TestFigure1Anchors(t *testing.T) {
	// The headline numbers of Figure 1: ~21% speed-up and ~12.74x leakage
	// at vbs = 0.5V, now obtained by simulation instead of calibration.
	p := proc()
	pts, err := Figure1Sweep(p, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	var at05 SweepPoint
	for _, pt := range pts {
		if math.Abs(pt.Vbs-0.5) < 1e-9 {
			at05 = pt
		}
	}
	if math.Abs(at05.Speedup-tech.CalSpeedup) > 0.02 {
		t.Errorf("simulated speedup at 0.5V = %.4f, want ~%.2f", at05.Speedup, tech.CalSpeedup)
	}
	if math.Abs(at05.LeakFactor-tech.CalLeakFactor) > 0.80 {
		t.Errorf("simulated leakage at 0.5V = %.3f, want ~%.2f", at05.LeakFactor, tech.CalLeakFactor)
	}
}

func TestFigure1ShapeLinearDelayExponentialLeakage(t *testing.T) {
	p := proc()
	pts, err := Figure1Sweep(p, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	// Speed-up increases monotonically; leakage grows super-linearly.
	for i := 1; i < len(pts); i++ {
		if pts[i].Speedup <= pts[i-1].Speedup {
			t.Fatalf("speedup not increasing at vbs=%.2f", pts[i].Vbs)
		}
		if pts[i].LeakFactor <= pts[i-1].LeakFactor {
			t.Fatalf("leakage not increasing at vbs=%.2f", pts[i].Vbs)
		}
	}
	// Junction blow-up: leakage at 0.7V is at least 10x that at 0.5V,
	// while the speed-up gain over the same interval is modest.
	var l5, l7, s5, s7 float64
	for _, pt := range pts {
		if math.Abs(pt.Vbs-0.5) < 1e-9 {
			l5, s5 = pt.LeakFactor, pt.Speedup
		}
		if math.Abs(pt.Vbs-0.7) < 1e-9 {
			l7, s7 = pt.LeakFactor, pt.Speedup
		}
	}
	if l7 < 10*l5 {
		t.Errorf("leakage blow-up 0.5->0.7V = %.1fx, want >= 10x", l7/l5)
	}
	if s7-s5 > 0.15 {
		t.Errorf("speedup gain 0.5->0.7V = %.3f, expected modest (< 0.15)", s7-s5)
	}
}

func TestStackEffectReducesLeakage(t *testing.T) {
	p := proc()
	i1, err := OffCurrent(p, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	i2, err := OffCurrent(p, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	i3, err := OffCurrent(p, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !(i3 < i2 && i2 < i1) {
		t.Fatalf("stack effect violated: i1=%v i2=%v i3=%v", i1, i2, i3)
	}
	// A 2-stack typically leaks several times less than a single device.
	if i1/i2 < 2 {
		t.Errorf("2-stack reduction = %.2fx, want >= 2x", i1/i2)
	}
}

func TestStackDelaySlower(t *testing.T) {
	p := proc()
	d1, err := StackDelay(p, 1, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := StackDelay(p, 2, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if d2 <= d1 {
		t.Errorf("2-stack delay %v should exceed single-device delay %v", d2, d1)
	}
	// Doubling width halves the single-device delay (normalized load).
	dw, err := StackDelay(p, 1, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(dw*2-d1) > 0.05*d1 {
		t.Errorf("width scaling: 2x device delay %v, want ~%v/2", dw, d1)
	}
}

func TestStackedDelayFactorsCloseToSingle(t *testing.T) {
	// FBB relative delay improvement should be similar for stacked and
	// single-device gates (the allocator assumes per-cell factors).
	p := proc()
	g := tech.DefaultGrid()
	f1, err := DelayFactorSweep(p, 1, 1, g)
	if err != nil {
		t.Fatal(err)
	}
	f2, err := DelayFactorSweep(p, 2, 1, g)
	if err != nil {
		t.Fatal(err)
	}
	for j := range f1 {
		if math.Abs(f1[j]-f2[j]) > 0.05 {
			t.Errorf("level %d: single %0.4f vs stack %0.4f differ > 0.05", j, f1[j], f2[j])
		}
	}
}

func TestLeakFactorSweepAnchoredAtUnity(t *testing.T) {
	p := proc()
	g := tech.DefaultGrid()
	for _, n := range []int{1, 2, 3} {
		fs, err := LeakFactorSweep(p, n, g)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(fs[0]-1) > 1e-9 {
			t.Errorf("stack %d: leak factor at NBB = %v, want 1", n, fs[0])
		}
		for j := 1; j < len(fs); j++ {
			if fs[j] <= fs[j-1] {
				t.Errorf("stack %d: leak factors not increasing at level %d", n, j)
			}
		}
	}
}

func TestStackDepthValidation(t *testing.T) {
	p := proc()
	if _, err := StackDelay(p, 0, 1, 0); err == nil {
		t.Error("StackDelay accepted depth 0")
	}
	if _, err := StackDelay(p, 5, 1, 0); err == nil {
		t.Error("StackDelay accepted depth 5")
	}
	if _, err := OffCurrent(p, 0, 0); err == nil {
		t.Error("OffCurrent accepted depth 0")
	}
}
