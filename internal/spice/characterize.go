package spice

import (
	"repro/internal/tech"
)

// SweepPoint is one point of the Figure 1 characterization: the simulated
// inverter speed-up and total leakage increase at a body bias voltage.
type SweepPoint struct {
	Vbs        float64 // applied NMOS body bias, V (PMOS gets Vdd-Vbs)
	VbsP       float64 // PMOS body terminal voltage, V
	Speedup    float64 // fractional delay improvement vs NBB
	LeakFactor float64 // total leakage relative to NBB
}

// Figure1Sweep reproduces the paper's Figure 1: an inverter simulated across
// body bias voltages from 0 to Vdd. Delay comes from the transient solver,
// leakage from the DC off-state solve plus gate and junction components.
// Beyond 0.5 V the junction current visibly explodes, which is why the
// optimization grid stops there.
func Figure1Sweep(p *tech.Process, stepV float64) ([]SweepPoint, error) {
	baseDelay, err := StackDelay(p, 1, 1, 0)
	if err != nil {
		return nil, err
	}
	baseLeak, err := OffCurrent(p, 1, 0)
	if err != nil {
		return nil, err
	}
	var pts []SweepPoint
	for vbs := 0.0; vbs <= p.VddV+1e-9; vbs += stepV {
		d, err := StackDelay(p, 1, 1, vbs)
		if err != nil {
			return nil, err
		}
		sub, err := OffCurrent(p, 1, vbs)
		if err != nil {
			return nil, err
		}
		leak := (1-p.GateLeakShare)*(sub/baseLeak) + p.GateLeakShare + p.JunctionFactor(vbs)
		pts = append(pts, SweepPoint{
			Vbs:        vbs,
			VbsP:       p.VddV - vbs,
			Speedup:    baseDelay/d - 1,
			LeakFactor: leak,
		})
	}
	return pts, nil
}
