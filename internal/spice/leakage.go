package spice

import (
	"errors"

	"repro/internal/tech"
)

// DC off-state leakage solver.
//
// A series stack of OFF devices leaks far less than a single device because
// the intermediate nodes float up, giving the upper devices negative Vgs and
// reduced Vds (the "stack effect"). The solver finds the stack current by
// bisection on the current itself: given a trial current, each device's
// source voltage is recovered bottom-up by inverting its monotone I-V, and
// the residual at the top drain decides the bisection direction.

// OffCurrent returns the subthreshold leakage of a series stack of nSeries
// identical unit-width OFF NMOS devices (gates grounded) with the full rail
// across the stack and body bias vbs, in the same normalized current units
// as Device.Ids.
func OffCurrent(p *tech.Process, nSeries int, vbs float64) (float64, error) {
	if nSeries < 1 || nSeries > 4 {
		return 0, errors.New("spice: stack depth must be in [1,4]")
	}
	dev := NewNMOS(p, 1)
	vdd := p.VddV
	if nSeries == 1 {
		return dev.Ids(0, vdd, vbs), nil
	}

	// solveStack recovers node voltages bottom-up for a trial current.
	// It reports ok=false when some device cannot carry the current even
	// with a full rail of headroom (trial too large); otherwise topDrain
	// is the voltage the stack needs, to be compared against Vdd.
	solveStack := func(current float64) (topDrain float64, ok bool) {
		src := 0.0
		for i := 0; i < nSeries; i++ {
			if dev.Ids(0-src, vdd, vbs-src) < current {
				return 0, false
			}
			// Find the drain voltage of device i such that it
			// carries `current` with source at src, gate at 0V.
			// Ids is monotone increasing in vds.
			lo, hi := src, src+vdd
			for iter := 0; iter < 80; iter++ {
				mid := 0.5 * (lo + hi)
				if dev.Ids(0-src, mid-src, vbs-src) < current {
					lo = mid
				} else {
					hi = mid
				}
			}
			src = 0.5 * (lo + hi)
		}
		return src, true
	}

	// Bisection on current in (0, single-device Ioff].
	hiI := dev.Ids(0, vdd, vbs)
	loI := hiI * 1e-12
	for iter := 0; iter < 100; iter++ {
		midI := 0.5 * (loI + hiI)
		top, ok := solveStack(midI)
		if !ok || top > vdd {
			// Needs more than Vdd of headroom: current too big.
			hiI = midI
		} else {
			loI = midI
		}
	}
	return 0.5 * (loI + hiI), nil
}

// LeakFactorSweep returns, for each grid level, the total gate leakage
// relative to NBB for a cell whose bias-responsive pull network is a stack of
// nSeries devices. The total combines the simulated subthreshold stack
// current with the bias-insensitive gate-tunnelling share and the forward
// junction diode, using the same composition as tech.Process.LeakageFactor.
func LeakFactorSweep(p *tech.Process, nSeries int, grid tech.BiasGrid) ([]float64, error) {
	base, err := OffCurrent(p, nSeries, 0)
	if err != nil {
		return nil, err
	}
	if base <= 0 {
		return nil, errors.New("spice: zero nominal off current")
	}
	out := make([]float64, grid.NumLevels())
	for j := range out {
		vbs := grid.Voltage(j)
		sub, err := OffCurrent(p, nSeries, vbs)
		if err != nil {
			return nil, err
		}
		out[j] = (1-p.GateLeakShare)*(sub/base) + p.GateLeakShare + p.JunctionFactor(vbs)
	}
	return out, nil
}
