package spice

import (
	"errors"
	"math"

	"repro/internal/tech"
)

// Transient simulation of a switching gate output.
//
// The discharge (or charge) path of a CMOS gate is a series stack of 1..n
// devices between the output node and a rail. The stack is driven with all
// gates at full swing (worst-case single-input switching uses a one-device
// stack). Internal stack nodes carry a small parasitic capacitance; the
// output carries the load.

// internalCapRatio is the parasitic capacitance of an internal stack node
// relative to the output load.
const internalCapRatio = 0.12

// StackDelay integrates the discharge of a unit load through a series stack
// of nSeries identical NMOS devices of the given width, each body-biased at
// vbs volts (bias referenced to the rail), and returns the 50% propagation
// delay in normalized time units.
//
// The same function characterizes PMOS stacks: with the paper's symmetric
// biasing (vbsn = vbs, vbsp = Vdd-vbs) both device types see the same
// source-body forward bias, and delay *ratios* across vbs are what matters.
func StackDelay(p *tech.Process, nSeries int, width, vbs float64) (float64, error) {
	if nSeries < 1 || nSeries > 4 {
		return 0, errors.New("spice: stack depth must be in [1,4]")
	}
	vdd := p.VddV
	dev := NewNMOS(p, width)

	// Node 0 is the output (cap 1), nodes 1..nSeries-1 are internal stack
	// nodes from top to bottom (cap internalCapRatio). Device i sits
	// between node i-1 (drain) and node i (source); the last device's
	// source is ground.
	v := make([]float64, nSeries)
	v[0] = vdd
	for i := 1; i < nSeries; i++ {
		// Internal nodes pre-charged one threshold below the rail,
		// the usual worst-case initial condition.
		v[i] = vdd - p.Vth0V
	}
	caps := make([]float64, nSeries)
	caps[0] = 1.0
	for i := 1; i < nSeries; i++ {
		caps[i] = internalCapRatio
	}

	deriv := func(v []float64, dv []float64) {
		for i := range dv {
			dv[i] = 0
		}
		for i := 0; i < nSeries; i++ {
			drain := v[i]
			src := 0.0
			if i+1 < nSeries {
				src = v[i+1]
			}
			vds := drain - src
			if vds < 0 {
				vds = 0
			}
			// Gate at Vdd; body tied to the bias rail at vbs above
			// ground, so the effective body-source bias shrinks as
			// the source node rises.
			id := dev.Ids(vdd-src, vds, vbs-src)
			dv[i] -= id / caps[i]
			if i+1 < nSeries {
				dv[i+1] += id / caps[i+1]
			}
		}
	}

	// Integrate with RK4 until the output crosses Vdd/2. The time scale
	// is set by C*Vdd/Idsat of the full stack; step small relative to it.
	idsat := dev.Ids(vdd, vdd, vbs) / float64(nSeries)
	if idsat <= 0 {
		return 0, errors.New("spice: stack conducts no current")
	}
	tScale := vdd / idsat
	dt := tScale / 400
	maxT := tScale * 50

	n := nSeries
	k1 := make([]float64, n)
	k2 := make([]float64, n)
	k3 := make([]float64, n)
	k4 := make([]float64, n)
	tmp := make([]float64, n)
	half := vdd / 2

	prevT, prevV := 0.0, v[0]
	for t := 0.0; t < maxT; t += dt {
		deriv(v, k1)
		for i := range tmp {
			tmp[i] = v[i] + 0.5*dt*k1[i]
		}
		deriv(tmp, k2)
		for i := range tmp {
			tmp[i] = v[i] + 0.5*dt*k2[i]
		}
		deriv(tmp, k3)
		for i := range tmp {
			tmp[i] = v[i] + dt*k3[i]
		}
		deriv(tmp, k4)
		for i := range v {
			v[i] += dt / 6 * (k1[i] + 2*k2[i] + 2*k3[i] + k4[i])
		}
		if v[0] <= half {
			// Linear interpolation of the crossing instant.
			frac := (prevV - half) / (prevV - v[0])
			return prevT + frac*(t+dt-prevT), nil
		}
		prevT, prevV = t+dt, v[0]
	}
	return 0, errors.New("spice: output never crossed Vdd/2")
}

// DelayFactorSweep returns, for each level of the grid, the stack propagation
// delay relative to the NBB delay.
func DelayFactorSweep(p *tech.Process, nSeries int, width float64, grid tech.BiasGrid) ([]float64, error) {
	base, err := StackDelay(p, nSeries, width, 0)
	if err != nil {
		return nil, err
	}
	out := make([]float64, grid.NumLevels())
	for j := range out {
		d, err := StackDelay(p, nSeries, width, grid.Voltage(j))
		if err != nil {
			return nil, err
		}
		out[j] = d / base
	}
	return out, nil
}

// TransientSpeedup returns the fractional speed-up of a single-device stack
// at bias vbs versus NBB, as measured by the transient solver. This is the
// simulated counterpart of tech.Process.Speedup and reproduces the delay
// series of the paper's Figure 1.
func TransientSpeedup(p *tech.Process, vbs float64) (float64, error) {
	base, err := StackDelay(p, 1, 1, 0)
	if err != nil {
		return 0, err
	}
	d, err := StackDelay(p, 1, 1, vbs)
	if err != nil {
		return 0, err
	}
	if d <= 0 || math.IsNaN(d) {
		return 0, errors.New("spice: bad transient delay")
	}
	return base/d - 1, nil
}
