// Package power computes leakage power for designs under row-level body-bias
// assignments. The paper's objective is the leakage *spent* to speed a
// design up, i.e. the increase over the no-body-bias corner; this package
// provides both absolute and overhead views.
package power

import (
	"fmt"

	"repro/internal/netlist"
	"repro/internal/place"
)

// DesignLeakageNW returns the total NBB leakage of the design in nanowatts.
func DesignLeakageNW(d *netlist.Design) float64 {
	total := 0.0
	for i := range d.Gates {
		total += d.Gates[i].Cell.LeakNW
	}
	return total
}

// RowLeakageNW returns the NBB leakage of one placement row.
func RowLeakageNW(pl *place.Placement, row int) float64 {
	total := 0.0
	for _, g := range pl.Rows[row] {
		total += pl.Design.Gates[g].Cell.LeakNW
	}
	return total
}

// RowExtraLeakageNW returns the leakage increase of row `row` when biased at
// grid level j, relative to NBB: sum over the row's gates of
// leak * (LeakFactor[j] - 1). This is the L_ij coefficient of the paper's
// ILP objective (expressed as overhead so that NBB rows cost zero).
func RowExtraLeakageNW(pl *place.Placement, row, j int) float64 {
	total := 0.0
	for _, g := range pl.Rows[row] {
		c := pl.Design.Gates[g].Cell
		total += c.LeakNW * (c.LeakFactor[j] - 1)
	}
	return total
}

// RowLeakTable precomputes the full L[i][j] overhead matrix (rows x levels).
func RowLeakTable(pl *place.Placement) [][]float64 {
	levels := pl.Lib.Grid.NumLevels()
	table := make([][]float64, pl.NumRows)
	for i := range table {
		table[i] = make([]float64, levels)
		for j := 0; j < levels; j++ {
			table[i][j] = RowExtraLeakageNW(pl, i, j)
		}
	}
	return table
}

// AssignExtraLeakageNW returns the total leakage overhead of a row-to-level
// assignment (len(assign) == NumRows).
func AssignExtraLeakageNW(pl *place.Placement, assign []int) (float64, error) {
	if len(assign) != pl.NumRows {
		return 0, fmt.Errorf("power: assignment length %d, want %d rows", len(assign), pl.NumRows)
	}
	total := 0.0
	for i, j := range assign {
		if j < 0 || j >= pl.Lib.Grid.NumLevels() {
			return 0, fmt.Errorf("power: row %d assigned invalid level %d", i, j)
		}
		total += RowExtraLeakageNW(pl, i, j)
	}
	return total, nil
}

// AssignTotalLeakageNW returns the absolute leakage of the design under an
// assignment: NBB leakage plus the overhead.
func AssignTotalLeakageNW(pl *place.Placement, assign []int) (float64, error) {
	extra, err := AssignExtraLeakageNW(pl, assign)
	if err != nil {
		return 0, err
	}
	return DesignLeakageNW(pl.Design) + extra, nil
}

// GateLeakageNW returns the leakage of gate g at grid level j scaled by an
// optional per-gate variation multiplier (1.0 when scale is nil), in nW.
func GateLeakageNW(pl *place.Placement, g netlist.GateID, j int, scale []float64) float64 {
	c := pl.Design.Gates[g].Cell
	v := c.LeakNW * c.LeakFactor[j]
	if scale != nil {
		v *= scale[g]
	}
	return v
}
