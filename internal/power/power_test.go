package power

import (
	"math"
	"testing"

	"repro/internal/cell"
	"repro/internal/gen"
	"repro/internal/place"
)

func placed(t *testing.T, name string) *place.Placement {
	t.Helper()
	l := cell.Default()
	d, err := gen.Build(name, l)
	if err != nil {
		t.Fatal(err)
	}
	p, err := place.Place(d, l, place.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestRowLeakageSumsToDesign(t *testing.T) {
	p := placed(t, "c1355")
	sum := 0.0
	for r := 0; r < p.NumRows; r++ {
		sum += RowLeakageNW(p, r)
	}
	if total := DesignLeakageNW(p.Design); math.Abs(sum-total) > 1e-9 {
		t.Errorf("row leakage sum %f != design total %f", sum, total)
	}
}

func TestNBBOverheadIsZero(t *testing.T) {
	p := placed(t, "c1355")
	assign := make([]int, p.NumRows) // all level 0
	extra, err := AssignExtraLeakageNW(p, assign)
	if err != nil {
		t.Fatal(err)
	}
	if extra != 0 {
		t.Errorf("NBB overhead = %f, want 0", extra)
	}
	total, err := AssignTotalLeakageNW(p, assign)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(total-DesignLeakageNW(p.Design)) > 1e-9 {
		t.Error("NBB total != design leakage")
	}
}

func TestOverheadMonotoneInLevel(t *testing.T) {
	p := placed(t, "c3540")
	levels := p.Lib.Grid.NumLevels()
	for r := 0; r < p.NumRows; r++ {
		if len(p.Rows[r]) == 0 {
			continue
		}
		prev := -1.0
		for j := 0; j < levels; j++ {
			v := RowExtraLeakageNW(p, r, j)
			if v <= prev {
				t.Fatalf("row %d: overhead not increasing at level %d", r, j)
			}
			prev = v
		}
	}
}

func TestRowLeakTableMatchesDirect(t *testing.T) {
	p := placed(t, "c1355")
	tab := RowLeakTable(p)
	for i := range tab {
		for j := range tab[i] {
			if tab[i][j] != RowExtraLeakageNW(p, i, j) {
				t.Fatalf("table mismatch at %d,%d", i, j)
			}
		}
	}
}

func TestAssignValidation(t *testing.T) {
	p := placed(t, "c1355")
	if _, err := AssignExtraLeakageNW(p, make([]int, 3)); err == nil {
		t.Error("wrong-length assignment accepted")
	}
	bad := make([]int, p.NumRows)
	bad[0] = 99
	if _, err := AssignExtraLeakageNW(p, bad); err == nil {
		t.Error("invalid level accepted")
	}
}

func TestFullBiasRoughlyTwelveX(t *testing.T) {
	// Whole design at the top level should cost ~7-14x the NBB leakage
	// (Figure 1's 12.74x, diluted by stacked gates).
	p := placed(t, "c1355")
	top := p.Lib.Grid.NumLevels() - 1
	assign := make([]int, p.NumRows)
	for i := range assign {
		assign[i] = top
	}
	total, err := AssignTotalLeakageNW(p, assign)
	if err != nil {
		t.Fatal(err)
	}
	ratio := total / DesignLeakageNW(p.Design)
	if ratio < 7 || ratio > 14 {
		t.Errorf("full-FBB leakage ratio = %.2f, want within [7, 14]", ratio)
	}
}
