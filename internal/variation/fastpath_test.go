package variation

import (
	"context"
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/sta"
	"repro/internal/tech"
)

// referenceTuneOn is the pre-fast-path per-die tuning loop, kept verbatim
// as the end-to-end differential reference: every die-side re-time is a
// full Run (paths extracted and thrown away), and every leakage is the
// scalar per-gate Die.LeakageNW pass. The production loop — light re-times
// through RunLight, leakage through the LeakModel tables — must reproduce
// its TuneResults bit for bit.
func referenceTuneOn(rt *Retimer, al *core.Allocator, instp **core.Instance,
	nom *sta.Timing, die *Die, proc *tech.Process, opts TuneOptions) (*TuneResult, error) {
	opts.setDefaults()
	pl := rt.Placement()
	dieTm, err := rt.Time(die)
	if err != nil {
		return nil, err
	}
	dieDcrit := dieTm.DcritPS
	res := &TuneResult{
		BetaActual:    dieDcrit/nom.DcritPS - 1,
		DcritBeforePS: dieDcrit,
		LeakBeforeNW:  die.LeakageNW(pl, proc, nil),
	}
	limit := nom.DcritPS * (1 + opts.SlackTolPct)

	res.BetaSensed = opts.Sensor.MeasureBeta(nom, dieTm, die.Seed)
	target := res.BetaSensed + opts.GuardbandPct
	if dieDcrit <= limit && target <= 0 {
		res.Met = true
		res.DcritAfterPS = dieDcrit
		res.LeakAfterNW = res.LeakBeforeNW
		return res, nil
	}
	if target <= 0 {
		target = 0.005
	}

	for iter := 0; iter < opts.MaxIters; iter++ {
		res.Iters = iter + 1
		inst, err := al.At(core.Options{
			Beta:         target,
			MaxClusters:  opts.MaxClusters,
			MaxBiasPairs: opts.MaxBiasPairs,
		}, *instp)
		if err != nil {
			return nil, err
		}
		*instp = inst
		sol, err := inst.Solve(opts.Solver)
		if err != nil {
			res.Reason = err.Error()
			if res.Solution == nil {
				res.DcritAfterPS = dieDcrit
				res.LeakAfterNW = res.LeakBeforeNW
			}
			return res, nil
		}
		tuned, err := rt.TimeWithBias(die, proc, sol.Assign)
		if err != nil {
			return nil, err
		}
		res.Solution = sol.Clone()
		res.DcritAfterPS = tuned.DcritPS
		res.LeakAfterNW = die.LeakageNW(pl, proc, res.Solution.Assign)
		if tuned.DcritPS <= limit {
			res.Met = true
			return res, nil
		}
		short := tuned.DcritPS/nom.DcritPS - 1
		target += short + 0.005
	}
	res.Reason = fmt.Sprintf("not met after %d escalations", opts.MaxIters)
	return res, nil
}

func requireTuneResultEqual(tb testing.TB, die int, want, got *TuneResult) {
	tb.Helper()
	if want.BetaActual != got.BetaActual || want.BetaSensed != got.BetaSensed ||
		want.Met != got.Met || want.Reason != got.Reason || want.Iters != got.Iters ||
		want.DcritBeforePS != got.DcritBeforePS || want.DcritAfterPS != got.DcritAfterPS ||
		want.LeakBeforeNW != got.LeakBeforeNW || want.LeakAfterNW != got.LeakAfterNW {
		tb.Fatalf("die %d diverged from the full-path reference:\nwant %+v\ngot  %+v", die, want, got)
	}
	if (want.Solution == nil) != (got.Solution == nil) {
		tb.Fatalf("die %d: solution presence diverged", die)
	}
	if want.Solution != nil {
		if want.Solution.Clusters != got.Solution.Clusters ||
			len(want.Solution.Assign) != len(got.Solution.Assign) {
			tb.Fatalf("die %d: solution shape diverged", die)
		}
		for r := range want.Solution.Assign {
			if want.Solution.Assign[r] != got.Solution.Assign[r] {
				tb.Fatalf("die %d: assignment diverged at row %d", die, r)
			}
		}
	}
}

// TestYieldStreamMatchesFullPathReference proves the whole vectorized
// per-die pipeline — SampleInto into reused buffers, Dcrit-only light
// re-times, LeakModel leakage — end to end: on a pinned seed grid, the
// stream's per-die TuneResults and aggregated YieldStats are byte-identical
// to the sequential full-path loop, at one worker and at several.
func TestYieldStreamMatchesFullPathReference(t *testing.T) {
	an, al, nom := streamFixture(t)
	proc := tech.Default45nm()
	dies := 16
	if !testing.Short() {
		dies = 40
	}
	const seed = 77
	opts := TuneOptions{GuardbandPct: 0.005}

	// Sequential reference over one dirty Retimer/Instance, exactly the
	// pre-refactor worker shape.
	pl := an.Placement()
	m := Default()
	rt := NewRetimer(an)
	var inst *core.Instance
	limit := nom.DcritPS * (1 + 0.001)
	wantResults := make([]*TuneResult, dies)
	wantAcc := newYieldAccum()
	func() {
		o := opts
		o.setDefaults()
		for i := 0; i < dies; i++ {
			die := m.Sample(pl, proc, DieSeed(seed, i))
			r, err := referenceTuneOn(rt, al, &inst, nom, die, proc, o)
			if err != nil {
				t.Fatal(err)
			}
			wantResults[i] = r
			wantAcc.fold(r, limit)
		}
	}()
	wantStats := wantAcc.stats()
	if wantStats.TunedDies == 0 {
		t.Fatal("population tuned no dies; reference proves nothing")
	}

	for _, workers := range []int{1, 4} {
		o := opts
		o.Workers = workers
		next := 0
		got, err := YieldStream(context.Background(), an, al, nom, proc, m, dies, seed, o,
			func(die int, r *TuneResult) error {
				if die != next {
					t.Fatalf("workers=%d: emitted die %d, want %d", workers, die, next)
				}
				requireTuneResultEqual(t, die, wantResults[die], r)
				next++
				return nil
			})
		if err != nil {
			t.Fatal(err)
		}
		if next != dies {
			t.Fatalf("workers=%d: %d emits, want %d", workers, next, dies)
		}
		if *got != *wantStats {
			t.Fatalf("workers=%d: stats diverged from the full-path reference:\nwant %+v\ngot  %+v",
				workers, wantStats, got)
		}
	}
}

// TestRecoverLeakageWithMatchesScalarReference pins the RBB fast path the
// same way: light bias scans plus LeakModel sweeps must reproduce the
// full-path scalar recovery bit for bit.
func TestRecoverLeakageWithMatchesScalarReference(t *testing.T) {
	pl := placed(t, "c1355")
	proc := tech.Default45nm()
	an := newAnalyzer(t, pl)
	nom, err := an.Run(nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	rt := NewRetimer(an)
	ref := NewRetimer(an)
	lm := NewLeakModel(pl, proc)
	m := Default()
	opts := RBBOptions{}
	recovered := 0
	for i := 0; i < 10; i++ {
		die := m.Sample(pl, proc, DieSeed(55, i))
		// Scalar reference: full re-times, per-gate leakage loops.
		o := opts
		o.setDefaults()
		wantTm, err := ref.Time(die)
		if err != nil {
			t.Fatal(err)
		}
		want := &RBBResult{
			DcritBeforePS: wantTm.DcritPS,
			DcritAfterPS:  wantTm.DcritPS,
			LeakBeforeNW:  die.LeakageNW(pl, proc, nil),
		}
		want.LeakAfterNW = want.LeakBeforeNW
		limit := nom.DcritPS * (1 - o.MarginPct)
		if want.DcritBeforePS < limit {
			best, bestDcrit := 0.0, want.DcritBeforePS
			for vbs := -o.StepV; vbs >= -o.MaxV-1e-9; vbs -= o.StepV {
				tm, err := ref.TimeUniformBias(die, proc, vbs)
				if err != nil {
					t.Fatal(err)
				}
				if tm.DcritPS > limit {
					break
				}
				best, bestDcrit = vbs, tm.DcritPS
			}
			if best != 0 {
				want.Applied = true
				want.VbsV = best
				want.DcritAfterPS = bestDcrit
				leak := 0.0
				for g := range pl.Design.Gates {
					leak += pl.Design.Gates[g].Cell.LeakNW * proc.LeakageFactorBias(best, die.DVthV[g])
				}
				want.LeakAfterNW = leak
				want.SavedPct = 100 * (want.LeakBeforeNW - leak) / want.LeakBeforeNW
			}
		}

		got, err := RecoverLeakageWith(rt, lm, nom, die, opts)
		if err != nil {
			t.Fatal(err)
		}
		if *want != *got {
			t.Fatalf("die %d diverged:\nwant %+v\ngot  %+v", i, want, got)
		}
		if got.Applied {
			recovered++
		}
	}
	if recovered == 0 {
		t.Error("no die recovered leakage; reference proves nothing")
	}
}

// TestTunerSolveMemoBounded: the allocation memo is a bounded cache, not a
// log — continuous escalation targets must not grow a worker's footprint
// past maxSolMemo over a long stream, and a full memo must still return
// correct (scratch-owned) solutions.
func TestTunerSolveMemoBounded(t *testing.T) {
	an, al, nom := streamFixture(t)
	_ = nom
	tn := NewTuner(NewRetimer(an), al)
	var want *core.Solution
	for i := 0; i < 3*maxSolMemo; i++ {
		beta := 0.02 + 1e-6*float64(i) // continuous, never repeats
		sol, solveErr, err := tn.solve(core.Options{Beta: beta, MaxClusters: 3, MaxBiasPairs: 2}, nil, true, nil)
		if err != nil {
			t.Fatal(err)
		}
		if solveErr != nil || sol == nil {
			t.Fatalf("target %v unexpectedly infeasible: %v", beta, solveErr)
		}
		if i == 0 {
			want = sol.Clone()
		}
		if len(tn.sols) > maxSolMemo {
			t.Fatalf("memo grew to %d entries, cap is %d", len(tn.sols), maxSolMemo)
		}
	}
	// Escalation-style (non-memoized) targets must never insert.
	grew := len(tn.sols)
	if _, _, err := tn.solve(core.Options{Beta: 0.0423, MaxClusters: 3, MaxBiasPairs: 2}, nil, false, nil); err != nil {
		t.Fatal(err)
	}
	if len(tn.sols) != grew {
		t.Fatalf("non-memoized solve grew the memo to %d entries", len(tn.sols))
	}
	// A key cached before the memo filled must still hit and agree with a
	// fresh solve of the same instance.
	sol, solveErr, err := tn.solve(core.Options{Beta: 0.02, MaxClusters: 3, MaxBiasPairs: 2}, nil, true, nil)
	if err != nil || solveErr != nil {
		t.Fatal(err, solveErr)
	}
	if sol.Clusters != want.Clusters || len(sol.Assign) != len(want.Assign) {
		t.Fatal("cached solution diverged from the first solve")
	}
	for r := range want.Assign {
		if sol.Assign[r] != want.Assign[r] {
			t.Fatalf("cached assignment diverged at row %d", r)
		}
	}
}

// TestLightTimingRejectedAsNominal: the Light contract is enforced at the
// path-consuming boundaries — a Dcrit-only re-time handed where a full
// nominal analysis is required must be a hard error, not a silent
// constraint-free tuning.
func TestLightTimingRejectedAsNominal(t *testing.T) {
	an, al, _ := streamFixture(t)
	light, err := an.RunLight(nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	proc := tech.Default45nm()
	die := Default().Sample(an.Placement(), proc, 1)
	tn := NewTuner(NewRetimer(an), al)
	if _, err := TuneOn(tn, light, die, proc, TuneOptions{}); err == nil {
		t.Error("TuneOn accepted a light nominal timing")
	}
	lm := NewLeakModel(an.Placement(), proc)
	if _, err := RecoverLeakageWith(NewRetimer(an), lm, light, die, RBBOptions{}); err == nil {
		t.Error("RecoverLeakageWith accepted a light nominal timing")
	}
	if _, err := core.NewAllocator(an.Placement(), light); err == nil {
		t.Error("core.NewAllocator accepted a light timing")
	}
}
