package variation

import (
	"math"
	"math/rand"

	"repro/internal/place"
	"repro/internal/tech"
)

// Sampler draws dies of one placement into reused buffers. Everything a
// seed cannot change is hoisted out of the per-die loop: the gate-centre
// coordinates come from the placement's cached structure-of-arrays form
// (computed once per placement, shared by every Sampler over it), and the
// generator state is re-seeded in place instead of reallocated, so a
// warmed-up SampleInto allocates nothing. The systematic-surface loop is
// restructured wave-major — each cosine wave sweeps all gates in one
// branch-free pass — which is bit-identical to the gate-major accumulation
// of Model.Sample (same additions in the same order per gate) but keeps the
// wave constants in registers.
//
// A Sampler's geometry is immutable but its generator is not: one Sampler
// must not be used from more than one goroutine at a time. Concurrent
// population loops create one per worker with Clone, which shares the
// placement geometry and gives the worker a private generator (YieldStream
// does exactly that via its worker pool).
type Sampler struct {
	m    Model
	pl   *place.Placement
	proc *tech.Process
	// xs, ys are the placement's cached gate centres (SoA); shared across
	// Clones and never written.
	xs, ys []float64
	rng    *rand.Rand
}

// NewSampler builds a Sampler for the placement/process pair. The gate
// coordinates are the placement's cached SoA centres, so constructing more
// Samplers over one placement costs O(1) geometry work after the first.
func NewSampler(pl *place.Placement, proc *tech.Process, m Model) *Sampler {
	xs, ys := pl.Centers()
	return &Sampler{m: m, pl: pl, proc: proc, xs: xs, ys: ys, rng: rand.New(rand.NewSource(0))}
}

// Clone returns a Sampler sharing the immutable geometry with a private
// generator, the per-worker form of a shared Sampler.
func (s *Sampler) Clone() *Sampler {
	c := *s
	c.rng = rand.New(rand.NewSource(0))
	return &c
}

// Placement returns the placement being sampled.
func (s *Sampler) Placement() *place.Placement { return s.pl }

// grow sizes the die's per-gate slices for n gates, reusing capacity.
func (d *Die) grow(n int) {
	if cap(d.DVthV) < n {
		d.DVthV = make([]float64, n)
	}
	d.DVthV = d.DVthV[:n]
	if cap(d.DelayScale) < n {
		d.DelayScale = make([]float64, n)
	}
	d.DelayScale = d.DelayScale[:n]
}

// SampleInto draws the die of the given seed into die's reused buffers (nil
// allocates a fresh Die) and returns it. The sampled population is
// bit-identical to Model.Sample's: the generator is re-seeded exactly as a
// fresh rand.New(rand.NewSource(seed)) and every draw happens in the same
// order.
func (s *Sampler) SampleInto(die *Die, seed int64) *Die {
	if die == nil {
		die = &Die{}
	}
	n := len(s.pl.Design.Gates)
	die.Seed = seed
	die.grow(n)
	s.sampleRow(die.DVthV, die.DelayScale, seed)
	return die
}

// sampleRow draws one die's threshold shifts and delay scales into the given
// rows — the shared body of SampleInto and SampleBlockInto, so the scalar
// and block samplers cannot diverge. Both rows must have length NumGates.
func (s *Sampler) sampleRow(dv, dscale []float64, seed int64) {
	s.rng.Seed(seed)
	d2d := s.rng.NormFloat64() * s.m.SigmaD2DmV / 1000

	// Accumulate the systematic surface wave by wave directly into the
	// DVthV row: the per-gate inner loop is a branch-free fused
	// multiply-add sweep, and no scratch beyond the caller's rows is
	// needed.
	clear(dv)
	if s.m.SigmaSysmV > 0 && s.m.CorrLenUM > 0 {
		const waves = 6
		amp := s.m.SigmaSysmV / 1000 * math.Sqrt(2/float64(waves))
		for i := 0; i < waves; i++ {
			theta := s.rng.Float64() * 2 * math.Pi
			lambda := s.m.CorrLenUM * (0.7 + 0.6*s.rng.Float64())
			kx := 2 * math.Pi / lambda * math.Cos(theta)
			ky := 2 * math.Pi / lambda * math.Sin(theta)
			phase := s.rng.Float64() * 2 * math.Pi
			for g, x := range s.xs {
				dv[g] += amp * math.Cos(kx*x+ky*s.ys[g]+phase)
			}
		}
	}

	for g := range dv {
		dvth := d2d + dv[g] + s.rng.NormFloat64()*s.m.SigmaRndmV/1000
		dv[g] = dvth
		dscale[g] = s.proc.DelayFactorDVth(dvth)
	}
}

// AgedInto ages d into out's reused buffers (nil allocates a fresh Die; out
// == d ages in place), re-seeding the Sampler's generator from the die seed
// exactly as Die.Aged does, so the aged population is bit-identical at zero
// allocations.
func (s *Sampler) AgedInto(out, d *Die, years, activity float64) *Die {
	if years <= 0 {
		return d.copyInto(out)
	}
	s.rng.Seed(agingSeed(d.Seed))
	return agedInto(out, d, s.rng, s.proc, years, activity)
}

// copyInto copies d into out's buffers (nil allocates).
func (d *Die) copyInto(out *Die) *Die {
	if out == nil {
		out = &Die{}
	}
	if out == d {
		return out
	}
	out.Seed = d.Seed
	out.grow(len(d.DVthV))
	copy(out.DVthV, d.DVthV)
	copy(out.DelayScale, d.DelayScale)
	return out
}

// agingSeed derives the deterministic aging-spread stream of a die.
func agingSeed(dieSeed int64) int64 { return dieSeed ^ 0x5eed }

// agedInto applies the NBTI drift with per-gate spread drawn from rng; the
// shared body of Die.Aged and Sampler.AgedInto.
func agedInto(out, d *Die, rng *rand.Rand, proc *tech.Process, years, activity float64) *Die {
	if out == nil {
		out = &Die{}
	}
	drift := AgingDVthV(years, activity)
	out.Seed = d.Seed
	out.grow(len(d.DVthV))
	for g := range d.DVthV {
		out.DVthV[g] = d.DVthV[g] + drift*(1+0.2*rng.NormFloat64())
		out.DelayScale[g] = proc.DelayFactorDVth(out.DVthV[g])
	}
	return out
}
