package variation

import (
	"context"
	"errors"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/sta"
	"repro/internal/tech"
)

// streamFixture builds the shared Analyzer/Allocator/nominal trio once for
// the YieldStream tests.
func streamFixture(t *testing.T) (*sta.Analyzer, *core.Allocator, *sta.Timing) {
	t.Helper()
	pl := placed(t, "c1355")
	an, err := sta.NewAnalyzer(pl, sta.Options{})
	if err != nil {
		t.Fatal(err)
	}
	nom, err := an.Run(nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	al, err := core.NewAllocator(pl, nom)
	if err != nil {
		t.Fatal(err)
	}
	return an, al, nom
}

// TestYieldStreamMatchesStudyInOrder: the streaming core must emit every
// die exactly once in increasing order and aggregate to byte-identical
// statistics as YieldStudyOn — across chunk boundaries and worker counts.
func TestYieldStreamMatchesStudyInOrder(t *testing.T) {
	an, al, nom := streamFixture(t)
	proc := tech.Default45nm()
	dies := 20
	if !testing.Short() {
		dies = yieldChunk + 40 // cross the chunk boundary
	}
	opts := TuneOptions{GuardbandPct: 0.005}

	want, err := YieldStudyOn(context.Background(), an, al, nom, proc, Default(), dies, 7, opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 4} {
		opts.Workers = workers
		next := 0
		got, err := YieldStream(context.Background(), an, al, nom, proc, Default(), dies, 7, opts,
			func(die int, r *TuneResult) error {
				if die != next {
					t.Fatalf("workers=%d: emitted die %d, want %d", workers, die, next)
				}
				if r == nil {
					t.Fatalf("workers=%d: nil result for die %d", workers, die)
				}
				next++
				return nil
			})
		if err != nil {
			t.Fatal(err)
		}
		if next != dies {
			t.Fatalf("workers=%d: %d emits, want %d", workers, next, dies)
		}
		if *got != *want {
			t.Fatalf("workers=%d: stream stats diverged from study:\nstream: %+v\nstudy:  %+v",
				workers, got, want)
		}
	}
}

// TestYieldStreamEmitErrorAborts: a failing consumer stops the study.
func TestYieldStreamEmitErrorAborts(t *testing.T) {
	an, al, nom := streamFixture(t)
	boom := errors.New("consumer gone")
	calls := 0
	_, err := YieldStream(context.Background(), an, al, nom, tech.Default45nm(), Default(), 10, 3,
		TuneOptions{GuardbandPct: 0.005},
		func(die int, r *TuneResult) error {
			calls++
			if die == 3 {
				return boom
			}
			return nil
		})
	if !errors.Is(err, boom) {
		t.Fatalf("got %v, want the emit error", err)
	}
	if calls != 4 {
		t.Fatalf("emit called %d times after error at die 3, want 4", calls)
	}
}

// TestYieldStreamReleasesResults is the structural bounded-memory proof:
// mid-stream, every TuneResult from chunks before the current one must be
// unreachable (collectable), i.e. YieldStream hands results over and forgets
// them instead of accumulating a per-die slice. Finalizers make "unreachable"
// observable: at die 3*yieldChunk the results of the first two chunks are
// dead no matter where the worker window sits, so after a forced GC their
// finalizers must have run. An implementation that accumulates results
// (the pre-streaming YieldStudyOn shape) keeps every one of them live and
// fails the threshold.
func TestYieldStreamReleasesResults(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-chunk stream is a -short skip")
	}
	an, al, nom := streamFixture(t)
	proc := tech.Default45nm()
	dies := 3*yieldChunk + 16

	var finalized atomic.Int64
	checkAt := 3 * yieldChunk
	threshold := int64(2*yieldChunk - 8) // first two chunks, minus sequencing slack
	checked := false
	_, err := YieldStream(context.Background(), an, al, nom, proc, Default(), dies, 13,
		TuneOptions{GuardbandPct: 0.005},
		func(die int, r *TuneResult) error {
			runtime.SetFinalizer(r, func(*TuneResult) { finalized.Add(1) })
			if die == checkAt {
				checked = true
				deadline := time.Now().Add(5 * time.Second)
				for finalized.Load() < threshold {
					if time.Now().After(deadline) {
						t.Fatalf("at die %d only %d of %d earlier results were collectable: YieldStream accumulates",
							die, finalized.Load(), threshold)
					}
					runtime.GC()
					time.Sleep(time.Millisecond)
				}
			}
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if !checked {
		t.Fatal("stream never reached the checkpoint")
	}
}
