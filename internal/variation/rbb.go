package variation

import (
	"errors"

	"repro/internal/place"
	"repro/internal/sta"
	"repro/internal/tech"
)

// Reverse body bias (RBB) support. The paper's compensation flow uses FBB to
// rescue slow dies; its discussion (sections 1-2, following Tschanz et al.
// [8]) notes the complementary knob: dies that come out *faster* than
// nominal waste leakage, and a reverse bias can raise their threshold back
// until the timing margin is consumed. This extension applies block-level
// RBB to fast dies, the granularity [8] used; the row-clustered machinery is
// unnecessary here because RBB is bounded by the single most-critical path.

// RBBResult reports a leakage-recovery attempt.
type RBBResult struct {
	// Applied is false when the die had no usable timing margin.
	Applied bool
	// VbsV is the (negative) body bias chosen.
	VbsV float64
	// DcritBeforePS/DcritAfterPS bracket the timing cost.
	DcritBeforePS, DcritAfterPS float64
	// LeakBeforeNW/LeakAfterNW bracket the leakage gain.
	LeakBeforeNW, LeakAfterNW float64
	// SavedPct is the leakage reduction in percent.
	SavedPct float64
}

// RBBOptions configure leakage recovery.
type RBBOptions struct {
	// StepV is the generator resolution on the reverse side (default
	// 50 mV, mirroring the forward grid).
	StepV float64
	// MaxV is the deepest reverse bias magnitude (default 0.5 V; beyond
	// that RBB loses effectiveness through BTBT leakage and worsened
	// short-channel effects, as the paper notes).
	MaxV float64
	// MarginPct keeps this fraction of Dcrit as safety margin
	// (default 0.002).
	MarginPct float64
}

func (o *RBBOptions) setDefaults() {
	if o.StepV <= 0 {
		o.StepV = 0.05
	}
	if o.MaxV <= 0 {
		o.MaxV = 0.5
	}
	if o.MarginPct <= 0 {
		o.MarginPct = 0.002
	}
}

// RecoverLeakage applies the deepest uniform reverse bias that keeps the
// die within nominal timing. The die's own variation is accounted for
// exactly: each gate's delay combines its threshold shift with the reverse
// bias through the process model.
func RecoverLeakage(pl *place.Placement, nom *sta.Timing, die *Die, proc *tech.Process, opts RBBOptions) (*RBBResult, error) {
	opts.setDefaults()
	if nom == nil || die == nil {
		return nil, errors.New("variation: nil timing or die")
	}
	dieTm, err := die.Timing(pl)
	if err != nil {
		return nil, err
	}
	res := &RBBResult{
		DcritBeforePS: dieTm.DcritPS,
		DcritAfterPS:  dieTm.DcritPS,
		LeakBeforeNW:  die.LeakageNW(pl, proc, nil),
	}
	res.LeakAfterNW = res.LeakBeforeNW
	limit := nom.DcritPS * (1 - opts.MarginPct)
	if dieTm.DcritPS >= limit {
		return res, nil // no margin to spend
	}

	scale := make([]float64, len(die.DVthV))
	tryBias := func(vbs float64) (float64, error) {
		for g := range scale {
			scale[g] = proc.DelayFactorBias(vbs, die.DVthV[g])
		}
		tm, err := sta.Analyze(pl, sta.Options{DelayScale: scale})
		if err != nil {
			return 0, err
		}
		return tm.DcritPS, nil
	}

	// Deepest feasible reverse level, scanned from the shallow end (the
	// feasible set is contiguous: more RBB is strictly slower).
	best, bestDcrit := 0.0, dieTm.DcritPS
	for vbs := -opts.StepV; vbs >= -opts.MaxV-1e-9; vbs -= opts.StepV {
		dcrit, err := tryBias(vbs)
		if err != nil {
			return nil, err
		}
		if dcrit > limit {
			break
		}
		best, bestDcrit = vbs, dcrit
	}
	if best == 0 {
		return res, nil
	}

	res.Applied = true
	res.VbsV = best
	res.DcritAfterPS = bestDcrit
	leak := 0.0
	for g := range pl.Design.Gates {
		leak += pl.Design.Gates[g].Cell.LeakNW * proc.LeakageFactorBias(best, die.DVthV[g])
	}
	res.LeakAfterNW = leak
	res.SavedPct = 100 * (res.LeakBeforeNW - leak) / res.LeakBeforeNW
	return res, nil
}

// RecoveryStats aggregates RBB over a die population.
type RecoveryStats struct {
	Dies             int
	Recovered        int
	MeanSavedPct     float64 // over recovered dies
	MeanLeakBeforeNW float64
	MeanLeakAfterNW  float64
}

// RecoveryStudy applies RBB to every fast die of a population.
func RecoveryStudy(pl *place.Placement, proc *tech.Process, m Model, nDies int, seed int64, opts RBBOptions) (*RecoveryStats, error) {
	if nDies <= 0 {
		return nil, errors.New("variation: nDies must be positive")
	}
	nom, err := sta.Analyze(pl, sta.Options{})
	if err != nil {
		return nil, err
	}
	st := &RecoveryStats{Dies: nDies}
	for i := 0; i < nDies; i++ {
		die := m.Sample(pl, proc, seed+int64(i)*104729)
		r, err := RecoverLeakage(pl, nom, die, proc, opts)
		if err != nil {
			return nil, err
		}
		st.MeanLeakBeforeNW += r.LeakBeforeNW
		st.MeanLeakAfterNW += r.LeakAfterNW
		if r.Applied {
			st.Recovered++
			st.MeanSavedPct += r.SavedPct
		}
	}
	st.MeanLeakBeforeNW /= float64(nDies)
	st.MeanLeakAfterNW /= float64(nDies)
	if st.Recovered > 0 {
		st.MeanSavedPct /= float64(st.Recovered)
	}
	return st, nil
}
