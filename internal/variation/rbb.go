package variation

import (
	"errors"

	"repro/internal/place"
	"repro/internal/sta"
	"repro/internal/tech"
)

// Reverse body bias (RBB) support. The paper's compensation flow uses FBB to
// rescue slow dies; its discussion (sections 1-2, following Tschanz et al.
// [8]) notes the complementary knob: dies that come out *faster* than
// nominal waste leakage, and a reverse bias can raise their threshold back
// until the timing margin is consumed. This extension applies block-level
// RBB to fast dies, the granularity [8] used; the row-clustered machinery is
// unnecessary here because RBB is bounded by the single most-critical path.

// RBBResult reports a leakage-recovery attempt.
type RBBResult struct {
	// Applied is false when the die had no usable timing margin.
	Applied bool
	// VbsV is the (negative) body bias chosen.
	VbsV float64
	// DcritBeforePS/DcritAfterPS bracket the timing cost.
	DcritBeforePS, DcritAfterPS float64
	// LeakBeforeNW/LeakAfterNW bracket the leakage gain.
	LeakBeforeNW, LeakAfterNW float64
	// SavedPct is the leakage reduction in percent.
	SavedPct float64
}

// RBBOptions configure leakage recovery.
type RBBOptions struct {
	// StepV is the generator resolution on the reverse side (default
	// 50 mV, mirroring the forward grid).
	StepV float64
	// MaxV is the deepest reverse bias magnitude (default 0.5 V; beyond
	// that RBB loses effectiveness through BTBT leakage and worsened
	// short-channel effects, as the paper notes).
	MaxV float64
	// MarginPct keeps this fraction of Dcrit as safety margin
	// (default 0.002).
	MarginPct float64
}

func (o *RBBOptions) setDefaults() {
	if o.StepV <= 0 {
		o.StepV = 0.05
	}
	if o.MaxV <= 0 {
		o.MaxV = 0.5
	}
	if o.MarginPct <= 0 {
		o.MarginPct = 0.002
	}
}

// RecoverLeakage applies the deepest uniform reverse bias that keeps the
// die within nominal timing. The die's own variation is accounted for
// exactly: each gate's delay combines its threshold shift with the reverse
// bias through the process model. It is the one-shot form of
// RecoverLeakageOn; population studies should share an Analyzer and a
// LeakModel (RecoverLeakageWith).
func RecoverLeakage(pl *place.Placement, nom *sta.Timing, die *Die, proc *tech.Process, opts RBBOptions) (*RBBResult, error) {
	an, err := sta.NewAnalyzer(pl, sta.Options{})
	if err != nil {
		return nil, err
	}
	return RecoverLeakageOn(NewRetimer(an), nom, die, proc, opts)
}

// RecoverLeakageOn is RecoverLeakage on a reusable Retimer: the bias-scan
// re-timings run through the Retimer's shared Analyzer's Dcrit-only fast
// path into reused buffers (the scan only ever reads DcritPS). It builds a
// fresh LeakModel per call; loops over a population share one through
// RecoverLeakageWith.
func RecoverLeakageOn(rt *Retimer, nom *sta.Timing, die *Die, proc *tech.Process, opts RBBOptions) (*RBBResult, error) {
	return RecoverLeakageWith(rt, NewLeakModel(rt.Placement(), proc), nom, die, opts)
}

// RecoverLeakageWith is RecoverLeakageOn with a caller-owned LeakModel: the
// unbiased and recovered leakages are one exp pass plus multiply-add sweeps
// over lm's precomputed tables (lm must be built for rt's placement and the
// die's process; its per-die state is overwritten).
func RecoverLeakageWith(rt *Retimer, lm *LeakModel, nom *sta.Timing, die *Die, opts RBBOptions) (*RBBResult, error) {
	opts.setDefaults()
	if nom == nil || die == nil {
		return nil, errors.New("variation: nil timing or die")
	}
	if nom.Light {
		return nil, errors.New("variation: nominal timing must be a full (path-extracting) analysis")
	}
	proc := lm.Process()
	dieTm, err := rt.TimeLight(die)
	if err != nil {
		return nil, err
	}
	lm.SetDie(die)
	dieDcrit := dieTm.DcritPS // rt's buffer is reused by the bias scan below
	res := &RBBResult{
		DcritBeforePS: dieDcrit,
		DcritAfterPS:  dieDcrit,
		LeakBeforeNW:  lm.LeakageNW(nil),
	}
	res.LeakAfterNW = res.LeakBeforeNW
	limit := nom.DcritPS * (1 - opts.MarginPct)
	if dieDcrit >= limit {
		return res, nil // no margin to spend
	}

	// Deepest feasible reverse level, scanned from the shallow end (the
	// feasible set is contiguous: more RBB is strictly slower).
	best, bestDcrit := 0.0, dieDcrit
	for vbs := -opts.StepV; vbs >= -opts.MaxV-1e-9; vbs -= opts.StepV {
		tm, err := rt.TimeUniformBiasLight(die, proc, vbs)
		if err != nil {
			return nil, err
		}
		if tm.DcritPS > limit {
			break
		}
		best, bestDcrit = vbs, tm.DcritPS
	}
	if best == 0 {
		return res, nil
	}

	res.Applied = true
	res.VbsV = best
	res.DcritAfterPS = bestDcrit
	leak := lm.LeakageUniformNW(best)
	res.LeakAfterNW = leak
	res.SavedPct = 100 * (res.LeakBeforeNW - leak) / res.LeakBeforeNW
	return res, nil
}

// RecoveryStats aggregates RBB over a die population.
type RecoveryStats struct {
	Dies             int
	Recovered        int
	MeanSavedPct     float64 // over recovered dies
	MeanLeakBeforeNW float64
	MeanLeakAfterNW  float64
}

// RecoveryStudy applies RBB to every fast die of a population, sharing one
// Analyzer, one Retimer, one Sampler and one LeakModel across all dies and
// bias steps.
func RecoveryStudy(pl *place.Placement, proc *tech.Process, m Model, nDies int, seed int64, opts RBBOptions) (*RecoveryStats, error) {
	if nDies <= 0 {
		return nil, errors.New("variation: nDies must be positive")
	}
	an, err := sta.NewAnalyzer(pl, sta.Options{})
	if err != nil {
		return nil, err
	}
	nom, err := an.Run(nil, nil)
	if err != nil {
		return nil, err
	}
	rt := NewRetimer(an)
	smp := NewSampler(pl, proc, m)
	lm := NewLeakModel(pl, proc)
	var die *Die
	st := &RecoveryStats{Dies: nDies}
	for i := 0; i < nDies; i++ {
		die = smp.SampleInto(die, DieSeed(seed, i))
		r, err := RecoverLeakageWith(rt, lm, nom, die, opts)
		if err != nil {
			return nil, err
		}
		st.MeanLeakBeforeNW += r.LeakBeforeNW
		st.MeanLeakAfterNW += r.LeakAfterNW
		if r.Applied {
			st.Recovered++
			st.MeanSavedPct += r.SavedPct
		}
	}
	st.MeanLeakBeforeNW /= float64(nDies)
	st.MeanLeakAfterNW /= float64(nDies)
	if st.Recovered > 0 {
		st.MeanSavedPct /= float64(st.Recovered)
	}
	return st, nil
}
