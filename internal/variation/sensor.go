package variation

import (
	"math/rand"

	"repro/internal/sta"
)

// Sensor estimates a die's slowdown coefficient beta relative to nominal
// timing. The paper's section 3.1 describes both styles implemented here.
//
// nom is always a full nominal analysis (its path set is valid); die may be
// a Dcrit-only light re-time — implementations must not read die.Paths,
// only its GateDelayPS/ArrPS/DcritPS. dieSeed identifies the die being
// measured (Die.Seed), so noisy sensors can derive an independent,
// deterministic noise stream per die.
type Sensor interface {
	// MeasureBeta returns the estimated slowdown (0.05 = 5% slower).
	MeasureBeta(nom, die *sta.Timing, dieSeed int64) float64
}

// ReplicaSensor models critical-path replicas placed around the block
// (Teodorescu et al. [5]): it observes the die delay of the R longest
// nominal paths, with multiplicative measurement noise. Replicas can miss
// the true critical path of a particular die, which is why tuning wants a
// guardband.
type ReplicaSensor struct {
	// Replicas is the number of replicated paths (default 8).
	Replicas int
	// NoisePct is the 1-sigma relative measurement error (e.g. 0.01).
	NoisePct float64
	// Seed makes the noise deterministic: together with the die seed it
	// selects the measurement-noise stream, so re-measuring one die
	// reproduces the same reading while different dies see independent
	// noise (physical measurement noise is uncorrelated across dies).
	Seed int64
}

// MeasureBeta implements Sensor.
func (s ReplicaSensor) MeasureBeta(nom, die *sta.Timing, dieSeed int64) float64 {
	r := s.Replicas
	if r <= 0 {
		r = 8
	}
	if r > len(nom.Paths) {
		r = len(nom.Paths)
	}
	rng := rand.New(rand.NewSource(noiseSeed(s.Seed, dieSeed)))
	worst := 0.0
	for i := 0; i < r; i++ {
		p := nom.Paths[i]
		nomDelay, dieDelay := 0.0, 0.0
		for _, g := range p.Gates {
			nomDelay += nom.GateDelayPS[g]
			dieDelay += die.GateDelayPS[g]
		}
		if nomDelay <= 0 {
			continue
		}
		ratio := dieDelay / nomDelay
		ratio *= 1 + rng.NormFloat64()*s.NoisePct
		if b := ratio - 1; b > worst {
			worst = b
		}
	}
	return worst
}

// noiseSeed mixes the sensor's own seed with the die's through the DieSeed
// splitmix64 finalizer: deterministic per (sensor, die) pair, decorrelated
// across dies. A fixed sensor seed alone would replay one noise stream on
// every die of a population, making the measurement error perfectly
// correlated across the lot.
func noiseSeed(sensorSeed, dieSeed int64) int64 {
	return splitmix64(uint64(sensorSeed) + uint64(dieSeed)*0x9e3779b97f4a7c15)
}

// InSituMonitor models the modified flip-flops of Mitra [3]: every endpoint
// is observed, so the measurement sees the true critical slowdown, quantized
// to the monitor's resolution.
type InSituMonitor struct {
	// ResolutionPct quantizes the reading upward (e.g. 0.01 for 1% steps);
	// zero means exact.
	ResolutionPct float64
}

// MeasureBeta implements Sensor.
func (s InSituMonitor) MeasureBeta(nom, die *sta.Timing, _ int64) float64 {
	beta := die.DcritPS/nom.DcritPS - 1
	if beta < 0 {
		return beta
	}
	if s.ResolutionPct > 0 {
		steps := beta / s.ResolutionPct
		whole := float64(int(steps))
		if steps > whole {
			whole++
		}
		beta = whole * s.ResolutionPct
	}
	return beta
}
