package variation

import (
	"math/rand"

	"repro/internal/sta"
)

// Sensor estimates a die's slowdown coefficient beta relative to nominal
// timing. The paper's section 3.1 describes both styles implemented here.
type Sensor interface {
	// MeasureBeta returns the estimated slowdown (0.05 = 5% slower).
	MeasureBeta(nom, die *sta.Timing) float64
}

// ReplicaSensor models critical-path replicas placed around the block
// (Teodorescu et al. [5]): it observes the die delay of the R longest
// nominal paths, with multiplicative measurement noise. Replicas can miss
// the true critical path of a particular die, which is why tuning wants a
// guardband.
type ReplicaSensor struct {
	// Replicas is the number of replicated paths (default 8).
	Replicas int
	// NoisePct is the 1-sigma relative measurement error (e.g. 0.01).
	NoisePct float64
	// Seed makes the noise deterministic.
	Seed int64
}

// MeasureBeta implements Sensor.
func (s ReplicaSensor) MeasureBeta(nom, die *sta.Timing) float64 {
	r := s.Replicas
	if r <= 0 {
		r = 8
	}
	if r > len(nom.Paths) {
		r = len(nom.Paths)
	}
	rng := rand.New(rand.NewSource(s.Seed))
	worst := 0.0
	for i := 0; i < r; i++ {
		p := nom.Paths[i]
		nomDelay, dieDelay := 0.0, 0.0
		for _, g := range p.Gates {
			nomDelay += nom.GateDelayPS[g]
			dieDelay += die.GateDelayPS[g]
		}
		if nomDelay <= 0 {
			continue
		}
		ratio := dieDelay / nomDelay
		ratio *= 1 + rng.NormFloat64()*s.NoisePct
		if b := ratio - 1; b > worst {
			worst = b
		}
	}
	return worst
}

// InSituMonitor models the modified flip-flops of Mitra [3]: every endpoint
// is observed, so the measurement sees the true critical slowdown, quantized
// to the monitor's resolution.
type InSituMonitor struct {
	// ResolutionPct quantizes the reading upward (e.g. 0.01 for 1% steps);
	// zero means exact.
	ResolutionPct float64
}

// MeasureBeta implements Sensor.
func (s InSituMonitor) MeasureBeta(nom, die *sta.Timing) float64 {
	beta := die.DcritPS/nom.DcritPS - 1
	if beta < 0 {
		return beta
	}
	if s.ResolutionPct > 0 {
		steps := beta / s.ResolutionPct
		whole := float64(int(steps))
		if steps > whole {
			whole++
		}
		beta = whole * s.ResolutionPct
	}
	return beta
}
