package variation

import (
	"math/rand"
	"testing"

	"repro/internal/tech"
)

// TestLeakModelMatchesScalar is the differential harness of the batched
// leakage path: under random row assignments, uniform biases (forward and
// reverse) and no bias at all, the precomputed-table multiply-add pass must
// reproduce the scalar per-gate Die.LeakageNW / LeakageFactorBias loop bit
// for bit — including across die changes on one reused model.
func TestLeakModelMatchesScalar(t *testing.T) {
	pl := placed(t, "c1355")
	proc := tech.Default45nm()
	m := Default()
	lm := NewLeakModel(pl, proc)
	grid := pl.Lib.Grid
	rng := rand.New(rand.NewSource(11))

	for i := 0; i < 5; i++ {
		die := m.Sample(pl, proc, DieSeed(21, i))
		lm.SetDie(die)

		if want, got := die.LeakageNW(pl, proc, nil), lm.LeakageNW(nil); want != got {
			t.Fatalf("die %d unbiased: %v, want %v", i, got, want)
		}

		for trial := 0; trial < 8; trial++ {
			assign := make([]int, pl.NumRows)
			for r := range assign {
				assign[r] = rng.Intn(grid.NumLevels())
			}
			want := die.LeakageNW(pl, proc, assign)
			if got := lm.LeakageNW(assign); want != got {
				t.Fatalf("die %d assignment %v: %v, want %v", i, assign, got, want)
			}
		}

		for _, vbs := range []float64{-0.5, -0.2, -0.05, 0, 0.05, 0.3, 0.5} {
			want := 0.0
			for g := range pl.Design.Gates {
				want += pl.Design.Gates[g].Cell.LeakNW * proc.LeakageFactorBias(vbs, die.DVthV[g])
			}
			if got := lm.LeakageUniformNW(vbs); want != got {
				t.Fatalf("die %d uniform vbs=%v: %v, want %v", i, vbs, got, want)
			}
		}
	}
}

// TestLeakModelTemperature: the tables carry the process temperature, so a
// model built on a derated process must match the scalar path at that
// temperature (the aging controller rebuilds per checkpoint).
func TestLeakModelTemperature(t *testing.T) {
	pl := placed(t, "c1355")
	base := tech.Default45nm()
	hot := base.WithTemperature(360)
	die := Default().Sample(pl, base, 3)
	lm := NewLeakModel(pl, hot)
	lm.SetDie(die)
	want := die.LeakageNW(pl, hot, nil)
	if got := lm.LeakageNW(nil); want != got {
		t.Fatalf("hot unbiased leakage %v, want %v", got, want)
	}
	if cold := die.LeakageNW(pl, base, nil); cold == want {
		t.Fatal("temperature derate had no effect; test is vacuous")
	}
}

// TestLeakModelCloneSharesTables: clones must agree with the parent while
// holding independent per-die state.
func TestLeakModelCloneSharesTables(t *testing.T) {
	pl := placed(t, "c1355")
	proc := tech.Default45nm()
	m := Default()
	lm := NewLeakModel(pl, proc)
	cl := lm.Clone()
	d1 := m.Sample(pl, proc, 1)
	d2 := m.Sample(pl, proc, 2)
	lm.SetDie(d1)
	cl.SetDie(d2)
	if want, got := d1.LeakageNW(pl, proc, nil), lm.LeakageNW(nil); want != got {
		t.Fatalf("parent after clone SetDie: %v, want %v", got, want)
	}
	if want, got := d2.LeakageNW(pl, proc, nil), cl.LeakageNW(nil); want != got {
		t.Fatalf("clone: %v, want %v", got, want)
	}
}

// TestLeakModelAllocFree: after one warm-up die, SetDie and both evaluation
// forms allocate nothing.
func TestLeakModelAllocFree(t *testing.T) {
	pl := placed(t, "c1355")
	proc := tech.Default45nm()
	m := Default()
	lm := NewLeakModel(pl, proc)
	smp := NewSampler(pl, proc, m)
	die := smp.SampleInto(nil, 1)
	lm.SetDie(die)
	assign := make([]int, pl.NumRows)
	for r := range assign {
		assign[r] = r % pl.Lib.Grid.NumLevels()
	}
	i := 0
	if n := testing.AllocsPerRun(20, func() {
		i++
		smp.SampleInto(die, DieSeed(1, i))
		lm.SetDie(die)
		_ = lm.LeakageNW(nil)
		_ = lm.LeakageNW(assign)
		_ = lm.LeakageUniformNW(-0.2)
	}); n != 0 {
		t.Errorf("warmed-up LeakModel allocates %v/op, want 0", n)
	}
}
