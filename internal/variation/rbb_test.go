package variation

import (
	"testing"

	"repro/internal/sta"
	"repro/internal/tech"
)

func TestRecoverLeakageOnFastDie(t *testing.T) {
	pl := placed(t, "c1355")
	proc := tech.Default45nm()
	nom, err := sta.Analyze(pl, sta.Options{})
	if err != nil {
		t.Fatal(err)
	}
	m := Model{SigmaD2DmV: 25, SigmaSysmV: 0, SigmaRndmV: 0}
	for seed := int64(0); seed < 40; seed++ {
		die := m.Sample(pl, proc, seed)
		if die.DVthV[0] > -0.02 {
			continue // want a clearly fast die
		}
		r, err := RecoverLeakage(pl, nom, die, proc, RBBOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if !r.Applied {
			t.Fatal("fast die had margin but RBB was not applied")
		}
		if r.VbsV >= 0 {
			t.Errorf("RBB voltage %f not negative", r.VbsV)
		}
		if r.LeakAfterNW >= r.LeakBeforeNW {
			t.Error("RBB did not reduce leakage")
		}
		if r.DcritAfterPS > nom.DcritPS {
			t.Errorf("RBB broke timing: %f > %f", r.DcritAfterPS, nom.DcritPS)
		}
		if r.DcritAfterPS <= r.DcritBeforePS {
			t.Error("RBB should slow the die down")
		}
		if r.SavedPct <= 0 || r.SavedPct >= 100 {
			t.Errorf("implausible savings %f%%", r.SavedPct)
		}
		return
	}
	t.Skip("no fast die found")
}

func TestRecoverLeakageSlowDieUntouched(t *testing.T) {
	pl := placed(t, "c1355")
	proc := tech.Default45nm()
	nom, err := sta.Analyze(pl, sta.Options{})
	if err != nil {
		t.Fatal(err)
	}
	m := Model{SigmaD2DmV: 25, SigmaSysmV: 0, SigmaRndmV: 0}
	for seed := int64(0); seed < 40; seed++ {
		die := m.Sample(pl, proc, seed)
		if die.DVthV[0] < 0.01 {
			continue
		}
		r, err := RecoverLeakage(pl, nom, die, proc, RBBOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if r.Applied {
			t.Error("slow die must not receive RBB")
		}
		if r.LeakAfterNW != r.LeakBeforeNW {
			t.Error("slow die leakage changed")
		}
		return
	}
	t.Skip("no slow die found")
}

func TestRecoveryStudy(t *testing.T) {
	pl := placed(t, "c1355")
	proc := tech.Default45nm()
	st, err := RecoveryStudy(pl, proc, Default(), 40, 17, RBBOptions{})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("RBB recovery: %d/%d dies, mean saving %.1f%%, fleet leak %.0f -> %.0f nW",
		st.Recovered, st.Dies, st.MeanSavedPct, st.MeanLeakBeforeNW, st.MeanLeakAfterNW)
	if st.Recovered == 0 {
		t.Skip("no fast dies in population")
	}
	if st.MeanLeakAfterNW >= st.MeanLeakBeforeNW {
		t.Error("recovery did not reduce fleet leakage")
	}
	if _, err := RecoveryStudy(pl, proc, Default(), 0, 1, RBBOptions{}); err == nil {
		t.Error("zero dies accepted")
	}
}
