package variation

import (
	"context"
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/tech"
)

// recordedRun captures one full YieldStream run: every per-die result, every
// checkpoint state, and the final stats.
type recordedRun struct {
	results []*TuneResult
	ckpts   map[int]YieldAccum // die count -> accumulator state at that point
	stats   *YieldStats
}

func recordRun(t *testing.T, dies, every int, opts TuneOptions, sopts StreamOptions) *recordedRun {
	t.Helper()
	an, al, nom := streamFixture(t)
	run := &recordedRun{ckpts: map[int]YieldAccum{}}
	sopts.CheckpointEvery = every
	sopts.OnCheckpoint = func(die int, acc YieldAccum) error {
		if die != acc.Dies {
			t.Fatalf("checkpoint at die %d carries accumulator covering %d dies", die, acc.Dies)
		}
		run.ckpts[die] = acc
		return nil
	}
	start := sopts.StartDie
	next := start
	st, err := YieldStreamResumable(context.Background(), an, al, nom, tech.Default45nm(), Default(),
		dies, 7, opts, sopts, func(die int, r *TuneResult) error {
			if die != next {
				t.Fatalf("emitted die %d, want %d", die, next)
			}
			next++
			run.results = append(run.results, r)
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	run.stats = st
	return run
}

// TestYieldStreamResumableSuffixIdentity: resuming from any checkpoint must
// replay the remaining dies, the remaining checkpoints and the final stats
// byte-identically to the unbroken run — the contract /v1/yield resume rides
// on. The accumulator states additionally cross a JSON round trip first,
// exactly as they would over the wire.
func TestYieldStreamResumableSuffixIdentity(t *testing.T) {
	dies := 23
	if !testing.Short() {
		dies = yieldChunk + 23 // resume across a chunk boundary too
	}
	opts := TuneOptions{GuardbandPct: 0.005, Workers: 4}
	const every = 5
	full := recordRun(t, dies, every, opts, StreamOptions{})
	if len(full.ckpts) == 0 {
		t.Fatal("full run emitted no checkpoints; resume proves nothing")
	}
	if _, ok := full.ckpts[dies]; ok {
		t.Fatalf("checkpoint emitted at the final die %d; the footer covers it", dies)
	}

	for start, acc := range full.ckpts {
		// Round-trip the accumulator through JSON: the resumed run must
		// see bit-identical float64 state after a wire crossing.
		raw, err := json.Marshal(acc)
		if err != nil {
			t.Fatalf("checkpoint at %d: %v", start, err)
		}
		var prior YieldAccum
		if err := json.Unmarshal(raw, &prior); err != nil {
			t.Fatalf("checkpoint at %d: %v", start, err)
		}
		if prior != acc {
			t.Fatalf("checkpoint at %d did not survive a JSON round trip:\nbefore %+v\nafter  %+v", start, acc, prior)
		}

		res := recordRun(t, dies, every, opts, StreamOptions{StartDie: start, Prior: &prior})
		if len(res.results) != dies-start {
			t.Fatalf("resume from %d emitted %d dies, want %d", start, len(res.results), dies-start)
		}
		for i, r := range res.results {
			requireTuneResultEqual(t, start+i, full.results[start+i], r)
		}
		if *res.stats != *full.stats {
			t.Fatalf("resume from %d: final stats diverged:\nfull   %+v\nresume %+v", start, full.stats, res.stats)
		}
		for die, want := range full.ckpts {
			if die <= start {
				continue
			}
			got, ok := res.ckpts[die]
			if !ok {
				t.Fatalf("resume from %d skipped the checkpoint at die %d", start, die)
			}
			if got != want {
				t.Fatalf("resume from %d: checkpoint at die %d diverged:\nfull   %+v\nresume %+v", start, die, want, got)
			}
		}
	}
}

// TestYieldStreamResumableFooterOnly: StartDie == nDies is the degenerate
// resume after the last die result was already delivered but the footer was
// lost — no dies are tuned, the stats come straight from the prior state.
func TestYieldStreamResumableFooterOnly(t *testing.T) {
	const dies = 9
	opts := TuneOptions{GuardbandPct: 0.005}
	full := recordRun(t, dies, 1, opts, StreamOptions{})

	// Checkpoints stop one die short of the end; fold the last result to
	// obtain the full-coverage accumulator a footer-only resume would carry.
	acc := full.ckpts[dies-1]
	o := opts
	o.setDefaults()
	an, al, nom := streamFixture(t)
	_ = an
	_ = al
	acc.fold(full.results[dies-1], nom.DcritPS*(1+o.SlackTolPct))

	emits := 0
	st, err := YieldStreamResumable(context.Background(), an, al, nom, tech.Default45nm(), Default(),
		dies, 7, opts, StreamOptions{StartDie: dies, Prior: &acc},
		func(die int, r *TuneResult) error { emits++; return nil })
	if err != nil {
		t.Fatal(err)
	}
	if emits != 0 {
		t.Fatalf("footer-only resume emitted %d dies, want 0", emits)
	}
	if *st != *full.stats {
		t.Fatalf("footer-only resume stats diverged:\nfull   %+v\nresume %+v", full.stats, st)
	}
}

// TestYieldStreamResumableAdaptive: a resumed adaptive (TargetCI) stream must
// converge at the same absolute die as the unbroken run — the termination
// check reads only the accumulator, which resume restores exactly.
func TestYieldStreamResumableAdaptive(t *testing.T) {
	const dies = 60
	opts := TuneOptions{GuardbandPct: 0.005, TargetCI: 0.15}
	full := recordRun(t, dies, 4, opts, StreamOptions{})
	if full.stats.Dies >= dies {
		t.Fatalf("adaptive run used all %d dies; convergence proves nothing", dies)
	}
	var start int
	for die := range full.ckpts {
		if die < full.stats.Dies && die > start {
			start = die
		}
	}
	if start == 0 {
		t.Fatalf("no checkpoint before the convergence die %d", full.stats.Dies)
	}
	prior := full.ckpts[start]
	res := recordRun(t, dies, 4, opts, StreamOptions{StartDie: start, Prior: &prior})
	if *res.stats != *full.stats {
		t.Fatalf("adaptive resume from %d diverged:\nfull   %+v\nresume %+v", start, full.stats, res.stats)
	}
	if len(res.results) != full.stats.Dies-start {
		t.Fatalf("adaptive resume emitted %d dies, want %d", len(res.results), full.stats.Dies-start)
	}
}

// TestYieldStreamResumableValidation: malformed resume state must be rejected
// up front, not silently produce wrong statistics.
func TestYieldStreamResumableValidation(t *testing.T) {
	an, al, nom := streamFixture(t)
	proc := tech.Default45nm()
	opts := TuneOptions{GuardbandPct: 0.005}
	cases := []struct {
		name  string
		sopts StreamOptions
		want  string
	}{
		{"negative start", StreamOptions{StartDie: -1}, "out of range"},
		{"start past end", StreamOptions{StartDie: 11, Prior: &YieldAccum{Dies: 11}}, "out of range"},
		{"missing prior", StreamOptions{StartDie: 3}, "requires a Prior"},
		{"prior mismatch", StreamOptions{StartDie: 3, Prior: &YieldAccum{Dies: 2}}, "covers 2 dies"},
		{"prior without start", StreamOptions{Prior: &YieldAccum{Dies: 2}}, "StartDie is 0"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := YieldStreamResumable(context.Background(), an, al, nom, proc, Default(),
				10, 7, opts, tc.sopts, nil)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("got %v, want error containing %q", err, tc.want)
			}
		})
	}
}
