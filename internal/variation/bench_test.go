package variation

import (
	"context"
	"testing"

	"repro/internal/cell"
	"repro/internal/gen"
	"repro/internal/place"
	"repro/internal/sta"
	"repro/internal/tech"
)

func benchPlaced(b *testing.B, name string) *place.Placement {
	b.Helper()
	l := cell.Default()
	d, err := gen.Build(name, l)
	if err != nil {
		b.Fatal(err)
	}
	pl, err := place.Place(d, l, place.Options{})
	if err != nil {
		b.Fatal(err)
	}
	return pl
}

// BenchmarkYieldStudy measures the full Monte-Carlo tuning loop per die —
// the hot path the Analyzer refactor attacks. Sequential workers so the
// per-die cost is directly comparable run to run.
func BenchmarkYieldStudy(b *testing.B) {
	pl := benchPlaced(b, "c5315")
	proc := tech.Default45nm()
	m := Default()
	const dies = 10
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := YieldStudy(context.Background(), pl, proc, m, dies, 7,
			TuneOptions{GuardbandPct: 0.005, Workers: 1}); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*dies), "ns/die")
}

// BenchmarkDieRetimeAnalyze is the seed per-die re-timing path: a fresh
// graph build for every corner.
func BenchmarkDieRetimeAnalyze(b *testing.B) {
	pl := benchPlaced(b, "c5315")
	proc := tech.Default45nm()
	die := Default().Sample(pl, proc, 7)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := die.Timing(pl); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDieRetimeRetimer is the batched path: shared Analyzer, reused
// buffers.
func BenchmarkDieRetimeRetimer(b *testing.B) {
	pl := benchPlaced(b, "c5315")
	proc := tech.Default45nm()
	die := Default().Sample(pl, proc, 7)
	an, err := sta.NewAnalyzer(pl, sta.Options{})
	if err != nil {
		b.Fatal(err)
	}
	rt := NewRetimer(an)
	if _, err := rt.Time(die); err != nil { // warm the buffers
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := rt.Time(die); err != nil {
			b.Fatal(err)
		}
	}
}
