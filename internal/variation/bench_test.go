package variation

import (
	"context"
	"testing"

	"repro/internal/cell"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/place"
	"repro/internal/sta"
	"repro/internal/tech"
)

func benchPlaced(b *testing.B, name string) *place.Placement {
	b.Helper()
	l := cell.Default()
	d, err := gen.Build(name, l)
	if err != nil {
		b.Fatal(err)
	}
	pl, err := place.Place(d, l, place.Options{})
	if err != nil {
		b.Fatal(err)
	}
	return pl
}

// BenchmarkYieldStudy measures the full Monte-Carlo tuning loop per die —
// the hot path the Analyzer refactor attacks. Sequential workers so the
// per-die cost is directly comparable run to run.
func BenchmarkYieldStudy(b *testing.B) {
	pl := benchPlaced(b, "c5315")
	proc := tech.Default45nm()
	m := Default()
	const dies = 10
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := YieldStudy(context.Background(), pl, proc, m, dies, 7,
			TuneOptions{GuardbandPct: 0.005, Workers: 1}); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*dies), "ns/die")
}

// yieldBench is the shared fixture of the per-die pipeline benchmarks.
type yieldBench struct {
	pl   *place.Placement
	proc *tech.Process
	m    Model
	an   *sta.Analyzer
	nom  *sta.Timing
	al   *core.Allocator
}

func newYieldBench(b *testing.B, name string) *yieldBench {
	b.Helper()
	pl := benchPlaced(b, name)
	an, err := sta.NewAnalyzer(pl, sta.Options{})
	if err != nil {
		b.Fatal(err)
	}
	nom, err := an.Run(nil, nil)
	if err != nil {
		b.Fatal(err)
	}
	al, err := core.NewAllocator(pl, nom)
	if err != nil {
		b.Fatal(err)
	}
	return &yieldBench{pl: pl, proc: tech.Default45nm(), m: Default(), an: an, nom: nom, al: al}
}

var benchCircuits = []string{"c5315", "c6288", "industrial1"}

// BenchmarkSampleInto measures the die-sampling stage: the buffer-reusing
// wave-major Sampler against the allocating one-shot Model.Sample.
func BenchmarkSampleInto(b *testing.B) {
	for _, name := range benchCircuits {
		b.Run(name, func(b *testing.B) {
			y := newYieldBench(b, name)
			smp := NewSampler(y.pl, y.proc, y.m)
			die := smp.SampleInto(nil, 1)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				smp.SampleInto(die, DieSeed(7, i))
			}
		})
	}
}

func BenchmarkSampleAlloc(b *testing.B) {
	for _, name := range benchCircuits {
		b.Run(name, func(b *testing.B) {
			y := newYieldBench(b, name)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				y.m.Sample(y.pl, y.proc, DieSeed(7, i))
			}
		})
	}
}

// BenchmarkDieRetimeLight measures the Dcrit-only die re-time against the
// path-extracting full Run (BenchmarkDieRetimeRetimer).
func BenchmarkDieRetimeLight(b *testing.B) {
	for _, name := range benchCircuits {
		b.Run(name, func(b *testing.B) {
			y := newYieldBench(b, name)
			die := y.m.Sample(y.pl, y.proc, 7)
			rt := NewRetimer(y.an)
			if _, err := rt.TimeLight(die); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := rt.TimeLight(die); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkLeakModel measures the per-die leakage stage — SetDie's exp pass
// plus an unbiased and a biased multiply-add sweep — against the scalar
// per-gate loop doing the same two evaluations.
func BenchmarkLeakModel(b *testing.B) {
	for _, name := range benchCircuits {
		b.Run(name, func(b *testing.B) {
			y := newYieldBench(b, name)
			die := y.m.Sample(y.pl, y.proc, 7)
			assign := benchAssign(y.pl)
			lm := NewLeakModel(y.pl, y.proc)
			lm.SetDie(die)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				lm.SetDie(die)
				_ = lm.LeakageNW(nil)
				_ = lm.LeakageNW(assign)
			}
		})
	}
}

func BenchmarkLeakScalar(b *testing.B) {
	for _, name := range benchCircuits {
		b.Run(name, func(b *testing.B) {
			y := newYieldBench(b, name)
			die := y.m.Sample(y.pl, y.proc, 7)
			assign := benchAssign(y.pl)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_ = die.LeakageNW(y.pl, y.proc, nil)
				_ = die.LeakageNW(y.pl, y.proc, assign)
			}
		})
	}
}

func benchAssign(pl *place.Placement) []int {
	assign := make([]int, pl.NumRows)
	for r := range assign {
		assign[r] = r % pl.Lib.Grid.NumLevels()
	}
	return assign
}

// BenchmarkYieldPerDie is the tentpole end-to-end measurement: the full
// warmed-up per-die pipeline — sample, die re-time, sense, allocate,
// verify, leakage — through the fast path (SampleInto + TimeLight +
// LeakModel) and through the pre-refactor full path (allocating Sample +
// path-extracting re-times + scalar leakage). Sequential, so ns/op is the
// per-die cost.
func BenchmarkYieldPerDie(b *testing.B) {
	opts := TuneOptions{GuardbandPct: 0.005}
	opts.setDefaults()
	for _, name := range benchCircuits {
		b.Run(name+"/fast", func(b *testing.B) {
			y := newYieldBench(b, name)
			smp := NewSampler(y.pl, y.proc, y.m)
			tn := NewTuner(NewRetimer(y.an), y.al)
			tn.leak = NewLeakModel(y.pl, y.proc)
			die := smp.SampleInto(nil, DieSeed(7, 0))
			if _, err := TuneOn(tn, y.nom, die, y.proc, opts); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				die = smp.SampleInto(die, DieSeed(7, i))
				if _, err := TuneOn(tn, y.nom, die, y.proc, opts); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(name+"/full", func(b *testing.B) {
			y := newYieldBench(b, name)
			rt := NewRetimer(y.an)
			var inst *core.Instance
			die := y.m.Sample(y.pl, y.proc, DieSeed(7, 0))
			if _, err := referenceTuneOn(rt, y.al, &inst, y.nom, die, y.proc, opts); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				die := y.m.Sample(y.pl, y.proc, DieSeed(7, i))
				if _, err := referenceTuneOn(rt, y.al, &inst, y.nom, die, y.proc, opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkYieldPopulation is the serving-shape population aggregate: every
// iteration runs one fresh YieldStream over a fixed population — what a
// single /v1/yield request costs — against a persistent prefix-level
// SolveCache shared across requests, exactly how fbbd holds one per warmed
// design. ns/die here is the population-aggregate number the BENCH
// trajectory tracks (BENCH_7.json vs the per-die fast path of BENCH_5.json).
func BenchmarkYieldPopulation(b *testing.B) {
	const dies = 64
	for _, name := range benchCircuits {
		b.Run(name, func(b *testing.B) {
			y := newYieldBench(b, name)
			opts := TuneOptions{
				GuardbandPct: 0.005,
				Workers:      1,
				SolveCache:   core.NewSolveCache(y.al),
			}
			run := func() {
				if _, err := YieldStream(context.Background(), y.an, y.al, y.nom,
					y.proc, y.m, dies, 7, opts, nil); err != nil {
					b.Fatal(err)
				}
			}
			run() // warm the analyzer scratch and the solve cache
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				run()
			}
			b.StopTimer()
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*dies), "ns/die")
		})
	}
}

// TestYieldBatchStagesAllocFree is the allocation budget of the batched
// kernel: warmed-up block sampling, the die-major light re-time, and the
// fused unbiased leakage sweep allocate nothing per batch.
func TestYieldBatchStagesAllocFree(t *testing.T) {
	pl := placed(t, "c5315")
	proc := tech.Default45nm()
	smp := NewSampler(pl, proc, Default())
	an, err := sta.NewAnalyzer(pl, sta.Options{})
	if err != nil {
		t.Fatal(err)
	}
	lm := NewLeakModel(pl, proc)
	const w = 8
	seeds := make([]int64, w)
	lanes := []int{0, 2, 5, 7}
	var blk *DieBlock
	var tb *sta.TimingBatch
	var leak []float64
	i := 0
	fill := func() {
		for d := range seeds {
			i++
			seeds[d] = DieSeed(7, i)
		}
	}
	fill()
	blk = smp.SampleBlockInto(blk, seeds)
	if tb, err = an.RunLightBatch(blk.DelayScale, w, tb); err != nil {
		t.Fatal(err)
	}
	leak = lm.LeakageBlockNW(blk, lanes, leak)
	if n := testing.AllocsPerRun(20, func() {
		fill()
		blk = smp.SampleBlockInto(blk, seeds)
		var err error
		if tb, err = an.RunLightBatch(blk.DelayScale, w, tb); err != nil {
			panic(err)
		}
		leak = lm.LeakageBlockNW(blk, lanes, leak[:0])
	}); n != 0 {
		t.Errorf("warmed-up batch sample+retime+leak stages allocate %v/op, want 0", n)
	}
}

// TestYieldPerDiePipelineAllocFree is the allocation budget of the
// acceptance criteria: the warmed-up sample + light re-time + leakage
// stages of the per-die loop allocate nothing. (The tune stage itself
// reports a fresh TuneResult and Solution per die by contract, so the
// budget pins the stages below it.)
func TestYieldPerDiePipelineAllocFree(t *testing.T) {
	pl := placed(t, "c5315")
	proc := tech.Default45nm()
	m := Default()
	an, err := sta.NewAnalyzer(pl, sta.Options{})
	if err != nil {
		t.Fatal(err)
	}
	rt := NewRetimer(an)
	smp := NewSampler(pl, proc, m)
	lm := NewLeakModel(pl, proc)
	assign := benchAssign(pl)
	die := smp.SampleInto(nil, DieSeed(7, 0))
	if _, err := rt.TimeLight(die); err != nil {
		t.Fatal(err)
	}
	lm.SetDie(die)
	i := 0
	if n := testing.AllocsPerRun(20, func() {
		i++
		smp.SampleInto(die, DieSeed(7, i))
		tm, err := rt.TimeLight(die)
		if err != nil || tm.DcritPS <= 0 {
			panic("light re-time failed")
		}
		if _, err := rt.TimeWithBiasLight(die, proc, assign); err != nil {
			panic(err)
		}
		lm.SetDie(die)
		_ = lm.LeakageNW(nil)
		_ = lm.LeakageNW(assign)
	}); n != 0 {
		t.Errorf("warmed-up sample+retime+leak pipeline allocates %v/op, want 0", n)
	}
}

// BenchmarkDieRetimeAnalyze is the seed per-die re-timing path: a fresh
// graph build for every corner.
func BenchmarkDieRetimeAnalyze(b *testing.B) {
	pl := benchPlaced(b, "c5315")
	proc := tech.Default45nm()
	die := Default().Sample(pl, proc, 7)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := die.Timing(pl); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDieRetimeRetimer is the batched path: shared Analyzer, reused
// buffers.
func BenchmarkDieRetimeRetimer(b *testing.B) {
	pl := benchPlaced(b, "c5315")
	proc := tech.Default45nm()
	die := Default().Sample(pl, proc, 7)
	an, err := sta.NewAnalyzer(pl, sta.Options{})
	if err != nil {
		b.Fatal(err)
	}
	rt := NewRetimer(an)
	if _, err := rt.Time(die); err != nil { // warm the buffers
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := rt.Time(die); err != nil {
			b.Fatal(err)
		}
	}
}
